package feature

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
)

func TestExtractShapes(t *testing.T) {
	cfg := DefaultConfig()
	for _, tables := range []int{1, 4} {
		p := datagen.DefaultParams(int64(tables))
		p.Tables = tables
		p.MinRows, p.MaxRows = 60, 120
		d, err := datagen.Generate("f", p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Extract(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != tables {
			t.Fatalf("graph has %d vertices, want %d", g.NumVertices(), tables)
		}
		for _, row := range g.V {
			if len(row) != cfg.VertexDim() {
				t.Fatalf("vertex dim %d, want %d", len(row), cfg.VertexDim())
			}
		}
		if len(g.E) != tables {
			t.Fatalf("edge matrix has %d rows", len(g.E))
		}
	}
}

func TestVertexDimFormula(t *testing.T) {
	cfg := Config{MaxCols: 4}
	// Paper's Example 3 geometry with k=6, m=4: (6+4)*4+2 = 42.
	if got := cfg.VertexDim(); got != 42 {
		t.Fatalf("VertexDim = %d, want 42", got)
	}
}

func TestEdgeWeightsAreJoinCorrelations(t *testing.T) {
	p := datagen.DefaultParams(5)
	p.Tables = 3
	p.MinRows, p.MaxRows = 80, 150
	d, err := datagen.Generate("f", p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Extract(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fk := range d.FKs {
		w := g.E[fk.ToTable][fk.FromTable]
		if w <= 0 || w > 1 {
			t.Fatalf("edge weight %g outside (0,1]", w)
		}
		if g.E[fk.FromTable][fk.ToTable] != w {
			t.Fatal("edge matrix not symmetric")
		}
		if math.Abs(w-fk.Correlation) > 1e-9 {
			t.Fatalf("edge weight %g differs from measured correlation %g", w, fk.Correlation)
		}
	}
	// Non-joined pairs stay zero.
	joined := map[[2]int]bool{}
	for _, fk := range d.FKs {
		joined[[2]int{fk.ToTable, fk.FromTable}] = true
		joined[[2]int{fk.FromTable, fk.ToTable}] = true
	}
	for i := range g.E {
		for j := range g.E[i] {
			if i != j && !joined[[2]int{i, j}] && g.E[i][j] != 0 {
				t.Fatalf("unexpected edge weight at %d,%d", i, j)
			}
		}
	}
}

func TestFeatureValuesBounded(t *testing.T) {
	p := datagen.DefaultParams(6)
	p.Tables = 2
	p.MinRows, p.MaxRows = 60, 120
	d, _ := datagen.Generate("f", p)
	g, _ := Extract(d, DefaultConfig())
	for vi, row := range g.V {
		for fi, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("vertex %d feature %d is %g", vi, fi, x)
			}
			if x < -1.5 || x > 1.5 {
				t.Fatalf("vertex %d feature %d = %g outside normalized range", vi, fi, x)
			}
		}
	}
}

func TestPaddingZeroesMissingColumns(t *testing.T) {
	p := datagen.DefaultParams(7)
	p.MinCols, p.MaxCols = 2, 2
	p.MinRows, p.MaxRows = 50, 60
	d, _ := datagen.Generate("f", p)
	cfg := Config{MaxCols: 6}
	g, _ := Extract(d, cfg)
	row := g.V[0]
	// Columns 2..5 have no features: their k-feature blocks are zero.
	for c := 2; c < 6; c++ {
		for f := 0; f < K; f++ {
			if row[c*K+f] != 0 {
				t.Fatalf("padded column %d feature %d non-zero", c, f)
			}
		}
	}
	// Correlation entries involving padded columns are zero.
	corrBase := K * 6
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if (a >= 2 || b >= 2) && row[corrBase+a*6+b] != 0 {
				t.Fatalf("padded correlation (%d,%d) non-zero", a, b)
			}
		}
	}
}

func TestCorrelationDiagonalIsOne(t *testing.T) {
	p := datagen.DefaultParams(8)
	p.MinRows, p.MaxRows = 50, 60
	d, _ := datagen.Generate("f", p)
	cfg := DefaultConfig()
	g, _ := Extract(d, cfg)
	ncols := d.Tables[0].NumCols()
	corrBase := K * cfg.MaxCols
	for c := 0; c < ncols && c < cfg.MaxCols; c++ {
		if g.V[0][corrBase+c*cfg.MaxCols+c] != 1 {
			t.Fatalf("diagonal correlation of column %d is %g", c, g.V[0][corrBase+c*cfg.MaxCols+c])
		}
	}
}

func TestMixupConvexity(t *testing.T) {
	p := datagen.DefaultParams(9)
	p.Tables = 2
	p.MinRows, p.MaxRows = 50, 80
	d1, _ := datagen.Generate("a", p)
	p.Seed = 10
	p.Tables = 3
	d2, _ := datagen.Generate("b", p)
	cfg := DefaultConfig()
	g1, _ := Extract(d1, cfg)
	g2, _ := Extract(d2, cfg)

	lambda := 0.3
	mixed := Mixup(g1, g2, lambda)
	if mixed.NumVertices() != 3 {
		t.Fatalf("mixed graph has %d vertices, want max(2,3)=3", mixed.NumVertices())
	}
	// Vertex 0 is the convex combination.
	for f := range mixed.V[0] {
		want := lambda*g1.V[0][f] + (1-lambda)*g2.V[0][f]
		if math.Abs(mixed.V[0][f]-want) > 1e-12 {
			t.Fatalf("mixed vertex feature %d = %g, want %g", f, mixed.V[0][f], want)
		}
	}
	// Vertex 2 only exists in g2: it is (1-λ)·g2.
	for f := range mixed.V[2] {
		want := (1 - lambda) * g2.V[2][f]
		if math.Abs(mixed.V[2][f]-want) > 1e-12 {
			t.Fatalf("padded mixed vertex feature %d = %g, want %g", f, mixed.V[2][f], want)
		}
	}
}

func TestMixupLambdaClamped(t *testing.T) {
	p := datagen.DefaultParams(11)
	p.MinRows, p.MaxRows = 40, 60
	d, _ := datagen.Generate("a", p)
	g, _ := Extract(d, DefaultConfig())
	m := Mixup(g, g, 5)
	for i := range m.V {
		for f := range m.V[i] {
			if math.Abs(m.V[i][f]-g.V[i][f]) > 1e-12 {
				t.Fatal("λ>1 should clamp to 1 (identity on gi)")
			}
		}
	}
}

func TestMixupLabelsProperty(t *testing.T) {
	f := func(rawL uint8, a, b float64) bool {
		l := float64(rawL) / 255
		got := MixupLabels([]float64{a}, []float64{b}, l)
		want := l*a + (1-l)*b
		return math.Abs(got[0]-want) < 1e-9 || (math.IsNaN(a) || math.IsNaN(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := datagen.DefaultParams(12)
	p.MinRows, p.MaxRows = 40, 60
	d, _ := datagen.Generate("a", p)
	g, _ := Extract(d, DefaultConfig())
	c := g.Clone()
	c.V[0][0] = 999
	if g.V[0][0] == 999 {
		t.Fatal("Clone shares vertex storage")
	}
}
