package feature

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func TestExtractShapes(t *testing.T) {
	cfg := DefaultConfig()
	for _, tables := range []int{1, 4} {
		p := datagen.DefaultParams(int64(tables))
		p.Tables = tables
		p.MinRows, p.MaxRows = 60, 120
		d, err := datagen.Generate("f", p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Extract(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != tables {
			t.Fatalf("graph has %d vertices, want %d", g.NumVertices(), tables)
		}
		for _, row := range g.V {
			if len(row) != cfg.VertexDim() {
				t.Fatalf("vertex dim %d, want %d", len(row), cfg.VertexDim())
			}
		}
		if len(g.E) != tables {
			t.Fatalf("edge matrix has %d rows", len(g.E))
		}
	}
}

func TestVertexDimFormula(t *testing.T) {
	cfg := Config{MaxCols: 4}
	// Paper's Example 3 geometry with k=6, m=4: (6+4)*4+2 = 42.
	if got := cfg.VertexDim(); got != 42 {
		t.Fatalf("VertexDim = %d, want 42", got)
	}
}

func TestEdgeWeightsAreJoinCorrelations(t *testing.T) {
	p := datagen.DefaultParams(5)
	p.Tables = 3
	p.MinRows, p.MaxRows = 80, 150
	d, err := datagen.Generate("f", p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Extract(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fk := range d.FKs {
		w := g.E[fk.ToTable][fk.FromTable]
		if w <= 0 || w > 1 {
			t.Fatalf("edge weight %g outside (0,1]", w)
		}
		if g.E[fk.FromTable][fk.ToTable] != w {
			t.Fatal("edge matrix not symmetric")
		}
		if math.Abs(w-fk.Correlation) > 1e-9 {
			t.Fatalf("edge weight %g differs from measured correlation %g", w, fk.Correlation)
		}
	}
	// Non-joined pairs stay zero.
	joined := map[[2]int]bool{}
	for _, fk := range d.FKs {
		joined[[2]int{fk.ToTable, fk.FromTable}] = true
		joined[[2]int{fk.FromTable, fk.ToTable}] = true
	}
	for i := range g.E {
		for j := range g.E[i] {
			if i != j && !joined[[2]int{i, j}] && g.E[i][j] != 0 {
				t.Fatalf("unexpected edge weight at %d,%d", i, j)
			}
		}
	}
}

func TestFeatureValuesBounded(t *testing.T) {
	p := datagen.DefaultParams(6)
	p.Tables = 2
	p.MinRows, p.MaxRows = 60, 120
	d, _ := datagen.Generate("f", p)
	g, _ := Extract(d, DefaultConfig())
	for vi, row := range g.V {
		for fi, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("vertex %d feature %d is %g", vi, fi, x)
			}
			if x < -1.5 || x > 1.5 {
				t.Fatalf("vertex %d feature %d = %g outside normalized range", vi, fi, x)
			}
		}
	}
}

func TestPaddingZeroesMissingColumns(t *testing.T) {
	p := datagen.DefaultParams(7)
	p.MinCols, p.MaxCols = 2, 2
	p.MinRows, p.MaxRows = 50, 60
	d, _ := datagen.Generate("f", p)
	cfg := Config{MaxCols: 6}
	g, _ := Extract(d, cfg)
	row := g.V[0]
	// Columns 2..5 have no features: their k-feature blocks are zero.
	for c := 2; c < 6; c++ {
		for f := 0; f < K; f++ {
			if row[c*K+f] != 0 {
				t.Fatalf("padded column %d feature %d non-zero", c, f)
			}
		}
	}
	// Correlation entries involving padded columns are zero.
	corrBase := K * 6
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if (a >= 2 || b >= 2) && row[corrBase+a*6+b] != 0 {
				t.Fatalf("padded correlation (%d,%d) non-zero", a, b)
			}
		}
	}
}

func TestCorrelationDiagonalIsOne(t *testing.T) {
	p := datagen.DefaultParams(8)
	p.MinRows, p.MaxRows = 50, 60
	d, _ := datagen.Generate("f", p)
	cfg := DefaultConfig()
	g, _ := Extract(d, cfg)
	ncols := d.Tables[0].NumCols()
	corrBase := K * cfg.MaxCols
	for c := 0; c < ncols && c < cfg.MaxCols; c++ {
		if g.V[0][corrBase+c*cfg.MaxCols+c] != 1 {
			t.Fatalf("diagonal correlation of column %d is %g", c, g.V[0][corrBase+c*cfg.MaxCols+c])
		}
	}
}

func TestMixupConvexity(t *testing.T) {
	p := datagen.DefaultParams(9)
	p.Tables = 2
	p.MinRows, p.MaxRows = 50, 80
	d1, _ := datagen.Generate("a", p)
	p.Seed = 10
	p.Tables = 3
	d2, _ := datagen.Generate("b", p)
	cfg := DefaultConfig()
	g1, _ := Extract(d1, cfg)
	g2, _ := Extract(d2, cfg)

	lambda := 0.3
	mixed := Mixup(g1, g2, lambda)
	if mixed.NumVertices() != 3 {
		t.Fatalf("mixed graph has %d vertices, want max(2,3)=3", mixed.NumVertices())
	}
	// Vertex 0 is the convex combination.
	for f := range mixed.V[0] {
		want := lambda*g1.V[0][f] + (1-lambda)*g2.V[0][f]
		if math.Abs(mixed.V[0][f]-want) > 1e-12 {
			t.Fatalf("mixed vertex feature %d = %g, want %g", f, mixed.V[0][f], want)
		}
	}
	// Vertex 2 only exists in g2: it is (1-λ)·g2.
	for f := range mixed.V[2] {
		want := (1 - lambda) * g2.V[2][f]
		if math.Abs(mixed.V[2][f]-want) > 1e-12 {
			t.Fatalf("padded mixed vertex feature %d = %g, want %g", f, mixed.V[2][f], want)
		}
	}
}

func TestMixupLambdaClamped(t *testing.T) {
	p := datagen.DefaultParams(11)
	p.MinRows, p.MaxRows = 40, 60
	d, _ := datagen.Generate("a", p)
	g, _ := Extract(d, DefaultConfig())
	m := Mixup(g, g, 5)
	for i := range m.V {
		for f := range m.V[i] {
			if math.Abs(m.V[i][f]-g.V[i][f]) > 1e-12 {
				t.Fatal("λ>1 should clamp to 1 (identity on gi)")
			}
		}
	}
}

func TestMixupLabelsProperty(t *testing.T) {
	f := func(rawL uint8, a, b float64) bool {
		l := float64(rawL) / 255
		got := MixupLabels([]float64{a}, []float64{b}, l)
		want := l*a + (1-l)*b
		return math.Abs(got[0]-want) < 1e-9 || (math.IsNaN(a) || math.IsNaN(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := datagen.DefaultParams(12)
	p.MinRows, p.MaxRows = 40, 60
	d, _ := datagen.Generate("a", p)
	g, _ := Extract(d, DefaultConfig())
	c := g.Clone()
	c.V[0][0] = 999
	if g.V[0][0] == 999 {
		t.Fatal("Clone shares vertex storage")
	}
}

// naiveExtract rebuilds the feature graph from the per-call naive
// statistics API (ColumnStats, EqualFraction, JoinCorrelation) — the
// pre-fusion implementation shape. Extract must match it exactly: the
// kernels are shared, so any divergence is a fusion bug (wrong pair
// indexing, stale codes, misrouted distinct sets).
func naiveExtract(d *dataset.Dataset, cfg Config) *Graph {
	m := cfg.MaxCols
	g := &Graph{Name: d.Name}
	for _, t := range d.Tables {
		ncols := t.NumCols()
		if ncols > m {
			ncols = m
		}
		v := make([]float64, (K+m)*m+2)
		for c := 0; c < ncols; c++ {
			st := dataset.ColumnStats(t.Col(c))
			base := c * K
			v[base+0] = math.Tanh(st.Skewness / 4)
			v[base+1] = math.Tanh(st.Kurtosis / 10)
			v[base+2] = math.Log1p(st.Std) / 10
			v[base+3] = math.Log1p(st.MeanDev) / 10
			v[base+4] = math.Log1p(st.Range) / 12
			v[base+5] = math.Log1p(float64(st.DomainSize)) / 12
		}
		corrBase := K * m
		for a := 0; a < ncols; a++ {
			for b := 0; b < ncols; b++ {
				var corr float64
				if a == b {
					corr = 1
				} else {
					corr = dataset.EqualFraction(t.Col(a), t.Col(b))
				}
				v[corrBase+a*m+b] = corr
			}
		}
		v[(K+m)*m] = math.Log1p(float64(t.Rows())) / 14
		v[(K+m)*m+1] = float64(t.NumCols()) / float64(m)
		g.V = append(g.V, v)
	}
	n := len(d.Tables)
	g.E = make([][]float64, n)
	for i := range g.E {
		g.E[i] = make([]float64, n)
	}
	for _, fk := range d.FKs {
		corr := dataset.JoinCorrelation(
			d.Tables[fk.FromTable].Col(fk.FromCol),
			d.Tables[fk.ToTable].Col(fk.ToCol))
		g.E[fk.ToTable][fk.FromTable] = corr
		g.E[fk.FromTable][fk.ToTable] = corr
	}
	return g
}

func graphsIdentical(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if len(got.V) != len(want.V) || len(got.E) != len(want.E) {
		t.Fatalf("%s: shape mismatch", label)
	}
	for i := range want.V {
		for f := range want.V[i] {
			if got.V[i][f] != want.V[i][f] {
				t.Fatalf("%s: vertex %d feature %d: %g != %g", label, i, f, got.V[i][f], want.V[i][f])
			}
		}
	}
	for i := range want.E {
		for j := range want.E[i] {
			if got.E[i][j] != want.E[i][j] {
				t.Fatalf("%s: edge (%d,%d): %g != %g", label, i, j, got.E[i][j], want.E[i][j])
			}
		}
	}
}

// TestExtractMatchesNaiveReference pins the fused extraction path
// bit-for-bit against the per-call naive statistics API over random
// datagen datasets.
func TestExtractMatchesNaiveReference(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 8; seed++ {
		p := datagen.DefaultParams(seed)
		p.Tables = 1 + int(seed%4)
		p.MinRows, p.MaxRows = 50, 300
		d, err := datagen.Generate("diff", p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Extract(d, cfg)
		dataset.InvalidateStats(d)
		if err != nil {
			t.Fatal(err)
		}
		graphsIdentical(t, got, naiveExtract(d, cfg), "extract")
	}
}

// TestExtractBatchMatchesSerial: the pooled batch path must be
// byte-identical to per-dataset Extract, in order.
func TestExtractBatchMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	var ds []*dataset.Dataset
	for seed := int64(20); seed < 26; seed++ {
		p := datagen.DefaultParams(seed)
		p.Tables = 1 + int(seed%3)
		p.MinRows, p.MaxRows = 40, 200
		d, err := datagen.Generate("batch", p)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
	}
	batch, err := ExtractBatch(ds, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ds) {
		t.Fatalf("batch returned %d graphs for %d datasets", len(batch), len(ds))
	}
	for i, d := range ds {
		dataset.InvalidateStats(d)
		want, err := Extract(d, cfg)
		dataset.InvalidateStats(d)
		if err != nil {
			t.Fatal(err)
		}
		graphsIdentical(t, batch[i], want, d.Name)
	}
}

// TestExtractBatchConcurrent drives the pool from many goroutines at
// once (run under -race in CI) against shared cached datasets.
func TestExtractBatchConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	var ds []*dataset.Dataset
	for seed := int64(30); seed < 34; seed++ {
		p := datagen.DefaultParams(seed)
		p.MinRows, p.MaxRows = 40, 150
		d, err := datagen.Generate("conc", p)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
	}
	defer func() {
		for _, d := range ds {
			dataset.InvalidateStats(d)
		}
	}()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = ExtractBatch(ds, cfg, 3)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSampledExtract: sampled-mode extraction must produce bounded,
// well-formed features, stay deterministic for a fixed seed, and agree
// with exact extraction within loose tolerances.
func TestSampledExtract(t *testing.T) {
	p := datagen.DefaultParams(40)
	p.Tables = 2
	p.MinRows, p.MaxRows = 3000, 4000
	d, err := datagen.Generate("samp", p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	exact, err := Extract(d, cfg)
	dataset.InvalidateStats(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SampleRows = 512
	cfg.SampleSeed = 5
	s1, err := Extract(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Extract(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, s2, s1, "sampled determinism")
	for i, row := range s1.V {
		for f, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("sampled vertex %d feature %d is %g", i, f, x)
			}
			if math.Abs(x-exact.V[i][f]) > 0.2 {
				t.Fatalf("sampled vertex %d feature %d = %g, exact %g", i, f, x, exact.V[i][f])
			}
		}
	}
	for i := range s1.E {
		for j := range s1.E[i] {
			if math.Abs(s1.E[i][j]-exact.E[i][j]) > 0.15 {
				t.Fatalf("sampled edge (%d,%d) = %g, exact %g", i, j, s1.E[i][j], exact.E[i][j])
			}
		}
	}
}
