// Package feature implements AutoCE's feature engineering (Section V-A):
// it extracts the CE-relevant data features of a dataset and models them as
// a feature graph whose vertices are tables and whose weighted edges are
// PK-FK joins.
//
// Vertex modeling follows the paper exactly: with m the maximum column
// count and k per-column features, every table becomes a vector of
// (k+m)*m + 2 features — k distribution features per column (skewness,
// kurtosis, standard deviation, mean deviation, range, domain size), an
// m×m column-to-column correlation block, and the table's row and column
// counts — padded with zeros for missing columns. Edge modeling stores the
// measured join correlation of each FK edge in an n×n matrix.
//
// Extraction reads every statistic through the dataset package's fused
// Summary/Stats engine: one cache-friendly sweep per table instead of
// per-feature passes, per-dataset distinct-set reuse for the edge
// weights, and a shared exact-mode cache (dataset.StatsFor) so repeated
// extraction of the same dataset is nearly free. ExtractBatch fans the
// per-table summary builds of many datasets over a worker pool, and
// Config.SampleRows gates the sampled mode (reservoir row sample + KMV
// distinct sketches) that bounds extraction cost on user-scale tables.
package feature

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// K is the number of per-column distribution features.
const K = 6

// Config fixes the feature-graph geometry. MaxCols is the paper's m; it
// must be constant across a corpus so one graph encoder can consume every
// dataset.
type Config struct {
	// MaxCols is the padded per-table column budget m.
	MaxCols int

	// SampleRows > 0 enables sampled extraction for tables larger than
	// this many rows: moments and equal-fractions are estimated from a
	// deterministic reservoir row sample and domain sizes / join
	// correlations from KMV distinct sketches, bounding extraction cost
	// on million-row user datasets. 0 (the default) is exact mode, which
	// is byte-identical to the naive per-feature computation.
	SampleRows int
	// SampleSeed makes sampled extraction deterministic.
	SampleSeed int64
}

// DefaultConfig covers the synthetic and real-world-like corpora of this
// repository (tables never exceed 8 columns including keys).
func DefaultConfig() Config { return Config{MaxCols: 10} }

// VertexDim returns the per-vertex feature length (k+m)*m + 2.
func (c Config) VertexDim() int { return (K+c.MaxCols)*c.MaxCols + 2 }

// Graph is a feature graph: V is the n×VertexDim vertex matrix, E the
// n×n weighted adjacency (join correlation) matrix.
type Graph struct {
	Name string
	V    [][]float64
	E    [][]float64
}

// NumVertices returns the vertex (table) count.
func (g *Graph) NumVertices() int { return len(g.V) }

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{Name: g.Name, V: make([][]float64, len(g.V)), E: make([][]float64, len(g.E))}
	for i, r := range g.V {
		ng.V[i] = append([]float64(nil), r...)
	}
	for i, r := range g.E {
		ng.E[i] = append([]float64(nil), r...)
	}
	return ng
}

// Extract builds the feature graph of a dataset. Tables with more than
// MaxCols columns contribute their first MaxCols columns; this never
// triggers for the corpora in this repository.
//
// Every statistic is read from the dataset's Summary/Stats engine. In
// exact mode the stats view is the shared dataset.StatsFor cache —
// callers that mutate or discard the dataset afterwards must call
// dataset.InvalidateStats, like engine.InvalidateIndex.
func Extract(d *dataset.Dataset, cfg Config) (*Graph, error) {
	if cfg.MaxCols < 1 {
		return nil, fmt.Errorf("feature: MaxCols must be positive")
	}
	return extractWith(d, statsOf(d, cfg), cfg)
}

// statsOf picks the statistics view the config asks for: the shared
// exact-mode cache, or a transient sampled view.
func statsOf(d *dataset.Dataset, cfg Config) *dataset.Stats {
	if cfg.SampleRows > 0 {
		return dataset.NewStats(d, dataset.SummaryOpts{
			SampleRows: cfg.SampleRows,
			Seed:       cfg.SampleSeed,
		})
	}
	return dataset.StatsFor(d)
}

// extractWith assembles the graph from a prepared statistics view.
func extractWith(d *dataset.Dataset, st *dataset.Stats, cfg Config) (*Graph, error) {
	m := cfg.MaxCols
	g := &Graph{Name: d.Name}
	for ti, t := range d.Tables {
		g.V = append(g.V, vertexFeatures(t, st.Summary(ti), m))
	}
	n := len(d.Tables)
	g.E = make([][]float64, n)
	for i := range g.E {
		g.E[i] = make([]float64, n)
	}
	corrs := st.FKCorrelations()
	for fi, fk := range d.FKs {
		// E[i][j] with i = PK side, j = FK side (paper's Edge Modeling);
		// mirrored so the GIN aggregation treats joins as undirected.
		g.E[fk.ToTable][fk.FromTable] = corrs[fi]
		g.E[fk.FromTable][fk.ToTable] = corrs[fi]
	}
	return g, nil
}

// vertexFeatures flattens one table into its (k+m)*m+2 vector.
func vertexFeatures(t *dataset.Table, sum *dataset.Summary, m int) []float64 {
	ncols := t.NumCols()
	if ncols > m {
		ncols = m
	}
	v := make([]float64, (K+m)*m+2)
	// Per-column distribution features, normalized into comparable scales:
	// skewness and kurtosis squashed with tanh, magnitudes log-compressed.
	for c := 0; c < ncols; c++ {
		st := &sum.Cols[c]
		base := c * K
		v[base+0] = math.Tanh(st.Skewness / 4)
		v[base+1] = math.Tanh(st.Kurtosis / 10)
		v[base+2] = math.Log1p(st.Std) / 10
		v[base+3] = math.Log1p(st.MeanDev) / 10
		v[base+4] = math.Log1p(st.Range) / 12
		v[base+5] = math.Log1p(float64(st.DomainSize)) / 12
	}
	// m×m column-to-column correlation block (the paper's positional
	// value-equality notion, symmetric, diagonal = 1).
	corrBase := K * m
	for a := 0; a < ncols; a++ {
		for b := 0; b < ncols; b++ {
			var corr float64
			if a == b {
				corr = 1
			} else {
				corr = sum.EqualFrac(a, b)
			}
			v[corrBase+a*m+b] = corr
		}
	}
	v[(K+m)*m] = math.Log1p(float64(t.Rows())) / 14
	v[(K+m)*m+1] = float64(t.NumCols()) / float64(m)
	return v
}

// ExtractBatch extracts the feature graphs of many datasets with every
// per-table summary build (and per-dataset FK-correlation pass) fanned
// over a pool of workers goroutines (NumCPU when workers <= 0). The
// result is byte-identical to calling Extract per dataset, in order. In
// exact mode the shared dataset.StatsFor cache is populated as a side
// effect — transient-corpus callers should dataset.InvalidateStats each
// dataset once its graph is in hand.
func ExtractBatch(ds []*dataset.Dataset, cfg Config, workers int) ([]*Graph, error) {
	if cfg.MaxCols < 1 {
		return nil, fmt.Errorf("feature: MaxCols must be positive")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sts := make([]*dataset.Stats, len(ds))
	type job struct{ di, ti int } // ti == -1: FK correlations
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if j.ti < 0 {
					sts[j.di].FKCorrelations()
				} else {
					sts[j.di].Summary(j.ti)
				}
			}
		}()
	}
	for di, d := range ds {
		sts[di] = statsOf(d, cfg)
		for ti := range d.Tables {
			jobs <- job{di, ti}
		}
		jobs <- job{di, -1}
	}
	close(jobs)
	wg.Wait()

	out := make([]*Graph, len(ds))
	for di, d := range ds {
		g, err := extractWith(d, sts[di], cfg)
		if err != nil {
			return nil, err
		}
		out[di] = g
	}
	return out, nil
}

// Mixup implements the paper's Eq. 14 data augmentation on feature graphs:
// an elementwise convex combination G' = λ·Gi + (1-λ)·Gj. Graphs of
// different vertex counts are zero-padded to the larger one, consistent
// with the vertex padding convention.
func Mixup(gi, gj *Graph, lambda float64) *Graph {
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	n := len(gi.V)
	if len(gj.V) > n {
		n = len(gj.V)
	}
	dim := 0
	if len(gi.V) > 0 {
		dim = len(gi.V[0])
	} else if len(gj.V) > 0 {
		dim = len(gj.V[0])
	}
	out := &Graph{Name: gi.Name + "+mix"}
	out.V = make([][]float64, n)
	out.E = make([][]float64, n)
	for i := 0; i < n; i++ {
		out.V[i] = make([]float64, dim)
		out.E[i] = make([]float64, n)
		for f := 0; f < dim; f++ {
			var a, b float64
			if i < len(gi.V) {
				a = gi.V[i][f]
			}
			if i < len(gj.V) {
				b = gj.V[i][f]
			}
			out.V[i][f] = lambda*a + (1-lambda)*b
		}
		for j := 0; j < n; j++ {
			var a, b float64
			if i < len(gi.E) && j < len(gi.E) {
				a = gi.E[i][j]
			}
			if i < len(gj.E) && j < len(gj.E) {
				b = gj.E[i][j]
			}
			out.E[i][j] = lambda*a + (1-lambda)*b
		}
	}
	return out
}

// MixupLabels interpolates two label vectors with the same λ (Eq. 14).
func MixupLabels(yi, yj []float64, lambda float64) []float64 {
	if len(yi) != len(yj) {
		panic(fmt.Sprintf("feature: MixupLabels length mismatch %d vs %d", len(yi), len(yj)))
	}
	out := make([]float64, len(yi))
	for i := range yi {
		out[i] = lambda*yi[i] + (1-lambda)*yj[i]
	}
	return out
}
