package feature

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// benchTable builds the acceptance-benchmark table: ncols columns ×
// rows rows in this repository's data model (package dataset: bounded
// integer domains, one sequential primary key). Column 0 is the PK;
// the rest draw from bounded domains of varying width and skew, the
// regime datagen produces and user CSVs are binned into.
func benchTable(name string, ncols, rows int, seed int64) *dataset.Table {
	domains := []int64{0, 40, 120, 120, 300, 1000, 64, 5000, 250, 30}
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*dataset.Column, ncols)
	for c := 0; c < ncols; c++ {
		data := make([]int64, rows)
		switch {
		case c == 0: // sequential primary key
			for r := range data {
				data[r] = int64(r + 1)
			}
		case c%3 == 1: // skewed (mass near 1, zipf-ish via squaring)
			dom := float64(domains[c%len(domains)])
			for r := range data {
				x := rng.Float64()
				data[r] = 1 + int64(x*x*dom)
			}
		default: // uniform over the domain
			dom := domains[c%len(domains)]
			for r := range data {
				data[r] = 1 + rng.Int63n(dom)
			}
		}
		cols[c] = dataset.NewColumn(colName(c), data)
	}
	t := dataset.NewTable(name, cols...)
	t.PKCol = 0
	return t
}

// benchWideTable mixes in row-count-sized value domains — adversarial
// for this system's bounded-domain model, but what an unbinned user CSV
// could look like. It exercises the generic (non-histogram) kernel path.
func benchWideTable(name string, ncols, rows int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*dataset.Column, ncols)
	for c := 0; c < ncols; c++ {
		data := make([]int64, rows)
		switch c % 4 {
		case 0: // key-like: all distinct
			for r := range data {
				data[r] = int64(r + 1)
			}
		case 1: // narrow uniform domain
			for r := range data {
				data[r] = int64(1 + rng.Intn(64))
			}
		default: // wide domain, ~row-count many values
			for r := range data {
				data[r] = int64(1 + rng.Intn(rows))
			}
		}
		cols[c] = dataset.NewColumn(colName(c), data)
	}
	t := dataset.NewTable(name, cols...)
	t.PKCol = 0
	return t
}

func colName(c int) string { return string(rune('a' + c)) }

// benchDataset joins two benchTables with one FK edge so Extract also
// exercises the join-correlation path.
func benchDataset(rows int, seed int64) *dataset.Dataset {
	t1 := benchTable("t1", 8, rows, seed)
	t2 := benchTable("t2", 8, rows/2, seed+1)
	// Make t2.b a plausible FK into t1's PK.
	fk := t2.Col(1)
	rng := rand.New(rand.NewSource(seed + 2))
	for r := range fk.Data {
		fk.Data[r] = int64(1 + rng.Intn(rows))
	}
	return &dataset.Dataset{
		Name:   "bench",
		Tables: []*dataset.Table{t1, t2},
		FKs:    []dataset.ForeignKey{{FromTable: 1, FromCol: 1, ToTable: 0, ToCol: 0}},
	}
}

// BenchmarkFeatureExtract is the acceptance benchmark: one 8-column,
// 100k-row table through the full cold vertex-feature path (moments, the
// m×m equal-fraction block, domain sizes), stats cache invalidated every
// iteration.
func BenchmarkFeatureExtract(b *testing.B) {
	d := &dataset.Dataset{Name: "bench", Tables: []*dataset.Table{benchTable("t", 8, 100_000, 1)}}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dataset.InvalidateStats(d)
		b.StartTimer()
		if _, err := Extract(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractSeedNaive is the pinned "before": the seed
// implementation of Extract (per-feature passes, map-based distinct
// counts, m² EqualFraction passes, per-FK JoinCorrelation maps),
// preserved here verbatim so the before/after ratio stays measurable in
// every future checkout.
func BenchmarkFeatureExtractSeedNaive(b *testing.B) {
	d := &dataset.Dataset{Name: "bench", Tables: []*dataset.Table{benchTable("t", 8, 100_000, 1)}}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seedNaiveExtract(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractCached measures the steady-state serving path:
// repeated extraction of an already-summarized dataset (drift checks,
// re-recommendation), which reads every statistic from the shared cache.
func BenchmarkFeatureExtractCached(b *testing.B) {
	d := &dataset.Dataset{Name: "bench", Tables: []*dataset.Table{benchTable("t", 8, 100_000, 1)}}
	cfg := DefaultConfig()
	if _, err := Extract(d, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	dataset.InvalidateStats(d)
}

// BenchmarkFeatureExtractSampled measures cold sampled-mode extraction
// on the adversarial wide-domain table (reservoir sample + KMV
// sketches), the bounded-cost onboarding path for unbinned user-scale
// tables; bounded-domain columns stay on the exact histogram kernel.
func BenchmarkFeatureExtractSampled(b *testing.B) {
	d := &dataset.Dataset{Name: "bench", Tables: []*dataset.Table{benchWideTable("t", 8, 100_000, 1)}}
	cfg := DefaultConfig()
	cfg.SampleRows = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractWide is the cold path on the adversarial
// wide-domain table (generic kernel, hash-set distinct counting).
func BenchmarkFeatureExtractWide(b *testing.B) {
	d := &dataset.Dataset{Name: "bench", Tables: []*dataset.Table{benchWideTable("t", 8, 100_000, 1)}}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dataset.InvalidateStats(d)
		b.StartTimer()
		if _, err := Extract(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractJoin adds a second table and an FK edge, so the
// per-dataset distinct-set reuse and join-correlation derivation are on
// the measured path too.
func BenchmarkFeatureExtractJoin(b *testing.B) {
	d := benchDataset(100_000, 1)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dataset.InvalidateStats(d)
		b.StartTimer()
		if _, err := Extract(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractBatch fans 8 smaller datasets over the worker
// pool (corpus-building shape); on a 1-CPU box it matches serial
// throughput, with more cores it scales.
func BenchmarkFeatureExtractBatch(b *testing.B) {
	ds := make([]*dataset.Dataset, 8)
	for i := range ds {
		ds[i] = benchDataset(20_000, int64(i))
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, d := range ds {
			dataset.InvalidateStats(d)
		}
		b.StartTimer()
		if _, err := ExtractBatch(ds, cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// The seed implementation, kept verbatim as the benchmark baseline.

func seedNaiveExtract(d *dataset.Dataset, cfg Config) (*Graph, error) {
	m := cfg.MaxCols
	g := &Graph{Name: d.Name}
	for _, t := range d.Tables {
		g.V = append(g.V, seedNaiveVertexFeatures(t, m))
	}
	n := len(d.Tables)
	g.E = make([][]float64, n)
	for i := range g.E {
		g.E[i] = make([]float64, n)
	}
	for _, fk := range d.FKs {
		corr := seedNaiveJoinCorrelation(
			d.Tables[fk.FromTable].Col(fk.FromCol),
			d.Tables[fk.ToTable].Col(fk.ToCol))
		g.E[fk.ToTable][fk.FromTable] = corr
		g.E[fk.FromTable][fk.ToTable] = corr
	}
	return g, nil
}

func seedNaiveVertexFeatures(t *dataset.Table, m int) []float64 {
	ncols := t.NumCols()
	if ncols > m {
		ncols = m
	}
	v := make([]float64, (K+m)*m+2)
	for c := 0; c < ncols; c++ {
		st := seedNaiveColumnStats(t.Col(c))
		base := c * K
		v[base+0] = math.Tanh(st.Skewness / 4)
		v[base+1] = math.Tanh(st.Kurtosis / 10)
		v[base+2] = math.Log1p(st.Std) / 10
		v[base+3] = math.Log1p(st.MeanDev) / 10
		v[base+4] = math.Log1p(st.Range) / 12
		v[base+5] = math.Log1p(float64(st.DomainSize)) / 12
	}
	corrBase := K * m
	for a := 0; a < ncols; a++ {
		for b := 0; b < ncols; b++ {
			var corr float64
			if a == b {
				corr = 1
			} else {
				corr = dataset.EqualFraction(t.Col(a), t.Col(b))
			}
			v[corrBase+a*m+b] = corr
		}
	}
	v[(K+m)*m] = math.Log1p(float64(t.Rows())) / 14
	v[(K+m)*m+1] = float64(t.NumCols()) / float64(m)
	return v
}

func seedNaiveColumnStats(c *dataset.Column) dataset.ColStats {
	n := len(c.Data)
	if n == 0 {
		return dataset.ColStats{}
	}
	var sum float64
	lo, hi := c.Data[0], c.Data[0]
	seen := make(map[int64]struct{}, n)
	for _, v := range c.Data {
		sum += float64(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		seen[v] = struct{}{}
	}
	mean := sum / float64(n)
	var m2, m3, m4, mad float64
	for _, v := range c.Data {
		d := float64(v) - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
		mad += math.Abs(d)
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	mad /= float64(n)
	st := dataset.ColStats{
		Count: n, Mean: mean, Std: math.Sqrt(m2), MeanDev: mad,
		Min: lo, Max: hi, Range: float64(hi - lo), DomainSize: len(seen),
	}
	if m2 > 0 {
		st.Skewness = m3 / math.Pow(m2, 1.5)
		st.Kurtosis = m4/(m2*m2) - 3
	}
	return st
}

func seedNaiveJoinCorrelation(fk, pk *dataset.Column) float64 {
	pkSet := make(map[int64]struct{}, len(pk.Data))
	for _, v := range pk.Data {
		pkSet[v] = struct{}{}
	}
	if len(pkSet) == 0 {
		return 0
	}
	fkSet := make(map[int64]struct{}, len(fk.Data))
	for _, v := range fk.Data {
		fkSet[v] = struct{}{}
	}
	inter := 0
	for v := range fkSet {
		if _, ok := pkSet[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(pkSet))
}
