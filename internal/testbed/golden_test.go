package testbed

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The golden-label differential test pins the deterministic half of the
// labeling pipeline — per-model mean Q-errors and the normalized accuracy
// scores Sa — to values captured from the pre-registry implementation.
// Any refactor of the model zoo, the training dispatch, or the measurement
// path must reproduce these bit-for-bit (hex float64 round trip), which is
// exactly the "labels byte-identical across the API redesign" guarantee.
// Latency-derived quantities (Se, BestModel) are wall-clock measurements
// and are deliberately not pinned.
//
// Refresh (after an intentional numeric change) with:
//
//	go test ./internal/testbed -run TestGoldenLabels -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/labels_golden.json from the current implementation")

type goldenLabel struct {
	Dataset string   `json:"dataset"`
	Tables  int      `json:"tables"`
	Seed    int64    `json:"seed"`
	Models  []string `json:"models"`
	// QErr and Sa are exact hex float64 strings (strconv 'x' format).
	QErr []string `json:"qerr"`
	Sa   []string `json:"sa"`
}

func hexFloats(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = strconv.FormatFloat(x, 'x', -1, 64)
	}
	return out
}

func goldenCase(t *testing.T, tables int, seed int64) goldenLabel {
	t.Helper()
	d := fixture(t, tables, seed)
	res, err := Run(d, fastCfg(seed))
	if err != nil {
		t.Fatal(err)
	}
	l := res.Label
	qerrs := make([]float64, len(l.Perfs))
	for i, p := range l.Perfs {
		qerrs[i] = p.QErrorMean
	}
	return goldenLabel{
		Dataset: d.Name,
		Tables:  tables,
		Seed:    seed,
		Models:  append([]string(nil), ModelNames...),
		QErr:    hexFloats(qerrs),
		Sa:      hexFloats(l.Sa),
	}
}

func TestGoldenLabels(t *testing.T) {
	path := filepath.Join("testdata", "labels_golden.json")
	got := []goldenLabel{
		goldenCase(t, 1, 11),
		goldenCase(t, 3, 13),
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden labels rewritten: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	var want []goldenLabel
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d cases, test produced %d", len(want), len(got))
	}
	for ci, w := range want {
		g := got[ci]
		if w.Dataset != g.Dataset || w.Tables != g.Tables || w.Seed != g.Seed {
			t.Fatalf("case %d identity drifted: got %s/%d/%d, golden %s/%d/%d",
				ci, g.Dataset, g.Tables, g.Seed, w.Dataset, w.Tables, w.Seed)
		}
		if len(w.Models) != len(g.Models) {
			t.Fatalf("case %d: registry size %d, golden %d", ci, len(g.Models), len(w.Models))
		}
		for i := range w.Models {
			if w.Models[i] != g.Models[i] {
				t.Errorf("case %d model %d: registry order %q, golden (seed) order %q",
					ci, i, g.Models[i], w.Models[i])
			}
		}
		compare := func(kind string, ws, gs []string) {
			if len(ws) != len(gs) {
				t.Fatalf("case %d %s: length %d, golden %d", ci, kind, len(gs), len(ws))
			}
			for i := range ws {
				if ws[i] == gs[i] {
					continue
				}
				wf, _ := strconv.ParseFloat(ws[i], 64)
				gf, _ := strconv.ParseFloat(gs[i], 64)
				t.Errorf("case %d %s[%d] (%s): got %s (%.17g), golden %s (%.17g), |Δ|=%g",
					ci, kind, i, w.Models[i], gs[i], gf, ws[i], wf, math.Abs(wf-gf))
			}
		}
		compare("qerr", w.QErr, g.QErr)
		compare("sa", w.Sa, g.Sa)
	}
}
