package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ce"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// This file implements the paper's extensibility claim (Section IV-B): "To
// incorporate a new cardinality estimation baseline into AutoCE, we deploy
// the baseline to the cardinality estimation testbed, which conducts the
// dataset labeling and produces the corresponding score vectors."
// RunWithModels labels a dataset against an arbitrary candidate set, so a
// new estimator only has to implement ce.Model (one Fit plus the
// estimation surface) — registering it in the ce registry is only needed
// to join the default zoo.

// Summary selects how per-query Q-errors aggregate into the accuracy
// measurement. The paper uses the mean and notes other percentiles are
// possible (Section IV-B2).
type Summary int

// Supported aggregate statistics.
const (
	SummaryMean Summary = iota
	SummaryP50
	SummaryP95
	SummaryP99
)

func summarize(s Summary, xs []float64) float64 {
	switch s {
	case SummaryP50:
		return metrics.Percentile(xs, 50)
	case SummaryP95:
		return metrics.Percentile(xs, 95)
	case SummaryP99:
		return metrics.Percentile(xs, 99)
	default:
		return metrics.Mean(xs)
	}
}

// ExtendedConfig widens Config with the Q-error summary statistic.
type ExtendedConfig struct {
	Config
	// QErrorSummary picks the accuracy aggregate (default mean).
	QErrorSummary Summary
}

// RunWithModels labels one dataset against the caller's own candidate set.
// The models slice defines the score-vector positions; every entry must be
// an untrained ce.Model (its Fit decides which TrainInput fields to
// consume). The returned Label has Perfs, Sa, and Se of length
// len(models), normalized among those candidates (Eq. 3-4).
func RunWithModels(d *dataset.Dataset, models []ce.Model, cfg ExtendedConfig) (*Label, time.Duration, error) {
	//autoce:ignore detpath -- the returned duration is the labeling run's reported wall time; it never enters Sa/Se
	start := time.Now()
	if len(models) < 2 {
		return nil, 0, fmt.Errorf("testbed: need at least two candidate models, got %d", len(models))
	}
	qs := workload.Generate(d, workload.DefaultConfig(cfg.NumQueries, cfg.Seed))
	train, test := workload.Split(qs, cfg.TrainFrac, cfg.Seed+1)
	if len(train) == 0 || len(test) == 0 {
		return nil, 0, fmt.Errorf("testbed: degenerate workload split")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	in := &ce.TrainInput{
		Dataset: d,
		Sample:  engine.SampleJoin(d, cfg.SampleRows, rng),
		Queries: train,
		Sizes:   ce.ComputeSubsetSizes(d),
	}
	for i, m := range models {
		if err := m.Fit(in); err != nil {
			return nil, 0, fmt.Errorf("testbed: training model %d (%s): %w", i, m.Name(), err)
		}
	}

	truths := make([]float64, len(test))
	for qi, q := range test {
		truths[qi] = float64(q.TrueCard)
	}
	label := &Label{DatasetName: d.Name, Perfs: make([]metrics.Perf, len(models))}
	for i, m := range models {
		//autoce:ignore detpath -- measured inference latency IS the Se efficiency signal (paper Eq. 4); only the Sa/Se normalization is pinned deterministic
		t0 := time.Now()
		ests := m.EstimateBatch(test)
		elapsed := time.Since(t0)
		qerrs := make([]float64, len(test))
		for qi := range test {
			qerrs[qi] = metrics.QError(ests[qi], truths[qi])
		}
		label.Perfs[i] = metrics.Perf{
			QErrorMean:  summarize(cfg.QErrorSummary, qerrs),
			LatencyMean: elapsed.Seconds() / float64(len(test)),
		}
	}
	label.Sa, label.Se = metrics.NormalizeScores(label.Perfs)
	return label, time.Since(start), nil
}
