// Package testbed implements the paper's unified cardinality-estimation
// testbed (Section IV-B): for each dataset it generates a workload,
// acquires true cardinalities from the execution engine, trains every
// candidate CE model (data-driven models on the join sample, query-driven
// models on the labeled training queries, hybrid models on both), measures
// mean Q-error and mean inference latency on the testing queries, and
// normalizes the measurements into score vectors (Eq. 2-4) — the labels
// that AutoCE's graph encoder learns from.
package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ce"
	"repro/internal/ce/bayescard"
	"repro/internal/ce/deepdb"
	"repro/internal/ce/ensemble"
	"repro/internal/ce/lwnn"
	"repro/internal/ce/lwxgb"
	"repro/internal/ce/mscn"
	"repro/internal/ce/neurocard"
	"repro/internal/ce/pglike"
	"repro/internal/ce/uae"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Model indexes into the fixed registry. The first seven entries are the
// paper's candidate set M (three query-driven, three data-driven, one
// hybrid); Postgres and Ensemble complete the nine baselines of Section
// VII-A — they are measured (Perfs) for the Figure 9 and Table V
// comparisons but are not selection candidates.
const (
	ModelMSCN = iota
	ModelLWNN
	ModelLWXGB
	ModelDeepDB
	ModelBayesCard
	ModelNeuroCard
	ModelUAE
	ModelPostgres
	ModelEnsemble
	NumModels
)

// NumCandidates is the size of the paper's candidate set M: the seven
// learned models the advisor selects among. Postgres and Ensemble are
// measured for the Figure 9 and Table V comparisons but are not selection
// candidates.
const NumCandidates = ModelPostgres

// Candidates returns the registry indexes of the candidate set M.
func Candidates() []int {
	out := make([]int, NumCandidates)
	for i := range out {
		out[i] = i
	}
	return out
}

// ModelNames lists the registry names in index order.
var ModelNames = []string{
	"MSCN", "LW-NN", "LW-XGB", "DeepDB", "BayesCard", "NeuroCard", "UAE",
	"Postgres", "Ensemble",
}

// QueryDrivenSet reports which registry entries are query-driven; the
// Table III (CEB) experiment restricts itself to these, as the paper does.
func QueryDrivenSet() []int { return []int{ModelMSCN, ModelLWNN, ModelLWXGB} }

// Config controls one labeling run.
type Config struct {
	// NumQueries is the total workload size; TrainFrac of it trains the
	// query-driven models and the rest measures all models.
	NumQueries int
	TrainFrac  float64
	// SampleRows caps the join sample for data-driven training.
	SampleRows int
	// Fast shrinks the neural models' training budget; used by unit tests
	// and the quick experiment scale.
	Fast bool
	Seed int64
}

// DefaultConfig returns the labeling configuration used by the experiment
// harness (a scaled-down version of the paper's 10,000-query workloads;
// see DESIGN.md, substitutions).
func DefaultConfig(seed int64) Config {
	return Config{NumQueries: 220, TrainFrac: 0.55, SampleRows: 1200, Seed: seed}
}

// Label is the testbed's output for one dataset. Perfs holds the raw
// measurements for all NumModels registry entries; Sa and Se are the
// normalized accuracy/efficiency scores over the candidate set M
// (NumCandidates entries), the label vectors the advisor learns from.
type Label struct {
	DatasetName string
	Perfs       []metrics.Perf
	Sa, Se      []float64
}

// ScoreVector combines the normalized candidate scores for an accuracy
// weight wa (Eq. 2); the result is the paper's label vector y_i for that
// weight, of length NumCandidates.
func (l *Label) ScoreVector(wa float64) []float64 {
	return metrics.CombineScores(l.Sa, l.Se, wa)
}

// BestModel returns the index of the optimal candidate under weight wa.
func (l *Label) BestModel(wa float64) int {
	return metrics.ArgMax(l.ScoreVector(wa))
}

// FullScoreVector normalizes over every measured model (including
// Postgres and the ensemble) — the scale used when Figure 9 reports
// D-error for the non-candidate baselines.
func (l *Label) FullScoreVector(wa float64) []float64 {
	sa, se := metrics.NormalizeScores(l.Perfs)
	return metrics.CombineScores(sa, se, wa)
}

// Result bundles everything a labeling run produced, so callers (the
// sampling baseline, the E2E experiment) can reuse the trained models and
// workload.
type Result struct {
	Label  *Label
	Models []ce.Estimator
	Train  []*workload.Query
	Test   []*workload.Query
	// LabelingTime is the wall-clock cost of the full run — the quantity
	// the paper's Figure 12 compares against AutoCE's inference time.
	LabelingTime time.Duration
}

// buildModels constructs the untrained registry for one run.
func buildModels(cfg Config) []ce.Estimator {
	mscnCfg := mscn.DefaultConfig()
	lwnnCfg := lwnn.DefaultConfig()
	lwxgbCfg := lwxgb.DefaultConfig()
	ddCfg := deepdb.DefaultConfig()
	bcCfg := bayescard.DefaultConfig()
	ncCfg := neurocard.DefaultConfig()
	uaeCfg := uae.DefaultConfig()
	if cfg.Fast {
		mscnCfg.Epochs = 6
		lwnnCfg.Epochs = 8
		lwxgbCfg.GBT.Rounds = 20
		ncCfg.Epochs = 2
		ncCfg.Samples = 24
		uaeCfg.Epochs = 2
		uaeCfg.Samples = 24
		uaeCfg.CorrEpochs = 6
	}
	mscnCfg.Seed = cfg.Seed + 11
	lwnnCfg.Seed = cfg.Seed + 12
	ddCfg.Seed = cfg.Seed + 13
	ncCfg.Seed = cfg.Seed + 14
	uaeCfg.Seed = cfg.Seed + 15
	return []ce.Estimator{
		mscn.New(mscnCfg),
		lwnn.New(lwnnCfg),
		lwxgb.New(lwxgbCfg),
		deepdb.New(ddCfg),
		bayescard.New(bcCfg),
		neurocard.New(ncCfg),
		uae.New(uaeCfg),
		pglike.New(),
		nil, // Ensemble is assembled after the members are trained.
	}
}

// Run labels one dataset: it trains all models and measures them on the
// testing queries.
func Run(d *dataset.Dataset, cfg Config) (*Result, error) {
	start := time.Now()
	// Stage 1: generate the workload with true cardinalities acquired
	// from the engine's batched oracle (shared per-dataset join index,
	// one evaluator per worker; see workload.Label).
	qs := workload.Generate(d, workload.DefaultConfig(cfg.NumQueries, cfg.Seed))
	train, test := workload.Split(qs, cfg.TrainFrac, cfg.Seed+1)
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("testbed: degenerate workload split (%d train, %d test)", len(train), len(test))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	sample := engine.SampleJoin(d, cfg.SampleRows, rng)
	// Join-subset sizes are shared across the data-driven models instead
	// of each recomputing them.
	sizes := ce.ComputeSubsetSizes(d)

	models := buildModels(cfg)
	for i, m := range models {
		if m == nil {
			continue
		}
		if sa, ok := m.(ce.SizeAware); ok {
			sa.SetSubsetSizes(sizes)
		}
		var err error
		switch tm := m.(type) {
		case ce.Hybrid:
			err = tm.TrainBoth(d, sample, train)
		case ce.DataDriven:
			err = tm.TrainData(d, sample)
		case ce.QueryDriven:
			err = tm.TrainQueries(d, train)
		default:
			err = fmt.Errorf("model %s implements no training interface", m.Name())
		}
		if err != nil {
			return nil, fmt.Errorf("testbed: training %s on %s: %w", ModelNames[i], d.Name, err)
		}
	}
	members := make([]ce.Estimator, 0, NumModels-2)
	for i := 0; i < ModelPostgres; i++ {
		members = append(members, models[i])
	}
	// Calibrate the ensemble on a slice of the training queries to keep
	// labeling cost bounded.
	calib := train
	if len(calib) > 40 {
		calib = calib[:40]
	}
	models[ModelEnsemble] = ensemble.New(members, calib)

	label := &Label{DatasetName: d.Name, Perfs: make([]metrics.Perf, NumModels)}
	for i, m := range models {
		ests := make([]float64, len(test))
		truths := make([]float64, len(test))
		t0 := time.Now()
		for qi, q := range test {
			ests[qi] = m.Estimate(q)
			truths[qi] = float64(q.TrueCard)
		}
		elapsed := time.Since(t0)
		label.Perfs[i] = metrics.Perf{
			QErrorMean:  metrics.MeanQError(ests, truths),
			LatencyMean: elapsed.Seconds() / float64(len(test)),
		}
	}
	label.Sa, label.Se = metrics.NormalizeScores(label.Perfs[:NumCandidates])
	return &Result{
		Label:        label,
		Models:       models,
		Train:        train,
		Test:         test,
		LabelingTime: time.Since(start),
	}, nil
}

// LabelOnly runs the testbed and returns just the label.
func LabelOnly(d *dataset.Dataset, cfg Config) (*Label, error) {
	res, err := Run(d, cfg)
	if err != nil {
		return nil, err
	}
	return res.Label, nil
}
