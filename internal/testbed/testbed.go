// Package testbed implements the paper's unified cardinality-estimation
// testbed (Section IV-B): for each dataset it generates a workload,
// acquires true cardinalities from the execution engine, trains every
// candidate CE model (data-driven models on the join sample, query-driven
// models on the labeled training queries, hybrid models on both), measures
// mean Q-error and mean inference latency on the testing queries, and
// normalizes the measurements into score vectors (Eq. 2-4) — the labels
// that AutoCE's graph encoder learns from.
package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ce"
	"repro/internal/ce/bayescard"
	"repro/internal/ce/deepdb"
	"repro/internal/ce/ensemble"
	"repro/internal/ce/lwnn"
	"repro/internal/ce/lwxgb"
	"repro/internal/ce/mscn"
	"repro/internal/ce/neurocard"
	"repro/internal/ce/pglike"
	"repro/internal/ce/uae"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Model indexes into the fixed registry. The first seven entries are the
// paper's candidate set M (three query-driven, three data-driven, one
// hybrid); Postgres and Ensemble complete the nine baselines of Section
// VII-A — they are measured (Perfs) for the Figure 9 and Table V
// comparisons but are not selection candidates.
const (
	ModelMSCN = iota
	ModelLWNN
	ModelLWXGB
	ModelDeepDB
	ModelBayesCard
	ModelNeuroCard
	ModelUAE
	ModelPostgres
	ModelEnsemble
	NumModels
)

// NumCandidates is the size of the paper's candidate set M: the seven
// learned models the advisor selects among. Postgres and Ensemble are
// measured for the Figure 9 and Table V comparisons but are not selection
// candidates.
const NumCandidates = ModelPostgres

// Candidates returns the registry indexes of the candidate set M.
func Candidates() []int {
	out := make([]int, NumCandidates)
	for i := range out {
		out[i] = i
	}
	return out
}

// ModelNames lists the registry names in index order.
var ModelNames = []string{
	"MSCN", "LW-NN", "LW-XGB", "DeepDB", "BayesCard", "NeuroCard", "UAE",
	"Postgres", "Ensemble",
}

// QueryDrivenSet reports which registry entries are query-driven; the
// Table III (CEB) experiment restricts itself to these, as the paper does.
func QueryDrivenSet() []int { return []int{ModelMSCN, ModelLWNN, ModelLWXGB} }

// Config controls one labeling run.
type Config struct {
	// NumQueries is the total workload size; TrainFrac of it trains the
	// query-driven models and the rest measures all models.
	NumQueries int
	TrainFrac  float64
	// SampleRows caps the join sample for data-driven training.
	SampleRows int
	// Fast shrinks the neural models' training budget; used by unit tests
	// and the quick experiment scale.
	Fast bool
	Seed int64
}

// DefaultConfig returns the labeling configuration used by the experiment
// harness (a scaled-down version of the paper's 10,000-query workloads;
// see DESIGN.md, substitutions).
func DefaultConfig(seed int64) Config {
	return Config{NumQueries: 220, TrainFrac: 0.55, SampleRows: 1200, Seed: seed}
}

// Label is the testbed's output for one dataset. Perfs holds the raw
// measurements for all NumModels registry entries; Sa and Se are the
// normalized accuracy/efficiency scores over the candidate set M
// (NumCandidates entries), the label vectors the advisor learns from.
type Label struct {
	DatasetName string
	Perfs       []metrics.Perf
	Sa, Se      []float64
}

// ScoreVector combines the normalized candidate scores for an accuracy
// weight wa (Eq. 2); the result is the paper's label vector y_i for that
// weight, of length NumCandidates.
func (l *Label) ScoreVector(wa float64) []float64 {
	return metrics.CombineScores(l.Sa, l.Se, wa)
}

// BestModel returns the index of the optimal candidate under weight wa.
func (l *Label) BestModel(wa float64) int {
	return metrics.ArgMax(l.ScoreVector(wa))
}

// FullScoreVector normalizes over every measured model (including
// Postgres and the ensemble) — the scale used when Figure 9 reports
// D-error for the non-candidate baselines.
func (l *Label) FullScoreVector(wa float64) []float64 {
	sa, se := metrics.NormalizeScores(l.Perfs)
	return metrics.CombineScores(sa, se, wa)
}

// Result bundles everything a labeling run produced, so callers (the
// sampling baseline, the E2E experiment) can reuse the trained models and
// workload.
type Result struct {
	Label  *Label
	Models []ce.Estimator
	Train  []*workload.Query
	Test   []*workload.Query
	// LabelingTime is the wall-clock cost of the full run — the quantity
	// the paper's Figure 12 compares against AutoCE's inference time.
	LabelingTime time.Duration
}

// buildModels constructs the untrained registry for one run.
func buildModels(cfg Config) []ce.Estimator {
	mscnCfg := mscn.DefaultConfig()
	lwnnCfg := lwnn.DefaultConfig()
	lwxgbCfg := lwxgb.DefaultConfig()
	ddCfg := deepdb.DefaultConfig()
	bcCfg := bayescard.DefaultConfig()
	ncCfg := neurocard.DefaultConfig()
	uaeCfg := uae.DefaultConfig()
	if cfg.Fast {
		mscnCfg.Epochs = 6
		lwnnCfg.Epochs = 8
		lwxgbCfg.GBT.Rounds = 20
		ncCfg.Epochs = 2
		ncCfg.Samples = 24
		uaeCfg.Epochs = 2
		uaeCfg.Samples = 24
		uaeCfg.CorrEpochs = 6
	}
	mscnCfg.Seed = cfg.Seed + 11
	lwnnCfg.Seed = cfg.Seed + 12
	ddCfg.Seed = cfg.Seed + 13
	ncCfg.Seed = cfg.Seed + 14
	uaeCfg.Seed = cfg.Seed + 15
	return []ce.Estimator{
		mscn.New(mscnCfg),
		lwnn.New(lwnnCfg),
		lwxgb.New(lwxgbCfg),
		deepdb.New(ddCfg),
		bayescard.New(bcCfg),
		neurocard.New(ncCfg),
		uae.New(uaeCfg),
		pglike.New(),
		nil, // Ensemble is assembled after the members are trained.
	}
}

// Prepared is a labeling run staged between phases: the workload has been
// generated and labeled by the oracle, the join sample drawn, and the
// untrained model registry built. Model training jobs (TrainModel) are
// independent of each other — every model owns its RNG, seeded from the
// run configuration, and only reads the shared dataset/sample/sizes — so a
// corpus driver can fan (dataset, model) pairs over a worker pool and
// still produce exactly the labels of the serial path.
type Prepared struct {
	D      *dataset.Dataset
	Cfg    Config
	Train  []*workload.Query
	Test   []*workload.Query
	Sample *engine.JoinSample
	Sizes  *ce.SubsetSizes
	Models []ce.Estimator

	start time.Time
}

// Prepare stages a labeling run for d: it generates the workload with true
// cardinalities acquired from the engine's batched oracle (shared
// per-dataset join index, one evaluator per worker; see workload.Label),
// splits it, draws the join sample, and builds the untrained registry.
func Prepare(d *dataset.Dataset, cfg Config) (*Prepared, error) {
	p := &Prepared{D: d, Cfg: cfg, start: time.Now()}
	qs := workload.Generate(d, workload.DefaultConfig(cfg.NumQueries, cfg.Seed))
	p.Train, p.Test = workload.Split(qs, cfg.TrainFrac, cfg.Seed+1)
	if len(p.Train) == 0 || len(p.Test) == 0 {
		return nil, fmt.Errorf("testbed: degenerate workload split (%d train, %d test)", len(p.Train), len(p.Test))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	p.Sample = engine.SampleJoin(d, cfg.SampleRows, rng)
	// Join-subset sizes are shared across the data-driven models instead
	// of each recomputing them.
	p.Sizes = ce.ComputeSubsetSizes(d)
	p.Models = buildModels(cfg)
	for _, m := range p.Models {
		if sa, ok := m.(ce.SizeAware); ok {
			sa.SetSubsetSizes(p.Sizes)
		}
	}
	return p, nil
}

// NumModels returns the registry size, the number of TrainModel jobs.
func (p *Prepared) NumModels() int { return len(p.Models) }

// TrainModel trains registry entry i. Jobs are mutually independent and
// touch only read-only shared state, so distinct indexes may run
// concurrently (also across Prepared instances).
func (p *Prepared) TrainModel(i int) error {
	m := p.Models[i]
	if m == nil {
		return nil
	}
	var err error
	switch tm := m.(type) {
	case ce.Hybrid:
		err = tm.TrainBoth(p.D, p.Sample, p.Train)
	case ce.DataDriven:
		err = tm.TrainData(p.D, p.Sample)
	case ce.QueryDriven:
		err = tm.TrainQueries(p.D, p.Train)
	default:
		err = fmt.Errorf("model %s implements no training interface", m.Name())
	}
	if err != nil {
		return fmt.Errorf("testbed: training %s on %s: %w", ModelNames[i], p.D.Name, err)
	}
	return nil
}

// Finish assembles the ensemble, measures every model on the testing
// queries, and normalizes the scores into the label.
func (p *Prepared) Finish() (*Result, error) {
	models := p.Models
	members := make([]ce.Estimator, 0, NumModels-2)
	for i := 0; i < ModelPostgres; i++ {
		members = append(members, models[i])
	}
	// Calibrate the ensemble on a slice of the training queries to keep
	// labeling cost bounded.
	calib := p.Train
	if len(calib) > 40 {
		calib = calib[:40]
	}
	models[ModelEnsemble] = ensemble.New(members, calib)

	label := &Label{DatasetName: p.D.Name, Perfs: make([]metrics.Perf, NumModels)}
	for i, m := range models {
		ests := make([]float64, len(p.Test))
		truths := make([]float64, len(p.Test))
		t0 := time.Now()
		for qi, q := range p.Test {
			ests[qi] = m.Estimate(q)
			truths[qi] = float64(q.TrueCard)
		}
		elapsed := time.Since(t0)
		label.Perfs[i] = metrics.Perf{
			QErrorMean:  metrics.MeanQError(ests, truths),
			LatencyMean: elapsed.Seconds() / float64(len(p.Test)),
		}
	}
	label.Sa, label.Se = metrics.NormalizeScores(label.Perfs[:NumCandidates])
	return &Result{
		Label:        label,
		Models:       models,
		Train:        p.Train,
		Test:         p.Test,
		LabelingTime: time.Since(p.start),
	}, nil
}

// Run labels one dataset serially: it trains all models and measures them
// on the testing queries.
func Run(d *dataset.Dataset, cfg Config) (*Result, error) {
	p, err := Prepare(d, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.NumModels(); i++ {
		if err := p.TrainModel(i); err != nil {
			return nil, err
		}
	}
	return p.Finish()
}

// LabelOnly runs the testbed and returns just the label.
func LabelOnly(d *dataset.Dataset, cfg Config) (*Label, error) {
	res, err := Run(d, cfg)
	if err != nil {
		return nil, err
	}
	return res.Label, nil
}
