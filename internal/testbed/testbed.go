// Package testbed implements the paper's unified cardinality-estimation
// testbed (Section IV-B): for each dataset it generates a workload,
// acquires true cardinalities from the execution engine, trains every
// registered CE model through the unified ce.Model lifecycle (one
// Fit(*ce.TrainInput) per model; the model's registered Kind declares
// which input fields it consumes), measures mean Q-error and mean
// inference latency on the testing queries via the batched estimation
// path, and normalizes the measurements into score vectors (Eq. 2-4) —
// the labels that AutoCE's graph encoder learns from.
//
// The model zoo itself lives in the ce registry (populated by the blank
// zoo import below); the testbed derives model order, names, and the
// candidate set from it rather than hard-coding them.
package testbed

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ce"
	_ "repro/internal/ce/zoo" // register the paper's nine baselines
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Registry-derived model facts, fixed at init (the zoo import above runs
// first). The first seven registry entries are the paper's candidate set M
// (three query-driven, three data-driven, one hybrid); Postgres and
// Ensemble complete the nine baselines of Section VII-A — they are
// measured (Perfs) for the Figure 9 and Table V comparisons but are not
// selection candidates.
var (
	// ModelNames lists the registry names in registry (rank) order.
	ModelNames = ce.Names()
	// NumModels is the registry size.
	NumModels = ce.NumModels()
	// NumCandidates is |M|, the candidate-set size.
	NumCandidates = ce.NumCandidates()
)

// Candidates returns the registry indexes of the candidate set M.
func Candidates() []int { return ce.CandidateIndexes() }

// ModelIndex returns the registry index of a model name, or -1.
func ModelIndex(name string) int { return ce.Index(name) }

// CandidateModelName maps a candidate-set index — the position inside the
// advisor's Sa/Se label vectors and Recommendation.Scores — to the
// registry model name. While the candidate set occupies the registry
// prefix the two index spaces coincide, but a registered non-prefix
// candidate would silently shift them apart, so consumers of advisor
// output must translate through this (or Candidates()) rather than
// indexing ModelNames directly.
func CandidateModelName(i int) (string, bool) {
	cands := Candidates()
	if i < 0 || i >= len(cands) {
		return "", false
	}
	return ModelNames[cands[i]], true
}

// CandidateModelLabel is CandidateModelName with a "?" fallback, for
// display code (reports, examples).
func CandidateModelLabel(i int) string {
	name, ok := CandidateModelName(i)
	if !ok {
		return "?"
	}
	return name
}

// QueryDrivenSet reports which candidate registry entries are query-
// driven; the Table III (CEB) experiment restricts itself to these, as the
// paper does.
func QueryDrivenSet() []int { return ce.CandidateIndexesOfKind(ce.QueryDriven) }

// Config controls one labeling run.
type Config struct {
	// NumQueries is the total workload size; TrainFrac of it trains the
	// query-driven models and the rest measures all models.
	NumQueries int
	TrainFrac  float64
	// SampleRows caps the join sample for data-driven training.
	SampleRows int
	// Fast shrinks the neural models' training budget; used by unit tests
	// and the quick experiment scale.
	Fast bool
	Seed int64
}

// DefaultConfig returns the labeling configuration used by the experiment
// harness (a scaled-down version of the paper's 10,000-query workloads;
// see DESIGN.md, substitutions).
func DefaultConfig(seed int64) Config {
	return Config{NumQueries: 220, TrainFrac: 0.55, SampleRows: 1200, Seed: seed}
}

// zooConfig maps a labeling run onto the registry's shared configuration.
func (cfg Config) zooConfig() ce.Config { return ce.Config{Fast: cfg.Fast, Seed: cfg.Seed} }

// Label is the testbed's output for one dataset. Perfs holds the raw
// measurements for all NumModels registry entries; Sa and Se are the
// normalized accuracy/efficiency scores over the candidate set M
// (NumCandidates entries), the label vectors the advisor learns from.
type Label struct {
	DatasetName string
	Perfs       []metrics.Perf
	Sa, Se      []float64
}

// ScoreVector combines the normalized candidate scores for an accuracy
// weight wa (Eq. 2); the result is the paper's label vector y_i for that
// weight, of length NumCandidates.
func (l *Label) ScoreVector(wa float64) []float64 {
	return metrics.CombineScores(l.Sa, l.Se, wa)
}

// BestModel returns the index of the optimal candidate under weight wa.
func (l *Label) BestModel(wa float64) int {
	return metrics.ArgMax(l.ScoreVector(wa))
}

// FullScoreVector normalizes over every measured model (including
// Postgres and the ensemble) — the scale used when Figure 9 reports
// D-error for the non-candidate baselines.
func (l *Label) FullScoreVector(wa float64) []float64 {
	sa, se := metrics.NormalizeScores(l.Perfs)
	return metrics.CombineScores(sa, se, wa)
}

// Result bundles everything a labeling run produced, so callers (the
// sampling baseline, the E2E experiment) can reuse the trained models and
// workload.
type Result struct {
	Label  *Label
	Models []ce.Model
	Train  []*workload.Query
	Test   []*workload.Query
	// LabelingTime is the wall-clock cost of the full run — the quantity
	// the paper's Figure 12 compares against AutoCE's inference time.
	LabelingTime time.Duration
}

// Prepared is a labeling run staged between phases: the workload has been
// generated and labeled by the oracle, the join sample drawn, and the
// untrained registry instantiated. Model training jobs (TrainModel) are
// independent of each other — every model owns its RNG, seeded from the
// run configuration, and only reads the shared TrainInput — so a corpus
// driver can fan (dataset, model) pairs over a worker pool and still
// produce exactly the labels of the serial path.
type Prepared struct {
	D      *dataset.Dataset
	Cfg    Config
	Train  []*workload.Query
	Test   []*workload.Query
	Sample *engine.JoinSample
	Sizes  *ce.SubsetSizes
	Models []ce.Model

	specs []ce.Spec
	input *ce.TrainInput
	start time.Time
}

// Prepare stages a labeling run for d: it generates the workload with true
// cardinalities acquired from the engine's batched oracle (shared
// per-dataset join index, one evaluator per worker; see workload.Label),
// splits it, draws the join sample, and instantiates the untrained
// registry.
func Prepare(d *dataset.Dataset, cfg Config) (*Prepared, error) {
	//autoce:ignore detpath -- run wall time for the returned report's TotalTime; it never enters labels
	p := &Prepared{D: d, Cfg: cfg, start: time.Now()}
	qs := workload.Generate(d, workload.DefaultConfig(cfg.NumQueries, cfg.Seed))
	p.Train, p.Test = workload.Split(qs, cfg.TrainFrac, cfg.Seed+1)
	if len(p.Train) == 0 || len(p.Test) == 0 {
		return nil, fmt.Errorf("testbed: degenerate workload split (%d train, %d test)", len(p.Train), len(p.Test))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	p.Sample = engine.SampleJoin(d, cfg.SampleRows, rng)
	// Join-subset sizes are shared across the data-driven models instead
	// of each recomputing them.
	p.Sizes = ce.ComputeSubsetSizes(d)
	p.specs = ce.Specs()
	p.Models = ce.NewModels(cfg.zooConfig())
	p.input = &ce.TrainInput{Dataset: d, Sample: p.Sample, Queries: p.Train, Sizes: p.Sizes}
	return p, nil
}

// NumModels returns the registry size, the number of TrainModel jobs.
func (p *Prepared) NumModels() int { return len(p.Models) }

// TrainModel trains registry entry i through the unified lifecycle. Jobs
// are mutually independent and touch only read-only shared state, so
// distinct indexes may run concurrently (also across Prepared instances).
// Composite models (the ensemble) have no independent training phase;
// Finish fits them on the trained members.
func (p *Prepared) TrainModel(i int) error {
	if p.specs[i].Kind == ce.Composite {
		return nil
	}
	if err := p.Models[i].Fit(p.input); err != nil {
		return fmt.Errorf("testbed: training %s on %s: %w", p.specs[i].Name, p.D.Name, err)
	}
	return nil
}

// Finish fits the composite models on the trained candidates, measures
// every model on the testing queries through the batched estimation path,
// and normalizes the scores into the label.
func (p *Prepared) Finish() (*Result, error) {
	models := p.Models
	// Calibrate composites on a cloned (not aliased) bounded slice of the
	// training queries to keep labeling cost bounded.
	calibN := len(p.Train)
	if calibN > 40 {
		calibN = 40
	}
	calib := append([]*workload.Query(nil), p.Train[:calibN]...)
	members := make([]ce.Estimator, 0, NumCandidates)
	for _, ci := range Candidates() {
		members = append(members, models[ci])
	}
	for i, spec := range p.specs {
		if spec.Kind != ce.Composite {
			continue
		}
		err := models[i].Fit(&ce.TrainInput{Dataset: p.D, Members: members, Queries: calib})
		if err != nil {
			return nil, fmt.Errorf("testbed: assembling %s on %s: %w", spec.Name, p.D.Name, err)
		}
	}

	// Truths are assembled outside the timed region, so LatencyMean
	// measures estimation alone. Measurement rides EstimateBatch — the
	// serving hot path — deliberately: Se scores efficiency as served,
	// so models whose batch path parallelizes or vectorizes are credited
	// for it (on a single-core box this coincides with the historical
	// per-query loop; estimates themselves are bit-identical either way).
	truths := make([]float64, len(p.Test))
	for qi, q := range p.Test {
		truths[qi] = float64(q.TrueCard)
	}
	label := &Label{DatasetName: p.D.Name, Perfs: make([]metrics.Perf, len(models))}
	for i, m := range models {
		//autoce:ignore detpath -- measured inference latency IS the Se efficiency signal (paper Eq. 4); only the Sa/Se normalization is pinned deterministic
		t0 := time.Now()
		ests := m.EstimateBatch(p.Test)
		elapsed := time.Since(t0)
		label.Perfs[i] = metrics.Perf{
			QErrorMean:  metrics.MeanQError(ests, truths),
			LatencyMean: elapsed.Seconds() / float64(len(p.Test)),
		}
	}
	label.Sa, label.Se = metrics.NormalizeScores(label.Perfs[:NumCandidates])
	return &Result{
		Label:        label,
		Models:       models,
		Train:        p.Train,
		Test:         p.Test,
		LabelingTime: time.Since(p.start),
	}, nil
}

// Run labels one dataset serially: it trains all models and measures them
// on the testing queries.
func Run(d *dataset.Dataset, cfg Config) (*Result, error) {
	p, err := Prepare(d, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.NumModels(); i++ {
		if err := p.TrainModel(i); err != nil {
			return nil, err
		}
	}
	return p.Finish()
}

// LabelOnly runs the testbed and returns just the label.
func LabelOnly(d *dataset.Dataset, cfg Config) (*Label, error) {
	res, err := Run(d, cfg)
	if err != nil {
		return nil, err
	}
	return res.Label, nil
}

// NewTrainInput stages a standalone training input for one dataset: an
// oracle-labeled workload (all of it used for training), a join sample,
// and the shared subset sizes. It is the serving path's onramp — the
// /train endpoint feeds the result to a single registry model's Fit —
// and generally the cheapest way to train one model outside a full
// labeling run.
func NewTrainInput(d *dataset.Dataset, cfg Config) *ce.TrainInput {
	return NewTrainInputFor(d, cfg, ce.Hybrid)
}

// NewTrainInputFor is NewTrainInput specialized to the training kind of
// the one model being fitted, building only the input halves that kind
// consumes: query-driven models read no join sample or subset sizes
// (skipping the exact subset-size enumeration), and data-driven models
// read no labeled workload (skipping oracle labeling).
func NewTrainInputFor(d *dataset.Dataset, cfg Config, kind ce.Kind) *ce.TrainInput {
	in, _ := NewTrainInputForCtx(context.Background(), d, cfg, kind)
	return in
}

// NewTrainInputForCtx is NewTrainInputFor under a deadline: each staging
// phase (workload labeling, join sampling, subset-size enumeration)
// checks ctx before starting, and the subset-size enumeration — the
// phase whose cost grows exponentially with table count — additionally
// cancels mid-loop. The returned TrainInput carries ctx onward so Fit
// implementations observe the same deadline at their epoch checkpoints.
func NewTrainInputForCtx(ctx context.Context, d *dataset.Dataset, cfg Config, kind ce.Kind) (*ce.TrainInput, error) {
	in := &ce.TrainInput{Dataset: d, Ctx: ctx}
	if kind != ce.DataDriven {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		in.Queries = workload.Generate(d, workload.DefaultConfig(cfg.NumQueries, cfg.Seed))
	}
	if kind != ce.QueryDriven {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 2))
		in.Sample = engine.SampleJoin(d, cfg.SampleRows, rng)
		sizes, err := ce.ComputeSubsetSizesCtx(ctx, d)
		if err != nil {
			return nil, err
		}
		in.Sizes = sizes
	}
	return in, nil
}
