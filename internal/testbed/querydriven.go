package testbed

import (
	"fmt"
	"time"

	"repro/internal/ce"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunQueryDriven labels a dataset with the query-driven models only, on an
// externally supplied workload — the protocol of the paper's Table III
// (CEB benchmark), where the data-driven models are skipped for cost. The
// returned Label has full-length vectors; non-query-driven positions carry
// zero scores and zero Perfs and must not be interpreted.
func RunQueryDriven(d *dataset.Dataset, train, test []*workload.Query, cfg Config) (*Label, error) {
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("testbed: empty query-driven workload")
	}
	models := buildModels(cfg)
	qd := QueryDrivenSet()
	label := &Label{
		DatasetName: d.Name,
		Perfs:       make([]metrics.Perf, NumModels),
		Sa:          make([]float64, NumCandidates),
		Se:          make([]float64, NumCandidates),
	}
	var perfs []metrics.Perf
	for _, mi := range qd {
		qm, ok := models[mi].(ce.QueryDriven)
		if !ok {
			return nil, fmt.Errorf("testbed: model %s is not query-driven", ModelNames[mi])
		}
		if err := qm.TrainQueries(d, train); err != nil {
			return nil, fmt.Errorf("testbed: training %s: %w", ModelNames[mi], err)
		}
		ests := make([]float64, len(test))
		truths := make([]float64, len(test))
		t0 := time.Now()
		for qi, q := range test {
			ests[qi] = qm.Estimate(q)
			truths[qi] = float64(q.TrueCard)
		}
		elapsed := time.Since(t0)
		p := metrics.Perf{
			QErrorMean:  metrics.MeanQError(ests, truths),
			LatencyMean: elapsed.Seconds() / float64(len(test)),
		}
		label.Perfs[mi] = p
		perfs = append(perfs, p)
	}
	sa, se := metrics.NormalizeScores(perfs)
	for i, mi := range qd {
		label.Sa[mi] = sa[i]
		label.Se[mi] = se[i]
	}
	return label, nil
}
