package testbed

import (
	"fmt"
	"time"

	"repro/internal/ce"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunQueryDriven labels a dataset with the query-driven candidates only,
// on an externally supplied workload — the protocol of the paper's Table
// III (CEB benchmark), where the data-driven models are skipped for cost.
// The candidate subset is derived from the registry (QueryDrivenSet). The
// returned Label has full-length vectors; other positions carry zero
// scores and zero Perfs and must not be interpreted.
func RunQueryDriven(d *dataset.Dataset, train, test []*workload.Query, cfg Config) (*Label, error) {
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("testbed: empty query-driven workload")
	}
	models := ce.NewModels(cfg.zooConfig())
	qd := QueryDrivenSet()
	label := &Label{
		DatasetName: d.Name,
		Perfs:       make([]metrics.Perf, len(models)),
		Sa:          make([]float64, NumCandidates),
		Se:          make([]float64, NumCandidates),
	}
	in := &ce.TrainInput{Dataset: d, Queries: train}
	truths := make([]float64, len(test))
	for qi, q := range test {
		truths[qi] = float64(q.TrueCard)
	}
	var perfs []metrics.Perf
	for _, mi := range qd {
		m := models[mi]
		if err := m.Fit(in); err != nil {
			return nil, fmt.Errorf("testbed: training %s: %w", m.Name(), err)
		}
		//autoce:ignore detpath -- measured inference latency IS the Se efficiency signal (paper Eq. 4); only the Sa/Se normalization is pinned deterministic
		t0 := time.Now()
		ests := m.EstimateBatch(test)
		elapsed := time.Since(t0)
		p := metrics.Perf{
			QErrorMean:  metrics.MeanQError(ests, truths),
			LatencyMean: elapsed.Seconds() / float64(len(test)),
		}
		label.Perfs[mi] = p
		perfs = append(perfs, p)
	}
	sa, se := metrics.NormalizeScores(perfs)
	for i, mi := range qd {
		label.Sa[mi] = sa[i]
		label.Se[mi] = se[i]
	}
	return label, nil
}
