package testbed

import "sync"

// TrainAll fans the (dataset, model) training jobs of the prepared runs
// over a pool of workers goroutines and returns the first error. Jobs are
// independent (see Prepared.TrainModel) and each model seeds its own RNG
// from the run configuration, so the trained models — and therefore the
// labels Finish produces — are identical to the serial path regardless of
// scheduling order.
//
// onDone, when non-nil, is invoked (from a worker goroutine) with a run's
// index as soon as that run's last training job completes; runs complete
// in data-dependent order, possibly concurrently with other runs'
// training. Callers use it to Finish and release each run's models while
// the rest of the corpus is still training, keeping peak memory bounded
// by the in-flight window instead of the whole corpus.
func TrainAll(preps []*Prepared, workers int, onDone func(i int) error) error {
	type job struct {
		p  *Prepared
		di int
		mi int
	}
	var jobs []job
	remaining := make([]int, len(preps))
	for di, p := range preps {
		remaining[di] = p.NumModels()
		for mi := 0; mi < p.NumModels(); mi++ {
			jobs = append(jobs, job{p, di, mi})
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	runJob := func(j job) error {
		if e := j.p.TrainModel(j.mi); e != nil {
			return e
		}
		mu.Lock()
		remaining[j.di]--
		done := remaining[j.di] == 0
		mu.Unlock()
		if done && onDone != nil {
			return onDone(j.di)
		}
		return nil
	}
	if workers <= 1 {
		for _, j := range jobs {
			if e := runJob(j); e != nil {
				return e
			}
		}
		return nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= len(jobs) {
					mu.Unlock()
					return
				}
				j := jobs[next]
				next++
				mu.Unlock()
				if e := runJob(j); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}
