package testbed

import (
	"testing"

	"repro/internal/ce"
	"repro/internal/ce/flat"
	"repro/internal/ce/pglike"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// rowCountModel is a deliberately naive "newly-emerged" estimator used to
// exercise the extensibility path: it estimates every query as the product
// of the involved tables' row counts (no selectivity at all). It only has
// to implement ce.Model to join the testbed.
type rowCountModel struct {
	d *dataset.Dataset
}

func (m *rowCountModel) Name() string { return "RowCount" }

func (m *rowCountModel) Fit(in *ce.TrainInput) error {
	m.d = in.Dataset
	return nil
}

func (m *rowCountModel) Estimate(q *workload.Query) float64 {
	est := 1.0
	for _, ti := range q.Tables {
		est *= float64(m.d.Tables[ti].Rows())
	}
	return est
}

func (m *rowCountModel) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.ParallelEstimates(m, qs)
}

func TestRunWithModelsIncorporatesNewBaseline(t *testing.T) {
	d := fixture(t, 2, 7)
	cfg := ExtendedConfig{Config: fastCfg(7)}
	models := []ce.Model{pglike.New(), &rowCountModel{}}
	label, elapsed, err := RunWithModels(d, models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("non-positive labeling time")
	}
	if len(label.Perfs) != 2 || len(label.Sa) != 2 {
		t.Fatalf("label sized %d/%d, want 2/2", len(label.Perfs), len(label.Sa))
	}
	// The histogram model must beat the naive row-count model on accuracy,
	// so normalization puts it at 1.
	if label.Sa[0] != 1 || label.Sa[1] != 0 {
		t.Fatalf("accuracy scores %v; pglike should dominate the naive baseline", label.Sa)
	}
}

func TestRunWithModelsPercentileSummary(t *testing.T) {
	d := fixture(t, 1, 8)
	for _, s := range []Summary{SummaryMean, SummaryP50, SummaryP95, SummaryP99} {
		cfg := ExtendedConfig{Config: fastCfg(8), QErrorSummary: s}
		label, _, err := RunWithModels(d, []ce.Model{pglike.New(), &rowCountModel{}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range label.Perfs {
			if p.QErrorMean < 1 {
				t.Fatalf("summary %d model %d: aggregate %g < 1", s, i, p.QErrorMean)
			}
		}
	}
	// P99 of the naive model should be at least its median.
	cfgP50 := ExtendedConfig{Config: fastCfg(8), QErrorSummary: SummaryP50}
	cfgP99 := ExtendedConfig{Config: fastCfg(8), QErrorSummary: SummaryP99}
	l50, _, err := RunWithModels(d, []ce.Model{pglike.New(), &rowCountModel{}}, cfgP50)
	if err != nil {
		t.Fatal(err)
	}
	l99, _, err := RunWithModels(d, []ce.Model{pglike.New(), &rowCountModel{}}, cfgP99)
	if err != nil {
		t.Fatal(err)
	}
	if l99.Perfs[1].QErrorMean < l50.Perfs[1].QErrorMean {
		t.Fatalf("P99 %g < P50 %g", l99.Perfs[1].QErrorMean, l50.Perfs[1].QErrorMean)
	}
}

func TestRunWithModelsRejectsDegenerateInput(t *testing.T) {
	d := fixture(t, 1, 9)
	if _, _, err := RunWithModels(d, []ce.Model{pglike.New()}, ExtendedConfig{Config: fastCfg(9)}); err == nil {
		t.Fatal("single-model candidate set accepted")
	}
}

func TestRunWithModelsOnboardsFLAT(t *testing.T) {
	// The paper's Section VIII highlights FLAT as a newly emerged
	// data-driven model; onboarding it is exactly one registry entry
	// through the extensible labeling path.
	d := fixture(t, 2, 10)
	cfg := ExtendedConfig{Config: fastCfg(10)}
	models := []ce.Model{flat.New(flat.DefaultConfig()), pglike.New(), &rowCountModel{}}
	label, _, err := RunWithModels(d, models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(label.Sa) != 3 {
		t.Fatalf("score vector length %d", len(label.Sa))
	}
	// FLAT must at least beat the naive row-count baseline on accuracy.
	if label.Perfs[0].QErrorMean >= label.Perfs[2].QErrorMean {
		t.Fatalf("FLAT Q-error %g no better than row-count %g",
			label.Perfs[0].QErrorMean, label.Perfs[2].QErrorMean)
	}
}
