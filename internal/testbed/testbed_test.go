package testbed

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func fixture(t *testing.T, tables int, seed int64) *dataset.Dataset {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 100, MaxRows: 200,
		Domain: 30,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 0.7,
		JoinLo: 0.4, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("tb", p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fastCfg(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.NumQueries = 60
	cfg.SampleRows = 300
	cfg.Fast = true
	return cfg
}

func TestRunLabelsSingleTableDataset(t *testing.T) {
	d := fixture(t, 1, 1)
	res, err := Run(d, fastCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	l := res.Label
	if len(l.Perfs) != NumModels {
		t.Fatalf("got %d perfs, want %d", len(l.Perfs), NumModels)
	}
	for i, p := range l.Perfs {
		if p.QErrorMean < 1 {
			t.Fatalf("model %s mean Q-error %g < 1", ModelNames[i], p.QErrorMean)
		}
		if p.LatencyMean < 0 {
			t.Fatalf("model %s negative latency", ModelNames[i])
		}
	}
	// Normalized scores are in [0,1] with at least one 1 and one 0 per
	// metric (unless tied, which nine distinct models never are here).
	checkScores := func(name string, s []float64) {
		var has1, has0 bool
		for _, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("%s score %g outside [0,1]", name, v)
			}
			if v == 1 {
				has1 = true
			}
			if v == 0 {
				has0 = true
			}
		}
		if !has1 || !has0 {
			t.Fatalf("%s scores not min-max normalized: %v", name, s)
		}
	}
	checkScores("accuracy", l.Sa)
	checkScores("efficiency", l.Se)
}

func TestRunLabelsMultiTableDataset(t *testing.T) {
	d := fixture(t, 3, 2)
	res, err := Run(d, fastCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	l := res.Label
	// Estimation sanity: every model must beat a blind guess of 1 on mean
	// Q-error by a wide margin... except that weak models can be bad; we
	// only require finiteness and a plausible upper bound.
	for i, p := range l.Perfs {
		if p.QErrorMean > 1e6 {
			t.Fatalf("model %s mean Q-error %g implausible", ModelNames[i], p.QErrorMean)
		}
	}
	// Latency ordering that the paper's Figure 1(c) relies on: the
	// sampling-based autoregressive models are the slowest.
	ncLat := l.Perfs[ModelIndex("NeuroCard")].LatencyMean
	lwLat := l.Perfs[ModelIndex("LW-NN")].LatencyMean
	if ncLat <= lwLat {
		t.Fatalf("NeuroCard latency %g should exceed LW-NN latency %g", ncLat, lwLat)
	}
}

func TestScoreVectorAndBestModel(t *testing.T) {
	d := fixture(t, 1, 3)
	l, err := LabelOnly(d, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, wa := range []float64{0, 0.5, 1} {
		sv := l.ScoreVector(wa)
		if len(sv) != NumCandidates {
			t.Fatalf("score vector length %d", len(sv))
		}
		full := l.FullScoreVector(wa)
		if len(full) != NumModels {
			t.Fatalf("full score vector length %d", len(full))
		}
		best := l.BestModel(wa)
		if best != metrics.ArgMax(sv) {
			t.Fatal("BestModel disagrees with ArgMax")
		}
	}
	// wa=1 best is the accuracy winner; wa=0 best is the latency winner.
	if l.BestModel(1) != metrics.ArgMax(l.Sa) {
		t.Fatal("wa=1 should select the accuracy winner")
	}
	if l.BestModel(0) != metrics.ArgMax(l.Se) {
		t.Fatal("wa=0 should select the efficiency winner")
	}
}

func TestQueryDrivenSet(t *testing.T) {
	qd := QueryDrivenSet()
	if len(qd) != 3 {
		t.Fatalf("query-driven set size %d", len(qd))
	}
	for _, i := range qd {
		switch ModelNames[i] {
		case "MSCN", "LW-NN", "LW-XGB":
		default:
			t.Fatalf("unexpected query-driven model %s", ModelNames[i])
		}
	}
}

func TestModelsBeatBlindGuessOnAccuracy(t *testing.T) {
	// On an easy single-table dataset, the best model should have a low
	// mean Q-error, and the spread across models should be non-trivial
	// (otherwise score vectors carry no signal for the advisor).
	d := fixture(t, 1, 4)
	l, err := LabelOnly(d, fastCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	best, worst := l.Perfs[0].QErrorMean, l.Perfs[0].QErrorMean
	for _, p := range l.Perfs[1:] {
		if p.QErrorMean < best {
			best = p.QErrorMean
		}
		if p.QErrorMean > worst {
			worst = p.QErrorMean
		}
	}
	if best > 5 {
		t.Fatalf("best model's mean Q-error %g is too high for an easy dataset", best)
	}
	if worst/best < 1.05 {
		t.Fatalf("no spread across models: best %g worst %g", best, worst)
	}
}
