package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the fused dataset-statistics engine — the fast path under
// feature extraction. The per-call functions in stats.go (ColumnStats,
// EqualFraction, JoinCorrelation, Column.DistinctCount) define the
// semantics; the types here compute the same numbers in a fraction of
// the passes and allocations:
//
//   - Summary is one table's statistics block. Each column goes through
//     the adaptive statistics kernel (colStatsKernel): a single-pass
//     value histogram for bounded integer domains — moments, min/max,
//     and the exact distinct count all fall out of one scan over the
//     occupied bins — with a generic unrolled two-pass fallback for wide
//     spans (bitset or reused open-addressing set for distinct counting,
//     never a per-call map). The same kernel pass emits two byte planes
//     (low/high byte of every value), and all C(m,2) pairwise
//     equal-fractions come from a SWAR sweep over those planes: 8 rows
//     per uint64, exact popcounts when a pair's combined span fits 8 or
//     16 bits (always, for this repository's bounded domains), and a
//     16-bit fingerprint screen with value verification beyond that — so
//     every count is exact. On multi-core hosts large builds fan columns
//     and pair rows over GOMAXPROCS goroutines.
//
//   - Stats is a per-dataset view: lazily built per-table Summaries plus
//     every FK edge's join correlation, derived from one distinct-value
//     set (dense bitset or hash set) per endpoint column — the naive
//     path rebuilds the PK set once per incident FK. StatsFor caches one
//     Stats per dataset, mirroring engine.IndexFor; mutation paths must
//     call InvalidateStats, exactly like engine.InvalidateIndex.
//
//   - SummaryOpts.SampleRows gates the sampled mode for user-scale
//     tables. Bounded-domain columns stay on the exact histogram kernel
//     (already O(rows + span)); wide columns estimate moments from a
//     deterministic reservoir row sample and distinct counts and join
//     correlations from KMV (k-minimum-values) sketches, keeping
//     min/max exact — so featurizing an unbinned million-row table costs
//     one cheap streaming pass per column plus O(SampleRows · m²).
//
// Exact-mode summaries are bit-identical to the per-call API
// (ColumnStats shares colStatsKernel; equal fractions and join
// correlations are exact integer-count ratios). The differential tests
// in summary_test.go pin all of this against independent naive
// implementations, including the seed's ordered two-pass moments (the
// kernels reorder float accumulation, so those agree to ~1e-12 relative
// rather than bit-for-bit).

// ---------------------------------------------------------------- intSet

// intSet is a reusable open-addressing (linear-probe) set of int64 values.
// It exists to replace the throwaway map[int64]struct{} allocations on the
// statistics hot paths; reset reuses the backing arrays across columns.
type intSet struct {
	slots []int64
	used  []bool
	mask  uint64
	n     int
}

// mix64 is a SplitMix64-style finalizer. It is a bijection on uint64, so
// two distinct column values never collide to the same hash (probing
// resolves slot collisions; value collisions cannot happen).
func mix64(v int64) uint64 {
	h := uint64(v)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// reset clears the set and ensures capacity for about hint insertions.
func (s *intSet) reset(hint int) {
	want := 16
	for want < 2*hint {
		want <<= 1
	}
	if cap(s.slots) >= want && len(s.slots) >= want {
		clear(s.used)
		s.n = 0
		return
	}
	s.slots = make([]int64, want)
	s.used = make([]bool, want)
	s.mask = uint64(want - 1)
	s.n = 0
}

// add inserts v and reports whether it was absent.
func (s *intSet) add(v int64) bool {
	i := mix64(v) & s.mask
	for s.used[i] {
		if s.slots[i] == v {
			return false
		}
		i = (i + 1) & s.mask
	}
	s.slots[i] = v
	s.used[i] = true
	s.n++
	if 4*s.n > 3*len(s.slots) {
		s.grow()
	}
	return true
}

// contains reports whether v is in the set.
func (s *intSet) contains(v int64) bool {
	i := mix64(v) & s.mask
	for s.used[i] {
		if s.slots[i] == v {
			return true
		}
		i = (i + 1) & s.mask
	}
	return false
}

// grow doubles the table and rehashes.
func (s *intSet) grow() {
	old, oldUsed := s.slots, s.used
	want := 2 * len(old)
	s.slots = make([]int64, want)
	s.used = make([]bool, want)
	s.mask = uint64(want - 1)
	s.n = 0
	for i, u := range oldUsed {
		if u {
			s.add(old[i])
		}
	}
}

// forEach calls fn for every element.
func (s *intSet) forEach(fn func(v int64)) {
	for i, u := range s.used {
		if u {
			fn(s.slots[i])
		}
	}
}

// ------------------------------------------------------------ KMV sketch

// DefaultKMVSize is the sketch size used when SummaryOpts.KMVSize is 0;
// the relative standard error of the distinct estimate is about
// 1/sqrt(k-1) ≈ 3%.
const DefaultKMVSize = 1024

// kmvSketch is a k-minimum-values distinct sketch: it retains the k
// smallest of the (collision-free) mixed hashes of the values it saw.
// With fewer than k distinct values it degrades to an exact set.
type kmvSketch struct {
	k      int
	heap   []uint64 // max-heap of the k smallest hashes
	member intSet   // current heap contents, for dedup
}

func newKMV(k int) *kmvSketch {
	s := &kmvSketch{k: k}
	s.member.reset(k)
	return s
}

// add folds one value into the sketch.
func (s *kmvSketch) add(v int64) {
	h := mix64(v)
	if len(s.heap) < s.k {
		if s.member.add(int64(h)) {
			s.heap = append(s.heap, h)
			s.siftUp(len(s.heap) - 1)
		}
		return
	}
	if h >= s.heap[0] || s.member.contains(int64(h)) {
		return
	}
	s.member.add(int64(h))
	s.heap[0] = h
	s.siftDown(0)
	// The evicted hash stays in member as a false positive; it is larger
	// than every retained hash, so it can only suppress re-inserting a
	// value that would be rejected by the h >= heap[0] test anyway.
}

func (s *kmvSketch) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *kmvSketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.heap[l] > s.heap[big] {
			big = l
		}
		if r < n && s.heap[r] > s.heap[big] {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// distinct estimates the number of distinct values folded in.
func (s *kmvSketch) distinct() float64 {
	if len(s.heap) < s.k {
		return float64(len(s.heap)) // exact below k
	}
	frac := float64(s.heap[0]) / float64(math.MaxUint64)
	return float64(s.k-1) / frac
}

// sortedHashes returns the retained hashes in ascending order.
func (s *kmvSketch) sortedHashes() []uint64 {
	out := append([]uint64(nil), s.heap...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// kmvJoinCorr estimates JoinCorrelation(fk, pk) = |D(fk) ∩ D(pk)| /
// |D(pk)| from the two sketches. When both sketches are exact (fewer than
// k distinct values each) the result is exact; otherwise the intersection
// is estimated from the k smallest hashes of the union (the standard KMV
// set-operation estimator) and divided by the KMV estimate of |D(pk)|.
func kmvJoinCorr(fk, pk *kmvSketch) float64 {
	a, b := fk.sortedHashes(), pk.sortedHashes()
	if len(b) == 0 {
		return 0
	}
	exact := len(a) < fk.k && len(b) < pk.k
	k := fk.k
	if pk.k < k {
		k = pk.k
	}
	// Merge to the k smallest union hashes, counting those in both.
	common, taken := 0, 0
	var tau uint64
	i, j := 0, 0
	for (i < len(a) || j < len(b)) && (exact || taken < k) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			tau = a[i]
			i++
		case i >= len(a) || b[j] < a[i]:
			tau = b[j]
			j++
		default: // equal: in both
			tau = a[i]
			common++
			i++
			j++
		}
		taken++
	}
	if exact {
		return float64(common) / float64(len(b))
	}
	if taken < 2 {
		return 0
	}
	frac := float64(tau) / float64(math.MaxUint64)
	union := float64(taken-1) / frac
	inter := float64(common) / float64(taken) * union
	corr := inter / pk.distinct()
	if corr < 0 {
		return 0
	}
	if corr > 1 {
		return 1
	}
	return corr
}

// ---------------------------------------------------------------- scratch

// summaryScratch is the reusable working memory of one summary build:
// the value histogram of the single-pass kernel, the open-addressing
// distinct set and seen-bitset of the generic path, the per-column
// byte-plane code buffers for the pair sweep, and the pair counters. A
// sync.Pool amortizes it across tables, columns, and goroutines.
type summaryScratch struct {
	set    intSet
	hist   []int32  // histWindow counters; all-zero between uses
	seen   []uint64 // bitset, 1 bit per value in the span
	codes  []byte
	vals   []int64
	counts []int
	sample []int64
	idx    []int
}

var scratchPool = sync.Pool{New: func() any { return new(summaryScratch) }}

// spanLimit is the widest value span [lo, hi] worth representing densely
// (bitset or histogram-free distinct structures) for a column of n rows:
// max(4096, 8·n) values, one bit each, keeps even a row-count-sized span
// L1/L2-resident. Shared by distinctCount, distinctSet, and the sampled
// column path so the heuristic cannot drift between them.
func spanLimit(n int) int64 {
	limit := int64(8 * n)
	if limit < 4096 {
		limit = 4096
	}
	return limit
}

// distinctCount counts distinct values using a branchless seen-bitset
// when the value span [lo, hi] is narrow (at most max(4096, 8·rows)
// values — one bit each keeps even a row-count-sized span L1/L2-resident)
// and the reused hash set otherwise.
func (sc *summaryScratch) distinctCount(data []int64, lo, hi int64) int {
	span := hi - lo + 1
	if span > 0 && span <= spanLimit(len(data)) {
		words := int((span + 63) / 64)
		if len(sc.seen) < words {
			sc.seen = make([]uint64, words)
		}
		seen := sc.seen[:words]
		clear(seen)
		return fillBitset(seen, data, lo)
	}
	sc.set.reset(len(data))
	for _, v := range data {
		sc.set.add(v)
	}
	return sc.set.n
}

// fillBitset marks every value of data (offset by lo) in the zeroed
// bitset and returns the number of distinct values, branchlessly.
func fillBitset(bits []uint64, data []int64, lo int64) int {
	n := 0
	for _, v := range data {
		idx := uint64(v - lo)
		sh := idx & 63
		old := bits[idx>>6]
		n += int(1 &^ (old >> sh))
		bits[idx>>6] = old | uint64(1)<<sh
	}
	return n
}

// ---------------------------------------------------------------- Summary

// Summary is the fused statistics block of one table: per-column ColStats
// and the full pairwise equal-fraction matrix. In exact mode every number
// is identical to the naive reference functions (ColumnStats,
// EqualFraction); in sampled mode (see SummaryOpts) moments and
// equal-fractions are sample estimates, min/max are exact, and domain
// sizes are KMV estimates.
type Summary struct {
	// Rows is the table's full row count (also ColStats.Count in exact
	// mode).
	Rows int
	// Cols holds one fused ColStats per table column.
	Cols []ColStats
	// Sampled reports whether this summary was estimated from a row
	// sample rather than computed exactly.
	Sampled bool

	ncols int
	eq    []float64 // ncols×ncols equal-fraction matrix, row-major
}

// EqualFrac returns the fraction of rows where columns a and b hold the
// same value — EqualFraction(t.Col(a), t.Col(b)) in exact mode.
func (s *Summary) EqualFrac(a, b int) float64 { return s.eq[a*s.ncols+b] }

// SummaryOpts configures how summaries and join correlations are
// computed. The zero value is exact mode.
type SummaryOpts struct {
	// SampleRows > 0 enables sampled mode for tables with more rows than
	// this: moments and equal-fractions are computed over a reservoir
	// sample of this many rows. Tables at or under the threshold are
	// always computed exactly.
	SampleRows int
	// KMVSize is the distinct-sketch size in sampled mode (0 means
	// DefaultKMVSize).
	KMVSize int
	// Seed makes the reservoir sample deterministic.
	Seed int64
}

func (o SummaryOpts) kmvSize() int {
	if o.KMVSize > 0 {
		return o.KMVSize
	}
	return DefaultKMVSize
}

// NewSummary computes one table's fused statistics block. Large exact
// builds on multi-core hosts fan their per-column kernels and pair-sweep
// rows over GOMAXPROCS goroutines; the result is identical to the serial
// build (columns and pairs are independent).
func NewSummary(t *Table, opts SummaryOpts) *Summary {
	if opts.SampleRows > 0 && t.Rows() > opts.SampleRows {
		sc := scratchPool.Get().(*summaryScratch)
		defer scratchPool.Put(sc)
		return sampledSummary(t, opts, sc)
	}
	// One parallel build at a time: when a worker pool (ExtractBatch,
	// corpus labeling) is already running summary builds concurrently,
	// nesting per-column goroutines under every worker would oversubscribe
	// the CPUs — the CAS lets exactly one build fan out and sends the
	// rest down the serial path.
	if runtime.GOMAXPROCS(0) > 1 && t.NumCols() > 1 && t.Rows() >= 32<<10 &&
		parallelBuild.CompareAndSwap(false, true) {
		defer parallelBuild.Store(false)
		return exactSummaryParallel(t)
	}
	sc := scratchPool.Get().(*summaryScratch)
	defer scratchPool.Put(sc)
	return exactSummary(t, sc)
}

// parallelBuild is true while some exactSummaryParallel is in flight.
var parallelBuild atomic.Bool

// exactSummaryParallel is exactSummary with one goroutine per column
// (each borrowing its own pooled scratch, writing disjoint code planes)
// and the pair triangle split by row.
func exactSummaryParallel(t *Table) *Summary {
	n := t.Rows()
	ncols := t.NumCols()
	s := &Summary{Rows: n, ncols: ncols, Cols: make([]ColStats, ncols), eq: make([]float64, ncols*ncols)}
	codes := make([]byte, 2*ncols*n)
	var wg sync.WaitGroup
	for ci := range t.Cols {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			sc := scratchPool.Get().(*summaryScratch)
			defer scratchPool.Put(sc)
			s.Cols[ci] = sc.colStatsKernel(t.Cols[ci].Data, codes[2*ci*n:(2*ci+2)*n])
		}(ci)
	}
	wg.Wait()
	counts := make([]int, ncols*ncols)
	for a := 0; a < ncols-1; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := a + 1; b < ncols; b++ {
				counts[a*ncols+b] = equalCount(
					t.Cols[a].Data, t.Cols[b].Data,
					codes[2*a*n:(2*a+2)*n], codes[2*b*n:(2*b+2)*n],
					&s.Cols[a], &s.Cols[b])
			}
		}(a)
	}
	wg.Wait()
	fillEqualFrac(s, counts, n)
	return s
}

// exactSummary is the fused exact sweep: one statistics-kernel pass per
// column (which also emits the column's low-16-bit codes), then the SWAR
// code sweep for all C(m,2) equal-fraction counts.
func exactSummary(t *Table, sc *summaryScratch) *Summary {
	n := t.Rows()
	ncols := t.NumCols()
	s := &Summary{Rows: n, ncols: ncols, Cols: make([]ColStats, ncols), eq: make([]float64, ncols*ncols)}
	if n == 0 {
		return s
	}
	if len(sc.codes) < 2*ncols*n {
		sc.codes = make([]byte, 2*ncols*n)
	}
	for ci, col := range t.Cols {
		s.Cols[ci] = sc.colStatsKernel(col.Data, sc.codes[2*ci*n:(2*ci+2)*n])
	}
	if len(sc.counts) < ncols*ncols {
		sc.counts = make([]int, ncols*ncols)
	}
	counts := sc.counts[:ncols*ncols]
	for a := 0; a < ncols; a++ {
		for b := a + 1; b < ncols; b++ {
			counts[a*ncols+b] = equalCount(
				t.Cols[a].Data, t.Cols[b].Data,
				sc.codes[2*a*n:(2*a+2)*n], sc.codes[2*b*n:(2*b+2)*n],
				&s.Cols[a], &s.Cols[b])
		}
	}
	fillEqualFrac(s, counts, n)
	return s
}

// zeroByteMask has bit 7 of every zero byte of x set (exact: the masked
// per-byte add cannot borrow across bytes).
func zeroByteMask(x uint64) uint64 {
	return ^(((x & 0x7f7f7f7f7f7f7f7f) + 0x7f7f7f7f7f7f7f7f) | x) & 0x8080808080808080
}

// equalCount returns the exact number of positions where a and b hold
// the same value, using the columns' code planes (low and high byte of
// each value, written during the stats pass). Three regimes, coarsest
// applicable wins:
//
//   - combined value span < 2^8: low-byte equality IS value equality —
//     pure SWAR popcount, 8 rows per word, no verification;
//   - combined span < 2^16: equality of both byte planes is value
//     equality — two-plane SWAR popcount, still 8 rows per word. This
//     covers every bounded-domain pair in this repository's data model;
//   - wider (key columns, unbinned user data): the two planes form a
//     16-bit fingerprint; a zero-mask screens 8 rows at once and only
//     candidate words — ~1 in 16k rows for non-equal data — are
//     verified against the actual values, so the count stays exact.
func equalCount(a, b []int64, ca, cb []byte, sa, sb *ColStats) int {
	lo, hi := sa.Min, sa.Max
	if sb.Min < lo {
		lo = sb.Min
	}
	if sb.Max > hi {
		hi = sb.Max
	}
	n := len(a)
	cla, cha := ca[:n], ca[n:2*n]
	clb, chb := cb[:n], cb[n:2*n]
	span := uint64(hi - lo)
	cnt := 0
	k := 0
	switch {
	case span < 1<<8:
		for ; k+8 <= n; k += 8 {
			x := binary.LittleEndian.Uint64(cla[k:]) ^ binary.LittleEndian.Uint64(clb[k:])
			cnt += bits.OnesCount64(zeroByteMask(x))
		}
	case span < 1<<16:
		for ; k+8 <= n; k += 8 {
			x := binary.LittleEndian.Uint64(cla[k:]) ^ binary.LittleEndian.Uint64(clb[k:])
			y := binary.LittleEndian.Uint64(cha[k:]) ^ binary.LittleEndian.Uint64(chb[k:])
			cnt += bits.OnesCount64(zeroByteMask(x) & zeroByteMask(y))
		}
	default:
		for ; k+8 <= n; k += 8 {
			x := binary.LittleEndian.Uint64(cla[k:]) ^ binary.LittleEndian.Uint64(clb[k:])
			y := binary.LittleEndian.Uint64(cha[k:]) ^ binary.LittleEndian.Uint64(chb[k:])
			if zeroByteMask(x)&zeroByteMask(y) != 0 {
				for r := k; r < k+8; r++ {
					if a[r] == b[r] {
						cnt++
					}
				}
			}
		}
	}
	for ; k < n; k++ {
		if a[k] == b[k] {
			cnt++
		}
	}
	return cnt
}

// fillEqualFrac converts pair counters into the symmetric matrix
// (diagonal 1, matching EqualFraction of a column with itself).
func fillEqualFrac(s *Summary, counts []int, rows int) {
	for a := 0; a < s.ncols; a++ {
		s.eq[a*s.ncols+a] = 1
		for b := a + 1; b < s.ncols; b++ {
			f := float64(counts[a*s.ncols+b]) / float64(rows)
			s.eq[a*s.ncols+b] = f
			s.eq[b*s.ncols+a] = f
		}
	}
}

// The statistics kernels. colStatsKernel computes one column's ColStats
// (optionally writing the pair-sweep codes) through one of two paths,
// chosen deterministically from the data:
//
//   - Histogram path: when every value fits a 64Ki-wide window anchored
//     at the first element — always true for this repository's bounded
//     integer domains — a single pass builds a value histogram (plus
//     min/max and codes), and mean, central moments, mean deviation, and
//     the distinct count all come from one scan over the occupied bins:
//     O(rows + span) with ~3 integer ops per element, instead of two
//     full floating-point passes.
//
//   - Generic path: wide-span columns fall back to the classic unrolled
//     sum/min-max pass, a central-moment pass, and a bitset/hash-set
//     distinct pass.
//
// ColumnStats routes through the same kernel, so the per-call naive API
// and the fused Summary sweep are bit-identical by construction; the
// independent naive implementations (EqualFraction, JoinCorrelation,
// Column.DistinctCount, and the seed's ordered two-pass moments) are
// pinned against this kernel by the differential tests.

// histWindow is the histogram width of the single-pass kernel. 64Ki
// int32 counters = 256 KiB, of which only the occupied [lo, hi] slice is
// ever scanned or cleared.
const histWindow = 1 << 16

// colStatsKernel computes the column's statistics; codes, when non-nil,
// receives each value's low byte for the equal-fraction pair sweep.
func (sc *summaryScratch) colStatsKernel(data []int64, codes []byte) ColStats {
	n := len(data)
	if n == 0 {
		return ColStats{}
	}
	if int64(n) <= math.MaxInt32 {
		if st, ok := sc.histStats(data, codes); ok {
			return st
		}
	}
	return sc.genericStats(data, codes)
}

// histStats is the single-pass histogram kernel: the hot loop is four
// integer ops per element (window check, counter increment, code write);
// min/max, the distinct count, and the weighted mean then come from one
// scan over the histogram and the central moments from a second scan
// over its occupied range. It reports ok=false — leaving the histogram
// clean — when some value escapes the window, and the caller falls back
// to the generic path.
func (sc *summaryScratch) histStats(data []int64, codes []byte) (ColStats, bool) {
	if len(sc.hist) < histWindow {
		sc.hist = make([]int32, histWindow)
	}
	// Anchoring within histWindow of either int64 extreme would make the
	// window arithmetic wrap (MaxInt64 and MinInt64 could land in the
	// same window and corrupt min/max); such columns take the generic
	// path.
	if data[0] > math.MaxInt64-histWindow || data[0] < math.MinInt64+histWindow {
		return ColStats{}, false
	}
	hist := sc.hist[:histWindow]
	base := data[0] - histWindow/2
	// occ is a register-resident occupancy mask: bit b covers histogram
	// block [b·1024, (b+1)·1024), so the post-pass scans and the clear
	// touch only occupied blocks (one block for a typical bounded
	// domain), not all 64Ki counters.
	var occ uint64
	bailed := false
	if codes == nil {
		for _, v := range data {
			idx := uint64(v) - uint64(base)
			if idx >= histWindow {
				bailed = true
				break
			}
			hist[idx]++
			occ |= 1 << (idx >> 10)
		}
	} else {
		cl, ch := codes[:len(data)], codes[len(data):2*len(data)]
		for i, v := range data {
			idx := uint64(v) - uint64(base)
			if idx >= histWindow {
				bailed = true
				break
			}
			hist[idx]++
			occ |= 1 << (idx >> 10)
			cl[i] = byte(v)
			ch[i] = byte(uint64(v) >> 8)
		}
	}
	if bailed {
		for rest := occ; rest != 0; rest &= rest - 1 {
			blk := bits.TrailingZeros64(rest)
			clear(hist[blk<<10 : (blk+1)<<10])
		}
		return ColStats{}, false
	}
	n := len(data)
	loIdx, hiIdx := -1, 0
	var wsum float64
	distinct := 0
	for rest := occ; rest != 0; rest &= rest - 1 {
		blk := bits.TrailingZeros64(rest)
		for i, c := range hist[blk<<10 : (blk+1)<<10] {
			if c != 0 {
				gi := blk<<10 + i
				distinct++
				wsum += float64(c) * float64(base+int64(gi))
				if loIdx < 0 {
					loIdx = gi
				}
				hiIdx = gi
			}
		}
	}
	mean := wsum / float64(n)
	var m2, m3, m4, mad float64
	for rest := occ; rest != 0; rest &= rest - 1 {
		blk := bits.TrailingZeros64(rest)
		blockCounts := hist[blk<<10 : (blk+1)<<10]
		for i, c := range blockCounts {
			if c != 0 {
				d := float64(base+int64(blk<<10+i)) - mean
				e := d * d
				fc := float64(c)
				m2 += fc * e
				m3 += fc * e * d
				m4 += fc * e * e
				mad += fc * math.Abs(d)
			}
		}
		clear(blockCounts)
	}
	lo, hi := base+int64(loIdx), base+int64(hiIdx)
	return assembleColStats(n, mean, lo, hi, m2, m3, m4, mad, distinct), true
}

// genericStats is the wide-span fallback: an unrolled sum/min-max pass
// (which also writes the codes), a two-lane central-moment pass, and a
// distinct pass over reused scratch.
func (sc *summaryScratch) genericStats(data []int64, codes []byte) ColStats {
	n := len(data)
	sum, lo, hi := sumMinMax(data, codes)
	mean := sum / float64(n)
	m2, m3, m4, mad := momentPass(data, mean)
	return assembleColStats(n, mean, lo, hi, m2, m3, m4, mad, sc.distinctCount(data, lo, hi))
}

// sumMinMax returns the float sum and integer bounds of data (which must
// be non-empty), writing the byte-plane codes when codes is non-nil. Four
// accumulator lanes break the serial FP-add dependency chain; lane j
// takes elements with index ≡ j within the unrolled group and partials
// combine as (s0+s1)+(s2+s3).
func sumMinMax(data []int64, codes []byte) (sum float64, lo, hi int64) {
	var cl, ch []byte
	if codes != nil {
		cl, ch = codes[:len(data)], codes[len(data):2*len(data)]
	}
	lo, hi = data[0], data[0]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(data); i += 4 {
		v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
		s0 += float64(v0)
		s1 += float64(v1)
		s2 += float64(v2)
		s3 += float64(v3)
		if cl != nil {
			cl[i] = byte(v0)
			cl[i+1] = byte(v1)
			cl[i+2] = byte(v2)
			cl[i+3] = byte(v3)
			ch[i] = byte(uint64(v0) >> 8)
			ch[i+1] = byte(uint64(v1) >> 8)
			ch[i+2] = byte(uint64(v2) >> 8)
			ch[i+3] = byte(uint64(v3) >> 8)
		}
		if v0 < lo {
			lo = v0
		}
		if v0 > hi {
			hi = v0
		}
		if v1 < lo {
			lo = v1
		}
		if v1 > hi {
			hi = v1
		}
		if v2 < lo {
			lo = v2
		}
		if v2 > hi {
			hi = v2
		}
		if v3 < lo {
			lo = v3
		}
		if v3 > hi {
			hi = v3
		}
	}
	for j := 0; i < len(data); i, j = i+1, j+1 {
		v := data[i]
		switch j {
		case 0:
			s0 += float64(v)
		case 1:
			s1 += float64(v)
		default:
			s2 += float64(v)
		}
		if cl != nil {
			cl[i] = byte(v)
			ch[i] = byte(uint64(v) >> 8)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return (s0 + s1) + (s2 + s3), lo, hi
}

// momentPass accumulates the 2nd/3rd/4th central moments and the mean
// absolute deviation (unnormalized) in two interleaved lanes, four
// elements in flight per iteration.
func momentPass(data []int64, mean float64) (m2, m3, m4, mad float64) {
	var p2, p3, p4, pa, q2, q3, q4, qa float64
	i := 0
	for ; i+4 <= len(data); i += 4 {
		d0 := float64(data[i]) - mean
		e0 := d0 * d0
		d1 := float64(data[i+1]) - mean
		e1 := d1 * d1
		d2 := float64(data[i+2]) - mean
		e2 := d2 * d2
		d3 := float64(data[i+3]) - mean
		e3 := d3 * d3
		p2 += e0 + e2
		p3 += e0*d0 + e2*d2
		p4 += e0*e0 + e2*e2
		pa += math.Abs(d0) + math.Abs(d2)
		q2 += e1 + e3
		q3 += e1*d1 + e3*d3
		q4 += e1*e1 + e3*e3
		qa += math.Abs(d1) + math.Abs(d3)
	}
	for j := 0; i < len(data); i, j = i+1, j+1 {
		d0 := float64(data[i]) - mean
		e0 := d0 * d0
		if j%2 == 0 {
			p2 += e0
			p3 += e0 * d0
			p4 += e0 * e0
			pa += math.Abs(d0)
		} else {
			q2 += e0
			q3 += e0 * d0
			q4 += e0 * e0
			qa += math.Abs(d0)
		}
	}
	return p2 + q2, p3 + q3, p4 + q4, pa + qa
}

// assembleColStats normalizes the accumulated moments into a ColStats.
func assembleColStats(n int, mean float64, lo, hi int64, m2, m3, m4, mad float64, distinct int) ColStats {
	fn := float64(n)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	mad /= fn
	st := ColStats{
		Count:      n,
		Mean:       mean,
		Std:        math.Sqrt(m2),
		MeanDev:    mad,
		Min:        lo,
		Max:        hi,
		Range:      float64(hi - lo),
		DomainSize: distinct,
	}
	if m2 > 0 {
		st.Skewness = m3 / math.Pow(m2, 1.5)
		st.Kurtosis = m4/(m2*m2) - 3
	}
	return st
}

// sampledSummary estimates the summary from a deterministic reservoir row
// sample shared by all columns (so cross-column equal-fractions stay
// positional), with exact min/max and KMV-estimated domain sizes from one
// streaming pass per column.
func sampledSummary(t *Table, opts SummaryOpts, sc *summaryScratch) *Summary {
	n := t.Rows()
	ncols := t.NumCols()
	s := &Summary{Rows: n, ncols: ncols, Sampled: true, Cols: make([]ColStats, ncols), eq: make([]float64, ncols*ncols)}
	idx := reservoirIndices(n, opts.SampleRows, tableSeed(opts.Seed, t.Name), sc)
	sn := len(idx)
	if len(sc.sample) < sn {
		sc.sample = make([]int64, sn)
	}
	sample := sc.sample[:sn]

	for ci, col := range t.Cols {
		// Bounded-domain columns take the exact histogram kernel — it is
		// already O(rows + span) with a few integer ops per element, so
		// sampling would only add error without saving time.
		if int64(n) <= math.MaxInt32 {
			if st, ok := sc.histStats(col.Data, nil); ok {
				s.Cols[ci] = st
				continue
			}
		}
		// Wide column: exact min/max from one integer pass, moments from
		// the shared row sample, and the distinct count from the exact
		// L1-resident bitset while the value span allows it — the KMV
		// sketch is reserved for spans too wide to bitset.
		lo, hi := col.Data[0], col.Data[0]
		for _, v := range col.Data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo + 1
		var domain int
		if span > 0 && span <= spanLimit(n) {
			domain = sc.distinctCount(col.Data, lo, hi)
		} else {
			kmv := newKMV(opts.kmvSize())
			for _, v := range col.Data {
				kmv.add(v)
			}
			domain = int(kmv.distinct() + 0.5)
		}
		for i, r := range idx {
			sample[i] = col.Data[r]
		}
		st := sc.colStatsKernel(sample, nil)
		st.Count = n
		st.Min, st.Max = lo, hi
		st.Range = float64(hi - lo)
		st.DomainSize = domain
		s.Cols[ci] = st
	}

	if len(sc.counts) < ncols*ncols {
		sc.counts = make([]int, ncols*ncols)
	}
	counts := sc.counts[:ncols*ncols]
	clear(counts)
	if len(sc.vals) < ncols {
		sc.vals = make([]int64, ncols)
	}
	vals := sc.vals[:ncols]
	for _, r := range idx {
		for c := 0; c < ncols; c++ {
			vals[c] = t.Cols[c].Data[r]
		}
		for a := 0; a < ncols; a++ {
			va := vals[a]
			row := counts[a*ncols : (a+1)*ncols]
			for b := a + 1; b < ncols; b++ {
				if va == vals[b] {
					row[b]++
				}
			}
		}
	}
	if sn > 0 {
		fillEqualFrac(s, counts, sn)
	}
	return s
}

// tableSeed derives a per-table RNG seed so multi-table datasets don't
// share one sample stream.
func tableSeed(seed int64, name string) int64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum32())
}

// reservoirIndices draws k of n row indexes uniformly (algorithm R) and
// returns them sorted for cache-friendly gathers.
func reservoirIndices(n, k int, seed int64, sc *summaryScratch) []int {
	if k > n {
		k = n
	}
	if cap(sc.idx) < k {
		sc.idx = make([]int, k)
	}
	idx := sc.idx[:k]
	for i := 0; i < k; i++ {
		idx[i] = i
	}
	if k > 0 && k < n {
		// Algorithm L (Li 1994): geometric skips between replacements, so
		// the number of RNG draws is O(k·log(n/k)) instead of one per row.
		rng := rand.New(rand.NewSource(seed))
		w := math.Exp(math.Log(rng.Float64()) / float64(k))
		i := k - 1
		for {
			i += int(math.Log(rng.Float64())/math.Log(1-w)) + 1
			if i >= n || i < 0 { // i < 0 guards float overflow on tiny w
				break
			}
			idx[rng.Intn(k)] = i
			w *= math.Exp(math.Log(rng.Float64()) / float64(k))
		}
	}
	sort.Ints(idx)
	return idx
}

// ------------------------------------------------------------------ Stats

// Stats is the per-dataset statistics view: lazily built per-table
// Summaries plus the join correlation of every FK edge, derived from one
// distinct-value set (or KMV sketch, in sampled mode) per endpoint
// column. A Stats is safe for concurrent use — feature.ExtractBatch fans
// Summary builds over a worker pool.
type Stats struct {
	d    *Dataset
	opts SummaryOpts

	tabOnce []sync.Once
	tabs    []*Summary
	fkOnce  sync.Once
	fkCorr  []float64
	domOnce sync.Once
	domains int
}

// NewStats returns an uncached statistics view of d. Use StatsFor for the
// shared exact-mode cache.
func NewStats(d *Dataset, opts SummaryOpts) *Stats {
	return &Stats{
		d:       d,
		opts:    opts,
		tabOnce: make([]sync.Once, len(d.Tables)),
		tabs:    make([]*Summary, len(d.Tables)),
	}
}

// Dataset returns the dataset this view was built over.
func (st *Stats) Dataset() *Dataset { return st.d }

// Summary returns table ti's statistics block, computing it on first use.
func (st *Stats) Summary(ti int) *Summary {
	st.tabOnce[ti].Do(func() {
		st.tabs[ti] = NewSummary(st.d.Tables[ti], st.opts)
	})
	return st.tabs[ti]
}

// FKCorrelations returns the measured join correlation of every FK edge,
// in order. Each endpoint column's distinct-value set is computed once
// and shared by all incident edges. The returned slice is owned by the
// Stats; callers must not modify it.
func (st *Stats) FKCorrelations() []float64 {
	st.fkOnce.Do(func() {
		st.fkCorr = make([]float64, len(st.d.FKs))
		if len(st.d.FKs) == 0 {
			return
		}
		if st.opts.SampleRows > 0 {
			st.fkCorrSampled()
			return
		}
		st.fkCorrExact()
	})
	return st.fkCorr
}

type colKey struct{ table, col int }

// distinctSet is one column's set of distinct values: a dense bitset
// over [lo, hi] when the span is narrow relative to the row count (the
// common case for both bounded domains and dense key columns), or the
// open-addressing hash set otherwise.
type distinctSet struct {
	lo, hi int64
	bits   []uint64
	set    *intSet
	n      int
}

func newDistinctSet(data []int64) *distinctSet {
	ds := &distinctSet{}
	if len(data) == 0 {
		return ds
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	ds.lo, ds.hi = lo, hi
	span := hi - lo + 1
	if span > 0 && span <= spanLimit(len(data)) {
		ds.bits = make([]uint64, (span+63)/64)
		ds.n = fillBitset(ds.bits, data, lo)
		return ds
	}
	ds.set = new(intSet)
	ds.set.reset(len(data))
	for _, v := range data {
		ds.set.add(v)
	}
	ds.n = ds.set.n
	return ds
}

func (ds *distinctSet) contains(v int64) bool {
	if ds.bits != nil {
		if v < ds.lo || v > ds.hi {
			return false
		}
		idx := uint64(v - ds.lo)
		return ds.bits[idx>>6]&(uint64(1)<<(idx&63)) != 0
	}
	if ds.set == nil {
		return false
	}
	return ds.set.contains(v)
}

func (ds *distinctSet) forEach(fn func(v int64)) {
	if ds.bits != nil {
		for wi, w := range ds.bits {
			for ; w != 0; w &= w - 1 {
				fn(ds.lo + int64(wi<<6+bits.TrailingZeros64(w)))
			}
		}
		return
	}
	if ds.set != nil {
		ds.set.forEach(fn)
	}
}

// fkCorrExact mirrors JoinCorrelation exactly: |D(fk) ∩ D(pk)| / |D(pk)|
// with one distinct set built per endpoint column and shared by every
// incident edge.
func (st *Stats) fkCorrExact() {
	sets := make(map[colKey]*distinctSet)
	setOf := func(ti, ci int) *distinctSet {
		k := colKey{ti, ci}
		if s, ok := sets[k]; ok {
			return s
		}
		s := newDistinctSet(st.d.Tables[ti].Col(ci).Data)
		sets[k] = s
		return s
	}
	for i, fk := range st.d.FKs {
		pkSet := setOf(fk.ToTable, fk.ToCol)
		if pkSet.n == 0 {
			continue
		}
		fkSet := setOf(fk.FromTable, fk.FromCol)
		inter := 0
		fkSet.forEach(func(v int64) {
			if pkSet.contains(v) {
				inter++
			}
		})
		st.fkCorr[i] = float64(inter) / float64(pkSet.n)
	}
}

// fkCorrSampled estimates the correlations from one KMV sketch per
// endpoint column. Small columns degrade to exact sets inside the sketch.
func (st *Stats) fkCorrSampled() {
	// An endpoint column is cheap to treat exactly when its table is at
	// or under the sampling threshold (the same guarantee the summaries
	// give) or its value span fits the dense bitset; an edge falls back
	// to KMV estimation only when either endpoint is genuinely wide.
	cheapCache := make(map[colKey]bool)
	cheap := func(ti, ci int) bool {
		k := colKey{ti, ci}
		if c, ok := cheapCache[k]; ok {
			return c
		}
		col := st.d.Tables[ti].Col(ci)
		c := len(col.Data) <= st.opts.SampleRows
		if !c && len(col.Data) > 0 {
			lo, hi := col.MinMax()
			span := hi - lo + 1
			c = span > 0 && span <= spanLimit(len(col.Data))
		}
		cheapCache[k] = c
		return c
	}
	exactSets := make(map[colKey]*distinctSet)
	setOf := func(ti, ci int) *distinctSet {
		k := colKey{ti, ci}
		if s, ok := exactSets[k]; ok {
			return s
		}
		s := newDistinctSet(st.d.Tables[ti].Col(ci).Data)
		exactSets[k] = s
		return s
	}
	sketches := make(map[colKey]*kmvSketch)
	sketchOf := func(ti, ci int) *kmvSketch {
		k := colKey{ti, ci}
		if s, ok := sketches[k]; ok {
			return s
		}
		s := newKMV(st.opts.kmvSize())
		for _, v := range st.d.Tables[ti].Col(ci).Data {
			s.add(v)
		}
		sketches[k] = s
		return s
	}
	for i, fk := range st.d.FKs {
		if cheap(fk.FromTable, fk.FromCol) && cheap(fk.ToTable, fk.ToCol) {
			pkSet := setOf(fk.ToTable, fk.ToCol)
			if pkSet.n == 0 {
				continue
			}
			fkSet := setOf(fk.FromTable, fk.FromCol)
			inter := 0
			fkSet.forEach(func(v int64) {
				if pkSet.contains(v) {
					inter++
				}
			})
			st.fkCorr[i] = float64(inter) / float64(pkSet.n)
			continue
		}
		st.fkCorr[i] = kmvJoinCorr(
			sketchOf(fk.FromTable, fk.FromCol),
			sketchOf(fk.ToTable, fk.ToCol))
	}
}

// TotalDomainSize sums the per-column domain sizes of every table.
func (st *Stats) TotalDomainSize() int {
	st.domOnce.Do(func() {
		// Domain sizes only need a min/max pass and a distinct pass per
		// column — not the full Summary with its pairwise equal-fraction
		// sweep — so this aggregate has its own lazy path.
		sc := scratchPool.Get().(*summaryScratch)
		defer scratchPool.Put(sc)
		for _, t := range st.d.Tables {
			for _, c := range t.Cols {
				if len(c.Data) == 0 {
					continue
				}
				lo, hi := c.MinMax()
				st.domains += sc.distinctCount(c.Data, lo, hi)
			}
		}
	})
	return st.domains
}

// ------------------------------------------------------------- the cache

// statsCache maps *Dataset to its shared exact-mode *Stats. Keying by
// pointer is safe for the same reason as the engine's index cache: the
// entry keeps the dataset reachable, so its address cannot be recycled
// while the entry exists. The cost is the same too — a cached dataset is
// pinned until InvalidateStats is called, so transient-dataset paths
// (testbed sampling, datagen rebuilds, corpus labeling) must invalidate.
var statsCache sync.Map

// StatsFor returns the shared cached exact-mode statistics view of d,
// creating it on first use.
func StatsFor(d *Dataset) *Stats {
	if v, ok := statsCache.Load(d); ok {
		return v.(*Stats)
	}
	v, _ := statsCache.LoadOrStore(d, NewStats(d, SummaryOpts{}))
	return v.(*Stats)
}

// InvalidateStats drops the cached statistics of d. Call it after
// mutating d's table data in place (the cached summaries would be stale)
// or when d is transient and its cache entry should not pin it in memory.
func InvalidateStats(d *Dataset) { statsCache.Delete(d) }
