package dataset

import "math"

// Stats bundles the per-column moments and distribution features that
// AutoCE's feature engineering extracts (Section V-A): skewness, kurtosis,
// standard and mean deviation, range, and domain size.
type Stats struct {
	Count      int
	Mean       float64
	Std        float64 // population standard deviation
	MeanDev    float64 // mean absolute deviation from the mean
	Skewness   float64 // standardized third moment
	Kurtosis   float64 // excess kurtosis (normal = 0)
	Min, Max   int64
	Range      float64
	DomainSize int // number of distinct values
}

// ColumnStats computes Stats for a column in a single pass over the data
// (two passes: one for the mean, one for the central moments).
func ColumnStats(c *Column) Stats {
	n := len(c.Data)
	if n == 0 {
		return Stats{}
	}
	var sum float64
	lo, hi := c.Data[0], c.Data[0]
	seen := make(map[int64]struct{}, n)
	for _, v := range c.Data {
		sum += float64(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		seen[v] = struct{}{}
	}
	mean := sum / float64(n)
	var m2, m3, m4, mad float64
	for _, v := range c.Data {
		d := float64(v) - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
		mad += math.Abs(d)
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	mad /= float64(n)

	st := Stats{
		Count:      n,
		Mean:       mean,
		Std:        math.Sqrt(m2),
		MeanDev:    mad,
		Min:        lo,
		Max:        hi,
		Range:      float64(hi - lo),
		DomainSize: len(seen),
	}
	if m2 > 0 {
		st.Skewness = m3 / math.Pow(m2, 1.5)
		st.Kurtosis = m4/(m2*m2) - 3
	}
	return st
}

// EqualFraction returns the fraction of positions where a and b hold the
// same value. This is exactly the paper's column-correlation notion (F2):
// the probability that two columns have the same value at the same position.
// It returns 0 when lengths differ or are zero.
func EqualFraction(a, b *Column) float64 {
	n := len(a.Data)
	if n == 0 || n != len(b.Data) {
		return 0
	}
	eq := 0
	for i := 0; i < n; i++ {
		if a.Data[i] == b.Data[i] {
			eq++
		}
	}
	return float64(eq) / float64(n)
}

// PearsonCorr returns the Pearson correlation coefficient between two
// equal-length columns, or 0 when it is undefined (constant column or
// mismatched length).
func PearsonCorr(a, b *Column) float64 {
	n := len(a.Data)
	if n == 0 || n != len(b.Data) {
		return 0
	}
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += float64(a.Data[i])
		sb += float64(b.Data[i])
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da := float64(a.Data[i]) - ma
		db := float64(b.Data[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// JoinCorrelation measures the paper's join-correlation feature for an FK
// edge: the ratio of the FK column's distinct values over the referenced PK
// column's distinct values (Section V-A: "we compute the join correlation by
// taking the set of the FK column data of a table, then calculating its
// ratio over the PK column data of a joined table"). It returns 0 when the
// PK column has no values.
func JoinCorrelation(fk, pk *Column) float64 {
	pkSet := make(map[int64]struct{}, len(pk.Data))
	for _, v := range pk.Data {
		pkSet[v] = struct{}{}
	}
	if len(pkSet) == 0 {
		return 0
	}
	fkSet := make(map[int64]struct{}, len(fk.Data))
	for _, v := range fk.Data {
		fkSet[v] = struct{}{}
	}
	inter := 0
	for v := range fkSet {
		if _, ok := pkSet[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(pkSet))
}

// MeasuredFKCorrelations recomputes the join correlation of every FK edge
// from the actual column data and returns one value per FK, in order.
func MeasuredFKCorrelations(d *Dataset) []float64 {
	out := make([]float64, len(d.FKs))
	for i, fk := range d.FKs {
		from := d.Tables[fk.FromTable].Col(fk.FromCol)
		to := d.Tables[fk.ToTable].Col(fk.ToCol)
		out[i] = JoinCorrelation(from, to)
	}
	return out
}
