package dataset

import "math"

// ColStats bundles the per-column moments and distribution features that
// AutoCE's feature engineering extracts (Section V-A): skewness, kurtosis,
// standard and mean deviation, range, and domain size.
type ColStats struct {
	Count      int
	Mean       float64
	Std        float64 // population standard deviation
	MeanDev    float64 // mean absolute deviation from the mean
	Skewness   float64 // standardized third moment
	Kurtosis   float64 // excess kurtosis (normal = 0)
	Min, Max   int64
	Range      float64
	DomainSize int // number of distinct values
}

// ColumnStats computes ColStats for one column. It routes through the
// same statistics kernel as the fused Summary sweep (summary.go), so the
// per-call API and the summaries are bit-identical by construction; the
// kernel's two paths (single-pass histogram for bounded integer domains,
// classic two-pass moments for wide spans) are mathematically exact
// reorderings of the textbook formulas — the seed's ordered two-pass
// reference lives on in the differential tests.
func ColumnStats(c *Column) ColStats {
	sc := scratchPool.Get().(*summaryScratch)
	defer scratchPool.Put(sc)
	return sc.colStatsKernel(c.Data, nil)
}

// EqualFraction returns the fraction of positions where a and b hold the
// same value. This is exactly the paper's column-correlation notion (F2):
// the probability that two columns have the same value at the same position.
// It returns 0 when lengths differ or are zero.
func EqualFraction(a, b *Column) float64 {
	n := len(a.Data)
	if n == 0 || n != len(b.Data) {
		return 0
	}
	eq := 0
	for i := 0; i < n; i++ {
		if a.Data[i] == b.Data[i] {
			eq++
		}
	}
	return float64(eq) / float64(n)
}

// PearsonCorr returns the Pearson correlation coefficient between two
// equal-length columns, or 0 when it is undefined (constant column or
// mismatched length).
func PearsonCorr(a, b *Column) float64 {
	n := len(a.Data)
	if n == 0 || n != len(b.Data) {
		return 0
	}
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += float64(a.Data[i])
		sb += float64(b.Data[i])
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da := float64(a.Data[i]) - ma
		db := float64(b.Data[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// JoinCorrelation measures the paper's join-correlation feature for an FK
// edge: the ratio of the FK column's distinct values over the referenced PK
// column's distinct values (Section V-A: "we compute the join correlation by
// taking the set of the FK column data of a table, then calculating its
// ratio over the PK column data of a joined table"). It returns 0 when the
// PK column has no values.
func JoinCorrelation(fk, pk *Column) float64 {
	pkSet := make(map[int64]struct{}, len(pk.Data))
	for _, v := range pk.Data {
		pkSet[v] = struct{}{}
	}
	if len(pkSet) == 0 {
		return 0
	}
	fkSet := make(map[int64]struct{}, len(fk.Data))
	for _, v := range fk.Data {
		fkSet[v] = struct{}{}
	}
	inter := 0
	for v := range fkSet {
		if _, ok := pkSet[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(pkSet))
}

// MeasuredFKCorrelations returns the measured join correlation of every
// FK edge, one value per FK in order, through the dataset's cached Stats
// (each endpoint column's distinct set is built once and shared by all
// incident edges). Callers that mutate d afterwards must InvalidateStats.
func MeasuredFKCorrelations(d *Dataset) []float64 {
	return append([]float64(nil), StatsFor(d).FKCorrelations()...)
}
