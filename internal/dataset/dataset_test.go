package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func col(vals ...int64) *Column { return NewColumn("c", vals) }

func TestColumnBasics(t *testing.T) {
	c := col(3, 1, 4, 1, 5)
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	lo, hi := c.MinMax()
	if lo != 1 || hi != 5 {
		t.Fatalf("MinMax = %d,%d", lo, hi)
	}
	if c.DistinctCount() != 4 {
		t.Fatalf("DistinctCount = %d", c.DistinctCount())
	}
	dv := c.DistinctValues()
	want := []int64{1, 3, 4, 5}
	for i := range want {
		if dv[i] != want[i] {
			t.Fatalf("DistinctValues = %v", dv)
		}
	}
}

func TestEmptyColumn(t *testing.T) {
	c := col()
	lo, hi := c.MinMax()
	if lo != 0 || hi != 0 {
		t.Fatal("empty column MinMax should be 0,0")
	}
	st := ColumnStats(c)
	if st.Count != 0 {
		t.Fatal("empty column stats should be zero")
	}
}

func TestColumnStatsUniform(t *testing.T) {
	// A symmetric column has ~0 skewness; uniform has negative excess
	// kurtosis (-1.2 in the continuous limit).
	data := make([]int64, 0, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		data = append(data, int64(1+rng.Intn(100)))
	}
	st := ColumnStats(col(data...))
	if math.Abs(st.Skewness) > 0.1 {
		t.Fatalf("uniform skewness %.3f, want ~0", st.Skewness)
	}
	if st.Kurtosis > -1.0 || st.Kurtosis < -1.4 {
		t.Fatalf("uniform excess kurtosis %.3f, want ~-1.2", st.Kurtosis)
	}
	wantMean := 50.5
	if math.Abs(st.Mean-wantMean) > 1 {
		t.Fatalf("mean %.2f, want ~%.1f", st.Mean, wantMean)
	}
}

func TestColumnStatsSkewed(t *testing.T) {
	// A heavy-headed column has positive skewness.
	data := make([]int64, 0, 1000)
	for i := 0; i < 900; i++ {
		data = append(data, 1)
	}
	for i := 0; i < 100; i++ {
		data = append(data, 50)
	}
	st := ColumnStats(col(data...))
	if st.Skewness <= 1 {
		t.Fatalf("skewed column skewness %.3f, want > 1", st.Skewness)
	}
	if st.DomainSize != 2 {
		t.Fatalf("domain size %d, want 2", st.DomainSize)
	}
	if st.Range != 49 {
		t.Fatalf("range %.0f, want 49", st.Range)
	}
}

func TestColumnStatsConstant(t *testing.T) {
	st := ColumnStats(col(7, 7, 7, 7))
	if st.Std != 0 || st.Skewness != 0 || st.Kurtosis != 0 {
		t.Fatalf("constant column should have zero moments: %+v", st)
	}
}

func TestEqualFraction(t *testing.T) {
	a := col(1, 2, 3, 4)
	b := col(1, 2, 9, 9)
	if got := EqualFraction(a, b); got != 0.5 {
		t.Fatalf("EqualFraction = %g, want 0.5", got)
	}
	if got := EqualFraction(a, col(1)); got != 0 {
		t.Fatalf("mismatched lengths should give 0, got %g", got)
	}
}

func TestPearsonCorr(t *testing.T) {
	a := col(1, 2, 3, 4, 5)
	b := col(2, 4, 6, 8, 10)
	if got := PearsonCorr(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", got)
	}
	c := col(5, 4, 3, 2, 1)
	if got := PearsonCorr(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation = %g", got)
	}
	if got := PearsonCorr(a, col(3, 3, 3, 3, 3)); got != 0 {
		t.Fatalf("constant column correlation = %g, want 0", got)
	}
}

func TestPearsonCorrBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(rng.Intn(100))
			b[i] = int64(rng.Intn(100))
		}
		r := PearsonCorr(col(a...), col(b...))
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCorrelation(t *testing.T) {
	pk := col(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	fk := col(1, 1, 2, 2, 3, 3) // 3 of 10 PK values
	if got := JoinCorrelation(fk, pk); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("JoinCorrelation = %g, want 0.3", got)
	}
	// Values outside the PK do not count.
	fk2 := col(99, 98, 1)
	if got := JoinCorrelation(fk2, pk); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("JoinCorrelation with foreign values = %g, want 0.1", got)
	}
}

func TestTableValidate(t *testing.T) {
	tb := NewTable("t", col(1, 2), col(3, 4))
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewTable("t", col(1, 2), col(3))
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged table accepted")
	}
	badPK := NewTable("t", col(1, 2))
	badPK.PKCol = 5
	if err := badPK.Validate(); err == nil {
		t.Fatal("out-of-range PKCol accepted")
	}
}

func TestDatasetAggregates(t *testing.T) {
	t1 := NewTable("a", col(1, 2, 3), col(4, 5, 6))
	t2 := NewTable("b", col(1, 1))
	d := &Dataset{Name: "d", Tables: []*Table{t1, t2}}
	if d.TotalRows() != 5 {
		t.Fatalf("TotalRows = %d", d.TotalRows())
	}
	if d.TotalColumns() != 3 {
		t.Fatalf("TotalColumns = %d", d.TotalColumns())
	}
	if d.MaxColumns() != 2 {
		t.Fatalf("MaxColumns = %d", d.MaxColumns())
	}
	if d.TotalDomainSize() != 3+3+1 {
		t.Fatalf("TotalDomainSize = %d", d.TotalDomainSize())
	}
}

func TestDatasetValidateFKs(t *testing.T) {
	t1 := NewTable("a", col(1, 2, 3))
	t2 := NewTable("b", col(1, 1))
	d := &Dataset{Tables: []*Table{t1, t2}, FKs: []ForeignKey{{FromTable: 1, FromCol: 0, ToTable: 0, ToCol: 0}}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.FKs[0].ToCol = 9
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range FK column accepted")
	}
	d.FKs[0] = ForeignKey{FromTable: 5}
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range FK table accepted")
	}
}

func TestNonKeyColsAndColByName(t *testing.T) {
	tb := NewTable("t", NewColumn("id", []int64{1, 2}), NewColumn("x", []int64{5, 6}))
	tb.PKCol = 0
	nk := tb.NonKeyCols()
	if len(nk) != 1 || nk[0] != 1 {
		t.Fatalf("NonKeyCols = %v", nk)
	}
	c, i := tb.ColByName("x")
	if c == nil || i != 1 {
		t.Fatalf("ColByName(x) = %v,%d", c, i)
	}
	if c, i := tb.ColByName("nope"); c != nil || i != -1 {
		t.Fatal("missing column lookup should return nil,-1")
	}
}

func TestJoinGraphAdjacency(t *testing.T) {
	t1 := NewTable("a", col(1, 2))
	t2 := NewTable("b", col(1, 1))
	t3 := NewTable("c", col(2, 2))
	d := &Dataset{Tables: []*Table{t1, t2, t3}, FKs: []ForeignKey{
		{FromTable: 1, FromCol: 0, ToTable: 0, ToCol: 0},
		{FromTable: 2, FromCol: 0, ToTable: 0, ToCol: 0},
	}}
	adj := d.JoinGraphAdjacency()
	if len(adj[0]) != 2 || len(adj[1]) != 1 || len(adj[2]) != 1 {
		t.Fatalf("adjacency = %v", adj)
	}
}

func TestMeanDeviationVsStd(t *testing.T) {
	// Mean absolute deviation never exceeds the standard deviation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(rng.Intn(1000))
		}
		st := ColumnStats(col(data...))
		return st.MeanDev <= st.Std+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
