package dataset

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file provides CSV import/export so users can bring their own
// datasets to the advisor: one CSV file per table (header row = column
// names), plus a small schema file declaring primary keys and foreign
// keys. All values must be integers (bin real-valued data first; see the
// package comment).

// WriteCSV writes one table as CSV.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.NumCols())
	for i, c := range t.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, t.NumCols())
	for r := 0; r < t.Rows(); r++ {
		for ci, c := range t.Cols {
			row[ci] = strconv.FormatInt(c.Data[r], 10)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads one table from CSV; every column becomes an int64 column.
// Ingest is the buffered fast path: the csv reader reuses its record
// slice (one backing-string allocation per row instead of one per
// field), and the column slices are preallocated from a first-block row
// estimate when the reader's total size is knowable (os.File, bytes
// readers), so a million-row load does no growth copying.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	var total int64 = -1
	switch src := r.(type) {
	case interface{ Len() int }: // bytes.Reader, bytes.Buffer, strings.Reader
		total = int64(src.Len())
	case interface{ Stat() (os.FileInfo, error) }: // os.File
		if fi, err := src.Stat(); err == nil && fi.Mode().IsRegular() {
			total = fi.Size()
		}
	}
	br := bufio.NewReaderSize(r, 64<<10)
	estRows := 0
	if total > 0 {
		// Estimate the row count from the average line length of the
		// first buffered block.
		if peek, _ := br.Peek(32 << 10); len(peek) > 0 {
			if nl := bytes.Count(peek, []byte{'\n'}); nl > 0 {
				estRows = int(total / (int64(len(peek)/nl) + 1))
			}
		}
	}
	cr := csv.NewReader(br)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	t := &Table{Name: name, PKCol: -1}
	for _, h := range header {
		col := &Column{Name: strings.TrimSpace(h)}
		if estRows > 0 {
			col.Data = make([]int64, 0, estRows)
		}
		t.Cols = append(t.Cols, col)
	}
	rowNum := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading row %d: %w", rowNum, err)
		}
		if len(rec) != len(t.Cols) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", rowNum, len(rec), len(t.Cols))
		}
		for ci, field := range rec {
			v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %s: %w", rowNum, t.Cols[ci].Name, err)
			}
			t.Cols[ci].Data = append(t.Cols[ci].Data, v)
		}
		rowNum++
	}
	return t, nil
}

// SaveDir writes a dataset as a directory: <table>.csv per table and a
// schema.txt declaring keys, in the format ReadDir parses.
func SaveDir(d *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for _, t := range d.Tables {
		f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		if err := WriteCSV(t, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %s\n", d.Name)
	for _, t := range d.Tables {
		if t.PKCol >= 0 {
			fmt.Fprintf(&b, "pk %s %s\n", t.Name, t.Col(t.PKCol).Name)
		}
	}
	for _, fk := range d.FKs {
		fmt.Fprintf(&b, "fk %s.%s -> %s.%s\n",
			d.Tables[fk.FromTable].Name, d.Tables[fk.FromTable].Col(fk.FromCol).Name,
			d.Tables[fk.ToTable].Name, d.Tables[fk.ToTable].Col(fk.ToCol).Name)
	}
	return os.WriteFile(filepath.Join(dir, "schema.txt"), []byte(b.String()), 0o644)
}

// ReadDir loads a dataset saved by SaveDir (or hand-authored in the same
// layout): every *.csv in dir becomes a table; schema.txt declares the
// name, primary keys ("pk table column") and foreign keys
// ("fk table.column -> table.column"). Join correlations are measured
// from the data.
func ReadDir(dir string) (*Dataset, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	d := &Dataset{Name: filepath.Base(dir)}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	tableIdx := map[string]int{}
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		t, err := ReadCSV(strings.TrimSuffix(name, ".csv"), f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", name, err)
		}
		tableIdx[t.Name] = len(d.Tables)
		d.Tables = append(d.Tables, t)
	}
	if len(d.Tables) == 0 {
		return nil, fmt.Errorf("dataset: no .csv tables in %s", dir)
	}

	schema, err := os.ReadFile(filepath.Join(dir, "schema.txt"))
	if os.IsNotExist(err) {
		return d, d.Validate() // keyless single-table-style dataset
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	for ln, line := range strings.Split(string(schema), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "dataset":
			if len(fields) >= 2 {
				d.Name = fields[1]
			}
		case "pk":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: schema line %d: want 'pk table column'", ln+1)
			}
			ti, ok := tableIdx[fields[1]]
			if !ok {
				return nil, fmt.Errorf("dataset: schema line %d: unknown table %s", ln+1, fields[1])
			}
			_, ci := d.Tables[ti].ColByName(fields[2])
			if ci < 0 {
				return nil, fmt.Errorf("dataset: schema line %d: unknown column %s", ln+1, fields[2])
			}
			d.Tables[ti].PKCol = ci
		case "fk":
			if len(fields) != 4 || fields[2] != "->" {
				return nil, fmt.Errorf("dataset: schema line %d: want 'fk t.c -> t.c'", ln+1)
			}
			fromT, fromC, err := splitRef(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: schema line %d: %w", ln+1, err)
			}
			toT, toC, err := splitRef(fields[3])
			if err != nil {
				return nil, fmt.Errorf("dataset: schema line %d: %w", ln+1, err)
			}
			fti, ok := tableIdx[fromT]
			if !ok {
				return nil, fmt.Errorf("dataset: schema line %d: unknown table %s", ln+1, fromT)
			}
			tti, ok := tableIdx[toT]
			if !ok {
				return nil, fmt.Errorf("dataset: schema line %d: unknown table %s", ln+1, toT)
			}
			_, fci := d.Tables[fti].ColByName(fromC)
			_, tci := d.Tables[tti].ColByName(toC)
			if fci < 0 || tci < 0 {
				return nil, fmt.Errorf("dataset: schema line %d: unknown column", ln+1)
			}
			d.FKs = append(d.FKs, ForeignKey{
				FromTable: fti, FromCol: fci,
				ToTable: tti, ToCol: tci,
				Correlation: JoinCorrelation(d.Tables[fti].Col(fci), d.Tables[tti].Col(tci)),
			})
		default:
			return nil, fmt.Errorf("dataset: schema line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	return d, d.Validate()
}

func splitRef(s string) (table, col string, err error) {
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("bad column reference %q (want table.column)", s)
	}
	return parts[0], parts[1], nil
}
