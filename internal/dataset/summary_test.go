package dataset

import (
	"math"
	"math/rand"
	"testing"
)

// randomTable generates tables across the regimes the kernels dispatch
// on: empty, single-row, constant columns, narrow and wide domains,
// negative values, sorted key-like columns, and huge-magnitude values
// that escape the histogram window.
func randomTable(rng *rand.Rand) *Table {
	ncols := 1 + rng.Intn(9)
	rows := 0
	switch rng.Intn(8) {
	case 0:
		rows = 0
	case 1:
		rows = 1
	default:
		rows = 1 + rng.Intn(400)
	}
	cols := make([]*Column, ncols)
	for c := 0; c < ncols; c++ {
		data := make([]int64, rows)
		switch rng.Intn(7) {
		case 0: // constant
			v := int64(rng.Intn(100) - 50)
			for r := range data {
				data[r] = v
			}
		case 1: // sorted key-like
			for r := range data {
				data[r] = int64(r + 1)
			}
		case 2: // narrow domain
			for r := range data {
				data[r] = int64(1 + rng.Intn(16))
			}
		case 3: // narrow domain, negative offset
			for r := range data {
				data[r] = int64(rng.Intn(50) - 1000)
			}
		case 4: // wide domain (escapes the histogram window)
			for r := range data {
				data[r] = rng.Int63n(1 << 40)
			}
		case 5: // wide domain incl. negatives
			for r := range data {
				data[r] = rng.Int63n(1<<30) - 1<<29
			}
		default: // moderate domain
			for r := range data {
				data[r] = int64(rng.Intn(3000))
			}
		}
		cols[c] = NewColumn(string(rune('a'+c)), data)
	}
	return NewTable("t", cols...)
}

// TestSummaryMatchesColumnStats pins the fused sweep bit-for-bit against
// the per-call kernel API (they share the statistics kernel, so any lane
// or dispatch divergence shows up here).
func TestSummaryMatchesColumnStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		tb := randomTable(rng)
		sum := NewSummary(tb, SummaryOpts{})
		if sum.Rows != tb.Rows() || len(sum.Cols) != tb.NumCols() {
			t.Fatalf("trial %d: summary shape %d×%d", trial, sum.Rows, len(sum.Cols))
		}
		for c := 0; c < tb.NumCols(); c++ {
			want := ColumnStats(tb.Col(c))
			if got := sum.Cols[c]; got != want {
				t.Fatalf("trial %d col %d: fused %+v != naive %+v", trial, c, got, want)
			}
		}
	}
}

// seedColumnStats is the seed repository's ordered two-pass reference,
// kept verbatim: one float accumulator per statistic, map-based distinct
// count. The kernels reorder the arithmetic (lanes, histogram weighting),
// so float moments are compared within 1e-9 relative; everything
// integer-derived must match exactly.
func seedColumnStats(c *Column) ColStats {
	n := len(c.Data)
	if n == 0 {
		return ColStats{}
	}
	var sum float64
	lo, hi := c.Data[0], c.Data[0]
	seen := make(map[int64]struct{}, n)
	for _, v := range c.Data {
		sum += float64(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		seen[v] = struct{}{}
	}
	mean := sum / float64(n)
	var m2, m3, m4, mad float64
	for _, v := range c.Data {
		d := float64(v) - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
		mad += math.Abs(d)
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	mad /= float64(n)
	st := ColStats{
		Count: n, Mean: mean, Std: math.Sqrt(m2), MeanDev: mad,
		Min: lo, Max: hi, Range: float64(hi - lo), DomainSize: len(seen),
	}
	if m2 > 0 {
		st.Skewness = m3 / math.Pow(m2, 1.5)
		st.Kurtosis = m4/(m2*m2) - 3
	}
	return st
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

// TestSummaryMatchesSeedReference pins the fused sweep against the
// seed's naive implementation: exact equality for every integer-derived
// statistic, 1e-9 relative agreement for the reordered float moments.
func TestSummaryMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		tb := randomTable(rng)
		sum := NewSummary(tb, SummaryOpts{})
		for c := 0; c < tb.NumCols(); c++ {
			want := seedColumnStats(tb.Col(c))
			got := sum.Cols[c]
			if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max ||
				got.Range != want.Range || got.DomainSize != want.DomainSize {
				t.Fatalf("trial %d col %d: integer stats %+v != seed %+v", trial, c, got, want)
			}
			for _, p := range [][2]float64{
				{got.Mean, want.Mean}, {got.Std, want.Std}, {got.MeanDev, want.MeanDev},
				{got.Skewness, want.Skewness}, {got.Kurtosis, want.Kurtosis},
			} {
				if !relClose(p[0], p[1], 1e-9) {
					t.Fatalf("trial %d col %d: moment %g vs seed %g\nfused %+v\nseed  %+v",
						trial, c, p[0], p[1], got, want)
				}
			}
		}
	}
}

// TestSummaryEqualFracMatchesNaive pins the SWAR pair sweep bit-for-bit
// against the naive per-pair EqualFraction (integer count ratios, so
// exact equality is required).
func TestSummaryEqualFracMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		tb := randomTable(rng)
		sum := NewSummary(tb, SummaryOpts{})
		for a := 0; a < tb.NumCols(); a++ {
			for b := 0; b < tb.NumCols(); b++ {
				want := EqualFraction(tb.Col(a), tb.Col(b))
				if a == b && tb.Rows() == 0 {
					want = 0
				}
				got := sum.EqualFrac(a, b)
				if a == b {
					// The summary defines the diagonal as 1 for
					// non-empty tables, 0 for empty ones, like the
					// naive function.
					if got != want && !(tb.Rows() > 0 && got == 1 && want == 1) {
						t.Fatalf("trial %d diag %d: %g != %g", trial, a, got, want)
					}
					continue
				}
				if got != want {
					t.Fatalf("trial %d pair (%d,%d): fused %g != naive %g", trial, a, b, got, want)
				}
			}
		}
	}
}

// equalCountAdversarial exercises the fingerprint-verification path with
// values crafted to collide in the low 16 bits (multiples of 1<<16).
func TestEqualCountFingerprintCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 1000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		// Same low 16 bits (zero), wildly different values: every row is
		// a fingerprint candidate, none or few are true matches.
		a[i] = rng.Int63n(1<<20) << 16
		b[i] = rng.Int63n(1<<20) << 16
	}
	tb := NewTable("t", NewColumn("a", a), NewColumn("b", b))
	sum := NewSummary(tb, SummaryOpts{})
	want := EqualFraction(tb.Col(0), tb.Col(1))
	if got := sum.EqualFrac(0, 1); got != want {
		t.Fatalf("collision table: fused %g != naive %g", got, want)
	}
}

// TestStatsFKCorrelationsMatchNaive pins the shared-distinct-set join
// correlations bit-for-bit against the naive per-edge JoinCorrelation.
func TestStatsFKCorrelationsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nt := 2 + rng.Intn(3)
		d := &Dataset{Name: "d"}
		for i := 0; i < nt; i++ {
			d.Tables = append(d.Tables, randomTable(rng))
		}
		// Random FK edges, including repeated endpoints so set reuse is
		// exercised.
		for e := 0; e < 1+rng.Intn(4); e++ {
			ft := rng.Intn(nt)
			tt := rng.Intn(nt)
			if d.Tables[ft].NumCols() == 0 || d.Tables[tt].NumCols() == 0 {
				continue
			}
			d.FKs = append(d.FKs, ForeignKey{
				FromTable: ft, FromCol: rng.Intn(d.Tables[ft].NumCols()),
				ToTable: tt, ToCol: rng.Intn(d.Tables[tt].NumCols()),
			})
		}
		got := MeasuredFKCorrelations(d)
		InvalidateStats(d)
		for i, fk := range d.FKs {
			want := JoinCorrelation(
				d.Tables[fk.FromTable].Col(fk.FromCol),
				d.Tables[fk.ToTable].Col(fk.ToCol))
			if got[i] != want {
				t.Fatalf("trial %d fk %d: cached %g != naive %g", trial, i, got[i], want)
			}
		}
	}
}

// TestTotalDomainSizeMatchesNaive pins the cached aggregate against the
// naive per-column DistinctCount sum.
func TestTotalDomainSizeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		d := &Dataset{Name: "d", Tables: []*Table{randomTable(rng), randomTable(rng)}}
		want := 0
		for _, tb := range d.Tables {
			for _, c := range tb.Cols {
				want += c.DistinctCount()
			}
		}
		if got := d.TotalDomainSize(); got != want {
			t.Fatalf("trial %d: TotalDomainSize %d != naive %d", trial, got, want)
		}
		InvalidateStats(d)
	}
}

// TestStatsCacheInvalidation is the regression test for the
// transient-dataset paths: a cached Stats must not survive
// InvalidateStats, and mutating data without invalidation is exactly the
// stale-read hazard the mutation paths guard against.
func TestStatsCacheInvalidation(t *testing.T) {
	tb := NewTable("t", NewColumn("a", []int64{1, 2, 3, 4}))
	d := &Dataset{Name: "d", Tables: []*Table{tb}}
	if got := d.TotalDomainSize(); got != 4 {
		t.Fatalf("initial TotalDomainSize = %d", got)
	}
	// In-place mutation: the cache intentionally serves stale data until
	// invalidated (same contract as engine.InvalidateIndex).
	tb.Col(0).Data = []int64{7, 7, 7, 7}
	if got := d.TotalDomainSize(); got != 4 {
		t.Fatalf("pre-invalidation TotalDomainSize = %d, want stale 4", got)
	}
	if StatsFor(d) != StatsFor(d) {
		t.Fatal("StatsFor not cached")
	}
	old := StatsFor(d)
	InvalidateStats(d)
	fresh := StatsFor(d)
	if fresh == old {
		t.Fatal("InvalidateStats did not drop the cached Stats")
	}
	if got := d.TotalDomainSize(); got != 1 {
		t.Fatalf("post-invalidation TotalDomainSize = %d, want 1", got)
	}
	InvalidateStats(d)
}

// TestSampledSummaryErrorBounds checks the estimators on a large table:
// KMV domain sizes within 15% (k=1024 has ~3% standard error), sampled
// moments within a few percent, equal fractions within 0.05 absolute,
// min/max exact.
func TestSampledSummaryErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 200_000
	wide := make([]int64, n) // ~63% of 100k distinct values
	skew := make([]int64, n)
	copyCol := make([]int64, n)
	for i := range wide {
		wide[i] = int64(1 + rng.Intn(100_000))
		x := rng.Float64()
		skew[i] = int64(1 + x*x*float64(200_000))
		copyCol[i] = wide[i]
	}
	tb := NewTable("big", NewColumn("w", wide), NewColumn("s", skew), NewColumn("c", copyCol))
	exact := NewSummary(tb, SummaryOpts{})
	sampled := NewSummary(tb, SummaryOpts{SampleRows: 4096, Seed: 42})
	if !sampled.Sampled {
		t.Fatal("sampled summary not flagged")
	}
	for c := 0; c < tb.NumCols(); c++ {
		e, s := exact.Cols[c], sampled.Cols[c]
		if s.Min != e.Min || s.Max != e.Max || s.Count != e.Count {
			t.Fatalf("col %d: min/max/count must stay exact: %+v vs %+v", c, s, e)
		}
		if !relClose(float64(s.DomainSize), float64(e.DomainSize), 0.15) {
			t.Fatalf("col %d: KMV domain %d vs exact %d", c, s.DomainSize, e.DomainSize)
		}
		if !relClose(s.Mean, e.Mean, 0.05) {
			t.Fatalf("col %d: sampled mean %g vs exact %g", c, s.Mean, e.Mean)
		}
		if !relClose(s.Std, e.Std, 0.10) {
			t.Fatalf("col %d: sampled std %g vs exact %g", c, s.Std, e.Std)
		}
	}
	// Equal fractions: w and c are identical columns (fraction 1), w and
	// s nearly disjoint positions.
	if got := sampled.EqualFrac(0, 2); got != 1 {
		t.Fatalf("identical columns sampled EqualFrac = %g", got)
	}
	if diff := math.Abs(sampled.EqualFrac(0, 1) - exact.EqualFrac(0, 1)); diff > 0.05 {
		t.Fatalf("sampled EqualFrac off by %g", diff)
	}
}

// TestSampledFKCorrelationBounds checks the KMV join-correlation
// estimate on wide key columns.
func TestSampledFKCorrelationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 150_000
	pk := make([]int64, n)
	fk := make([]int64, n)
	// Stride the key space so the span exceeds the dense-bitset limit and
	// the correlations really go through the KMV estimator.
	const stride = 1_000_003
	for i := range pk {
		pk[i] = int64(i+1) * stride
		fk[i] = int64(1+rng.Intn(3*n)) * stride // ~1/3 of FK values land in the PK
	}
	d := &Dataset{
		Name: "d",
		Tables: []*Table{
			NewTable("pk", NewColumn("id", pk)),
			NewTable("fk", NewColumn("ref", fk)),
		},
		FKs: []ForeignKey{{FromTable: 1, FromCol: 0, ToTable: 0, ToCol: 0}},
	}
	exact := JoinCorrelation(d.Tables[1].Col(0), d.Tables[0].Col(0))
	st := NewStats(d, SummaryOpts{SampleRows: 4096, Seed: 7})
	got := st.FKCorrelations()[0]
	if math.Abs(got-exact) > 0.10 {
		t.Fatalf("KMV join correlation %g vs exact %g", got, exact)
	}
	// Small columns degrade to exact sets inside the sketch.
	small := &Dataset{
		Name: "s",
		Tables: []*Table{
			NewTable("pk", NewColumn("id", []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})),
			NewTable("fk", NewColumn("ref", []int64{1, 1, 2, 2, 3, 3})),
		},
		FKs: []ForeignKey{{FromTable: 1, FromCol: 0, ToTable: 0, ToCol: 0}},
	}
	sst := NewStats(small, SummaryOpts{SampleRows: 4})
	if got := sst.FKCorrelations()[0]; got != 0.3 {
		t.Fatalf("small-column sampled correlation %g, want exact 0.3", got)
	}
}

// TestSmallTableStaysExactInSampledMode: tables at or below the sample
// threshold must be computed exactly even when sampling is enabled.
func TestSmallTableStaysExactInSampledMode(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		tb := randomTable(rng)
		exact := NewSummary(tb, SummaryOpts{})
		sampled := NewSummary(tb, SummaryOpts{SampleRows: 1000, Seed: 3})
		if tb.Rows() <= 1000 {
			if sampled.Sampled {
				t.Fatalf("trial %d: small table flagged as sampled", trial)
			}
			for c := range exact.Cols {
				if exact.Cols[c] != sampled.Cols[c] {
					t.Fatalf("trial %d col %d: sampled-mode small table differs", trial, c)
				}
			}
		}
	}
}

// TestIntSet exercises the open-addressing set across growth, zero, and
// negative values.
func TestIntSet(t *testing.T) {
	var s intSet
	s.reset(4)
	vals := []int64{0, -1, 1, math.MaxInt64, math.MinInt64, 42, 42, 0}
	added := 0
	for _, v := range vals {
		if s.add(v) {
			added++
		}
	}
	if added != 6 || s.n != 6 {
		t.Fatalf("added %d distinct, set reports %d (want 6)", added, s.n)
	}
	for _, v := range []int64{0, -1, 1, math.MaxInt64, math.MinInt64, 42} {
		if !s.contains(v) {
			t.Fatalf("set lost %d", v)
		}
	}
	if s.contains(7) {
		t.Fatal("set contains value never added")
	}
	// Growth: push past several resizes and verify every element.
	s.reset(2)
	for i := int64(0); i < 10_000; i++ {
		s.add(i * 7)
	}
	if s.n != 10_000 {
		t.Fatalf("after growth n = %d", s.n)
	}
	for i := int64(0); i < 10_000; i++ {
		if !s.contains(i * 7) {
			t.Fatalf("growth lost %d", i*7)
		}
	}
}

// TestKMVExactBelowK: fewer distinct values than k must be counted
// exactly.
func TestKMVExactBelowK(t *testing.T) {
	s := newKMV(64)
	for i := 0; i < 10_000; i++ {
		s.add(int64(i % 40))
	}
	if got := s.distinct(); got != 40 {
		t.Fatalf("KMV below-k distinct = %g, want exact 40", got)
	}
}

// TestKMVEstimateAccuracy: the estimator's error on a large distinct
// count stays within a few standard errors.
func TestKMVEstimateAccuracy(t *testing.T) {
	s := newKMV(1024)
	n := 50_000
	for i := 0; i < n; i++ {
		s.add(int64(i))
		s.add(int64(i)) // duplicates must not bias the estimate
	}
	got := s.distinct()
	if math.Abs(got-float64(n))/float64(n) > 0.15 {
		t.Fatalf("KMV estimate %g for %d distinct", got, n)
	}
}

// TestValidatePKColLowerBound is the regression test for the seed bug
// where only PKCol's upper bound was checked.
func TestValidatePKColLowerBound(t *testing.T) {
	tb := NewTable("t", NewColumn("a", []int64{1, 2}))
	tb.PKCol = -2
	if err := tb.Validate(); err == nil {
		t.Fatal("PKCol = -2 accepted")
	}
	tb.PKCol = -1
	if err := tb.Validate(); err != nil {
		t.Fatalf("PKCol = -1 rejected: %v", err)
	}
	// Empty tables may only use PKCol = -1.
	empty := NewTable("e")
	empty.PKCol = 0
	if err := empty.Validate(); err == nil {
		t.Fatal("empty table with PKCol = 0 accepted")
	}
}

// TestSummaryInt64ExtremeValues is the regression test for histogram
// window wrap-around: values straddling the int64 extremes must take the
// generic path and keep min/max, range, and equal-fractions correct.
func TestSummaryInt64ExtremeValues(t *testing.T) {
	a := []int64{math.MaxInt64, math.MinInt64, 0, math.MaxInt64}
	b := []int64{math.MaxInt64 - 256, math.MinInt64 + 256, 256, math.MaxInt64}
	tb := NewTable("ext", NewColumn("a", a), NewColumn("b", b))
	sum := NewSummary(tb, SummaryOpts{})
	want := ColumnStats(tb.Col(0))
	if got := sum.Cols[0]; got != want {
		t.Fatalf("extreme column: fused %+v != naive %+v", got, want)
	}
	if sum.Cols[0].Min != math.MinInt64 || sum.Cols[0].Max != math.MaxInt64 {
		t.Fatalf("extreme column min/max corrupted: %+v", sum.Cols[0])
	}
	if got, wantEq := sum.EqualFrac(0, 1), EqualFraction(tb.Col(0), tb.Col(1)); got != wantEq {
		t.Fatalf("extreme pair: fused %g != naive %g", got, wantEq)
	}
}
