// Package dataset defines the in-memory relational data model used across
// the repository: columnar tables with integer-valued columns, primary keys,
// and PK-FK join relationships, plus the column statistics (skewness,
// kurtosis, deviations, domain size, correlations) that both the cardinality
// estimators and AutoCE's feature engineering consume.
//
// All column values are int64 in the range [1, domain]; this mirrors the
// paper's synthetic generator (Section IV-A), where every attribute is drawn
// from a bounded integer domain. Real-valued data can always be binned into
// this representation, and keeping a single value type keeps the execution
// engine and the estimators simple and fast.
//
// Statistics come in two layers. The naive per-call functions
// (ColumnStats, EqualFraction, JoinCorrelation) define the semantics and
// serve as reference oracles. The fused engine (summary.go) is the fast
// path: NewSummary computes one table's complete block — every column's
// moments, min/max, and distinct count, plus the full pairwise
// equal-fraction matrix — in a handful of cache-friendly sweeps with
// reused scratch, and Stats derives every FK edge's join correlation from
// one distinct-value set per endpoint column. StatsFor caches one
// exact-mode Stats per dataset (mirroring engine.IndexFor); code that
// mutates a dataset in place, or builds transient datasets, must call
// InvalidateStats just as it calls engine.InvalidateIndex. SummaryOpts
// gates a sampled mode (reservoir row sample + KMV distinct sketches)
// that bounds extraction cost on user-scale tables.
package dataset

import (
	"fmt"
	"sort"
)

// Column is a single named column of integer values.
type Column struct {
	Name string
	Data []int64
}

// NewColumn returns a column with the given name and values.
func NewColumn(name string, data []int64) *Column {
	return &Column{Name: name, Data: data}
}

// Len returns the number of rows in the column.
func (c *Column) Len() int { return len(c.Data) }

// MinMax returns the minimum and maximum value of the column.
// It returns (0, 0) for an empty column.
func (c *Column) MinMax() (lo, hi int64) {
	if len(c.Data) == 0 {
		return 0, 0
	}
	lo, hi = c.Data[0], c.Data[0]
	for _, v := range c.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// DistinctCount returns the number of distinct values in the column.
func (c *Column) DistinctCount() int {
	seen := make(map[int64]struct{}, len(c.Data))
	for _, v := range c.Data {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// DistinctValues returns the sorted distinct values of the column.
func (c *Column) DistinctValues() []int64 {
	seen := make(map[int64]struct{}, len(c.Data))
	for _, v := range c.Data {
		seen[v] = struct{}{}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table is a collection of equal-length columns. PKCol is the index of the
// primary-key column, or -1 when the table has no primary key.
type Table struct {
	Name  string
	Cols  []*Column
	PKCol int
}

// NewTable returns a table with no primary key.
func NewTable(name string, cols ...*Column) *Table {
	return &Table{Name: name, Cols: cols, PKCol: -1}
}

// Rows returns the number of rows in the table (0 if it has no columns).
func (t *Table) Rows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// NumCols returns the number of columns in the table.
func (t *Table) NumCols() int { return len(t.Cols) }

// Col returns the i-th column.
func (t *Table) Col(i int) *Column { return t.Cols[i] }

// ColByName returns the column with the given name and its index,
// or (nil, -1) when absent.
func (t *Table) ColByName(name string) (*Column, int) {
	for i, c := range t.Cols {
		if c.Name == name {
			return c, i
		}
	}
	return nil, -1
}

// NonKeyCols returns the indexes of the columns that are not the primary key.
func (t *Table) NonKeyCols() []int {
	out := make([]int, 0, len(t.Cols))
	for i := range t.Cols {
		if i != t.PKCol {
			out = append(out, i)
		}
	}
	return out
}

// Validate reports an error when the table's columns have unequal lengths
// or PKCol is outside [-1, NumCols).
func (t *Table) Validate() error {
	if t.PKCol < -1 || t.PKCol >= len(t.Cols) {
		return fmt.Errorf("table %s: PKCol %d out of range", t.Name, t.PKCol)
	}
	if len(t.Cols) == 0 {
		return nil
	}
	n := t.Cols[0].Len()
	for _, c := range t.Cols[1:] {
		if c.Len() != n {
			return fmt.Errorf("table %s: column %s has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// ForeignKey describes one PK-FK join edge: the column (FromTable, FromCol)
// references the primary key (ToTable, ToCol). Correlation stores the join
// correlation p used or measured for this edge (Section IV-A, F3): the ratio
// of the FK column's distinct values over the referenced PK column's
// distinct values.
type ForeignKey struct {
	FromTable, FromCol int
	ToTable, ToCol     int
	Correlation        float64
}

// Dataset is a named set of tables connected by PK-FK foreign keys.
type Dataset struct {
	Name   string
	Tables []*Table
	FKs    []ForeignKey
}

// NumTables returns the number of tables in the dataset.
func (d *Dataset) NumTables() int { return len(d.Tables) }

// TotalRows returns the sum of row counts over all tables.
func (d *Dataset) TotalRows() int {
	n := 0
	for _, t := range d.Tables {
		n += t.Rows()
	}
	return n
}

// TotalColumns returns the sum of column counts over all tables.
func (d *Dataset) TotalColumns() int {
	n := 0
	for _, t := range d.Tables {
		n += t.NumCols()
	}
	return n
}

// TotalDomainSize returns the sum of distinct-value counts over all columns,
// the "total domain size" statistic reported in the paper's Table I. It
// reads through the dataset's cached Stats; callers that mutate the data
// in place must InvalidateStats (stale summaries are never detected).
func (d *Dataset) TotalDomainSize() int {
	return StatsFor(d).TotalDomainSize()
}

// MaxColumns returns the maximum column count over all tables; feature-graph
// vertex modeling pads every table to this width.
func (d *Dataset) MaxColumns() int {
	m := 0
	for _, t := range d.Tables {
		if t.NumCols() > m {
			m = t.NumCols()
		}
	}
	return m
}

// Validate checks every table and every foreign-key reference.
func (d *Dataset) Validate() error {
	for _, t := range d.Tables {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	for i, fk := range d.FKs {
		if fk.FromTable < 0 || fk.FromTable >= len(d.Tables) ||
			fk.ToTable < 0 || fk.ToTable >= len(d.Tables) {
			return fmt.Errorf("fk %d: table index out of range", i)
		}
		if fk.FromCol < 0 || fk.FromCol >= d.Tables[fk.FromTable].NumCols() {
			return fmt.Errorf("fk %d: from-column index out of range", i)
		}
		if fk.ToCol < 0 || fk.ToCol >= d.Tables[fk.ToTable].NumCols() {
			return fmt.Errorf("fk %d: to-column index out of range", i)
		}
	}
	return nil
}

// JoinGraphAdjacency returns, for every table index, the list of FK indexes
// incident to it. The workload generator walks this structure to form
// connected join queries.
func (d *Dataset) JoinGraphAdjacency() [][]int {
	adj := make([][]int, len(d.Tables))
	for i, fk := range d.FKs {
		adj[fk.FromTable] = append(adj[fk.FromTable], i)
		adj[fk.ToTable] = append(adj[fk.ToTable], i)
	}
	return adj
}
