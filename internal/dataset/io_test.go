package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable("t", NewColumn("a", []int64{1, 2, 3}), NewColumn("b", []int64{9, 8, 7}))
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != 2 || got.Rows() != 3 {
		t.Fatalf("round trip shape %dx%d", got.Rows(), got.NumCols())
	}
	for ci := range tb.Cols {
		for r := range tb.Cols[ci].Data {
			if got.Cols[ci].Data[r] != tb.Cols[ci].Data[r] {
				t.Fatalf("value mismatch at c%d r%d", ci, r)
			}
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Fatal("non-integer value accepted")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestSaveDirReadDirRoundTrip(t *testing.T) {
	dim := &Table{Name: "dim", PKCol: 0, Cols: []*Column{
		NewColumn("id", []int64{1, 2, 3, 4}),
		NewColumn("x", []int64{10, 20, 30, 40}),
	}}
	fact := &Table{Name: "fact", PKCol: -1, Cols: []*Column{
		NewColumn("v", []int64{5, 6, 7, 8, 9, 10}),
		NewColumn("dim_id", []int64{1, 1, 2, 2, 3, 3}),
	}}
	d := &Dataset{
		Name:   "demo",
		Tables: []*Table{dim, fact},
		FKs:    []ForeignKey{{FromTable: 1, FromCol: 1, ToTable: 0, ToCol: 0, Correlation: 0.75}},
	}
	dir := filepath.Join(t.TempDir(), "demo")
	if err := SaveDir(d, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "demo" || got.NumTables() != 2 {
		t.Fatalf("loaded %s with %d tables", got.Name, got.NumTables())
	}
	// Tables come back sorted by filename: dim, fact.
	if got.Tables[0].Name != "dim" || got.Tables[0].PKCol != 0 {
		t.Fatalf("dim table: %+v", got.Tables[0])
	}
	if len(got.FKs) != 1 {
		t.Fatalf("fks: %+v", got.FKs)
	}
	fk := got.FKs[0]
	if got.Tables[fk.FromTable].Name != "fact" || got.Tables[fk.ToTable].Name != "dim" {
		t.Fatal("fk direction lost")
	}
	// Correlation is re-measured from data: fact references 3 of 4 PKs.
	if fk.Correlation != 0.75 {
		t.Fatalf("measured correlation %g, want 0.75", fk.Correlation)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirWithoutSchema(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "only.csv"), []byte("a\n1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTables() != 1 || d.Tables[0].Rows() != 2 {
		t.Fatalf("loaded %d tables", d.NumTables())
	}
}

func TestReadDirRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "t.csv"), []byte("a\n1\n"), 0o644)
	for _, schema := range []string{
		"pk t\n",              // short pk
		"pk other a\n",        // unknown table
		"fk t.a -> ghost.a\n", // unknown fk target
		"fk t.a x t.a\n",      // bad arrow
		"wat is this\n",       // unknown directive
	} {
		os.WriteFile(filepath.Join(dir, "schema.txt"), []byte(schema), 0o644)
		if _, err := ReadDir(dir); err == nil {
			t.Fatalf("schema %q accepted", schema)
		}
	}
}

func TestReadDirEmpty(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}
