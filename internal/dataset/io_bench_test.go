package dataset

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
)

// benchCSV renders an ncols×rows integer table as CSV bytes once; the
// ingest benchmark then re-reads it from memory so only parsing cost is
// measured.
func benchCSV(ncols, rows int) []byte {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	for c := 0; c < ncols; c++ {
		if c > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("col" + strconv.Itoa(c))
	}
	buf.WriteByte('\n')
	for r := 0; r < rows; r++ {
		for c := 0; c < ncols; c++ {
			if c > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.FormatInt(int64(rng.Intn(1_000_000)), 10))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// BenchmarkReadCSV measures ingest of an 8-column, 100k-row table.
func BenchmarkReadCSV(b *testing.B) {
	data := benchCSV(8, 100_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := ReadCSV("bench", bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() != 100_000 {
			b.Fatalf("rows = %d", t.Rows())
		}
	}
}
