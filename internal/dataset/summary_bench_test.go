package dataset

import (
	"math/rand"
	"testing"
)

// benchSummaryTable is an 8-column × 100k-row table in this repository's
// data model: a sequential primary key plus bounded integer domains of
// mixed width and skew.
func benchSummaryTable(rows int, seed int64) *Table {
	domains := []int64{0, 40, 120, 120, 300, 1000, 64, 5000}
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*Column, len(domains))
	for c := range domains {
		data := make([]int64, rows)
		switch {
		case c == 0:
			for r := range data {
				data[r] = int64(r + 1)
			}
		case c%3 == 1:
			dom := float64(domains[c])
			for r := range data {
				x := rng.Float64()
				data[r] = 1 + int64(x*x*dom)
			}
		default:
			for r := range data {
				data[r] = 1 + rng.Int63n(domains[c])
			}
		}
		cols[c] = NewColumn(string(rune('a'+c)), data)
	}
	t := NewTable("bench", cols...)
	t.PKCol = 0
	return t
}

// BenchmarkDatasetSummary measures one cold fused table-summary build
// (all column stats + the full pairwise equal-fraction block).
func BenchmarkDatasetSummary(b *testing.B) {
	t := benchSummaryTable(100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSummary(t, SummaryOpts{})
		if s.Rows != 100_000 {
			b.Fatal("bad summary")
		}
	}
}

// BenchmarkDatasetSummarySampled measures the sampled-mode build on the
// same table (bounded-domain columns stay exact; the key column uses the
// KMV sketch).
func BenchmarkDatasetSummarySampled(b *testing.B) {
	t := benchSummaryTable(100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSummary(t, SummaryOpts{SampleRows: 4096, Seed: 1})
		if s.Rows != 100_000 {
			b.Fatal("bad summary")
		}
	}
}

// BenchmarkColumnStatsNaiveMap is the seed's map-based distinct-count
// regime for one 100k-row bounded-domain column, kept for comparison
// with the kernel path below.
func BenchmarkColumnStatsNaiveMap(b *testing.B) {
	t := benchSummaryTable(100_000, 1)
	col := t.Col(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[int64]struct{}, len(col.Data))
		for _, v := range col.Data {
			seen[v] = struct{}{}
		}
		if len(seen) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkColumnStats measures the per-call kernel API on the same
// column (histogram path).
func BenchmarkColumnStats(b *testing.B) {
	t := benchSummaryTable(100_000, 1)
	col := t.Col(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ColumnStats(col)
		if st.Count != 100_000 {
			b.Fatal("bad stats")
		}
	}
}
