package engine

import (
	"sync"

	"repro/internal/dataset"
)

// ColIndex is a prehashed view of one column: every distinct value mapped
// to the rows that hold it and to how many rows that is. Join evaluation
// borrows these maps read-only — Rows serves as the build side of hash
// joins over unpredicated tables, and Counts is the ready-made
// multiplicity message an unpredicated leaf table sends up the join tree.
type ColIndex struct {
	// Rows maps a column value to the (ascending) row ids holding it.
	Rows map[int64][]int32
	// Counts maps a column value to len(Rows[v]), kept separately so the
	// count-propagating fold can use it without touching the row lists.
	Counts map[int64]int64
	// Lo and Hi are the column's value bounds. When the span Hi-Lo+1 is
	// small relative to the row count, Dense holds the same multiplicities
	// as Counts in a flat array indexed by value-Lo, and evaluators build
	// their own messages over this column densely — turning the hot join
	// probes from map lookups into array indexing. Dense is nil for
	// wide-domain columns.
	Lo, Hi int64
	Dense  []int64
}

// denseSpan reports the dense-array length for a column with the given
// bounds and row count, or 0 when the span is too wide to justify an
// array. The cap keeps a dense message within a small constant factor of
// the column itself.
func denseSpan(lo, hi int64, rows int) int {
	if hi < lo {
		return 0
	}
	span := hi - lo + 1
	limit := int64(4096)
	if r := int64(rows) * 2; r > limit {
		limit = r
	}
	if span > limit {
		return 0
	}
	return int(span)
}

type colKey struct{ table, col int }

// Index caches per-column join hash indexes for one dataset. Building a
// column index costs one pass over the column and happens at most once per
// (table, column) pair; after that every query against the dataset shares
// the same maps. An Index is safe for concurrent use; the CardinalityBatch
// worker pool and the corpus-labeling goroutines all read through one
// instance. It also owns a pool of Evaluators so that the package-level
// Cardinality/Selectivity entry points are allocation-free in steady state.
//
// An Index must not outlive mutations of its dataset: callers that change
// table data in place must drop the cached Index via InvalidateIndex.
type Index struct {
	d    *dataset.Dataset
	mu   sync.RWMutex
	cols map[colKey]*ColIndex

	evals sync.Pool
}

// NewIndex returns an empty index over d; column indexes are built lazily
// on first use.
func NewIndex(d *dataset.Dataset) *Index {
	ix := &Index{d: d, cols: make(map[colKey]*ColIndex)}
	ix.evals.New = func() any { return newEvaluator(d, ix) }
	return ix
}

// Dataset returns the dataset this index was built over.
func (ix *Index) Dataset() *dataset.Dataset { return ix.d }

// Col returns the index of column ci of table ti, building it on first use.
func (ix *Index) Col(ti, ci int) *ColIndex {
	k := colKey{ti, ci}
	ix.mu.RLock()
	c := ix.cols[k]
	ix.mu.RUnlock()
	if c != nil {
		return c
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if c = ix.cols[k]; c != nil {
		return c
	}
	col := ix.d.Tables[ti].Col(ci)
	c = &ColIndex{
		Rows:   make(map[int64][]int32),
		Counts: make(map[int64]int64),
	}
	c.Lo, c.Hi = col.MinMax()
	for r, v := range col.Data {
		c.Rows[v] = append(c.Rows[v], int32(r))
	}
	for v, rows := range c.Rows {
		c.Counts[v] = int64(len(rows))
	}
	if span := denseSpan(c.Lo, c.Hi, len(col.Data)); span > 0 && len(col.Data) > 0 {
		c.Dense = make([]int64, span)
		for v, n := range c.Counts {
			c.Dense[v-c.Lo] = n
		}
	}
	ix.cols[k] = c
	return c
}

// acquire hands out a pooled evaluator bound to this index.
func (ix *Index) acquire() *Evaluator { return ix.evals.Get().(*Evaluator) }

// release returns a pooled evaluator.
func (ix *Index) release(e *Evaluator) { ix.evals.Put(e) }

// indexCache maps *dataset.Dataset to its shared *Index. Keying by pointer
// is safe because the cache entry keeps the dataset reachable, so its
// address cannot be recycled while the entry exists; the cost is that a
// cached dataset is not collectable until InvalidateIndex is called.
// Long-running corpus labeling drops entries as soon as a dataset's
// workload is labeled.
var indexCache sync.Map

// IndexFor returns the shared cached index of d, creating it on first use.
func IndexFor(d *dataset.Dataset) *Index {
	if v, ok := indexCache.Load(d); ok {
		return v.(*Index)
	}
	v, _ := indexCache.LoadOrStore(d, NewIndex(d))
	return v.(*Index)
}

// InvalidateIndex drops the cached index of d. Call it after mutating d's
// table data in place (the cached hashes would be stale) or when d is
// transient and its cache entry should not pin it in memory.
func InvalidateIndex(d *dataset.Dataset) { indexCache.Delete(d) }
