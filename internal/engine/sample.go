package engine

import (
	"math/rand"

	"repro/internal/dataset"
)

// JoinSample is a row-major sample of the full join of a dataset's tables,
// restricted to non-key columns. Data-driven estimators (DeepDB's SPN,
// NeuroCard's autoregressive model, BayesCard's Bayesian network) train on
// it, mirroring how the original systems learn a joint distribution over
// the (full outer) join of the base tables.
type JoinSample struct {
	// Cols identifies each sample column as (table, column) in the source
	// dataset, in the order of the Rows entries.
	Cols []ColRef
	// Rows holds the sampled tuples; Rows[i][j] is the value of Cols[j].
	Rows [][]int64
	// FullJoinSize is the exact cardinality of the unfiltered join the
	// sample was drawn from (the estimators scale probabilities by it).
	FullJoinSize int64
}

// ColRef names one dataset column.
type ColRef struct{ Table, Col int }

// SampleJoin materializes (a reservoir sample of) the full PK-FK join of
// all tables in d, projected to non-key columns. maxRows caps the sample
// size; rng drives the reservoir. For a single-table dataset the "join" is
// the table itself. Tables disconnected from the join graph contribute via
// cross product, which matches the semantics of a query listing them with
// no join edge; the synthetic generator always produces connected schemas.
//
// Unlike Cardinality, sampling genuinely needs rows, so this is the one
// engine path that still materializes the join — into a flat slot-per-table
// tuple buffer, with the build side of every hash join served by the
// dataset's shared ColIndex.
func SampleJoin(d *dataset.Dataset, maxRows int, rng *rand.Rand) *JoinSample {
	allTables := make([]int, len(d.Tables))
	for i := range allTables {
		allTables[i] = i
	}
	q := &Query{Tables: allTables}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}

	js := &JoinSample{}
	for ti, t := range d.Tables {
		for ci := range t.Cols {
			if ci == t.PKCol || isFKCol(d, ti, ci) {
				continue
			}
			js.Cols = append(js.Cols, ColRef{Table: ti, Col: ci})
		}
	}

	if len(d.Tables) == 1 {
		t := d.Tables[0]
		js.FullJoinSize = int64(t.Rows())
		idx := reservoirIndexes(t.Rows(), maxRows, rng)
		for _, r := range idx {
			row := make([]int64, len(js.Cols))
			for j, cr := range js.Cols {
				row[j] = t.Col(cr.Col).Data[r]
			}
			js.Rows = append(js.Rows, row)
		}
		return js
	}

	tuples, order := materializeJoin(d, q)
	stride := len(order)
	nTup := 0
	if stride > 0 {
		nTup = len(tuples) / stride
	}
	js.FullJoinSize = int64(nTup)
	pos := map[int]int{}
	for i, ti := range order {
		pos[ti] = i
	}
	idx := reservoirIndexes(nTup, maxRows, rng)
	for _, r := range idx {
		tp := tuples[r*stride : (r+1)*stride]
		row := make([]int64, len(js.Cols))
		for j, cr := range js.Cols {
			row[j] = d.Tables[cr.Table].Col(cr.Col).Data[tp[pos[cr.Table]]]
		}
		js.Rows = append(js.Rows, row)
	}
	return js
}

func isFKCol(d *dataset.Dataset, ti, ci int) bool {
	for _, fk := range d.FKs {
		if fk.FromTable == ti && fk.FromCol == ci {
			return true
		}
	}
	return false
}

// reservoirIndexes returns up to k distinct indexes from [0,n), uniformly.
func reservoirIndexes(n, k int, rng *rand.Rand) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	return res
}

// materializeJoin evaluates the unfiltered join of q and returns the raw
// tuples as a flat buffer: one int32 row id per table of the returned
// order, tuple i occupying tuples[i*len(order) : (i+1)*len(order)]. Hash
// build sides come from the dataset's cached ColIndex, so repeated
// materializations against one dataset share the per-column hashing work.
func materializeJoin(d *dataset.Dataset, q *Query) (tuples []int32, order []int) {
	order = joinTableOrder(d, q)
	stride := len(order)
	if stride == 0 {
		return nil, order
	}
	ix := IndexFor(d)
	pos := map[int]int{}
	for i, ti := range order {
		pos[ti] = i
	}

	cur := make([]int32, 0, d.Tables[order[0]].Rows()*stride)
	for r := 0; r < d.Tables[order[0]].Rows(); r++ {
		cur = appendTuple(cur, stride, 0, int32(r))
	}
	joined := map[int]bool{order[0]: true}
	used := make([]bool, len(q.Joins))
	for _, ti := range order[1:] {
		// Find a join edge connecting ti to the joined set.
		found := false
		for ji, j := range q.Joins {
			if used[ji] {
				continue
			}
			var inT, inC, newC int
			switch {
			case j.LeftTable == ti && joined[j.RightTable]:
				inT, inC, newC = j.RightTable, j.RightCol, j.LeftCol
			case j.RightTable == ti && joined[j.LeftTable]:
				inT, inC, newC = j.LeftTable, j.LeftCol, j.RightCol
			default:
				continue
			}
			inData := d.Tables[inT].Col(inC).Data
			inSlot, newSlot := pos[inT], pos[ti]
			ci := ix.Col(ti, newC)
			next := make([]int32, 0, len(cur))
			for i := 0; i < len(cur); i += stride {
				tp := cur[i : i+stride]
				for _, r := range ci.Rows[inData[tp[inSlot]]] {
					n := len(next)
					next = append(next, tp...)
					next[n+newSlot] = r
				}
			}
			cur = next
			joined[ti] = true
			used[ji] = true
			found = true
			break
		}
		if !found {
			// Cross product with a disconnected table.
			n := d.Tables[ti].Rows()
			slot := pos[ti]
			next := make([]int32, 0, len(cur)*n)
			for i := 0; i < len(cur); i += stride {
				tp := cur[i : i+stride]
				for r := 0; r < n; r++ {
					k := len(next)
					next = append(next, tp...)
					next[k+slot] = int32(r)
				}
			}
			cur = next
			joined[ti] = true
		}
		if len(cur) == 0 {
			return nil, order
		}
	}
	// Apply any remaining cycle edges as filters.
	for ji, j := range q.Joins {
		if used[ji] || !joined[j.LeftTable] || !joined[j.RightTable] {
			continue
		}
		lcol := d.Tables[j.LeftTable].Col(j.LeftCol).Data
		rcol := d.Tables[j.RightTable].Col(j.RightCol).Data
		ls, rs := pos[j.LeftTable], pos[j.RightTable]
		out := 0
		for i := 0; i < len(cur); i += stride {
			tp := cur[i : i+stride]
			if lcol[tp[ls]] == rcol[tp[rs]] {
				copy(cur[out*stride:], tp)
				out++
			}
		}
		cur = cur[:out*stride]
	}
	return cur, order
}

// joinTableOrder returns q's tables in a connected visiting order (BFS over
// the join edges from the first table), with disconnected tables appended.
func joinTableOrder(d *dataset.Dataset, q *Query) []int {
	if len(q.Tables) == 0 {
		return nil
	}
	adj := map[int][]int{}
	for _, j := range q.Joins {
		adj[j.LeftTable] = append(adj[j.LeftTable], j.RightTable)
		adj[j.RightTable] = append(adj[j.RightTable], j.LeftTable)
	}
	seen := map[int]bool{}
	var order []int
	bfs := func(start int) {
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			ti := queue[0]
			queue = queue[1:]
			order = append(order, ti)
			for _, nb := range adj[ti] {
				if !seen[nb] && inQuery(q, nb) {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	bfs(q.Tables[0])
	for _, ti := range q.Tables {
		if !seen[ti] {
			bfs(ti)
		}
	}
	return order
}

func inQuery(q *Query, ti int) bool {
	for _, t := range q.Tables {
		if t == ti {
			return true
		}
	}
	return false
}
