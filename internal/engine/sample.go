package engine

import (
	"math/rand"

	"repro/internal/dataset"
)

// JoinSample is a row-major sample of the full join of a dataset's tables,
// restricted to non-key columns. Data-driven estimators (DeepDB's SPN,
// NeuroCard's autoregressive model, BayesCard's Bayesian network) train on
// it, mirroring how the original systems learn a joint distribution over
// the (full outer) join of the base tables.
type JoinSample struct {
	// Cols identifies each sample column as (table, column) in the source
	// dataset, in the order of the Rows entries.
	Cols []ColRef
	// Rows holds the sampled tuples; Rows[i][j] is the value of Cols[j].
	Rows [][]int64
	// FullJoinSize is the exact cardinality of the unfiltered join the
	// sample was drawn from (the estimators scale probabilities by it).
	FullJoinSize int64
}

// ColRef names one dataset column.
type ColRef struct{ Table, Col int }

// SampleJoin materializes (a reservoir sample of) the full PK-FK join of
// all tables in d, projected to non-key columns. maxRows caps the sample
// size; rng drives the reservoir. For a single-table dataset the "join" is
// the table itself. Tables disconnected from the join graph contribute via
// cross product, which matches the semantics of a query listing them with
// no join edge; the synthetic generator always produces connected schemas.
func SampleJoin(d *dataset.Dataset, maxRows int, rng *rand.Rand) *JoinSample {
	allTables := make([]int, len(d.Tables))
	for i := range allTables {
		allTables[i] = i
	}
	q := &Query{Tables: allTables}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}

	js := &JoinSample{}
	for ti, t := range d.Tables {
		for ci := range t.Cols {
			if ci == t.PKCol || isFKCol(d, ti, ci) {
				continue
			}
			js.Cols = append(js.Cols, ColRef{Table: ti, Col: ci})
		}
	}

	if len(d.Tables) == 1 {
		t := d.Tables[0]
		js.FullJoinSize = int64(t.Rows())
		idx := reservoirIndexes(t.Rows(), maxRows, rng)
		for _, r := range idx {
			row := make([]int64, len(js.Cols))
			for j, cr := range js.Cols {
				row[j] = t.Col(cr.Col).Data[r]
			}
			js.Rows = append(js.Rows, row)
		}
		return js
	}

	tuples := materializeJoin(d, q)
	js.FullJoinSize = int64(len(tuples))
	order := joinTableOrder(d, q)
	pos := map[int]int{}
	for i, ti := range order {
		pos[ti] = i
	}
	idx := reservoirIndexes(len(tuples), maxRows, rng)
	for _, r := range idx {
		tp := tuples[r]
		row := make([]int64, len(js.Cols))
		for j, cr := range js.Cols {
			row[j] = d.Tables[cr.Table].Col(cr.Col).Data[tp[pos[cr.Table]]]
		}
		js.Rows = append(js.Rows, row)
	}
	return js
}

func isFKCol(d *dataset.Dataset, ti, ci int) bool {
	for _, fk := range d.FKs {
		if fk.FromTable == ti && fk.FromCol == ci {
			return true
		}
	}
	return false
}

// reservoirIndexes returns up to k distinct indexes from [0,n), uniformly.
func reservoirIndexes(n, k int, rng *rand.Rand) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	return res
}

// materializeJoin evaluates the unfiltered join of q and returns the raw
// tuples (row index per table, in joinTableOrder). It reuses the
// Cardinality fold but keeps the tuples.
func materializeJoin(d *dataset.Dataset, q *Query) [][]int32 {
	rowsets := make(map[int][]int32, len(q.Tables))
	for _, ti := range q.Tables {
		n := d.Tables[ti].Rows()
		rows := make([]int32, n)
		for r := range rows {
			rows[r] = int32(r)
		}
		rowsets[ti] = rows
	}
	order := joinTableOrder(d, q)
	joined := map[int]int{order[0]: 0}
	current := make([][]int32, 0, len(rowsets[order[0]]))
	for _, r := range rowsets[order[0]] {
		current = append(current, []int32{r})
	}
	used := map[int]bool{}
	for _, ti := range order[1:] {
		// Find a join edge connecting ti to the joined set.
		found := false
		for ji, j := range q.Joins {
			if used[ji] {
				continue
			}
			if j.LeftTable == ti {
				if _, ok := joined[j.RightTable]; ok {
					current = hashExtend(d, current, joined, j.RightTable, j.RightCol, ti, j.LeftCol, rowsets)
					joined[ti] = len(joined)
					used[ji] = true
					found = true
					break
				}
			}
			if j.RightTable == ti {
				if _, ok := joined[j.LeftTable]; ok {
					current = hashExtend(d, current, joined, j.LeftTable, j.LeftCol, ti, j.RightCol, rowsets)
					joined[ti] = len(joined)
					used[ji] = true
					found = true
					break
				}
			}
		}
		if !found {
			// Cross product with a disconnected table.
			next := make([][]int32, 0, len(current)*len(rowsets[ti]))
			for _, tp := range current {
				for _, r := range rowsets[ti] {
					nt := make([]int32, len(tp)+1)
					copy(nt, tp)
					nt[len(tp)] = r
					next = append(next, nt)
				}
			}
			current = next
			joined[ti] = len(joined)
		}
		if len(current) == 0 {
			return nil
		}
	}
	// Apply any remaining cycle edges as filters.
	for ji, j := range q.Joins {
		if used[ji] {
			continue
		}
		li, lok := joined[j.LeftTable]
		ri, rok := joined[j.RightTable]
		if !lok || !rok {
			continue
		}
		lcol := d.Tables[j.LeftTable].Col(j.LeftCol).Data
		rcol := d.Tables[j.RightTable].Col(j.RightCol).Data
		next := current[:0]
		for _, tp := range current {
			if lcol[tp[li]] == rcol[tp[ri]] {
				next = append(next, tp)
			}
		}
		current = next
	}
	return current
}

// joinTableOrder returns q's tables in a connected visiting order (BFS over
// the join edges from the first table), with disconnected tables appended.
func joinTableOrder(d *dataset.Dataset, q *Query) []int {
	if len(q.Tables) == 0 {
		return nil
	}
	adj := map[int][]int{}
	for _, j := range q.Joins {
		adj[j.LeftTable] = append(adj[j.LeftTable], j.RightTable)
		adj[j.RightTable] = append(adj[j.RightTable], j.LeftTable)
	}
	seen := map[int]bool{}
	var order []int
	var bfs func(start int)
	bfs = func(start int) {
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			ti := queue[0]
			queue = queue[1:]
			order = append(order, ti)
			for _, nb := range adj[ti] {
				if !seen[nb] && inQuery(q, nb) {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	bfs(q.Tables[0])
	for _, ti := range q.Tables {
		if !seen[ti] {
			bfs(ti)
		}
	}
	return order
}

func inQuery(q *Query, ti int) bool {
	for _, t := range q.Tables {
		if t == ti {
			return true
		}
	}
	return false
}
