package engine

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// naiveCardinality evaluates q by brute-force nested loops over all row
// combinations of the joined tables — the oracle the hash-join fold is
// cross-checked against.
func naiveCardinality(d *dataset.Dataset, q *Query) int64 {
	var count int64
	rows := make([]int, len(q.Tables))
	var rec func(level int)
	rec = func(level int) {
		if level == len(q.Tables) {
			// Check joins.
			pos := map[int]int{}
			for i, ti := range q.Tables {
				pos[ti] = rows[i]
			}
			for _, j := range q.Joins {
				lv := d.Tables[j.LeftTable].Col(j.LeftCol).Data[pos[j.LeftTable]]
				rv := d.Tables[j.RightTable].Col(j.RightCol).Data[pos[j.RightTable]]
				if lv != rv {
					return
				}
			}
			for _, p := range q.Preds {
				if !p.Matches(d.Tables[p.Table].Col(p.Col).Data[pos[p.Table]]) {
					return
				}
			}
			count++
			return
		}
		n := d.Tables[q.Tables[level]].Rows()
		for r := 0; r < n; r++ {
			rows[level] = r
			rec(level + 1)
		}
	}
	rec(0)
	return count
}

func tinyDataset(t *testing.T, seed int64, tables int) *dataset.Dataset {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 15, MaxRows: 30,
		Domain: 8,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 1,
		JoinLo: 0.3, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("tiny", p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

func TestSingleTableCardinalityMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		d := tinyDataset(t, int64(trial), 1)
		tbl := d.Tables[0]
		ci := rng.Intn(tbl.NumCols())
		lo := int64(rng.Intn(8))
		hi := lo + int64(rng.Intn(5))
		q := &Query{
			Tables: []int{0},
			Preds:  []Predicate{{Table: 0, Col: ci, Lo: lo, Hi: hi}},
		}
		got := Cardinality(d, q)
		want := naiveCardinality(d, q)
		if got != want {
			t.Fatalf("trial %d: Cardinality = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestJoinCardinalityMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		d := tinyDataset(t, int64(100+trial), 3)
		if len(d.FKs) == 0 {
			continue
		}
		var tables []int
		seen := map[int]bool{}
		var joins []Join
		for _, fk := range d.FKs {
			joins = append(joins, Join{
				LeftTable: fk.FromTable, LeftCol: fk.FromCol,
				RightTable: fk.ToTable, RightCol: fk.ToCol,
			})
			seen[fk.FromTable] = true
			seen[fk.ToTable] = true
		}
		for ti := range d.Tables {
			if seen[ti] {
				tables = append(tables, ti)
			}
		}
		q := &Query{Tables: tables, Joins: joins}
		// Optionally add a predicate.
		if rng.Float64() < 0.7 {
			ti := tables[rng.Intn(len(tables))]
			q.Preds = append(q.Preds, Predicate{Table: ti, Col: 0, Lo: 1, Hi: int64(2 + rng.Intn(6))})
		}
		got := Cardinality(d, q)
		want := naiveCardinality(d, q)
		if got != want {
			t.Fatalf("trial %d: join Cardinality = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestUnfilteredSingleTableIsRowCount(t *testing.T) {
	d := tinyDataset(t, 7, 1)
	q := &Query{Tables: []int{0}}
	if got := Cardinality(d, q); got != int64(d.Tables[0].Rows()) {
		t.Fatalf("unfiltered cardinality %d, want %d", got, d.Tables[0].Rows())
	}
}

func TestPredicateMonotonicity(t *testing.T) {
	// Adding a predicate can never increase cardinality.
	for trial := 0; trial < 10; trial++ {
		d := tinyDataset(t, int64(200+trial), 2)
		q := &Query{Tables: []int{0}}
		base := Cardinality(d, q)
		q.Preds = append(q.Preds, Predicate{Table: 0, Col: 0, Lo: 2, Hi: 6})
		filtered := Cardinality(d, q)
		if filtered > base {
			t.Fatalf("trial %d: filtered %d > base %d", trial, filtered, base)
		}
		q.Preds = append(q.Preds, Predicate{Table: 0, Col: 1, Lo: 1, Hi: 3})
		again := Cardinality(d, q)
		if again > filtered {
			t.Fatalf("trial %d: more predicates increased cardinality %d > %d", trial, again, filtered)
		}
	}
}

func TestEmptyRangeGivesZero(t *testing.T) {
	d := tinyDataset(t, 5, 1)
	q := &Query{
		Tables: []int{0},
		Preds:  []Predicate{{Table: 0, Col: 0, Lo: 100, Hi: 200}},
	}
	if got := Cardinality(d, q); got != 0 {
		t.Fatalf("out-of-domain predicate gave %d, want 0", got)
	}
}

func TestQueryValidate(t *testing.T) {
	d := tinyDataset(t, 3, 2)
	good := &Query{Tables: []int{0}, Preds: []Predicate{{Table: 0, Col: 0, Lo: 1, Hi: 2}}}
	if err := good.Validate(d); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := &Query{Tables: []int{9}}
	if err := bad.Validate(d); err == nil {
		t.Fatal("query with unknown table accepted")
	}
	badPred := &Query{Tables: []int{0}, Preds: []Predicate{{Table: 1, Col: 0, Lo: 1, Hi: 2}}}
	if err := badPred.Validate(d); err == nil {
		t.Fatal("predicate on unlisted table accepted")
	}
}

func TestSelectivityBounds(t *testing.T) {
	d := tinyDataset(t, 11, 2)
	q := &Query{Tables: []int{0}, Preds: []Predicate{{Table: 0, Col: 0, Lo: 1, Hi: 4}}}
	sel := Selectivity(d, q)
	if sel < 0 || sel > 1 {
		t.Fatalf("selectivity %g outside [0,1]", sel)
	}
}

func TestSampleJoinSingleTable(t *testing.T) {
	d := tinyDataset(t, 21, 1)
	rng := rand.New(rand.NewSource(1))
	js := SampleJoin(d, 10, rng)
	if js.FullJoinSize != int64(d.Tables[0].Rows()) {
		t.Fatalf("full join size %d, want %d", js.FullJoinSize, d.Tables[0].Rows())
	}
	if len(js.Rows) != 10 {
		t.Fatalf("sample rows %d, want 10", len(js.Rows))
	}
	if len(js.Cols) != d.Tables[0].NumCols() {
		t.Fatalf("sample cols %d, want %d", len(js.Cols), d.Tables[0].NumCols())
	}
}

func TestSampleJoinMultiTableMatchesEngine(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		d := tinyDataset(t, int64(300+trial), 3)
		if len(d.FKs) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(2))
		js := SampleJoin(d, 1<<20, rng)
		// Full join size must equal the engine's unfiltered cardinality
		// over all tables.
		all := make([]int, len(d.Tables))
		for i := range all {
			all[i] = i
		}
		q := &Query{Tables: all}
		for _, fk := range d.FKs {
			q.Joins = append(q.Joins, Join{
				LeftTable: fk.FromTable, LeftCol: fk.FromCol,
				RightTable: fk.ToTable, RightCol: fk.ToCol,
			})
		}
		want := Cardinality(d, q)
		if js.FullJoinSize != want {
			t.Fatalf("trial %d: FullJoinSize %d, engine %d", trial, js.FullJoinSize, want)
		}
		if int64(len(js.Rows)) != want {
			t.Fatalf("trial %d: uncapped sample has %d rows, want %d", trial, len(js.Rows), want)
		}
		// Sampled columns must exclude PK and FK columns.
		for _, cr := range js.Cols {
			tbl := d.Tables[cr.Table]
			if cr.Col == tbl.PKCol {
				t.Fatalf("trial %d: sample contains PK column", trial)
			}
			for _, fk := range d.FKs {
				if fk.FromTable == cr.Table && fk.FromCol == cr.Col {
					t.Fatalf("trial %d: sample contains FK column", trial)
				}
			}
		}
	}
}

func TestReservoirIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idx := reservoirIndexes(100, 20, rng)
	if len(idx) != 20 {
		t.Fatalf("reservoir returned %d indexes, want 20", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	small := reservoirIndexes(5, 20, rng)
	if len(small) != 5 {
		t.Fatalf("reservoir over-sampled: %d", len(small))
	}
}
