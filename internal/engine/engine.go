// Package engine evaluates select-project-join (SPJ) queries against
// in-memory datasets. It is the repository's ground-truth oracle: the
// testbed executes every workload query here to obtain true cardinalities
// (the paper's Stage 1 labeling pipeline "acquires the true cardinalities
// by running the queries in the database"), and the data-driven estimators
// draw their training samples from its full-join materialization.
//
// Queries are conjunctions of per-column range predicates over a connected
// set of tables joined along PK-FK equi-join edges. Evaluation is columnar
// and count-propagating: each table's predicates reduce to a reusable
// selection vector, and acyclic join components are counted by propagating
// per-value multiplicities up the join tree instead of materializing
// intermediate tuples, so time and memory scale with the base tables
// rather than the join result. Only cycle edges (and SampleJoin, which
// genuinely needs rows) fall back to tuple materialization.
//
// Three entry tiers trade convenience for control:
//
//   - Cardinality / Selectivity / CrossProductSize: one-shot helpers that
//     draw a pooled Evaluator from the dataset's cached Index.
//   - Evaluator: owns all scratch buffers; repeated calls allocate
//     nothing. One per goroutine.
//   - CardinalityBatch: labels a whole workload through a worker pool
//     sharing one Index — the Stage-1 labeling fast path.
//
// The per-dataset Index (prehashed join-key columns) is cached globally by
// dataset identity; callers that mutate a dataset in place must call
// InvalidateIndex.
package engine

import (
	"fmt"

	"repro/internal/dataset"
)

// Predicate is a closed-interval range condition Lo <= col <= Hi on one
// column of one table (dataset-level table index).
type Predicate struct {
	Table, Col int
	Lo, Hi     int64
}

// Matches reports whether v satisfies the predicate.
func (p Predicate) Matches(v int64) bool { return v >= p.Lo && v <= p.Hi }

// Join is an equi-join between two table columns. By convention the
// workload generator emits FK joins as (left = FK side, right = PK side),
// but evaluation is symmetric.
type Join struct {
	LeftTable, LeftCol   int
	RightTable, RightCol int
}

// Query is an SPJ query: the joined tables, the equi-join edges connecting
// them, and conjunctive range predicates.
type Query struct {
	Tables []int
	Joins  []Join
	Preds  []Predicate
}

// Validate reports structural errors (unknown tables, joins between
// unlisted tables, out-of-range columns).
func (q *Query) Validate(d *dataset.Dataset) error {
	in := map[int]bool{}
	for _, ti := range q.Tables {
		if ti < 0 || ti >= len(d.Tables) {
			return fmt.Errorf("engine: query references table %d of %d", ti, len(d.Tables))
		}
		in[ti] = true
	}
	for _, j := range q.Joins {
		if !in[j.LeftTable] || !in[j.RightTable] {
			return fmt.Errorf("engine: join references unlisted table")
		}
		if j.LeftCol >= d.Tables[j.LeftTable].NumCols() || j.RightCol >= d.Tables[j.RightTable].NumCols() {
			return fmt.Errorf("engine: join column out of range")
		}
	}
	for _, p := range q.Preds {
		if !in[p.Table] {
			return fmt.Errorf("engine: predicate references unlisted table %d", p.Table)
		}
		if p.Col < 0 || p.Col >= d.Tables[p.Table].NumCols() {
			return fmt.Errorf("engine: predicate column %d out of range", p.Col)
		}
	}
	return nil
}

// Cardinality returns the exact number of result tuples of q over d,
// through a pooled evaluator on the dataset's shared cached index. For
// many queries against the same dataset prefer CardinalityBatch or a
// dedicated Evaluator.
func Cardinality(d *dataset.Dataset, q *Query) int64 {
	ix := IndexFor(d)
	e := ix.acquire()
	c := e.Cardinality(q)
	ix.release(e)
	return c
}

// Selectivity returns the fraction of the unfiltered join result that q's
// predicates keep; the two underlying counts share one evaluator and the
// dataset's index.
func Selectivity(d *dataset.Dataset, q *Query) float64 {
	ix := IndexFor(d)
	e := ix.acquire()
	s := e.Selectivity(q)
	ix.release(e)
	return s
}

// CrossProductSize returns the product of the (filtered) table sizes,
// the upper bound used by cost models; it saturates at MaxInt64.
func CrossProductSize(d *dataset.Dataset, q *Query) float64 {
	ix := IndexFor(d)
	e := ix.acquire()
	s := e.CrossProductSize(q)
	ix.release(e)
	return s
}
