// Package engine evaluates select-project-join (SPJ) queries against
// in-memory datasets. It is the repository's ground-truth oracle: the
// testbed executes every workload query here to obtain true cardinalities
// (the paper's Stage 1 labeling pipeline "acquires the true cardinalities
// by running the queries in the database"), and the data-driven estimators
// draw their training samples from its full-join materialization.
//
// Queries are conjunctions of per-column range predicates over a connected
// set of tables joined along PK-FK equi-join edges. Evaluation filters each
// base table, then folds the tables together with hash joins in join-graph
// order, counting result tuples.
package engine

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Predicate is a closed-interval range condition Lo <= col <= Hi on one
// column of one table (dataset-level table index).
type Predicate struct {
	Table, Col int
	Lo, Hi     int64
}

// Matches reports whether v satisfies the predicate.
func (p Predicate) Matches(v int64) bool { return v >= p.Lo && v <= p.Hi }

// Join is an equi-join between two table columns. By convention the
// workload generator emits FK joins as (left = FK side, right = PK side),
// but evaluation is symmetric.
type Join struct {
	LeftTable, LeftCol   int
	RightTable, RightCol int
}

// Query is an SPJ query: the joined tables, the equi-join edges connecting
// them, and conjunctive range predicates.
type Query struct {
	Tables []int
	Joins  []Join
	Preds  []Predicate
}

// Validate reports structural errors (unknown tables, joins between
// unlisted tables, out-of-range columns).
func (q *Query) Validate(d *dataset.Dataset) error {
	in := map[int]bool{}
	for _, ti := range q.Tables {
		if ti < 0 || ti >= len(d.Tables) {
			return fmt.Errorf("engine: query references table %d of %d", ti, len(d.Tables))
		}
		in[ti] = true
	}
	for _, j := range q.Joins {
		if !in[j.LeftTable] || !in[j.RightTable] {
			return fmt.Errorf("engine: join references unlisted table")
		}
		if j.LeftCol >= d.Tables[j.LeftTable].NumCols() || j.RightCol >= d.Tables[j.RightTable].NumCols() {
			return fmt.Errorf("engine: join column out of range")
		}
	}
	for _, p := range q.Preds {
		if !in[p.Table] {
			return fmt.Errorf("engine: predicate references unlisted table %d", p.Table)
		}
		if p.Col < 0 || p.Col >= d.Tables[p.Table].NumCols() {
			return fmt.Errorf("engine: predicate column %d out of range", p.Col)
		}
	}
	return nil
}

// filterTable returns the row indexes of table ti that satisfy every
// predicate on that table.
func filterTable(d *dataset.Dataset, q *Query, ti int) []int32 {
	t := d.Tables[ti]
	n := t.Rows()
	var preds []Predicate
	for _, p := range q.Preds {
		if p.Table == ti {
			preds = append(preds, p)
		}
	}
	rows := make([]int32, 0, n)
	for r := 0; r < n; r++ {
		ok := true
		for _, p := range preds {
			if !p.Matches(t.Col(p.Col).Data[r]) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, int32(r))
		}
	}
	return rows
}

// Cardinality returns the exact number of result tuples of q over d.
// Single-table queries are a plain filtered count; multi-table queries are
// evaluated by folding hash joins over the join edges in an order that
// keeps the intermediate connected.
func Cardinality(d *dataset.Dataset, q *Query) int64 {
	rowsets := make(map[int][]int32, len(q.Tables))
	for _, ti := range q.Tables {
		rowsets[ti] = filterTable(d, q, ti)
		if len(rowsets[ti]) == 0 {
			return 0
		}
	}
	if len(q.Tables) == 1 {
		return int64(len(rowsets[q.Tables[0]]))
	}

	joined := map[int]int{}

	// Seed with the first table of the first join.
	first := q.Joins[0].LeftTable
	joined[first] = 0
	current := make([][]int32, 0, len(rowsets[first]))
	for _, r := range rowsets[first] {
		current = append(current, []int32{r})
	}

	remaining := append([]Join(nil), q.Joins...)
	for len(remaining) > 0 {
		// Pick a join with exactly one side already in the intermediate.
		pick := -1
		for i, j := range remaining {
			_, l := joined[j.LeftTable]
			_, r := joined[j.RightTable]
			if l != r {
				pick = i
				break
			}
			if l && r {
				pick = i // both joined: a cycle edge, handled as a filter
				break
			}
		}
		if pick == -1 {
			// Disconnected join graph; treat the rest as a cross product
			// with the first remaining join's component. The workload
			// generator never produces this, but stay defensive.
			pick = 0
			j := remaining[0]
			if _, ok := joined[j.LeftTable]; !ok {
				idx := len(joined)
				joined[j.LeftTable] = idx
				next := make([][]int32, 0, len(current)*len(rowsets[j.LeftTable]))
				for _, tp := range current {
					for _, r := range rowsets[j.LeftTable] {
						nt := make([]int32, len(tp)+1)
						copy(nt, tp)
						nt[len(tp)] = r
						next = append(next, nt)
					}
				}
				current = next
			}
		}
		j := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)

		_, lIn := joined[j.LeftTable]
		_, rIn := joined[j.RightTable]
		switch {
		case lIn && rIn:
			// Cycle edge: filter current tuples.
			li, ri := joined[j.LeftTable], joined[j.RightTable]
			lcol := d.Tables[j.LeftTable].Col(j.LeftCol).Data
			rcol := d.Tables[j.RightTable].Col(j.RightCol).Data
			next := current[:0]
			for _, tp := range current {
				if lcol[tp[li]] == rcol[tp[ri]] {
					next = append(next, tp)
				}
			}
			current = next
		case lIn:
			current = hashExtend(d, current, joined, j.LeftTable, j.LeftCol, j.RightTable, j.RightCol, rowsets)
			joined[j.RightTable] = len(joined)
		default:
			current = hashExtend(d, current, joined, j.RightTable, j.RightCol, j.LeftTable, j.LeftCol, rowsets)
			joined[j.LeftTable] = len(joined)
		}
		if len(current) == 0 {
			return 0
		}
	}
	// Tables listed in the query but not covered by any join edge
	// contribute via cross product.
	result := int64(len(current))
	for _, ti := range q.Tables {
		if _, ok := joined[ti]; !ok {
			result *= int64(len(rowsets[ti]))
		}
	}
	return result
}

// hashExtend joins the current intermediate (which contains inTable) with
// newTable on inCol = newCol using a hash table over the new table's
// filtered rows.
func hashExtend(d *dataset.Dataset, current [][]int32, joined map[int]int,
	inTable, inCol, newTable, newCol int, rowsets map[int][]int32) [][]int32 {
	ht := make(map[int64][]int32)
	newData := d.Tables[newTable].Col(newCol).Data
	for _, r := range rowsets[newTable] {
		v := newData[r]
		ht[v] = append(ht[v], r)
	}
	inIdx := joined[inTable]
	inData := d.Tables[inTable].Col(inCol).Data
	next := make([][]int32, 0, len(current))
	for _, tp := range current {
		matches := ht[inData[tp[inIdx]]]
		for _, r := range matches {
			nt := make([]int32, len(tp)+1)
			copy(nt, tp)
			nt[len(tp)] = r
			next = append(next, nt)
		}
	}
	return next
}

// Selectivity returns the fraction of the unfiltered join result that q's
// predicates keep. It evaluates both the predicated query and its
// predicate-free counterpart; useful in tests and the cost model.
func Selectivity(d *dataset.Dataset, q *Query) float64 {
	full := *q
	full.Preds = nil
	denom := Cardinality(d, &full)
	if denom == 0 {
		return 0
	}
	return float64(Cardinality(d, q)) / float64(denom)
}

// CrossProductSize returns the product of the (filtered) table sizes,
// the upper bound used by cost models; it saturates at MaxInt64.
func CrossProductSize(d *dataset.Dataset, q *Query) float64 {
	prod := 1.0
	for _, ti := range q.Tables {
		prod *= float64(len(filterTable(d, q, ti)))
		if prod > math.MaxInt64 {
			return math.MaxInt64
		}
	}
	return prod
}
