package engine

import (
	"math"

	"repro/internal/dataset"
)

// Evaluator executes queries against one dataset through its shared Index,
// owning all scratch memory the evaluation needs: per-table selection
// vectors, multiplicity-map pools for the count-propagating join fold, and
// flat tuple buffers for the cycle-edge fallback. Repeated calls on a
// warmed evaluator allocate nothing.
//
// An Evaluator is not safe for concurrent use; the Index it wraps is. Use
// one Evaluator per goroutine (CardinalityBatch does this internally) or
// the package-level Cardinality/Selectivity functions, which draw pooled
// evaluators from the dataset's cached Index.
type Evaluator struct {
	d  *dataset.Dataset
	ix *Index

	// Per-table selection scratch, indexed by dataset table id. selAll
	// marks tables with no predicates, whose selection is implicitly every
	// row (never materialized); selRows holds the surviving row ids of
	// predicated tables; selCount is the selection size either way.
	selRows  [][]int32
	selAll   []bool
	selCount []int64

	predBuf []Predicate

	// Count-propagation scratch: pools of reusable value->multiplicity
	// maps and dense arrays, and the child-message stack shared across
	// the tree recursion.
	mapPool   []map[int64]int64
	densePool [][]int64
	msgStack  []childMsg

	// Component-analysis scratch (union-find roots, membership flags).
	ufParent []int
	inJoin   []bool
	compDone []bool
	compTbls []int
	compEdge []Join

	// Cycle-fallback scratch: two flat tuple buffers (ping-pong), the
	// per-table slot assignment, a chained hash table over filtered rows,
	// and the used-edge flags of the fold.
	tupA, tupB []int32
	slot       []int
	bound      []bool
	edgeUsed   []bool
	ht         map[int64]int32
	chain      []int32
}

// message is a value -> multiplicity mapping flowing up the join tree,
// either dense (flat array indexed by value-base, for the narrow column
// domains the datasets are built from) or map-backed. borrowed messages
// alias ColIndex storage and must not be modified or recycled.
type message struct {
	dense    []int64
	base     int64
	counts   map[int64]int64 // nil when dense
	borrowed bool
}

// get returns the multiplicity of value v.
func (m *message) get(v int64) int64 {
	if m.dense != nil {
		i := v - m.base
		if uint64(i) < uint64(len(m.dense)) {
			return m.dense[i]
		}
		return 0
	}
	return m.counts[v]
}

// childMsg pairs a child's message with the parent-side column data the
// parent probes it with.
type childMsg struct {
	msg  message
	data []int64
}

// NewEvaluator returns an evaluator over d backed by the dataset's shared
// cached Index.
func NewEvaluator(d *dataset.Dataset) *Evaluator {
	ix := IndexFor(d)
	return newEvaluator(d, ix)
}

func newEvaluator(d *dataset.Dataset, ix *Index) *Evaluator {
	nt := len(d.Tables)
	return &Evaluator{
		d:        d,
		ix:       ix,
		selRows:  make([][]int32, nt),
		selAll:   make([]bool, nt),
		selCount: make([]int64, nt),
		ufParent: make([]int, nt),
		inJoin:   make([]bool, nt),
		compDone: make([]bool, nt),
		slot:     make([]int, nt),
		bound:    make([]bool, nt),
		ht:       make(map[int64]int32),
	}
}

// Dataset returns the dataset this evaluator executes against.
func (e *Evaluator) Dataset() *dataset.Dataset { return e.d }

// filter computes the selection of table ti under q's predicates into the
// evaluator's reusable per-table buffers and returns its size. Tables
// without predicates are marked selAll and never materialized.
func (e *Evaluator) filter(q *Query, ti int) int64 {
	t := e.d.Tables[ti]
	n := t.Rows()
	preds := e.predBuf[:0]
	for _, p := range q.Preds {
		if p.Table == ti {
			preds = append(preds, p)
		}
	}
	e.predBuf = preds
	if len(preds) == 0 {
		e.selAll[ti] = true
		e.selCount[ti] = int64(n)
		return int64(n)
	}
	e.selAll[ti] = false
	rows := e.selRows[ti][:0]
	for r := 0; r < n; r++ {
		ok := true
		for _, p := range preds {
			if !p.Matches(t.Col(p.Col).Data[r]) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, int32(r))
		}
	}
	e.selRows[ti] = rows
	e.selCount[ti] = int64(len(rows))
	return int64(len(rows))
}

// Cardinality returns the exact number of result tuples of q. Per-table
// selections feed a count-propagating fold over the join graph: acyclic
// components never materialize tuples — each table sends its parent a
// value -> multiplicity message — and only components with cycle edges
// fall back to (flat, buffer-reused) tuple materialization. Components and
// join-free tables combine by product.
func (e *Evaluator) Cardinality(q *Query) int64 {
	if len(q.Tables) == 0 {
		return 0
	}
	for _, ti := range q.Tables {
		if e.filter(q, ti) == 0 {
			return 0
		}
	}
	if len(q.Tables) == 1 && len(q.Joins) == 0 {
		return e.selCount[q.Tables[0]]
	}

	// Union-find the join graph into connected components.
	for _, ti := range q.Tables {
		e.ufParent[ti] = ti
		e.inJoin[ti] = false
		e.compDone[ti] = false
	}
	for _, j := range q.Joins {
		e.inJoin[j.LeftTable] = true
		e.inJoin[j.RightTable] = true
		e.union(j.LeftTable, j.RightTable)
	}

	total := int64(1)
	for _, ti := range q.Tables {
		if !e.inJoin[ti] {
			// Join-free table: contributes its filtered count by cross
			// product.
			total *= e.selCount[ti]
			continue
		}
		root := e.find(ti)
		if e.compDone[root] {
			continue
		}
		e.compDone[root] = true
		tbls := e.compTbls[:0]
		for _, t2 := range q.Tables {
			if e.inJoin[t2] && e.find(t2) == root {
				tbls = append(tbls, t2)
			}
		}
		edges := e.compEdge[:0]
		for _, j := range q.Joins {
			if e.find(j.LeftTable) == root {
				edges = append(edges, j)
			}
		}
		e.compTbls, e.compEdge = tbls, edges

		var c int64
		if len(edges) == len(tbls)-1 {
			c = e.treeCount(tbls, edges)
		} else {
			c = e.cyclicCount(tbls, edges)
		}
		if c == 0 {
			return 0
		}
		total *= c
	}
	return total
}

func (e *Evaluator) find(x int) int {
	for e.ufParent[x] != x {
		e.ufParent[x] = e.ufParent[e.ufParent[x]]
		x = e.ufParent[x]
	}
	return x
}

func (e *Evaluator) union(a, b int) {
	ra, rb := e.find(a), e.find(b)
	if ra != rb {
		e.ufParent[ra] = rb
	}
}

// treeCount counts an acyclic join component by multiplicity propagation:
// rooted at tbls[0], every table aggregates the product of its children's
// messages over its filtered rows, keyed by the join column toward its
// parent. The root sums instead of keying. No tuple is ever materialized.
func (e *Evaluator) treeCount(tbls []int, edges []Join) int64 {
	root := tbls[0]
	base := len(e.msgStack)
	e.pushChildren(root, -1, edges)
	children := e.msgStack[base:]

	t0 := e.d.Tables[root]
	var total int64
	if e.selAll[root] {
		n := t0.Rows()
		for r := 0; r < n; r++ {
			total += e.rowWeight(children, r)
		}
	} else {
		for _, r := range e.selRows[root] {
			total += e.rowWeight(children, int(r))
		}
	}
	e.popChildren(base)
	return total
}

// treeMsg computes the message of table ti toward its parent: the
// multiplicity of each value of column keyCol over ti's filtered rows,
// each row weighted by the product of its children's messages. Leaf tables
// without predicates borrow the prehashed ColIndex storage directly;
// narrow-domain key columns aggregate into a pooled dense array, wide ones
// into a pooled map.
func (e *Evaluator) treeMsg(ti, parent int, edges []Join, keyCol int) message {
	base := len(e.msgStack)
	e.pushChildren(ti, parent, edges)
	children := e.msgStack[base:]

	ci := e.ix.Col(ti, keyCol)
	if len(children) == 0 && e.selAll[ti] {
		e.popChildren(base)
		if ci.Dense != nil {
			return message{dense: ci.Dense, base: ci.Lo, borrowed: true}
		}
		return message{counts: ci.Counts, borrowed: true}
	}

	var out message
	keyData := e.d.Tables[ti].Col(keyCol).Data
	if ci.Dense != nil {
		out = message{dense: e.getDense(len(ci.Dense)), base: ci.Lo}
		if e.selAll[ti] {
			n := e.d.Tables[ti].Rows()
			for r := 0; r < n; r++ {
				if w := e.rowWeight(children, r); w != 0 {
					out.dense[keyData[r]-out.base] += w
				}
			}
		} else {
			for _, r := range e.selRows[ti] {
				if w := e.rowWeight(children, int(r)); w != 0 {
					out.dense[keyData[r]-out.base] += w
				}
			}
		}
	} else {
		out = message{counts: e.getMap()}
		if e.selAll[ti] {
			n := e.d.Tables[ti].Rows()
			for r := 0; r < n; r++ {
				if w := e.rowWeight(children, r); w != 0 {
					out.counts[keyData[r]] += w
				}
			}
		} else {
			for _, r := range e.selRows[ti] {
				if w := e.rowWeight(children, int(r)); w != 0 {
					out.counts[keyData[r]] += w
				}
			}
		}
	}
	e.popChildren(base)
	return out
}

// rowWeight multiplies the children's multiplicities for row r; a missing
// key in any child message zeroes the row.
func (e *Evaluator) rowWeight(children []childMsg, r int) int64 {
	w := int64(1)
	for i := range children {
		w *= children[i].msg.get(children[i].data[r])
		if w == 0 {
			return 0
		}
	}
	return w
}

// pushChildren evaluates the messages of every neighbor of ti except
// parent and pushes them (paired with ti's probe column data) onto the
// message stack.
func (e *Evaluator) pushChildren(ti, parent int, edges []Join) {
	for _, j := range edges {
		var other, otherCol, myCol int
		switch {
		case j.LeftTable == ti && j.RightTable != parent:
			other, otherCol, myCol = j.RightTable, j.RightCol, j.LeftCol
		case j.RightTable == ti && j.LeftTable != parent:
			other, otherCol, myCol = j.LeftTable, j.LeftCol, j.RightCol
		default:
			continue
		}
		msg := e.treeMsg(other, ti, edges, otherCol)
		e.msgStack = append(e.msgStack, childMsg{
			msg:  msg,
			data: e.d.Tables[ti].Col(myCol).Data,
		})
	}
}

// popChildren releases owned messages above base and truncates the stack.
func (e *Evaluator) popChildren(base int) {
	for i := base; i < len(e.msgStack); i++ {
		msg := &e.msgStack[i].msg
		if !msg.borrowed {
			if msg.dense != nil {
				e.densePool = append(e.densePool, msg.dense)
			} else {
				e.putMap(msg.counts)
			}
		}
		e.msgStack[i] = childMsg{}
	}
	e.msgStack = e.msgStack[:base]
}

func (e *Evaluator) getMap() map[int64]int64 {
	if n := len(e.mapPool); n > 0 {
		m := e.mapPool[n-1]
		e.mapPool = e.mapPool[:n-1]
		return m
	}
	return make(map[int64]int64)
}

func (e *Evaluator) putMap(m map[int64]int64) {
	clear(m)
	e.mapPool = append(e.mapPool, m)
}

// getDense returns a zeroed dense buffer of the given length from the pool.
func (e *Evaluator) getDense(n int) []int64 {
	if l := len(e.densePool); l > 0 {
		d := e.densePool[l-1]
		e.densePool = e.densePool[:l-1]
		if cap(d) < n {
			return make([]int64, n)
		}
		d = d[:n]
		clear(d)
		return d
	}
	return make([]int64, n)
}

// cyclicCount counts a join component that contains cycle edges (or
// parallel/self edges) by the materializing fold: tuples live in a flat
// reused buffer with one int32 slot per component table, join edges either
// extend the tuple set through a hash lookup or — when both sides are
// already bound — filter it in place.
func (e *Evaluator) cyclicCount(tbls []int, edges []Join) int64 {
	stride := len(tbls)
	for i, ti := range tbls {
		e.slot[ti] = i
		e.bound[ti] = false
	}
	bound := e.bound

	// Seed with the first edge's left table.
	seed := edges[0].LeftTable
	cur := e.tupA[:0]
	if e.selAll[seed] {
		n := e.d.Tables[seed].Rows()
		for r := 0; r < n; r++ {
			cur = appendTuple(cur, stride, e.slot[seed], int32(r))
		}
	} else {
		for _, r := range e.selRows[seed] {
			cur = appendTuple(cur, stride, e.slot[seed], r)
		}
	}
	bound[seed] = true
	nTup := len(cur) / stride

	if cap(e.edgeUsed) < len(edges) {
		e.edgeUsed = make([]bool, len(edges))
	}
	used := e.edgeUsed[:len(edges)]
	for i := range used {
		used[i] = false
	}

	for done := 0; done < len(edges); done++ {
		pick := -1
		for i, j := range edges {
			if used[i] {
				continue
			}
			if bound[j.LeftTable] || bound[j.RightTable] {
				pick = i
				break
			}
		}
		if pick == -1 {
			// Unreachable for a connected component; guard anyway.
			break
		}
		j := edges[pick]
		used[pick] = true
		lIn, rIn := bound[j.LeftTable], bound[j.RightTable]
		switch {
		case lIn && rIn:
			// Cycle edge: filter tuples in place.
			lcol := e.d.Tables[j.LeftTable].Col(j.LeftCol).Data
			rcol := e.d.Tables[j.RightTable].Col(j.RightCol).Data
			ls, rs := e.slot[j.LeftTable], e.slot[j.RightTable]
			out := 0
			for i := 0; i < nTup; i++ {
				tp := cur[i*stride : (i+1)*stride]
				if lcol[tp[ls]] == rcol[tp[rs]] {
					copy(cur[out*stride:], tp)
					out++
				}
			}
			nTup = out
			cur = cur[:nTup*stride]
		case lIn:
			cur, nTup = e.extendFlat(cur, nTup, stride, j.LeftTable, j.LeftCol, j.RightTable, j.RightCol)
			bound[j.RightTable] = true
		default:
			cur, nTup = e.extendFlat(cur, nTup, stride, j.RightTable, j.RightCol, j.LeftTable, j.LeftCol)
			bound[j.LeftTable] = true
		}
		if nTup == 0 {
			e.tupA = cur[:0]
			return 0
		}
	}
	e.tupA = cur[:0]
	return int64(nTup)
}

func appendTuple(buf []int32, stride, slot int, r int32) []int32 {
	n := len(buf)
	for i := 0; i < stride; i++ {
		buf = append(buf, 0)
	}
	buf[n+slot] = r
	return buf
}

// extendFlat joins the flat tuple set (bound through inTable.inCol) with
// newTable.newCol. The probe side is the tuple set; the build side is
// either the shared ColIndex (unpredicated table) or a chained hash over
// the reusable selection vector. The result lands in the evaluator's
// second tuple buffer, which is swapped with the first.
func (e *Evaluator) extendFlat(cur []int32, nTup, stride, inTable, inCol, newTable, newCol int) ([]int32, int) {
	inData := e.d.Tables[inTable].Col(inCol).Data
	inSlot, newSlot := e.slot[inTable], e.slot[newTable]
	dst := e.tupB[:0]

	if e.selAll[newTable] {
		ci := e.ix.Col(newTable, newCol)
		for i := 0; i < nTup; i++ {
			tp := cur[i*stride : (i+1)*stride]
			for _, r := range ci.Rows[inData[tp[inSlot]]] {
				n := len(dst)
				dst = append(dst, tp...)
				dst[n+newSlot] = r
			}
		}
	} else {
		rows := e.selRows[newTable]
		newData := e.d.Tables[newTable].Col(newCol).Data
		clear(e.ht)
		if cap(e.chain) < len(rows) {
			e.chain = make([]int32, len(rows))
		}
		chain := e.chain[:len(rows)]
		for i, r := range rows {
			v := newData[r]
			chain[i] = e.ht[v]
			e.ht[v] = int32(i + 1)
		}
		for i := 0; i < nTup; i++ {
			tp := cur[i*stride : (i+1)*stride]
			for pos := e.ht[inData[tp[inSlot]]]; pos != 0; pos = chain[pos-1] {
				n := len(dst)
				dst = append(dst, tp...)
				dst[n+newSlot] = rows[pos-1]
			}
		}
	}
	e.tupB = cur[:0] // old buffer becomes the next scratch target
	e.tupA = dst
	return dst, len(dst) / stride
}

// Selectivity returns the fraction of the unfiltered join result that q's
// predicates keep. Both passes share the evaluator's index; the
// predicate-free pass runs on borrowed per-value counts and performs no
// filtering at all, fixing the former double evaluation of filterTable.
func (e *Evaluator) Selectivity(q *Query) float64 {
	full := Query{Tables: q.Tables, Joins: q.Joins}
	denom := e.Cardinality(&full)
	if denom == 0 {
		return 0
	}
	return float64(e.Cardinality(q)) / float64(denom)
}

// CrossProductSize returns the product of the filtered table sizes, the
// upper bound used by cost models; it saturates at MaxInt64.
func (e *Evaluator) CrossProductSize(q *Query) float64 {
	prod := 1.0
	for _, ti := range q.Tables {
		prod *= float64(e.filter(q, ti))
		if prod > math.MaxInt64 {
			return math.MaxInt64
		}
	}
	return prod
}
