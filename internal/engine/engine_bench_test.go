package engine

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func benchDataset(b *testing.B, tables int) *dataset.Dataset {
	b.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 3, MaxCols: 4,
		MinRows: 1000, MaxRows: 1000,
		Domain: 50,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 0.5,
		JoinLo: 0.5, JoinHi: 1,
		Seed: 1,
	}
	d, err := datagen.Generate("bench", p)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkCardinalitySingleTable(b *testing.B) {
	d := benchDataset(b, 1)
	q := &Query{
		Tables: []int{0},
		Preds: []Predicate{
			{Table: 0, Col: 0, Lo: 5, Hi: 30},
			{Table: 0, Col: 1, Lo: 1, Hi: 20},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkCardinalityThreeWayJoin(b *testing.B) {
	d := benchDataset(b, 3)
	all := make([]int, len(d.Tables))
	for i := range all {
		all[i] = i
	}
	q := &Query{Tables: all}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}
	q.Preds = append(q.Preds, Predicate{Table: 0, Col: 1, Lo: 1, Hi: 25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkSampleJoin(b *testing.B) {
	d := benchDataset(b, 3)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleJoin(d, 1000, rng)
	}
}
