package engine

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func benchDataset(b *testing.B, tables int) *dataset.Dataset {
	b.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 3, MaxCols: 4,
		MinRows: 1000, MaxRows: 1000,
		Domain: 50,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 0.5,
		JoinLo: 0.5, JoinHi: 1,
		Seed: 1,
	}
	d, err := datagen.Generate("bench", p)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// benchJoinQuery builds the all-tables FK-join query over d with one range
// predicate per table spanning [1, hi] — hi near the domain top keeps most
// rows (high selectivity in the "fraction kept" sense), a small hi keeps few.
func benchJoinQuery(d *dataset.Dataset, hi int64) *Query {
	all := make([]int, len(d.Tables))
	for i := range all {
		all[i] = i
	}
	q := &Query{Tables: all}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}
	for ti := range d.Tables {
		q.Preds = append(q.Preds, Predicate{Table: ti, Col: 1, Lo: 1, Hi: hi})
	}
	return q
}

func BenchmarkCardinalitySingleTable(b *testing.B) {
	d := benchDataset(b, 1)
	q := &Query{
		Tables: []int{0},
		Preds: []Predicate{
			{Table: 0, Col: 0, Lo: 5, Hi: 30},
			{Table: 0, Col: 1, Lo: 1, Hi: 20},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkCardinalityThreeWayJoin(b *testing.B) {
	d := benchDataset(b, 3)
	all := make([]int, len(d.Tables))
	for i := range all {
		all[i] = i
	}
	q := &Query{Tables: all}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}
	q.Preds = append(q.Preds, Predicate{Table: 0, Col: 1, Lo: 1, Hi: 25})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkCardinalityFourWayJoinHighSel(b *testing.B) {
	d := benchDataset(b, 4)
	q := benchJoinQuery(d, 45)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkCardinalityFourWayJoinLowSel(b *testing.B) {
	d := benchDataset(b, 4)
	q := benchJoinQuery(d, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkCardinalityFiveWayJoinHighSel(b *testing.B) {
	d := benchDataset(b, 5)
	q := benchJoinQuery(d, 45)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkCardinalityFiveWayJoinLowSel(b *testing.B) {
	d := benchDataset(b, 5)
	q := benchJoinQuery(d, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cardinality(d, q)
	}
}

func BenchmarkEvaluatorSingleTable(b *testing.B) {
	d := benchDataset(b, 1)
	ev := NewEvaluator(d)
	q := &Query{
		Tables: []int{0},
		Preds: []Predicate{
			{Table: 0, Col: 0, Lo: 5, Hi: 30},
			{Table: 0, Col: 1, Lo: 1, Hi: 20},
		},
	}
	ev.Cardinality(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Cardinality(q)
	}
}

func BenchmarkEvaluatorFiveWayJoin(b *testing.B) {
	d := benchDataset(b, 5)
	ev := NewEvaluator(d)
	q := benchJoinQuery(d, 45)
	ev.Cardinality(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Cardinality(q)
	}
}

func BenchmarkCardinalityBatchFiveWay(b *testing.B) {
	d := benchDataset(b, 5)
	qs := make([]*Query, 256)
	for i := range qs {
		qs[i] = benchJoinQuery(d, int64(5+i%41))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CardinalityBatch(d, qs)
	}
}

func BenchmarkSelectivityThreeWayJoin(b *testing.B) {
	d := benchDataset(b, 3)
	q := benchJoinQuery(d, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Selectivity(d, q)
	}
}

func BenchmarkSampleJoin(b *testing.B) {
	d := benchDataset(b, 3)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleJoin(d, 1000, rng)
	}
}
