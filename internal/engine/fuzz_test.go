package engine

// FuzzEngineDifferential is a coverage-guided differential fuzzer: every
// input byte stream decodes deterministically into a small dataset plus a
// structurally valid SPJ query over it, and the columnar join engine
// (Cardinality, Evaluator.Cardinality, CardinalityBatch) must agree with
// the brute-force nested-loop oracle (naiveCardinality, engine_test.go)
// exactly. The randomized differential tests sample the same space;
// fuzzing lets the mutator steer into engine branches (cyclic fallback,
// disconnected components, empty filters, empty tables) the fixed seeds
// happen to miss. Corpus seeds live in testdata/fuzz; CI fuzzes briefly.

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
)

// fuzzCursor reads a byte stream as a bounded decision tape; exhausted
// input yields zeros, so every prefix decodes to something valid.
type fuzzCursor struct {
	data []byte
	i    int
}

func (c *fuzzCursor) next() byte {
	if c.i >= len(c.data) {
		return 0
	}
	v := c.data[c.i]
	c.i++
	return v
}

// intn returns a value in [0, n); n must be positive and small enough
// that the byte modulo keeps reasonable spread (n <= 256).
func (c *fuzzCursor) intn(n int) int { return int(c.next()) % n }

// fuzzDecodeCase maps a byte stream onto a bounded dataset (≤3 tables,
// ≤3 columns, ≤8 rows, values in [1,5], no PKs or FKs — the engine never
// reads them) and a query that q.Validate accepts by construction:
// clamped table subsets, join and predicate columns drawn modulo the
// table's width, predicate ranges that may be empty (hi < lo).
func fuzzDecodeCase(raw []byte) (*dataset.Dataset, *Query) {
	c := &fuzzCursor{data: raw}
	d := &dataset.Dataset{Name: "fuzz"}
	nt := 1 + c.intn(3)
	for ti := 0; ti < nt; ti++ {
		ncols := 1 + c.intn(3)
		rows := c.intn(9) // empty tables are legal and interesting
		cols := make([]*dataset.Column, ncols)
		for ci := range cols {
			vals := make([]int64, rows)
			for r := range vals {
				vals[r] = 1 + int64(c.intn(5))
			}
			cols[ci] = dataset.NewColumn(fmt.Sprintf("c%d", ci), vals)
		}
		d.Tables = append(d.Tables, dataset.NewTable(fmt.Sprintf("t%d", ti), cols...))
	}

	q := &Query{}
	mask := c.next()
	for ti := 0; ti < nt; ti++ {
		if mask&(1<<ti) != 0 {
			q.Tables = append(q.Tables, ti)
		}
	}
	if len(q.Tables) == 0 {
		q.Tables = []int{0}
	}
	pick := func() int { return q.Tables[c.intn(len(q.Tables))] }
	for nj := c.intn(4); nj > 0; nj-- {
		a, b := pick(), pick() // self- and parallel joins included
		q.Joins = append(q.Joins, Join{
			LeftTable: a, LeftCol: c.intn(d.Tables[a].NumCols()),
			RightTable: b, RightCol: c.intn(d.Tables[b].NumCols()),
		})
	}
	for np := c.intn(5); np > 0; np-- {
		ti := pick()
		lo := int64(c.intn(7))
		q.Preds = append(q.Preds, Predicate{
			Table: ti, Col: c.intn(d.Tables[ti].NumCols()),
			Lo: lo, Hi: lo + int64(c.intn(5)) - 2, // sometimes hi < lo
		})
	}
	return d, q
}

func FuzzEngineDifferential(f *testing.F) {
	f.Add([]byte{})                                         // 1 table, 0 rows
	f.Add([]byte{2, 2, 4, 1, 2, 3, 4, 2, 1, 3})             // 3 tables, joins
	f.Add([]byte{0, 1, 3, 5, 1, 1, 255, 3, 0, 0})           // full-mask query, self join
	f.Add([]byte{1, 0, 5, 2, 2, 1, 4, 3, 3, 0, 6, 0, 6, 1}) // empty-range predicate
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 256 {
			raw = raw[:256] // decision tape is short; bound oracle work
		}
		d, q := fuzzDecodeCase(raw)
		defer InvalidateIndex(d) // the index cache is pointer-keyed
		if err := q.Validate(d); err != nil {
			t.Fatalf("decoder emitted an invalid query: %v\n%+v", err, q)
		}
		want := naiveCardinality(d, q)
		if got := Cardinality(d, q); got != want {
			t.Fatalf("Cardinality = %d, brute force = %d\nquery: %+v", got, want, q)
		}
		if got := NewEvaluator(d).Cardinality(q); got != want {
			t.Fatalf("Evaluator.Cardinality = %d, brute force = %d\nquery: %+v", got, want, q)
		}
		if got := CardinalityBatch(d, []*Query{q, q}); got[0] != want || got[1] != want {
			t.Fatalf("CardinalityBatch = %v, brute force = %d\nquery: %+v", got, want, q)
		}
	})
}
