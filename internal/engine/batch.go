package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
)

// CardinalityBatch labels every query in qs with its exact cardinality
// over d and returns the counts in query order. All workers share the
// dataset's cached Index (each join-key column is hashed once, not once
// per query) and each owns a pooled Evaluator, so the whole batch runs
// without per-query allocation. Queries are distributed over
// runtime.NumCPU() workers; this is the Stage-1 labeling fast path the
// testbed and the corpus builder run on.
func CardinalityBatch(d *dataset.Dataset, qs []*Query) []int64 {
	out := make([]int64, len(qs))
	if len(qs) == 0 {
		return out
	}
	ix := IndexFor(d)
	workers := runtime.NumCPU()
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		e := ix.acquire()
		for i, q := range qs {
			out[i] = e.Cardinality(q)
		}
		ix.release(e)
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := ix.acquire()
			defer ix.release(e)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				out[i] = e.Cardinality(qs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
