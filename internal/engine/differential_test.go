package engine

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// This file property-tests the count-propagating evaluator against the
// brute-force nested-loop oracle (naiveCardinality, engine_test.go) on
// randomized schemas and adversarial query shapes: cycle edges (including
// parallel and self edges, which route through the materializing
// fallback), disconnected join graphs (per-component counting joined by
// cross product), and empty-filter early exits.

func diffDataset(t *testing.T, seed int64, tables int) *dataset.Dataset {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 10, MaxRows: 22,
		Domain: 6,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 1,
		JoinLo: 0.3, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("diff", p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

// randomDiffQuery draws an adversarial query: a random (possibly
// disconnected) table subset, FK join edges kept with probability 0.8,
// occasional extra equi-join edges that close cycles (or parallel an
// existing edge, or self-join a table), and random predicates that are
// sometimes unsatisfiable.
func randomDiffQuery(d *dataset.Dataset, rng *rand.Rand) *Query {
	nt := len(d.Tables)
	k := 1 + rng.Intn(nt)
	perm := rng.Perm(nt)
	in := map[int]bool{}
	q := &Query{}
	for _, ti := range perm[:k] {
		in[ti] = true
	}
	for ti := 0; ti < nt; ti++ {
		if in[ti] {
			q.Tables = append(q.Tables, ti)
		}
	}
	for _, fk := range d.FKs {
		if in[fk.FromTable] && in[fk.ToTable] && rng.Float64() < 0.8 {
			q.Joins = append(q.Joins, Join{
				LeftTable: fk.FromTable, LeftCol: fk.FromCol,
				RightTable: fk.ToTable, RightCol: fk.ToCol,
			})
		}
	}
	if rng.Float64() < 0.4 {
		// Extra edge between arbitrary in-query tables and columns:
		// closes a cycle, duplicates an edge, or self-joins.
		a := q.Tables[rng.Intn(len(q.Tables))]
		b := q.Tables[rng.Intn(len(q.Tables))]
		q.Joins = append(q.Joins, Join{
			LeftTable: a, LeftCol: rng.Intn(d.Tables[a].NumCols()),
			RightTable: b, RightCol: rng.Intn(d.Tables[b].NumCols()),
		})
	}
	for _, ti := range q.Tables {
		np := rng.Intn(3)
		for i := 0; i < np; i++ {
			ci := rng.Intn(d.Tables[ti].NumCols())
			lo := int64(rng.Intn(7))
			hi := lo + int64(rng.Intn(5)) - 1 // sometimes hi < lo: empty range
			q.Preds = append(q.Preds, Predicate{Table: ti, Col: ci, Lo: lo, Hi: hi})
		}
	}
	if len(q.Preds) == 0 {
		q.Preds = append(q.Preds, Predicate{Table: q.Tables[0], Col: 0, Lo: 0, Hi: 6})
	}
	return q
}

func TestDifferentialCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		d := diffDataset(t, int64(1000+trial), 1+trial%4)
		ev := NewEvaluator(d) // reused across queries of this dataset
		var qs []*Query
		var want []int64
		for i := 0; i < 6; i++ {
			q := randomDiffQuery(d, rng)
			w := naiveCardinality(d, q)
			qs = append(qs, q)
			want = append(want, w)

			if got := Cardinality(d, q); got != w {
				t.Fatalf("trial %d query %d: Cardinality = %d, brute force = %d\nquery: %+v", trial, i, got, w, q)
			}
			if got := ev.Cardinality(q); got != w {
				t.Fatalf("trial %d query %d: Evaluator.Cardinality = %d, brute force = %d\nquery: %+v", trial, i, got, w, q)
			}
		}
		for i, got := range CardinalityBatch(d, qs) {
			if got != want[i] {
				t.Fatalf("trial %d: CardinalityBatch[%d] = %d, brute force = %d", trial, i, got, want[i])
			}
		}
		InvalidateIndex(d)
	}
}

func TestDifferentialCycleEdges(t *testing.T) {
	// Force the cyclic fallback: join every FK edge plus a duplicate of
	// the first (a parallel edge is a cycle in the join multigraph).
	rng := rand.New(rand.NewSource(78))
	tested := 0
	for trial := 0; trial < 25 && tested < 10; trial++ {
		d := diffDataset(t, int64(2000+trial), 3)
		if len(d.FKs) == 0 {
			continue
		}
		q := &Query{}
		in := map[int]bool{}
		for _, fk := range d.FKs {
			q.Joins = append(q.Joins, Join{
				LeftTable: fk.FromTable, LeftCol: fk.FromCol,
				RightTable: fk.ToTable, RightCol: fk.ToCol,
			})
			in[fk.FromTable] = true
			in[fk.ToTable] = true
		}
		q.Joins = append(q.Joins, q.Joins[0])
		for ti := range d.Tables {
			if in[ti] {
				q.Tables = append(q.Tables, ti)
			}
		}
		if rng.Float64() < 0.5 {
			ti := q.Tables[rng.Intn(len(q.Tables))]
			q.Preds = append(q.Preds, Predicate{Table: ti, Col: 0, Lo: 1, Hi: int64(1 + rng.Intn(5))})
		}
		got, w := Cardinality(d, q), naiveCardinality(d, q)
		if got != w {
			t.Fatalf("trial %d: cyclic Cardinality = %d, brute force = %d", trial, got, w)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no FK-bearing dataset generated")
	}
}

func TestDifferentialDisconnected(t *testing.T) {
	// Two joined tables plus a third with no edge: the engine must cross-
	// multiply the disconnected component.
	for trial := 0; trial < 15; trial++ {
		d := diffDataset(t, int64(3000+trial), 3)
		if len(d.FKs) == 0 {
			continue
		}
		fk := d.FKs[0]
		third := -1
		for ti := range d.Tables {
			if ti != fk.FromTable && ti != fk.ToTable {
				third = ti
				break
			}
		}
		if third == -1 {
			continue
		}
		q := &Query{
			Joins: []Join{{
				LeftTable: fk.FromTable, LeftCol: fk.FromCol,
				RightTable: fk.ToTable, RightCol: fk.ToCol,
			}},
			Preds: []Predicate{{Table: third, Col: 0, Lo: 1, Hi: 4}},
		}
		for _, ti := range []int{fk.FromTable, fk.ToTable, third} {
			q.Tables = append(q.Tables, ti)
		}
		got, w := Cardinality(d, q), naiveCardinality(d, q)
		if got != w {
			t.Fatalf("trial %d: disconnected Cardinality = %d, brute force = %d", trial, got, w)
		}
	}
}

func TestDifferentialEmptyFilterEarlyExit(t *testing.T) {
	d := diffDataset(t, 9, 3)
	q := &Query{
		Preds: []Predicate{{Table: 0, Col: 0, Lo: 50, Hi: 40}}, // empty range
	}
	for ti := range d.Tables {
		q.Tables = append(q.Tables, ti)
	}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}
	if got := Cardinality(d, q); got != 0 {
		t.Fatalf("empty-range predicate gave %d, want 0", got)
	}
	if got := naiveCardinality(d, q); got != 0 {
		t.Fatalf("oracle disagrees: %d", got)
	}
}

func TestDifferentialSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 20; trial++ {
		d := diffDataset(t, int64(4000+trial), 1+trial%3)
		q := randomDiffQuery(d, rng)
		full := *q
		full.Preds = nil
		denom := naiveCardinality(d, &full)
		var want float64
		if denom != 0 {
			want = float64(naiveCardinality(d, q)) / float64(denom)
		}
		if got := Selectivity(d, q); got != want {
			t.Fatalf("trial %d: Selectivity = %g, brute force = %g", trial, got, want)
		}
	}
}

func TestInvalidateIndexAfterMutation(t *testing.T) {
	d := diffDataset(t, 13, 2)
	q := randomDiffQuery(d, rand.New(rand.NewSource(80)))
	before := Cardinality(d, q)
	if before != naiveCardinality(d, q) {
		t.Fatal("pre-mutation mismatch")
	}
	// Mutate a join/predicate column in place; the cached index is stale
	// until invalidated.
	c := d.Tables[0].Col(0)
	for i := range c.Data {
		c.Data[i] = c.Data[i]%3 + 1
	}
	InvalidateIndex(d)
	if got, w := Cardinality(d, q), naiveCardinality(d, q); got != w {
		t.Fatalf("post-mutation Cardinality = %d, brute force = %d", got, w)
	}
}

func TestEvaluatorZeroAllocSingleTable(t *testing.T) {
	d := diffDataset(t, 17, 1)
	ev := NewEvaluator(d)
	q := &Query{
		Tables: []int{0},
		Preds:  []Predicate{{Table: 0, Col: 0, Lo: 1, Hi: 4}},
	}
	ev.Cardinality(q) // warm scratch buffers
	allocs := testing.AllocsPerRun(200, func() { ev.Cardinality(q) })
	if allocs != 0 {
		t.Fatalf("Evaluator.Cardinality allocated %.1f times per call, want 0", allocs)
	}
}
