// Package workload generates SPJ query workloads against datasets and
// encodes queries as fixed-size feature vectors for the query-driven
// estimators. It mirrors the paper's workload setup (Section VII-A): random
// select-project-join queries with conjunctive range predicates, split into
// training and testing sets, plus a CEB-like templated multi-join workload
// for the Table III experiment.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Query couples an engine query with its true cardinality (filled by
// Label). TrueCard is -1 until labeled.
type Query struct {
	engine.Query
	TrueCard int64
}

// Config controls random workload generation.
type Config struct {
	// NumQueries is the number of queries to generate.
	NumQueries int
	// MaxPredsPerTable bounds the number of range predicates placed on the
	// non-key columns of each chosen table (at least 1 on one table).
	MaxPredsPerTable int
	// Seed seeds the generator.
	Seed int64
}

// DefaultConfig returns a workload configuration matching the scaled-down
// regime in DESIGN.md.
func DefaultConfig(n int, seed int64) Config {
	return Config{NumQueries: n, MaxPredsPerTable: 2, Seed: seed}
}

// Generate produces cfg.NumQueries random SPJ queries over d, labeled
// with true cardinalities. It is GenerateUnlabeled followed by Label.
func Generate(d *dataset.Dataset, cfg Config) []*Query {
	qs := GenerateUnlabeled(d, cfg)
	Label(d, qs)
	return qs
}

// GenerateUnlabeled produces cfg.NumQueries random SPJ queries over d with
// TrueCard left at -1. Each query joins a connected subset of tables
// (1..all of them) along FK edges and carries range predicates on randomly
// chosen non-key columns. Identical query streams to Generate: labeling
// does not consume the generator's randomness.
func GenerateUnlabeled(d *dataset.Dataset, cfg Config) []*Query {
	rng := rand.New(rand.NewSource(cfg.Seed))
	queries := make([]*Query, 0, cfg.NumQueries)
	adj := d.JoinGraphAdjacency()
	for len(queries) < cfg.NumQueries {
		q := randomQuery(d, adj, rng, cfg.MaxPredsPerTable)
		if q == nil {
			continue
		}
		q.TrueCard = -1
		queries = append(queries, q)
	}
	return queries
}

// Label acquires the true cardinality of every query from the engine's
// batched oracle (Stage 1 of the paper's labeling pipeline): one shared
// per-dataset join index, one evaluator per worker.
func Label(d *dataset.Dataset, qs []*Query) {
	eqs := make([]*engine.Query, len(qs))
	for i, q := range qs {
		eqs[i] = &q.Query
	}
	for i, c := range engine.CardinalityBatch(d, eqs) {
		qs[i].TrueCard = c
	}
}

// randomQuery builds one random query, or nil when the draw degenerates
// (e.g. a chosen table has no non-key columns to predicate on).
func randomQuery(d *dataset.Dataset, adj [][]int, rng *rand.Rand, maxPreds int) *Query {
	nt := len(d.Tables)
	want := 1 + rng.Intn(nt)

	start := rng.Intn(nt)
	chosen := map[int]bool{start: true}
	var joins []engine.Join
	// Grow a connected table set over FK edges.
	for len(chosen) < want {
		grew := false
		// Collect candidate edges out of the chosen set.
		var cands []dataset.ForeignKey
		for ti := range chosen {
			for _, fki := range adj[ti] {
				fk := d.FKs[fki]
				other := fk.FromTable
				if other == ti {
					other = fk.ToTable
				}
				if !chosen[other] {
					cands = append(cands, fk)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		fk := cands[rng.Intn(len(cands))]
		other := fk.FromTable
		if chosen[other] {
			other = fk.ToTable
		}
		chosen[other] = true
		joins = append(joins, engine.Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
		grew = true
		_ = grew
	}

	tables := make([]int, 0, len(chosen))
	for ti := 0; ti < nt; ti++ {
		if chosen[ti] {
			tables = append(tables, ti)
		}
	}

	var preds []engine.Predicate
	for _, ti := range tables {
		t := d.Tables[ti]
		nonKey := nonJoinCols(d, ti)
		if len(nonKey) == 0 {
			continue
		}
		np := rng.Intn(maxPreds + 1)
		if np == 0 && len(preds) == 0 && ti == tables[len(tables)-1] {
			np = 1 // ensure at least one predicate per query
		}
		perm := rng.Perm(len(nonKey))
		for i := 0; i < np && i < len(nonKey); i++ {
			ci := nonKey[perm[i]]
			lo, hi := t.Col(ci).MinMax()
			if hi <= lo {
				continue
			}
			a := lo + int64(rng.Int63n(hi-lo+1))
			b := lo + int64(rng.Int63n(hi-lo+1))
			if a > b {
				a, b = b, a
			}
			preds = append(preds, engine.Predicate{Table: ti, Col: ci, Lo: a, Hi: b})
		}
	}
	if len(preds) == 0 {
		return nil
	}
	return &Query{Query: engine.Query{Tables: tables, Joins: joins, Preds: preds}}
}

// nonJoinCols returns the column indexes of table ti that are neither its
// primary key nor an FK column — the columns predicates may touch.
func nonJoinCols(d *dataset.Dataset, ti int) []int {
	t := d.Tables[ti]
	fkCols := map[int]bool{}
	for _, fk := range d.FKs {
		if fk.FromTable == ti {
			fkCols[fk.FromCol] = true
		}
	}
	var out []int
	for ci := range t.Cols {
		if ci == t.PKCol || fkCols[ci] {
			continue
		}
		out = append(out, ci)
	}
	return out
}

// Split partitions queries into train/test by the given training fraction,
// deterministically shuffled with seed.
func Split(qs []*Query, trainFrac float64, seed int64) (train, test []*Query) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(qs))
	cut := int(trainFrac * float64(len(qs)))
	for i, pi := range perm {
		if i < cut {
			train = append(train, qs[pi])
		} else {
			test = append(test, qs[pi])
		}
	}
	return train, test
}

// String renders a query as SQL-ish text for logs and examples.
func String(d *dataset.Dataset, q *Query) string {
	s := "SELECT COUNT(*) FROM "
	for i, ti := range q.Tables {
		if i > 0 {
			s += ", "
		}
		s += d.Tables[ti].Name
	}
	s += " WHERE "
	first := true
	for _, j := range q.Joins {
		if !first {
			s += " AND "
		}
		first = false
		s += fmt.Sprintf("%s.%s = %s.%s",
			d.Tables[j.LeftTable].Name, d.Tables[j.LeftTable].Col(j.LeftCol).Name,
			d.Tables[j.RightTable].Name, d.Tables[j.RightTable].Col(j.RightCol).Name)
	}
	for _, p := range q.Preds {
		if !first {
			s += " AND "
		}
		first = false
		s += fmt.Sprintf("%s.%s BETWEEN %d AND %d",
			d.Tables[p.Table].Name, d.Tables[p.Table].Col(p.Col).Name, p.Lo, p.Hi)
	}
	return s
}
