package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// This file provides the CEB-like benchmark workload used by the Table III
// experiment. The paper evaluates query-driven estimators on CEB-IMDB, a
// templated multi-join benchmark; we substitute a snowflake schema with a
// fixed set of join templates over 4-8 tables, which exercises the same
// trade-off the experiment measures (per-template accuracy vs. inference
// latency of MSCN / LW-NN / LW-XGB).

// CEBSchema generates the fixed snowflake dataset behind the CEB-like
// workload: a central fact table referencing four dimension tables, two of
// which reference sub-dimensions.
func CEBSchema(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0xCEB))
	base := datagen.Params{
		Tables:  1,
		MinCols: 2, MaxCols: 3,
		MinRows: 600, MaxRows: 1200,
		Domain: 80,
		SkewLo: 0.1, SkewHi: 0.9,
		CorrLo: 0, CorrHi: 0.8,
	}
	d := &dataset.Dataset{Name: "ceb-like"}
	names := []string{"fact", "dim_a", "dim_b", "dim_c", "dim_d", "sub_a", "sub_b", "sub_c"}
	for i, n := range names {
		p := base
		p.Seed = seed + int64(i)*101
		if i == 0 {
			p.MinRows, p.MaxRows = 2500, 3500 // fact table is larger
		}
		t := datagen.SingleTable(rng, n, p)
		d.Tables = append(d.Tables, t)
	}
	addFK := func(from, to int, p float64) {
		toT := d.Tables[to]
		if toT.PKCol < 0 {
			pk := make([]int64, toT.Rows())
			for i := range pk {
				pk[i] = int64(i + 1)
			}
			toT.Cols = append([]*dataset.Column{dataset.NewColumn("id", pk)}, toT.Cols...)
			toT.PKCol = 0
			// Shift existing FK column references into this table.
			for fi := range d.FKs {
				if d.FKs[fi].ToTable == to {
					d.FKs[fi].ToCol++
				}
				if d.FKs[fi].FromTable == to {
					d.FKs[fi].FromCol++
				}
			}
		}
		fromT := d.Tables[from]
		fk := datagen.PopulateFK(rng, toT.Col(toT.PKCol).Data, fromT.Rows(), p)
		fromT.Cols = append(fromT.Cols, dataset.NewColumn(fmt.Sprintf("fk_%s", toT.Name), fk))
		d.FKs = append(d.FKs, dataset.ForeignKey{
			FromTable: from, FromCol: fromT.NumCols() - 1,
			ToTable: to, ToCol: toT.PKCol, Correlation: p,
		})
	}
	addFK(0, 1, 0.9)
	addFK(0, 2, 0.7)
	addFK(0, 3, 0.5)
	addFK(0, 4, 0.8)
	addFK(1, 5, 0.9)
	addFK(2, 6, 0.6)
	addFK(3, 7, 0.8)
	return d
}

// CEBTemplate names a join template: which FK edges (by index into the
// schema's FKs) participate.
type CEBTemplate struct {
	Name  string
	Edges []int
}

// CEBTemplates returns the fixed template set: star joins of increasing
// width and deep snowflake chains, 4-8 tables per query.
func CEBTemplates() []CEBTemplate {
	return []CEBTemplate{
		{Name: "star4", Edges: []int{0, 1, 2}},
		{Name: "star5", Edges: []int{0, 1, 2, 3}},
		{Name: "chain4", Edges: []int{0, 4}},
		{Name: "snow6", Edges: []int{0, 1, 4, 5}},
		{Name: "snow7", Edges: []int{0, 1, 2, 4, 5, 6}},
		{Name: "full8", Edges: []int{0, 1, 2, 3, 4, 5, 6}},
	}
}

// CEBWorkload instantiates n queries per template with random predicates
// and true cardinalities over schema d (built by CEBSchema).
func CEBWorkload(d *dataset.Dataset, perTemplate int, seed int64) []*Query {
	rng := rand.New(rand.NewSource(seed))
	var out []*Query
	for _, tpl := range CEBTemplates() {
		tset := map[int]bool{}
		var joins []engine.Join
		for _, ei := range tpl.Edges {
			fk := d.FKs[ei]
			tset[fk.FromTable] = true
			tset[fk.ToTable] = true
			joins = append(joins, engine.Join{
				LeftTable: fk.FromTable, LeftCol: fk.FromCol,
				RightTable: fk.ToTable, RightCol: fk.ToCol,
			})
		}
		var tables []int
		for ti := 0; ti < len(d.Tables); ti++ {
			if tset[ti] {
				tables = append(tables, ti)
			}
		}
		for i := 0; i < perTemplate; i++ {
			var preds []engine.Predicate
			for _, ti := range tables {
				nonKey := nonJoinCols(d, ti)
				if len(nonKey) == 0 || rng.Float64() < 0.4 {
					continue
				}
				ci := nonKey[rng.Intn(len(nonKey))]
				lo, hi := d.Tables[ti].Col(ci).MinMax()
				if hi <= lo {
					continue
				}
				a := lo + rng.Int63n(hi-lo+1)
				b := lo + rng.Int63n(hi-lo+1)
				if a > b {
					a, b = b, a
				}
				preds = append(preds, engine.Predicate{Table: ti, Col: ci, Lo: a, Hi: b})
			}
			if len(preds) == 0 {
				i--
				continue
			}
			q := &Query{Query: engine.Query{Tables: tables, Joins: joins, Preds: preds}}
			q.TrueCard = -1
			out = append(out, q)
		}
	}
	// Acquire all true cardinalities in one batched pass over the shared
	// per-dataset join index.
	Label(d, out)
	return out
}
