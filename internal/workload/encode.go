package workload

import (
	"math"

	"repro/internal/dataset"
)

// Encoder maps queries over one dataset to fixed-size feature vectors, the
// representation consumed by the query-driven estimators. It follows the
// MSCN-family encoding: a table-set one-hot block, a join-set one-hot
// block, and a per-column predicate block holding (present, lo, hi)
// normalized into [0,1] by the column's value range.
type Encoder struct {
	d *dataset.Dataset
	// colIndex maps (table,col) to a dense column slot.
	colIndex map[[2]int]int
	// colLo and colRange cache per-slot normalization constants.
	colLo, colRange []float64
	numTables       int
	numJoins        int
}

// NewEncoder builds an encoder for dataset d.
func NewEncoder(d *dataset.Dataset) *Encoder {
	e := &Encoder{
		d:         d,
		colIndex:  map[[2]int]int{},
		numTables: len(d.Tables),
		numJoins:  len(d.FKs),
	}
	for ti, t := range d.Tables {
		for ci, c := range t.Cols {
			e.colIndex[[2]int{ti, ci}] = len(e.colLo)
			lo, hi := c.MinMax()
			e.colLo = append(e.colLo, float64(lo))
			r := float64(hi - lo)
			if r <= 0 {
				r = 1
			}
			e.colRange = append(e.colRange, r)
		}
	}
	return e
}

// Dim returns the encoded vector length.
func (e *Encoder) Dim() int { return e.numTables + e.numJoins + 3*len(e.colLo) }

// TableDim, JoinDim and PredDim expose the block sizes for set-structured
// models (MSCN treats the blocks as separate sets).
func (e *Encoder) TableDim() int { return e.numTables }
func (e *Encoder) JoinDim() int  { return e.numJoins }
func (e *Encoder) PredDim() int  { return 3 * len(e.colLo) }

// Encode returns the flat feature vector of q.
func (e *Encoder) Encode(q *Query) []float64 {
	v := make([]float64, e.Dim())
	for _, ti := range q.Tables {
		v[ti] = 1
	}
	base := e.numTables
	for _, j := range q.Joins {
		for fi, fk := range e.d.FKs {
			if fk.FromTable == j.LeftTable && fk.FromCol == j.LeftCol &&
				fk.ToTable == j.RightTable && fk.ToCol == j.RightCol {
				v[base+fi] = 1
			}
		}
	}
	pb := e.numTables + e.numJoins
	for _, p := range q.Preds {
		slot, ok := e.colIndex[[2]int{p.Table, p.Col}]
		if !ok {
			continue
		}
		v[pb+3*slot] = 1
		v[pb+3*slot+1] = (float64(p.Lo) - e.colLo[slot]) / e.colRange[slot]
		v[pb+3*slot+2] = (float64(p.Hi) - e.colLo[slot]) / e.colRange[slot]
	}
	return v
}

// EncodeBatch encodes a slice of queries into a row-major matrix.
func (e *Encoder) EncodeBatch(qs []*Query) [][]float64 {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		out[i] = e.Encode(q)
	}
	return out
}

// LogCard returns the training target for a query: log(1 + truecard).
// Query-driven models regress this and invert with ExpCard.
func LogCard(card int64) float64 {
	if card < 0 {
		card = 0
	}
	return math.Log1p(float64(card))
}

// ExpCard inverts LogCard and floors the result at 1.
func ExpCard(y float64) float64 {
	c := math.Expm1(y)
	if c < 1 {
		return 1
	}
	return c
}
