package workload

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Encoder maps queries over one dataset to fixed-size feature vectors, the
// representation consumed by the query-driven estimators. It follows the
// MSCN-family encoding: a table-set one-hot block, a join-set one-hot
// block, and a per-column predicate block holding (present, lo, hi)
// normalized into [0,1] by the column's value range.
//
// An Encoder is self-contained (it copies the schema facts it needs rather
// than holding the dataset) and gob-serializable, so trained query-driven
// models embed it in their artifacts.
type Encoder struct {
	// colIndex maps (table,col) to a dense column slot.
	colIndex map[[2]int]int
	// colKeys lists the (table,col) pairs in slot order (the serialized
	// form of colIndex).
	colKeys [][2]int
	// colLo and colRange cache per-slot normalization constants.
	colLo, colRange []float64
	// fks copies the dataset's FK edges; Encode matches query joins
	// against them to fill the join block.
	fks       []dataset.ForeignKey
	numTables int
	numJoins  int
}

// NewEncoder builds an encoder for dataset d.
func NewEncoder(d *dataset.Dataset) *Encoder {
	e := &Encoder{
		colIndex:  map[[2]int]int{},
		fks:       append([]dataset.ForeignKey(nil), d.FKs...),
		numTables: len(d.Tables),
		numJoins:  len(d.FKs),
	}
	for ti, t := range d.Tables {
		for ci, c := range t.Cols {
			e.colIndex[[2]int{ti, ci}] = len(e.colLo)
			e.colKeys = append(e.colKeys, [2]int{ti, ci})
			lo, hi := c.MinMax()
			e.colLo = append(e.colLo, float64(lo))
			r := float64(hi - lo)
			if r <= 0 {
				r = 1
			}
			e.colRange = append(e.colRange, r)
		}
	}
	return e
}

// Dim returns the encoded vector length.
func (e *Encoder) Dim() int { return e.numTables + e.numJoins + 3*len(e.colLo) }

// TableDim, JoinDim and PredDim expose the block sizes for set-structured
// models (MSCN treats the blocks as separate sets).
func (e *Encoder) TableDim() int { return e.numTables }
func (e *Encoder) JoinDim() int  { return e.numJoins }
func (e *Encoder) PredDim() int  { return 3 * len(e.colLo) }

// Encode returns the flat feature vector of q.
func (e *Encoder) Encode(q *Query) []float64 {
	v := make([]float64, e.Dim())
	for _, ti := range q.Tables {
		v[ti] = 1
	}
	base := e.numTables
	for _, j := range q.Joins {
		for fi, fk := range e.fks {
			if fk.FromTable == j.LeftTable && fk.FromCol == j.LeftCol &&
				fk.ToTable == j.RightTable && fk.ToCol == j.RightCol {
				v[base+fi] = 1
			}
		}
	}
	pb := e.numTables + e.numJoins
	for _, p := range q.Preds {
		slot, ok := e.colIndex[[2]int{p.Table, p.Col}]
		if !ok {
			continue
		}
		v[pb+3*slot] = 1
		v[pb+3*slot+1] = (float64(p.Lo) - e.colLo[slot]) / e.colRange[slot]
		v[pb+3*slot+2] = (float64(p.Hi) - e.colLo[slot]) / e.colRange[slot]
	}
	return v
}

// EncodeBatch encodes a slice of queries into a row-major matrix.
func (e *Encoder) EncodeBatch(qs []*Query) [][]float64 {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		out[i] = e.Encode(q)
	}
	return out
}

// encoderState is the gob form of an Encoder.
type encoderState struct {
	ColKeys          [][2]int
	ColLo, ColRange  []float64
	FKs              []dataset.ForeignKey
	Tables, NumJoins int
}

// GobEncode implements gob.GobEncoder.
func (e *Encoder) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&encoderState{
		ColKeys: e.colKeys, ColLo: e.colLo, ColRange: e.colRange,
		FKs: e.fks, Tables: e.numTables, NumJoins: e.numJoins,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (e *Encoder) GobDecode(data []byte) error {
	var st encoderState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("workload: decoding encoder: %w", err)
	}
	if len(st.ColKeys) != len(st.ColLo) || len(st.ColLo) != len(st.ColRange) {
		return fmt.Errorf("workload: encoder state has %d/%d/%d column entries",
			len(st.ColKeys), len(st.ColLo), len(st.ColRange))
	}
	e.colKeys, e.colLo, e.colRange = st.ColKeys, st.ColLo, st.ColRange
	e.fks, e.numTables, e.numJoins = st.FKs, st.Tables, st.NumJoins
	e.colIndex = make(map[[2]int]int, len(st.ColKeys))
	for slot, key := range st.ColKeys {
		e.colIndex[key] = slot
	}
	return nil
}

// LogCard returns the training target for a query: log(1 + truecard).
// Query-driven models regress this and invert with ExpCard.
func LogCard(card int64) float64 {
	if card < 0 {
		card = 0
	}
	return math.Log1p(float64(card))
}

// ExpCard inverts LogCard and floors the result at 1.
func ExpCard(y float64) float64 {
	c := math.Expm1(y)
	if c < 1 {
		return 1
	}
	return c
}
