package workload

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
)

func testDataset(t *testing.T, tables int, seed int64) *dataset.Dataset {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 4,
		MinRows: 60, MaxRows: 120,
		Domain: 20,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 0.8,
		JoinLo: 0.3, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("wl", p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateProducesValidLabeledQueries(t *testing.T) {
	for _, tables := range []int{1, 3} {
		d := testDataset(t, tables, int64(tables))
		qs := Generate(d, DefaultConfig(30, 5))
		if len(qs) != 30 {
			t.Fatalf("generated %d queries, want 30", len(qs))
		}
		for i, q := range qs {
			if err := q.Query.Validate(d); err != nil {
				t.Fatalf("query %d invalid: %v", i, err)
			}
			if len(q.Preds) == 0 {
				t.Fatalf("query %d has no predicates", i)
			}
			if q.TrueCard < 0 {
				t.Fatalf("query %d unlabeled", i)
			}
			if got := engine.Cardinality(d, &q.Query); got != q.TrueCard {
				t.Fatalf("query %d label %d, engine %d", i, q.TrueCard, got)
			}
			// Join edges must connect the listed tables.
			if len(q.Tables) > 1 && len(q.Joins) != len(q.Tables)-1 {
				t.Fatalf("query %d: %d tables with %d joins", i, len(q.Tables), len(q.Joins))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := testDataset(t, 2, 9)
	a := Generate(d, DefaultConfig(10, 3))
	b := Generate(d, DefaultConfig(10, 3))
	for i := range a {
		if a[i].TrueCard != b[i].TrueCard {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestSplit(t *testing.T) {
	d := testDataset(t, 1, 2)
	qs := Generate(d, DefaultConfig(20, 1))
	train, test := Split(qs, 0.7, 5)
	if len(train) != 14 || len(test) != 6 {
		t.Fatalf("split %d/%d, want 14/6", len(train), len(test))
	}
	seen := map[*Query]bool{}
	for _, q := range append(append([]*Query(nil), train...), test...) {
		if seen[q] {
			t.Fatal("query appears twice after split")
		}
		seen[q] = true
	}
}

func TestEncoderDimsAndRanges(t *testing.T) {
	d := testDataset(t, 3, 4)
	enc := NewEncoder(d)
	if enc.Dim() != enc.TableDim()+enc.JoinDim()+enc.PredDim() {
		t.Fatal("encoder dim mismatch")
	}
	qs := Generate(d, DefaultConfig(20, 6))
	for _, q := range qs {
		v := enc.Encode(q)
		if len(v) != enc.Dim() {
			t.Fatalf("encoded length %d, want %d", len(v), enc.Dim())
		}
		for i, x := range v {
			if x < -0.001 || x > 1.001 {
				t.Fatalf("feature %d = %g outside [0,1]", i, x)
			}
		}
	}
}

func TestEncoderMarksTablesAndPreds(t *testing.T) {
	d := testDataset(t, 2, 8)
	enc := NewEncoder(d)
	qs := Generate(d, DefaultConfig(5, 2))
	q := qs[0]
	v := enc.Encode(q)
	for _, ti := range q.Tables {
		if v[ti] != 1 {
			t.Fatalf("table %d not marked", ti)
		}
	}
	// Count predicate presence flags.
	pb := enc.TableDim() + enc.JoinDim()
	marked := 0
	for slot := 0; slot < enc.PredDim()/3; slot++ {
		if v[pb+3*slot] == 1 {
			marked++
		}
	}
	distinctCols := map[[2]int]bool{}
	for _, p := range q.Preds {
		distinctCols[[2]int{p.Table, p.Col}] = true
	}
	if marked != len(distinctCols) {
		t.Fatalf("%d predicate slots marked, want %d", marked, len(distinctCols))
	}
}

func TestLogExpCardRoundTrip(t *testing.T) {
	for _, c := range []int64{0, 1, 5, 1000, 1 << 40} {
		got := ExpCard(LogCard(c))
		want := float64(c)
		if want < 1 {
			want = 1
		}
		if got < want*0.999 || got > want*1.001 {
			t.Fatalf("round trip %d -> %g", c, got)
		}
	}
}

func TestQueryString(t *testing.T) {
	d := testDataset(t, 2, 12)
	qs := Generate(d, DefaultConfig(5, 2))
	s := String(d, qs[0])
	if !strings.HasPrefix(s, "SELECT COUNT(*) FROM ") || !strings.Contains(s, "BETWEEN") {
		t.Fatalf("unexpected SQL rendering: %s", s)
	}
}

func TestCEBSchemaAndWorkload(t *testing.T) {
	d := CEBSchema(1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumTables() != 8 {
		t.Fatalf("ceb schema has %d tables", d.NumTables())
	}
	if len(d.FKs) != 7 {
		t.Fatalf("ceb schema has %d fks", len(d.FKs))
	}
	qs := CEBWorkload(d, 3, 2)
	if len(qs) != 3*len(CEBTemplates()) {
		t.Fatalf("ceb workload has %d queries", len(qs))
	}
	for i, q := range qs {
		if err := q.Query.Validate(d); err != nil {
			t.Fatalf("ceb query %d invalid: %v", i, err)
		}
		if len(q.Tables) < 3 {
			t.Fatalf("ceb query %d joins only %d tables", i, len(q.Tables))
		}
	}
}
