package resilience

import (
	"context"
	"math/rand/v2"
	"time"
)

// Retry is a bounded retry policy with capped decorrelated-jitter
// backoff. It is built for idempotent work only — the fleet proxy applies
// it to read forwards (/estimate, /recommend, /drift, GETs) and never to
// /train or /datasets, whose replays would not be safe.
//
// The backoff follows the decorrelated-jitter scheme: each delay is drawn
// uniformly from [Base, prev*3], capped at Cap, so concurrent retriers
// decorrelate instead of thundering in lockstep.
type Retry struct {
	// Attempts is the per-request budget: the total number of tries,
	// including the first (default 3). Exhausting the budget returns the
	// last error the attempt itself produced — never a synthetic
	// "budget exhausted" error that would mask the real failure.
	Attempts int
	// Base is the backoff floor (default 25ms); Cap bounds every delay
	// (default 1s).
	Base, Cap time.Duration
	// Sleep waits between attempts; nil uses a timer that aborts on
	// context cancellation. Tests inject an instant clock here.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand draws the jitter in [0,1); nil uses math/rand/v2. Tests inject
	// a fixed sequence for deterministic delays.
	Rand func() float64
}

func (r Retry) withDefaults() Retry {
	if r.Attempts <= 0 {
		r.Attempts = 3
	}
	if r.Base <= 0 {
		r.Base = 25 * time.Millisecond
	}
	if r.Cap <= 0 {
		r.Cap = time.Second
	}
	if r.Sleep == nil {
		r.Sleep = sleepCtx
	}
	if r.Rand == nil {
		r.Rand = rand.Float64
	}
	return r
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// Backoff returns the delay to wait after a failed attempt, given the
// previous delay (pass 0 before the first retry): uniform in
// [Base, prev*3], capped at Cap.
func (r Retry) Backoff(prev time.Duration) time.Duration {
	r = r.withDefaults()
	hi := prev * 3
	if hi < r.Base {
		hi = r.Base
	}
	if hi > r.Cap {
		hi = r.Cap
	}
	d := r.Base + time.Duration(r.Rand()*float64(hi-r.Base))
	if d > r.Cap {
		d = r.Cap
	}
	return d
}

// Do runs fn until it succeeds, the attempt budget is exhausted, or ctx
// is cancelled, backing off between attempts. fn receives the attempt
// number (0-based) so callers can rotate across failover targets. The
// returned error is always the last error fn produced — budget
// exhaustion and mid-backoff cancellation both surface the upstream
// failure, not a policy error (an operator debugging a 502 needs the
// peer's error, not "retries exhausted").
func (r Retry) Do(ctx context.Context, fn func(attempt int) error) error {
	r = r.withDefaults()
	var err error
	delay := time.Duration(0)
	for attempt := 0; attempt < r.Attempts; attempt++ {
		if attempt > 0 {
			delay = r.Backoff(delay)
			if r.Sleep(ctx, delay) != nil {
				return err // cancelled mid-backoff: last upstream error
			}
		}
		if err = fn(attempt); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}
