package resilience

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Coalescer merges concurrent calls that share a key into batched
// executions. It is the ride-sharing half of the serving stack's admission
// story: N concurrent single-query /estimate calls for the same (tenant,
// model) become one EstimateBatch that admits once at the merged weight,
// instead of N separate admissions and N separate inference dispatches.
//
// The policy is conflation, not a timer window: when no execution is in
// flight for a key, a caller runs immediately with only its own items —
// coalescing never adds latency to an idle key. While an execution is in
// flight, arrivals accumulate into the next batch; when the flight lands,
// the accumulated batch runs as one. Throughput under contention therefore
// approaches one execution per flight-time regardless of caller count,
// and per-item results are exactly what back-to-back batched calls in
// arrival order would have produced.
//
// Each batch executes the run function supplied by its first member (the
// batch leader); later joiners' run functions are ignored. Do blocks until
// the batch containing the caller's items completes, so run must be
// time-bounded (the serving stack bounds it with the estimate deadline).
// A panic inside run is recovered into a *PanicError and delivered to
// every member of the batch.
type Coalescer[T, R any] struct {
	// MaxBatch caps how many items may accumulate into one pending batch;
	// a caller whose items would overflow it executes solo instead of
	// joining. 0 means unlimited.
	MaxBatch int

	mu   sync.Mutex
	keys map[string]*coalesceKey[T, R]
}

type coalesceBatch[T, R any] struct {
	items []T
	run   func([]T) ([]R, error)
	start chan struct{} // closed to promote the pending batch's leader
	done  chan struct{} // closed once results/err are set
	out   []R
	err   error
}

type coalesceKey[T, R any] struct {
	inflight *coalesceBatch[T, R]
	pending  *coalesceBatch[T, R]
}

// Do submits items under key. If no batch for key is executing, items run
// immediately via run. Otherwise the items join the pending batch, which
// executes (using its leader's run) as soon as the in-flight batch
// completes. The returned slice holds exactly the caller's results, in
// item order; on error every member of the failed batch receives the same
// error.
func (c *Coalescer[T, R]) Do(key string, items []T, run func([]T) ([]R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	if c.keys == nil {
		c.keys = make(map[string]*coalesceKey[T, R])
	}
	ks := c.keys[key]
	if ks == nil {
		ks = &coalesceKey[T, R]{}
		c.keys[key] = ks
	}
	if ks.inflight == nil {
		// Idle key: lead a batch of just our items, no waiting.
		b := &coalesceBatch[T, R]{items: items, run: run, done: make(chan struct{})}
		ks.inflight = b
		c.mu.Unlock()
		c.execute(key, b)
		if b.err != nil {
			return nil, b.err
		}
		return b.out[:len(items):len(items)], nil
	}
	if c.MaxBatch > 0 && ks.pending != nil && len(ks.pending.items)+len(items) > c.MaxBatch {
		// Joining would overflow the pending batch: execute solo. The model
		// layer's own guards (per-model mutexes) keep this correct; only
		// the merge is skipped.
		c.mu.Unlock()
		return run(items)
	}
	lead := ks.pending == nil
	if lead {
		ks.pending = &coalesceBatch[T, R]{run: run, start: make(chan struct{}), done: make(chan struct{})}
	}
	b := ks.pending
	off := len(b.items)
	b.items = append(b.items, items...)
	c.mu.Unlock()

	if lead {
		// Promotion closes start once the in-flight batch lands. The wait is
		// bounded by that batch's run (deadline-bounded by the caller's
		// policy), so no context racing is needed here — and the leader must
		// not abandon the batch, because later joiners ride on it.
		<-b.start
		c.execute(key, b)
	} else {
		<-b.done
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.out[off : off+len(items) : off+len(items)], nil
}

// execute runs b (already installed as key's inflight batch), publishes
// its results, and promotes the pending batch, if any.
func (c *Coalescer[T, R]) execute(key string, b *coalesceBatch[T, R]) {
	func() {
		defer func() {
			if r := recover(); r != nil {
				b.err = &PanicError{Name: "coalesce:" + key, Value: r, Stack: debug.Stack()}
			}
		}()
		b.out, b.err = b.run(b.items)
	}()
	if b.err == nil && len(b.out) != len(b.items) {
		b.err = fmt.Errorf("resilience: coalesced run returned %d results for %d items", len(b.out), len(b.items))
	}

	c.mu.Lock()
	ks := c.keys[key]
	next := ks.pending
	ks.inflight, ks.pending = next, nil
	if next == nil {
		delete(c.keys, key)
	}
	c.mu.Unlock()

	close(b.done)
	if next != nil {
		close(next.start)
	}
}
