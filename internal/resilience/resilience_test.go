package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBasic(t *testing.T) {
	s := NewSemaphore(3)
	if !s.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty capacity-3 semaphore failed")
	}
	if s.TryAcquire(2) {
		t.Fatal("TryAcquire(2) with 1 free succeeded")
	}
	if !s.TryAcquire(1) {
		t.Fatal("TryAcquire(1) with 1 free failed")
	}
	s.Release(3)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d after full release", got)
	}
}

func TestSemaphoreAcquireBlocksUntilRelease(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Acquire(context.Background(), 1) }()
	select {
	case err := <-done:
		t.Fatalf("second Acquire returned %v before release", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Release(1)
	if err := <-done; err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	s.Release(1)
}

func TestSemaphoreAcquireHonorsContext(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire under expired deadline returned %v", err)
	}
	// The timed-out waiter must not have leaked weight or a queue slot.
	s.Release(1)
	if !s.TryAcquire(1) {
		t.Fatal("semaphore wedged after a timed-out waiter")
	}
	s.Release(1)
}

func TestSemaphoreOverweightAcquireFails(t *testing.T) {
	s := NewSemaphore(2)
	if err := s.Acquire(context.Background(), 3); err == nil {
		t.Fatal("Acquire above capacity succeeded")
	}
}

func TestSemaphoreFIFONoOvertaking(t *testing.T) {
	s := NewSemaphore(2)
	if err := s.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	heavyQueued := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(heavyQueued)
		if err := s.Acquire(context.Background(), 2); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, 2)
		mu.Unlock()
		s.Release(2)
	}()
	<-heavyQueued
	time.Sleep(10 * time.Millisecond) // let the heavy waiter enqueue
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Acquire(context.Background(), 1); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		s.Release(1)
	}()
	time.Sleep(10 * time.Millisecond)
	// A light TryAcquire must not jump the queued heavy waiter either.
	if s.TryAcquire(1) {
		t.Fatal("TryAcquire overtook a queued waiter")
	}
	s.Release(2)
	wg.Wait()
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("acquisition order %v, want the queued heavy waiter first", order)
	}
}

func TestSemaphoreConcurrentStress(t *testing.T) {
	s := NewSemaphore(4)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(weight int64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Acquire(context.Background(), weight); err != nil {
					t.Error(err)
					return
				}
				cur := inUse.Add(weight)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inUse.Add(-weight)
				s.Release(weight)
			}
		}(int64(w%2 + 1))
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("concurrent weight peaked at %d, capacity 4", p)
	}
}

func TestAdmissionClassesAreIndependent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{CheapSlots: 2, HeavySlots: 1, TrainQueue: 1})
	// Saturate the heavy class.
	releaseHeavy, err := a.AdmitHeavy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AdmitHeavy(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second heavy admit returned %v, want ErrOverloaded (shed)", err)
	}
	// Cheap reads still admit: the shed-on-overload property.
	releaseCheap, err := a.AdmitCheap(context.Background(), 1)
	if err != nil {
		t.Fatalf("cheap admit while heavy class saturated: %v", err)
	}
	releaseCheap()
	releaseHeavy()
	if _, err := a.AdmitHeavy(); err != nil {
		t.Fatalf("heavy admit after release: %v", err)
	}
}

func TestAdmissionCheapDeadline(t *testing.T) {
	a := NewAdmission(AdmissionConfig{CheapSlots: 1, HeavySlots: 1, TrainQueue: 1})
	release, err := a.AdmitCheap(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.AdmitCheap(ctx, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cheap admit past deadline returned %v", err)
	}
	release()
}

func TestAdmissionCheapWeightClamped(t *testing.T) {
	a := NewAdmission(AdmissionConfig{CheapSlots: 4, HeavySlots: 1, TrainQueue: 1})
	// A batch heavier than the whole class admits alone instead of failing.
	release, err := a.AdmitCheap(context.Background(), 1000)
	if err != nil {
		t.Fatalf("oversized cheap admit: %v", err)
	}
	release()
}

func TestAdmissionTrainQueueBounded(t *testing.T) {
	a := NewAdmission(AdmissionConfig{CheapSlots: 1, HeavySlots: 1, TrainQueue: 2})
	// First train holds the run slot.
	release1, err := a.AdmitTrain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second train occupies the remaining queue slot, waiting for the run
	// slot.
	type res struct {
		release func()
		err     error
	}
	second := make(chan res, 1)
	go func() {
		r, err := a.AdmitTrain(context.Background())
		second <- res{r, err}
	}()
	// Give the second train time to take its queue slot.
	time.Sleep(20 * time.Millisecond)
	// Third train: queue full -> 429-style failure, immediately.
	if _, err := a.AdmitTrain(context.Background()); !errors.Is(err, ErrTrainQueueFull) {
		t.Fatalf("train admit with full queue returned %v", err)
	}
	release1()
	r := <-second
	if r.err != nil {
		t.Fatalf("queued train failed: %v", r.err)
	}
	r.release()
	// Everything released: admits again.
	release3, err := a.AdmitTrain(context.Background())
	if err != nil {
		t.Fatalf("train admit after drain: %v", err)
	}
	release3()
}

func TestAdmissionTrainQueueWaitHonorsDeadline(t *testing.T) {
	a := NewAdmission(AdmissionConfig{CheapSlots: 1, HeavySlots: 1, TrainQueue: 4})
	release, err := a.AdmitTrain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.AdmitTrain(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued train past deadline returned %v", err)
	}
	release()
	// The timed-out waiter must have returned its queue slot.
	release2, err := a.AdmitTrain(context.Background())
	if err != nil {
		t.Fatalf("train admit after timed-out waiter: %v", err)
	}
	release2()
}

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard("boom-site", func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Guard returned %v, want *PanicError", err)
	}
	if pe.Name != "boom-site" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError %+v missing fields", pe)
	}
	if err := Guard("fine", func() error { return nil }); err != nil {
		t.Fatalf("Guard of clean fn returned %v", err)
	}
	want := errors.New("regular")
	if err := Guard("errs", func() error { return want }); err != want {
		t.Fatalf("Guard swallowed the regular error: %v", err)
	}
}

func TestFailpointModes(t *testing.T) {
	defer ClearFailpoints()

	// Unarmed: nil, fast path.
	if err := Failpoint("nothing"); err != nil {
		t.Fatalf("unarmed failpoint fired: %v", err)
	}

	if err := SetFailpoint("fp.err", "error"); err != nil {
		t.Fatal(err)
	}
	err := Failpoint("fp.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error-mode failpoint returned %v", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Name != "fp.err" {
		t.Fatalf("injected error %v lacks its name", err)
	}
	if hits := FailpointHits("fp.err"); hits != 1 {
		t.Fatalf("hit counter = %d, want 1", hits)
	}
	// Other names stay silent.
	if err := Failpoint("fp.other"); err != nil {
		t.Fatalf("unrelated failpoint fired: %v", err)
	}

	if err := SetFailpoint("fp.panic", "panic"); err != nil {
		t.Fatal(err)
	}
	gerr := Guard("fp", func() error { return Failpoint("fp.panic") })
	var pe *PanicError
	if !errors.As(gerr, &pe) {
		t.Fatalf("panic-mode failpoint through Guard returned %v", gerr)
	}

	if err := SetFailpoint("fp.sleep", "sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := Failpoint("fp.sleep"); err != nil {
		t.Fatalf("sleep-mode failpoint returned %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("sleep-mode failpoint returned after %v, want >= 30ms", d)
	}

	ClearFailpoint("fp.err")
	if err := Failpoint("fp.err"); err != nil {
		t.Fatalf("cleared failpoint still fires: %v", err)
	}
	got := ActiveFailpoints()
	if len(got) != 2 || got[0] != "fp.panic" || got[1] != "fp.sleep" {
		t.Fatalf("ActiveFailpoints = %v", got)
	}
}

func TestFailpointProbability(t *testing.T) {
	defer ClearFailpoints()
	if err := SetFailpoint("fp.prob", "error:0.5"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 400; i++ {
		if Failpoint("fp.prob") != nil {
			fired++
		}
	}
	// p=0.5 over 400 trials: [100, 300] is > 10 sigma of slack.
	if fired < 100 || fired > 300 {
		t.Fatalf("p=0.5 failpoint fired %d/400 times", fired)
	}
}

func TestFailpointSpecParsing(t *testing.T) {
	defer ClearFailpoints()
	if err := SetFailpoints("a=error:0.25, b=panic; c=sleep(5ms):0.1"); err != nil {
		t.Fatal(err)
	}
	if got := ActiveFailpoints(); len(got) != 3 {
		t.Fatalf("ActiveFailpoints = %v, want 3 entries", got)
	}
	for _, bad := range []string{"", "nonsense", "sleep", "sleep(x)", "error:0", "error:1.5", "panic:-1"} {
		if err := SetFailpoint("bad", bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
	if err := SetFailpoints("justname"); err == nil {
		t.Error("entry without '=' parsed")
	}
}
