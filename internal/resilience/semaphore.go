package resilience

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Semaphore is a weighted counting semaphore with FIFO fairness:
// waiters acquire in arrival order, so a stream of light acquisitions
// cannot starve a queued heavy one. Acquisition is context-bounded —
// a caller waits at most until its request deadline.
//
// The implementation mirrors golang.org/x/sync/semaphore (which the
// build environment does not vendor) with the subset of semantics the
// admission controller needs.
type Semaphore struct {
	capacity int64

	mu      sync.Mutex
	cur     int64
	waiters list.List // of *waiter
}

type waiter struct {
	n     int64
	ready chan struct{} // closed when the weight is granted
}

// NewSemaphore returns a semaphore admitting up to capacity total weight.
func NewSemaphore(capacity int64) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("resilience: semaphore capacity %d must be positive", capacity))
	}
	return &Semaphore{capacity: capacity}
}

// Capacity returns the semaphore's total weight.
func (s *Semaphore) Capacity() int64 { return s.capacity }

// InUse returns the currently held weight (diagnostics; racy by nature).
func (s *Semaphore) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// TryAcquire acquires weight n without waiting; it reports whether the
// acquisition succeeded. It fails (rather than jumping the queue) while
// earlier waiters are queued.
func (s *Semaphore) TryAcquire(n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur+n <= s.capacity && s.waiters.Len() == 0 {
		s.cur += n
		return true
	}
	return false
}

// Acquire acquires weight n, waiting in FIFO order until the weight is
// available or ctx is done. A weight above the capacity fails immediately
// (it could never be granted). On error, no weight is held.
func (s *Semaphore) Acquire(ctx context.Context, n int64) error {
	if n > s.capacity {
		return fmt.Errorf("resilience: acquire weight %d exceeds semaphore capacity %d", n, s.capacity)
	}
	s.mu.Lock()
	if s.cur+n <= s.capacity && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: hand the
			// weight back rather than leaking it.
			s.cur -= n
			s.notify()
		default:
			s.waiters.Remove(elem)
		}
		s.mu.Unlock()
		return ctx.Err()
	case <-w.ready:
		return nil
	}
}

// Release returns weight n to the semaphore, waking queued waiters in
// order.
func (s *Semaphore) Release(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur -= n
	if s.cur < 0 {
		panic("resilience: semaphore released more than held")
	}
	s.notify()
}

// notify grants queued waiters in FIFO order while capacity lasts. Called
// with mu held.
func (s *Semaphore) notify() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.cur+w.n > s.capacity {
			// Strict FIFO: do not let a lighter waiter behind the front
			// overtake it, or heavy acquisitions starve under light load.
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}
