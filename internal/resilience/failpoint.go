package resilience

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FailpointEnv is the environment variable that arms failpoints at process
// start: a comma- or semicolon-separated list of name=spec entries, e.g.
//
//	AUTOCE_FAILPOINTS="store.load=error:0.3,pglike.estimate=panic"
//
// A spec is one of
//
//	error          return ErrInjected from the failpoint
//	panic          panic at the failpoint (exercises the panic fences)
//	sleep(DUR)     sleep DUR (Go duration syntax) then continue
//
// optionally suffixed with ":P" (0 < P <= 1), the per-hit trigger
// probability (default 1: every hit fires).
const FailpointEnv = "AUTOCE_FAILPOINTS"

// FailpointSites is the registry of every failpoint name compiled into
// the module — the names AUTOCE_FAILPOINTS specs may target. Keep it
// sorted and exhaustive: autoce-vet's failpointlit rule cross-checks
// every Failpoint call site against this list (constant, unique, and
// documented here) and flags stale entries with no call site, so an
// injection spec can never silently name nothing.
var FailpointSites = []string{
	"ce.pglike.estimate",  // pglike inference (error mode ignored there; panic/sleep fire)
	"ce.pglike.fit",       // pglike training
	"ce.store.load",       // artifact decode path
	"ce.store.save",       // artifact persist path
	"serve.manifest.save", // tenant-manifest persist path (restart recovery degrades, onboarding proceeds)
	"serve.onboard",       // /datasets onboarding, post-decode pre-state-change
	"serve.peer.forward",  // fleet-proxy peer forward (error = peer down, sleep = slow peer)
}

// ErrInjected is the error returned by error-mode failpoints; injection
// sites propagate it like any I/O failure, and tests assert on it with
// errors.Is.
var ErrInjected = errors.New("resilience: injected fault")

// InjectedError is the concrete error of an error-mode failpoint hit,
// carrying the failpoint name. It matches ErrInjected under errors.Is.
type InjectedError struct{ Name string }

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("resilience: injected fault at %q", e.Name)
}

// Is reports that any InjectedError matches the ErrInjected sentinel.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

type failpointMode int

const (
	fpError failpointMode = iota
	fpPanic
	fpSleep
)

type failpoint struct {
	mode  failpointMode
	prob  float64
	delay time.Duration
	hits  atomic.Int64
}

var failpoints struct {
	armed  atomic.Bool // fast path: no map lookup while nothing is set
	mu     sync.RWMutex
	byName map[string]*failpoint
}

func init() {
	failpoints.byName = map[string]*failpoint{}
	if spec := os.Getenv(FailpointEnv); spec != "" {
		if err := SetFailpoints(spec); err != nil {
			// A malformed env var must not take the process down (the whole
			// point is resilience); report and run without injection.
			fmt.Fprintf(os.Stderr, "resilience: ignoring %s: %v\n", FailpointEnv, err)
		}
	}
}

// Failpoint is the injection hook compiled into fault-prone paths (store
// I/O, dataset onboarding, estimator inference). While no failpoint is
// armed — the production state — it is one atomic load. When the named
// failpoint is armed it fires per its spec: error mode returns an
// *InjectedError (matching ErrInjected), panic mode panics, sleep mode
// delays and returns nil. Callers at sites that cannot propagate an error
// (float-returning inference) document that error mode is ignored there.
func Failpoint(name string) error {
	if !failpoints.armed.Load() {
		return nil
	}
	failpoints.mu.RLock()
	fp := failpoints.byName[name]
	failpoints.mu.RUnlock()
	if fp == nil {
		return nil
	}
	if fp.prob < 1 && rand.Float64() >= fp.prob {
		return nil
	}
	fp.hits.Add(1)
	switch fp.mode {
	case fpPanic:
		panic(fmt.Sprintf("resilience: injected panic at %q", name))
	case fpSleep:
		time.Sleep(fp.delay)
		return nil
	default:
		return &InjectedError{Name: name}
	}
}

// SetFailpoint arms one failpoint from its spec (see FailpointEnv).
func SetFailpoint(name, spec string) error {
	fp, err := parseFailpoint(spec)
	if err != nil {
		return fmt.Errorf("resilience: failpoint %q: %w", name, err)
	}
	failpoints.mu.Lock()
	failpoints.byName[name] = fp
	failpoints.mu.Unlock()
	failpoints.armed.Store(true)
	return nil
}

// SetFailpoints arms a name=spec list (the FailpointEnv format).
func SetFailpoints(list string) error {
	for _, entry := range strings.FieldsFunc(list, func(r rune) bool { return r == ',' || r == ';' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("resilience: failpoint entry %q is not name=spec", entry)
		}
		if err := SetFailpoint(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// ClearFailpoint disarms one failpoint.
func ClearFailpoint(name string) {
	failpoints.mu.Lock()
	delete(failpoints.byName, name)
	if len(failpoints.byName) == 0 {
		failpoints.armed.Store(false)
	}
	failpoints.mu.Unlock()
}

// ClearFailpoints disarms everything (tests call it in cleanup).
func ClearFailpoints() {
	failpoints.mu.Lock()
	failpoints.byName = map[string]*failpoint{}
	failpoints.armed.Store(false)
	failpoints.mu.Unlock()
}

// FailpointHits returns how many times the named failpoint has fired.
func FailpointHits(name string) int64 {
	failpoints.mu.RLock()
	defer failpoints.mu.RUnlock()
	if fp := failpoints.byName[name]; fp != nil {
		return fp.hits.Load()
	}
	return 0
}

// ActiveFailpoints lists the armed failpoint names, sorted (diagnostics:
// the serve binary logs it at startup so an accidentally armed injection
// environment is visible).
func ActiveFailpoints() []string {
	failpoints.mu.RLock()
	defer failpoints.mu.RUnlock()
	out := make([]string, 0, len(failpoints.byName))
	for name := range failpoints.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func parseFailpoint(spec string) (*failpoint, error) {
	fp := &failpoint{prob: 1}
	if mode, probStr, ok := strings.Cut(spec, ":"); ok {
		p, err := strconv.ParseFloat(probStr, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("bad probability %q (want (0,1])", probStr)
		}
		fp.prob = p
		spec = mode
	}
	switch {
	case spec == "error":
		fp.mode = fpError
	case spec == "panic":
		fp.mode = fpPanic
	case strings.HasPrefix(spec, "sleep(") && strings.HasSuffix(spec, ")"):
		d, err := time.ParseDuration(spec[len("sleep(") : len(spec)-1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad sleep duration in %q", spec)
		}
		fp.mode = fpSleep
		fp.delay = d
	default:
		return nil, fmt.Errorf("unknown mode %q (want error, panic, or sleep(DUR))", spec)
	}
	return fp, nil
}
