package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// instantRetry returns a 3-attempt policy whose sleeps complete instantly
// but are recorded, so tests can assert on the backoff sequence.
func instantRetry(slept *[]time.Duration) Retry {
	return Retry{
		Attempts: 3,
		Base:     25 * time.Millisecond,
		Cap:      time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if slept != nil {
				*slept = append(*slept, d)
			}
			return ctx.Err()
		},
	}
}

// TestRetryExhaustionReturnsLastUpstreamError is the satellite-pinned
// contract: a spent budget surfaces the final attempt's own error, never a
// synthetic "retries exhausted" wrapper.
func TestRetryExhaustionReturnsLastUpstreamError(t *testing.T) {
	var attempts []int
	err := instantRetry(nil).Do(context.Background(), func(attempt int) error {
		attempts = append(attempts, attempt)
		return fmt.Errorf("upstream failure on attempt %d", attempt)
	})
	if err == nil {
		t.Fatal("want error after exhausting budget")
	}
	if got, want := err.Error(), "upstream failure on attempt 2"; got != want {
		t.Fatalf("err = %q, want the last upstream error %q", got, want)
	}
	if len(attempts) != 3 || attempts[2] != 2 {
		t.Fatalf("attempts = %v, want [0 1 2]", attempts)
	}
}

func TestRetrySucceedsMidBudget(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := instantRetry(&slept).Do(context.Background(), func(attempt int) error {
		calls++
		if attempt < 1 {
			return errPeer
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d, want success on attempt 2", err, calls)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v, want exactly one backoff before the retry", slept)
	}
}

func TestRetryFirstTrySuccessSkipsBackoff(t *testing.T) {
	var slept []time.Duration
	if err := instantRetry(&slept).Do(context.Background(), func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v, want no backoff on first-try success", slept)
	}
}

// TestRetryBackoffBounds checks the decorrelated-jitter envelope: every
// delay lies in [Base, Cap], and with Rand pinned to its extremes the
// sequence hits the documented bounds exactly.
func TestRetryBackoffBounds(t *testing.T) {
	r := Retry{Base: 25 * time.Millisecond, Cap: 200 * time.Millisecond}

	// Rand = 0 → always the floor.
	r.Rand = func() float64 { return 0 }
	if got := r.Backoff(0); got != 25*time.Millisecond {
		t.Fatalf("Backoff(0) with rand=0: %v, want Base", got)
	}

	// Rand → 1 → tends to min(prev*3, Cap).
	r.Rand = func() float64 { return 0.999999 }
	d := r.Backoff(0)
	if d < 25*time.Millisecond || d > 25*time.Millisecond+time.Millisecond {
		t.Fatalf("Backoff(0) with prev=0: %v, want ~Base (upper bound max(Base, prev*3))", d)
	}
	d = r.Backoff(50 * time.Millisecond)
	if d < 25*time.Millisecond || d > 150*time.Millisecond {
		t.Fatalf("Backoff(50ms): %v, want in [Base, 150ms]", d)
	}
	// Growth is capped.
	d = r.Backoff(time.Hour)
	if d > 200*time.Millisecond {
		t.Fatalf("Backoff(1h): %v exceeds Cap", d)
	}

	// Random draws stay inside the envelope.
	r.Rand = nil
	r = r.withDefaults()
	prev := time.Duration(0)
	for i := 0; i < 100; i++ {
		prev = r.Backoff(prev)
		if prev < r.Base || prev > r.Cap {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, prev, r.Base, r.Cap)
		}
	}
}

// TestRetryCancelledMidBackoffReturnsUpstreamError checks that a context
// cancelled while backing off still reports the upstream failure, not the
// cancellation.
func TestRetryCancelledMidBackoffReturnsUpstreamError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{
		Attempts: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	err := r.Do(ctx, func(int) error { return errPeer })
	if !errors.Is(err, errPeer) {
		t.Fatalf("err = %v, want the upstream error %v", err, errPeer)
	}
}

// TestRetryCancelledDuringAttemptStops checks that an fn failure caused by
// the caller's context going away does not burn the remaining budget.
func TestRetryCancelledDuringAttemptStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := instantRetry(nil).Do(ctx, func(int) error {
		calls++
		cancel()
		return errPeer
	})
	if !errors.Is(err, errPeer) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the upstream error after one attempt", err, calls)
	}
}

func TestSleepCtx(t *testing.T) {
	if err := sleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("sleepCtx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Hour); err == nil {
		t.Fatal("sleepCtx with cancelled ctx: want error, not an hour-long wait")
	}
}
