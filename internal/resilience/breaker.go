package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests may test the
	// peer; one success closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer for health surfaces.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. The zero value of any field falls back
// to its default.
type BreakerConfig struct {
	// Failures opens the breaker when that many failures land within
	// Window (default 5).
	Failures int
	// Window is the sliding interval failures are counted over (default
	// 10s). Failures older than Window do not count toward opening.
	Window time.Duration
	// Cooldown is how long an open breaker refuses before letting probes
	// through half-open (default 2s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent probes admitted while half-open
	// (default 1).
	HalfOpenProbes int
	// Now is the injected clock (default time.Now) — tests drive the
	// state machine deterministically through it.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-peer circuit breaker: closed while the peer behaves,
// open (failing fast, no network cost) after Failures failures inside the
// sliding Window, half-open after Cooldown to let a bounded number of
// probes test recovery. Callers ask Allow before attempting and Record
// the outcome after; the breaker never performs I/O itself. Safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures []time.Time // ring of recent failure times, len <= cfg.Failures
	openedAt time.Time
	probes   int // probes admitted since entering half-open
	// consec counts consecutive failures (diagnostics for health tables;
	// the open/close decisions use the sliding window, not this).
	consec  int
	lastErr string
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. An open breaker whose
// cooldown has elapsed transitions to half-open here and admits the
// caller as a probe; a half-open breaker admits at most HalfOpenProbes
// callers until an outcome is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 1
		return true
	default: // half-open
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record feeds one request outcome into the state machine. A half-open
// success closes the breaker (clearing the window); a half-open failure
// reopens it for a fresh cooldown. In the closed state, err != nil
// appends to the sliding failure window and opens the breaker once
// Failures failures land within Window.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	if err == nil {
		b.consec = 0
		b.lastErr = ""
		switch b.state {
		case BreakerHalfOpen:
			b.state = BreakerClosed
			b.failures = b.failures[:0]
		}
		return
	}
	b.consec++
	b.lastErr = err.Error()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
	case BreakerClosed:
		// Prune entries that fell out of the window, then append.
		keep := b.failures[:0]
		for _, t := range b.failures {
			if now.Sub(t) < b.cfg.Window {
				keep = append(keep, t)
			}
		}
		b.failures = append(keep, now)
		if len(b.failures) >= b.cfg.Failures {
			b.state = BreakerOpen
			b.openedAt = now
			b.failures = b.failures[:0]
		}
	}
	// Open: late results from attempts admitted before opening carry no
	// new information; ignore them.
}

// State returns the breaker's current position without side effects (an
// elapsed cooldown is reported as open until the next Allow transitions
// it — State is a read for health surfaces, not an admission check).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the state plus the diagnostics a health table shows:
// consecutive failures and the most recent error text.
func (b *Breaker) Snapshot() (state BreakerState, consecFailures int, lastErr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consec, b.lastErr
}
