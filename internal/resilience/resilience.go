// Package resilience is the serving stack's fault-tolerance substrate:
// admission control, panic isolation, fleet-level fault tolerance, and
// deterministic fault injection. It depends only on the standard library
// so any layer — the HTTP front-end, the artifact store, individual
// estimators — can use it without import cycles.
//
// Process-level facilities (PR 6):
//
//   - Semaphore: a weighted FIFO counting semaphore (the admission
//     primitive; acquisition is context-bounded, so a request's deadline
//     caps how long it may queue).
//   - Admission: two-class admission control separating cheap snapshot
//     reads (/estimate, /recommend) from expensive mutators (/train,
//     /datasets), plus a bounded single-flight train queue. Overload sheds
//     the expensive class while the cheap class keeps serving from the
//     existing snapshot.
//   - Guard: runs a function behind a panic fence, converting a panic into
//     a typed *PanicError so one faulting model quarantines instead of
//     killing the process.
//   - Failpoint: an env-gated fault-injection hook compiled into the
//     store/onboarding/estimator/proxy paths, driving deterministic
//     fault-injection and soak tests (see the AUTOCE_FAILPOINTS format in
//     failpoint.go).
//
// Fleet-level facilities (used by the autoce-serve shard proxy):
//
//   - Breaker: a per-peer circuit breaker — closed/open/half-open over a
//     sliding failure window with an injected clock, so a crashed shard
//     costs one failure window, not a timeout per request.
//   - Retry: a bounded retry policy with capped decorrelated-jitter
//     backoff for idempotent read forwards; exhausting the budget returns
//     the last upstream error, never a synthetic policy error.
//   - Prober: interval health probing with rise/fall thresholds into an
//     atomically-published FleetHealth view, read wait-free by the
//     failover path and /healthz.
package resilience

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic converted into an error by Guard. Name
// identifies the fenced call site, Value is the recovered panic value, and
// Stack the goroutine stack captured at recovery.
type PanicError struct {
	Name  string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: panic in %s: %v", e.Name, e.Value)
}

// Guard runs fn behind a panic fence: a panic inside fn is recovered and
// returned as a *PanicError (detectable with errors.As) instead of
// unwinding into the caller. Use it to isolate calls into code that may
// fault — a misbehaving estimator kernel, a fault-injected store — so the
// process survives and the caller can quarantine the faulting component.
func Guard(name string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Name: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
