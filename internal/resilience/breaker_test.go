package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Failures: 3,
		Window:   10 * time.Second,
		Cooldown: 2 * time.Second,
		Now:      clk.now,
	})
}

var errPeer = errors.New("peer: connection refused")

// TestBreakerLifecycle drives the full closed → open → half-open → closed
// cycle (and the half-open → open regression) as a table of steps under an
// injected clock.
func TestBreakerLifecycle(t *testing.T) {
	type step struct {
		name      string
		advance   time.Duration
		allow     *bool // if set, call Allow and expect this
		record    error // if allow not set, call Record with this
		doRecord  bool
		wantState BreakerState
	}
	yes, no := true, false
	steps := []step{
		{name: "closed allows", allow: &yes, wantState: BreakerClosed},
		{name: "failure 1", record: errPeer, doRecord: true, wantState: BreakerClosed},
		{name: "failure 2", record: errPeer, doRecord: true, wantState: BreakerClosed},
		{name: "still allows below threshold", allow: &yes, wantState: BreakerClosed},
		{name: "failure 3 opens", record: errPeer, doRecord: true, wantState: BreakerOpen},
		{name: "open refuses", allow: &no, wantState: BreakerOpen},
		{name: "open refuses mid-cooldown", advance: time.Second, allow: &no, wantState: BreakerOpen},
		{name: "cooldown elapses: half-open probe admitted", advance: 1500 * time.Millisecond, allow: &yes, wantState: BreakerHalfOpen},
		{name: "second probe refused", allow: &no, wantState: BreakerHalfOpen},
		{name: "probe failure reopens", record: errPeer, doRecord: true, wantState: BreakerOpen},
		{name: "reopened refuses", allow: &no, wantState: BreakerOpen},
		{name: "second cooldown: probe admitted again", advance: 2500 * time.Millisecond, allow: &yes, wantState: BreakerHalfOpen},
		{name: "probe success closes", record: nil, doRecord: true, wantState: BreakerClosed},
		{name: "closed again allows", allow: &yes, wantState: BreakerClosed},
		// The half-open success cleared the window: three fresh failures
		// are needed to open again, not one.
		{name: "post-close failure 1", record: errPeer, doRecord: true, wantState: BreakerClosed},
		{name: "post-close failure 2", record: errPeer, doRecord: true, wantState: BreakerClosed},
		{name: "post-close failure 3 opens", record: errPeer, doRecord: true, wantState: BreakerOpen},
	}

	clk := newFakeClock()
	b := testBreaker(clk)
	for _, s := range steps {
		clk.advance(s.advance)
		if s.allow != nil {
			if got := b.Allow(); got != *s.allow {
				t.Fatalf("%s: Allow() = %v, want %v", s.name, got, *s.allow)
			}
		} else if s.doRecord || s.record != nil {
			b.Record(s.record)
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("%s: state = %v, want %v", s.name, got, s.wantState)
		}
	}
}

// TestBreakerWindowExpiry checks that failures spread wider than Window
// never open the breaker: old failures are pruned before counting.
func TestBreakerWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Record(errPeer)
		clk.advance(6 * time.Second) // 2 failures per 10s window, threshold is 3
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after spread failure %d: state = %v, want closed", i+1, got)
		}
	}
	// Three failures inside one window still open it.
	b.Record(errPeer)
	b.Record(errPeer)
	b.Record(errPeer)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after burst: state = %v, want open", got)
	}
}

// TestBreakerOpenIgnoresLateResults checks that outcomes recorded while
// open (stragglers from attempts admitted before the trip) neither extend
// the cooldown nor close the breaker.
func TestBreakerOpenIgnoresLateResults(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(errPeer)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.advance(time.Second)
	b.Record(nil)     // late success: must not close
	b.Record(errPeer) // late failure: must not reset openedAt
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after late results: state = %v, want open", got)
	}
	// Cooldown measured from the original trip, not the late failure.
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown should have elapsed from the original trip time")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
}

// TestBreakerHalfOpenProbeBudget checks the configured number of probes is
// admitted while half-open and no more.
func TestBreakerHalfOpenProbeBudget(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Failures: 1, Window: 10 * time.Second, Cooldown: time.Second,
		HalfOpenProbes: 2, Now: clk.now,
	})
	b.Record(errPeer)
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("want 2 half-open probes admitted")
	}
	if b.Allow() {
		t.Fatal("third probe admitted beyond HalfOpenProbes=2")
	}
}

// TestBreakerSnapshot checks the diagnostics surface: consecutive failure
// count and last error text.
func TestBreakerSnapshot(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	b.Record(errPeer)
	b.Record(errPeer)
	state, consec, lastErr := b.Snapshot()
	if state != BreakerClosed || consec != 2 || lastErr != errPeer.Error() {
		t.Fatalf("Snapshot() = (%v, %d, %q), want (closed, 2, %q)", state, consec, lastErr, errPeer.Error())
	}
	b.Record(nil)
	if _, consec, lastErr := b.Snapshot(); consec != 0 || lastErr != "" {
		t.Fatalf("after success: consec=%d lastErr=%q, want 0 and empty", consec, lastErr)
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
