package resilience

import (
	"context"
	"errors"
)

// Overload errors. Handlers map these to 503 (shed) and 429 (queue full)
// with a Retry-After header; both mean "the request was rejected before
// consuming resources, try again".
var (
	// ErrOverloaded reports that an admission class had no capacity within
	// the request's deadline (cheap class) or at all (heavy class, which
	// sheds instead of queueing).
	ErrOverloaded = errors.New("resilience: overloaded")
	// ErrTrainQueueFull reports that the bounded train queue is full.
	ErrTrainQueueFull = errors.New("resilience: train queue full")
)

// AdmissionConfig sizes the two admission classes and the train queue.
type AdmissionConfig struct {
	// CheapSlots is the weight capacity of the cheap class (snapshot
	// reads: estimate/recommend/drift). Large batches acquire more weight
	// than single queries.
	CheapSlots int64
	// HeavySlots caps concurrently running expensive mutators (dataset
	// onboarding, adapt). Requests beyond it are shed, not queued: the
	// cheap class keeps serving from the existing snapshot.
	HeavySlots int64
	// TrainQueue bounds how many /train requests may wait for the
	// single-flight training slot; beyond it, 429.
	TrainQueue int64
}

// Admission is the two-class admission controller plus the train queue.
// The classes use disjoint semaphores, so saturating the expensive class
// can never block a cheap snapshot read — that separation is the
// shed-on-overload mode: when training or onboarding saturates, estimates
// keep flowing from the published snapshot.
type Admission struct {
	cheap *Semaphore
	heavy *Semaphore
	// queue bounds waiting trains; run serializes the one executing train
	// (single-flight: training is CPU-bound and snapshot publication is
	// serialized anyway, so concurrent trains only add memory pressure).
	queue *Semaphore
	run   *Semaphore
}

// NewAdmission builds a controller; non-positive fields fall back to the
// defaults (64 cheap weight, 2 heavy slots, 4 queued trains).
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.CheapSlots <= 0 {
		cfg.CheapSlots = 64
	}
	if cfg.HeavySlots <= 0 {
		cfg.HeavySlots = 2
	}
	if cfg.TrainQueue <= 0 {
		cfg.TrainQueue = 4
	}
	return &Admission{
		cheap: NewSemaphore(cfg.CheapSlots),
		heavy: NewSemaphore(cfg.HeavySlots),
		queue: NewSemaphore(cfg.TrainQueue),
		run:   NewSemaphore(1),
	}
}

// AdmitCheap admits weight n of cheap (snapshot-read) work, waiting at
// most until ctx's deadline. It returns the release function, or
// ErrOverloaded when capacity did not free up in time. Weights above the
// class capacity are clamped, so one huge batch admits alone rather than
// deadlocking.
func (a *Admission) AdmitCheap(ctx context.Context, n int64) (func(), error) {
	if n < 1 {
		n = 1
	}
	if n > a.cheap.Capacity() {
		n = a.cheap.Capacity()
	}
	if err := a.cheap.Acquire(ctx, n); err != nil {
		return nil, ErrOverloaded
	}
	return func() { a.cheap.Release(n) }, nil
}

// AdmitHeavy admits one expensive mutator, shedding immediately when the
// class is saturated — expensive work queues nowhere, so overload cannot
// build a backlog that outlives the spike.
func (a *Admission) AdmitHeavy() (func(), error) {
	if !a.heavy.TryAcquire(1) {
		return nil, ErrOverloaded
	}
	return func() { a.heavy.Release(1) }, nil
}

// AdmitTrain admits one training request through the bounded single-flight
// queue: a full queue fails fast with ErrTrainQueueFull (429 +
// Retry-After), an admitted request then waits — bounded by ctx, typically
// the train deadline — for the one training slot.
func (a *Admission) AdmitTrain(ctx context.Context) (func(), error) {
	if !a.queue.TryAcquire(1) {
		return nil, ErrTrainQueueFull
	}
	if err := a.run.Acquire(ctx, 1); err != nil {
		a.queue.Release(1)
		return nil, ErrOverloaded
	}
	return func() {
		a.run.Release(1)
		a.queue.Release(1)
	}, nil
}
