package resilience

import (
	"context"
	"sync/atomic"
	"time"
)

// ProbeFunc checks one peer's health (the fleet proxy points it at the
// peer's /healthz); nil means healthy.
type ProbeFunc func(ctx context.Context, peer int) error

// ProberConfig tunes a Prober. Zero fields fall back to defaults.
type ProberConfig struct {
	// Peers is the fleet size; peer indexes run [0, Peers).
	Peers int
	// Self, when >= 0, is this instance's own index: it is never probed
	// and always reported up.
	Self int
	// Interval spaces probe rounds (default 2s); Timeout bounds each
	// individual probe (default 1s).
	Interval, Timeout time.Duration
	// Rise is how many consecutive successes flip a down peer up
	// (default 1); Fall how many consecutive failures flip an up peer
	// down (default 2). The asymmetry biases toward keeping traffic
	// flowing: one blip does not eject a peer, one good probe readmits it.
	Rise, Fall int
	// Probe performs the check. Required.
	Probe ProbeFunc
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.Rise <= 0 {
		c.Rise = 1
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	return c
}

// PeerHealth is one peer's probed state.
type PeerHealth struct {
	Up bool `json:"up"`
	// ConsecOK / ConsecFail count the current streak (only one is
	// nonzero); LastErr is the most recent probe failure's text.
	ConsecOK   int       `json:"consec_ok,omitempty"`
	ConsecFail int       `json:"consec_fail,omitempty"`
	LastErr    string    `json:"last_err,omitempty"`
	Checked    time.Time `json:"checked,omitempty"`
}

// FleetHealth is an immutable point-in-time view of every peer, published
// atomically after each probe round.
type FleetHealth struct {
	Peers []PeerHealth `json:"peers"`
	Round int64        `json:"round"` // completed probe rounds
}

// Up reports whether peer is currently considered healthy. Peers outside
// the view (or a nil view) default to up — the prober is an accelerator
// for failure detection, never a gate that can wedge a fleet with no
// probe history.
func (fh *FleetHealth) Up(peer int) bool {
	if fh == nil || peer < 0 || peer >= len(fh.Peers) {
		return true
	}
	return fh.Peers[peer].Up
}

// Prober polls every peer's health on an interval and folds the outcomes
// through rise/fall thresholds into an atomically-published FleetHealth
// view. Readers (the fleet proxy's failover decision, /healthz) load the
// view wait-free; only the probe loop writes.
type Prober struct {
	cfg  ProberConfig
	view atomic.Pointer[FleetHealth]
}

// NewProber builds a prober whose initial view reports every peer up
// (optimistic: with no evidence, route normally).
func NewProber(cfg ProberConfig) *Prober {
	p := &Prober{cfg: cfg.withDefaults()}
	init := &FleetHealth{Peers: make([]PeerHealth, p.cfg.Peers)}
	for i := range init.Peers {
		init.Peers[i].Up = true
	}
	p.view.Store(init)
	return p
}

// Health returns the latest published view.
func (p *Prober) Health() *FleetHealth { return p.view.Load() }

// Step runs one probe round and publishes the successor view. Exposed so
// tests (and one-shot diagnostics) can drive rounds deterministically
// without the timer loop.
func (p *Prober) Step(ctx context.Context) {
	prev := p.view.Load()
	next := &FleetHealth{Peers: make([]PeerHealth, p.cfg.Peers), Round: prev.Round + 1}
	now := time.Now()
	for i := 0; i < p.cfg.Peers; i++ {
		ph := prev.Peers[i]
		if i == p.cfg.Self {
			next.Peers[i] = PeerHealth{Up: true, Checked: now}
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
		err := p.cfg.Probe(pctx, i)
		cancel()
		ph.Checked = now
		if err == nil {
			ph.ConsecOK++
			ph.ConsecFail = 0
			ph.LastErr = ""
			if !ph.Up && ph.ConsecOK >= p.cfg.Rise {
				ph.Up = true
			}
		} else {
			ph.ConsecFail++
			ph.ConsecOK = 0
			ph.LastErr = err.Error()
			if ph.Up && ph.ConsecFail >= p.cfg.Fall {
				ph.Up = false
			}
		}
		next.Peers[i] = ph
	}
	p.view.Store(next)
}

// Run probes on the configured interval until ctx is cancelled. Call it
// on its own goroutine.
func (p *Prober) Run(ctx context.Context) {
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.Step(ctx)
		}
	}
}
