package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// scriptedProbe returns a ProbeFunc reading per-peer outcome scripts: each
// call pops the next outcome for that peer (sticking on the last).
func scriptedProbe(scripts map[int][]error) ProbeFunc {
	idx := map[int]int{}
	return func(_ context.Context, peer int) error {
		s := scripts[peer]
		if len(s) == 0 {
			return nil
		}
		i := idx[peer]
		if i >= len(s) {
			i = len(s) - 1
		}
		idx[peer]++
		return s[i]
	}
}

var errProbe = errors.New("probe: 503")

// TestProberRiseFall drives rounds deterministically through Step and
// checks the rise/fall thresholds: 2 consecutive failures flip a peer
// down, 1 success readmits it.
func TestProberRiseFall(t *testing.T) {
	p := NewProber(ProberConfig{
		Peers: 3, Self: 0, Rise: 1, Fall: 2,
		Probe: scriptedProbe(map[int][]error{
			1: {errProbe, errProbe, errProbe, nil, nil},
			2: {nil},
		}),
	})

	// Initial view is optimistic: everyone up, no probe history.
	for i := 0; i < 3; i++ {
		if !p.Health().Up(i) {
			t.Fatalf("initial view: peer %d down, want up", i)
		}
	}

	ctx := context.Background()
	p.Step(ctx) // peer 1: 1 failure — below Fall, still up
	if h := p.Health(); !h.Up(1) || h.Peers[1].ConsecFail != 1 {
		t.Fatalf("round 1: up=%v consec_fail=%d, want up with 1 failure", h.Up(1), h.Peers[1].ConsecFail)
	}
	p.Step(ctx) // peer 1: 2nd failure — hits Fall, down
	if h := p.Health(); h.Up(1) {
		t.Fatal("round 2: peer 1 still up after Fall consecutive failures")
	} else if h.Peers[1].LastErr != errProbe.Error() {
		t.Fatalf("round 2: last_err = %q, want %q", h.Peers[1].LastErr, errProbe.Error())
	}
	p.Step(ctx) // peer 1: 3rd failure — stays down
	if p.Health().Up(1) {
		t.Fatal("round 3: peer 1 flapped up while still failing")
	}
	p.Step(ctx) // peer 1: success — Rise=1 readmits immediately
	if h := p.Health(); !h.Up(1) || h.Peers[1].LastErr != "" {
		t.Fatalf("round 4: up=%v last_err=%q, want readmitted with error cleared", h.Up(1), h.Peers[1].LastErr)
	}

	// Peer 2 was healthy throughout; self (0) is never probed and always up.
	h := p.Health()
	if !h.Up(2) || !h.Up(0) {
		t.Fatalf("peer2 up=%v self up=%v, want both up", h.Up(2), h.Up(0))
	}
	if h.Round != 4 {
		t.Fatalf("round = %d, want 4", h.Round)
	}
}

// TestProberRiseThreshold checks Rise > 1: a down peer needs that many
// consecutive successes before readmission.
func TestProberRiseThreshold(t *testing.T) {
	p := NewProber(ProberConfig{
		Peers: 2, Self: 0, Rise: 3, Fall: 1,
		Probe: scriptedProbe(map[int][]error{
			1: {errProbe, nil, nil, errProbe, nil, nil, nil},
		}),
	})
	ctx := context.Background()
	p.Step(ctx) // fail → down (Fall=1)
	if p.Health().Up(1) {
		t.Fatal("peer 1 up after failure with Fall=1")
	}
	p.Step(ctx) // ok (1/3)
	p.Step(ctx) // ok (2/3)
	if p.Health().Up(1) {
		t.Fatal("peer 1 readmitted below Rise threshold")
	}
	p.Step(ctx) // fail — streak resets
	p.Step(ctx) // ok (1/3)
	p.Step(ctx) // ok (2/3)
	if p.Health().Up(1) {
		t.Fatal("peer 1 readmitted though the failure reset the success streak")
	}
	p.Step(ctx) // ok (3/3) → up
	if !p.Health().Up(1) {
		t.Fatal("peer 1 still down after Rise consecutive successes")
	}
}

// TestFleetHealthFailOpen pins the fail-open contract: a nil view and
// out-of-range peers read as up, so the prober can only accelerate failure
// detection, never wedge routing.
func TestFleetHealthFailOpen(t *testing.T) {
	var fh *FleetHealth
	if !fh.Up(0) {
		t.Fatal("nil view: want up")
	}
	fh = &FleetHealth{Peers: []PeerHealth{{Up: false}}}
	if fh.Up(0) {
		t.Fatal("explicit down peer read as up")
	}
	if !fh.Up(-1) || !fh.Up(5) {
		t.Fatal("out-of-range peers: want up")
	}
}

// TestProberViewImmutable checks each Step publishes a fresh view rather
// than mutating the one readers may hold.
func TestProberViewImmutable(t *testing.T) {
	p := NewProber(ProberConfig{
		Peers: 2, Self: -1, Rise: 1, Fall: 1,
		Probe: scriptedProbe(map[int][]error{0: {errProbe}, 1: {errProbe}}),
	})
	before := p.Health()
	p.Step(context.Background())
	if !before.Up(0) || !before.Up(1) {
		t.Fatal("Step mutated a previously-published view")
	}
	if after := p.Health(); after == before || after.Up(0) {
		t.Fatal("Step did not publish a successor view")
	}
}

// TestProberRunStops checks the ticker loop exits on cancellation.
func TestProberRunStops(t *testing.T) {
	p := NewProber(ProberConfig{
		Peers: 1, Self: -1, Interval: time.Millisecond,
		Probe: func(context.Context, int) error { return nil },
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { p.Run(ctx); close(done) }()
	for p.Health().Round == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after cancellation")
	}
}
