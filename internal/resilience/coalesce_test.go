package resilience

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitPending blocks until key's pending batch holds want items — the
// in-package synchronization hook that makes merge tests deterministic.
func waitPending[T, R any](t *testing.T, c *Coalescer[T, R], key string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		n := 0
		if ks := c.keys[key]; ks != nil && ks.pending != nil {
			n = len(ks.pending.items)
		}
		c.mu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending batch never reached %d items (at %d)", want, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescerIdleKeyRunsImmediately pins the no-added-latency property:
// with nothing in flight, a caller's items run alone, untouched.
func TestCoalescerIdleKeyRunsImmediately(t *testing.T) {
	var c Coalescer[int, int]
	var got []int
	out, err := c.Do("k", []int{3, 4}, func(items []int) ([]int, error) {
		got = append([]int(nil), items...)
		res := make([]int, len(items))
		for i, v := range items {
			res[i] = v * 10
		}
		return res, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("run saw %v, want the caller's items alone", got)
	}
	if len(out) != 2 || out[0] != 30 || out[1] != 40 {
		t.Fatalf("results %v", out)
	}
}

// TestCoalescerMergesUnderContention holds one execution in flight and
// verifies that the callers arriving meanwhile are merged into a single
// batched execution whose per-caller slices line up with their items.
func TestCoalescerMergesUnderContention(t *testing.T) {
	var c Coalescer[int, int]
	blockFirst := make(chan struct{})
	firstRunning := make(chan struct{})
	var executions atomic.Int64
	run := func(items []int) ([]int, error) {
		executions.Add(1)
		res := make([]int, len(items))
		for i, v := range items {
			res[i] = v + 1000
		}
		return res, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Do("k", []int{0}, func(items []int) ([]int, error) {
			close(firstRunning)
			<-blockFirst
			return run(items)
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-firstRunning

	// These all arrive while the first execution is blocked in flight: they
	// must merge into one follow-up batch.
	const followers = 8
	results := make([][]int, followers)
	errs := make([]error, followers)
	var fwg sync.WaitGroup
	for i := 0; i < followers; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			results[i], errs[i] = c.Do("k", []int{i, i + 100}, run)
		}(i)
	}
	// Every follower must have joined the pending batch before the blocked
	// execution is released, so the merge is forced, not probabilistic.
	waitPending(t, &c, "k", followers*2)
	close(blockFirst)
	fwg.Wait()
	wg.Wait()

	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		want := []int{i + 1000, i + 100 + 1000}
		if len(results[i]) != 2 || results[i][0] != want[0] || results[i][1] != want[1] {
			t.Fatalf("follower %d got %v, want %v", i, results[i], want)
		}
	}
	// Exactly 1 (blocked leader) + 1 (all followers merged): the forced
	// join means every follower rode one batch.
	if n := executions.Load(); n != 2 {
		t.Fatalf("%d executions for %d callers; want exactly 2", n, followers+1)
	}
}

// TestCoalescerErrorReachesAllMembers verifies a failed batch delivers the
// same error to every member, and that the key resets afterwards.
func TestCoalescerErrorReachesAllMembers(t *testing.T) {
	var c Coalescer[int, int]
	boom := errors.New("boom")
	blockFirst := make(chan struct{})
	firstRunning := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, leaderErr = c.Do("k", []int{1}, func(items []int) ([]int, error) {
			close(firstRunning)
			<-blockFirst
			return nil, boom
		})
	}()
	<-firstRunning

	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, followerErr = c.Do("k", []int{2}, func(items []int) ([]int, error) {
			return nil, boom
		})
	}()
	waitPending(t, &c, "k", 1)
	close(blockFirst)
	wg.Wait()

	if !errors.Is(leaderErr, boom) || !errors.Is(followerErr, boom) {
		t.Fatalf("errors = (%v, %v), want boom for both", leaderErr, followerErr)
	}
	// The key must be clean: the next call runs immediately and succeeds.
	out, err := c.Do("k", []int{7}, func(items []int) ([]int, error) {
		return []int{len(items)}, nil
	})
	if err != nil || len(out) != 1 || out[0] != 1 {
		t.Fatalf("post-error call = (%v, %v)", out, err)
	}
}

// TestCoalescerPanicBecomesPanicError pins the panic fence: a run that
// panics must not strand waiters or wedge the key.
func TestCoalescerPanicBecomesPanicError(t *testing.T) {
	var c Coalescer[int, int]
	_, err := c.Do("k", []int{1}, func(items []int) ([]int, error) {
		panic("kaboom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if out, err := c.Do("k", []int{1}, func(items []int) ([]int, error) {
		return []int{9}, nil
	}); err != nil || out[0] != 9 {
		t.Fatalf("key wedged after panic: (%v, %v)", out, err)
	}
}

// TestCoalescerResultCountMismatch pins the defensive check on run's
// contract.
func TestCoalescerResultCountMismatch(t *testing.T) {
	var c Coalescer[int, int]
	_, err := c.Do("k", []int{1, 2}, func(items []int) ([]int, error) {
		return []int{1}, nil
	})
	if err == nil {
		t.Fatal("short result slice was not rejected")
	}
}

// TestCoalescerKeysAreIndependent verifies executions on different keys
// never merge or block each other.
func TestCoalescerKeysAreIndependent(t *testing.T) {
	var c Coalescer[int, string]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			out, err := c.Do(key, []int{i}, func(items []int) ([]string, error) {
				res := make([]string, len(items))
				for j, v := range items {
					res[j] = fmt.Sprintf("%s:%d", key, v)
				}
				return res, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			for _, s := range out {
				if s != fmt.Sprintf("%s:%d", key, i) {
					t.Errorf("cross-key contamination: %q for key %q item %d", s, key, i)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestCoalescerMaxBatchOverflowRunsSolo verifies the overflow escape
// hatch: items that would blow past MaxBatch execute alone rather than
// growing the pending batch without bound.
func TestCoalescerMaxBatchOverflowRunsSolo(t *testing.T) {
	c := Coalescer[int, int]{MaxBatch: 2}
	blockFirst := make(chan struct{})
	firstRunning := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", []int{0}, func(items []int) ([]int, error) {
			close(firstRunning)
			<-blockFirst
			return make([]int, len(items)), nil
		})
	}()
	<-firstRunning

	// First joiner fills the pending batch to MaxBatch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("k", []int{1, 2}, func(items []int) ([]int, error) {
			return make([]int, len(items)), nil
		})
	}()
	waitPending(t, &c, "k", 2)

	// This overflow caller must complete even though the in-flight batch is
	// still blocked — proof it ran solo instead of joining.
	soloDone := make(chan struct{})
	go func() {
		defer close(soloDone)
		var ran atomic.Bool
		out, err := c.Do("k", []int{3}, func(items []int) ([]int, error) {
			ran.Store(true)
			return make([]int, len(items)), nil
		})
		if err != nil || len(out) != 1 || !ran.Load() {
			t.Errorf("overflow solo run = (%v, %v, ran=%v)", out, err, ran.Load())
		}
	}()
	<-soloDone
	close(blockFirst)
	wg.Wait()
}
