// Package latency provides an HDR-style latency histogram: fixed-size,
// allocation-free recording with bounded relative error, built for
// benchmark and load-harness tail reporting (p50/p99) where a sorted
// sample buffer would either truncate the tail or grow without bound.
//
// The bucket layout is logarithmic-with-linear-fill: values below 2^5
// are exact; above that, each power of two splits into 32 linear
// sub-buckets, so any recorded value lands in a bucket whose width is at
// most 1/32 of its magnitude (≈3% relative error) — constant memory
// (~15 KiB) regardless of range or volume, up to the full uint64 span.
//
// A Histogram is not safe for concurrent use; concurrent recorders each
// own one and Merge them afterwards, which keeps the hot path at a
// single array increment and makes aggregated quantiles deterministic
// regardless of interleaving.
package latency

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
	"time"
)

// subBits fixes the precision: 2^subBits linear sub-buckets per power of
// two.
const (
	subBits    = 5
	subCount   = 1 << subBits // 32
	numBuckets = (64-subBits)*subCount + subCount
)

// Histogram records durations (as non-negative nanosecond counts) into
// log-linear buckets. The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]uint64
	total  uint64
	max    uint64
}

// bucketOf maps v to its bucket index.
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= subBits
	sub := (v >> uint(exp-subBits)) & (subCount - 1)
	return (exp-subBits+1)*subCount + int(sub)
}

// bucketHigh returns the largest value mapping to bucket idx — the
// conservative (upper-bound) representative used for quantiles.
func bucketHigh(idx int) uint64 {
	if idx < subCount {
		return uint64(idx)
	}
	major := idx / subCount // >= 1
	sub := uint64(idx % subCount)
	exp := uint(major + subBits - 1)
	lo := uint64(1)<<exp + sub<<(exp-subBits)
	return lo + uint64(1)<<(exp-subBits) - 1
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketOf(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Merge folds o into h; o is unchanged. Quantiles of the merged
// histogram equal those of recording both streams into one histogram.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) of
// the recorded values, within one bucket width (≤ ~3% above the true
// value). q <= 0 is the minimum bucket, q >= 1 the maximum. An empty
// histogram returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketHigh(i)
			if v > h.max {
				// The top occupied bucket's upper bound can exceed the
				// true maximum; the exact max is tighter.
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Sparse renders the occupied buckets as "idx:count" pairs joined with
// commas, in index order — the compact wire form for benchmark output
// (HIST lines) that ParseSparse round-trips.
func (h *Histogram) Sparse() string {
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", i, c)
	}
	return b.String()
}

// ParseSparse rebuilds a histogram from Sparse output. The exact max is
// not carried on the wire, so Max (and top-bucket quantiles) degrade to
// the occupied bucket's upper bound.
func ParseSparse(s string) (*Histogram, error) {
	h := &Histogram{}
	s = strings.TrimSpace(s)
	if s == "" {
		return h, nil
	}
	for _, pair := range strings.Split(s, ",") {
		idxs, counts, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("latency: malformed bucket %q", pair)
		}
		idx, err := strconv.Atoi(idxs)
		if err != nil || idx < 0 || idx >= numBuckets {
			return nil, fmt.Errorf("latency: bucket index %q out of range", idxs)
		}
		c, err := strconv.ParseUint(counts, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("latency: bucket count %q: %v", counts, err)
		}
		h.counts[idx] += c
		h.total += c
		if c > 0 {
			if hi := bucketHigh(idx); hi > h.max {
				h.max = hi
			}
		}
	}
	return h, nil
}

// Summary formats the standard report line: count, p50, p90, p99, max.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v",
		h.total, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
}

// Quantiles evaluates several quantiles, index-aligned with qs.
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
