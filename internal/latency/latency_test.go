package latency

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value maps into a bucket whose [low, high] range contains it,
	// with width <= value/32 above the exact region.
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<20 + 12345, 1 << 40, 1<<63 + 17}
	for _, v := range vals {
		idx := bucketOf(v)
		hi := bucketHigh(idx)
		if hi < v {
			t.Fatalf("value %d: bucket %d high %d below value", v, idx, hi)
		}
		if idx+1 < numBuckets {
			// v must not belong to a later bucket.
			if bucketHigh(idx) >= bucketHigh(idx+1) {
				t.Fatalf("bucket highs not increasing at %d", idx)
			}
		}
		if v >= 64 && float64(hi-v) > float64(v)/32 {
			t.Fatalf("value %d: bucket error %d exceeds v/32", v, hi-v)
		}
	}
	// Bucket highs are globally monotone: the quantile walk depends on it.
	prev := uint64(0)
	for i := 1; i < numBuckets; i++ {
		if h := bucketHigh(i); h <= prev {
			t.Fatalf("bucketHigh(%d)=%d not above %d", i, h, prev)
		} else {
			prev = h
		}
	}
}

func TestQuantileAgainstExactSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	sample := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~[1us, 100ms]: a latency-shaped distribution.
		v := time.Duration(1000 * math.Exp(rng.Float64()*11.5))
		h.Record(v)
		sample = append(sample, float64(v))
	}
	sort.Float64s(sample)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := sample[int(q*float64(len(sample)))-1]
		got := float64(h.Quantile(q))
		// Upper bound within one bucket (~3.2%), allowing for the rank
		// convention differing by one sample.
		if got < exact*0.97 || got > exact*1.07 {
			t.Fatalf("q%v: histogram %v vs exact %v", q, got, exact)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 %v != max %v", h.Quantile(1), h.Max())
	}
}

func TestMergeEqualsCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(1_000_000_000))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Max() != both.Max() {
		t.Fatalf("merge count/max (%d, %v) vs (%d, %v)", a.Count(), a.Max(), both.Count(), both.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q%v: merged %v vs combined %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestSparseRoundTrip(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, time.Microsecond, time.Millisecond, time.Millisecond, 3 * time.Second} {
		h.Record(d)
	}
	got, err := ParseSparse(h.Sparse())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() {
		t.Fatalf("round-trip count %d vs %d", got.Count(), h.Count())
	}
	for _, q := range []float64{0.25, 0.5, 0.99} {
		// Wire form loses the exact max, but bucket-resolution quantiles
		// must survive exactly for non-top buckets.
		if a, b := got.Quantile(q), h.Quantile(q); a < b || float64(a) > float64(b)*1.04 {
			t.Fatalf("q%v drifted across the wire: %v vs %v", q, a, b)
		}
	}
	if _, err := ParseSparse("12:3,oops"); err == nil {
		t.Fatal("malformed sparse accepted")
	}
	if _, err := ParseSparse("999999:1"); err == nil {
		t.Fatal("out-of-range bucket accepted")
	}
	if empty, err := ParseSparse(""); err != nil || empty.Count() != 0 {
		t.Fatalf("empty sparse: (%v, %v)", empty, err)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	if h.Sparse() != "" {
		t.Fatalf("empty sparse %q", h.Sparse())
	}
	h.Record(-time.Second) // clamps, must not panic
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatal("negative record mishandled")
	}
}
