package uae

import (
	"math"
	"math/rand"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestQueryCorrectionImprovesOverPureAR(t *testing.T) {
	p := datagen.DefaultParams(1)
	p.Tables = 2
	p.MinRows, p.MaxRows = 250, 400
	d, err := datagen.Generate("u", p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sample := engine.SampleJoin(d, 600, rng)
	qs := workload.Generate(d, workload.DefaultConfig(150, 3))
	train, test := workload.Split(qs, 0.6, 4)

	cfg := DefaultConfig()
	cfg.Epochs = 3
	cfg.CorrEpochs = 12
	m := New(cfg)
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: sample, Queries: train}); err != nil {
		t.Fatal(err)
	}
	evalWith := func(est func(*workload.Query) float64) float64 {
		ests := make([]float64, len(test))
		truths := make([]float64, len(test))
		for i, q := range test {
			ests[i] = est(q)
			truths[i] = float64(q.TrueCard)
		}
		return metrics.MeanQError(ests, truths)
	}
	corrected := evalWith(m.Estimate)
	pure := evalWith(m.arEstimate)
	// The hybrid should not be dramatically worse than the pure AR model
	// and usually improves it (the defining property of UAE).
	if corrected > pure*1.5 {
		t.Fatalf("query correction hurt badly: AR %g -> UAE %g", pure, corrected)
	}
}

func TestHybridWithoutQueriesDegradesToDataDriven(t *testing.T) {
	p := datagen.DefaultParams(5)
	p.MinRows, p.MaxRows = 200, 300
	d, _ := datagen.Generate("u", p)
	rng := rand.New(rand.NewSource(6))
	sample := engine.SampleJoin(d, 400, rng)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: sample, Queries: nil}); err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds:  []engine.Predicate{{Table: 0, Col: 0, Lo: 1, Hi: 50}},
	}}
	est := m.Estimate(q)
	if est < 1 || math.IsNaN(est) {
		t.Fatalf("estimate %g", est)
	}
	if est != m.arEstimate(q) {
		t.Fatal("without queries, UAE must equal its AR component")
	}
}

func TestDegenerateSample(t *testing.T) {
	p := datagen.DefaultParams(7)
	p.MinRows, p.MaxRows = 100, 150
	d, _ := datagen.Generate("u", p)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: &engine.JoinSample{}, Queries: nil}); err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Query: engine.Query{Tables: []int{0}}}
	if got := m.Estimate(q); got != 1 {
		t.Fatalf("degenerate estimate %g", got)
	}
}
