// Package uae implements a hybrid estimator in the style of UAE (Wu &
// Cong, SIGMOD 2021), the paper's baseline (7): a deep autoregressive data
// model unified with query-driven learning. The data side reuses the
// NeuroCard MADE network; the query side trains a small residual network on
// the labeled training queries to correct the autoregressive estimate —
// the pure-Go stand-in for UAE's differentiable progressive sampling
// (Gumbel-Softmax), which lets query supervision reach the density model.
//
// Inference runs the full progressive-sampling loop plus the correction
// forward pass, making UAE marginally slower than NeuroCard, as in the
// paper's latency measurements.
package uae

import (
	"math"
	"math/rand"

	"repro/internal/ce"
	"repro/internal/ce/neurocard"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/workload"
)

// Config controls both training phases.
type Config struct {
	MaxBins int
	Hidden  int
	Epochs  int
	Batch   int
	LR      float64
	Samples int
	// CorrHidden and CorrEpochs control the query-residual network.
	CorrHidden int
	CorrEpochs int
	CorrLR     float64
	Seed       int64
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config {
	return Config{
		MaxBins: 12, Hidden: 40, Epochs: 6, Batch: 32, LR: 5e-3, Samples: 48,
		CorrHidden: 16, CorrEpochs: 20, CorrLR: 5e-3, Seed: 5,
	}
}

// Model is a trained UAE estimator.
type Model struct {
	cfg    Config
	d      *dataset.Dataset
	binner *ce.Binner
	slots  map[[2]int]int
	sizes  *ce.SubsetSizes
	made   *neurocard.Made
	rng    *rand.Rand

	enc  *workload.Encoder
	corr *nn.MLP

	degenerate bool
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "UAE" }

// arEstimate is the pure data-driven estimate (before correction).
func (m *Model) arEstimate(q *workload.Query) float64 {
	if m.degenerate {
		return 1
	}
	ranges, ok, unresolved := ce.QueryBinRanges(m.binner, m.slots, q)
	if !ok {
		return 1
	}
	p := neurocard.ProgressiveSample(m.made, ranges, m.cfg.Samples, m.rng)
	for _, pr := range unresolved {
		p *= uniformSel(m.d, pr)
	}
	est := p * float64(m.sizes.Size(q.Tables))
	if est < 1 {
		return 1
	}
	return est
}

// SetSubsetSizes implements ce.SizeAware: the testbed injects the shared
// precomputed join-subset sizes before training.
func (m *Model) SetSubsetSizes(ss *ce.SubsetSizes) { m.sizes = ss }

// TrainBoth implements ce.Hybrid: phase one fits the autoregressive data
// model; phase two fits the residual corrector on the labeled queries.
func (m *Model) TrainBoth(d *dataset.Dataset, sample *engine.JoinSample, train []*workload.Query) error {
	if len(sample.Rows) == 0 {
		m.degenerate = true
		return nil
	}
	m.d = d
	m.binner = ce.NewBinner(sample, m.cfg.MaxBins)
	m.slots = ce.ColSlots(sample)
	if m.sizes == nil {
		m.sizes = ce.ComputeSubsetSizes(d)
	}
	m.rng = rand.New(rand.NewSource(m.cfg.Seed))
	rows := m.binner.BinRows(sample)
	bins := make([]int, len(sample.Cols))
	for j := range bins {
		bins[j] = m.binner.NumBins(j)
	}
	m.made = neurocard.NewMade(m.rng, bins, m.cfg.Hidden)
	neurocard.TrainMade(m.made, rows, m.cfg.Epochs, m.cfg.Batch, m.cfg.LR, m.rng)

	if len(train) == 0 {
		return nil // degenerate to pure data-driven
	}
	m.enc = workload.NewEncoder(d)
	m.corr = nn.NewMLP(m.rng, []int{m.enc.Dim(), m.cfg.CorrHidden, 1}, nn.ActReLU, nn.ActNone)
	// Residual targets: log(true) - log(AR estimate), clamped to keep the
	// corrector from memorizing outliers.
	xs := make([][]float64, 0, len(train))
	ys := make([]float64, 0, len(train))
	for _, q := range train {
		ar := m.arEstimate(q)
		r := workload.LogCard(q.TrueCard) - math.Log1p(ar-1)
		if r > 4 {
			r = 4
		}
		if r < -4 {
			r = -4
		}
		xs = append(xs, m.enc.Encode(q))
		ys = append(ys, r)
	}
	opt := nn.NewAdam(m.corr.Params(), m.cfg.CorrLR)
	order := m.rng.Perm(len(xs))
	const batch = 16
	dim := m.enc.Dim()
	type batchTape struct {
		x       *nn.Tensor
		targets []float64
		tape    *nn.Tape
	}
	tapes := nn.NewBatchTapes(func(bsz int) *batchTape {
		x := nn.Zeros(bsz, dim)
		targets := make([]float64, bsz)
		return &batchTape{x: x, targets: targets, tape: nn.NewTape(nn.MSE(m.corr.Forward(x), targets))}
	})
	for epoch := 0; epoch < m.cfg.CorrEpochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			bt := tapes.For(end - start)
			for bi, i := range order[start:end] {
				copy(bt.x.V[bi*dim:(bi+1)*dim], xs[i])
				bt.targets[bi] = ys[i]
			}
			bt.tape.Forward()
			bt.tape.BackwardScalar()
			opt.Step()
		}
	}
	return nil
}

// Estimate implements ce.Estimator: AR estimate times the learned
// correction factor.
func (m *Model) Estimate(q *workload.Query) float64 {
	ar := m.arEstimate(q)
	if m.corr == nil {
		return ar
	}
	r := m.corr.Forward(nn.FromRow(m.enc.Encode(q))).Scalar()
	if r > 4 {
		r = 4
	}
	if r < -4 {
		r = -4
	}
	est := ar * math.Exp(r)
	if est < 1 {
		return 1
	}
	return est
}

func uniformSel(d *dataset.Dataset, p engine.Predicate) float64 {
	lo, hi := d.Tables[p.Table].Col(p.Col).MinMax()
	width := float64(hi-lo) + 1
	if width <= 0 {
		return 1
	}
	ovLo, ovHi := p.Lo, p.Hi
	if lo > ovLo {
		ovLo = lo
	}
	if hi < ovHi {
		ovHi = hi
	}
	ov := float64(ovHi-ovLo) + 1
	if ov <= 0 {
		return 0
	}
	if ov > width {
		ov = width
	}
	return ov / width
}
