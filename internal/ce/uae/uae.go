// Package uae implements a hybrid estimator in the style of UAE (Wu &
// Cong, SIGMOD 2021), the paper's baseline (7): a deep autoregressive data
// model unified with query-driven learning. The data side reuses the
// NeuroCard MADE network; the query side trains a small residual network on
// the labeled training queries to correct the autoregressive estimate —
// the pure-Go stand-in for UAE's differentiable progressive sampling
// (Gumbel-Softmax), which lets query supervision reach the density model.
//
// Inference runs the full progressive-sampling loop plus the correction
// forward pass, making UAE marginally slower than NeuroCard, as in the
// paper's latency measurements.
package uae

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/ce"
	"repro/internal/ce/neurocard"
	"repro/internal/nn"
	"repro/internal/workload"
)

func init() {
	// Registry rank 6: the paper's hybrid baseline (7). Like NeuroCard,
	// inference advances the sampling RNG, so it is not concurrent.
	ce.Register(ce.Spec{
		Rank: 6, Name: "UAE", Kind: ce.Hybrid, Candidate: true, Concurrent: false,
		New: func(c ce.Config) ce.Model {
			cfg := DefaultConfig()
			if c.Fast {
				cfg.Epochs = 2
				cfg.Samples = 24
				cfg.CorrEpochs = 6
			}
			cfg.Seed = c.Seed + 15
			return New(cfg)
		},
	})
	gob.Register(&Model{})
}

// Config controls both training phases.
type Config struct {
	MaxBins int
	Hidden  int
	Epochs  int
	Batch   int
	LR      float64
	Samples int
	// CorrHidden and CorrEpochs control the query-residual network.
	CorrHidden int
	CorrEpochs int
	CorrLR     float64
	Seed       int64
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config {
	return Config{
		MaxBins: 12, Hidden: 40, Epochs: 6, Batch: 32, LR: 5e-3, Samples: 48,
		CorrHidden: 16, CorrEpochs: 20, CorrLR: 5e-3, Seed: 5,
	}
}

// Model is a trained UAE estimator.
type Model struct {
	cfg    Config
	bounds *ce.ColBounds
	binner *ce.Binner
	slots  map[[2]int]int
	sizes  *ce.SubsetSizes
	made   *neurocard.Made
	// rng drives training and progressive sampling; the counting wrapper
	// makes its position serializable (see neurocard.Model).
	rng *ce.RNG

	enc  *workload.Encoder
	corr *nn.MLP

	degenerate bool
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "UAE" }

// arEstimate is the pure data-driven estimate (before correction).
func (m *Model) arEstimate(q *workload.Query) float64 {
	if m.degenerate {
		return 1
	}
	ranges, ok, unresolved := ce.QueryBinRanges(m.binner, m.slots, q)
	if !ok {
		return 1
	}
	p := neurocard.ProgressiveSample(m.made, ranges, m.cfg.Samples, m.rng.Rand)
	for _, pr := range unresolved {
		p *= m.bounds.UniformSel(pr)
	}
	est := p * float64(m.sizes.Size(q.Tables))
	if est < 1 {
		return 1
	}
	return est
}

// Fit implements ce.Model (hybrid: consumes Dataset, Sample, Queries, and
// the shared Sizes when provided): phase one fits the autoregressive data
// model; phase two fits the residual corrector on the labeled queries.
func (m *Model) Fit(in *ce.TrainInput) error {
	d, sample, train := in.Dataset, in.Sample, in.Queries
	if len(sample.Rows) == 0 {
		m.degenerate = true
		return nil
	}
	m.bounds = ce.NewColBounds(d)
	m.binner = ce.NewBinner(sample, m.cfg.MaxBins)
	m.slots = ce.ColSlots(sample)
	m.sizes = in.Sizes
	if m.sizes == nil {
		m.sizes = ce.ComputeSubsetSizes(d)
	}
	m.rng = ce.NewRNG(m.cfg.Seed)
	rows := m.binner.BinRows(sample)
	bins := make([]int, len(sample.Cols))
	for j := range bins {
		bins[j] = m.binner.NumBins(j)
	}
	m.made = neurocard.NewMade(m.rng.Rand, bins, m.cfg.Hidden)
	neurocard.TrainMade(m.made, rows, m.cfg.Epochs, m.cfg.Batch, m.cfg.LR, m.rng.Rand)

	if len(train) == 0 {
		return nil // degenerate to pure data-driven
	}
	m.enc = workload.NewEncoder(d)
	m.corr = nn.NewMLP(m.rng.Rand, []int{m.enc.Dim(), m.cfg.CorrHidden, 1}, nn.ActReLU, nn.ActNone)
	// Residual targets: log(true) - log(AR estimate), clamped to keep the
	// corrector from memorizing outliers.
	xs := make([][]float64, 0, len(train))
	ys := make([]float64, 0, len(train))
	for _, q := range train {
		ar := m.arEstimate(q)
		r := workload.LogCard(q.TrueCard) - math.Log1p(ar-1)
		if r > 4 {
			r = 4
		}
		if r < -4 {
			r = -4
		}
		xs = append(xs, m.enc.Encode(q))
		ys = append(ys, r)
	}
	opt := nn.NewAdam(m.corr.Params(), m.cfg.CorrLR)
	order := m.rng.Perm(len(xs))
	const batch = 16
	dim := m.enc.Dim()
	type batchTape struct {
		x       *nn.Tensor
		targets []float64
		tape    *nn.Tape
	}
	tapes := nn.NewBatchTapes(func(bsz int) *batchTape {
		x := nn.Zeros(bsz, dim)
		targets := make([]float64, bsz)
		return &batchTape{x: x, targets: targets, tape: nn.NewTape(nn.MSE(m.corr.Forward(x), targets))}
	})
	for epoch := 0; epoch < m.cfg.CorrEpochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			bt := tapes.For(end - start)
			for bi, i := range order[start:end] {
				copy(bt.x.V[bi*dim:(bi+1)*dim], xs[i])
				bt.targets[bi] = ys[i]
			}
			bt.tape.Forward()
			bt.tape.BackwardScalar()
			opt.Step()
		}
	}
	return nil
}

// Estimate implements ce.Estimator: AR estimate times the learned
// correction factor.
func (m *Model) Estimate(q *workload.Query) float64 {
	ar := m.arEstimate(q)
	if m.corr == nil {
		return ar
	}
	r := m.corr.Forward(nn.FromRow(m.enc.Encode(q))).Scalar()
	if r > 4 {
		r = 4
	}
	if r < -4 {
		r = -4
	}
	est := ar * math.Exp(r)
	if est < 1 {
		return 1
	}
	return est
}

// EstimateBatch implements ce.Estimator sequentially: the autoregressive
// half advances the model's RNG, so the batch preserves the per-query
// estimate stream exactly.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.SerialEstimates(m, qs)
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg        Config
	Bounds     *ce.ColBounds
	Binner     *ce.Binner
	Slots      map[[2]int]int
	Sizes      *ce.SubsetSizes
	Made       *neurocard.Made
	Enc        *workload.Encoder
	Corr       *nn.MLP
	RNG        ce.RNGState
	Degenerate bool
}

// GobEncode implements gob.GobEncoder (ce.Persistable), capturing the RNG
// stream position so estimates continue bit-identically after a round
// trip.
func (m *Model) GobEncode() ([]byte, error) {
	st := &modelState{Cfg: m.cfg, Degenerate: m.degenerate}
	if !m.degenerate {
		if m.made == nil {
			return nil, fmt.Errorf("uae: cannot persist an untrained model")
		}
		st.Bounds, st.Binner, st.Slots, st.Sizes = m.bounds, m.binner, m.slots, m.sizes
		st.Made, st.Enc, st.Corr, st.RNG = m.made, m.enc, m.corr, m.rng.State()
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("uae: decoding model: %w", err)
	}
	m.cfg, m.bounds, m.binner, m.slots = st.Cfg, st.Bounds, st.Binner, st.Slots
	m.sizes, m.made, m.enc, m.corr = st.Sizes, st.Made, st.Enc, st.Corr
	m.degenerate = st.Degenerate
	m.rng = nil
	if !st.Degenerate {
		m.rng = ce.RNGFromState(st.RNG)
	}
	return nil
}
