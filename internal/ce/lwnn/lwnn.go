// Package lwnn implements the LW-NN estimator (Dutt et al., VLDB 2019): a
// lightweight fully connected network regressing log(1+cardinality) from a
// flat query encoding. Its defining property in the paper's experiments is
// extremely low inference latency (a single small forward pass), traded
// against accuracy on complex join distributions.
package lwnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/ce"
	"repro/internal/nn"
	"repro/internal/workload"
)

func init() {
	// Registry rank 1: the paper's query-driven baseline (2).
	ce.Register(ce.Spec{
		Rank: 1, Name: "LW-NN", Kind: ce.QueryDriven, Candidate: true, Concurrent: true,
		New: func(c ce.Config) ce.Model {
			cfg := DefaultConfig()
			if c.Fast {
				cfg.Epochs = 8
			}
			cfg.Seed = c.Seed + 12
			return New(cfg)
		},
	})
	gob.Register(&Model{})
}

// Config controls LW-NN training.
type Config struct {
	Hidden1, Hidden2 int
	Epochs           int
	LR               float64
	Seed             int64
}

// DefaultConfig returns the configuration used by the testbed. The network
// is deliberately small ("lightweight"), matching the original design.
func DefaultConfig() Config { return Config{Hidden1: 24, Hidden2: 12, Epochs: 30, LR: 5e-3, Seed: 2} }

// Model is a trained LW-NN estimator.
type Model struct {
	cfg Config
	enc *workload.Encoder
	net *nn.MLP
}

// New returns an untrained LW-NN model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "LW-NN" }

// Fit implements ce.Model (query-driven: consumes Dataset and Queries).
// Queries are encoded once, and the minibatch training graph is recorded
// once per batch size and replayed every step (see nn.Tape).
func (m *Model) Fit(in *ce.TrainInput) error {
	train := in.Queries
	if len(train) == 0 {
		return fmt.Errorf("lwnn: empty training workload")
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.enc = workload.NewEncoder(in.Dataset)
	dim := m.enc.Dim()
	m.net = nn.NewMLP(rng, []int{dim, m.cfg.Hidden1, m.cfg.Hidden2, 1}, nn.ActReLU, nn.ActNone)
	opt := nn.NewAdam(m.net.Params(), m.cfg.LR)

	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, q := range train {
		xs[i] = m.enc.Encode(q)
		ys[i] = workload.LogCard(q.TrueCard)
	}

	const batch = 16
	type batchTape struct {
		x       *nn.Tensor
		targets []float64
		tape    *nn.Tape
	}
	tapes := nn.NewBatchTapes(func(bsz int) *batchTape {
		x := nn.Zeros(bsz, dim)
		targets := make([]float64, bsz)
		return &batchTape{x: x, targets: targets, tape: nn.NewTape(nn.MSE(m.net.Forward(x), targets))}
	})
	order := rng.Perm(len(train))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		// Cooperative cancellation checkpoint: abandon training between
		// epochs when the request deadline carried by the TrainInput fires.
		if err := in.Canceled(); err != nil {
			return err
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			bt := tapes.For(end - start)
			for bi, qi := range order[start:end] {
				copy(bt.x.V[bi*dim:(bi+1)*dim], xs[qi])
				bt.targets[bi] = ys[qi]
			}
			bt.tape.Forward()
			bt.tape.BackwardScalar()
			opt.Step()
		}
	}
	return nil
}

// Estimate implements ce.Estimator with a single forward pass.
func (m *Model) Estimate(q *workload.Query) float64 {
	x := nn.FromRow(m.enc.Encode(q))
	return workload.ExpCard(m.net.Forward(x).Scalar())
}

// EstimateBatch implements ce.Estimator as one vectorized forward pass:
// the batch is encoded into a single matrix and the network runs once.
// The dense kernels compute each output row from its input row alone, so
// every estimate is bit-identical to a per-query Estimate.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	if len(qs) == 0 {
		return nil
	}
	dim := m.enc.Dim()
	x := nn.Zeros(len(qs), dim)
	for i, q := range qs {
		copy(x.V[i*dim:(i+1)*dim], m.enc.Encode(q))
	}
	out := m.net.Forward(x)
	ests := make([]float64, len(qs))
	for i := range ests {
		ests[i] = workload.ExpCard(out.V[i])
	}
	return ests
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg Config
	Enc *workload.Encoder
	Net *nn.MLP
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	if m.net == nil {
		return nil, fmt.Errorf("lwnn: cannot persist an untrained model")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&modelState{Cfg: m.cfg, Enc: m.enc, Net: m.net})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("lwnn: decoding model: %w", err)
	}
	m.cfg, m.enc, m.net = st.Cfg, st.Enc, st.Net
	return nil
}
