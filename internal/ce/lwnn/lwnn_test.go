package lwnn

import (
	"repro/internal/ce"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestTrainingImproves(t *testing.T) {
	p := datagen.DefaultParams(1)
	p.MinRows, p.MaxRows = 250, 400
	d, err := datagen.Generate("l", p)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(120, 2))
	train, test := workload.Split(qs, 0.6, 3)
	eval := func(m *Model) float64 {
		ests := make([]float64, len(test))
		truths := make([]float64, len(test))
		for i, q := range test {
			ests[i] = m.Estimate(q)
			truths[i] = float64(q.TrueCard)
		}
		return metrics.MeanQError(ests, truths)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 0
	untrained := New(cfg)
	if err := untrained.Fit(&ce.TrainInput{Dataset: d, Queries: train}); err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 20
	trained := New(cfg)
	if err := trained.Fit(&ce.TrainInput{Dataset: d, Queries: train}); err != nil {
		t.Fatal(err)
	}
	if eval(trained) >= eval(untrained) {
		t.Fatalf("training did not improve: %g -> %g", eval(untrained), eval(trained))
	}
}

func TestInferenceIsFast(t *testing.T) {
	// LW-NN's defining property: single tiny forward pass. Guard against
	// regressions that would destroy the latency ordering the paper's
	// efficiency experiments rely on.
	p := datagen.DefaultParams(4)
	p.MinRows, p.MaxRows = 200, 300
	d, _ := datagen.Generate("l", p)
	qs := workload.Generate(d, workload.DefaultConfig(80, 5))
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m := New(cfg)
	if err := m.Fit(&ce.TrainInput{Dataset: d, Queries: qs}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	const n = 500
	for i := 0; i < n; i++ {
		m.Estimate(qs[i%len(qs)])
	}
	perEst := time.Since(t0) / n
	if perEst > time.Millisecond {
		t.Fatalf("LW-NN inference %v per estimate; expected microseconds", perEst)
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	p := datagen.DefaultParams(6)
	p.MinRows, p.MaxRows = 100, 150
	d, _ := datagen.Generate("l", p)
	if err := New(DefaultConfig()).Fit(&ce.TrainInput{Dataset: d, Queries: nil}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
