package mscn

import (
	"math"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestTrainingImprovesOverInit(t *testing.T) {
	p := datagen.DefaultParams(1)
	p.Tables = 2
	p.MinRows, p.MaxRows = 250, 400
	d, err := datagen.Generate("m", p)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(120, 2))
	train, test := workload.Split(qs, 0.6, 3)

	eval := func(m *Model) float64 {
		ests := make([]float64, len(test))
		truths := make([]float64, len(test))
		for i, q := range test {
			ests[i] = m.Estimate(q)
			truths[i] = float64(q.TrueCard)
		}
		return metrics.MeanQError(ests, truths)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 0
	untrained := New(cfg)
	if err := untrained.Fit(&ce.TrainInput{Dataset: d, Queries: train}); err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 12
	trained := New(cfg)
	if err := trained.Fit(&ce.TrainInput{Dataset: d, Queries: train}); err != nil {
		t.Fatal(err)
	}
	if eval(trained) >= eval(untrained) {
		t.Fatalf("training did not improve: %g -> %g", eval(untrained), eval(trained))
	}
}

func TestSetEncodingIgnoresPredicateOrder(t *testing.T) {
	p := datagen.DefaultParams(4)
	p.MinRows, p.MaxRows = 200, 300
	p.MinCols, p.MaxCols = 3, 4
	d, err := datagen.Generate("m", p)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(60, 5))
	train, _ := workload.Split(qs, 0.8, 6)
	cfg := DefaultConfig()
	cfg.Epochs = 4
	m := New(cfg)
	if err := m.Fit(&ce.TrainInput{Dataset: d, Queries: train}); err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds: []engine.Predicate{
			{Table: 0, Col: 0, Lo: 2, Hi: 9},
			{Table: 0, Col: 1, Lo: 1, Hi: 5},
		},
	}}
	rev := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds: []engine.Predicate{
			{Table: 0, Col: 1, Lo: 1, Hi: 5},
			{Table: 0, Col: 0, Lo: 2, Hi: 9},
		},
	}}
	a, b := m.Estimate(q), m.Estimate(rev)
	if math.Abs(a-b) > 1e-9*math.Max(a, b) {
		t.Fatalf("predicate order changed the estimate: %g vs %g", a, b)
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	p := datagen.DefaultParams(7)
	p.MinRows, p.MaxRows = 100, 150
	d, _ := datagen.Generate("m", p)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Queries: nil}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
