// Package mscn implements the Multi-Set Convolutional Network estimator
// (Kipf et al., CIDR 2019), the paper's query-driven baseline (1). A query
// is represented as three sets — tables, joins, predicates — each element
// of which is embedded by a set-specific two-layer MLP; the embeddings are
// average-pooled per set, concatenated, and passed through an output MLP
// that regresses log(1+cardinality).
package mscn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/ce"
	"repro/internal/nn"
	"repro/internal/workload"
)

func init() {
	// Registry rank 0: the paper's query-driven baseline (1). Estimate is a
	// pure forward pass over frozen weights, so inference is concurrent.
	ce.Register(ce.Spec{
		Rank: 0, Name: "MSCN", Kind: ce.QueryDriven, Candidate: true, Concurrent: true,
		New: func(c ce.Config) ce.Model {
			cfg := DefaultConfig()
			if c.Fast {
				cfg.Epochs = 6
			}
			cfg.Seed = c.Seed + 11
			return New(cfg)
		},
	})
	gob.Register(&Model{})
}

// Config controls MSCN training.
type Config struct {
	Hidden int     // set-MLP and output-MLP hidden width
	Epochs int     // training epochs over the query set
	LR     float64 // Adam learning rate
	Seed   int64
}

// DefaultConfig returns the configuration used by the testbed. The
// learning rate is tuned for minibatch updates (trainBatch queries per
// Adam step) rather than the historical per-query stepping.
func DefaultConfig() Config { return Config{Hidden: 32, Epochs: 24, LR: 1e-2, Seed: 1} }

// trainBatch is the minibatch size of Fit.
const trainBatch = 8

// Model is a trained MSCN estimator for one dataset.
type Model struct {
	cfg Config
	enc *workload.Encoder

	tableMLP *nn.MLP
	joinMLP  *nn.MLP
	predMLP  *nn.MLP
	outMLP   *nn.MLP

	// Per-element input dims.
	tDim, jDim, pDim int
}

// New returns an untrained MSCN model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "MSCN" }

// setElements builds the per-set element matrices for one query:
// table rows are one-hots over tables, join rows one-hots over FK edges,
// predicate rows (column one-hot, lo, hi).
func (m *Model) setElements(q *workload.Query) (tables, joins, preds *nn.Tensor) {
	tRows := make([][]float64, 0, len(q.Tables))
	for _, ti := range q.Tables {
		row := make([]float64, m.tDim)
		row[ti] = 1
		tRows = append(tRows, row)
	}
	tables = nn.FromRows(tRows)

	flat := m.enc.Encode(q)
	jBase := m.enc.TableDim()
	jRows := make([][]float64, 0, 4)
	// Loop the encoder's true join width: on zero-FK datasets m.jDim is
	// padded to 1 for the MLP input, but flat has no join block there and
	// reading it would mistake the first predicate flag for a join. The
	// empty-set token below covers that case — the same decomposition
	// extractSets feeds the training path.
	for fi := 0; fi < m.enc.JoinDim(); fi++ {
		if flat[jBase+fi] > 0 {
			row := make([]float64, m.jDim)
			row[fi] = 1
			jRows = append(jRows, row)
		}
	}
	if len(jRows) == 0 {
		jRows = append(jRows, make([]float64, m.jDim)) // empty-set token
	}
	joins = nn.FromRows(jRows)

	pBase := m.enc.TableDim() + m.enc.JoinDim()
	nCols := m.enc.PredDim() / 3
	pRows := make([][]float64, 0, len(q.Preds))
	for slot := 0; slot < nCols; slot++ {
		if flat[pBase+3*slot] > 0 {
			row := make([]float64, nCols+2)
			row[slot] = 1
			row[nCols] = flat[pBase+3*slot+1]
			row[nCols+1] = flat[pBase+3*slot+2]
			pRows = append(pRows, row)
		}
	}
	if len(pRows) == 0 {
		pRows = append(pRows, make([]float64, nCols+2))
	}
	preds = nn.FromRows(pRows)
	return tables, joins, preds
}

// forward computes the 1×1 log-cardinality prediction for one query.
func (m *Model) forward(q *workload.Query) *nn.Tensor {
	t, j, p := m.setElements(q)
	tEmb := nn.MeanRows(m.tableMLP.Forward(t))
	jEmb := nn.MeanRows(m.joinMLP.Forward(j))
	pEmb := nn.MeanRows(m.predMLP.Forward(p))
	return m.outMLP.Forward(nn.ConcatCols(tEmb, jEmb, pEmb))
}

func (m *Model) params() []*nn.Tensor {
	var out []*nn.Tensor
	out = append(out, m.tableMLP.Params()...)
	out = append(out, m.joinMLP.Params()...)
	out = append(out, m.predMLP.Params()...)
	out = append(out, m.outMLP.Params()...)
	return out
}

// querySets is the precomputed set representation of one training query.
type querySets struct {
	tables []int        // table ids (one-hot rows of the table set)
	joins  []int        // FK-edge slots (one-hot rows of the join set)
	preds  [][3]float64 // (column slot, lo, hi) rows of the predicate set
	target float64
}

// extractSets builds the set representation from the flat encoding, the
// same decomposition setElements performs per query at inference time.
func (m *Model) extractSets(q *workload.Query) querySets {
	var s querySets
	s.tables = append(s.tables, q.Tables...)
	flat := m.enc.Encode(q)
	jBase := m.enc.TableDim()
	for fi := 0; fi < m.enc.JoinDim(); fi++ {
		if flat[jBase+fi] > 0 {
			s.joins = append(s.joins, fi)
		}
	}
	pBase := m.enc.TableDim() + m.enc.JoinDim()
	nCols := m.enc.PredDim() / 3
	for slot := 0; slot < nCols; slot++ {
		if flat[pBase+3*slot] > 0 {
			s.preds = append(s.preds, [3]float64{float64(slot), flat[pBase+3*slot+1], flat[pBase+3*slot+2]})
		}
	}
	s.target = workload.LogCard(q.TrueCard)
	return s
}

// batchTape is the recorded minibatch training graph for one batch size.
// Each query owns a fixed-capacity row range in every set matrix; the
// pooling matrices hold 1/count weights on the filled rows (or weight 1 on
// a zero row for an empty set, the empty-set token), so the pooled
// embeddings match per-query mean pooling exactly while the whole batch
// runs as three dense matrix multiplies.
type batchTape struct {
	bsz        int
	xT, xJ, xP *nn.Tensor // stacked set-element matrices
	pT, pJ, pP *nn.Tensor // constant pooling matrices (bsz × bsz*cap)
	targets    []float64
	tape       *nn.Tape
}

// Fit implements ce.Model (query-driven: consumes Dataset and Queries):
// true minibatch training over padded set matrices, with the graph
// recorded once per batch size and replayed every step.
func (m *Model) Fit(in *ce.TrainInput) error {
	train := in.Queries
	if len(train) == 0 {
		return fmt.Errorf("mscn: empty training workload")
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.enc = workload.NewEncoder(in.Dataset)
	m.tDim = m.enc.TableDim()
	m.jDim = m.enc.JoinDim()
	if m.jDim == 0 {
		m.jDim = 1
	}
	nCols := m.enc.PredDim() / 3
	m.pDim = nCols + 2
	h := m.cfg.Hidden
	m.tableMLP = nn.NewMLP(rng, []int{m.tDim, h, h}, nn.ActReLU, nn.ActReLU)
	m.joinMLP = nn.NewMLP(rng, []int{m.jDim, h, h}, nn.ActReLU, nn.ActReLU)
	m.predMLP = nn.NewMLP(rng, []int{m.pDim, h, h}, nn.ActReLU, nn.ActReLU)
	m.outMLP = nn.NewMLP(rng, []int{3 * h, h, 1}, nn.ActReLU, nn.ActNone)

	sets := make([]querySets, len(train))
	for qi, q := range train {
		sets[qi] = m.extractSets(q)
	}
	// Per-query row capacities: a query references at most every table,
	// every FK edge, and every column slot once.
	tCap, jCap, pCap := max(m.tDim, 1), max(m.jDim, 1), max(nCols, 1)

	build := func(bsz int) *batchTape {
		bt := &batchTape{
			bsz:     bsz,
			xT:      nn.Zeros(bsz*tCap, m.tDim),
			xJ:      nn.Zeros(bsz*jCap, m.jDim),
			xP:      nn.Zeros(bsz*pCap, m.pDim),
			pT:      nn.Zeros(bsz, bsz*tCap),
			pJ:      nn.Zeros(bsz, bsz*jCap),
			pP:      nn.Zeros(bsz, bsz*pCap),
			targets: make([]float64, bsz),
		}
		tEmb := nn.MatMul(bt.pT, m.tableMLP.Forward(bt.xT))
		jEmb := nn.MatMul(bt.pJ, m.joinMLP.Forward(bt.xJ))
		pEmb := nn.MatMul(bt.pP, m.predMLP.Forward(bt.xP))
		pred := m.outMLP.Forward(nn.ConcatCols(tEmb, jEmb, pEmb))
		bt.tape = nn.NewTape(nn.MSE(pred, bt.targets))
		return bt
	}
	fill := func(bt *batchTape, batch []int) {
		for _, t := range []*nn.Tensor{bt.xT, bt.xJ, bt.xP, bt.pT, bt.pJ, bt.pP} {
			for i := range t.V {
				t.V[i] = 0
			}
		}
		for bi, qi := range batch {
			s := &sets[qi]
			fillSet(bt.pT.V, bi, bt.bsz*tCap, bi*tCap, len(s.tables))
			for k, ti := range s.tables {
				bt.xT.V[(bi*tCap+k)*m.tDim+ti] = 1
			}
			fillSet(bt.pJ.V, bi, bt.bsz*jCap, bi*jCap, len(s.joins))
			for k, fi := range s.joins {
				bt.xJ.V[(bi*jCap+k)*m.jDim+fi] = 1
			}
			fillSet(bt.pP.V, bi, bt.bsz*pCap, bi*pCap, len(s.preds))
			for k, pr := range s.preds {
				row := (bi*pCap + k) * m.pDim
				bt.xP.V[row+int(pr[0])] = 1
				bt.xP.V[row+nCols] = pr[1]
				bt.xP.V[row+nCols+1] = pr[2]
			}
			bt.targets[bi] = s.target
		}
	}

	opt := nn.NewAdam(m.params(), m.cfg.LR)
	tapes := nn.NewBatchTapes(build)
	order := rng.Perm(len(train))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		// Cooperative cancellation checkpoint: abandon training between
		// epochs when the request deadline carried by the TrainInput fires.
		if err := in.Canceled(); err != nil {
			return err
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += trainBatch {
			end := start + trainBatch
			if end > len(order) {
				end = len(order)
			}
			bt := tapes.For(end - start)
			fill(bt, order[start:end])
			bt.tape.Forward()
			bt.tape.BackwardScalar()
			opt.Step()
		}
	}
	return nil
}

// fillSet writes one query's pooling-row weights: 1/cnt over the cnt
// filled rows, or weight 1 on the query's first (zero) row when the set is
// empty — the empty-set token of the per-query path.
func fillSet(pool []float64, bi, stride, rowBase, cnt int) {
	if cnt == 0 {
		pool[bi*stride+rowBase] = 1
		return
	}
	w := 1 / float64(cnt)
	for k := 0; k < cnt; k++ {
		pool[bi*stride+rowBase+k] = w
	}
}

// Estimate implements ce.Estimator.
func (m *Model) Estimate(q *workload.Query) float64 {
	return workload.ExpCard(m.forward(q).Scalar())
}

// EstimateBatch implements ce.Estimator as one vectorized pass: every
// query's set elements are stacked into three shared matrices, each
// set-MLP runs once over its stack, the per-query mean pooling replicates
// nn.MeanRows' arithmetic over each query's row span, and the output MLP
// runs once over the pooled batch. Dense-kernel rows are computed
// independently and pooling sums rows in the same ascending order as the
// per-query path, so every estimate is bit-identical to Estimate.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	if len(qs) == 0 {
		return nil
	}
	type span struct{ start, n int }
	tSpans := make([]span, len(qs))
	jSpans := make([]span, len(qs))
	pSpans := make([]span, len(qs))
	tEls := make([]*nn.Tensor, len(qs))
	jEls := make([]*nn.Tensor, len(qs))
	pEls := make([]*nn.Tensor, len(qs))
	var tRows, jRows, pRows int
	for i, q := range qs {
		t, j, p := m.setElements(q)
		tEls[i], jEls[i], pEls[i] = t, j, p
		tSpans[i] = span{tRows, t.R}
		jSpans[i] = span{jRows, j.R}
		pSpans[i] = span{pRows, p.R}
		tRows += t.R
		jRows += j.R
		pRows += p.R
	}
	stack := func(els []*nn.Tensor, rows, dim int) *nn.Tensor {
		x := nn.Zeros(rows, dim)
		off := 0
		for _, e := range els {
			copy(x.V[off:off+len(e.V)], e.V)
			off += len(e.V)
		}
		return x
	}
	hT := m.tableMLP.Forward(stack(tEls, tRows, m.tDim))
	hJ := m.joinMLP.Forward(stack(jEls, jRows, m.jDim))
	hP := m.predMLP.Forward(stack(pEls, pRows, m.pDim))

	h := hT.C
	pooled := nn.Zeros(len(qs), 3*h)
	meanInto := func(dst []float64, src *nn.Tensor, sp span) {
		// Sum the span's rows in ascending order, then multiply by the
		// reciprocal — exactly nn.MeanRows (SumRows + Scale) on the
		// per-query matrix.
		for r := sp.start; r < sp.start+sp.n; r++ {
			row := src.V[r*src.C : (r+1)*src.C]
			for j, v := range row {
				dst[j] += v
			}
		}
		s := 1 / float64(sp.n)
		for j := range dst[:src.C] {
			dst[j] *= s
		}
	}
	for i := range qs {
		row := pooled.V[i*3*h : (i+1)*3*h]
		meanInto(row[:h], hT, tSpans[i])
		meanInto(row[h:2*h], hJ, jSpans[i])
		meanInto(row[2*h:], hP, pSpans[i])
	}
	out := m.outMLP.Forward(pooled)
	ests := make([]float64, len(qs))
	for i := range ests {
		ests[i] = workload.ExpCard(out.V[i])
	}
	return ests
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg              Config
	Enc              *workload.Encoder
	Table, Join      *nn.MLP
	Pred, Out        *nn.MLP
	TDim, JDim, PDim int
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	if m.enc == nil {
		return nil, fmt.Errorf("mscn: cannot persist an untrained model")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&modelState{
		Cfg: m.cfg, Enc: m.enc,
		Table: m.tableMLP, Join: m.joinMLP, Pred: m.predMLP, Out: m.outMLP,
		TDim: m.tDim, JDim: m.jDim, PDim: m.pDim,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("mscn: decoding model: %w", err)
	}
	m.cfg, m.enc = st.Cfg, st.Enc
	m.tableMLP, m.joinMLP, m.predMLP, m.outMLP = st.Table, st.Join, st.Pred, st.Out
	m.tDim, m.jDim, m.pDim = st.TDim, st.JDim, st.PDim
	return nil
}
