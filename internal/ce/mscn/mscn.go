// Package mscn implements the Multi-Set Convolutional Network estimator
// (Kipf et al., CIDR 2019), the paper's query-driven baseline (1). A query
// is represented as three sets — tables, joins, predicates — each element
// of which is embedded by a set-specific two-layer MLP; the embeddings are
// average-pooled per set, concatenated, and passed through an output MLP
// that regresses log(1+cardinality).
package mscn

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/workload"
)

// Config controls MSCN training.
type Config struct {
	Hidden int     // set-MLP and output-MLP hidden width
	Epochs int     // training epochs over the query set
	LR     float64 // Adam learning rate
	Seed   int64
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config { return Config{Hidden: 32, Epochs: 24, LR: 5e-3, Seed: 1} }

// Model is a trained MSCN estimator for one dataset.
type Model struct {
	cfg Config
	enc *workload.Encoder

	tableMLP *nn.MLP
	joinMLP  *nn.MLP
	predMLP  *nn.MLP
	outMLP   *nn.MLP

	// Per-element input dims.
	tDim, jDim, pDim int
}

// New returns an untrained MSCN model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "MSCN" }

// setElements builds the per-set element matrices for one query:
// table rows are one-hots over tables, join rows one-hots over FK edges,
// predicate rows (column one-hot, lo, hi).
func (m *Model) setElements(q *workload.Query) (tables, joins, preds *nn.Tensor) {
	tRows := make([][]float64, 0, len(q.Tables))
	for _, ti := range q.Tables {
		row := make([]float64, m.tDim)
		row[ti] = 1
		tRows = append(tRows, row)
	}
	tables = nn.FromRows(tRows)

	flat := m.enc.Encode(q)
	jBase := m.enc.TableDim()
	jRows := make([][]float64, 0, 4)
	for fi := 0; fi < m.jDim; fi++ {
		if flat[jBase+fi] > 0 {
			row := make([]float64, m.jDim)
			row[fi] = 1
			jRows = append(jRows, row)
		}
	}
	if len(jRows) == 0 {
		jRows = append(jRows, make([]float64, m.jDim)) // empty-set token
	}
	joins = nn.FromRows(jRows)

	pBase := m.enc.TableDim() + m.enc.JoinDim()
	nCols := m.enc.PredDim() / 3
	pRows := make([][]float64, 0, len(q.Preds))
	for slot := 0; slot < nCols; slot++ {
		if flat[pBase+3*slot] > 0 {
			row := make([]float64, nCols+2)
			row[slot] = 1
			row[nCols] = flat[pBase+3*slot+1]
			row[nCols+1] = flat[pBase+3*slot+2]
			pRows = append(pRows, row)
		}
	}
	if len(pRows) == 0 {
		pRows = append(pRows, make([]float64, nCols+2))
	}
	preds = nn.FromRows(pRows)
	return tables, joins, preds
}

// forward computes the 1×1 log-cardinality prediction for one query.
func (m *Model) forward(q *workload.Query) *nn.Tensor {
	t, j, p := m.setElements(q)
	tEmb := nn.MeanRows(m.tableMLP.Forward(t))
	jEmb := nn.MeanRows(m.joinMLP.Forward(j))
	pEmb := nn.MeanRows(m.predMLP.Forward(p))
	return m.outMLP.Forward(nn.ConcatCols(tEmb, jEmb, pEmb))
}

func (m *Model) params() []*nn.Tensor {
	var out []*nn.Tensor
	out = append(out, m.tableMLP.Params()...)
	out = append(out, m.joinMLP.Params()...)
	out = append(out, m.predMLP.Params()...)
	out = append(out, m.outMLP.Params()...)
	return out
}

// TrainQueries implements ce.QueryDriven.
func (m *Model) TrainQueries(d *dataset.Dataset, train []*workload.Query) error {
	if len(train) == 0 {
		return fmt.Errorf("mscn: empty training workload")
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.enc = workload.NewEncoder(d)
	m.tDim = m.enc.TableDim()
	m.jDim = m.enc.JoinDim()
	if m.jDim == 0 {
		m.jDim = 1
	}
	m.pDim = m.enc.PredDim()/3 + 2
	h := m.cfg.Hidden
	m.tableMLP = nn.NewMLP(rng, []int{m.tDim, h, h}, nn.ActReLU, nn.ActReLU)
	m.joinMLP = nn.NewMLP(rng, []int{m.jDim, h, h}, nn.ActReLU, nn.ActReLU)
	m.predMLP = nn.NewMLP(rng, []int{m.pDim, h, h}, nn.ActReLU, nn.ActReLU)
	m.outMLP = nn.NewMLP(rng, []int{3 * h, h, 1}, nn.ActReLU, nn.ActNone)

	opt := nn.NewAdam(m.params(), m.cfg.LR)
	order := rng.Perm(len(train))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, qi := range order {
			q := train[qi]
			pred := m.forward(q)
			loss := nn.MSE(pred, []float64{workload.LogCard(q.TrueCard)})
			loss.Backward()
			opt.Step()
		}
	}
	return nil
}

// Estimate implements ce.Estimator.
func (m *Model) Estimate(q *workload.Query) float64 {
	return workload.ExpCard(m.forward(q).Scalar())
}
