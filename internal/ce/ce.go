// Package ce defines the cardinality-estimation model zoo as a pluggable
// registry with a unified model lifecycle.
//
// # Registry
//
// Every estimator package registers a Spec (name, training Kind, candidate
// flag, constructor) at init time; importing repro/internal/ce/zoo pulls in
// the paper's nine baselines. Consumers — the testbed, the experiment
// harness, the advisor baselines, the serving front-end — derive model
// order, names, and candidate sets from the registry (Specs, Names,
// CandidateIndexes), so onboarding a new estimator is one self-registering
// package plus an import line in zoo.
//
// # Lifecycle
//
// A Model is trained with one call, Fit(*TrainInput), whatever its
// training mode: the TrainInput carries the dataset, the join sample, the
// labeled queries, and the shared subset-size table, and the Spec's Kind
// declares which fields the model consumes (the paper's taxonomy:
// query-driven, data-driven, hybrid, plus composite for the ensemble).
// Trained models serve single queries (Estimate) and batches
// (EstimateBatch, the serving hot path — vectorized or parallel where the
// model allows, bit-identical to per-query calls), and persist through gob
// (Persistable, SaveModel/LoadModel, Store) with bit-identical estimates
// after a round trip — sampling-based models carry their RNG stream
// position across the trip (RNG).
//
// # Shared estimator substrate
//
// The remainder of the package is the substrate the data-driven models
// share: column binning over join samples (Binner), per-join-subset
// unfiltered cardinalities (SubsetSizes), predicate-to-bin routing
// (QueryBinRanges), and per-column value bounds for predicates outside the
// sampled join space (ColBounds).
package ce

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

// SubsetKey canonically identifies a set of table indexes: sorted,
// decimal-encoded, comma-terminated. The variable-width encoding is
// unambiguous for any table count (a fixed two-digit scheme silently
// collided once indexes passed two digits).
func SubsetKey(tables []int) string {
	s := append([]int(nil), tables...)
	sort.Ints(s)
	key := make([]byte, 0, len(s)*4)
	for _, t := range s {
		key = strconv.AppendInt(key, int64(t), 10)
		key = append(key, ',')
	}
	return string(key)
}

// ParseSubsetKey inverts SubsetKey, accepting exactly the canonical form:
// each element is a comma-terminated decimal with no sign, no leading
// zeros (except "0" itself), values strictly ascending, and nothing
// trailing. The strictness is load-bearing — subset keys are map keys
// inside persisted artifacts, so two spellings of one subset would split
// its entry; the fuzz harness pins ParseSubsetKey(SubsetKey(x)) == x and
// SubsetKey(ParseSubsetKey(k)) == k for every accepted k.
func ParseSubsetKey(key string) ([]int, error) {
	if key == "" {
		return nil, nil
	}
	if !strings.HasSuffix(key, ",") {
		return nil, fmt.Errorf("ce: subset key %q is not comma-terminated", key)
	}
	parts := strings.Split(key[:len(key)-1], ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return nil, fmt.Errorf("ce: subset key %q: non-canonical element %q", key, p)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("ce: subset key %q: bad element %q", key, p)
		}
		if i > 0 && v <= out[i-1] {
			return nil, fmt.Errorf("ce: subset key %q: elements not strictly ascending", key)
		}
		out[i] = v
	}
	return out, nil
}

// SubsetSizes maps every connected table subset of a dataset to its
// unfiltered join cardinality. Data-driven estimators scale their learned
// join-space selectivities by these sizes to answer queries over partial
// joins; the original systems achieve the same with fanout bookkeeping,
// which this precomputation substitutes at our scale. The fields are
// exported (and the dataset reduced to its row counts) so the table
// serializes inside model artifacts.
type SubsetSizes struct {
	// Sizes maps SubsetKey(tables) to the subset's unfiltered join size.
	Sizes map[string]int64
	// TableRows holds per-table row counts, the fallback factor for
	// subsets that were not precomputed (disconnected table sets).
	TableRows []int64
}

// ComputeSubsetSizes enumerates the connected subsets of d's join graph
// (including singletons) and evaluates their unfiltered join sizes. All
// 2^n evaluations run on one dedicated evaluator over the dataset's shared
// join index: unfiltered acyclic counts reduce to lookups over the
// prehashed per-value multiplicities.
func ComputeSubsetSizes(d *dataset.Dataset) *SubsetSizes {
	ss, _ := ComputeSubsetSizesCtx(context.Background(), d)
	return ss
}

// ComputeSubsetSizesCtx is ComputeSubsetSizes with cooperative
// cancellation: the 2^n mask loop is the longest uninterruptible stretch
// of dataset onboarding, so it checks ctx once per mask and abandons the
// enumeration (returning a nil table and the context's cause) when the
// request deadline fires.
func ComputeSubsetSizesCtx(ctx context.Context, d *dataset.Dataset) (*SubsetSizes, error) {
	ss := &SubsetSizes{Sizes: map[string]int64{}, TableRows: make([]int64, len(d.Tables))}
	for ti, t := range d.Tables {
		ss.TableRows[ti] = int64(t.Rows())
	}
	ev := engine.NewEvaluator(d)
	n := len(d.Tables)
	for mask := 1; mask < 1<<uint(n); mask++ {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		var tables []int
		for t := 0; t < n; t++ {
			if mask&(1<<uint(t)) != 0 {
				tables = append(tables, t)
			}
		}
		if !connected(d, tables) {
			continue
		}
		q := &engine.Query{Tables: tables}
		for _, fk := range d.FKs {
			if inSet(tables, fk.FromTable) && inSet(tables, fk.ToTable) {
				q.Joins = append(q.Joins, engine.Join{
					LeftTable: fk.FromTable, LeftCol: fk.FromCol,
					RightTable: fk.ToTable, RightCol: fk.ToCol,
				})
			}
		}
		ss.Sizes[SubsetKey(tables)] = ev.Cardinality(q)
	}
	return ss, nil
}

// Size returns the unfiltered join size of the given tables; when the
// subset was not precomputed (disconnected), it falls back to the product
// of base-table sizes.
func (ss *SubsetSizes) Size(tables []int) int64 {
	if v, ok := ss.Sizes[SubsetKey(tables)]; ok {
		return v
	}
	prod := int64(1)
	for _, t := range tables {
		prod *= ss.TableRows[t]
	}
	return prod
}

func inSet(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func connected(d *dataset.Dataset, tables []int) bool {
	if len(tables) <= 1 {
		return true
	}
	adj := map[int][]int{}
	for _, fk := range d.FKs {
		if inSet(tables, fk.FromTable) && inSet(tables, fk.ToTable) {
			adj[fk.FromTable] = append(adj[fk.FromTable], fk.ToTable)
			adj[fk.ToTable] = append(adj[fk.ToTable], fk.FromTable)
		}
	}
	seen := map[int]bool{tables[0]: true}
	stack := []int{tables[0]}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[t] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(tables)
}

// ColBounds snapshots every column's value range — the only per-dataset
// state the data-driven estimators need at inference time for predicates
// on columns outside the sampled join space (keys and FK columns), kept
// separate from the dataset so it serializes inside model artifacts.
type ColBounds struct {
	// Lo and Hi are indexed [table][col].
	Lo, Hi [][]int64
}

// NewColBounds captures the bounds of every column of d.
func NewColBounds(d *dataset.Dataset) *ColBounds {
	b := &ColBounds{Lo: make([][]int64, len(d.Tables)), Hi: make([][]int64, len(d.Tables))}
	for ti, t := range d.Tables {
		b.Lo[ti] = make([]int64, t.NumCols())
		b.Hi[ti] = make([]int64, t.NumCols())
		for ci, c := range t.Cols {
			b.Lo[ti][ci], b.Hi[ti][ci] = c.MinMax()
		}
	}
	return b
}

// UniformSel returns the uniform-selectivity fallback of predicate p: the
// fraction of the column's value range the predicate interval overlaps.
func (b *ColBounds) UniformSel(p engine.Predicate) float64 {
	lo, hi := b.Lo[p.Table][p.Col], b.Hi[p.Table][p.Col]
	width := float64(hi-lo) + 1
	if width <= 0 {
		return 1
	}
	ovLo, ovHi := p.Lo, p.Hi
	if lo > ovLo {
		ovLo = lo
	}
	if hi < ovHi {
		ovHi = hi
	}
	ov := float64(ovHi-ovLo) + 1
	if ov <= 0 {
		return 0
	}
	if ov > width {
		ov = width
	}
	return ov / width
}

// Binner discretizes the columns of a join sample into small integer bins;
// the SPN, Bayesian-network and autoregressive estimators all operate on
// this discretized space.
type Binner struct {
	// Edges[j] holds ascending bin upper-bounds for sample column j; a
	// value v maps to the first bin whose edge is >= v.
	Edges [][]int64
}

// NewBinner builds a binner over sample columns with at most maxBins bins
// per column. Columns with few distinct values get one bin per value;
// others get approximate equi-depth bins.
func NewBinner(sample *engine.JoinSample, maxBins int) *Binner {
	b := &Binner{Edges: make([][]int64, len(sample.Cols))}
	for j := range sample.Cols {
		vals := make([]int64, 0, len(sample.Rows))
		for _, r := range sample.Rows {
			vals = append(vals, r[j])
		}
		b.Edges[j] = binEdges(vals, maxBins)
	}
	return b
}

func binEdges(vals []int64, maxBins int) []int64 {
	if len(vals) == 0 {
		return []int64{0}
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	distinct := sorted[:0:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			distinct = append(distinct, v)
		}
	}
	if len(distinct) <= maxBins {
		return distinct
	}
	// Equi-depth: one edge per quantile of the sorted values.
	edges := make([]int64, 0, maxBins)
	for i := 1; i <= maxBins; i++ {
		pos := i*len(sorted)/maxBins - 1
		e := sorted[pos]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	if edges[len(edges)-1] < sorted[len(sorted)-1] {
		edges = append(edges, sorted[len(sorted)-1])
	}
	return edges
}

// NumBins returns the number of bins of column j.
func (b *Binner) NumBins(j int) int { return len(b.Edges[j]) }

// Bin maps a value of column j to its bin index; values above the last
// edge map to the last bin.
func (b *Binner) Bin(j int, v int64) int {
	e := b.Edges[j]
	idx := sort.Search(len(e), func(i int) bool { return e[i] >= v })
	if idx >= len(e) {
		idx = len(e) - 1
	}
	return idx
}

// BinRange returns the inclusive bin range [loBin, hiBin] overlapping the
// value interval [lo, hi] on column j. ok is false when the interval is
// entirely below the first edge boundary in a way that selects nothing.
func (b *Binner) BinRange(j int, lo, hi int64) (loBin, hiBin int, ok bool) {
	if hi < lo {
		return 0, -1, false
	}
	e := b.Edges[j]
	loBin = sort.Search(len(e), func(i int) bool { return e[i] >= lo })
	if loBin >= len(e) {
		return 0, -1, false
	}
	hiBin = sort.Search(len(e), func(i int) bool { return e[i] >= hi })
	if hiBin >= len(e) {
		hiBin = len(e) - 1
	}
	return loBin, hiBin, true
}

// BinRows converts sample rows to bin-index rows.
func (b *Binner) BinRows(sample *engine.JoinSample) [][]int {
	out := make([][]int, len(sample.Rows))
	for i, r := range sample.Rows {
		br := make([]int, len(r))
		for j, v := range r {
			br[j] = b.Bin(j, v)
		}
		out[i] = br
	}
	return out
}

// ColSlots maps every (table, col) of a join sample to its sample-column
// slot; estimators use it to route query predicates to model columns.
func ColSlots(sample *engine.JoinSample) map[[2]int]int {
	m := make(map[[2]int]int, len(sample.Cols))
	for j, cr := range sample.Cols {
		m[[2]int{cr.Table, cr.Col}] = j
	}
	return m
}

// QueryBinRanges resolves a query's predicates to per-sample-column bin
// ranges. Columns without predicates are absent from the map. The second
// return is false when some predicate selects an empty range (estimate 0),
// and the third lists predicates on columns outside the sample (key or FK
// columns), which the caller must handle separately.
func QueryBinRanges(b *Binner, slots map[[2]int]int, q *workload.Query) (map[int][2]int, bool, []engine.Predicate) {
	ranges := map[int][2]int{}
	var unresolved []engine.Predicate
	for _, p := range q.Preds {
		slot, okSlot := slots[[2]int{p.Table, p.Col}]
		if !okSlot {
			unresolved = append(unresolved, p)
			continue
		}
		lo, hi, ok := b.BinRange(slot, p.Lo, p.Hi)
		if !ok {
			return nil, false, nil
		}
		if prev, exists := ranges[slot]; exists {
			if lo < prev[0] {
				lo = prev[0]
			}
			if hi > prev[1] {
				hi = prev[1]
			}
			if lo > hi {
				return nil, false, nil
			}
		}
		ranges[slot] = [2]int{lo, hi}
	}
	return ranges, true, unresolved
}
