// Package flat implements an FSPN-style cardinality estimator in the
// spirit of FLAT (Zhu et al., VLDB 2021), the data-driven model the
// paper's related-work section highlights as one of the few that improve
// PostgreSQL end-to-end. FLAT's defining idea is to *factorize
// adaptively*: highly correlated attribute groups are modeled jointly
// (multi-dimensional histograms), weakly correlated groups are split with
// product nodes — avoiding both the SPN's deep sum hierarchies and the
// full joint's blow-up.
//
// This estimator deliberately does not register itself in the default
// nine-model registry (which mirrors the paper's evaluation); it exists to
// exercise the testbed's extensibility path (testbed.RunWithModels)
// exactly as the paper describes onboarding a newly emerged model. To
// promote a model like this into the zoo, add a ce.Register call in an
// init function (see any registered model package) and import the package
// from repro/internal/ce/zoo.
package flat

import (
	"math"
	"sort"

	"repro/internal/ce"
	"repro/internal/workload"
)

// Config controls FSPN learning.
type Config struct {
	// MaxBins bounds per-column discretization.
	MaxBins int
	// MIThreshold is the mutual-information cutoff: column pairs above it
	// are forced into the same jointly-modeled group.
	MIThreshold float64
	// MaxGroupCols caps a joint group's width (joint histograms grow
	// exponentially in it).
	MaxGroupCols int
	// Alpha is the Laplace smoothing pseudo-count per joint cell.
	Alpha float64
}

// DefaultConfig returns the configuration used in tests and examples.
func DefaultConfig() Config {
	return Config{MaxBins: 12, MIThreshold: 0.15, MaxGroupCols: 3, Alpha: 0.05}
}

// group is one jointly modeled column set: a sparse joint histogram over
// the group's bin tuples. The histogram is stored as parallel slices in
// sorted key order — not a map — so that prob's accumulation order (and
// with it the estimate's float rounding) is identical on every call and
// every run.
type group struct {
	cols  []int     // sample column slots, ascending
	keys  []string  // joint-histogram cell keys, sorted
	cnts  []float64 // cnts[i] is the count of keys[i]
	total float64
	// bins[i] is the bin count of cols[i], for smoothing volume.
	bins []int
}

// Model is a trained FLAT-style estimator.
type Model struct {
	cfg    Config
	bounds *ce.ColBounds
	binner *ce.Binner
	slots  map[[2]int]int
	sizes  *ce.SubsetSizes
	groups []*group

	degenerate bool
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "FLAT" }

// Fit implements ce.Model (data-driven: consumes Dataset, Sample, and the
// shared Sizes when provided).
func (m *Model) Fit(in *ce.TrainInput) error {
	d, sample := in.Dataset, in.Sample
	if len(sample.Rows) == 0 {
		m.degenerate = true
		return nil
	}
	m.bounds = ce.NewColBounds(d)
	m.binner = ce.NewBinner(sample, m.cfg.MaxBins)
	m.slots = ce.ColSlots(sample)
	m.sizes = in.Sizes
	if m.sizes == nil {
		m.sizes = ce.ComputeSubsetSizes(d)
	}
	rows := m.binner.BinRows(sample)
	k := len(sample.Cols)

	// Group columns: union-find over high-MI pairs, respecting the group
	// width cap (widest pairs first would be ideal; simple order is fine
	// at our scale).
	parent := make([]int, k)
	size := make([]int, k)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if pairMI(rows, i, j, m.binner.NumBins(i), m.binner.NumBins(j)) < m.cfg.MIThreshold {
				continue
			}
			ri, rj := find(i), find(j)
			if ri == rj || size[ri]+size[rj] > m.cfg.MaxGroupCols {
				continue
			}
			parent[rj] = ri
			size[ri] += size[rj]
		}
	}
	members := map[int][]int{}
	for c := 0; c < k; c++ {
		r := find(c)
		members[r] = append(members[r], c)
	}
	// Assemble groups in ascending root order: m.groups' order decides the
	// product order in Estimate, and float products round differently under
	// reassociation — iterating the members map directly made two Fits on
	// identical input disagree in the last ulp.
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		cols := members[r]
		g := &group{cols: cols}
		for _, c := range cols {
			g.bins = append(g.bins, m.binner.NumBins(c))
		}
		counts := map[string]float64{}
		for _, row := range rows {
			counts[groupKey(row, cols)]++
			g.total++
		}
		g.keys = make([]string, 0, len(counts))
		for key := range counts {
			g.keys = append(g.keys, key)
		}
		sort.Strings(g.keys)
		g.cnts = make([]float64, len(g.keys))
		for i, key := range g.keys {
			g.cnts[i] = counts[key]
		}
		m.groups = append(m.groups, g)
	}
	return nil
}

func groupKey(row []int, cols []int) string {
	key := make([]byte, 0, len(cols)*2)
	for _, c := range cols {
		key = append(key, byte(row[c]>>8), byte(row[c]))
	}
	return string(key)
}

// prob returns the probability of the bin ranges under one group,
// marginalizing unconstrained member columns: it sums the joint histogram
// over all cells whose constrained coordinates fall in range.
func (g *group) prob(ranges map[int][2]int, alpha float64) float64 {
	constrained := false
	for _, c := range g.cols {
		if _, ok := ranges[c]; ok {
			constrained = true
			break
		}
	}
	if !constrained {
		return 1
	}
	// Smoothing: total cell volume for Laplace correction.
	volume := 1.0
	for _, nb := range g.bins {
		volume *= float64(nb)
	}
	var hits float64
	for i, key := range g.keys {
		if g.keyInRanges(key, ranges) {
			hits += g.cnts[i]
		}
	}
	// Allowed-region volume for the smoothing mass.
	allowed := 1.0
	for i, c := range g.cols {
		if r, ok := ranges[c]; ok {
			w := float64(r[1] - r[0] + 1)
			if max := float64(g.bins[i]); w > max {
				w = max
			}
			allowed *= w
		} else {
			allowed *= float64(g.bins[i])
		}
	}
	return (hits + alpha*allowed) / (g.total + alpha*volume)
}

func (g *group) keyInRanges(key string, ranges map[int][2]int) bool {
	for i, c := range g.cols {
		bin := int(key[2*i])<<8 | int(key[2*i+1])
		if r, ok := ranges[c]; ok {
			if bin < r[0] || bin > r[1] {
				return false
			}
		}
	}
	return true
}

// Estimate implements ce.Estimator: product over group probabilities,
// scaled by the queried subset's unfiltered join size.
func (m *Model) Estimate(q *workload.Query) float64 {
	if m.degenerate {
		return 1
	}
	ranges, ok, unresolved := ce.QueryBinRanges(m.binner, m.slots, q)
	if !ok {
		return 1
	}
	p := 1.0
	for _, g := range m.groups {
		p *= g.prob(ranges, m.cfg.Alpha)
	}
	for _, pr := range unresolved {
		p *= m.bounds.UniformSel(pr)
	}
	est := p * float64(m.sizes.Size(q.Tables))
	if est < 1 {
		return 1
	}
	return est
}

// EstimateBatch implements ce.Estimator with the shared parallel fan-out
// (group evaluation is read-only).
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.ParallelEstimates(m, qs)
}

// NumGroups exposes the factorization width for tests.
func (m *Model) NumGroups() int { return len(m.groups) }

func pairMI(rows [][]int, a, b, na, nb int) float64 {
	joint := make([]float64, na*nb)
	pa := make([]float64, na)
	pb := make([]float64, nb)
	n := float64(len(rows))
	for _, r := range rows {
		joint[r[a]*nb+r[b]]++
		pa[r[a]]++
		pb[r[b]]++
	}
	var mi float64
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			pij := joint[i*nb+j]
			if pij == 0 {
				continue
			}
			mi += pij / n * math.Log(pij*n/(pa[i]*pb[j]))
		}
	}
	return mi
}
