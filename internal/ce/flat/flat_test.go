package flat

import (
	"math"
	"math/rand"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func trained(t *testing.T, d *dataset.Dataset, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sample := engine.SampleJoin(d, 800, rng)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: sample}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGroupsCorrelatedColumnsJointly(t *testing.T) {
	// Columns a and b perfectly coupled, c independent: FLAT must place
	// a,b together and c apart.
	n := 2000
	rng := rand.New(rand.NewSource(1))
	a := make([]int64, n)
	b := make([]int64, n)
	c := make([]int64, n)
	for i := 0; i < n; i++ {
		v := int64(1 + rng.Intn(5))
		a[i], b[i] = v, v
		c[i] = int64(1 + rng.Intn(5))
	}
	d := &dataset.Dataset{Name: "g", Tables: []*dataset.Table{{
		Name: "t", PKCol: -1,
		Cols: []*dataset.Column{
			dataset.NewColumn("a", a), dataset.NewColumn("b", b), dataset.NewColumn("c", c),
		},
	}}}
	m := trained(t, d, 2)
	if m.NumGroups() != 2 {
		t.Fatalf("FLAT built %d groups, want 2 (joint {a,b} and {c})", m.NumGroups())
	}
	// The joint group must capture the coupling: P(a=1, b=2) ~ 0.
	q := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds: []engine.Predicate{
			{Table: 0, Col: 0, Lo: 1, Hi: 1},
			{Table: 0, Col: 1, Lo: 2, Hi: 2},
		},
	}}
	est := m.Estimate(q)
	if est > float64(n)/50 {
		t.Fatalf("coupled-contradiction estimate %g too high for joint modeling", est)
	}
	agree := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds: []engine.Predicate{
			{Table: 0, Col: 0, Lo: 1, Hi: 1},
			{Table: 0, Col: 1, Lo: 1, Hi: 1},
		},
	}}
	if got := m.Estimate(agree); got < float64(n)/10 {
		t.Fatalf("coupled-agreement estimate %g too low", got)
	}
}

func TestAccuracyOnSyntheticData(t *testing.T) {
	p := datagen.DefaultParams(3)
	p.MinRows, p.MaxRows = 300, 500
	d, err := datagen.Generate("f", p)
	if err != nil {
		t.Fatal(err)
	}
	m := trained(t, d, 4)
	qs := workload.Generate(d, workload.DefaultConfig(80, 5))
	ests := make([]float64, len(qs))
	truths := make([]float64, len(qs))
	blind := make([]float64, len(qs))
	for i, q := range qs {
		ests[i] = m.Estimate(q)
		truths[i] = float64(q.TrueCard)
		blind[i] = 1
		if ests[i] < 1 || math.IsNaN(ests[i]) {
			t.Fatalf("estimate %g", ests[i])
		}
	}
	qe := metrics.MeanQError(ests, truths)
	bq := metrics.MeanQError(blind, truths)
	if qe >= bq {
		t.Fatalf("FLAT Q-error %g no better than blind %g", qe, bq)
	}
	if qe > 50 {
		t.Fatalf("FLAT Q-error %g implausible", qe)
	}
}

func TestMonotoneInRangeWidth(t *testing.T) {
	p := datagen.DefaultParams(6)
	p.MinRows, p.MaxRows = 300, 400
	d, _ := datagen.Generate("f", p)
	m := trained(t, d, 7)
	lo, hi := d.Tables[0].Col(0).MinMax()
	prev := 0.0
	for w := int64(0); lo+w <= hi; w += 4 {
		q := &workload.Query{Query: engine.Query{
			Tables: []int{0},
			Preds:  []engine.Predicate{{Table: 0, Col: 0, Lo: lo, Hi: lo + w}},
		}}
		est := m.Estimate(q)
		if est < prev-1e-6 {
			t.Fatalf("estimate decreased when widening range: %g -> %g", prev, est)
		}
		prev = est
	}
}

// TestFitAndEstimateDeterministic is the regression for the two detpath
// findings autoce-vet raised here: group assembly iterated a map (so
// m.groups' order — and with it Estimate's float-product order — varied
// run to run), and prob accumulated histogram counts in map iteration
// order (so a single model could return last-ulp-different estimates for
// the same query on consecutive calls). Both must now be bit-stable.
func TestFitAndEstimateDeterministic(t *testing.T) {
	p := datagen.DefaultParams(11)
	p.MinRows, p.MaxRows = 300, 400
	d, err := datagen.Generate("f", p)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(60, 12))

	// Map iteration order is randomized per range statement, so one
	// agreeing attempt proves nothing — repeat enough times that the old
	// code would essentially always diverge somewhere.
	ref := trained(t, d, 13)
	refEsts := make([]float64, len(qs))
	for i, q := range qs {
		refEsts[i] = ref.Estimate(q)
	}
	for attempt := 0; attempt < 20; attempt++ {
		m := trained(t, d, 13)
		if got, want := len(m.groups), len(ref.groups); got != want {
			t.Fatalf("attempt %d: %d groups, want %d", attempt, got, want)
		}
		for gi, g := range m.groups {
			if len(g.cols) != len(ref.groups[gi].cols) || g.cols[0] != ref.groups[gi].cols[0] {
				t.Fatalf("attempt %d: group %d is %v, want %v", attempt, gi, g.cols, ref.groups[gi].cols)
			}
		}
		for i, q := range qs {
			if got := m.Estimate(q); got != refEsts[i] {
				t.Fatalf("attempt %d: refit estimate %v != %v (bits must match)", attempt, got, refEsts[i])
			}
			// Same model, same query, repeated call: bit-identical.
			if again := ref.Estimate(q); again != refEsts[i] {
				t.Fatalf("attempt %d: repeated estimate %v != %v on one model", attempt, again, refEsts[i])
			}
		}
	}
}

func TestDegenerateSample(t *testing.T) {
	p := datagen.DefaultParams(8)
	p.MinRows, p.MaxRows = 100, 150
	d, _ := datagen.Generate("f", p)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: &engine.JoinSample{}}); err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Query: engine.Query{Tables: []int{0}}}
	if got := m.Estimate(q); got != 1 {
		t.Fatalf("degenerate estimate %g", got)
	}
}
