// Package ensemble implements the paper's baseline (8): an ensemble
// estimator returning the weighted average of all member estimates, with
// weights proportional to each member's accuracy on the training workload
// (inverse mean Q-error).
package ensemble

import (
	"repro/internal/ce"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Model combines trained member estimators.
type Model struct {
	members []ce.Estimator
	weights []float64
}

// New builds an ensemble over the (already trained) members, weighting
// each by the inverse of its mean Q-error on the calibration queries.
// With no calibration queries, members are weighted equally.
func New(members []ce.Estimator, calibration []*workload.Query) *Model {
	m := &Model{members: members, weights: make([]float64, len(members))}
	if len(calibration) == 0 {
		for i := range m.weights {
			m.weights[i] = 1
		}
		return m
	}
	var total float64
	for i, mem := range members {
		ests := make([]float64, len(calibration))
		truths := make([]float64, len(calibration))
		for qi, q := range calibration {
			ests[qi] = mem.Estimate(q)
			truths[qi] = float64(q.TrueCard)
		}
		w := 1 / metrics.MeanQError(ests, truths)
		m.weights[i] = w
		total += w
	}
	for i := range m.weights {
		m.weights[i] /= total
	}
	return m
}

// Name implements ce.Estimator.
func (m *Model) Name() string { return "Ensemble" }

// Estimate implements ce.Estimator as the weighted average of member
// estimates.
func (m *Model) Estimate(q *workload.Query) float64 {
	var est, wsum float64
	for i, mem := range m.members {
		est += m.weights[i] * mem.Estimate(q)
		wsum += m.weights[i]
	}
	if wsum == 0 {
		return 1
	}
	est /= wsum
	if est < 1 {
		return 1
	}
	return est
}

// Weights exposes the calibrated member weights (for tests and reports).
func (m *Model) Weights() []float64 { return append([]float64(nil), m.weights...) }
