// Package ensemble implements the paper's baseline (8): an ensemble
// estimator returning the weighted average of all member estimates, with
// weights proportional to each member's accuracy on the calibration
// workload (inverse mean Q-error).
//
// It registers as the zoo's one Composite model: Fit consumes the trained
// Members (the candidate set) plus calibration Queries, so the testbed
// fits it after the independent training jobs drain.
package ensemble

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/ce"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	// Registry rank 8: measured for the figure/table comparisons but not a
	// selection candidate. Members may be sampling-based (stateful
	// inference), so the ensemble is not concurrent.
	ce.Register(ce.Spec{
		Rank: 8, Name: "Ensemble", Kind: ce.Composite, Candidate: false, Concurrent: false,
		New: func(ce.Config) ce.Model { return New() },
	})
	gob.Register(&Model{})
}

// Model combines trained member estimators.
type Model struct {
	members []ce.Estimator
	weights []float64
}

// New returns an uncalibrated ensemble.
func New() *Model { return &Model{} }

// Fit implements ce.Model (composite: consumes Members and Queries). Each
// member is weighted by the inverse of its mean Q-error on the calibration
// queries, in member order — sampling-based members advance their RNG
// streams exactly as a sequence of per-member Estimate loops would. With
// no calibration queries, members are weighted equally.
func (m *Model) Fit(in *ce.TrainInput) error {
	if len(in.Members) == 0 {
		return fmt.Errorf("ensemble: no trained members to combine")
	}
	m.members = in.Members
	m.weights = make([]float64, len(in.Members))
	calibration := in.Queries
	if len(calibration) == 0 {
		for i := range m.weights {
			m.weights[i] = 1
		}
		return nil
	}
	var total float64
	for i, mem := range in.Members {
		ests := make([]float64, len(calibration))
		truths := make([]float64, len(calibration))
		for qi, q := range calibration {
			ests[qi] = mem.Estimate(q)
			truths[qi] = float64(q.TrueCard)
		}
		w := 1 / metrics.MeanQError(ests, truths)
		m.weights[i] = w
		total += w
	}
	for i := range m.weights {
		m.weights[i] /= total
	}
	return nil
}

// Name implements ce.Estimator.
func (m *Model) Name() string { return "Ensemble" }

// Estimate implements ce.Estimator as the weighted average of member
// estimates.
func (m *Model) Estimate(q *workload.Query) float64 {
	var est, wsum float64
	for i, mem := range m.members {
		est += m.weights[i] * mem.Estimate(q)
		wsum += m.weights[i]
	}
	if wsum == 0 {
		return 1
	}
	est /= wsum
	if est < 1 {
		return 1
	}
	return est
}

// EstimateBatch implements ce.Estimator sequentially: members may be
// sampling-based models whose estimate streams must stay in per-query
// order.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.SerialEstimates(m, qs)
}

// Weights exposes the calibrated member weights (for tests and reports).
func (m *Model) Weights() []float64 { return append([]float64(nil), m.weights...) }

// modelState is the gob form of a calibrated ensemble. Members serialize
// as gob interface values; every registered model calls gob.Register on
// its concrete type at init, so the artifact embeds the members' own
// encodings (including their RNG stream positions).
type modelState struct {
	Members []ce.Estimator
	Weights []float64
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	if len(m.members) == 0 {
		return nil, fmt.Errorf("ensemble: cannot persist an uncalibrated ensemble")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&modelState{Members: m.members, Weights: m.weights})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("ensemble: decoding model: %w", err)
	}
	if len(st.Members) != len(st.Weights) {
		return fmt.Errorf("ensemble: %d members for %d weights", len(st.Members), len(st.Weights))
	}
	m.members, m.weights = st.Members, st.Weights
	return nil
}
