package pglike

import (
	"math"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestHistogramSelectivityBounds(t *testing.T) {
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(i%100 + 1)
	}
	h := NewHistogram(data, 16)
	if got := h.Selectivity(1, 100); math.Abs(got-1) > 0.01 {
		t.Fatalf("full-range selectivity %g", got)
	}
	if got := h.Selectivity(1, 50); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("half-range selectivity %g", got)
	}
	if got := h.Selectivity(200, 300); got != 0 {
		t.Fatalf("out-of-range selectivity %g", got)
	}
	if got := h.Selectivity(50, 10); got != 0 {
		t.Fatalf("inverted-range selectivity %g", got)
	}
	if h.NDV != 100 {
		t.Fatalf("NDV %d", h.NDV)
	}
}

func TestHistogramMonotoneInRange(t *testing.T) {
	data := make([]int64, 500)
	for i := range data {
		data[i] = int64((i*i)%77 + 1)
	}
	h := NewHistogram(data, 8)
	prev := 0.0
	for hi := int64(1); hi <= 77; hi += 5 {
		got := h.Selectivity(1, hi)
		if got < prev-1e-9 {
			t.Fatalf("selectivity decreased when widening range: %g -> %g", prev, got)
		}
		prev = got
	}
}

func TestEstimateSingleTable(t *testing.T) {
	p := datagen.DefaultParams(1)
	p.MinRows, p.MaxRows = 400, 600
	d, err := datagen.Generate("pg", p)
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: nil}); err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(50, 2))
	ests := make([]float64, len(qs))
	truths := make([]float64, len(qs))
	for i, q := range qs {
		ests[i] = m.Estimate(q)
		truths[i] = float64(q.TrueCard)
		if ests[i] < 1 {
			t.Fatal("estimate below 1")
		}
	}
	// Histogram + independence should be decent on random single tables.
	if qe := metrics.MeanQError(ests, truths); qe > 20 {
		t.Fatalf("mean Q-error %g too high for single-table histograms", qe)
	}
}

func TestEstimateJoinFormula(t *testing.T) {
	// Two tables joined PK-FK with full correlation: |R join S| = |R|
	// (every FK row matches exactly one PK row). The formula
	// |R|*|S|/max(ndv) should be exact here.
	pk := make([]int64, 100)
	fk := make([]int64, 500)
	for i := range pk {
		pk[i] = int64(i + 1)
	}
	for i := range fk {
		fk[i] = int64(i%100 + 1)
	}
	d := &dataset.Dataset{
		Name: "j",
		Tables: []*dataset.Table{
			{Name: "dim", Cols: []*dataset.Column{dataset.NewColumn("id", pk)}, PKCol: 0},
			{Name: "fact", Cols: []*dataset.Column{dataset.NewColumn("fk", fk)}, PKCol: -1},
		},
		FKs: []dataset.ForeignKey{{FromTable: 1, FromCol: 0, ToTable: 0, ToCol: 0, Correlation: 1}},
	}
	m := New()
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: nil}); err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Query: engine.Query{
		Tables: []int{0, 1},
		Joins:  []engine.Join{{LeftTable: 1, LeftCol: 0, RightTable: 0, RightCol: 0}},
	}}
	got := m.Estimate(q)
	if math.Abs(got-500) > 1 {
		t.Fatalf("join estimate %g, want 500", got)
	}
	if truth := engine.Cardinality(d, &q.Query); truth != 500 {
		t.Fatalf("true join size %d, want 500", truth)
	}
}
