// Package pglike implements a PostgreSQL-style cardinality estimator: per-
// column equi-depth histograms with distinct counts, attribute-value
// independence across predicates, and the textbook PK-FK join selectivity
// 1/max(ndv_left, ndv_right). It is baseline (9) of the paper's Section
// VII-A ("a default PostgreSQL CE estimator") and also serves as the cost
// model's default inside the simulated optimizer.
package pglike

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/ce"
	"repro/internal/resilience"
	"repro/internal/workload"
)

func init() {
	// Registry rank 7: the PostgreSQL-style baseline (9). It is measured
	// for the figure/table comparisons but is not a selection candidate.
	ce.Register(ce.Spec{
		Rank: 7, Name: "Postgres", Kind: ce.DataDriven, Candidate: false, Concurrent: true,
		New: func(ce.Config) ce.Model { return New() },
	})
	gob.Register(&Model{})
}

// Histogram is an equi-depth histogram over one column.
type Histogram struct {
	// Bounds holds ascending bucket upper bounds; bucket i covers
	// (Bounds[i-1], Bounds[i]] with Bounds[-1] = Min-1.
	Bounds []int64
	Min    int64
	Rows   int
	NDV    int
}

// NewHistogram builds an equi-depth histogram with at most buckets buckets.
func NewHistogram(data []int64, buckets int) *Histogram {
	h := &Histogram{Rows: len(data)}
	if len(data) == 0 {
		return h
	}
	sorted := append([]int64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h.Min = sorted[0]
	ndv := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			ndv++
		}
	}
	h.NDV = ndv
	for i := 1; i <= buckets; i++ {
		pos := i*len(sorted)/buckets - 1
		if pos < 0 {
			continue // fewer rows than buckets
		}
		b := sorted[pos]
		if len(h.Bounds) == 0 || b > h.Bounds[len(h.Bounds)-1] {
			h.Bounds = append(h.Bounds, b)
		}
	}
	return h
}

// Selectivity estimates the fraction of rows with value in [lo, hi],
// interpolating linearly within partially covered buckets.
func (h *Histogram) Selectivity(lo, hi int64) float64 {
	if h.Rows == 0 || len(h.Bounds) == 0 || hi < lo {
		return 0
	}
	frac := 1.0 / float64(len(h.Bounds))
	var total float64
	prev := h.Min - 1
	for _, b := range h.Bounds {
		bl, bh := prev+1, b
		prev = b
		if bh < lo || bl > hi {
			continue
		}
		ol := lo
		if bl > ol {
			ol = bl
		}
		oh := hi
		if bh < oh {
			oh = bh
		}
		width := float64(bh - bl + 1)
		if width <= 0 {
			width = 1
		}
		total += frac * float64(oh-ol+1) / width
	}
	if total > 1 {
		total = 1
	}
	return total
}

// Model is a trained PostgreSQL-style estimator for one dataset.
type Model struct {
	rows  []int64        // per-table row counts
	hists [][]*Histogram // [table][col]
	// Buckets is the per-column histogram resolution (default 32).
	Buckets int
}

// New returns an untrained model.
func New() *Model { return &Model{Buckets: 32} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "Postgres" }

// Fit implements ce.Model (data-driven: consumes Dataset), building
// histograms for every column. The join sample is unused: like the real
// system, this model relies only on per-table statistics. Failpoint
// "ce.pglike.fit" injects a training failure (this model is the cheapest
// registered estimator, making it the natural fault-injection tenant).
func (m *Model) Fit(in *ce.TrainInput) error {
	if err := resilience.Failpoint("ce.pglike.fit"); err != nil {
		return fmt.Errorf("pglike: fit: %w", err)
	}
	d := in.Dataset
	m.rows = make([]int64, len(d.Tables))
	m.hists = make([][]*Histogram, len(d.Tables))
	for ti, t := range d.Tables {
		m.rows[ti] = int64(t.Rows())
		m.hists[ti] = make([]*Histogram, t.NumCols())
		for ci, c := range t.Cols {
			m.hists[ti][ci] = NewHistogram(c.Data, m.Buckets)
		}
	}
	return nil
}

// Estimate implements ce.Estimator using independence across predicates
// and 1/max(ndv) per join edge. Failpoint "ce.pglike.estimate" is the
// soak harness's inference-fault site: panic mode exercises the serving
// layer's per-model panic fences, sleep mode its deadlines. (Error mode is
// ignored here — Estimate cannot return one.)
func (m *Model) Estimate(q *workload.Query) float64 {
	_ = resilience.Failpoint("ce.pglike.estimate")
	card := 1.0
	for _, ti := range q.Tables {
		card *= float64(m.rows[ti])
	}
	for _, p := range q.Preds {
		card *= m.hists[p.Table][p.Col].Selectivity(p.Lo, p.Hi)
	}
	for _, j := range q.Joins {
		l := m.hists[j.LeftTable][j.LeftCol].NDV
		r := m.hists[j.RightTable][j.RightCol].NDV
		maxNDV := l
		if r > maxNDV {
			maxNDV = r
		}
		if maxNDV < 1 {
			maxNDV = 1
		}
		card /= float64(maxNDV)
	}
	if card < 1 {
		return 1
	}
	return card
}

// EstimateBatch implements ce.Estimator with the shared parallel fan-out.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.ParallelEstimates(m, qs)
}

// modelState is the gob form of a trained model.
type modelState struct {
	Rows    []int64
	Hists   [][]*Histogram
	Buckets int
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	if m.hists == nil {
		return nil, fmt.Errorf("pglike: cannot persist an untrained model")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&modelState{Rows: m.rows, Hists: m.hists, Buckets: m.Buckets})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("pglike: decoding model: %w", err)
	}
	m.rows, m.hists, m.Buckets = st.Rows, st.Hists, st.Buckets
	return nil
}
