package ce

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

func sampleFixture(t *testing.T, tables int, seed int64) (*dataset.Dataset, *engine.JoinSample) {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 80, MaxRows: 150,
		Domain: 25,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 0.6,
		JoinLo: 0.4, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("ce", p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	return d, engine.SampleJoin(d, 500, rng)
}

func TestSubsetKeyCanonical(t *testing.T) {
	if SubsetKey([]int{2, 0, 1}) != SubsetKey([]int{0, 1, 2}) {
		t.Fatal("SubsetKey not order-invariant")
	}
	if SubsetKey([]int{0}) == SubsetKey([]int{1}) {
		t.Fatal("SubsetKey collides")
	}
}

// The historical fixed-two-digit encoding (byte('0'+t/10)) silently
// collided once table indexes left the two-digit range; the variable-width
// encoding must keep every subset distinct and unambiguous.
func TestSubsetKeyWideIndexes(t *testing.T) {
	// Singletons over a wide index range are pairwise distinct.
	seen := map[string]int{}
	for ti := 0; ti < 3000; ti++ {
		key := SubsetKey([]int{ti})
		if prev, dup := seen[key]; dup {
			t.Fatalf("indexes %d and %d share key %q", prev, ti, key)
		}
		seen[key] = ti
	}
	// Concatenation stays unambiguous: {1,23} vs {12,3} vs {123}.
	keys := []string{
		SubsetKey([]int{1, 23}),
		SubsetKey([]int{12, 3}),
		SubsetKey([]int{123}),
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Fatalf("ambiguous keys: %q == %q", keys[i], keys[j])
			}
		}
	}
	// Multi-element sets with three-digit members, the regression case.
	if SubsetKey([]int{100, 205}) == SubsetKey([]int{100, 206}) {
		t.Fatal("three-digit members collide")
	}
}

func TestComputeSubsetSizesMatchesEngine(t *testing.T) {
	d, _ := sampleFixture(t, 3, 7)
	ss := ComputeSubsetSizes(d)
	// Singletons are table sizes.
	for ti, tbl := range d.Tables {
		if got := ss.Size([]int{ti}); got != int64(tbl.Rows()) {
			t.Fatalf("singleton size %d, want %d", got, tbl.Rows())
		}
	}
	// The full connected set matches the engine.
	all := make([]int, len(d.Tables))
	for i := range all {
		all[i] = i
	}
	q := &engine.Query{Tables: all}
	for _, fk := range d.FKs {
		q.Joins = append(q.Joins, engine.Join{
			LeftTable: fk.FromTable, LeftCol: fk.FromCol,
			RightTable: fk.ToTable, RightCol: fk.ToCol,
		})
	}
	if got := ss.Size(all); got != engine.Cardinality(d, q) {
		t.Fatalf("full-set size %d, engine %d", got, engine.Cardinality(d, q))
	}
}

func TestBinnerExactForSmallDomains(t *testing.T) {
	d, js := sampleFixture(t, 1, 3)
	_ = d
	b := NewBinner(js, 64) // more bins than distinct values: exact binning
	for j := range js.Cols {
		vals := map[int64]bool{}
		for _, r := range js.Rows {
			vals[r[j]] = true
		}
		if b.NumBins(j) != len(vals) {
			t.Fatalf("col %d: %d bins for %d distinct values", j, b.NumBins(j), len(vals))
		}
		// Every value maps to the bin whose edge equals it.
		for v := range vals {
			bin := b.Bin(j, v)
			if b.Edges[j][bin] != v {
				t.Fatalf("col %d: value %d mapped to edge %d", j, v, b.Edges[j][bin])
			}
		}
	}
}

func TestBinnerRangeSemantics(t *testing.T) {
	d, js := sampleFixture(t, 1, 4)
	_ = d
	b := NewBinner(js, 8)
	for j := range js.Cols {
		lo := js.Rows[0][j]
		hi := lo + 5
		binLo, binHi, ok := b.BinRange(j, lo, hi)
		if !ok {
			t.Fatalf("col %d: valid range rejected", j)
		}
		if binLo > binHi {
			t.Fatalf("col %d: inverted bin range", j)
		}
		// Reversed interval selects nothing.
		if _, _, ok := b.BinRange(j, hi, lo); ok && hi != lo {
			t.Fatalf("col %d: reversed interval accepted", j)
		}
	}
}

func TestQueryBinRangesRoutesPredicates(t *testing.T) {
	d, js := sampleFixture(t, 2, 5)
	b := NewBinner(js, 8)
	slots := ColSlots(js)
	// Predicate on a sampled (non-key) column resolves; predicate on the
	// PK column is reported unresolved.
	var pkTable, pkCol = -1, -1
	for ti, tbl := range d.Tables {
		if tbl.PKCol >= 0 {
			pkTable, pkCol = ti, tbl.PKCol
			break
		}
	}
	if pkTable == -1 {
		t.Skip("fixture has no PK")
	}
	cr := js.Cols[0]
	q := &workload.Query{Query: engine.Query{
		Tables: []int{cr.Table, pkTable},
		Preds: []engine.Predicate{
			{Table: cr.Table, Col: cr.Col, Lo: 1, Hi: 100},
			{Table: pkTable, Col: pkCol, Lo: 1, Hi: 10},
		},
	}}
	ranges, ok, unresolved := QueryBinRanges(b, slots, q)
	if !ok {
		t.Fatal("valid query rejected")
	}
	if _, present := ranges[0]; !present {
		t.Fatal("sampled-column predicate not resolved to slot 0")
	}
	if len(unresolved) != 1 || unresolved[0].Table != pkTable {
		t.Fatalf("unresolved = %+v", unresolved)
	}
}
