package ce_test

// Shared integration tests over the whole model zoo: every estimator is
// trained on the same fixtures and must satisfy the same basic contract
// (finite positive estimates, reasonable accuracy on easy data, better
// accuracy than a blind constant guess).

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ce"
	"repro/internal/ce/bayescard"
	"repro/internal/ce/deepdb"
	"repro/internal/ce/ensemble"
	"repro/internal/ce/lwnn"
	"repro/internal/ce/lwxgb"
	"repro/internal/ce/mscn"
	"repro/internal/ce/neurocard"
	"repro/internal/ce/pglike"
	"repro/internal/ce/uae"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

type fixture struct {
	d      *dataset.Dataset
	sample *engine.JoinSample
	train  []*workload.Query
	test   []*workload.Query
}

func makeFixture(t *testing.T, tables int, seed int64) *fixture {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 250, MaxRows: 400,
		Domain: 30,
		SkewLo: 0, SkewHi: 0.8,
		CorrLo: 0, CorrHi: 0.5,
		JoinLo: 0.5, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("zoo", p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	qs := workload.Generate(d, workload.DefaultConfig(120, seed+2))
	train, test := workload.Split(qs, 0.6, seed+3)
	return &fixture{
		d:      d,
		sample: engine.SampleJoin(d, 600, rng),
		train:  train,
		test:   test,
	}
}

func asEstimators(models []ce.Model) []ce.Estimator {
	out := make([]ce.Estimator, len(models))
	for i, m := range models {
		out[i] = m
	}
	return out
}

func trainModel(t *testing.T, m ce.Model, f *fixture) {
	t.Helper()
	in := &ce.TrainInput{Dataset: f.d, Sample: f.sample, Queries: f.train}
	if err := m.Fit(in); err != nil {
		t.Fatalf("training %s: %v", m.Name(), err)
	}
}

func evalModel(m ce.Estimator, qs []*workload.Query) float64 {
	ests := make([]float64, len(qs))
	truths := make([]float64, len(qs))
	for i, q := range qs {
		ests[i] = m.Estimate(q)
		truths[i] = float64(q.TrueCard)
	}
	return metrics.MeanQError(ests, truths)
}

func blindQError(qs []*workload.Query) float64 {
	ests := make([]float64, len(qs))
	truths := make([]float64, len(qs))
	for i, q := range qs {
		ests[i] = 1
		truths[i] = float64(q.TrueCard)
	}
	return metrics.MeanQError(ests, truths)
}

func zoo(seed int64) []ce.Model {
	mc := mscn.DefaultConfig()
	mc.Epochs = 10
	lc := lwnn.DefaultConfig()
	lc.Epochs = 12
	nc := neurocard.DefaultConfig()
	nc.Epochs = 3
	uc := uae.DefaultConfig()
	uc.Epochs = 3
	uc.CorrEpochs = 8
	return []ce.Model{
		mscn.New(mc),
		lwnn.New(lc),
		lwxgb.New(lwxgb.DefaultConfig()),
		deepdb.New(deepdb.DefaultConfig()),
		bayescard.New(bayescard.DefaultConfig()),
		neurocard.New(nc),
		uae.New(uc),
		pglike.New(),
	}
}

func TestZooContractSingleTable(t *testing.T) {
	f := makeFixture(t, 1, 100)
	blind := blindQError(f.test)
	for _, m := range zoo(100) {
		trainModel(t, m, f)
		for _, q := range f.test {
			est := m.Estimate(q)
			if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("%s produced estimate %g", m.Name(), est)
			}
		}
		qe := evalModel(m, f.test)
		if qe >= blind {
			t.Errorf("%s mean Q-error %.2f no better than blind guess %.2f", m.Name(), qe, blind)
		}
		if qe > 100 {
			t.Errorf("%s mean Q-error %.2f implausibly high on an easy table", m.Name(), qe)
		}
	}
}

func TestZooContractMultiTable(t *testing.T) {
	f := makeFixture(t, 3, 200)
	blind := blindQError(f.test)
	for _, m := range zoo(200) {
		trainModel(t, m, f)
		qe := evalModel(m, f.test)
		if math.IsNaN(qe) || math.IsInf(qe, 0) {
			t.Fatalf("%s mean Q-error %g", m.Name(), qe)
		}
		if qe >= blind*2 {
			t.Errorf("%s mean Q-error %.2f far worse than blind %.2f on joins", m.Name(), qe, blind)
		}
	}
}

func TestEnsembleBetweenMembers(t *testing.T) {
	f := makeFixture(t, 1, 300)
	members := zoo(300)[:4]
	for _, m := range members {
		trainModel(t, m, f)
	}
	ens := ensemble.New()
	calib := append([]*workload.Query(nil), f.train[:30]...)
	if err := ens.Fit(&ce.TrainInput{Members: asEstimators(members), Queries: calib}); err != nil {
		t.Fatal(err)
	}
	w := ens.Weights()
	var sum float64
	for _, x := range w {
		if x < 0 {
			t.Fatalf("negative ensemble weight %g", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ensemble weights sum to %g", sum)
	}
	// A weighted average lies between the member extremes.
	for _, q := range f.test[:20] {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, m := range members {
			e := m.Estimate(q)
			lo = math.Min(lo, e)
			hi = math.Max(hi, e)
		}
		e := ens.Estimate(q)
		if e < lo-1e-6 || e > hi+1e-6 {
			t.Fatalf("ensemble estimate %g outside member range [%g, %g]", e, lo, hi)
		}
	}
}

func TestEnsembleEqualWeightsWithoutCalibration(t *testing.T) {
	f := makeFixture(t, 1, 400)
	members := zoo(400)[:2]
	for _, m := range members {
		trainModel(t, m, f)
	}
	ens := ensemble.New()
	if err := ens.Fit(&ce.TrainInput{Members: asEstimators(members)}); err != nil {
		t.Fatal(err)
	}
	w := ens.Weights()
	if w[0] != w[1] {
		t.Fatalf("uncalibrated weights %v", w)
	}
}

func TestDataDrivenMonotoneInRangeWidth(t *testing.T) {
	// Widening a single predicate's range must not decrease the estimate
	// for the closed-form data-driven models (DeepDB, BayesCard).
	f := makeFixture(t, 1, 500)
	models := []ce.Model{deepdb.New(deepdb.DefaultConfig()), bayescard.New(bayescard.DefaultConfig())}
	for _, m := range models {
		trainModel(t, m, f)
	}
	lo, hi := f.d.Tables[0].Col(0).MinMax()
	for _, m := range models {
		prev := 0.0
		for width := int64(0); lo+width <= hi; width += 3 {
			q := &workload.Query{Query: engine.Query{
				Tables: []int{0},
				Preds:  []engine.Predicate{{Table: 0, Col: 0, Lo: lo, Hi: lo + width}},
			}}
			est := m.Estimate(q)
			if est < prev-1e-6 {
				t.Fatalf("%s estimate decreased when widening range: %g -> %g", m.Name(), prev, est)
			}
			prev = est
		}
	}
}

func TestUnfilteredQueryNearFullSize(t *testing.T) {
	// With a full-range predicate the data-driven estimates should be
	// near the table size (probability ~1 times the subset size).
	f := makeFixture(t, 1, 600)
	rows := float64(f.d.Tables[0].Rows())
	lo, hi := f.d.Tables[0].Col(0).MinMax()
	q := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds:  []engine.Predicate{{Table: 0, Col: 0, Lo: lo, Hi: hi}},
	}}
	for _, m := range []ce.Model{deepdb.New(deepdb.DefaultConfig()), bayescard.New(bayescard.DefaultConfig())} {
		trainModel(t, m, f)
		est := m.Estimate(q)
		if est < rows*0.8 || est > rows*1.2 {
			t.Fatalf("%s full-range estimate %g, table has %g rows", m.Name(), est, rows)
		}
	}
}
