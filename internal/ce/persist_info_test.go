package ce_test

// Tests for the store's paging-support surface: artifact probing without a
// model decode (LoadModelInfo / Store.Info), size reporting in List, and
// the load/save accounting a budgeted model cache sits on.

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/ce"
	_ "repro/internal/ce/zoo"
)

func TestLoadModelInfoSkipsModelDecode(t *testing.T) {
	m := trainedPostgres(t, 41)
	var buf bytes.Buffer
	if err := ce.SaveModelSchema(&buf, m, "sig-a"); err != nil {
		t.Fatal(err)
	}
	name, schema, blobBytes, err := ce.LoadModelInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if name != "Postgres" || schema != "sig-a" {
		t.Fatalf("LoadModelInfo = (%q, %q), want (Postgres, sig-a)", name, schema)
	}
	if blobBytes <= 0 || blobBytes >= int64(buf.Len()) {
		t.Fatalf("blob size %d outside (0, %d)", blobBytes, buf.Len())
	}
	// Integrity failures surface identically to a full load.
	raw := buf.Bytes()
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0x40
	if _, _, _, err := ce.LoadModelInfo(bytes.NewReader(flipped)); !errors.Is(err, ce.ErrCorruptArtifact) {
		t.Fatalf("bit-flipped info err = %v, want ErrCorruptArtifact", err)
	}
	if _, _, _, err := ce.LoadModelInfo(bytes.NewReader(raw[:10])); !errors.Is(err, ce.ErrCorruptArtifact) {
		t.Fatalf("truncated info err = %v, want ErrCorruptArtifact", err)
	}
}

func TestStoreInfoAndEntrySize(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := trainedPostgres(t, 42)
	path, err := store.Save("ds1", "sig-1", m)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	schema, size, err := store.Info("ds1", "Postgres")
	if err != nil {
		t.Fatal(err)
	}
	if schema != "sig-1" {
		t.Fatalf("Info schema %q, want sig-1", schema)
	}
	if size != fi.Size() {
		t.Fatalf("Info size %d, stat says %d", size, fi.Size())
	}
	if _, _, err := store.Info("ds1", "NoSuch"); err == nil {
		t.Fatal("Info for a missing artifact did not error")
	}

	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Size != fi.Size() {
		t.Fatalf("List entries %+v, want one entry of %d bytes", entries, fi.Size())
	}
}

func TestStoreStatsAccounting(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := trainedPostgres(t, 43)
	path, err := store.Save("ds", "sig", m)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("ds", "Postgres"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("ds", "Postgres"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("ds", "Missing"); err == nil {
		t.Fatal("loading a missing artifact did not error")
	}

	st := store.Stats()
	if st.Saves != 1 || st.SaveBytes != fi.Size() {
		t.Fatalf("save accounting %+v, want 1 save of %d bytes", st, fi.Size())
	}
	if st.Loads != 2 || st.LoadBytes != 2*fi.Size() {
		t.Fatalf("load accounting %+v, want 2 loads of %d bytes each", st, fi.Size())
	}
	if st.LoadErrors != 1 || st.Corrupt != 0 {
		t.Fatalf("error accounting %+v, want 1 load error, 0 corrupt", st)
	}
}
