package ce_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ce"
	"repro/internal/workload"
)

// countingEstimator records how many queries it was asked to estimate.
type countingEstimator struct{ calls int }

func (c *countingEstimator) Name() string                       { return "counting" }
func (c *countingEstimator) Estimate(q *workload.Query) float64 { c.calls++; return 1 }
func (c *countingEstimator) EstimateBatch(qs []*workload.Query) []float64 {
	c.calls += len(qs)
	return make([]float64, len(qs))
}

func TestEstimateBatchContextCompletes(t *testing.T) {
	est := &countingEstimator{}
	qs := make([]*workload.Query, 1300) // spans three chunks
	out, err := ce.EstimateBatchContext(context.Background(), est, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(qs) || est.calls != len(qs) {
		t.Fatalf("got %d estimates from %d calls, want %d", len(out), est.calls, len(qs))
	}
}

func TestEstimateBatchContextCancels(t *testing.T) {
	est := &countingEstimator{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := make([]*workload.Query, 1300)
	if _, err := ce.EstimateBatchContext(ctx, est, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if est.calls != 0 {
		t.Fatalf("canceled batch still estimated %d queries", est.calls)
	}
}

func TestTrainInputCanceled(t *testing.T) {
	var in ce.TrainInput
	if err := in.Canceled(); err != nil {
		t.Fatalf("nil-ctx input reports %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in.Ctx = ctx
	if err := in.Canceled(); err != nil {
		t.Fatalf("live ctx reports %v", err)
	}
	cancel()
	if err := in.Canceled(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx reports %v", err)
	}
}

func TestParseSubsetKeyRoundTrip(t *testing.T) {
	for _, tables := range [][]int{nil, {0}, {3, 1, 2}, {0, 10, 100}} {
		key := ce.SubsetKey(tables)
		back, err := ce.ParseSubsetKey(key)
		if err != nil {
			t.Fatalf("ParseSubsetKey(%q): %v", key, err)
		}
		if ce.SubsetKey(back) != key {
			t.Fatalf("round trip of %v: %q -> %v", tables, key, back)
		}
	}
}

func TestParseSubsetKeyRejectsNonCanonical(t *testing.T) {
	for _, key := range []string{
		"1",                     // not comma-terminated
		"1,,2,",                 // empty element
		"01,",                   // leading zero
		"2,1,",                  // not ascending
		"1,1,",                  // duplicate
		"-1,",                   // sign
		"a,",                    // not a number
		"1, 2,",                 // interior space
		"99999999999999999999,", // overflow
	} {
		if got, err := ce.ParseSubsetKey(key); err == nil {
			t.Fatalf("ParseSubsetKey(%q) accepted: %v", key, got)
		}
	}
}
