// Package zoo registers the paper's full model zoo: importing it (blank)
// populates ce.Registry with the nine Section VII-A baselines — seven
// selection candidates (MSCN, LW-NN, LW-XGB, DeepDB, BayesCard, NeuroCard,
// UAE) plus the measured-only Postgres and Ensemble baselines — in the
// paper's registry order.
//
// Onboarding a tenth estimator is one self-registering package (a
// ce.Register call in its init) plus an import line here; every consumer —
// the testbed, the experiment harness, the advisor baselines, the serving
// front-end — derives model order, names, and candidate sets from the
// registry.
package zoo

import (
	_ "repro/internal/ce/bayescard"
	_ "repro/internal/ce/deepdb"
	_ "repro/internal/ce/ensemble"
	_ "repro/internal/ce/lwnn"
	_ "repro/internal/ce/lwxgb"
	_ "repro/internal/ce/mscn"
	_ "repro/internal/ce/neurocard"
	_ "repro/internal/ce/pglike"
	_ "repro/internal/ce/uae"
)
