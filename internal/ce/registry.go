package ce

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Kind classifies how an estimator trains, mirroring the paper's taxonomy
// (Section II): query-driven models learn from labeled queries, data-driven
// models from a sample of the full join, hybrid models from both, and
// composite models are assembled from other trained estimators (the
// ensemble baseline).
type Kind int

// The training taxonomy.
const (
	QueryDriven Kind = iota
	DataDriven
	Hybrid
	Composite
)

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k >= QueryDriven && k <= Composite }

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case QueryDriven:
		return "query-driven"
	case DataDriven:
		return "data-driven"
	case Hybrid:
		return "hybrid"
	case Composite:
		return "composite"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config carries the run-level knobs shared by the whole zoo. Each model
// package derives its own configuration from it (training budget under
// Fast, its historical per-model seed offset), so one value configures any
// registered estimator.
type Config struct {
	// Fast shrinks the neural models' training budget, the regime used by
	// unit tests and the quick experiment scale.
	Fast bool
	// Seed is the run seed; models derive their private RNG seeds from it.
	Seed int64
}

// TrainInput bundles everything any model kind consumes; a model's Spec
// Kind declares which fields it reads. All fields are shared read-only
// state: distinct models may Fit concurrently from one TrainInput.
type TrainInput struct {
	// Dataset is the dataset being modeled (all kinds).
	Dataset *dataset.Dataset
	// Sample is a row sample of the full join (data-driven and hybrid).
	Sample *engine.JoinSample
	// Queries are labeled training queries (query-driven and hybrid;
	// calibration workload for composite models).
	Queries []*workload.Query
	// Sizes is the precomputed connected-subset join-size table shared
	// across the data-driven models; when nil, models that need it compute
	// their own.
	Sizes *SubsetSizes
	// Members are the trained estimators a composite model combines.
	Members []Estimator
	// Ctx, when non-nil, bounds the training run. Long-running Fit
	// implementations poll Canceled at their outer loops (per epoch, per
	// boosting round) and return its error to abandon training
	// cooperatively; a nil Ctx trains to completion as before.
	Ctx context.Context
}

// Canceled returns the context error when the TrainInput carries a
// canceled or expired context, nil otherwise. Fit implementations call it
// at iteration boundaries — cheap enough for per-epoch granularity, and a
// no-op for inputs without a context.
func (in *TrainInput) Canceled() error {
	if in.Ctx == nil {
		return nil
	}
	return context.Cause(in.Ctx)
}

// Estimator is a trained cardinality estimator: the serving surface.
type Estimator interface {
	// Name returns the model's registry name (e.g. "MSCN").
	Name() string
	// Estimate returns the estimated cardinality of q (always >= 1).
	Estimate(q *workload.Query) float64
	// EstimateBatch estimates a batch of queries, returning one estimate
	// per query in order. Implementations produce bit-identical values to
	// per-query Estimate calls; models whose inference is stateless run the
	// batch in parallel or as one vectorized pass (the serving hot path),
	// while sampling-based models preserve their sequential RNG stream.
	EstimateBatch(qs []*workload.Query) []float64
}

// Model is the unified lifecycle interface of the zoo: one Fit for every
// training mode, replacing the historical TrainData/TrainQueries/TrainBoth
// triple and its dispatch type-switch.
type Model interface {
	Estimator
	// Fit trains the model from in. Which TrainInput fields are consumed is
	// declared by the model's registered Kind.
	Fit(in *TrainInput) error
}

// Spec describes one registered estimator.
type Spec struct {
	// Rank fixes the model's position in the registry (ascending). The
	// paper's nine baselines occupy ranks 0-8 in the Section VII-A order;
	// new estimators pick any unused rank.
	Rank int
	// Name is the unique display name.
	Name string
	// Kind declares the training mode (which TrainInput fields Fit reads).
	Kind Kind
	// Candidate marks members of the paper's candidate set M — the models
	// the advisor selects among. Non-candidates (Postgres, Ensemble) are
	// measured for the figure/table comparisons only.
	Candidate bool
	// Concurrent reports that Estimate is safe for concurrent use on
	// distinct queries (stateless inference). Sampling-based models that
	// advance an internal RNG are not.
	Concurrent bool
	// New constructs an untrained instance configured for c.
	New func(c Config) Model
}

// registry is the process-wide model zoo, populated by the model packages'
// init functions (import repro/internal/ce/zoo to register the full set).
var registry struct {
	sync.RWMutex
	specs []Spec
}

// Register adds a spec to the registry, keeping specs ordered by Rank. It
// panics on an empty name, an invalid kind, a nil constructor, or a
// duplicate name or rank — registration happens at init time, where a
// panic is an immediate, attributable build error.
func Register(s Spec) {
	if s.Name == "" {
		panic("ce: Register with empty name")
	}
	if !s.Kind.Valid() {
		panic(fmt.Sprintf("ce: Register %q with invalid kind %d", s.Name, int(s.Kind)))
	}
	if s.New == nil {
		panic(fmt.Sprintf("ce: Register %q with nil constructor", s.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	for _, e := range registry.specs {
		if e.Name == s.Name {
			panic(fmt.Sprintf("ce: duplicate registration of %q", s.Name))
		}
		if e.Rank == s.Rank {
			panic(fmt.Sprintf("ce: %q and %q both registered at rank %d", e.Name, s.Name, s.Rank))
		}
	}
	registry.specs = append(registry.specs, s)
	sort.SliceStable(registry.specs, func(i, j int) bool {
		return registry.specs[i].Rank < registry.specs[j].Rank
	})
}

// Specs returns the registered specs in rank order (a copy).
func Specs() []Spec {
	registry.RLock()
	defer registry.RUnlock()
	return append([]Spec(nil), registry.specs...)
}

// NumModels returns the registry size.
func NumModels() int {
	registry.RLock()
	defer registry.RUnlock()
	return len(registry.specs)
}

// Names returns the registry names in rank order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.specs))
	for i, s := range registry.specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	for _, s := range registry.specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Index returns the registry index (rank order) of name, or -1.
func Index(name string) int {
	registry.RLock()
	defer registry.RUnlock()
	for i, s := range registry.specs {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index, panicking on an unknown name.
func MustIndex(name string) int {
	i := Index(name)
	if i < 0 {
		panic(fmt.Sprintf("ce: model %q is not registered", name))
	}
	return i
}

// CandidateIndexes returns the registry indexes of the candidate set M in
// rank order.
func CandidateIndexes() []int {
	registry.RLock()
	defer registry.RUnlock()
	var out []int
	for i, s := range registry.specs {
		if s.Candidate {
			out = append(out, i)
		}
	}
	return out
}

// NumCandidates returns |M|, the candidate-set size.
func NumCandidates() int { return len(CandidateIndexes()) }

// CandidatePos returns the position of registry index ri inside the
// candidate set — the advisor's label/score space — or -1 when ri is not
// a candidate. While the candidates occupy the registry prefix the two
// index spaces coincide; consumers translating between them through this
// helper stay correct if a non-prefix candidate is ever registered.
func CandidatePos(ri int) int {
	for pos, ci := range CandidateIndexes() {
		if ci == ri {
			return pos
		}
	}
	return -1
}

// CandidateIndexesOfKind returns the registry indexes of candidate models
// of kind k, in rank order — the sets the rule-based selection baseline and
// the CEB (query-driven only) experiment derive from the registry.
func CandidateIndexesOfKind(k Kind) []int {
	registry.RLock()
	defer registry.RUnlock()
	var out []int
	for i, s := range registry.specs {
		if s.Candidate && s.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// NewModels instantiates the full registry (rank order) for one run
// configuration. Composite models come back untrained like every other
// entry; they are fitted after their members (see testbed.Prepared.Finish).
func NewModels(c Config) []Model {
	specs := Specs()
	out := make([]Model, len(specs))
	for i, s := range specs {
		out[i] = s.New(c)
	}
	return out
}
