package ce

import (
	"encoding/gob"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// Persistable is a model that can round-trip through gob. Every registered
// estimator implements it; the contract (enforced by the registry
// conformance tests) is that a decoded model produces bit-identical
// estimates to the encoded one, including the continuation of any internal
// sampling stream (see RNG).
type Persistable interface {
	Model
	gob.GobEncoder
	gob.GobDecoder
}

// artifact is the on-wire form of a saved model: the registry name that
// selects the constructor on load, an opaque schema fingerprint of the
// dataset the model was trained on (callers compare it before serving a
// reloaded model against a possibly changed dataset), and the model's own
// gob encoding.
type artifact struct {
	Name   string
	Schema string
	Blob   []byte
}

// SaveModel writes a trained model to w as a self-describing artifact with
// no schema fingerprint; see SaveModelSchema.
func SaveModel(w io.Writer, m Model) error { return SaveModelSchema(w, m, "") }

// SaveModelSchema writes a trained model to w as a self-describing
// artifact carrying an opaque schema fingerprint. The model must be
// registered (its Name selects the decoder) and Persistable.
func SaveModelSchema(w io.Writer, m Model, schema string) error {
	p, ok := m.(Persistable)
	if !ok {
		return fmt.Errorf("ce: model %s does not implement Persistable", m.Name())
	}
	if _, ok := Lookup(m.Name()); !ok {
		return fmt.Errorf("ce: model %s is not registered; artifacts need a registry constructor", m.Name())
	}
	blob, err := p.GobEncode()
	if err != nil {
		return fmt.Errorf("ce: encoding %s: %w", m.Name(), err)
	}
	if err := gob.NewEncoder(w).Encode(&artifact{Name: m.Name(), Schema: schema, Blob: blob}); err != nil {
		return fmt.Errorf("ce: writing %s artifact: %w", m.Name(), err)
	}
	return nil
}

// LoadModel reads an artifact written by SaveModel, constructing the model
// through the registry and restoring its state.
func LoadModel(r io.Reader) (Model, error) {
	m, _, err := LoadModelSchema(r)
	return m, err
}

// LoadModelSchema is LoadModel returning the artifact's recorded schema
// fingerprint as well.
func LoadModelSchema(r io.Reader) (Model, string, error) {
	var a artifact
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, "", fmt.Errorf("ce: reading model artifact: %w", err)
	}
	spec, ok := Lookup(a.Name)
	if !ok {
		return nil, "", fmt.Errorf("ce: artifact names unregistered model %q", a.Name)
	}
	m := spec.New(Config{})
	p, ok := m.(Persistable)
	if !ok {
		return nil, "", fmt.Errorf("ce: registered model %s does not implement Persistable", a.Name)
	}
	if err := p.GobDecode(a.Blob); err != nil {
		return nil, "", fmt.Errorf("ce: decoding %s: %w", a.Name, err)
	}
	return m, a.Schema, nil
}

// Store is a directory of trained-model artifacts keyed by (dataset,
// model). It is the persistence half of the serve lifecycle: /train writes
// an artifact per (dataset, model), and a restarted server reloads them.
// Methods are safe for concurrent use to the extent the filesystem is;
// writes go through a temp file + rename so readers never observe a
// partial artifact.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) an artifact directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ce: opening model store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

const artifactExt = ".cemodel"

// Artifacts live one directory level deep — <dir>/<dataset>/<model>.cemodel
// with both components URL-escaped. PathEscape escapes "/", so arbitrary
// names cannot traverse, and the directory boundary keeps dataset and
// model names unambiguous (a flat "ds__model" scheme would mis-split any
// dataset name containing the separator).
func (s *Store) datasetDir(datasetName string) string {
	return filepath.Join(s.dir, url.PathEscape(datasetName))
}

func (s *Store) path(datasetName, modelName string) string {
	return filepath.Join(s.datasetDir(datasetName), url.PathEscape(modelName)+artifactExt)
}

// Save persists m as the trained model of datasetName, recording schema
// (an opaque dataset fingerprint; may be empty) in the artifact, and
// returns the artifact path.
func (s *Store) Save(datasetName, schema string, m Model) (string, error) {
	dir := s.datasetDir(datasetName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	dst := s.path(datasetName, m.Name())
	tmp, err := os.CreateTemp(dir, "tmp-*"+artifactExt)
	if err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := SaveModelSchema(tmp, m, schema); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	return dst, nil
}

// Load reads the artifact saved for (datasetName, modelName), returning
// the model and the schema fingerprint recorded at save time.
func (s *Store) Load(datasetName, modelName string) (Model, string, error) {
	f, err := os.Open(s.path(datasetName, modelName))
	if err != nil {
		return nil, "", fmt.Errorf("ce: store load: %w", err)
	}
	defer f.Close()
	return LoadModelSchema(f)
}

// Entry identifies one stored artifact.
type Entry struct {
	Dataset, Model string
	Path           string
}

// List enumerates the store's artifacts.
func (s *Store) List() ([]Entry, error) {
	dirs, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ce: store list: %w", err)
	}
	var out []Entry
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		ds, err := url.PathUnescape(d.Name())
		if err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, d.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, artifactExt) || strings.HasPrefix(name, "tmp-") {
				continue
			}
			mn, err := url.PathUnescape(strings.TrimSuffix(name, artifactExt))
			if err != nil {
				continue
			}
			out = append(out, Entry{Dataset: ds, Model: mn,
				Path: filepath.Join(s.dir, d.Name(), name)})
		}
	}
	return out, nil
}
