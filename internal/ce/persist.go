package ce

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/resilience"
)

// Persistable is a model that can round-trip through gob. Every registered
// estimator implements it; the contract (enforced by the registry
// conformance tests) is that a decoded model produces bit-identical
// estimates to the encoded one, including the continuation of any internal
// sampling stream (see RNG).
type Persistable interface {
	Model
	gob.GobEncoder
	gob.GobDecoder
}

// artifact is the on-wire form of a saved model: the registry name that
// selects the constructor on load, an opaque schema fingerprint of the
// dataset the model was trained on (callers compare it before serving a
// reloaded model against a possibly changed dataset), and the model's own
// gob encoding.
type artifact struct {
	Name   string
	Schema string
	Blob   []byte
}

// ErrCorruptArtifact is the sentinel matched (via errors.Is) by every
// integrity failure a model artifact can exhibit: missing or wrong magic,
// truncation, or a checksum mismatch from bit rot. Callers distinguish it
// from transient I/O errors to quarantine the file instead of retrying.
var ErrCorruptArtifact = errors.New("ce: corrupt model artifact")

// Artifact envelope: gob is a stream format with no integrity protection —
// a truncated or bit-flipped artifact can decode into a silently wrong
// model or drive the decoder into pathological states. Every artifact is
// therefore framed as
//
//	magic [8]byte  "CEARTv2\n"
//	size  uint64   little-endian payload length
//	crc   uint32   little-endian CRC-32C (Castagnoli) of the payload
//	payload        gob(artifact)
//
// and LoadModelSchema verifies the frame before any gob decoding happens:
// wrong magic, short payload, or CRC mismatch all surface as
// ErrCorruptArtifact without touching the decoder.
var artifactMagic = [8]byte{'C', 'E', 'A', 'R', 'T', 'v', '2', '\n'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SaveModel writes a trained model to w as a self-describing artifact with
// no schema fingerprint; see SaveModelSchema.
func SaveModel(w io.Writer, m Model) error { return SaveModelSchema(w, m, "") }

// SaveModelSchema writes a trained model to w as a self-describing,
// checksummed artifact carrying an opaque schema fingerprint. The model
// must be registered (its Name selects the decoder) and Persistable.
func SaveModelSchema(w io.Writer, m Model, schema string) error {
	p, ok := m.(Persistable)
	if !ok {
		return fmt.Errorf("ce: model %s does not implement Persistable", m.Name())
	}
	if _, ok := Lookup(m.Name()); !ok {
		return fmt.Errorf("ce: model %s is not registered; artifacts need a registry constructor", m.Name())
	}
	blob, err := p.GobEncode()
	if err != nil {
		return fmt.Errorf("ce: encoding %s: %w", m.Name(), err)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&artifact{Name: m.Name(), Schema: schema, Blob: blob}); err != nil {
		return fmt.Errorf("ce: writing %s artifact: %w", m.Name(), err)
	}
	header := make([]byte, len(artifactMagic)+12)
	copy(header, artifactMagic[:])
	binary.LittleEndian.PutUint64(header[8:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("ce: writing %s artifact: %w", m.Name(), err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("ce: writing %s artifact: %w", m.Name(), err)
	}
	return nil
}

// LoadModel reads an artifact written by SaveModel, constructing the model
// through the registry and restoring its state.
func LoadModel(r io.Reader) (Model, error) {
	m, _, err := LoadModelSchema(r)
	return m, err
}

// maxArtifactPayload rejects envelopes whose declared size is absurd
// before allocating for them — a corrupted size field must not turn a
// reload into an OOM.
const maxArtifactPayload = 1 << 30

// readArtifact verifies the checksummed envelope and decodes the artifact
// wrapper (name, schema, model blob) without touching the model's own gob
// state — the cheap half of a load, shared by LoadModelSchema and
// LoadModelInfo.
func readArtifact(r io.Reader) (*artifact, error) {
	header := make([]byte, len(artifactMagic)+12)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptArtifact, err)
	}
	if !bytes.Equal(header[:8], artifactMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptArtifact, header[:8])
	}
	size := binary.LittleEndian.Uint64(header[8:])
	wantCRC := binary.LittleEndian.Uint32(header[16:])
	if size > maxArtifactPayload {
		return nil, fmt.Errorf("%w: declared payload size %d exceeds %d", ErrCorruptArtifact, size, maxArtifactPayload)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorruptArtifact, err)
	}
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (recorded %08x, computed %08x)", ErrCorruptArtifact, wantCRC, got)
	}
	var a artifact
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&a); err != nil {
		// The checksum held, so the bytes are as written; a gob failure here
		// is a format mismatch, not bit rot — still unusable, still corrupt
		// from the caller's point of view.
		return nil, fmt.Errorf("%w: undecodable payload: %v", ErrCorruptArtifact, err)
	}
	return &a, nil
}

// LoadModelInfo reads only the artifact wrapper — registry name, schema
// fingerprint, and the encoded model's blob size — verifying the envelope
// but skipping the model's own (potentially expensive) gob decode. It is
// the probe a paging model cache uses to register an artifact as
// cold-loadable without actually loading it.
func LoadModelInfo(r io.Reader) (name, schema string, blobBytes int64, err error) {
	a, err := readArtifact(r)
	if err != nil {
		return "", "", 0, err
	}
	return a.Name, a.Schema, int64(len(a.Blob)), nil
}

// LoadModelSchema is LoadModel returning the artifact's recorded schema
// fingerprint as well. Integrity failures — wrong magic, truncation, bit
// flips — return an error matching ErrCorruptArtifact, always before the
// gob decoder sees the payload.
func LoadModelSchema(r io.Reader) (Model, string, error) {
	a, err := readArtifact(r)
	if err != nil {
		return nil, "", err
	}
	spec, ok := Lookup(a.Name)
	if !ok {
		return nil, "", fmt.Errorf("ce: artifact names unregistered model %q", a.Name)
	}
	m := spec.New(Config{})
	p, ok := m.(Persistable)
	if !ok {
		return nil, "", fmt.Errorf("ce: registered model %s does not implement Persistable", a.Name)
	}
	if err := p.GobDecode(a.Blob); err != nil {
		return nil, "", fmt.Errorf("ce: decoding %s: %w", a.Name, err)
	}
	return m, a.Schema, nil
}

// Store is a directory of trained-model artifacts keyed by (dataset,
// model). It is the persistence half of the serve lifecycle: /train writes
// an artifact per (dataset, model), and a restarted server reloads them.
// Methods are safe for concurrent use to the extent the filesystem is;
// writes go through a temp file + rename so readers never observe a
// partial artifact, and reads verify the checksummed envelope — an
// artifact truncated or bit-flipped on disk is quarantined (renamed to
// .corrupt) rather than served, so one rotten file cannot take down a
// fleet reload.
type Store struct {
	dir string

	// Load/save accounting, exposed via Stats: a paging model cache sits on
	// top of the store, and its ops surface (cold loads, write-backs) needs
	// to see how much artifact I/O the paging policy is actually causing.
	saves      atomic.Int64
	saveBytes  atomic.Int64
	loads      atomic.Int64
	loadBytes  atomic.Int64
	loadErrors atomic.Int64
	corrupt    atomic.Int64
}

// StoreStats is a snapshot of a Store's I/O counters since construction.
type StoreStats struct {
	Saves      int64 // successful artifact writes
	SaveBytes  int64 // bytes durably renamed into place
	Loads      int64 // successful artifact reads (cold loads included)
	LoadBytes  int64 // bytes read by successful loads
	LoadErrors int64 // failed loads, corrupt or otherwise
	Corrupt    int64 // loads that quarantined a corrupt artifact
}

// Stats returns the store's cumulative I/O counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Saves:      s.saves.Load(),
		SaveBytes:  s.saveBytes.Load(),
		Loads:      s.loads.Load(),
		LoadBytes:  s.loadBytes.Load(),
		LoadErrors: s.loadErrors.Load(),
		Corrupt:    s.corrupt.Load(),
	}
}

// NewStore opens (creating if needed) an artifact directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ce: opening model store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

const artifactExt = ".cemodel"

// corruptExt is appended to an artifact path when Load detects an
// integrity failure; quarantined files are skipped by List (and therefore
// by startup reloads) but kept on disk for forensics.
const corruptExt = ".corrupt"

// Artifacts live one directory level deep — <dir>/<dataset>/<model>.cemodel
// with both components URL-escaped. PathEscape escapes "/", so arbitrary
// names cannot traverse, and the directory boundary keeps dataset and
// model names unambiguous (a flat "ds__model" scheme would mis-split any
// dataset name containing the separator).
func (s *Store) datasetDir(datasetName string) string {
	return filepath.Join(s.dir, url.PathEscape(datasetName))
}

func (s *Store) path(datasetName, modelName string) string {
	return filepath.Join(s.datasetDir(datasetName), url.PathEscape(modelName)+artifactExt)
}

// Save persists m as the trained model of datasetName, recording schema
// (an opaque dataset fingerprint; may be empty) in the artifact, and
// returns the artifact path. Failpoint "ce.store.save" injects a write
// failure before any bytes land.
func (s *Store) Save(datasetName, schema string, m Model) (string, error) {
	if err := resilience.Failpoint("ce.store.save"); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	dir := s.datasetDir(datasetName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	dst := s.path(datasetName, m.Name())
	tmp, err := os.CreateTemp(dir, "tmp-*"+artifactExt)
	if err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := SaveModelSchema(tmp, m, schema); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", fmt.Errorf("ce: store save: %w", err)
	}
	s.saves.Add(1)
	if fi, err := os.Stat(dst); err == nil {
		s.saveBytes.Add(fi.Size())
	}
	return dst, nil
}

// Info probes the artifact saved for (datasetName, modelName) without
// decoding the model: it verifies the envelope and returns the schema
// fingerprint recorded at save time plus the artifact's size on disk. A
// model cache uses it to register an artifact as cold-loadable (and to
// cost it against a memory budget) while deferring the expensive decode
// to the first estimate that needs the model.
func (s *Store) Info(datasetName, modelName string) (schema string, size int64, err error) {
	path := s.path(datasetName, modelName)
	fi, err := os.Stat(path)
	if err != nil {
		return "", 0, fmt.Errorf("ce: store info: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", 0, fmt.Errorf("ce: store info: %w", err)
	}
	defer f.Close()
	_, schema, _, err = LoadModelInfo(f)
	if err != nil {
		return "", 0, fmt.Errorf("ce: store info: %w", err)
	}
	return schema, fi.Size(), nil
}

// Load reads the artifact saved for (datasetName, modelName), returning
// the model and the schema fingerprint recorded at save time. A corrupt
// artifact (error matching ErrCorruptArtifact) is quarantined: the file is
// renamed to <path>.corrupt so subsequent List/reload passes skip it,
// while the typed error still reaches the caller. Failpoint
// "ce.store.load" injects a read failure.
func (s *Store) Load(datasetName, modelName string) (Model, string, error) {
	if err := resilience.Failpoint("ce.store.load"); err != nil {
		s.loadErrors.Add(1)
		return nil, "", fmt.Errorf("ce: store load: %w", err)
	}
	path := s.path(datasetName, modelName)
	f, err := os.Open(path)
	if err != nil {
		s.loadErrors.Add(1)
		return nil, "", fmt.Errorf("ce: store load: %w", err)
	}
	m, schema, err := LoadModelSchema(f)
	f.Close()
	if errors.Is(err, ErrCorruptArtifact) {
		s.loadErrors.Add(1)
		s.corrupt.Add(1)
		// Quarantine best-effort: losing the rename race (or a read-only
		// filesystem) must not mask the corruption error itself.
		if renameErr := os.Rename(path, path+corruptExt); renameErr == nil {
			return nil, "", fmt.Errorf("ce: store load: quarantined %s: %w", path+corruptExt, err)
		}
		return nil, "", fmt.Errorf("ce: store load: %w", err)
	}
	if err != nil {
		s.loadErrors.Add(1)
		return nil, "", fmt.Errorf("ce: store load: %w", err)
	}
	s.loads.Add(1)
	if fi, statErr := os.Stat(path); statErr == nil {
		s.loadBytes.Add(fi.Size())
	}
	return m, schema, nil
}

// Entry identifies one stored artifact.
type Entry struct {
	Dataset, Model string
	Path           string
	Size           int64 // artifact bytes on disk (0 if stat raced a removal)
}

// List enumerates the store's artifacts. Quarantined (.corrupt) files and
// in-flight temp files are skipped, so a startup reload only sees
// artifacts that were durably renamed into place and not since condemned.
func (s *Store) List() ([]Entry, error) {
	dirs, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ce: store list: %w", err)
	}
	var out []Entry
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		ds, err := url.PathUnescape(d.Name())
		if err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, d.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, artifactExt) || strings.HasPrefix(name, "tmp-") {
				continue
			}
			mn, err := url.PathUnescape(strings.TrimSuffix(name, artifactExt))
			if err != nil {
				continue
			}
			var size int64
			if fi, err := f.Info(); err == nil {
				size = fi.Size()
			}
			out = append(out, Entry{Dataset: ds, Model: mn,
				Path: filepath.Join(s.dir, d.Name(), name), Size: size})
		}
	}
	return out, nil
}
