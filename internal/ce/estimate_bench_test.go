package ce_test

// Benchmarks for the batched estimation hot path — the surface the serving
// front-end (/estimate) and the testbed's measurement loop ride. Each
// vectorized/parallel EstimateBatch is benchmarked against the per-query
// Estimate loop it replaces (the *PerQuery twins), so the batch-vs-loop
// margin stays visible and regression-gated in every checkout.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ce"
	"repro/internal/ce/deepdb"
	"repro/internal/ce/lwnn"
	"repro/internal/ce/mscn"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/workload"
)

const benchBatch = 64

var benchFixtureOnce sync.Once
var benchIn *ce.TrainInput
var benchQueries []*workload.Query

// benchFixture trains lazily and once: the fixture is shared read-only by
// all estimation benchmarks.
func benchFixture(b *testing.B) (*ce.TrainInput, []*workload.Query) {
	b.Helper()
	benchFixtureOnce.Do(func() {
		p := datagen.Params{
			Tables:  2,
			MinCols: 3, MaxCols: 3,
			MinRows: 400, MaxRows: 600,
			Domain: 40,
			SkewLo: 0, SkewHi: 0.8,
			CorrLo: 0, CorrHi: 0.5,
			JoinLo: 0.5, JoinHi: 1,
			Seed: 9001,
		}
		d, err := datagen.Generate("bench", p)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(9002))
		qs := workload.Generate(d, workload.DefaultConfig(benchBatch+60, 9003))
		benchIn = &ce.TrainInput{
			Dataset: d,
			Sample:  engine.SampleJoin(d, 600, rng),
			Queries: qs[benchBatch:],
			Sizes:   ce.ComputeSubsetSizes(d),
		}
		benchQueries = qs[:benchBatch]
	})
	return benchIn, benchQueries
}

func fitBench(b *testing.B, m ce.Model) {
	b.Helper()
	in, _ := benchFixture(b)
	if err := m.Fit(in); err != nil {
		b.Fatal(err)
	}
}

func benchBatchPath(b *testing.B, m ce.Model) {
	_, qs := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ests := m.EstimateBatch(qs)
		if len(ests) != len(qs) {
			b.Fatal("short batch")
		}
	}
}

func benchPerQueryPath(b *testing.B, m ce.Model) {
	_, qs := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if m.Estimate(q) < 1 {
				b.Fatal("estimate < 1")
			}
		}
	}
}

func BenchmarkEstimateBatchLWNN(b *testing.B) {
	cfg := lwnn.DefaultConfig()
	cfg.Epochs = 4
	m := lwnn.New(cfg)
	fitBench(b, m)
	benchBatchPath(b, m)
}

func BenchmarkEstimateBatchLWNNPerQuery(b *testing.B) {
	cfg := lwnn.DefaultConfig()
	cfg.Epochs = 4
	m := lwnn.New(cfg)
	fitBench(b, m)
	benchPerQueryPath(b, m)
}

func BenchmarkEstimateBatchMSCN(b *testing.B) {
	cfg := mscn.DefaultConfig()
	cfg.Epochs = 4
	m := mscn.New(cfg)
	fitBench(b, m)
	benchBatchPath(b, m)
}

func BenchmarkEstimateBatchMSCNPerQuery(b *testing.B) {
	cfg := mscn.DefaultConfig()
	cfg.Epochs = 4
	m := mscn.New(cfg)
	fitBench(b, m)
	benchPerQueryPath(b, m)
}

func BenchmarkEstimateBatchDeepDB(b *testing.B) {
	m := deepdb.New(deepdb.DefaultConfig())
	fitBench(b, m)
	benchBatchPath(b, m)
}

func BenchmarkEstimateBatchDeepDBPerQuery(b *testing.B) {
	m := deepdb.New(deepdb.DefaultConfig())
	fitBench(b, m)
	benchPerQueryPath(b, m)
}
