package ce

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/workload"
)

// singleEstimator is the per-query half of Estimator, the receiver the
// batch helpers fan out over.
type singleEstimator interface {
	Estimate(q *workload.Query) float64
}

// SerialEstimates implements EstimateBatch as an in-order loop — the
// correct default for models whose inference advances internal state (the
// progressive-sampling RNG of NeuroCard/UAE, or an ensemble containing
// them), where the estimate stream must match per-query calls exactly.
func SerialEstimates(e singleEstimator, qs []*workload.Query) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = e.Estimate(q)
	}
	return out
}

// estimateBatchChunk bounds how much work EstimateBatchContext commits to
// between cancellation checks. Batch rows are computed independently, so
// slicing a batch changes nothing about the values (the conformance suite
// pins EstimateBatch ≡ per-query Estimate for every model, chunked or
// not); it only bounds how long a doomed request keeps burning CPU after
// its deadline.
const estimateBatchChunk = 512

// EstimateBatchContext runs est.EstimateBatch under a deadline: the batch
// is processed in estimateBatchChunk-query slices with a cancellation
// check between slices, returning the context's cause (and no estimates)
// once the deadline fires. Results are bit-identical to one
// est.EstimateBatch call — batch estimates are independent per row, so
// chunk boundaries cannot change values. A nil-deadline context degrades
// to plain EstimateBatch plus one atomic load per chunk.
func EstimateBatchContext(ctx context.Context, est Estimator, qs []*workload.Query) ([]float64, error) {
	out := make([]float64, 0, len(qs))
	for start := 0; start < len(qs); start += estimateBatchChunk {
		if err := context.Cause(ctx); err != nil {
			return nil, err
		}
		end := start + estimateBatchChunk
		if end > len(qs) {
			end = len(qs)
		}
		out = append(out, est.EstimateBatch(qs[start:end])...)
	}
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelEstimates implements EstimateBatch by fanning Estimate over a
// GOMAXPROCS-wide worker pool. Each query's estimate is computed by the
// unchanged per-query path, so values are bit-identical to a serial loop
// regardless of scheduling; only models whose Estimate is safe for
// concurrent use (Spec.Concurrent) may use it.
func ParallelEstimates(e singleEstimator, qs []*workload.Query) []float64 {
	out := make([]float64, len(qs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			out[i] = e.Estimate(q)
		}
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// A panic inside a worker would escape any recover on the calling
	// goroutine and kill the process; capture the first one and re-panic
	// it from the caller, where the serving layer's panic fences can
	// quarantine the model instead. The panicking worker exits; surviving
	// workers drain the remaining queries before the re-panic.
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					mu.Lock()
					if panicked == nil {
						panicked = v
					}
					mu.Unlock()
				}
			}()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(qs) {
					return
				}
				out[i] = e.Estimate(qs[i])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}
