package ce

import (
	"runtime"
	"sync"

	"repro/internal/workload"
)

// singleEstimator is the per-query half of Estimator, the receiver the
// batch helpers fan out over.
type singleEstimator interface {
	Estimate(q *workload.Query) float64
}

// SerialEstimates implements EstimateBatch as an in-order loop — the
// correct default for models whose inference advances internal state (the
// progressive-sampling RNG of NeuroCard/UAE, or an ensemble containing
// them), where the estimate stream must match per-query calls exactly.
func SerialEstimates(e singleEstimator, qs []*workload.Query) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = e.Estimate(q)
	}
	return out
}

// ParallelEstimates implements EstimateBatch by fanning Estimate over a
// GOMAXPROCS-wide worker pool. Each query's estimate is computed by the
// unchanged per-query path, so values are bit-identical to a serial loop
// regardless of scheduling; only models whose Estimate is safe for
// concurrent use (Spec.Concurrent) may use it.
func ParallelEstimates(e singleEstimator, qs []*workload.Query) []float64 {
	out := make([]float64, len(qs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			out[i] = e.Estimate(q)
		}
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(qs) {
					return
				}
				out[i] = e.Estimate(qs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
