package lwxgb

import (
	"math"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestTrainAndEstimate(t *testing.T) {
	p := datagen.DefaultParams(1)
	p.Tables = 2
	p.MinRows, p.MaxRows = 250, 400
	d, err := datagen.Generate("x", p)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(150, 2))
	train, test := workload.Split(qs, 0.6, 3)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Queries: train}); err != nil {
		t.Fatal(err)
	}
	ests := make([]float64, len(test))
	truths := make([]float64, len(test))
	for i, q := range test {
		ests[i] = m.Estimate(q)
		truths[i] = float64(q.TrueCard)
		if ests[i] < 1 || math.IsNaN(ests[i]) {
			t.Fatalf("estimate %g", ests[i])
		}
	}
	qe := metrics.MeanQError(ests, truths)
	blind := func() float64 {
		ones := make([]float64, len(test))
		for i := range ones {
			ones[i] = 1
		}
		return metrics.MeanQError(ones, truths)
	}()
	if qe >= blind {
		t.Fatalf("LW-XGB mean Q-error %g no better than blind %g", qe, blind)
	}
}

func TestMoreRoundsDoNotHurtTrainingFit(t *testing.T) {
	p := datagen.DefaultParams(4)
	p.MinRows, p.MaxRows = 200, 300
	d, _ := datagen.Generate("x", p)
	qs := workload.Generate(d, workload.DefaultConfig(100, 5))
	evalTrainFit := func(rounds int) float64 {
		cfg := DefaultConfig()
		cfg.GBT.Rounds = rounds
		m := New(cfg)
		if err := m.Fit(&ce.TrainInput{Dataset: d, Queries: qs}); err != nil {
			t.Fatal(err)
		}
		ests := make([]float64, len(qs))
		truths := make([]float64, len(qs))
		for i, q := range qs {
			ests[i] = m.Estimate(q)
			truths[i] = float64(q.TrueCard)
		}
		return metrics.MeanQError(ests, truths)
	}
	few := evalTrainFit(5)
	many := evalTrainFit(60)
	if many > few*1.05 {
		t.Fatalf("more boosting rounds worsened the training fit: %g -> %g", few, many)
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	p := datagen.DefaultParams(6)
	p.MinRows, p.MaxRows = 100, 150
	d, _ := datagen.Generate("x", p)
	if err := New(DefaultConfig()).Fit(&ce.TrainInput{Dataset: d, Queries: nil}); err == nil {
		t.Fatal("empty workload accepted")
	}
}
