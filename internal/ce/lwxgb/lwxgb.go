// Package lwxgb implements the LW-XGB estimator (Dutt et al., VLDB 2019):
// gradient-boosted regression trees over a flat query encoding, regressing
// log(1+cardinality). It reuses the internal/gbt boosting substrate.
package lwxgb

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/ce"
	"repro/internal/gbt"
	"repro/internal/workload"
)

func init() {
	// Registry rank 2: the paper's query-driven baseline (3). Tree
	// traversal is read-only, so inference is concurrent.
	ce.Register(ce.Spec{
		Rank: 2, Name: "LW-XGB", Kind: ce.QueryDriven, Candidate: true, Concurrent: true,
		New: func(c ce.Config) ce.Model {
			cfg := DefaultConfig()
			if c.Fast {
				cfg.GBT.Rounds = 20
			}
			return New(cfg)
		},
	})
	gob.Register(&Model{})
}

// Config controls LW-XGB training; it wraps the boosting configuration.
type Config struct {
	GBT gbt.Config
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config { return Config{GBT: gbt.DefaultConfig()} }

// Model is a trained LW-XGB estimator.
type Model struct {
	cfg Config
	enc *workload.Encoder
	ens *gbt.Ensemble
}

// New returns an untrained LW-XGB model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "LW-XGB" }

// Fit implements ce.Model (query-driven: consumes Dataset and Queries).
func (m *Model) Fit(in *ce.TrainInput) error {
	train := in.Queries
	if len(train) == 0 {
		return fmt.Errorf("lwxgb: empty training workload")
	}
	m.enc = workload.NewEncoder(in.Dataset)
	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, q := range train {
		xs[i] = m.enc.Encode(q)
		ys[i] = workload.LogCard(q.TrueCard)
	}
	ens, err := gbt.Train(xs, ys, m.cfg.GBT)
	if err != nil {
		return fmt.Errorf("lwxgb: %w", err)
	}
	m.ens = ens
	return nil
}

// Estimate implements ce.Estimator.
func (m *Model) Estimate(q *workload.Query) float64 {
	return workload.ExpCard(m.ens.Predict(m.enc.Encode(q)))
}

// EstimateBatch implements ce.Estimator with the shared parallel fan-out.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.ParallelEstimates(m, qs)
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg Config
	Enc *workload.Encoder
	Ens *gbt.Ensemble
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	if m.ens == nil {
		return nil, fmt.Errorf("lwxgb: cannot persist an untrained model")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&modelState{Cfg: m.cfg, Enc: m.enc, Ens: m.ens})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("lwxgb: decoding model: %w", err)
	}
	m.cfg, m.enc, m.ens = st.Cfg, st.Enc, st.Ens
	return nil
}
