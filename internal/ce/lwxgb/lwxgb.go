// Package lwxgb implements the LW-XGB estimator (Dutt et al., VLDB 2019):
// gradient-boosted regression trees over a flat query encoding, regressing
// log(1+cardinality). It reuses the internal/gbt boosting substrate.
package lwxgb

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbt"
	"repro/internal/workload"
)

// Config controls LW-XGB training; it wraps the boosting configuration.
type Config struct {
	GBT gbt.Config
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config { return Config{GBT: gbt.DefaultConfig()} }

// Model is a trained LW-XGB estimator.
type Model struct {
	cfg Config
	enc *workload.Encoder
	ens *gbt.Ensemble
}

// New returns an untrained LW-XGB model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "LW-XGB" }

// TrainQueries implements ce.QueryDriven.
func (m *Model) TrainQueries(d *dataset.Dataset, train []*workload.Query) error {
	if len(train) == 0 {
		return fmt.Errorf("lwxgb: empty training workload")
	}
	m.enc = workload.NewEncoder(d)
	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, q := range train {
		xs[i] = m.enc.Encode(q)
		ys[i] = workload.LogCard(q.TrueCard)
	}
	ens, err := gbt.Train(xs, ys, m.cfg.GBT)
	if err != nil {
		return fmt.Errorf("lwxgb: %w", err)
	}
	m.ens = ens
	return nil
}

// Estimate implements ce.Estimator.
func (m *Model) Estimate(q *workload.Query) float64 {
	return workload.ExpCard(m.ens.Predict(m.enc.Encode(q)))
}
