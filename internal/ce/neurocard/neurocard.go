// Package neurocard implements a deep autoregressive cardinality estimator
// in the style of NeuroCard (Yang et al., VLDB 2021), the paper's
// data-driven baseline (6). A MADE-style masked network factorizes the
// joint distribution over the binned join-sample columns as
// P(x1..xn) = Π P(xi | x<i); range queries are answered with progressive
// sampling: draw S conditioned samples, accumulating the probability mass
// of the allowed bins column by column.
//
// The per-query sampling loop makes inference structurally the slowest of
// the model zoo — the property the paper's Figure 1(c) and Table V hinge
// on for NeuroCard and UAE.
package neurocard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ce"
	"repro/internal/nn"
	"repro/internal/workload"
)

func init() {
	// Registry rank 5: the paper's data-driven baseline (6). Progressive
	// sampling advances the model's RNG and shares sampler scratch, so
	// inference is NOT concurrent; EstimateBatch stays sequential.
	ce.Register(ce.Spec{
		Rank: 5, Name: "NeuroCard", Kind: ce.DataDriven, Candidate: true, Concurrent: false,
		New: func(c ce.Config) ce.Model {
			cfg := DefaultConfig()
			if c.Fast {
				cfg.Epochs = 2
				cfg.Samples = 24
			}
			cfg.Seed = c.Seed + 14
			return New(cfg)
		},
	})
	gob.Register(&Model{})
}

// Config controls training and progressive sampling.
type Config struct {
	MaxBins int // per-column discretization bound
	Hidden  int // hidden width of the masked network
	Epochs  int
	Batch   int
	LR      float64
	Samples int // progressive-sampling paths per query
	Seed    int64
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config {
	return Config{MaxBins: 12, Hidden: 40, Epochs: 6, Batch: 32, LR: 5e-3, Samples: 48, Seed: 4}
}

// Made is a two-layer MADE network over concatenated one-hot column
// blocks; exported for reuse by the UAE hybrid estimator.
type Made struct {
	// Offsets[i] is the start of column i's block in the input/output.
	Offsets []int
	Bins    []int
	InDim   int

	W1, B1 *nn.Tensor
	W2, B2 *nn.Tensor
	mask1  []float64
	mask2  []float64

	// samp is the cached inference sampler; invalidated by TrainMade.
	samp *Sampler
}

// NewMade builds the masked network for the given per-column bin counts.
// Hidden-unit degrees are assigned round-robin over [0, ncols-1); input
// block of column c has degree c; output block of column c has degree c
// and is connected only to hidden units with degree < c, so column 0's
// logits depend on the bias alone and column i sees exactly columns < i.
func NewMade(rng *rand.Rand, bins []int, hidden int) *Made {
	m := &Made{Bins: bins}
	for _, b := range bins {
		m.Offsets = append(m.Offsets, m.InDim)
		m.InDim += b
	}
	m.W1 = nn.XavierParam(rng, m.InDim, hidden)
	m.B1 = nn.NewParam(1, hidden)
	m.W2 = nn.XavierParam(rng, hidden, m.InDim)
	m.B2 = nn.NewParam(1, m.InDim)
	m.buildMasks(hidden)
	return m
}

// buildMasks derives the autoregressive masks from Bins/Offsets/InDim —
// purely structural state, recomputed rather than serialized on decode.
func (m *Made) buildMasks(hidden int) {
	ncols := len(m.Bins)
	hDeg := make([]int, hidden)
	for h := range hDeg {
		if ncols > 1 {
			hDeg[h] = h % (ncols - 1) // degrees 0..ncols-2
		}
	}
	inDeg := make([]int, m.InDim)
	outDeg := make([]int, m.InDim)
	for c, off := range m.Offsets {
		for j := 0; j < m.Bins[c]; j++ {
			inDeg[off+j] = c
			outDeg[off+j] = c
		}
	}
	m.mask1 = make([]float64, m.InDim*hidden)
	for i := 0; i < m.InDim; i++ {
		for h := 0; h < hidden; h++ {
			if hDeg[h] >= inDeg[i] {
				m.mask1[i*hidden+h] = 1
			}
		}
	}
	m.mask2 = make([]float64, hidden*m.InDim)
	for h := 0; h < hidden; h++ {
		for o := 0; o < m.InDim; o++ {
			if outDeg[o] > hDeg[h] {
				m.mask2[h*m.InDim+o] = 1
			}
		}
	}
}

// madeState is the gob form of a Made network: the weights plus the bin
// layout; offsets and masks are rebuilt on decode.
type madeState struct {
	Bins           []int
	W1, B1, W2, B2 *nn.Tensor
}

// GobEncode implements gob.GobEncoder.
func (m *Made) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&madeState{
		Bins: m.Bins, W1: m.W1, B1: m.B1, W2: m.W2, B2: m.B2,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Made) GobDecode(data []byte) error {
	var st madeState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("neurocard: decoding MADE: %w", err)
	}
	*m = Made{Bins: st.Bins, W1: st.W1, B1: st.B1, W2: st.W2, B2: st.B2}
	for _, b := range st.Bins {
		m.Offsets = append(m.Offsets, m.InDim)
		m.InDim += b
	}
	if m.W1 == nil || m.W1.R != m.InDim {
		return fmt.Errorf("neurocard: MADE weights do not match bin layout")
	}
	m.buildMasks(m.W1.C)
	return nil
}

// Forward returns the full logit matrix for a batch of one-hot rows.
func (m *Made) Forward(x *nn.Tensor) *nn.Tensor {
	h := nn.MaskedAffine(x, m.W1, m.B1, m.mask1, nn.ActReLU)
	return nn.MaskedAffine(h, m.W2, m.B2, m.mask2, nn.ActNone)
}

// Params returns the trainable tensors.
func (m *Made) Params() []*nn.Tensor { return []*nn.Tensor{m.W1, m.B1, m.W2, m.B2} }

// OneHotRow encodes a binned row into the network's input layout.
func (m *Made) OneHotRow(binned []int) []float64 {
	v := make([]float64, m.InDim)
	for c, b := range binned {
		v[m.Offsets[c]+b] = 1
	}
	return v
}

// ColumnDist returns the softmax distribution of column c's logits given
// the (partially filled) one-hot input row.
func (m *Made) ColumnDist(input []float64, c int) []float64 {
	logits := m.Forward(nn.FromRow(input))
	off, nb := m.Offsets[c], m.Bins[c]
	out := make([]float64, nb)
	maxv := math.Inf(-1)
	for j := 0; j < nb; j++ {
		if v := logits.V[off+j]; v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j := 0; j < nb; j++ {
		e := math.Exp(logits.V[off+j] - maxv)
		out[j] = e
		sum += e
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// Model is a trained NeuroCard-style estimator.
type Model struct {
	cfg    Config
	bounds *ce.ColBounds
	binner *ce.Binner
	slots  map[[2]int]int
	sizes  *ce.SubsetSizes
	made   *Made
	// rng drives training and progressive sampling. The counting wrapper
	// produces the exact stdlib stream while making the position
	// serializable, so a gob round trip continues the estimate stream
	// bit-identically.
	rng *ce.RNG

	degenerate bool
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "NeuroCard" }

// Fit implements ce.Model (data-driven: consumes Dataset, Sample, and the
// shared Sizes when provided).
func (m *Model) Fit(in *ce.TrainInput) error {
	d, sample := in.Dataset, in.Sample
	if len(sample.Rows) == 0 {
		m.degenerate = true
		return nil
	}
	m.bounds = ce.NewColBounds(d)
	m.binner = ce.NewBinner(sample, m.cfg.MaxBins)
	m.slots = ce.ColSlots(sample)
	m.sizes = in.Sizes
	if m.sizes == nil {
		m.sizes = ce.ComputeSubsetSizes(d)
	}
	m.rng = ce.NewRNG(m.cfg.Seed)
	rows := m.binner.BinRows(sample)

	bins := make([]int, len(sample.Cols))
	for j := range bins {
		bins[j] = m.binner.NumBins(j)
	}
	m.made = NewMade(m.rng.Rand, bins, m.cfg.Hidden)
	TrainMade(m.made, rows, m.cfg.Epochs, m.cfg.Batch, m.cfg.LR, m.rng.Rand)
	return nil
}

// TrainMade fits a Made network to binned rows by maximum likelihood
// (sum of per-column softmax cross-entropies). Exported for UAE.
//
// The training graph — two fused masked-affine layers plus the fused
// per-column cross-entropy — is recorded once per batch size and replayed
// every step; only the one-hot inputs and target bins are rewritten.
func TrainMade(made *Made, rows [][]int, epochs, batch int, lr float64, rng *rand.Rand) {
	defer func() { made.samp = nil }() // weights changed: invalidate sampler
	opt := nn.NewAdam(made.Params(), lr)
	order := rng.Perm(len(rows))
	ncols := len(made.Bins)
	type batchTape struct {
		x       *nn.Tensor
		targets []int
		tape    *nn.Tape
	}
	tapes := nn.NewBatchTapes(func(bsz int) *batchTape {
		x := nn.Zeros(bsz, made.InDim)
		targets := make([]int, bsz*ncols)
		h := nn.MaskedAffine(x, made.W1, made.B1, made.mask1, nn.ActReLU)
		logits := nn.MaskedAffine(h, made.W2, made.B2, made.mask2, nn.ActNone)
		loss := nn.MadeCrossEntropy(logits, made.Offsets, made.Bins, targets)
		return &batchTape{x: x, targets: targets, tape: nn.NewTape(loss)}
	})
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			bt := tapes.For(end - start)
			for i := range bt.x.V {
				bt.x.V[i] = 0
			}
			for bi, ri := range order[start:end] {
				base := bi * made.InDim
				for c, b := range rows[ri] {
					bt.x.V[base+made.Offsets[c]+b] = 1
					bt.targets[bi*ncols+c] = b
				}
			}
			bt.tape.Forward()
			bt.tape.BackwardScalar()
			opt.Step()
		}
	}
}

// Sampler is an allocation-light vectorized inference path for
// progressive sampling. A full Made.Forward per column rebuilds the whole
// autodiff graph and multiplies the entire masked network even though
// progressive sampling only ever (a) adds one observed one-hot input at a
// time and (b) reads one column block of logits. The sampler snapshots the
// masked weights once, maintains every path's hidden pre-activation
// incrementally as columns are observed, and advances all S sampling paths
// through a column together, so each column costs O(S·hidden·bins) with a
// zero-skip over the ReLU-sparse hidden units instead of S full network
// passes.
//
// A Sampler reads frozen weights: train first, then sample. It is not safe
// for concurrent use (shared path scratch), matching the model's rng.
type Sampler struct {
	made   *Made
	hidden int
	w1m    []float64 // InDim×hidden, W1∘mask1
	w2m    []float64 // hidden×InDim, W2∘mask2
	// colUnits[c] lists the hidden units whose mask2 block for column c is
	// nonzero (units of autoregressive degree < c): the only units that
	// can move column c's logits. Column 0 has none by construction.
	colUnits [][]int

	// Per-path scratch, grown to the largest requested path count.
	pre   []float64 // paths×hidden pre-activation accumulators
	dist  []float64 // per-column distribution scratch (max bins)
	pathP []float64 // paths accumulated probabilities (0 = dead path)
}

// NewSampler snapshots the trained network for inference.
func (m *Made) NewSampler() *Sampler {
	hidden := m.W1.C
	s := &Sampler{made: m, hidden: hidden}
	s.w1m = make([]float64, len(m.W1.V))
	for i, v := range m.W1.V {
		s.w1m[i] = v * m.mask1[i]
	}
	s.w2m = make([]float64, len(m.W2.V))
	for i, v := range m.W2.V {
		s.w2m[i] = v * m.mask2[i]
	}
	s.colUnits = make([][]int, len(m.Bins))
	for c, off := range m.Offsets {
		for i := 0; i < hidden; i++ {
			if m.mask2[i*m.InDim+off] != 0 {
				s.colUnits[c] = append(s.colUnits[c], i)
			}
		}
	}
	maxb := 1
	for _, b := range m.Bins {
		if b > maxb {
			maxb = b
		}
	}
	s.dist = make([]float64, maxb)
	return s
}

// grow sizes the per-path scratch for paths sampling paths.
func (s *Sampler) grow(paths int) {
	if len(s.pathP) < paths {
		s.pre = make([]float64, paths*s.hidden)
		s.pathP = make([]float64, paths)
	}
}

// columnDist writes the softmax distribution of column c for the path
// whose pre-activations are pre, returning the scratch slice.
func (s *Sampler) columnDist(pre []float64, c int) []float64 {
	off, nb := s.made.Offsets[c], s.made.Bins[c]
	out := s.dist[:nb]
	copy(out, s.made.B2.V[off:off+nb])
	for _, i := range s.colUnits[c] {
		v := pre[i]
		if v <= 0 {
			continue // ReLU: inactive hidden unit
		}
		wrow := s.w2m[i*s.made.InDim+off:][:nb]
		for j, wv := range wrow {
			out[j] += v * wv
		}
	}
	maxv := out[0]
	for _, v := range out[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range out {
		e := math.Exp(v - maxv)
		out[j] = e
		sum += e
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// sampler returns the cached inference sampler, building it on first use
// after training.
func (m *Made) sampler() *Sampler {
	if m.samp == nil {
		m.samp = m.NewSampler()
	}
	return m.samp
}

// ProgressiveSample estimates the probability of the bin ranges under the
// Made model with S sampling paths. Exported for UAE. All paths advance
// through the columns together on the model's cached Sampler.
func ProgressiveSample(made *Made, ranges map[int][2]int, samples int, rng *rand.Rand) float64 {
	lastQueried := -1
	for c := range ranges {
		if c > lastQueried {
			lastQueried = c
		}
	}
	if lastQueried == -1 {
		return 1
	}
	sp := made.sampler()
	sp.grow(samples)
	for p := 0; p < samples; p++ {
		copy(sp.pre[p*sp.hidden:(p+1)*sp.hidden], made.B1.V)
		sp.pathP[p] = 1
	}
	for c := 0; c <= lastQueried; c++ {
		r, queried := ranges[c]
		for p := 0; p < samples; p++ {
			if sp.pathP[p] == 0 {
				continue // dead path: a queried range had zero mass
			}
			pre := sp.pre[p*sp.hidden : (p+1)*sp.hidden]
			dist := sp.columnDist(pre, c)
			var mass float64
			if queried {
				for b := r[0]; b <= r[1] && b < len(dist); b++ {
					mass += dist[b]
				}
				if mass <= 0 {
					sp.pathP[p] = 0
					continue
				}
				sp.pathP[p] *= mass
			} else {
				mass = 1
			}
			// Sample a bin from the (restricted) distribution.
			u := rng.Float64() * mass
			var acc float64
			pick := -1
			loB, hiB := 0, len(dist)-1
			if queried {
				loB, hiB = r[0], r[1]
				if hiB >= len(dist) {
					hiB = len(dist) - 1
				}
			}
			for b := loB; b <= hiB; b++ {
				acc += dist[b]
				if acc >= u {
					pick = b
					break
				}
			}
			if pick == -1 {
				pick = hiB
			}
			// Observe: condition the path on column c taking bin pick.
			wrow := sp.w1m[(made.Offsets[c]+pick)*sp.hidden:][:sp.hidden]
			for i, v := range wrow {
				pre[i] += v
			}
		}
	}
	var total float64
	for p := 0; p < samples; p++ {
		total += sp.pathP[p]
	}
	return total / float64(samples)
}

// Estimate implements ce.Estimator via progressive sampling.
func (m *Model) Estimate(q *workload.Query) float64 {
	if m.degenerate {
		return 1
	}
	ranges, ok, unresolved := ce.QueryBinRanges(m.binner, m.slots, q)
	if !ok {
		return 1
	}
	p := ProgressiveSample(m.made, ranges, m.cfg.Samples, m.rng.Rand)
	for _, pr := range unresolved {
		p *= m.bounds.UniformSel(pr)
	}
	est := p * float64(m.sizes.Size(q.Tables))
	if est < 1 {
		return 1
	}
	return est
}

// EstimateBatch implements ce.Estimator sequentially: progressive sampling
// advances the model's RNG and reuses the cached sampler's scratch, so the
// batch preserves the per-query estimate stream exactly.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.SerialEstimates(m, qs)
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg        Config
	Bounds     *ce.ColBounds
	Binner     *ce.Binner
	Slots      map[[2]int]int
	Sizes      *ce.SubsetSizes
	Made       *Made
	RNG        ce.RNGState
	Degenerate bool
}

// GobEncode implements gob.GobEncoder (ce.Persistable). The RNG stream
// position is captured so a decoded model continues the progressive-
// sampling stream bit-identically.
func (m *Model) GobEncode() ([]byte, error) {
	st := &modelState{Cfg: m.cfg, Degenerate: m.degenerate}
	if !m.degenerate {
		if m.made == nil {
			return nil, fmt.Errorf("neurocard: cannot persist an untrained model")
		}
		st.Bounds, st.Binner, st.Slots, st.Sizes = m.bounds, m.binner, m.slots, m.sizes
		st.Made, st.RNG = m.made, m.rng.State()
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("neurocard: decoding model: %w", err)
	}
	m.cfg, m.bounds, m.binner, m.slots = st.Cfg, st.Bounds, st.Binner, st.Slots
	m.sizes, m.made, m.degenerate = st.Sizes, st.Made, st.Degenerate
	m.rng = nil
	if !st.Degenerate {
		m.rng = ce.RNGFromState(st.RNG)
	}
	return nil
}
