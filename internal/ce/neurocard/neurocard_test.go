package neurocard

import (
	"math"
	"math/rand"
	"testing"
)

func TestMadeMaskAutoregressive(t *testing.T) {
	// Column c's logits must not depend on inputs of columns >= c.
	rng := rand.New(rand.NewSource(1))
	bins := []int{4, 3, 5}
	m := NewMade(rng, bins, 16)

	base := make([]float64, m.InDim)
	base[m.Offsets[0]+1] = 1
	base[m.Offsets[1]+2] = 1
	base[m.Offsets[2]+0] = 1

	distBefore := m.ColumnDist(base, 1)
	// Perturb column 2's input (a later column): column 1's distribution
	// must be unchanged.
	perturbed := append([]float64(nil), base...)
	perturbed[m.Offsets[2]+0] = 0
	perturbed[m.Offsets[2]+4] = 1
	distAfter := m.ColumnDist(perturbed, 1)
	for i := range distBefore {
		if math.Abs(distBefore[i]-distAfter[i]) > 1e-12 {
			t.Fatalf("column 1 depends on column 2's input: %v vs %v", distBefore, distAfter)
		}
	}
	// Column 0 must be input-independent entirely.
	d0a := m.ColumnDist(base, 0)
	d0b := m.ColumnDist(make([]float64, m.InDim), 0)
	for i := range d0a {
		if math.Abs(d0a[i]-d0b[i]) > 1e-12 {
			t.Fatal("column 0 distribution depends on inputs")
		}
	}
	// Column 2 must depend on earlier columns (masks not degenerate):
	// check some weight into column 2's block survives the mask.
	var liveMask bool
	for h := 0; h < 16; h++ {
		for o := m.Offsets[2]; o < m.Offsets[2]+bins[2]; o++ {
			if m.mask2[h*m.InDim+o] == 1 {
				liveMask = true
			}
		}
	}
	if !liveMask {
		t.Fatal("column 2 has no unmasked hidden connections")
	}
}

func TestColumnDistIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMade(rng, []int{3, 4}, 8)
	input := make([]float64, m.InDim)
	input[0] = 1
	for c := 0; c < 2; c++ {
		dist := m.ColumnDist(input, c)
		var sum float64
		for _, p := range dist {
			if p < 0 {
				t.Fatalf("negative probability %g", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d distribution sums to %g", c, sum)
		}
	}
}

func TestTrainMadeLearnsMarginal(t *testing.T) {
	// One 2-bin column, 90/10 split: after training, P(bin 0) ≈ 0.9.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]int, 500)
	for i := range rows {
		b := 0
		if i%10 == 0 {
			b = 1
		}
		rows[i] = []int{b}
	}
	m := NewMade(rng, []int{2}, 8)
	TrainMade(m, rows, 20, 32, 0.05, rng)
	dist := m.ColumnDist(make([]float64, m.InDim), 0)
	if math.Abs(dist[0]-0.9) > 0.08 {
		t.Fatalf("learned marginal P(bin0) = %g, want ~0.9", dist[0])
	}
}

func TestTrainMadeLearnsConditional(t *testing.T) {
	// Two perfectly coupled columns: P(x1 = x0) should dominate.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]int, 600)
	for i := range rows {
		b := rng.Intn(2)
		rows[i] = []int{b, b}
	}
	m := NewMade(rng, []int{2, 2}, 16)
	TrainMade(m, rows, 25, 32, 0.05, rng)
	input := make([]float64, m.InDim)
	input[m.Offsets[0]+1] = 1 // condition on x0 = 1
	dist := m.ColumnDist(input, 1)
	if dist[1] < 0.8 {
		t.Fatalf("P(x1=1 | x0=1) = %g, want > 0.8", dist[1])
	}
}

func TestProgressiveSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMade(rng, []int{4, 4}, 8)
	// No constraints: probability 1.
	if p := ProgressiveSample(m, nil, 10, rng); p != 1 {
		t.Fatalf("unconstrained probability %g", p)
	}
	// Full-range constraints: probability ~1.
	full := map[int][2]int{0: {0, 3}, 1: {0, 3}}
	if p := ProgressiveSample(m, full, 20, rng); math.Abs(p-1) > 1e-9 {
		t.Fatalf("full-range probability %g", p)
	}
	// Constraints bound probability to [0,1].
	partial := map[int][2]int{0: {0, 1}, 1: {2, 3}}
	p := ProgressiveSample(m, partial, 30, rng)
	if p < 0 || p > 1 {
		t.Fatalf("probability %g outside [0,1]", p)
	}
}

func TestProgressiveSampleMatchesMarginal(t *testing.T) {
	// With one trained column, progressive sampling of {bin 0} should
	// approximate the learned marginal probability.
	rng := rand.New(rand.NewSource(6))
	rows := make([][]int, 400)
	for i := range rows {
		b := 0
		if i%4 == 0 {
			b = 1
		}
		rows[i] = []int{b}
	}
	m := NewMade(rng, []int{2}, 8)
	TrainMade(m, rows, 20, 32, 0.05, rng)
	p := ProgressiveSample(m, map[int][2]int{0: {0, 0}}, 50, rng)
	if math.Abs(p-0.75) > 0.1 {
		t.Fatalf("sampled P(bin0) = %g, want ~0.75", p)
	}
}
