package ce_test

// Crash-safety regression tests for the artifact store: a truncated or
// bit-flipped artifact on disk must surface as the typed
// ce.ErrCorruptArtifact — never a panic, never a silently wrong model —
// be quarantined to .corrupt, and leave every intact artifact loadable
// (the restart-with-one-rotten-file scenario).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ce"
	_ "repro/internal/ce/zoo"
	"repro/internal/datagen"
	"repro/internal/resilience"
)

// trainedPostgres fits the cheap histogram baseline on a tiny dataset —
// enough to produce a real artifact in milliseconds.
func trainedPostgres(t *testing.T, seed int64) ce.Model {
	t.Helper()
	p := datagen.Params{
		Tables:  1,
		MinCols: 2, MaxCols: 2,
		MinRows: 60, MaxRows: 80,
		Domain: 20,
		SkewLo: 0, SkewHi: 0.5,
		CorrLo: 0, CorrHi: 0.5,
		JoinLo: 0.5, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("persisted", p)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := ce.Lookup("Postgres")
	if !ok {
		t.Fatal("Postgres not registered")
	}
	m := spec.New(ce.Config{Fast: true})
	if err := m.Fit(&ce.TrainInput{Dataset: d}); err != nil {
		t.Fatal(err)
	}
	return m
}

func artifactPathFor(t *testing.T, store *ce.Store, dataset string) string {
	t.Helper()
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Dataset == dataset {
			return e.Path
		}
	}
	t.Fatalf("no artifact listed for dataset %q", dataset)
	return ""
}

func TestStoreLoadTruncatedArtifact(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := trainedPostgres(t, 101)
	if _, err := store.Save("ds", "sig", m); err != nil {
		t.Fatal(err)
	}
	path := artifactPathFor(t, store, "ds")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate at several depths: mid-header, mid-payload, one byte short.
	for _, cut := range []int{0, 5, 12, len(whole) / 2, len(whole) - 1} {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := store.Load("ds", "Postgres")
		if err == nil {
			t.Fatalf("truncated artifact (cut=%d) loaded", cut)
		}
		if !errors.Is(err, ce.ErrCorruptArtifact) {
			t.Fatalf("truncated artifact (cut=%d) error %v does not match ErrCorruptArtifact", cut, err)
		}
		// Quarantined: original gone, .corrupt sibling present.
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Fatalf("cut=%d: corrupt artifact not quarantined (stat: %v)", cut, statErr)
		}
		if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
			t.Fatalf("cut=%d: no .corrupt quarantine file: %v", cut, statErr)
		}
		if err := os.Remove(path + ".corrupt"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreLoadBitFlippedArtifact(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := trainedPostgres(t, 102)
	if _, err := store.Save("ds", "sig", m); err != nil {
		t.Fatal(err)
	}
	path := artifactPathFor(t, store, "ds")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one bit at several offsets: in the magic, the size field, the
	// checksum itself, and deep in the payload.
	for _, off := range []int{2, 9, 17, 25, len(whole)/2 + 3, len(whole) - 2} {
		flipped := append([]byte(nil), whole...)
		flipped[off] ^= 0x10
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := store.Load("ds", "Postgres")
		if err == nil {
			t.Fatalf("bit-flipped artifact (offset %d) loaded", off)
		}
		if !errors.Is(err, ce.ErrCorruptArtifact) {
			t.Fatalf("bit-flipped artifact (offset %d) error %v does not match ErrCorruptArtifact", off, err)
		}
		if !strings.Contains(err.Error(), ".corrupt") {
			t.Fatalf("offset %d: error %v does not report the quarantine path", off, err)
		}
		if err := os.Remove(path + ".corrupt"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreCorruptArtifactDoesNotPoisonFleet is the restart scenario: one
// dataset's artifact rots, the rest of the fleet must still reload, and
// the quarantined file must vanish from List.
func TestStoreCorruptArtifactDoesNotPoisonFleet(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := trainedPostgres(t, 103)
	for _, ds := range []string{"healthy-a", "rotten", "healthy-b"} {
		if _, err := store.Save(ds, "sig:"+ds, m); err != nil {
			t.Fatal(err)
		}
	}
	// Rot the middle artifact.
	path := artifactPathFor(t, store, "rotten")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-4] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The reload loop a restart runs: List, Load each, skip failures.
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List returned %d entries, want 3", len(entries))
	}
	loaded := map[string]bool{}
	for _, e := range entries {
		lm, schema, err := store.Load(e.Dataset, e.Model)
		if e.Dataset == "rotten" {
			if !errors.Is(err, ce.ErrCorruptArtifact) {
				t.Fatalf("rotten load error %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("healthy artifact %s failed to load: %v", e.Dataset, err)
		}
		if schema != "sig:"+e.Dataset || lm.Name() != "Postgres" {
			t.Fatalf("healthy artifact %s loaded wrong content (%q, %q)", e.Dataset, schema, lm.Name())
		}
		loaded[e.Dataset] = true
	}
	if !loaded["healthy-a"] || !loaded["healthy-b"] {
		t.Fatalf("healthy fleet members not loaded: %v", loaded)
	}

	// After quarantine the corrupt entry is gone from List; the healthy
	// fleet remains.
	entries, err = store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("List after quarantine returned %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Dataset == "rotten" {
			t.Fatal("quarantined artifact still listed")
		}
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestStoreRejectsLegacyUnframedArtifact pins the format gate: a payload
// without the checksummed envelope (e.g. a pre-envelope gob stream, or
// arbitrary junk) is corrupt, not undefined behavior.
func TestStoreRejectsLegacyUnframedArtifact(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(store.Dir(), "legacy")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Postgres.cemodel"),
		[]byte("not an envelope at all, just bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = store.Load("legacy", "Postgres")
	if !errors.Is(err, ce.ErrCorruptArtifact) {
		t.Fatalf("unframed artifact error %v", err)
	}
}

// TestSaveLoadRoundTripStillExact guards the envelope change itself: a
// clean save/load round trip preserves the schema string and produces a
// model whose estimates match (the full bit-exactness contract lives in
// the conformance harness).
func TestSaveLoadRoundTripStillExact(t *testing.T) {
	m := trainedPostgres(t, 104)
	var buf bytes.Buffer
	if err := ce.SaveModelSchema(&buf, m, "schema-fingerprint"); err != nil {
		t.Fatal(err)
	}
	loaded, schema, err := ce.LoadModelSchema(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if schema != "schema-fingerprint" {
		t.Fatalf("schema %q after round trip", schema)
	}
	if loaded.Name() != "Postgres" {
		t.Fatalf("loaded %q", loaded.Name())
	}
}

// TestStoreFailpoints pins the injection sites the soak test drives: an
// armed store failpoint surfaces as ErrInjected from Save/Load without
// touching the disk state.
func TestStoreFailpoints(t *testing.T) {
	defer resilience.ClearFailpoints()
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := trainedPostgres(t, 105)
	if _, err := store.Save("ds", "sig", m); err != nil {
		t.Fatal(err)
	}

	if err := resilience.SetFailpoint("ce.store.save", "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save("ds2", "sig", m); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("save with armed failpoint returned %v", err)
	}
	resilience.ClearFailpoint("ce.store.save")

	if err := resilience.SetFailpoint("ce.store.load", "error"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("ds", "Postgres"); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("load with armed failpoint returned %v", err)
	}
	resilience.ClearFailpoint("ce.store.load")

	// Disarmed: the artifact is intact and loads normally.
	lm, _, err := store.Load("ds", "Postgres")
	if err != nil || lm.Name() != "Postgres" {
		t.Fatalf("load after disarm: %v", err)
	}
}
