package deepdb

import (
	"math"
	"math/rand"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

func trained(t *testing.T, d *dataset.Dataset, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sample := engine.SampleJoin(d, 800, rng)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: sample}); err != nil {
		t.Fatal(err)
	}
	return m
}

func singleTable(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	p := datagen.DefaultParams(seed)
	p.MinRows, p.MaxRows = 400, 600
	d, err := datagen.Generate("spn", p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSPNProbabilityIsNormalized(t *testing.T) {
	d := singleTable(t, 1)
	m := trained(t, d, 2)
	// No constraints: probability of everything is ~1 (sum nodes are
	// convex combinations, product of ones, leaves sum to 1).
	p := m.root.prob(map[int][2]int{})
	if math.Abs(p-1) > 1e-6 {
		t.Fatalf("unconstrained SPN probability %g", p)
	}
}

func TestSPNProbabilityBounds(t *testing.T) {
	d := singleTable(t, 3)
	m := trained(t, d, 4)
	for j := range m.binner.Edges {
		for lo := 0; lo < m.binner.NumBins(j); lo += 2 {
			p := m.root.prob(map[int][2]int{j: {lo, lo + 1}})
			if p < 0 || p > 1+1e-9 {
				t.Fatalf("SPN probability %g outside [0,1]", p)
			}
		}
	}
}

func TestSPNMatchesEmpiricalMarginal(t *testing.T) {
	// On a single column, the SPN marginal should track the data.
	d := singleTable(t, 5)
	m := trained(t, d, 6)
	col := d.Tables[0].Col(0)
	lo, hi := col.MinMax()
	mid := (lo + hi) / 2
	empirical := 0
	for _, v := range col.Data {
		if v >= lo && v <= mid {
			empirical++
		}
	}
	frac := float64(empirical) / float64(col.Len())

	q := &workload.Query{Query: engine.Query{
		Tables: []int{0},
		Preds:  []engine.Predicate{{Table: 0, Col: 0, Lo: lo, Hi: mid}},
	}}
	est := m.Estimate(q) / float64(col.Len())
	if math.Abs(est-frac) > 0.15 {
		t.Fatalf("SPN marginal %g, empirical %g", est, frac)
	}
}

func TestSPNBuildsSumAndProductNodes(t *testing.T) {
	// A dataset with both correlated and independent columns should yield
	// a non-trivial SPN (not a single product of leaves).
	d := singleTable(t, 7)
	m := trained(t, d, 8)
	var sums, products, leaves int
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *sum:
			sums++
			for _, c := range v.children {
				walk(c)
			}
		case *product:
			products++
			for _, c := range v.children {
				walk(c)
			}
		case *leaf:
			leaves++
		}
	}
	walk(m.root)
	if leaves == 0 || products == 0 {
		t.Fatalf("degenerate SPN: %d sums, %d products, %d leaves", sums, products, leaves)
	}
}

func TestDegenerateSampleFallsBack(t *testing.T) {
	d := singleTable(t, 9)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: &engine.JoinSample{}}); err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Query: engine.Query{Tables: []int{0}}}
	if got := m.Estimate(q); got != 1 {
		t.Fatalf("degenerate estimate %g, want 1", got)
	}
}

func TestMutualInformationDetectsDependence(t *testing.T) {
	n := 2000
	rows := make([][]int, n)
	rng := rand.New(rand.NewSource(10))
	for i := range rows {
		a := rng.Intn(4)
		rows[i] = []int{a, a, rng.Intn(4)} // col1 == col0, col2 independent
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	dep := mutualInformation(rows, idx, 0, 1, 4, 4)
	indep := mutualInformation(rows, idx, 0, 2, 4, 4)
	if dep <= indep {
		t.Fatalf("MI(dependent)=%g <= MI(independent)=%g", dep, indep)
	}
	if indep > 0.05 {
		t.Fatalf("independent-pair MI %g too high", indep)
	}
}

func TestKMeansSplitsClusters(t *testing.T) {
	// Two well-separated clusters must be recovered.
	rows := make([][]int, 100)
	for i := range rows {
		if i < 50 {
			rows[i] = []int{0, 1}
		} else {
			rows[i] = []int{9, 8}
		}
	}
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(11))
	left, right := kmeans2(rows, idx, []int{0, 1}, rng)
	if len(left) == 0 || len(right) == 0 {
		t.Fatal("kmeans produced an empty cluster on separable data")
	}
	if len(left)+len(right) != 100 {
		t.Fatal("kmeans lost rows")
	}
	// Each cluster should be pure.
	pure := func(ids []int) bool {
		first := rows[ids[0]][0]
		for _, r := range ids {
			if rows[r][0] != first {
				return false
			}
		}
		return true
	}
	if !pure(left) || !pure(right) {
		t.Fatal("kmeans clusters are mixed on trivially separable data")
	}
}
