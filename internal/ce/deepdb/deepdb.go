// Package deepdb implements a Sum-Product Network cardinality estimator in
// the style of DeepDB (Hilprecht et al., VLDB 2020), the paper's
// data-driven baseline (4). The SPN is learned over a sample of the full
// join: sum nodes split rows into clusters (k-means, k=2), product nodes
// split columns into (approximately) independent groups detected through
// pairwise mutual information, and leaves hold per-bin histograms. Range
// queries evaluate bottom-up with unqueried columns marginalized; the
// resulting join-space selectivity is scaled by the unfiltered size of the
// queried table subset.
package deepdb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ce"
	"repro/internal/workload"
)

func init() {
	// Registry rank 3: the paper's data-driven baseline (4). SPN
	// evaluation is read-only, so inference is concurrent.
	ce.Register(ce.Spec{
		Rank: 3, Name: "DeepDB", Kind: ce.DataDriven, Candidate: true, Concurrent: true,
		New: func(c ce.Config) ce.Model {
			cfg := DefaultConfig()
			cfg.Seed = c.Seed + 13
			return New(cfg)
		},
	})
	gob.Register(&Model{})
}

// Config controls SPN learning.
type Config struct {
	// MaxBins bounds per-column discretization.
	MaxBins int
	// MinRows stops row clustering below this count.
	MinRows int
	// MITreshold is the mutual-information cutoff for declaring two
	// columns dependent.
	MIThreshold float64
	// MaxDepth bounds recursion.
	MaxDepth int
	Seed     int64
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config {
	return Config{MaxBins: 16, MinRows: 96, MIThreshold: 0.08, MaxDepth: 8, Seed: 3}
}

type node interface {
	// prob returns the probability of the bin ranges (keyed by sample
	// column slot) under this node's scope; absent columns marginalize.
	prob(ranges map[int][2]int) float64
}

type leaf struct {
	col  int
	dist []float64
}

func (l *leaf) prob(ranges map[int][2]int) float64 {
	r, ok := ranges[l.col]
	if !ok {
		return 1
	}
	var p float64
	for b := r[0]; b <= r[1] && b < len(l.dist); b++ {
		p += l.dist[b]
	}
	return p
}

type product struct{ children []node }

func (p *product) prob(ranges map[int][2]int) float64 {
	out := 1.0
	for _, c := range p.children {
		out *= c.prob(ranges)
	}
	return out
}

type sum struct {
	children []node
	weights  []float64
}

func (s *sum) prob(ranges map[int][2]int) float64 {
	var out float64
	for i, c := range s.children {
		out += s.weights[i] * c.prob(ranges)
	}
	return out
}

// Model is a trained DeepDB-style SPN estimator.
type Model struct {
	cfg    Config
	bounds *ce.ColBounds
	binner *ce.Binner
	slots  map[[2]int]int
	sizes  *ce.SubsetSizes
	root   node

	degenerate bool
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "DeepDB" }

// Fit implements ce.Model (data-driven: consumes Dataset, Sample, and the
// shared Sizes when provided).
func (m *Model) Fit(in *ce.TrainInput) error {
	d, sample := in.Dataset, in.Sample
	if len(sample.Rows) == 0 {
		// Degenerate dataset (e.g. an aggressively sampled copy whose
		// full join is empty): fall back to an estimator that always
		// answers 1 rather than failing the whole labeling run.
		m.degenerate = true
		return nil
	}
	m.bounds = ce.NewColBounds(d)
	m.binner = ce.NewBinner(sample, m.cfg.MaxBins)
	m.slots = ce.ColSlots(sample)
	m.sizes = in.Sizes
	if m.sizes == nil {
		m.sizes = ce.ComputeSubsetSizes(d)
	}
	rows := m.binner.BinRows(sample)
	scope := make([]int, len(sample.Cols))
	for i := range scope {
		scope[i] = i
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	m.root = m.build(rows, idx, scope, 0, rng)
	return nil
}

// build recursively constructs the SPN over the given row subset and
// column scope.
func (m *Model) build(rows [][]int, idx []int, scope []int, depth int, rng *rand.Rand) node {
	if len(scope) == 1 {
		return m.makeLeaf(rows, idx, scope[0])
	}
	if len(idx) < m.cfg.MinRows || depth >= m.cfg.MaxDepth {
		return m.factorize(rows, idx, scope)
	}
	// Try a product decomposition: connected components of the
	// dependence graph under pairwise mutual information.
	groups := m.independentGroups(rows, idx, scope)
	if len(groups) > 1 {
		p := &product{}
		for _, g := range groups {
			p.children = append(p.children, m.build(rows, idx, g, depth+1, rng))
		}
		return p
	}
	// Otherwise a sum decomposition: k-means (k=2) over the rows.
	left, right := kmeans2(rows, idx, scope, rng)
	if len(left) == 0 || len(right) == 0 {
		return m.factorize(rows, idx, scope)
	}
	n := float64(len(idx))
	return &sum{
		children: []node{
			m.build(rows, left, scope, depth+1, rng),
			m.build(rows, right, scope, depth+1, rng),
		},
		weights: []float64{float64(len(left)) / n, float64(len(right)) / n},
	}
}

// factorize returns a product of independent leaves over the scope — the
// base case that assumes independence within the fragment.
func (m *Model) factorize(rows [][]int, idx []int, scope []int) node {
	p := &product{}
	for _, c := range scope {
		p.children = append(p.children, m.makeLeaf(rows, idx, c))
	}
	return p
}

func (m *Model) makeLeaf(rows [][]int, idx []int, col int) *leaf {
	nb := m.binner.NumBins(col)
	dist := make([]float64, nb)
	for _, r := range idx {
		dist[rows[r][col]]++
	}
	// Laplace smoothing keeps zero-probability bins from zeroing out
	// conjunctions entirely.
	total := float64(len(idx)) + float64(nb)*0.1
	for b := range dist {
		dist[b] = (dist[b] + 0.1) / total
	}
	return &leaf{col: col, dist: dist}
}

// independentGroups partitions the scope into connected components of the
// MI-dependence graph; one component means no product split is possible.
func (m *Model) independentGroups(rows [][]int, idx []int, scope []int) [][]int {
	k := len(scope)
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mi := mutualInformation(rows, idx, scope[i], scope[j],
				m.binner.NumBins(scope[i]), m.binner.NumBins(scope[j]))
			if mi > m.cfg.MIThreshold {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	seen := make([]bool, k)
	var groups [][]int
	for i := 0; i < k; i++ {
		if seen[i] {
			continue
		}
		var comp []int
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, scope[v])
			for w := 0; w < k; w++ {
				if adj[v][w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		groups = append(groups, comp)
	}
	return groups
}

// mutualInformation estimates MI between two binned columns over idx.
func mutualInformation(rows [][]int, idx []int, a, b, na, nb int) float64 {
	joint := make([]float64, na*nb)
	pa := make([]float64, na)
	pb := make([]float64, nb)
	n := float64(len(idx))
	for _, r := range idx {
		va, vb := rows[r][a], rows[r][b]
		joint[va*nb+vb]++
		pa[va]++
		pb[vb]++
	}
	var mi float64
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			pij := joint[i*nb+j] / n
			if pij == 0 {
				continue
			}
			mi += pij * math.Log(pij*n*n/(pa[i]*pb[j]))
		}
	}
	return mi
}

// kmeans2 clusters rows (restricted to scope columns) into two groups.
func kmeans2(rows [][]int, idx []int, scope []int, rng *rand.Rand) (left, right []int) {
	k := len(scope)
	c0 := make([]float64, k)
	c1 := make([]float64, k)
	// k-means++-style init: a random first centroid, then the farthest
	// point as the second, so identical draws cannot collapse the split.
	i0 := idx[rng.Intn(len(idx))]
	for j, c := range scope {
		c0[j] = float64(rows[i0][c])
	}
	i1, best := i0, -1.0
	for _, r := range idx {
		var dist float64
		for j, c := range scope {
			d := float64(rows[r][c]) - c0[j]
			dist += d * d
		}
		if dist > best {
			i1, best = r, dist
		}
	}
	for j, c := range scope {
		c1[j] = float64(rows[i1][c])
	}
	assign := make([]bool, len(idx)) // true = cluster 1
	for iter := 0; iter < 8; iter++ {
		changed := false
		for p, r := range idx {
			var d0, d1 float64
			for j, c := range scope {
				v := float64(rows[r][c])
				d0 += (v - c0[j]) * (v - c0[j])
				d1 += (v - c1[j]) * (v - c1[j])
			}
			a := d1 < d0
			if a != assign[p] {
				assign[p] = a
				changed = true
			}
		}
		var n0, n1 float64
		s0 := make([]float64, k)
		s1 := make([]float64, k)
		for p, r := range idx {
			if assign[p] {
				n1++
				for j, c := range scope {
					s1[j] += float64(rows[r][c])
				}
			} else {
				n0++
				for j, c := range scope {
					s0[j] += float64(rows[r][c])
				}
			}
		}
		if n0 == 0 || n1 == 0 {
			break
		}
		for j := range scope {
			c0[j] = s0[j] / n0
			c1[j] = s1[j] / n1
		}
		if !changed {
			break
		}
	}
	for p, r := range idx {
		if assign[p] {
			right = append(right, r)
		} else {
			left = append(left, r)
		}
	}
	return left, right
}

// Estimate implements ce.Estimator.
func (m *Model) Estimate(q *workload.Query) float64 {
	if m.degenerate {
		return 1
	}
	ranges, ok, unresolved := ce.QueryBinRanges(m.binner, m.slots, q)
	if !ok {
		return 1
	}
	p := m.root.prob(ranges)
	// Predicates on key/FK columns (outside the join-space model) fall
	// back to uniform selectivity over the column range.
	for _, pr := range unresolved {
		p *= m.bounds.UniformSel(pr)
	}
	est := p * float64(m.sizes.Size(q.Tables))
	if est < 1 {
		return 1
	}
	return est
}

// EstimateBatch implements ce.Estimator with the shared parallel fan-out.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.ParallelEstimates(m, qs)
}

// spnNode is the flattened gob form of one SPN node; children always
// precede their parent, and the last node is the root.
type spnNode struct {
	Kind     int // 0 leaf, 1 product, 2 sum
	Col      int
	Dist     []float64
	Children []int
	Weights  []float64
}

// flattenSPN serializes the node tree into post-order.
func flattenSPN(n node, out []spnNode) ([]spnNode, int) {
	switch t := n.(type) {
	case *leaf:
		out = append(out, spnNode{Kind: 0, Col: t.col, Dist: t.dist})
	case *product:
		var kids []int
		for _, c := range t.children {
			var ci int
			out, ci = flattenSPN(c, out)
			kids = append(kids, ci)
		}
		out = append(out, spnNode{Kind: 1, Children: kids})
	case *sum:
		var kids []int
		for _, c := range t.children {
			var ci int
			out, ci = flattenSPN(c, out)
			kids = append(kids, ci)
		}
		out = append(out, spnNode{Kind: 2, Children: kids, Weights: t.weights})
	}
	return out, len(out) - 1
}

// buildSPN reconstructs the node tree from its post-order flattening.
func buildSPN(nodes []spnNode) (node, error) {
	built := make([]node, len(nodes))
	for i, sn := range nodes {
		children := func() ([]node, error) {
			out := make([]node, len(sn.Children))
			for j, ci := range sn.Children {
				if ci < 0 || ci >= i {
					return nil, fmt.Errorf("deepdb: SPN node %d references child %d", i, ci)
				}
				out[j] = built[ci]
			}
			return out, nil
		}
		switch sn.Kind {
		case 0:
			built[i] = &leaf{col: sn.Col, dist: sn.Dist}
		case 1:
			kids, err := children()
			if err != nil {
				return nil, err
			}
			built[i] = &product{children: kids}
		case 2:
			kids, err := children()
			if err != nil {
				return nil, err
			}
			if len(sn.Weights) != len(kids) {
				return nil, fmt.Errorf("deepdb: SPN sum node %d has %d weights for %d children",
					i, len(sn.Weights), len(kids))
			}
			built[i] = &sum{children: kids, weights: sn.Weights}
		default:
			return nil, fmt.Errorf("deepdb: SPN node %d has unknown kind %d", i, sn.Kind)
		}
	}
	if len(built) == 0 {
		return nil, fmt.Errorf("deepdb: empty SPN")
	}
	return built[len(built)-1], nil
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg        Config
	Bounds     *ce.ColBounds
	Binner     *ce.Binner
	Slots      map[[2]int]int
	Sizes      *ce.SubsetSizes
	Nodes      []spnNode
	Degenerate bool
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	st := &modelState{
		Cfg: m.cfg, Bounds: m.bounds, Binner: m.binner, Slots: m.slots,
		Sizes: m.sizes, Degenerate: m.degenerate,
	}
	if m.degenerate {
		// A degenerate model carries no learned structure.
		st.Bounds, st.Binner, st.Sizes = nil, nil, nil
	} else if m.root == nil {
		return nil, fmt.Errorf("deepdb: cannot persist an untrained model")
	} else {
		st.Nodes, _ = flattenSPN(m.root, nil)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("deepdb: decoding model: %w", err)
	}
	m.cfg, m.bounds, m.binner, m.slots = st.Cfg, st.Bounds, st.Binner, st.Slots
	m.sizes, m.degenerate = st.Sizes, st.Degenerate
	m.root = nil
	if !st.Degenerate {
		root, err := buildSPN(st.Nodes)
		if err != nil {
			return err
		}
		m.root = root
	}
	return nil
}
