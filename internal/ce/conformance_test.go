package ce_test

// Registry conformance harness: every registered model must satisfy the
// full lifecycle contract — Fit from one TrainInput, finite estimates,
// batch estimation bit-identical to per-query calls, and a gob round trip
// (SaveModel/LoadModel and the artifact Store) after which estimates
// continue bit-identically, including the sampling models' RNG streams.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ce"
	_ "repro/internal/ce/zoo"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/workload"
)

// paperRegistry is the seed (paper) order the registry must reproduce: the
// seven candidates of M followed by the measured-only baselines.
var paperRegistry = []struct {
	name      string
	kind      ce.Kind
	candidate bool
}{
	{"MSCN", ce.QueryDriven, true},
	{"LW-NN", ce.QueryDriven, true},
	{"LW-XGB", ce.QueryDriven, true},
	{"DeepDB", ce.DataDriven, true},
	{"BayesCard", ce.DataDriven, true},
	{"NeuroCard", ce.DataDriven, true},
	{"UAE", ce.Hybrid, true},
	{"Postgres", ce.DataDriven, false},
	{"Ensemble", ce.Composite, false},
}

func TestRegistryInvariants(t *testing.T) {
	specs := ce.Specs()
	if len(specs) != len(paperRegistry) {
		t.Fatalf("registry has %d models, want %d", len(specs), len(paperRegistry))
	}
	seenNames := map[string]bool{}
	for i, s := range specs {
		want := paperRegistry[i]
		if s.Name != want.name {
			t.Errorf("registry[%d] = %q, want seed order %q", i, s.Name, want.name)
		}
		if s.Kind != want.kind {
			t.Errorf("%s kind %v, want %v", s.Name, s.Kind, want.kind)
		}
		if s.Candidate != want.candidate {
			t.Errorf("%s candidate %v, want %v", s.Name, s.Candidate, want.candidate)
		}
		if s.Name == "" || seenNames[s.Name] {
			t.Errorf("registry[%d] name %q empty or duplicate", i, s.Name)
		}
		seenNames[s.Name] = true
		if !s.Kind.Valid() {
			t.Errorf("%s has invalid kind %d", s.Name, int(s.Kind))
		}
		if s.New == nil {
			t.Errorf("%s has nil constructor", s.Name)
		}
		if i > 0 && specs[i-1].Rank >= s.Rank {
			t.Errorf("ranks not strictly increasing at %d: %d >= %d", i, specs[i-1].Rank, s.Rank)
		}
		if ce.Index(s.Name) != i || ce.MustIndex(s.Name) != i {
			t.Errorf("%s index lookup mismatch", s.Name)
		}
		if got, ok := ce.Lookup(s.Name); !ok || got.Name != s.Name {
			t.Errorf("Lookup(%s) failed", s.Name)
		}
	}
	// |M| = 7, the paper's candidate-set size, occupying the first ranks.
	if n := ce.NumCandidates(); n != 7 {
		t.Fatalf("candidate set has %d models, paper's |M| is 7", n)
	}
	for i, ci := range ce.CandidateIndexes() {
		if ci != i {
			t.Fatalf("candidate indexes %v are not the registry prefix", ce.CandidateIndexes())
		}
	}
	wantKinds := map[ce.Kind][]int{
		ce.QueryDriven: {0, 1, 2},
		ce.DataDriven:  {3, 4, 5},
		ce.Hybrid:      {6},
		ce.Composite:   nil,
	}
	for k, want := range wantKinds {
		got := ce.CandidateIndexesOfKind(k)
		if len(got) != len(want) {
			t.Fatalf("kind %v candidates %v, want %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kind %v candidates %v, want %v", k, got, want)
			}
		}
	}
	if ce.Index("NoSuchModel") != -1 {
		t.Fatal("unknown name resolved to an index")
	}
}

func TestRegisterRejectsInvalidSpecs(t *testing.T) {
	before := ce.NumModels()
	expectPanic := func(name string, s ce.Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		ce.Register(s)
	}
	newModel := func(ce.Config) ce.Model { return nil }
	expectPanic("duplicate name", ce.Spec{Rank: 99, Name: "MSCN", Kind: ce.QueryDriven, New: newModel})
	expectPanic("duplicate rank", ce.Spec{Rank: 0, Name: "Fresh", Kind: ce.QueryDriven, New: newModel})
	expectPanic("empty name", ce.Spec{Rank: 99, Name: "", Kind: ce.QueryDriven, New: newModel})
	expectPanic("nil constructor", ce.Spec{Rank: 99, Name: "Fresh", Kind: ce.QueryDriven})
	expectPanic("invalid kind", ce.Spec{Rank: 99, Name: "Fresh", Kind: ce.Kind(42), New: newModel})
	if ce.NumModels() != before {
		t.Fatalf("failed registrations mutated the registry: %d -> %d", before, ce.NumModels())
	}
}

// conformanceFixture trains the full zoo once for the lifecycle tests.
func conformanceFixture(t *testing.T) ([]ce.Model, []ce.Spec, []*workload.Query) {
	t.Helper()
	p := datagen.Params{
		Tables:  2,
		MinCols: 2, MaxCols: 3,
		MinRows: 150, MaxRows: 250,
		Domain: 25,
		SkewLo: 0, SkewHi: 0.8,
		CorrLo: 0, CorrHi: 0.5,
		JoinLo: 0.5, JoinHi: 1,
		Seed: 4242,
	}
	d, err := datagen.Generate("conf", p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4243))
	qs := workload.Generate(d, workload.DefaultConfig(90, 4244))
	train, test := workload.Split(qs, 0.6, 4245)
	in := &ce.TrainInput{
		Dataset: d,
		Sample:  engine.SampleJoin(d, 400, rng),
		Queries: train,
		Sizes:   ce.ComputeSubsetSizes(d),
	}
	specs := ce.Specs()
	models := ce.NewModels(ce.Config{Fast: true, Seed: 77})
	var members []ce.Estimator
	for i, s := range specs {
		if s.Kind == ce.Composite {
			continue
		}
		if err := models[i].Fit(in); err != nil {
			t.Fatalf("fitting %s: %v", s.Name, err)
		}
		if s.Candidate {
			members = append(members, models[i])
		}
	}
	for i, s := range specs {
		if s.Kind != ce.Composite {
			continue
		}
		calib := append([]*workload.Query(nil), train[:30]...)
		if err := models[i].Fit(&ce.TrainInput{Dataset: d, Members: members, Queries: calib}); err != nil {
			t.Fatalf("fitting %s: %v", s.Name, err)
		}
	}
	return models, specs, test
}

func TestZooLifecycleConformance(t *testing.T) {
	models, specs, test := conformanceFixture(t)
	for i, s := range specs {
		m := models[i]
		if m.Name() != s.Name {
			t.Fatalf("model %d reports name %q, registered as %q", i, m.Name(), s.Name)
		}
		if got := m.EstimateBatch(nil); len(got) != 0 {
			t.Fatalf("%s: empty batch returned %d estimates", s.Name, len(got))
		}
		// Warm pass: every estimate finite and >= 1.
		warm := m.EstimateBatch(test)
		if len(warm) != len(test) {
			t.Fatalf("%s: batch returned %d estimates for %d queries", s.Name, len(warm), len(test))
		}
		for qi, est := range warm {
			if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("%s: query %d estimate %g", s.Name, qi, est)
			}
		}
		// Concurrent (stateless-inference) models: the parallel/vectorized
		// batch must be bit-identical to per-query Estimate calls.
		if s.Concurrent {
			single := make([]float64, len(test))
			for qi, q := range test {
				single[qi] = m.Estimate(q)
			}
			batch := m.EstimateBatch(test)
			for qi := range test {
				if single[qi] != batch[qi] {
					t.Fatalf("%s: query %d batch %v != single %v (batch path changed numerics)",
						s.Name, qi, batch[qi], single[qi])
				}
			}
		}
		// Gob round trip: snapshot, then advance the original and the
		// loaded copy in lockstep — estimates (including the sampling
		// models' RNG streams) must match bit for bit.
		var buf bytes.Buffer
		if err := ce.SaveModel(&buf, m); err != nil {
			t.Fatalf("%s: SaveModel: %v", s.Name, err)
		}
		after := m.EstimateBatch(test)
		loaded, err := ce.LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: LoadModel: %v", s.Name, err)
		}
		if loaded.Name() != s.Name {
			t.Fatalf("loaded model reports %q, want %q", loaded.Name(), s.Name)
		}
		loadedEsts := loaded.EstimateBatch(test)
		for qi := range test {
			if after[qi] != loadedEsts[qi] {
				t.Fatalf("%s: query %d original %v != reloaded %v (gob round trip not bit-identical)",
					s.Name, qi, after[qi], loadedEsts[qi])
			}
		}
	}
}

func TestModelStoreRoundTrip(t *testing.T) {
	models, specs, test := conformanceFixture(t)
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The dataset name deliberately contains both a path separator and a
	// double underscore: escaping and the directory layout must keep it
	// intact through save/list/load.
	const dsName = "conf__db/x"
	const schema = "t2;c3,pk0"
	for i, s := range specs {
		if _, err := store.Save(dsName, schema, models[i]); err != nil {
			t.Fatalf("store save %s: %v", s.Name, err)
		}
	}
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(specs) {
		t.Fatalf("store lists %d artifacts, want %d", len(entries), len(specs))
	}
	for _, e := range entries {
		if e.Dataset != dsName {
			t.Fatalf("entry dataset %q, want %q (name escaping broken)", e.Dataset, dsName)
		}
	}
	for i, s := range specs {
		loaded, gotSchema, err := store.Load(dsName, s.Name)
		if err != nil {
			t.Fatalf("store load %s: %v", s.Name, err)
		}
		if gotSchema != schema {
			t.Fatalf("%s: stored schema %q, want %q", s.Name, gotSchema, schema)
		}
		// Two loads of one artifact always start from the same captured
		// state, so their estimate streams must match bit for bit — for
		// sampling-based models the original has advanced past the saved
		// position by now, so the artifact is its own reference.
		loaded2, _, err := store.Load(dsName, s.Name)
		if err != nil {
			t.Fatal(err)
		}
		got := loaded.EstimateBatch(test)
		got2 := loaded2.EstimateBatch(test)
		for qi := range test {
			if got[qi] != got2[qi] {
				t.Fatalf("%s: two loads of one artifact diverge: %v != %v", s.Name, got[qi], got2[qi])
			}
			if got[qi] < 1 || math.IsNaN(got[qi]) || math.IsInf(got[qi], 0) {
				t.Fatalf("%s: stored artifact estimate %g", s.Name, got[qi])
			}
		}
		if s.Concurrent {
			// Stateless inference: the original must agree with the
			// artifact exactly, whenever either is evaluated.
			want := models[i].EstimateBatch(test)
			for qi := range test {
				if want[qi] != got[qi] {
					t.Fatalf("%s: stored artifact estimate %v != original %v", s.Name, got[qi], want[qi])
				}
			}
		}
	}
}
