package bayescard

import (
	"math"
	"math/rand"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

func trained(t *testing.T, d *dataset.Dataset, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sample := engine.SampleJoin(d, 800, rng)
	m := New(DefaultConfig())
	if err := m.Fit(&ce.TrainInput{Dataset: d, Sample: sample}); err != nil {
		t.Fatal(err)
	}
	return m
}

func singleTable(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	p := datagen.DefaultParams(seed)
	p.MinRows, p.MaxRows = 400, 600
	p.MinCols, p.MaxCols = 3, 4
	d, err := datagen.Generate("bn", p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTreeStructure(t *testing.T) {
	d := singleTable(t, 1)
	m := trained(t, d, 2)
	k := len(m.parent)
	roots := 0
	for c := 0; c < k; c++ {
		if m.parent[c] == -1 {
			roots++
		} else if m.parent[c] < 0 || m.parent[c] >= k {
			t.Fatalf("column %d has invalid parent %d", c, m.parent[c])
		}
	}
	if roots != 1 {
		t.Fatalf("Chow-Liu tree has %d roots", roots)
	}
	// The parent pointers must be acyclic (k-1 edges reaching the root).
	for c := 0; c < k; c++ {
		seen := map[int]bool{}
		for v := c; v != -1; v = m.parent[v] {
			if seen[v] {
				t.Fatalf("cycle through column %d", c)
			}
			seen[v] = true
		}
	}
}

func TestCPTsAreDistributions(t *testing.T) {
	d := singleTable(t, 3)
	m := trained(t, d, 4)
	for c := range m.parent {
		nb := m.binner.NumBins(c)
		if m.parent[c] == -1 {
			var sum float64
			for _, p := range m.prior[c] {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("root prior sums to %g", sum)
			}
			continue
		}
		np := m.binner.NumBins(m.parent[c])
		for pb := 0; pb < np; pb++ {
			var sum float64
			for b := 0; b < nb; b++ {
				sum += m.cpt[c][pb*nb+b]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("CPT row (col %d, parent bin %d) sums to %g", c, pb, sum)
			}
		}
	}
}

func TestEvidenceProbNoEvidenceIsOne(t *testing.T) {
	d := singleTable(t, 5)
	m := trained(t, d, 6)
	if p := m.evidenceProb(map[int][2]int{}); math.Abs(p-1) > 1e-9 {
		t.Fatalf("P(no evidence) = %g", p)
	}
}

func TestEvidenceProbMatchesEmpirical(t *testing.T) {
	d := singleTable(t, 7)
	m := trained(t, d, 8)
	col := d.Tables[0].Col(0)
	lo, _ := col.MinMax()
	// Evidence: column 0 equals its minimum value's bin.
	bin := m.binner.Bin(0, lo)
	p := m.evidenceProb(map[int][2]int{0: {bin, bin}})
	empirical := 0
	for _, v := range col.Data {
		if m.binner.Bin(0, v) == bin {
			empirical++
		}
	}
	frac := float64(empirical) / float64(col.Len())
	if math.Abs(p-frac) > 0.1 {
		t.Fatalf("P(evidence) = %g, empirical %g", p, frac)
	}
}

func TestExactInferenceOnIndependentColumns(t *testing.T) {
	// Construct a table with two independent binary-ish columns; tree
	// inference must factorize: P(A,B) ≈ P(A)·P(B).
	rng := rand.New(rand.NewSource(9))
	n := 3000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(1 + rng.Intn(2))
		b[i] = int64(1 + rng.Intn(2))
	}
	d := &dataset.Dataset{Name: "ind", Tables: []*dataset.Table{{
		Name:  "t",
		Cols:  []*dataset.Column{dataset.NewColumn("a", a), dataset.NewColumn("b", b)},
		PKCol: -1,
	}}}
	m := trained(t, d, 10)
	binA := m.binner.Bin(0, 1)
	binB := m.binner.Bin(1, 1)
	pa := m.evidenceProb(map[int][2]int{0: {binA, binA}})
	pb := m.evidenceProb(map[int][2]int{1: {binB, binB}})
	pab := m.evidenceProb(map[int][2]int{0: {binA, binA}, 1: {binB, binB}})
	if math.Abs(pab-pa*pb) > 0.03 {
		t.Fatalf("P(A,B)=%g but P(A)P(B)=%g on independent data", pab, pa*pb)
	}
}

func TestCapturesPerfectDependence(t *testing.T) {
	// B == A: P(A=1, B=2) must be near zero, P(A=1, B=1) near P(A=1).
	n := 3000
	rng := rand.New(rand.NewSource(11))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		v := int64(1 + rng.Intn(2))
		a[i], b[i] = v, v
	}
	d := &dataset.Dataset{Name: "dep", Tables: []*dataset.Table{{
		Name:  "t",
		Cols:  []*dataset.Column{dataset.NewColumn("a", a), dataset.NewColumn("b", b)},
		PKCol: -1,
	}}}
	m := trained(t, d, 12)
	binA1 := m.binner.Bin(0, 1)
	binB1 := m.binner.Bin(1, 1)
	binB2 := m.binner.Bin(1, 2)
	agree := m.evidenceProb(map[int][2]int{0: {binA1, binA1}, 1: {binB1, binB1}})
	conflict := m.evidenceProb(map[int][2]int{0: {binA1, binA1}, 1: {binB2, binB2}})
	if conflict > 0.05 {
		t.Fatalf("P(A=1,B=2) = %g on perfectly coupled data", conflict)
	}
	if agree < 0.35 {
		t.Fatalf("P(A=1,B=1) = %g, want ~0.5", agree)
	}
}

func TestEstimateJoinQuery(t *testing.T) {
	p := datagen.DefaultParams(13)
	p.Tables = 3
	p.MinRows, p.MaxRows = 200, 350
	d, err := datagen.Generate("bnj", p)
	if err != nil {
		t.Fatal(err)
	}
	m := trained(t, d, 14)
	qs := workload.Generate(d, workload.DefaultConfig(30, 15))
	for _, q := range qs {
		est := m.Estimate(q)
		if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("estimate %g", est)
		}
	}
}
