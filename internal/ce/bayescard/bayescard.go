// Package bayescard implements a Bayesian-network cardinality estimator in
// the style of BayesCard (Wu et al., 2020), the paper's data-driven
// baseline (5). The network structure is a Chow-Liu tree: the maximum
// spanning tree of the pairwise mutual-information graph over the binned
// join-sample columns. Conditional probability tables are estimated with
// Laplace smoothing, and range queries run exact belief propagation on the
// tree with interval evidence, marginalizing unqueried columns.
package bayescard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/ce"
	"repro/internal/workload"
)

func init() {
	// Registry rank 4: the paper's data-driven baseline (5). Belief
	// propagation is read-only, so inference is concurrent.
	ce.Register(ce.Spec{
		Rank: 4, Name: "BayesCard", Kind: ce.DataDriven, Candidate: true, Concurrent: true,
		New: func(ce.Config) ce.Model { return New(DefaultConfig()) },
	})
	gob.Register(&Model{})
}

// Config controls BN learning.
type Config struct {
	// MaxBins bounds per-column discretization.
	MaxBins int
	// Alpha is the Laplace smoothing pseudo-count.
	Alpha float64
}

// DefaultConfig returns the configuration used by the testbed.
func DefaultConfig() Config { return Config{MaxBins: 16, Alpha: 0.1} }

// Model is a trained Chow-Liu tree Bayesian network.
type Model struct {
	cfg    Config
	bounds *ce.ColBounds
	binner *ce.Binner
	slots  map[[2]int]int
	sizes  *ce.SubsetSizes

	parent []int // parent column per column, -1 for the root
	// prior[c][b] = P(c=b) for the root; cpt[c][pb*nbins(c)+b] =
	// P(c=b | parent(c)=pb) for non-roots.
	prior [][]float64
	cpt   [][]float64
	// children[c] lists c's children in the tree.
	children [][]int
	root     int

	degenerate bool
}

// New returns an untrained model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements ce.Estimator.
func (m *Model) Name() string { return "BayesCard" }

// Fit implements ce.Model (data-driven: consumes Dataset, Sample, and the
// shared Sizes when provided).
func (m *Model) Fit(in *ce.TrainInput) error {
	d, sample := in.Dataset, in.Sample
	if len(sample.Rows) == 0 {
		m.degenerate = true
		return nil
	}
	m.bounds = ce.NewColBounds(d)
	m.binner = ce.NewBinner(sample, m.cfg.MaxBins)
	m.slots = ce.ColSlots(sample)
	m.sizes = in.Sizes
	if m.sizes == nil {
		m.sizes = ce.ComputeSubsetSizes(d)
	}
	rows := m.binner.BinRows(sample)
	k := len(sample.Cols)

	// Pairwise mutual information.
	mi := make([][]float64, k)
	for i := range mi {
		mi[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v := pairMI(rows, i, j, m.binner.NumBins(i), m.binner.NumBins(j))
			mi[i][j], mi[j][i] = v, v
		}
	}

	// Maximum spanning tree via Prim's algorithm.
	m.root = 0
	m.parent = make([]int, k)
	inTree := make([]bool, k)
	best := make([]float64, k)
	from := make([]int, k)
	for i := range best {
		best[i] = -1
		from[i] = -1
		m.parent[i] = -1
	}
	inTree[m.root] = true
	for j := 0; j < k; j++ {
		if j != m.root {
			best[j] = mi[m.root][j]
			from[j] = m.root
		}
	}
	for added := 1; added < k; added++ {
		pick, pickVal := -1, -1.0
		for j := 0; j < k; j++ {
			if !inTree[j] && best[j] > pickVal {
				pick, pickVal = j, best[j]
			}
		}
		if pick == -1 {
			break
		}
		inTree[pick] = true
		m.parent[pick] = from[pick]
		for j := 0; j < k; j++ {
			if !inTree[j] && mi[pick][j] > best[j] {
				best[j] = mi[pick][j]
				from[j] = pick
			}
		}
	}
	m.children = make([][]int, k)
	for c := 0; c < k; c++ {
		if p := m.parent[c]; p >= 0 {
			m.children[p] = append(m.children[p], c)
		}
	}

	// Parameter estimation with Laplace smoothing.
	m.prior = make([][]float64, k)
	m.cpt = make([][]float64, k)
	n := float64(len(rows))
	for c := 0; c < k; c++ {
		nb := m.binner.NumBins(c)
		if m.parent[c] == -1 {
			pr := make([]float64, nb)
			for _, r := range rows {
				pr[r[c]]++
			}
			for b := range pr {
				pr[b] = (pr[b] + m.cfg.Alpha) / (n + m.cfg.Alpha*float64(nb))
			}
			m.prior[c] = pr
			continue
		}
		p := m.parent[c]
		np := m.binner.NumBins(p)
		counts := make([]float64, np*nb)
		pcounts := make([]float64, np)
		for _, r := range rows {
			counts[r[p]*nb+r[c]]++
			pcounts[r[p]]++
		}
		tbl := make([]float64, np*nb)
		for pb := 0; pb < np; pb++ {
			for b := 0; b < nb; b++ {
				tbl[pb*nb+b] = (counts[pb*nb+b] + m.cfg.Alpha) /
					(pcounts[pb] + m.cfg.Alpha*float64(nb))
			}
		}
		m.cpt[c] = tbl
	}
	return nil
}

func pairMI(rows [][]int, a, b, na, nb int) float64 {
	joint := make([]float64, na*nb)
	pa := make([]float64, na)
	pb := make([]float64, nb)
	n := float64(len(rows))
	for _, r := range rows {
		joint[r[a]*nb+r[b]]++
		pa[r[a]]++
		pb[r[b]]++
	}
	var mi float64
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			pij := joint[i*nb+j]
			if pij == 0 {
				continue
			}
			mi += pij / n * math.Log(pij*n/(pa[i]*pb[j]))
		}
	}
	return mi
}

// evidenceProb returns P(evidence) by an upward message pass on the tree.
// ranges maps column slot -> inclusive bin range; absent columns are
// unconstrained.
func (m *Model) evidenceProb(ranges map[int][2]int) float64 {
	// upMsg(c) returns, for each bin value of c's parent, the probability
	// of the evidence in c's subtree given that parent value. For the
	// root it returns the total probability as a single value.
	var up func(c int) []float64
	up = func(c int) []float64 {
		nb := m.binner.NumBins(c)
		allowed := func(b int) bool {
			r, ok := ranges[c]
			if !ok {
				return true
			}
			return b >= r[0] && b <= r[1]
		}
		// childFactor[b] = product over children of msg_child[b].
		childFactor := make([]float64, nb)
		for b := range childFactor {
			childFactor[b] = 1
		}
		for _, ch := range m.children[c] {
			msg := up(ch)
			for b := 0; b < nb; b++ {
				childFactor[b] *= msg[b]
			}
		}
		if m.parent[c] == -1 {
			total := 0.0
			for b := 0; b < nb; b++ {
				if allowed(b) {
					total += m.prior[c][b] * childFactor[b]
				}
			}
			return []float64{total}
		}
		np := m.binner.NumBins(m.parent[c])
		msg := make([]float64, np)
		for pb := 0; pb < np; pb++ {
			var s float64
			for b := 0; b < nb; b++ {
				if allowed(b) {
					s += m.cpt[c][pb*nb+b] * childFactor[b]
				}
			}
			msg[pb] = s
		}
		return msg
	}
	return up(m.root)[0]
}

// Estimate implements ce.Estimator.
func (m *Model) Estimate(q *workload.Query) float64 {
	if m.degenerate {
		return 1
	}
	ranges, ok, unresolved := ce.QueryBinRanges(m.binner, m.slots, q)
	if !ok {
		return 1
	}
	p := m.evidenceProb(ranges)
	for _, pr := range unresolved {
		p *= m.bounds.UniformSel(pr)
	}
	est := p * float64(m.sizes.Size(q.Tables))
	if est < 1 {
		return 1
	}
	return est
}

// EstimateBatch implements ce.Estimator with the shared parallel fan-out.
func (m *Model) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.ParallelEstimates(m, qs)
}

// modelState is the gob form of a trained model.
type modelState struct {
	Cfg        Config
	Bounds     *ce.ColBounds
	Binner     *ce.Binner
	Slots      map[[2]int]int
	Sizes      *ce.SubsetSizes
	Parent     []int
	Prior      [][]float64
	CPT        [][]float64
	Children   [][]int
	Root       int
	Degenerate bool
}

// GobEncode implements gob.GobEncoder (ce.Persistable).
func (m *Model) GobEncode() ([]byte, error) {
	if !m.degenerate && m.binner == nil {
		return nil, fmt.Errorf("bayescard: cannot persist an untrained model")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&modelState{
		Cfg: m.cfg, Bounds: m.bounds, Binner: m.binner, Slots: m.slots, Sizes: m.sizes,
		Parent: m.parent, Prior: m.prior, CPT: m.cpt, Children: m.children,
		Root: m.root, Degenerate: m.degenerate,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder (ce.Persistable).
func (m *Model) GobDecode(data []byte) error {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("bayescard: decoding model: %w", err)
	}
	m.cfg, m.bounds, m.binner, m.slots, m.sizes = st.Cfg, st.Bounds, st.Binner, st.Slots, st.Sizes
	m.parent, m.prior, m.cpt, m.children = st.Parent, st.Prior, st.CPT, st.Children
	m.root, m.degenerate = st.Root, st.Degenerate
	return nil
}
