package ce

import "math/rand"

// RNG is a math/rand generator whose stream position can be serialized —
// the ingredient that lets sampling-based estimators (NeuroCard, UAE)
// round-trip through gob with bit-identical subsequent estimates. The
// stdlib source exposes no state, so RNG wraps it in a draw-counting shim
// and a snapshot records (seed, draws); restoring replays that many draws
// against a fresh source of the same seed.
//
// The shim deliberately implements only rand.Source (not Source64):
// every Rand method the estimators use (Float64, Intn, Perm, Shuffle)
// reduces to Int63 on such a source, so the produced stream is identical
// to rand.New(rand.NewSource(seed)) and the draw count fully determines
// the state. Rand.Uint64 would consume two Int63s here instead of one
// native Uint64 — no caller does, and new model code must not.
type RNG struct {
	*rand.Rand
	src *countedSource
}

type countedSource struct {
	src   rand.Source
	seed  int64
	draws uint64
}

func (s *countedSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countedSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// NewRNG returns a counting generator seeded with seed. Its draw stream is
// identical to rand.New(rand.NewSource(seed)) for all Int63-derived
// methods.
func NewRNG(seed int64) *RNG {
	src := &countedSource{src: rand.NewSource(seed), seed: seed}
	return &RNG{Rand: rand.New(src), src: src}
}

// RNGState is the serializable stream position of an RNG.
type RNGState struct {
	Seed  int64
	Draws uint64
}

// State snapshots the generator's position.
func (g *RNG) State() RNGState {
	return RNGState{Seed: g.src.seed, Draws: g.src.draws}
}

// RNGFromState reconstructs a generator at the recorded position by
// replaying the recorded number of draws (tens of nanoseconds per
// thousand draws — negligible against model load time).
func RNGFromState(st RNGState) *RNG {
	g := NewRNG(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		g.src.Int63()
	}
	return g
}
