package ce_test

// Native fuzzers for the subset-key codec. SubsetKey strings are map keys
// inside persisted artifacts, so the canonical form must be a bijection:
// every table set has exactly one spelling, and every accepted spelling
// round-trips. Corpus seeds live in testdata/fuzz; CI runs each fuzzer
// briefly (-fuzz=... -fuzztime=10s) to keep the corpus honest.

import (
	"sort"
	"testing"

	"repro/internal/ce"
)

// FuzzSubsetKeyRoundTrip: for any table set, ParseSubsetKey(SubsetKey(x))
// returns the sorted, deduplicated set, and re-encoding is a fixed point.
func FuzzSubsetKeyRoundTrip(f *testing.F) {
	f.Add(0, 0, 0)
	f.Add(1, 2, 3)
	f.Add(7, 7, 7)
	f.Add(100, 0, 99)
	f.Fuzz(func(t *testing.T, a, b, c int) {
		// SubsetKey's domain is table indexes: small non-negative ints.
		tables := []int{abs(a) % 1000, abs(b) % 1000, abs(c) % 1000}
		// SubsetKey sorts but does not deduplicate (real callers pass
		// sets); canonicalize the fuzz input the same way.
		sort.Ints(tables)
		uniq := tables[:0]
		for i, v := range tables {
			if i == 0 || v != tables[i-1] {
				uniq = append(uniq, v)
			}
		}
		key := ce.SubsetKey(uniq)
		back, err := ce.ParseSubsetKey(key)
		if err != nil {
			t.Fatalf("ParseSubsetKey(SubsetKey(%v) = %q): %v", uniq, key, err)
		}
		if len(back) != len(uniq) {
			t.Fatalf("round trip of %v changed length: %v", uniq, back)
		}
		for i := range back {
			if back[i] != uniq[i] {
				t.Fatalf("round trip of %v = %v", uniq, back)
			}
		}
		if re := ce.SubsetKey(back); re != key {
			t.Fatalf("re-encoding %v: %q != %q", back, re, key)
		}
	})
}

// FuzzParseSubsetKey: arbitrary strings never panic the parser, and any
// accepted string is in canonical form (re-encoding reproduces it
// exactly) — the bijection's other half.
func FuzzParseSubsetKey(f *testing.F) {
	f.Add("")
	f.Add("0,")
	f.Add("1,2,3,")
	f.Add("01,")
	f.Add("2,1,")
	f.Add("-1,")
	f.Add("1,1,")
	f.Add("99999999999999999999,")
	f.Add("1,\x00,")
	f.Fuzz(func(t *testing.T, key string) {
		tables, err := ce.ParseSubsetKey(key)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if re := ce.SubsetKey(tables); re != key {
			t.Fatalf("accepted non-canonical key %q (re-encodes to %q)", key, re)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Avoid the MinInt overflow: any fixed in-range value works, the
		// fuzzer only needs a deterministic mapping.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
