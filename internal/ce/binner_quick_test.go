package ce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

// randomSample builds a join sample with one column of random values.
func randomSample(rng *rand.Rand, n, domain int) *engine.JoinSample {
	js := &engine.JoinSample{Cols: []engine.ColRef{{Table: 0, Col: 0}}}
	for i := 0; i < n; i++ {
		js.Rows = append(js.Rows, []int64{int64(1 + rng.Intn(domain))})
	}
	js.FullJoinSize = int64(n)
	return js
}

func TestBinnerBinAlwaysInRange(t *testing.T) {
	f := func(seed int64, rawDomain uint8, rawV int16) bool {
		rng := rand.New(rand.NewSource(seed))
		domain := 2 + int(rawDomain)%200
		js := randomSample(rng, 100, domain)
		b := NewBinner(js, 12)
		bin := b.Bin(0, int64(rawV))
		return bin >= 0 && bin < b.NumBins(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinnerValueMapsIntoItsBinRange(t *testing.T) {
	// For any sampled value v, BinRange(v, v) must contain Bin(v).
	f := func(seed int64, rawDomain uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		domain := 2 + int(rawDomain)%100
		js := randomSample(rng, 150, domain)
		b := NewBinner(js, 10)
		for _, r := range js.Rows[:20] {
			v := r[0]
			lo, hi, ok := b.BinRange(0, v, v)
			if !ok {
				return false
			}
			bin := b.Bin(0, v)
			if bin < lo || bin > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinnerRangeMonotone(t *testing.T) {
	// Widening an interval never shrinks the bin range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		js := randomSample(rng, 200, 60)
		b := NewBinner(js, 8)
		lo1, hi1, ok1 := b.BinRange(0, 10, 20)
		lo2, hi2, ok2 := b.BinRange(0, 5, 40)
		if !ok1 || !ok2 {
			return true // degenerate draws are fine
		}
		return lo2 <= lo1 && hi2 >= hi1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinRowsWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	js := randomSample(rng, 300, 500) // wide domain forces equi-depth bins
	b := NewBinner(js, 16)
	if b.NumBins(0) > 16+1 {
		t.Fatalf("binner produced %d bins, cap 16", b.NumBins(0))
	}
	for _, r := range b.BinRows(js) {
		if r[0] < 0 || r[0] >= b.NumBins(0) {
			t.Fatalf("bin %d out of range", r[0])
		}
	}
}

func TestBinnerEquiDepthIsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	js := randomSample(rng, 2000, 1000)
	b := NewBinner(js, 10)
	counts := make([]int, b.NumBins(0))
	for _, r := range js.Rows {
		counts[b.Bin(0, r[0])]++
	}
	for bin, c := range counts {
		frac := float64(c) / 2000
		if frac > 0.25 { // ideal 0.1; allow slack for duplicate edges
			t.Fatalf("bin %d holds %.0f%% of rows; equi-depth binning is broken", bin, frac*100)
		}
	}
}
