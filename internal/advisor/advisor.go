// Package advisor defines the common interface of model-selection
// strategies and implements the paper's four selection baselines (Section
// VII-A): MLP-based selection (GIN + 3-layer perceptron head trained with
// cross-entropy), Rule-based selection, Knn-based selection on raw
// features, and Sampling-based online selection. It also implements the
// Learning-All online method of Figure 12 and the "Without DML" regression
// head used by the Figure 11(a) ablation.
package advisor

import (
	"repro/internal/dataset"
	"repro/internal/feature"
)

// Target is one dataset to select a CE model for. Graph must be the
// feature graph of Dataset under the corpus-wide feature configuration.
type Target struct {
	Dataset *dataset.Dataset
	Graph   *feature.Graph
}

// Selector recommends a CE model for a target under an accuracy weight.
// The returned index is a candidate-set position — the index space of the
// labels' Sa/Se score vectors (while the candidate set occupies the
// registry prefix, this coincides with the registry index).
type Selector interface {
	Name() string
	Select(t Target, wa float64) int
}

// TrainSample mirrors core.Sample for baselines that learn from the same
// labeled corpus.
type TrainSample struct {
	Graph  *feature.Graph
	Sa, Se []float64
	// Tables records the source dataset's table count (the rule baseline
	// keys on it).
	Tables int
}
