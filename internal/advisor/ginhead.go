package advisor

import (
	"fmt"
	"math/rand"

	"repro/internal/feature"
	"repro/internal/gnn"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// HeadLoss selects how the GIN+MLP selector is trained.
type HeadLoss int

const (
	// HeadCrossEntropy is the paper's MLP-based selection baseline:
	// classification of the best model with cross-entropy loss.
	HeadCrossEntropy HeadLoss = iota
	// HeadMSE is the "Without DML" ablation of Section VII-E: three fully
	// connected layers regress the score vector with MSE loss; the argmax
	// is the recommendation.
	HeadMSE
)

// GINHeadConfig controls training of the GIN+MLP selector.
type GINHeadConfig struct {
	GNN    gnn.Config
	Hidden int
	Epochs int
	Batch  int
	LR     float64
	Loss   HeadLoss
	// WeightGrid lists the accuracy weights expanded into training
	// examples; the weight is appended to the pooled embedding so one
	// network serves every requirement combination.
	WeightGrid []float64
	Seed       int64
}

// DefaultGINHeadConfig returns the configuration used by the experiments.
func DefaultGINHeadConfig(inDim int) GINHeadConfig {
	return GINHeadConfig{
		GNN:    gnn.DefaultConfig(inDim),
		Hidden: 32, Epochs: 30, Batch: 24, LR: 2e-3,
		Loss:       HeadCrossEntropy,
		WeightGrid: []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Seed:       29,
	}
}

// GINHead is a trained GIN encoder with a three-layer MLP head, the
// architecture behind both the MLP baseline and the Without-DML ablation.
type GINHead struct {
	cfg  GINHeadConfig
	enc  *gnn.Encoder
	head *nn.MLP
	out  int // number of models
}

// Name implements Selector.
func (g *GINHead) Name() string {
	if g.cfg.Loss == HeadMSE {
		return "WithoutDML"
	}
	return "MLP"
}

// TrainGINHead fits the selector on the labeled corpus.
func TrainGINHead(samples []*TrainSample, cfg GINHeadConfig) (*GINHead, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("advisor: no training samples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numModels := len(samples[0].Sa)
	gh := &GINHead{
		cfg: cfg,
		enc: gnn.New(cfg.GNN),
		out: numModels,
	}
	// Head input: pooled embedding plus the accuracy weight.
	gh.head = nn.NewMLP(rng,
		[]int{cfg.GNN.OutDim + 1, cfg.Hidden, cfg.Hidden, numModels},
		nn.ActReLU, nn.ActNone)

	params := append(gh.enc.Params(), gh.head.Params()...)
	opt := nn.NewAdam(params, cfg.LR)

	type example struct {
		si int
		wa float64
	}
	var examples []example
	for si := range samples {
		for _, wa := range cfg.WeightGrid {
			examples = append(examples, example{si, wa})
		}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(examples), func(i, j int) { examples[i], examples[j] = examples[j], examples[i] })
		for start := 0; start < len(examples); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(examples) {
				end = len(examples)
			}
			var losses []*nn.Tensor
			for _, ex := range examples[start:end] {
				s := samples[ex.si]
				logits := gh.forward(s.Graph, ex.wa)
				score := metrics.CombineScores(s.Sa, s.Se, ex.wa)
				if cfg.Loss == HeadMSE {
					losses = append(losses, nn.MSE(logits, score))
				} else {
					target := make([]float64, numModels)
					target[metrics.ArgMax(score)] = 1
					losses = append(losses, nn.SoftmaxCrossEntropy(logits, [][]float64{target}))
				}
			}
			loss := nn.Scale(nn.SumScalars(losses...), 1/float64(len(losses)))
			loss.Backward()
			opt.Step()
		}
	}
	return gh, nil
}

func (g *GINHead) forward(graph *feature.Graph, wa float64) *nn.Tensor {
	emb := g.enc.Forward(graph)
	waT := nn.FromRow([]float64{wa})
	return g.head.Forward(nn.ConcatCols(emb, waT))
}

// Select implements Selector.
func (g *GINHead) Select(t Target, wa float64) int {
	out := g.forward(t.Graph, wa)
	return metrics.ArgMax(out.Row(0))
}
