package advisor

import (
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/testbed"
)

func labeledCorpus(t *testing.T, n int, seed int64) ([]*TrainSample, []*dataset.Dataset) {
	t.Helper()
	cfg := feature.DefaultConfig()
	rng := rand.New(rand.NewSource(seed))
	var samples []*TrainSample
	var ds []*dataset.Dataset
	for i := 0; i < n; i++ {
		p := datagen.DefaultParams(rng.Int63())
		p.MinRows, p.MaxRows = 60, 120
		p.Tables = 1 + rng.Intn(3)
		d, err := datagen.Generate("a", p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := feature.Extract(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sa := make([]float64, testbed.NumCandidates)
		se := make([]float64, testbed.NumCandidates)
		// Structured synthetic labels: model 0 wins accuracy on single
		// tables, model 3 on multi tables; model 1 always wins efficiency.
		for m := range sa {
			sa[m] = rng.Float64() * 0.4
			se[m] = rng.Float64() * 0.4
		}
		if d.NumTables() == 1 {
			sa[0] = 1
		} else {
			sa[3] = 1
		}
		se[1] = 1
		samples = append(samples, &TrainSample{Graph: g, Sa: sa, Se: se, Tables: d.NumTables()})
		ds = append(ds, d)
	}
	return samples, ds
}

func TestRuleSelector(t *testing.T) {
	_, ds := labeledCorpus(t, 10, 1)
	cfg := feature.DefaultConfig()
	rule := NewRule(2)
	dataDriven := map[int]bool{
		testbed.ModelIndex("DeepDB"): true, testbed.ModelIndex("BayesCard"): true, testbed.ModelIndex("NeuroCard"): true,
	}
	queryDriven := map[int]bool{
		testbed.ModelIndex("MSCN"): true, testbed.ModelIndex("LW-NN"): true, testbed.ModelIndex("LW-XGB"): true,
	}
	for _, d := range ds {
		g, _ := feature.Extract(d, cfg)
		pick := rule.Select(Target{Dataset: d, Graph: g}, 0.9)
		if d.NumTables() == 1 && !dataDriven[pick] {
			t.Fatalf("single-table pick %s not data-driven", testbed.ModelNames[pick])
		}
		if d.NumTables() > 1 && !queryDriven[pick] {
			t.Fatalf("multi-table pick %s not query-driven", testbed.ModelNames[pick])
		}
	}
}

func TestRawKNNSelector(t *testing.T) {
	samples, ds := labeledCorpus(t, 24, 3)
	knn := NewRawKNN(samples, 1)
	cfg := feature.DefaultConfig()
	// k=1 on a training graph finds itself -> its own accuracy winner at
	// wa=1.
	correct := 0
	for i, d := range ds {
		g, _ := feature.Extract(d, cfg)
		pick := knn.Select(Target{Dataset: d, Graph: g}, 1.0)
		want := 0
		if d.NumTables() > 1 {
			want = 3
		}
		if pick == want {
			correct++
		}
		_ = i
	}
	if correct != len(ds) {
		t.Fatalf("raw-KNN self-selection %d/%d", correct, len(ds))
	}
}

func TestGINHeadClassifierLearnsSeparableLabels(t *testing.T) {
	samples, ds := labeledCorpus(t, 40, 4)
	cfg := DefaultGINHeadConfig(feature.DefaultConfig().VertexDim())
	cfg.Epochs = 20
	cfg.WeightGrid = []float64{1.0}
	head, err := TrainGINHead(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	featCfg := feature.DefaultConfig()
	correct := 0
	for _, d := range ds {
		g, _ := feature.Extract(d, featCfg)
		pick := head.Select(Target{Dataset: d, Graph: g}, 1.0)
		want := 0
		if d.NumTables() > 1 {
			want = 3
		}
		if pick == want {
			correct++
		}
	}
	// Table count is directly encoded in the feature graph, so the
	// classifier should recover most labels.
	if correct < len(ds)*7/10 {
		t.Fatalf("GIN head training accuracy %d/%d", correct, len(ds))
	}
}

func TestGINHeadMSEVariant(t *testing.T) {
	samples, _ := labeledCorpus(t, 16, 5)
	cfg := DefaultGINHeadConfig(feature.DefaultConfig().VertexDim())
	cfg.Epochs = 4
	cfg.Loss = HeadMSE
	head, err := TrainGINHead(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if head.Name() != "WithoutDML" {
		t.Fatalf("MSE head name %q", head.Name())
	}
	pick := head.Select(Target{Graph: samples[0].Graph}, 0.9)
	if pick < 0 || pick >= testbed.NumCandidates {
		t.Fatalf("pick %d out of range", pick)
	}
}

func TestSampleDatasetPreservesJoins(t *testing.T) {
	p := datagen.DefaultParams(7)
	p.Tables = 3
	p.MinRows, p.MaxRows = 200, 300
	d, err := datagen.Generate("s", p)
	if err != nil {
		t.Fatal(err)
	}
	sampled := SampleDataset(d, 0.3, 9)
	if err := sampled.Validate(); err != nil {
		t.Fatal(err)
	}
	if sampled.NumTables() != d.NumTables() {
		t.Fatal("sampling changed the schema")
	}
	// The sampled full join must be non-empty (FK integrity preserved).
	rng := rand.New(rand.NewSource(10))
	js := engine.SampleJoin(sampled, 100, rng)
	if js.FullJoinSize == 0 {
		t.Fatal("sampled dataset has an empty full join")
	}
	// Rows were actually reduced.
	for ti, tbl := range sampled.Tables {
		if tbl.Rows() >= d.Tables[ti].Rows() {
			t.Fatalf("table %d not reduced: %d rows", ti, tbl.Rows())
		}
	}
}

func TestSamplingSelectorRuns(t *testing.T) {
	_, ds := labeledCorpus(t, 1, 11)
	cfg := testbed.DefaultConfig(11)
	cfg.NumQueries = 40
	cfg.SampleRows = 200
	cfg.Fast = true
	s := NewSampling(0.5, cfg)
	g, _ := feature.Extract(ds[0], feature.DefaultConfig())
	pick := s.Select(Target{Dataset: ds[0], Graph: g}, 0.9)
	if pick < 0 || pick >= testbed.NumCandidates {
		t.Fatalf("sampling pick %d", pick)
	}
	if s.Name() != "Sampling" {
		t.Fatal("name")
	}
}

func TestLearningAllPicksLabelOptimum(t *testing.T) {
	_, ds := labeledCorpus(t, 1, 12)
	cfg := testbed.DefaultConfig(12)
	cfg.NumQueries = 40
	cfg.SampleRows = 200
	cfg.Fast = true
	la := NewLearningAll(cfg)
	g, _ := feature.Extract(ds[0], feature.DefaultConfig())
	pick := la.Select(Target{Dataset: ds[0], Graph: g}, 1.0)
	label, err := testbed.LabelOnly(ds[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pick != label.BestModel(1.0) {
		t.Fatalf("learning-all pick %d, label best %d", pick, label.BestModel(1.0))
	}
}
