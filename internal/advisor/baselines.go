package advisor

import (
	"math/rand"

	"repro/internal/ce"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// Rule implements the paper's rule-based selection: data-driven models for
// single-table datasets, query-driven models for multi-table datasets,
// chosen at random within the class. The classes are derived from the
// registered candidate kinds, so a newly registered estimator joins its
// class automatically.
type Rule struct {
	rng *rand.Rand
}

// NewRule returns the rule-based selector.
func NewRule(seed int64) *Rule { return &Rule{rng: rand.New(rand.NewSource(seed))} }

// Name implements Selector.
func (r *Rule) Name() string { return "Rule" }

// Select implements Selector. The registry-derived class members are
// translated into candidate positions, the index space the returned
// selection shares with the label score vectors.
func (r *Rule) Select(t Target, _ float64) int {
	dataDriven := candidatePositions(ce.CandidateIndexesOfKind(ce.DataDriven))
	queryDriven := candidatePositions(ce.CandidateIndexesOfKind(ce.QueryDriven))
	if t.Dataset.NumTables() <= 1 {
		return dataDriven[r.rng.Intn(len(dataDriven))]
	}
	return queryDriven[r.rng.Intn(len(queryDriven))]
}

// candidatePositions maps registry indexes to candidate-set positions.
func candidatePositions(registryIdx []int) []int {
	out := make([]int, len(registryIdx))
	for i, ri := range registryIdx {
		out[i] = ce.CandidatePos(ri)
	}
	return out
}

// RawKNN implements the paper's Knn-based baseline: nearest neighbors on
// the raw (flattened, padded) feature graphs instead of the learned
// embeddings, labels averaged as in AutoCE's predictor.
type RawKNN struct {
	K       int
	samples []*TrainSample
	vecs    [][]float64
	maxN    int
	dim     int
}

// NewRawKNN builds the raw-feature KNN over the labeled corpus.
func NewRawKNN(samples []*TrainSample, k int) *RawKNN {
	r := &RawKNN{K: k, samples: samples}
	for _, s := range samples {
		if n := s.Graph.NumVertices(); n > r.maxN {
			r.maxN = n
		}
		if len(s.Graph.V) > 0 && len(s.Graph.V[0]) > r.dim {
			r.dim = len(s.Graph.V[0])
		}
	}
	for _, s := range samples {
		r.vecs = append(r.vecs, r.flatten(s.Graph))
	}
	return r
}

func (r *RawKNN) flatten(g *feature.Graph) []float64 {
	out := make([]float64, r.maxN*r.dim)
	for i, row := range g.V {
		if i >= r.maxN {
			break
		}
		copy(out[i*r.dim:], row)
	}
	return out
}

// Name implements Selector.
func (r *RawKNN) Name() string { return "Knn" }

// Select implements Selector.
func (r *RawKNN) Select(t Target, wa float64) int {
	x := r.flatten(t.Graph)
	type cand struct {
		idx  int
		dist float64
	}
	best := make([]cand, 0, r.K+1)
	for i, v := range r.vecs {
		d := metrics.EuclideanDistance(x, v)
		best = append(best, cand{i, d})
		for j := len(best) - 1; j > 0 && best[j].dist < best[j-1].dist; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
		if len(best) > r.K {
			best = best[:r.K]
		}
	}
	if len(best) == 0 {
		return -1
	}
	dim := len(r.samples[0].Sa)
	avg := make([]float64, dim)
	for _, c := range best {
		sv := metrics.CombineScores(r.samples[c.idx].Sa, r.samples[c.idx].Se, wa)
		for j := range avg {
			avg[j] += sv[j]
		}
	}
	return metrics.ArgMax(avg)
}

// Sampling implements the paper's sampling-based online baseline: train
// and test every candidate model against a row sample of the target
// dataset, then pick the best performer under the requested weights. Its
// cost is a full (reduced) testbed run per selection, and its quality
// suffers from the variance the paper describes.
type Sampling struct {
	// Fraction of rows retained per table.
	Fraction float64
	// Testbed configuration for the sampled run.
	Cfg testbed.Config
}

// NewSampling returns the sampling baseline.
func NewSampling(fraction float64, cfg testbed.Config) *Sampling {
	return &Sampling{Fraction: fraction, Cfg: cfg}
}

// Name implements Selector.
func (s *Sampling) Name() string { return "Sampling" }

// Select implements Selector.
func (s *Sampling) Select(t Target, wa float64) int {
	sampled := SampleDataset(t.Dataset, s.Fraction, s.Cfg.Seed)
	res, err := testbed.Run(sampled, s.Cfg)
	// The sampled dataset is discarded after the run; drop its cached
	// join index and stats so the cache entries do not pin it in memory.
	engine.InvalidateIndex(sampled)
	dataset.InvalidateStats(sampled)
	if err != nil {
		return -1
	}
	return res.Label.BestModel(wa)
}

// LearningAll implements Figure 12's "learning-all" online method: a full
// testbed run on the complete dataset per selection — near-optimal quality
// at maximal cost.
type LearningAll struct {
	Cfg testbed.Config
}

// NewLearningAll returns the learning-all selector.
func NewLearningAll(cfg testbed.Config) *LearningAll { return &LearningAll{Cfg: cfg} }

// Name implements Selector.
func (l *LearningAll) Name() string { return "Learning-All" }

// Select implements Selector.
func (l *LearningAll) Select(t Target, wa float64) int {
	res, err := testbed.Run(t.Dataset, l.Cfg)
	if err != nil {
		return -1
	}
	return res.Label.BestModel(wa)
}

// SampleDataset returns a row-sampled copy of d: every table keeps a
// uniform fraction of its rows (at least 10). Referenced (PK) tables are
// sampled first and referencing tables prefer rows whose FK values survive
// in the sampled targets, so PK-FK joins stay non-empty — the same
// correlated-sampling discipline real sampling-based selection needs.
func SampleDataset(d *dataset.Dataset, fraction float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &dataset.Dataset{Name: d.Name + "-sample", FKs: append([]dataset.ForeignKey(nil), d.FKs...)}
	out.Tables = make([]*dataset.Table, len(d.Tables))

	// Order tables so FK targets are sampled before their referencers.
	targets := map[int][]dataset.ForeignKey{}
	for _, fk := range d.FKs {
		targets[fk.FromTable] = append(targets[fk.FromTable], fk)
	}
	done := make([]bool, len(d.Tables))
	keptPK := make([]map[int64]bool, len(d.Tables))
	var order []int
	for len(order) < len(d.Tables) {
		progressed := false
		for ti := range d.Tables {
			if done[ti] {
				continue
			}
			ready := true
			for _, fk := range targets[ti] {
				if !done[fk.ToTable] && fk.ToTable != ti {
					ready = false
					break
				}
			}
			if ready {
				order = append(order, ti)
				done[ti] = true
				progressed = true
			}
		}
		if !progressed { // FK cycle: take the rest in index order
			for ti := range d.Tables {
				if !done[ti] {
					order = append(order, ti)
					done[ti] = true
				}
			}
		}
	}

	for _, ti := range order {
		t := d.Tables[ti]
		rows := t.Rows()
		keep := int(fraction * float64(rows))
		if keep < 10 {
			keep = 10
		}
		if keep > rows {
			keep = rows
		}
		// Prefer rows whose FK values survive in the sampled targets.
		var candidates []int
		for r := 0; r < rows; r++ {
			ok := true
			for _, fk := range targets[ti] {
				kept := keptPK[fk.ToTable]
				if kept == nil {
					continue
				}
				if !kept[t.Col(fk.FromCol).Data[r]] {
					ok = false
					break
				}
			}
			if ok {
				candidates = append(candidates, r)
			}
		}
		if len(candidates) == 0 {
			candidates = make([]int, rows)
			for r := range candidates {
				candidates[r] = r
			}
		}
		if keep > len(candidates) {
			keep = len(candidates)
		}
		rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		idx := candidates[:keep]

		nt := &dataset.Table{Name: t.Name, PKCol: t.PKCol}
		for _, c := range t.Cols {
			data := make([]int64, keep)
			for i, r := range idx {
				data[i] = c.Data[r]
			}
			nt.Cols = append(nt.Cols, dataset.NewColumn(c.Name, data))
		}
		out.Tables[ti] = nt
		if t.PKCol >= 0 {
			kept := make(map[int64]bool, keep)
			for _, r := range idx {
				kept[t.Col(t.PKCol).Data[r]] = true
			}
			keptPK[ti] = kept
		}
	}
	return out
}
