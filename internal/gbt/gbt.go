// Package gbt implements regression trees and gradient boosting with
// squared loss — the substrate for the LW-XGB cardinality estimator (Dutt
// et al., "Selectivity estimation for range predicates using lightweight
// models"), which the paper evaluates as one of its query-driven models.
//
// The implementation is a standard XGBoost-style additive ensemble: each
// round fits a depth-bounded regression tree to the negative gradient
// (residuals under squared loss), with greedy variance-reduction splits and
// shrinkage. Only the stdlib is used.
package gbt

import (
	"fmt"
	"sort"
)

// Config controls ensemble training.
type Config struct {
	// Rounds is the number of boosting rounds (trees).
	Rounds int
	// MaxDepth bounds tree depth; a depth-0 tree is a single leaf.
	MaxDepth int
	// LearningRate is the shrinkage applied to each tree's predictions.
	LearningRate float64
	// MinLeaf is the minimum number of samples in a leaf.
	MinLeaf int
	// MaxBins caps the number of candidate thresholds evaluated per
	// feature (quantile sketch); 0 means exact splits.
	MaxBins int
}

// DefaultConfig returns the configuration used by the LW-XGB estimator.
func DefaultConfig() Config {
	return Config{Rounds: 60, MaxDepth: 4, LearningRate: 0.2, MinLeaf: 4, MaxBins: 32}
}

type node struct {
	feature   int
	threshold float64
	left      int
	right     int
	leaf      bool
	value     float64
}

// Tree is one fitted regression tree (array-encoded).
type Tree struct {
	nodes []node
}

// Predict returns the tree's output for x.
func (t *Tree) Predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.leaf {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Ensemble is a trained boosted ensemble.
type Ensemble struct {
	Base  float64 // initial prediction (target mean)
	Trees []*Tree
	LR    float64
}

// Predict returns the ensemble prediction for feature vector x.
func (e *Ensemble) Predict(x []float64) float64 {
	y := e.Base
	for _, t := range e.Trees {
		y += e.LR * t.Predict(x)
	}
	return y
}

// Train fits an ensemble to (xs, ys) under squared loss.
func Train(xs [][]float64, ys []float64, cfg Config) (*Ensemble, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("gbt: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("gbt: %d feature rows for %d targets", len(xs), len(ys))
	}
	if cfg.Rounds < 1 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("gbt: invalid config %+v", cfg)
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	var base float64
	for _, y := range ys {
		base += y
	}
	base /= float64(len(ys))

	e := &Ensemble{Base: base, LR: cfg.LearningRate}
	pred := make([]float64, len(ys))
	for i := range pred {
		pred[i] = base
	}
	residual := make([]float64, len(ys))
	idx := make([]int, len(ys))
	for i := range idx {
		idx[i] = i
	}
	for r := 0; r < cfg.Rounds; r++ {
		for i := range ys {
			residual[i] = ys[i] - pred[i]
		}
		t := fitTree(xs, residual, idx, cfg)
		e.Trees = append(e.Trees, t)
		for i := range ys {
			pred[i] += cfg.LearningRate * t.Predict(xs[i])
		}
	}
	return e, nil
}

// fitTree greedily grows one variance-reducing regression tree over the
// sample indexes idx.
func fitTree(xs [][]float64, target []float64, idx []int, cfg Config) *Tree {
	t := &Tree{}
	var grow func(samples []int, depth int) int
	grow = func(samples []int, depth int) int {
		mean := meanAt(target, samples)
		self := len(t.nodes)
		t.nodes = append(t.nodes, node{leaf: true, value: mean})
		if depth >= cfg.MaxDepth || len(samples) < 2*cfg.MinLeaf {
			return self
		}
		feat, thr, gain := bestSplit(xs, target, samples, cfg)
		if gain <= 1e-12 {
			return self
		}
		var left, right []int
		for _, s := range samples {
			if xs[s][feat] <= thr {
				left = append(left, s)
			} else {
				right = append(right, s)
			}
		}
		if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
			return self
		}
		li := grow(left, depth+1)
		ri := grow(right, depth+1)
		t.nodes[self] = node{feature: feat, threshold: thr, left: li, right: ri}
		return self
	}
	grow(idx, 0)
	return t
}

// bestSplit scans features for the threshold with maximal SSE reduction.
func bestSplit(xs [][]float64, target []float64, samples []int, cfg Config) (feat int, thr float64, gain float64) {
	nf := len(xs[samples[0]])
	total, totalSq := sums(target, samples)
	n := float64(len(samples))
	baseSSE := totalSq - total*total/n

	feat, gain = -1, 0
	type pair struct{ x, y float64 }
	buf := make([]pair, 0, len(samples))
	for f := 0; f < nf; f++ {
		buf = buf[:0]
		for _, s := range samples {
			buf = append(buf, pair{xs[s][f], target[s]})
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].x < buf[j].x })
		if buf[0].x == buf[len(buf)-1].x {
			continue
		}
		// Candidate cut positions: every value change, optionally thinned
		// to MaxBins quantiles.
		stride := 1
		if cfg.MaxBins > 0 && len(buf) > cfg.MaxBins {
			stride = len(buf) / cfg.MaxBins
		}
		var lSum, lSq float64
		lCnt := 0
		for i := 0; i+1 < len(buf); i++ {
			lSum += buf[i].y
			lSq += buf[i].y * buf[i].y
			lCnt++
			if buf[i].x == buf[i+1].x {
				continue
			}
			if stride > 1 && i%stride != 0 {
				continue
			}
			if lCnt < cfg.MinLeaf || len(buf)-lCnt < cfg.MinLeaf {
				continue
			}
			rSum := total - lSum
			rSq := totalSq - lSq
			rCnt := float64(len(buf) - lCnt)
			sse := (lSq - lSum*lSum/float64(lCnt)) + (rSq - rSum*rSum/rCnt)
			if g := baseSSE - sse; g > gain {
				gain = g
				feat = f
				thr = (buf[i].x + buf[i+1].x) / 2
			}
		}
	}
	if feat == -1 {
		return 0, 0, 0
	}
	return feat, thr, gain
}

func meanAt(ys []float64, samples []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, i := range samples {
		s += ys[i]
	}
	return s / float64(len(samples))
}

func sums(ys []float64, samples []int) (sum, sumSq float64) {
	for _, i := range samples {
		sum += ys[i]
		sumSq += ys[i] * ys[i]
	}
	return sum, sumSq
}

// MSELoss returns the mean squared error of the ensemble on (xs, ys);
// exported for tests and training diagnostics.
func (e *Ensemble) MSELoss(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for i := range xs {
		d := e.Predict(xs[i]) - ys[i]
		s += d * d
	}
	return s / float64(len(xs))
}

// NumLeaves returns the total leaf count across trees, a complexity proxy
// used in tests.
func (e *Ensemble) NumLeaves() int {
	n := 0
	for _, t := range e.Trees {
		for _, nd := range t.nodes {
			if nd.leaf {
				n++
			}
		}
	}
	return n
}
