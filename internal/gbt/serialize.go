package gbt

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// nodeState mirrors node with exported fields for gob.
type nodeState struct {
	Feature   int
	Threshold float64
	Left      int
	Right     int
	Leaf      bool
	Value     float64
}

// GobEncode implements gob.GobEncoder, flattening the array-encoded tree.
// An Ensemble gob-encodes directly: its exported fields carry everything,
// and its trees serialize through this method.
func (t *Tree) GobEncode() ([]byte, error) {
	nodes := make([]nodeState, len(t.nodes))
	for i, n := range t.nodes {
		nodes[i] = nodeState{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right, Leaf: n.leaf, Value: n.value,
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(nodes)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(data []byte) error {
	var nodes []nodeState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&nodes); err != nil {
		return fmt.Errorf("gbt: decoding tree: %w", err)
	}
	t.nodes = make([]node, len(nodes))
	for i, n := range nodes {
		if !n.Leaf && (n.Left < 0 || n.Left >= len(nodes) || n.Right < 0 || n.Right >= len(nodes)) {
			return fmt.Errorf("gbt: tree node %d has children %d/%d of %d", i, n.Left, n.Right, len(nodes))
		}
		t.nodes[i] = node{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right, leaf: n.Leaf, value: n.Value,
		}
	}
	return nil
}
