package gbt

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		a, b := rng.Float64()*10, rng.Float64()*10
		xs[i] = []float64{a, b}
		ys[i] = 2*a - b
	}
	ens, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mse := ens.MSELoss(xs, ys); mse > 1.0 {
		t.Fatalf("linear fit MSE %g too high", mse)
	}
}

func TestFitsStepFunction(t *testing.T) {
	// Trees should nail axis-aligned steps almost exactly.
	xs := make([][]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		x := float64(i) / 200
		xs[i] = []float64{x}
		if x > 0.5 {
			ys[i] = 10
		}
	}
	ens, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := ens.Predict([]float64{0.2}); math.Abs(got) > 0.5 {
		t.Fatalf("step low side = %g", got)
	}
	if got := ens.Predict([]float64{0.9}); math.Abs(got-10) > 0.5 {
		t.Fatalf("step high side = %g", got)
	}
}

func TestBoostingReducesLossMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([][]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		a, b := rng.Float64(), rng.Float64()
		xs[i] = []float64{a, b}
		ys[i] = math.Sin(5*a) + b*b
	}
	cfg := DefaultConfig()
	prev := math.Inf(1)
	for _, rounds := range []int{5, 20, 60} {
		cfg.Rounds = rounds
		ens, err := Train(xs, ys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mse := ens.MSELoss(xs, ys)
		if mse > prev+1e-9 {
			t.Fatalf("more rounds increased training loss: %g -> %g", prev, mse)
		}
		prev = mse
	}
}

func TestConstantTarget(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	ys := []float64{7, 7, 7}
	ens, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := ens.Predict([]float64{1.5}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant prediction = %g", got)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	bad := DefaultConfig()
	bad.Rounds = 0
	if _, err := Train([][]float64{{1}}, []float64{1}, bad); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = []float64{rng.Float64()}
		ys[i] = rng.Float64()
	}
	cfg := DefaultConfig()
	cfg.MinLeaf = 25 // only a root split into two exact halves could satisfy this
	ens, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if leaves := ens.NumLeaves(); leaves > cfg.Rounds*2 {
		t.Fatalf("MinLeaf=25 on 50 samples should cap each tree at 2 leaves, got %d total", leaves)
	}
}

func TestDepthZeroIsLeafOnly(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{1, 2, 3, 4}
	cfg := DefaultConfig()
	cfg.MaxDepth = 0
	cfg.Rounds = 3
	ens, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ens.NumLeaves() != 3 {
		t.Fatalf("depth-0 trees should be single leaves, got %d leaves over 3 trees", ens.NumLeaves())
	}
}
