package nn

import "fmt"

// SliceCols returns columns [lo, hi) of a as a new tensor in the autodiff
// graph. The autoregressive estimators use it to extract per-column logit
// blocks from a MADE-style network output.
func SliceCols(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.C || lo >= hi {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) of %d columns", lo, hi, a.C))
	}
	w := hi - lo
	out := Zeros(a.R, w)
	for i := 0; i < a.R; i++ {
		copy(out.V[i*w:(i+1)*w], a.V[i*a.C+lo:i*a.C+hi])
	}
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				for j := 0; j < w; j++ {
					a.G[i*a.C+lo+j] += out.G[i*w+j]
				}
			}
		}
	}
	return out
}

// SumScalars adds 1×1 tensors into one 1×1 tensor — used to combine
// per-column losses.
func SumScalars(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: SumScalars of nothing")
	}
	out := Zeros(1, 1)
	for _, t := range ts {
		if t.R != 1 || t.C != 1 {
			panic("nn: SumScalars with non-scalar input")
		}
		out.V[0] += t.V[0]
	}
	parents := append([]*Tensor(nil), ts...)
	out.prev = parents
	out.back = func() {
		for _, t := range parents {
			if t.needsGrad() {
				t.ensureGrad()
				t.G[0] += out.G[0]
			}
		}
	}
	return out
}

// MaskedMatMul returns a @ (w ∘ mask) where mask is a constant 0/1 matrix
// the same shape as w. It implements MADE's masked dense layers: the mask
// is applied to the weight values on every call, so gradients into masked
// positions are also zeroed (the product rule with a constant zero).
func MaskedMatMul(a, w *Tensor, mask []float64) *Tensor {
	if len(mask) != w.R*w.C {
		panic(fmt.Sprintf("nn: MaskedMatMul mask len %d for %dx%d", len(mask), w.R, w.C))
	}
	if a.C != w.R {
		panic(fmt.Sprintf("nn: MaskedMatMul %dx%d @ %dx%d", a.R, a.C, w.R, w.C))
	}
	out := Zeros(a.R, w.C)
	for i := 0; i < a.R; i++ {
		arow := a.V[i*a.C : (i+1)*a.C]
		orow := out.V[i*w.C : (i+1)*w.C]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			wrow := w.V[k*w.C : (k+1)*w.C]
			mrow := mask[k*w.C : (k+1)*w.C]
			for j := range wrow {
				orow[j] += av * wrow[j] * mrow[j]
			}
		}
	}
	out.prev = []*Tensor{a, w}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				grow := out.G[i*w.C : (i+1)*w.C]
				agrow := a.G[i*a.C : (i+1)*a.C]
				for k := 0; k < a.C; k++ {
					wrow := w.V[k*w.C : (k+1)*w.C]
					mrow := mask[k*w.C : (k+1)*w.C]
					var s float64
					for j, gv := range grow {
						s += gv * wrow[j] * mrow[j]
					}
					agrow[k] += s
				}
			}
		}
		if w.needsGrad() {
			w.ensureGrad()
			for i := 0; i < a.R; i++ {
				arow := a.V[i*a.C : (i+1)*a.C]
				grow := out.G[i*w.C : (i+1)*w.C]
				for k, av := range arow {
					if av == 0 {
						continue
					}
					wgrow := w.G[k*w.C : (k+1)*w.C]
					mrow := mask[k*w.C : (k+1)*w.C]
					for j, gv := range grow {
						wgrow[j] += av * gv * mrow[j]
					}
				}
			}
		}
	}
	return out
}
