package nn

import "fmt"

// SliceCols returns columns [lo, hi) of a as a new tensor in the autodiff
// graph. The autoregressive estimators use it to extract per-column logit
// blocks from a MADE-style network output.
func SliceCols(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.C || lo >= hi {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) of %d columns", lo, hi, a.C))
	}
	w := hi - lo
	out := Zeros(a.R, w)
	out.fwd = func() {
		for i := 0; i < a.R; i++ {
			copy(out.V[i*w:(i+1)*w], a.V[i*a.C+lo:i*a.C+hi])
		}
	}
	out.fwd()
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				for j := 0; j < w; j++ {
					a.G[i*a.C+lo+j] += out.G[i*w+j]
				}
			}
		}
	}
	return out
}

// SumScalars adds 1×1 tensors into one 1×1 tensor — used to combine
// per-column losses.
func SumScalars(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: SumScalars of nothing")
	}
	out := Zeros(1, 1)
	parents := append([]*Tensor(nil), ts...)
	out.fwd = func() {
		var s float64
		for _, t := range parents {
			if t.R != 1 || t.C != 1 {
				panic("nn: SumScalars with non-scalar input")
			}
			s += t.V[0]
		}
		out.V[0] = s
	}
	out.fwd()
	out.prev = parents
	out.back = func() {
		for _, t := range parents {
			if t.needsGrad() {
				t.ensureGrad()
				t.G[0] += out.G[0]
			}
		}
	}
	return out
}

// MaskedMatMul returns a @ (w ∘ mask) where mask is a constant 0/1 matrix
// the same shape as w. It implements MADE's masked dense layers: the mask
// is applied to the weight values on every forward pass, so gradients into
// masked positions are also zeroed (the product rule with a constant zero).
// Prefer MaskedAffine when the bias and activation can be fused in.
func MaskedMatMul(a, w *Tensor, mask []float64) *Tensor {
	if len(mask) != w.R*w.C {
		panic(fmt.Sprintf("nn: MaskedMatMul mask len %d for %dx%d", len(mask), w.R, w.C))
	}
	if a.C != w.R {
		panic(fmt.Sprintf("nn: MaskedMatMul %dx%d @ %dx%d", a.R, a.C, w.R, w.C))
	}
	m, k, n := a.R, a.C, w.C
	wm := make([]float64, k*n)
	out := Zeros(m, n)
	out.fwd = func() {
		maskMulInto(wm, w.V, mask)
		matMulInto(out.V, a.V, wm, m, k, n)
	}
	out.fwd()
	out.prev = []*Tensor{a, w}
	var dwm []float64
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			mulABTAccum(a.G, out.G, wm, m, n, k)
		}
		if w.needsGrad() {
			w.ensureGrad()
			if dwm == nil {
				dwm = make([]float64, k*n)
			} else {
				for i := range dwm {
					dwm[i] = 0
				}
			}
			mulATBAccum(dwm, a.V, out.G, m, k, n)
			for i, g := range dwm {
				w.G[i] += g * mask[i]
			}
		}
	}
	return out
}
