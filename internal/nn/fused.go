package nn

import (
	"fmt"
	"math"
)

// Fused dense-layer operations. A classic micrograd layer materializes
// three tensors per layer (matmul, bias add, activation); the fused ops
// compute act(x@W + b) as one node with one scratch buffer, which both
// halves the memory traffic of a training step and shrinks the tape. All
// supported activations (ReLU, Sigmoid, Tanh) have derivatives expressible
// from the activated output alone, so no pre-activation values are stored.

// actInPlace applies the activation to x in place.
func actInPlace(act Activation, x []float64) {
	switch act {
	case ActReLU:
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range x {
			x[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range x {
			x[i] = math.Tanh(v)
		}
	}
}

// actBackward writes dpre = dout ∘ act'(out), deriving the activation
// derivative from the activated outputs.
func actBackward(act Activation, dpre, out, dout []float64) {
	switch act {
	case ActReLU:
		for i, v := range out {
			if v > 0 {
				dpre[i] = dout[i]
			} else {
				dpre[i] = 0
			}
		}
	case ActSigmoid:
		for i, s := range out {
			dpre[i] = dout[i] * s * (1 - s)
		}
	case ActTanh:
		for i, th := range out {
			dpre[i] = dout[i] * (1 - th*th)
		}
	default:
		copy(dpre, dout)
	}
}

// Affine returns act(x@w + b) as a single fused operation.
// x: m×k, w: k×n, b: 1×n.
func Affine(x, w, b *Tensor, act Activation) *Tensor {
	if x.C != w.R {
		panic(fmt.Sprintf("nn: Affine %dx%d @ %dx%d", x.R, x.C, w.R, w.C))
	}
	if b.R != 1 || b.C != w.C {
		panic(fmt.Sprintf("nn: Affine bias %dx%d for width %d", b.R, b.C, w.C))
	}
	m, k, n := x.R, x.C, w.C
	out := Zeros(m, n)
	out.fwd = func() {
		matMulInto(out.V, x.V, w.V, m, k, n)
		addBiasRows(out.V, b.V, m, n)
		actInPlace(act, out.V)
	}
	out.fwd()
	out.prev = []*Tensor{x, w, b}
	dpre := make([]float64, m*n)
	out.back = func() {
		actBackward(act, dpre, out.V, out.G)
		if b.needsGrad() {
			b.ensureGrad()
			colSumAccum(b.G, dpre, m, n)
		}
		if w.needsGrad() {
			w.ensureGrad()
			mulATBAccum(w.G, x.V, dpre, m, k, n) // dW += Xᵀ @ dPre
		}
		if x.needsGrad() {
			x.ensureGrad()
			mulABTAccum(x.G, dpre, w.V, m, n, k) // dX += dPre @ Wᵀ
		}
	}
	return out
}

// MaskedAffine returns act(x@(w∘mask) + b) as a single fused operation —
// MADE's masked dense layer. The constant 0/1 mask has w's shape; the
// masked weights are rematerialized into a scratch buffer on every forward
// replay (w changes between steps), so gradients into masked positions are
// zero by construction.
func MaskedAffine(x, w, b *Tensor, mask []float64, act Activation) *Tensor {
	if len(mask) != w.R*w.C {
		panic(fmt.Sprintf("nn: MaskedAffine mask len %d for %dx%d", len(mask), w.R, w.C))
	}
	if x.C != w.R {
		panic(fmt.Sprintf("nn: MaskedAffine %dx%d @ %dx%d", x.R, x.C, w.R, w.C))
	}
	if b.R != 1 || b.C != w.C {
		panic(fmt.Sprintf("nn: MaskedAffine bias %dx%d for width %d", b.R, b.C, w.C))
	}
	m, k, n := x.R, x.C, w.C
	wm := make([]float64, k*n)
	out := Zeros(m, n)
	out.fwd = func() {
		maskMulInto(wm, w.V, mask)
		matMulInto(out.V, x.V, wm, m, k, n)
		addBiasRows(out.V, b.V, m, n)
		actInPlace(act, out.V)
	}
	out.fwd()
	out.prev = []*Tensor{x, w, b}
	dpre := make([]float64, m*n)
	dwm := make([]float64, k*n)
	out.back = func() {
		actBackward(act, dpre, out.V, out.G)
		if b.needsGrad() {
			b.ensureGrad()
			colSumAccum(b.G, dpre, m, n)
		}
		if w.needsGrad() {
			w.ensureGrad()
			for i := range dwm {
				dwm[i] = 0
			}
			mulATBAccum(dwm, x.V, dpre, m, k, n)
			for i, g := range dwm {
				w.G[i] += g * mask[i]
			}
		}
		if x.needsGrad() {
			x.ensureGrad()
			// wm still holds w∘mask from the forward pass.
			mulABTAccum(x.G, dpre, wm, m, n, k)
		}
	}
	return out
}

// MadeCrossEntropy returns the summed per-column softmax cross-entropy of a
// MADE logit matrix as a 1×1 tensor: for every row and every column block
// [offsets[c], offsets[c]+bins[c]) it adds -log softmax(block)[target],
// averaged over rows. targets holds the target bin of row i, column c at
// i*len(bins)+c and is captured by reference for Tape replay.
//
// It fuses what the unfused path spells as SliceCols + SoftmaxCrossEntropy
// per column + SumScalars: one node, one probability scratch, no per-column
// tensors.
func MadeCrossEntropy(logits *Tensor, offsets, bins []int, targets []int) *Tensor {
	ncols := len(bins)
	if len(offsets) != ncols {
		panic(fmt.Sprintf("nn: MadeCrossEntropy %d offsets for %d bins", len(offsets), ncols))
	}
	if len(targets) != logits.R*ncols {
		panic(fmt.Sprintf("nn: MadeCrossEntropy %d targets for %d rows × %d cols", len(targets), logits.R, ncols))
	}
	m, w := logits.R, logits.C
	probs := make([]float64, m*w)
	out := Zeros(1, 1)
	out.fwd = func() {
		var loss float64
		for i := 0; i < m; i++ {
			row := logits.V[i*w : (i+1)*w]
			prow := probs[i*w : (i+1)*w]
			for c := 0; c < ncols; c++ {
				off, nb := offsets[c], bins[c]
				block := row[off : off+nb]
				maxv := block[0]
				for _, v := range block[1:] {
					if v > maxv {
						maxv = v
					}
				}
				var sum float64
				for j, v := range block {
					e := math.Exp(v - maxv)
					prow[off+j] = e
					sum += e
				}
				for j := range block {
					prow[off+j] /= sum
				}
				loss -= math.Log(prow[off+targets[i*ncols+c]] + 1e-12)
			}
		}
		out.V[0] = loss / float64(m)
	}
	out.fwd()
	out.prev = []*Tensor{logits}
	out.back = func() {
		if !logits.needsGrad() {
			return
		}
		logits.ensureGrad()
		inv := out.G[0] / float64(m)
		for i := 0; i < m; i++ {
			grow := logits.G[i*w : (i+1)*w]
			prow := probs[i*w : (i+1)*w]
			for c := 0; c < ncols; c++ {
				off, nb := offsets[c], bins[c]
				for j := 0; j < nb; j++ {
					grow[off+j] += inv * prow[off+j]
				}
				grow[off+targets[i*ncols+c]] -= inv
			}
		}
	}
	return out
}
