package nn

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMulForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(32, 64, randMatrixValues(rng, 32, 64))
	w := New(64, 64, randMatrixValues(rng, 64, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, []int{64, 64, 32, 1}, ActReLU, ActNone)
	x := New(16, 64, randMatrixValues(rng, 16, 64))
	target := make([]float64, 16)
	opt := NewAdam(mlp.Params(), 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := MSE(mlp.Forward(x), target)
		loss.Backward()
		opt.Step()
	}
}

func BenchmarkMaskedMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(16, 80, randMatrixValues(rng, 16, 80))
	w := New(80, 40, randMatrixValues(rng, 80, 40))
	mask := make([]float64, 80*40)
	for i := range mask {
		if rng.Float64() < 0.5 {
			mask[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskedMatMul(x, w, mask)
	}
}
