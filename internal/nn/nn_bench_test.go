package nn

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMulForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(32, 64, randMatrixValues(rng, 32, 64))
	w := New(64, 64, randMatrixValues(rng, 64, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, []int{64, 64, 32, 1}, ActReLU, ActNone)
	x := New(16, 64, randMatrixValues(rng, 16, 64))
	target := make([]float64, 16)
	opt := NewAdam(mlp.Params(), 1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := MSE(mlp.Forward(x), target)
		loss.Backward()
		opt.Step()
	}
}

// BenchmarkTapeTrainStep is the steady-state counterpart of
// BenchmarkMLPForwardBackward: the same network and batch trained by
// replaying a recorded tape. Expected 0 allocs/op (asserted by
// TestTapeStepZeroAlloc).
func BenchmarkTapeTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, []int{64, 64, 32, 1}, ActReLU, ActNone)
	x := New(16, 64, randMatrixValues(rng, 16, 64))
	target := make([]float64, 16)
	tape := NewTape(MSE(mlp.Forward(x), target))
	opt := NewAdam(mlp.Params(), 1e-3)
	tape.Forward()
	tape.BackwardScalar()
	opt.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape.Forward()
		tape.BackwardScalar()
		opt.Step()
	}
}

func BenchmarkMaskedMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(16, 80, randMatrixValues(rng, 16, 80))
	w := New(80, 40, randMatrixValues(rng, 80, 40))
	mask := make([]float64, 80*40)
	for i := range mask {
		if rng.Float64() < 0.5 {
			mask[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaskedMatMul(x, w, mask)
	}
}

// BenchmarkMaskedAffineTrainStep measures a full fused masked-layer train
// step (the MADE training inner loop) on a recorded tape.
func BenchmarkMaskedAffineTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := New(16, 80, randMatrixValues(rng, 16, 80))
	w := XavierParam(rng, 80, 40)
	bias := NewParam(1, 40)
	mask := make([]float64, 80*40)
	for i := range mask {
		if rng.Float64() < 0.5 {
			mask[i] = 1
		}
	}
	target := make([]float64, 16*40)
	tape := NewTape(MSE(MaskedAffine(x, w, bias, mask, ActReLU), target))
	opt := NewAdam([]*Tensor{w, bias}, 1e-3)
	tape.Forward()
	tape.BackwardScalar()
	opt.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape.Forward()
		tape.BackwardScalar()
		opt.Step()
	}
}
