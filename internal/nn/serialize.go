package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// tensorState is the persisted form of a Tensor: shape and values only.
// Gradients (G) are transient optimizer state and the autodiff closures
// are rebuilt by whatever graph the loaded tensor joins, so serializing
// either would only bloat artifacts — model files shrink roughly 2x by
// leaving G out.
type tensorState struct {
	R, C int
	V    []float64
}

// GobEncode implements gob.GobEncoder.
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&tensorState{R: t.R, C: t.C, V: t.V})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. The decoded tensor is a plain leaf
// (no gradient buffer, not marked trainable) — exactly what inference
// needs; re-training a loaded model requires fresh parameter tensors.
func (t *Tensor) GobDecode(data []byte) error {
	var st tensorState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nn: decoding tensor: %w", err)
	}
	if len(st.V) != st.R*st.C {
		return fmt.Errorf("nn: tensor state %dx%d carries %d values", st.R, st.C, len(st.V))
	}
	*t = Tensor{R: st.R, C: st.C, V: st.V}
	return nil
}
