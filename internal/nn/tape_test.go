package nn

import (
	"math"
	"math/rand"
	"testing"
)

// fillRand writes fresh pseudo-random values into dst.
func fillRand(rng *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = rng.NormFloat64()
	}
}

// TestTapeReplayMatchesDynamic trains two identically initialized MLPs on
// the same stream of minibatches — one replaying a recorded tape, one
// rebuilding the graph every step — and requires identical losses and
// identical parameters throughout.
func TestTapeReplayMatchesDynamic(t *testing.T) {
	sizes := []int{10, 16, 8, 1}
	tapeNet := NewMLP(rand.New(rand.NewSource(7)), sizes, ActReLU, ActNone)
	dynNet := NewMLP(rand.New(rand.NewSource(7)), sizes, ActReLU, ActNone)

	const batch = 4
	x := Zeros(batch, 10)
	target := make([]float64, batch)
	tape := NewTape(MSE(tapeNet.Forward(x), target))
	tapeOpt := NewAdam(tapeNet.Params(), 1e-2)
	dynOpt := NewAdam(dynNet.Params(), 1e-2)

	data := rand.New(rand.NewSource(99))
	for step := 0; step < 25; step++ {
		fillRand(data, x.V)
		fillRand(data, target)

		tape.Forward()
		tapeLoss := tape.Out().Scalar()
		tape.BackwardScalar()
		tapeOpt.Step()

		dx := Zeros(batch, 10)
		copy(dx.V, x.V)
		dynLoss := MSE(dynNet.Forward(dx), target)
		dynLoss.Backward()
		dynOpt.Step()

		if math.Abs(tapeLoss-dynLoss.Scalar()) > 1e-12 {
			t.Fatalf("step %d: tape loss %g vs dynamic %g", step, tapeLoss, dynLoss.Scalar())
		}
	}
	tp, dp := tapeNet.Params(), dynNet.Params()
	for pi := range tp {
		for i := range tp[pi].V {
			if math.Abs(tp[pi].V[i]-dp[pi].V[i]) > 1e-12 {
				t.Fatalf("param %d element %d diverged: %g vs %g", pi, i, tp[pi].V[i], dp[pi].V[i])
			}
		}
	}
}

// TestTapeGradientAccumulation verifies parameter gradients accumulate
// across Backward calls (the DML loop backpropagates a whole batch of
// tapes before one optimizer step) while intermediate gradients reset.
func TestTapeGradientAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := XavierParam(rng, 3, 2)
	b := NewParam(1, 2)
	x := Zeros(2, 3)
	fillRand(rng, x.V)
	target := make([]float64, 4)
	tape := NewTape(MSE(Affine(x, w, b, ActTanh), target))

	tape.Forward()
	tape.BackwardScalar()
	once := append([]float64(nil), w.G...)
	tape.Forward()
	tape.BackwardScalar()
	for i := range w.G {
		if math.Abs(w.G[i]-2*once[i]) > 1e-12 {
			t.Fatalf("gradient %d did not accumulate: %g after two passes, %g after one", i, w.G[i], once[i])
		}
	}
}

// TestTapeStepZeroAlloc asserts the headline property of the tape: a
// steady-state training step (forward + backward + Adam update) performs
// zero heap allocations.
func TestTapeStepZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mlp := NewMLP(rng, []int{32, 32, 16, 1}, ActReLU, ActNone)
	const batch = 8
	x := Zeros(batch, 32)
	fillRand(rng, x.V)
	target := make([]float64, batch)
	fillRand(rng, target)
	tape := NewTape(MSE(mlp.Forward(x), target))
	opt := NewAdam(mlp.Params(), 1e-3)

	// Warm up: first backward may allocate lazily created buffers.
	tape.Forward()
	tape.BackwardScalar()
	opt.Step()

	allocs := testing.AllocsPerRun(50, func() {
		tape.Forward()
		tape.BackwardScalar()
		opt.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state tape step allocates %.1f times per op, want 0", allocs)
	}
}
