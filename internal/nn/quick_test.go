package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on the tensor algebra: the autodiff ops must satisfy the
// algebraic identities of the underlying linear algebra, and gradients must
// be linear in the seed.

func randMatrixValues(rng *rand.Rand, r, c int) []float64 {
	v := make([]float64, r*c)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(3), 2+rng.Intn(3), 2+rng.Intn(3)
		a := New(m, k, randMatrixValues(rng, m, k))
		b := New(k, n, randMatrixValues(rng, k, n))
		c := New(k, n, randMatrixValues(rng, k, n))
		// a@(b+c) == a@b + a@c
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		for i := range lhs.V {
			if math.Abs(lhs.V[i]-rhs.V[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(2, 3, randMatrixValues(rng, 2, 3))
		b := New(3, 4, randMatrixValues(rng, 3, 4))
		c := New(4, 2, randMatrixValues(rng, 4, 2))
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		for i := range lhs.V {
			if math.Abs(lhs.V[i]-rhs.V[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientLinearInSeed(t *testing.T) {
	// Backprop is linear: seeding with 2g must produce exactly twice the
	// parameter gradients of seeding with g.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w1 := XavierParam(rng, 3, 4)
		x := New(2, 3, randMatrixValues(rng, 2, 3))
		g := randMatrixValues(rng, 2, 4)

		run := func(scale float64) []float64 {
			w1.ZeroGrad()
			out := ReLU(MatMul(x, w1))
			seed := make([]float64, len(g))
			for i := range seed {
				seed[i] = g[i] * scale
			}
			out.BackwardWithGrad(seed)
			return append([]float64(nil), w1.G...)
		}
		g1 := run(1)
		g2 := run(2)
		for i := range g1 {
			if math.Abs(g2[i]-2*g1[i]) > 1e-9*(1+math.Abs(g1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSumRowsEqualsManualSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		a := New(r, c, randMatrixValues(rng, r, c))
		s := SumRows(a)
		for j := 0; j < c; j++ {
			var want float64
			for i := 0; i < r; i++ {
				want += a.At(i, j)
			}
			if math.Abs(s.V[j]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 3, randMatrixValues(rng, 3, 3))
		once := ReLU(a)
		twice := ReLU(once)
		for i := range once.V {
			if once.V[i] != twice.V[i] {
				return false
			}
			if once.V[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidRangeAndMonotone(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		a := New(1, 2, []float64{x, y})
		s := Sigmoid(a)
		if s.V[0] < 0 || s.V[0] > 1 || s.V[1] < 0 || s.V[1] > 1 {
			return false
		}
		if x < y && s.V[0] > s.V[1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
