package nn

import "math/rand"

// Activation selects the nonlinearity of a dense layer.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActSigmoid
	ActTanh
)

// Dense is a fully connected layer y = act(x@W + b).
type Dense struct {
	W, B *Tensor
	Act  Activation
}

// NewDense returns a Dense layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	return &Dense{W: XavierParam(rng, in, out), B: NewParam(1, out), Act: act}
}

// Forward applies the layer to x (m×in) as one fused Affine node.
func (d *Dense) Forward(x *Tensor) *Tensor {
	return Affine(x, d.W, d.B, d.Act)
}

// Params returns the layer's trainable tensors.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.W, d.B} }

// MLP is a stack of Dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes (len >= 2); hidden layers
// use hiddenAct and the output layer uses outAct.
func NewMLP(rng *rand.Rand, sizes []int, hiddenAct, outAct Activation) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(rng, sizes[i], sizes[i+1], act))
	}
	return m
}

// Forward applies all layers in order.
func (m *MLP) Forward(x *Tensor) *Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Params returns all trainable tensors of the MLP.
func (m *MLP) Params() []*Tensor {
	var out []*Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
