package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// ZeroGrad clears the gradients without updating.
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	Params []*Tensor
	LR     float64
	// Clip, when positive, bounds the absolute value of each gradient
	// element before the update.
	Clip float64
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*Tensor, lr float64) *SGD {
	return &SGD{Params: params, LR: lr, Clip: 5}
}

// Step implements Optimizer.
func (o *SGD) Step() {
	for _, p := range o.Params {
		for i := range p.V {
			g := p.G[i]
			if o.Clip > 0 {
				g = clamp(g, -o.Clip, o.Clip)
			}
			p.V[i] -= o.LR * g
			p.G[i] = 0
		}
	}
}

// ZeroGrad implements Optimizer.
func (o *SGD) ZeroGrad() { zeroAll(o.Params) }

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction
// and optional gradient clipping.
type Adam struct {
	Params []*Tensor
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64

	m, v [][]float64
	t    int
}

// NewAdam returns an Adam optimizer with standard hyperparameters.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.V))
		a.v[i] = make([]float64, len(p.V))
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	// Fold the bias corrections into the update constants so the inner
	// loop is one fused multiply-add chain plus a sqrt: the step is
	// lr/bc1 * m / (sqrt(v/bc2) + eps) = lrT * m / (sqrt(v)*rbc2 + eps).
	lrT := a.LR / bc1
	rbc2 := 1 / math.Sqrt(bc2)
	b1, b2, clip, eps := a.Beta1, a.Beta2, a.Clip, a.Eps
	for pi, p := range a.Params {
		m, v := a.m[pi], a.v[pi]
		pv, pg := p.V, p.G
		for i, g := range pg {
			if clip > 0 {
				g = clamp(g, -clip, clip)
			}
			mi := b1*m[i] + (1-b1)*g
			vi := b2*v[i] + (1-b2)*g*g
			m[i], v[i] = mi, vi
			pv[i] -= lrT * mi / (math.Sqrt(vi)*rbc2 + eps)
			pg[i] = 0
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() { zeroAll(a.Params) }

func zeroAll(params []*Tensor) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
