package nn

import "fmt"

// Tape is a recorded autodiff graph that can be replayed. Every training
// step of the estimators in this repository rebuilds an identical graph
// shape — only the input values change — so the graph is built once, its
// operation nodes are captured in topological order, and subsequent steps
// replay the recorded forward/backward closures over the preallocated
// value/gradient buffers. A steady-state Forward+Backward pair performs no
// allocation.
//
// Usage:
//
//	x := nn.Zeros(batch, dim)          // leaf input, rewritten per step
//	target := make([]float64, batch)   // captured by MSE, rewritten per step
//	tape := nn.NewTape(nn.MSE(mlp.Forward(x), target))
//	for step := range steps {
//	    copyBatchInto(x.V, target)
//	    tape.Forward()
//	    tape.BackwardScalar()
//	    opt.Step()
//	}
//
// Parameter gradients accumulate across Backward calls exactly as in the
// dynamic path (the optimizer's Step clears them); gradients of
// intermediate nodes are zeroed at the start of every Backward.
//
// A Tape is not safe for concurrent use: replay mutates the recorded
// buffers in place.
type Tape struct {
	out *Tensor
	// nodes holds the operation nodes (tensors with closures) reachable
	// from out, parents before children.
	nodes []*Tensor
}

// NewTape records the graph rooted at out, which must have been produced
// by at least one operation. The graph is assumed fully built: operations
// added to out's ancestry after recording are not replayed.
func NewTape(out *Tensor) *Tape {
	if out.fwd == nil && out.back == nil {
		panic("nn: NewTape on a leaf tensor")
	}
	tp := &Tape{out: out}
	visited := map[*Tensor]bool{out: true}
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t: out}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.prev) {
			p := f.t.prev[f.next]
			f.next++
			// Only operation nodes replay; leaves (inputs, params,
			// constants) keep their externally managed values.
			if !visited[p] && (p.fwd != nil || p.back != nil) {
				visited[p] = true
				stack = append(stack, frame{t: p})
			}
			continue
		}
		tp.nodes = append(tp.nodes, f.t)
		stack = stack[:len(stack)-1]
	}
	// Preallocate every gradient buffer so replayed backward passes never
	// allocate.
	for _, n := range tp.nodes {
		n.ensureGrad()
	}
	return tp
}

// Out returns the recorded graph's output tensor.
func (tp *Tape) Out() *Tensor { return tp.out }

// Forward replays the recorded forward closures in topological order and
// returns the output tensor.
func (tp *Tape) Forward() *Tensor {
	for _, n := range tp.nodes {
		if n.fwd != nil {
			n.fwd()
		}
	}
	return tp.out
}

// Backward zeroes the intermediate gradients, seeds the output gradient
// with g (len R*C of the output), and replays the backward closures in
// reverse topological order. Parameter leaves accumulate as usual.
func (tp *Tape) Backward(g []float64) {
	out := tp.out
	if len(g) != out.R*out.C {
		panic(fmt.Sprintf("nn: Tape.Backward got %d values for %dx%d", len(g), out.R, out.C))
	}
	for _, n := range tp.nodes {
		for i := range n.G {
			n.G[i] = 0
		}
	}
	for i := range g {
		out.G[i] = g[i]
	}
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		if tp.nodes[i].back != nil {
			tp.nodes[i].back()
		}
	}
}

var scalarSeed = []float64{1}

// BackwardScalar seeds a 1×1 output (a scalar loss) with gradient 1.
func (tp *Tape) BackwardScalar() {
	if tp.out.R != 1 || tp.out.C != 1 {
		panic("nn: BackwardScalar on non-scalar tape output")
	}
	tp.Backward(scalarSeed)
}

// BatchTapes caches one recorded training graph per batch size — the
// shared shape of every minibatch trainer in this repository, whose epochs
// see exactly two sizes (the full batch and the tail remainder). T bundles
// a Tape with whatever input buffers the trainer rewrites per step.
type BatchTapes[T any] struct {
	build func(bsz int) T
	m     map[int]T
}

// NewBatchTapes returns a cache that records a training graph with build
// on first use of each batch size.
func NewBatchTapes[T any](build func(bsz int) T) *BatchTapes[T] {
	return &BatchTapes[T]{build: build, m: map[int]T{}}
}

// For returns the recorded graph for the given batch size.
func (c *BatchTapes[T]) For(bsz int) T {
	t, ok := c.m[bsz]
	if !ok {
		t = c.build(bsz)
		c.m[bsz] = t
	}
	return t
}
