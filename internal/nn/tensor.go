// Package nn is a small, pure-Go neural-network stack: row-major 2-D
// tensors, reverse-mode automatic differentiation, dense layers, and the
// Adam/SGD optimizers. It is the substrate for every learned component in
// the repository — the query-driven estimators (MSCN, LW-NN), the
// autoregressive data-driven estimators (NeuroCard, UAE), the MLP selection
// baseline, and AutoCE's GIN graph encoder.
//
// The autodiff design follows the classic "micrograd" scheme — every
// operation returns a Tensor that remembers its parents and a closure that
// propagates gradients to them — extended with a forward closure per
// operation so a recorded graph can be replayed. Training loops that repeat
// the same graph shape every step wrap the built graph in a Tape (tape.go):
// subsequent Forward/Backward passes reset and replay the recorded closures
// in place of rebuilding the graph, making steady-state steps allocation
// free.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a row-major matrix participating in the autodiff graph.
// Leaf tensors created with NewParam accumulate gradients; tensors created
// by operations carry forward/backward closures.
type Tensor struct {
	R, C int
	V    []float64 // values, len R*C
	G    []float64 // gradient, allocated lazily

	prev []*Tensor
	// fwd recomputes V from the parents' current values; back propagates
	// G into the parents. Both are nil on leaves.
	fwd  func()
	back func()
	// param marks trainable leaves so Backward propagates into them.
	param bool
}

// New returns a tensor with the given shape and data (which is used
// directly, not copied). It panics when len(data) != r*c.
func New(r, c int, data []float64) *Tensor {
	if len(data) != r*c {
		panic(fmt.Sprintf("nn: New(%d,%d) with %d values", r, c, len(data)))
	}
	return &Tensor{R: r, C: c, V: data}
}

// Zeros returns a zero-valued tensor of the given shape.
func Zeros(r, c int) *Tensor { return New(r, c, make([]float64, r*c)) }

// NewParam returns a trainable zero tensor of the given shape.
func NewParam(r, c int) *Tensor {
	t := Zeros(r, c)
	t.param = true
	t.G = make([]float64, r*c)
	return t
}

// XavierParam returns a trainable tensor initialized with Glorot-uniform
// values scaled by sqrt(6/(r+c)).
func XavierParam(rng *rand.Rand, r, c int) *Tensor {
	t := NewParam(r, c)
	bound := math.Sqrt(6.0 / float64(r+c))
	for i := range t.V {
		t.V[i] = (rng.Float64()*2 - 1) * bound
	}
	return t
}

// FromRow wraps a 1×len(v) tensor around v (no copy).
func FromRow(v []float64) *Tensor { return New(1, len(v), v) }

// FromRows copies a row-major [][]float64 into an R×C tensor.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	c := len(rows[0])
	t := Zeros(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("nn: FromRows with ragged input")
		}
		copy(t.V[i*c:(i+1)*c], r)
	}
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.V[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.V[i*t.C+j] = v }

// Row returns a copy of row i.
func (t *Tensor) Row(i int) []float64 {
	out := make([]float64, t.C)
	copy(out, t.V[i*t.C:(i+1)*t.C])
	return out
}

// Scalar returns the single value of a 1×1 tensor and panics otherwise.
func (t *Tensor) Scalar() float64 {
	if t.R != 1 || t.C != 1 {
		panic(fmt.Sprintf("nn: Scalar on %dx%d tensor", t.R, t.C))
	}
	return t.V[0]
}

// IsParam reports whether t is a trainable leaf.
func (t *Tensor) IsParam() bool { return t.param }

func (t *Tensor) ensureGrad() {
	if t.G == nil {
		t.G = make([]float64, t.R*t.C)
	}
}

// needsGrad reports whether the gradient should flow through t: it is a
// parameter or has parents that might lead to parameters.
func (t *Tensor) needsGrad() bool { return t.param || t.back != nil }

// ZeroGrad clears the gradient of t.
func (t *Tensor) ZeroGrad() {
	for i := range t.G {
		t.G[i] = 0
	}
}

// Backward runs reverse-mode autodiff from t, which must be 1×1 (a scalar
// loss); the seed gradient is 1.
func (t *Tensor) Backward() {
	if t.R != 1 || t.C != 1 {
		panic("nn: Backward on non-scalar tensor; use BackwardWithGrad")
	}
	t.BackwardWithGrad([]float64{1})
}

// BackwardWithGrad seeds t's gradient with g (len R*C) and propagates
// through the graph. Use it to inject externally computed loss gradients,
// e.g. the weighted contrastive loss over a batch of graph embeddings.
func (t *Tensor) BackwardWithGrad(g []float64) {
	if len(g) != t.R*t.C {
		panic(fmt.Sprintf("nn: BackwardWithGrad got %d values for %dx%d", len(g), t.R, t.C))
	}
	// Topological order via iterative DFS.
	var topo []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t: t}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.prev) {
			p := f.t.prev[f.next]
			f.next++
			if !visited[p] && p.needsGrad() {
				visited[p] = true
				stack = append(stack, frame{t: p})
			}
			continue
		}
		topo = append(topo, f.t)
		stack = stack[:len(stack)-1]
	}
	t.ensureGrad()
	for i := range g {
		t.G[i] += g[i]
	}
	for i := len(topo) - 1; i >= 0; i-- {
		if topo[i].back != nil {
			topo[i].back()
		}
	}
}

func sameShape(a, b *Tensor) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C))
	}
}

// MatMul returns a @ b with a: m×k, b: k×n.
func MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: MatMul %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := Zeros(a.R, b.C)
	out.fwd = func() { matMulInto(out.V, a.V, b.V, a.R, a.C, b.C) }
	out.fwd()
	out.prev = []*Tensor{a, b}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			mulABTAccum(a.G, out.G, b.V, a.R, b.C, a.C) // dA += dOut @ Bᵀ
		}
		if b.needsGrad() {
			b.ensureGrad()
			mulATBAccum(b.G, a.V, out.G, a.R, a.C, b.C) // dB += Aᵀ @ dOut
		}
	}
	return out
}

// Add returns a + b elementwise (same shape).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i := range out.V {
			out.V[i] = a.V[i] + b.V[i]
		}
	}
	out.fwd()
	out.prev = []*Tensor{a, b}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				a.G[i] += out.G[i]
			}
		}
		if b.needsGrad() {
			b.ensureGrad()
			for i := range out.G {
				b.G[i] += out.G[i]
			}
		}
	}
	return out
}

// Sub returns a - b elementwise (same shape).
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i := range out.V {
			out.V[i] = a.V[i] - b.V[i]
		}
	}
	out.fwd()
	out.prev = []*Tensor{a, b}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				a.G[i] += out.G[i]
			}
		}
		if b.needsGrad() {
			b.ensureGrad()
			for i := range out.G {
				b.G[i] -= out.G[i]
			}
		}
	}
	return out
}

// Mul returns a * b elementwise (same shape).
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i := range out.V {
			out.V[i] = a.V[i] * b.V[i]
		}
	}
	out.fwd()
	out.prev = []*Tensor{a, b}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				a.G[i] += out.G[i] * b.V[i]
			}
		}
		if b.needsGrad() {
			b.ensureGrad()
			for i := range out.G {
				b.G[i] += out.G[i] * a.V[i]
			}
		}
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i := range out.V {
			out.V[i] = a.V[i] * s
		}
	}
	out.fwd()
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				a.G[i] += out.G[i] * s
			}
		}
	}
	return out
}

// AddBias returns a (m×n) + bias (1×n) broadcast over rows.
func AddBias(a, bias *Tensor) *Tensor {
	if bias.R != 1 || bias.C != a.C {
		panic(fmt.Sprintf("nn: AddBias %dx%d + %dx%d", a.R, a.C, bias.R, bias.C))
	}
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		copy(out.V, a.V)
		addBiasRows(out.V, bias.V, a.R, a.C)
	}
	out.fwd()
	out.prev = []*Tensor{a, bias}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				a.G[i] += out.G[i]
			}
		}
		if bias.needsGrad() {
			bias.ensureGrad()
			colSumAccum(bias.G, out.G, a.R, a.C)
		}
	}
	return out
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i, v := range a.V {
			if v > 0 {
				out.V[i] = v
			} else {
				out.V[i] = 0
			}
		}
	}
	out.fwd()
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				if a.V[i] > 0 {
					a.G[i] += out.G[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i, v := range a.V {
			out.V[i] = 1 / (1 + math.Exp(-v))
		}
	}
	out.fwd()
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				s := out.V[i]
				a.G[i] += out.G[i] * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		for i, v := range a.V {
			out.V[i] = math.Tanh(v)
		}
	}
	out.fwd()
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				th := out.V[i]
				a.G[i] += out.G[i] * (1 - th*th)
			}
		}
	}
	return out
}

// SumRows returns the column sums of a as a 1×C tensor — GIN's sum-pooling
// readout.
func SumRows(a *Tensor) *Tensor {
	out := Zeros(1, a.C)
	out.fwd = func() {
		for j := range out.V {
			out.V[j] = 0
		}
		colSumAccum(out.V, a.V, a.R, a.C)
	}
	out.fwd()
	out.prev = []*Tensor{a}
	out.back = func() {
		if a.needsGrad() {
			a.ensureGrad()
			for i := 0; i < a.R; i++ {
				row := a.G[i*a.C : (i+1)*a.C]
				for j, g := range out.G {
					row[j] += g
				}
			}
		}
	}
	return out
}

// MeanRows returns the column means of a as a 1×C tensor — MSCN's set
// average pooling.
func MeanRows(a *Tensor) *Tensor {
	if a.R == 0 {
		return Zeros(1, a.C)
	}
	return Scale(SumRows(a), 1/float64(a.R))
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatCols of nothing")
	}
	r := ts[0].R
	total := 0
	for _, t := range ts {
		if t.R != r {
			panic("nn: ConcatCols row mismatch")
		}
		total += t.C
	}
	out := Zeros(r, total)
	parents := append([]*Tensor(nil), ts...)
	out.fwd = func() {
		off := 0
		for _, t := range parents {
			for i := 0; i < r; i++ {
				copy(out.V[i*total+off:i*total+off+t.C], t.V[i*t.C:(i+1)*t.C])
			}
			off += t.C
		}
	}
	out.fwd()
	out.prev = parents
	out.back = func() {
		off := 0
		for _, t := range parents {
			if t.needsGrad() {
				t.ensureGrad()
				for i := 0; i < r; i++ {
					for j := 0; j < t.C; j++ {
						t.G[i*t.C+j] += out.G[i*total+off+j]
					}
				}
			}
			off += t.C
		}
	}
	return out
}

// MSE returns mean squared error between pred and a constant target of the
// same shape, as a 1×1 tensor. The target slice is captured by reference:
// a Tape replay re-reads it, so batched training loops overwrite it in
// place between steps.
func MSE(pred *Tensor, target []float64) *Tensor {
	if len(target) != pred.R*pred.C {
		panic(fmt.Sprintf("nn: MSE target len %d for %dx%d", len(target), pred.R, pred.C))
	}
	n := float64(len(target))
	out := Zeros(1, 1)
	out.fwd = func() {
		var s float64
		for i := range target {
			d := pred.V[i] - target[i]
			s += d * d
		}
		out.V[0] = s / n
	}
	out.fwd()
	out.prev = []*Tensor{pred}
	out.back = func() {
		if pred.needsGrad() {
			pred.ensureGrad()
			for i := range target {
				pred.G[i] += out.G[0] * 2 * (pred.V[i] - target[i]) / n
			}
		}
	}
	return out
}

// SoftmaxCrossEntropy returns the mean cross-entropy between row-wise
// softmax(logits) and constant soft-target rows, as a 1×1 tensor. Targets
// may be one-hot or arbitrary distributions (each row should sum to 1).
// The target rows are captured by reference for Tape replay.
func SoftmaxCrossEntropy(logits *Tensor, targets [][]float64) *Tensor {
	if len(targets) != logits.R {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy %d target rows for %d logit rows", len(targets), logits.R))
	}
	m, k := logits.R, logits.C
	probs := make([]float64, m*k)
	out := Zeros(1, 1)
	out.fwd = func() {
		var loss float64
		for i := 0; i < m; i++ {
			row := logits.V[i*k : (i+1)*k]
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for j, v := range row {
				e := math.Exp(v - maxv)
				probs[i*k+j] = e
				sum += e
			}
			for j := range row {
				probs[i*k+j] /= sum
				if targets[i][j] > 0 {
					loss -= targets[i][j] * math.Log(probs[i*k+j]+1e-12)
				}
			}
		}
		out.V[0] = loss / float64(m)
	}
	out.fwd()
	out.prev = []*Tensor{logits}
	out.back = func() {
		if logits.needsGrad() {
			logits.ensureGrad()
			for i := 0; i < m; i++ {
				for j := 0; j < k; j++ {
					logits.G[i*k+j] += out.G[0] * (probs[i*k+j] - targets[i][j]) / float64(m)
				}
			}
		}
	}
	return out
}
