package nn

// Dense float64 kernels shared by the autodiff ops. All matrices are
// row-major. The three shapes cover every pass of a dense layer:
//
//	matMulInto   out  = A @ B        (forward)
//	mulABTAccum  dA  += dOut @ Bᵀ    (input gradient; B read by rows, so the
//	                                  transposed operand streams contiguously)
//	mulATBAccum  dW  += Aᵀ @ dOut    (weight gradient)
//
// The forward and weight-gradient kernels skip zero elements of A: the
// MADE estimators and the GIN encoder feed one-hot or highly sparse rows,
// where the skip removes most of the work. The inner loops run over
// contiguous 4-way unrolled slices so the compiler keeps them in registers.

// matMulInto computes dst = a@b with a: m×k, b: k×n, dst: m×n,
// overwriting dst.
func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			axpy(orow, b[kk*n:(kk+1)*n], av)
		}
	}
}

// mulABTAccum accumulates dst += a@bᵀ with a: m×n, b: k×n, dst: m×k.
func mulABTAccum(dst, a, b []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a[i*n : (i+1)*n]
		drow := dst[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			drow[j] += dot(arow, b[j*n:(j+1)*n])
		}
	}
}

// mulATBAccum accumulates dst += aᵀ@b with a: m×k, b: m×n, dst: k×n,
// skipping zero elements of a.
func mulATBAccum(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		brow := b[i*n : (i+1)*n]
		for c, av := range arow {
			if av == 0 {
				continue
			}
			axpy(dst[c*n:(c+1)*n], brow, av)
		}
	}
}

// axpy computes dst += s*x over equal-length slices.
func axpy(dst, x []float64, s float64) {
	n := len(dst)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += s * x[i]
		dst[i+1] += s * x[i+1]
		dst[i+2] += s * x[i+2]
		dst[i+3] += s * x[i+3]
	}
	for ; i < n; i++ {
		dst[i] += s * x[i]
	}
}

// dot returns the inner product of equal-length slices.
func dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// maskMulInto computes dst = w∘mask elementwise.
func maskMulInto(dst, w, mask []float64) {
	for i, wv := range w {
		dst[i] = wv * mask[i]
	}
}

// addBiasRows adds the 1×n bias to every row of the m×n matrix in place.
func addBiasRows(x, bias []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		for j, bv := range bias[:n] {
			row[j] += bv
		}
	}
}

// colSumAccum accumulates the column sums of the m×n matrix x into the
// length-n dst.
func colSumAccum(dst, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		row := x[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v
		}
	}
}
