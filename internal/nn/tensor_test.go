package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates d(loss)/d(param[i]) by central differences, where
// loss is recomputed by forward().
func numericGrad(param *Tensor, i int, forward func() float64) float64 {
	const h = 1e-5
	old := param.V[i]
	param.V[i] = old + h
	up := forward()
	param.V[i] = old - h
	down := forward()
	param.V[i] = old
	return (up - down) / (2 * h)
}

func checkGrads(t *testing.T, name string, params []*Tensor, forward func() *Tensor) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	out := forward()
	out.Backward()
	for pi, p := range params {
		for i := range p.V {
			want := numericGrad(p, i, func() float64 { return forward().Scalar() })
			got := p.G[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s: param %d elem %d: grad %g, numeric %g", name, pi, i, got, want)
			}
		}
	}
}

func randParam(rng *rand.Rand, r, c int) *Tensor {
	p := NewParam(r, c)
	for i := range p.V {
		p.V[i] = rng.NormFloat64()
	}
	return p
}

func TestMatMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 2)
	checkGrads(t, "matmul", []*Tensor{a, b}, func() *Tensor {
		return MSE(MatMul(a, b), make([]float64, 6))
	})
}

func TestAddSubMulGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 3)
	checkGrads(t, "add", []*Tensor{a, b}, func() *Tensor {
		return MSE(Add(a, b), make([]float64, 6))
	})
	checkGrads(t, "sub", []*Tensor{a, b}, func() *Tensor {
		return MSE(Sub(a, b), make([]float64, 6))
	})
	checkGrads(t, "mul", []*Tensor{a, b}, func() *Tensor {
		return MSE(Mul(a, b), make([]float64, 6))
	})
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 2, 5)
	target := make([]float64, 10)
	checkGrads(t, "sigmoid", []*Tensor{a}, func() *Tensor { return MSE(Sigmoid(a), target) })
	checkGrads(t, "tanh", []*Tensor{a}, func() *Tensor { return MSE(Tanh(a), target) })
	// ReLU: keep values away from the kink.
	for i := range a.V {
		if math.Abs(a.V[i]) < 0.1 {
			a.V[i] = 0.5
		}
	}
	checkGrads(t, "relu", []*Tensor{a}, func() *Tensor { return MSE(ReLU(a), target) })
}

func TestBiasScalePoolingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 3, 4)
	bias := randParam(rng, 1, 4)
	checkGrads(t, "addbias", []*Tensor{a, bias}, func() *Tensor {
		return MSE(AddBias(a, bias), make([]float64, 12))
	})
	checkGrads(t, "scale", []*Tensor{a}, func() *Tensor {
		return MSE(Scale(a, 2.5), make([]float64, 12))
	})
	checkGrads(t, "sumrows", []*Tensor{a}, func() *Tensor {
		return MSE(SumRows(a), make([]float64, 4))
	})
	checkGrads(t, "meanrows", []*Tensor{a}, func() *Tensor {
		return MSE(MeanRows(a), make([]float64, 4))
	})
}

func TestConcatSliceGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 2)
	checkGrads(t, "concat", []*Tensor{a, b}, func() *Tensor {
		return MSE(ConcatCols(a, b), make([]float64, 10))
	})
	checkGrads(t, "slice", []*Tensor{a}, func() *Tensor {
		return MSE(SliceCols(a, 1, 3), make([]float64, 4))
	})
}

func TestScaleByScalarGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 2, 3)
	s := randParam(rng, 1, 1)
	checkGrads(t, "scalebyscalar", []*Tensor{a, s}, func() *Tensor {
		return MSE(ScaleByScalar(a, s), make([]float64, 6))
	})
}

func TestMaskedMatMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, 2, 4)
	w := randParam(rng, 4, 3)
	mask := make([]float64, 12)
	for i := range mask {
		if rng.Float64() < 0.6 {
			mask[i] = 1
		}
	}
	checkGrads(t, "maskedmatmul", []*Tensor{a, w}, func() *Tensor {
		return MSE(MaskedMatMul(a, w, mask), make([]float64, 6))
	})
}

func TestMaskedMatMulRespectsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, 1, 2)
	w := randParam(rng, 2, 2)
	mask := []float64{1, 0, 0, 1} // diagonal only
	out := MaskedMatMul(a, w, mask)
	want0 := a.V[0] * w.V[0]
	want1 := a.V[1] * w.V[3]
	if math.Abs(out.V[0]-want0) > 1e-12 || math.Abs(out.V[1]-want1) > 1e-12 {
		t.Fatalf("masked output (%g,%g), want (%g,%g)", out.V[0], out.V[1], want0, want1)
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := randParam(rng, 3, 4)
	targets := [][]float64{
		{1, 0, 0, 0},
		{0, 0.5, 0.5, 0},
		{0, 0, 0, 1},
	}
	checkGrads(t, "softmaxce", []*Tensor{logits}, func() *Tensor {
		return SoftmaxCrossEntropy(logits, targets)
	})
}

func TestSumScalarsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 1, 1)
	b := randParam(rng, 1, 1)
	checkGrads(t, "sumscalars", []*Tensor{a, b}, func() *Tensor {
		return SumScalars(MSE(a, []float64{1}), MSE(b, []float64{-1}))
	})
}

func TestBackwardWithGradExternalSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 1, 3)
	out := Scale(a, 3)
	out.BackwardWithGrad([]float64{1, 2, 3})
	want := []float64{3, 6, 9}
	for i := range want {
		if math.Abs(a.G[i]-want[i]) > 1e-12 {
			t.Fatalf("grad[%d] = %g, want %g", i, a.G[i], want[i])
		}
	}
}

func TestChainedGraphReuse(t *testing.T) {
	// A tensor consumed twice must receive both gradient contributions.
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 1, 2)
	checkGrads(t, "reuse", []*Tensor{a}, func() *Tensor {
		return MSE(Add(a, a), make([]float64, 2))
	})
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mlp := NewMLP(rng, []int{2, 8, 1}, ActTanh, ActNone)
	opt := NewAdam(mlp.Params(), 0.05)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	var loss float64
	for epoch := 0; epoch < 500; epoch++ {
		out := mlp.Forward(FromRows(xs))
		l := MSE(out, ys)
		loss = l.Scalar()
		l.Backward()
		opt.Step()
	}
	if loss > 0.01 {
		t.Fatalf("XOR did not converge: final loss %g", loss)
	}
}

func TestSGDDecreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	w := randParam(rng, 3, 1)
	x := FromRows([][]float64{{1, 2, 3}, {0, 1, 0}, {2, 0, 1}})
	target := []float64{1, 2, 3}
	opt := NewSGD([]*Tensor{w}, 0.05)
	first := MSE(MatMul(x, w), target).Scalar()
	for i := 0; i < 100; i++ {
		l := MSE(MatMul(x, w), target)
		l.Backward()
		opt.Step()
	}
	last := MSE(MatMul(x, w), target).Scalar()
	if last >= first {
		t.Fatalf("SGD did not decrease loss: %g -> %g", first, last)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(Zeros(2, 3), Zeros(2, 3))
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if r := m.Row(1); r[0] != 7 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	if Zeros(1, 1).Scalar() != 0 {
		t.Fatal("Scalar of zeros not 0")
	}
}
