package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Finite-difference gradient checks for the fused kernels: every analytic
// backward path (blocked MatMul, fused bias+activation, masked variants,
// the fused MADE cross-entropy) is verified against a central-difference
// estimate on every parameter element.

// checkTapeGrads verifies, for every element of every tensor in params,
// that the analytic gradient produced by a tape backward pass matches the
// central-difference quotient of replaying the recorded forward pass.
func checkTapeGrads(t *testing.T, loss *Tensor, params []*Tensor, tol float64) {
	t.Helper()
	tape := NewTape(loss)
	for _, p := range params {
		p.ZeroGrad()
	}
	tape.Forward()
	tape.BackwardScalar()
	const h = 1e-6
	for pi, p := range params {
		for i := range p.V {
			orig := p.V[i]
			p.V[i] = orig + h
			up := tape.Forward().Scalar()
			p.V[i] = orig - h
			down := tape.Forward().Scalar()
			p.V[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.G[i]
			if diff := math.Abs(numeric - analytic); diff > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d element %d: analytic %g vs numeric %g", pi, i, analytic, numeric)
			}
		}
	}
}

func TestAffineGradient(t *testing.T) {
	for _, act := range []Activation{ActNone, ActReLU, ActSigmoid, ActTanh} {
		rng := rand.New(rand.NewSource(41 + int64(act)))
		x := randParam(rng, 5, 7) // param x also checks the input-gradient path
		w := randParam(rng, 7, 4)
		b := randParam(rng, 1, 4)
		target := make([]float64, 5*4)
		for i := range target {
			target[i] = rng.NormFloat64()
		}
		loss := MSE(Affine(x, w, b, act), target)
		checkTapeGrads(t, loss, []*Tensor{x, w, b}, 1e-4)
	}
}

func TestMaskedAffineGradient(t *testing.T) {
	for _, act := range []Activation{ActNone, ActReLU} {
		rng := rand.New(rand.NewSource(47 + int64(act)))
		x := randParam(rng, 4, 6)
		w := randParam(rng, 6, 5)
		b := randParam(rng, 1, 5)
		mask := make([]float64, 6*5)
		for i := range mask {
			if rng.Float64() < 0.6 {
				mask[i] = 1
			}
		}
		target := make([]float64, 4*5)
		for i := range target {
			target[i] = rng.NormFloat64()
		}
		loss := MSE(MaskedAffine(x, w, b, mask, act), target)
		checkTapeGrads(t, loss, []*Tensor{x, w, b}, 1e-4)

		// Gradients must never flow into masked positions.
		for i, mv := range mask {
			if mv == 0 && w.G[i] != 0 {
				t.Fatalf("gradient %g leaked into masked weight %d", w.G[i], i)
			}
		}
	}
}

func TestMadeCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	offsets := []int{0, 3, 7}
	bins := []int{3, 4, 2}
	width := 9
	rows := 5
	logits := randParam(rng, rows, width)
	targets := make([]int, rows*len(bins))
	for i := 0; i < rows; i++ {
		for c, nb := range bins {
			targets[i*len(bins)+c] = rng.Intn(nb)
		}
	}
	loss := MadeCrossEntropy(logits, offsets, bins, targets)
	checkTapeGrads(t, loss, []*Tensor{logits}, 1e-4)
}

// TestMadeCrossEntropyMatchesUnfused pins the fused op to the composition
// it replaces: SliceCols + SoftmaxCrossEntropy per column + SumScalars.
func TestMadeCrossEntropyMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	offsets := []int{0, 4, 6}
	bins := []int{4, 2, 5}
	width := 11
	rows := 6
	vals := make([]float64, rows*width)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	targets := make([]int, rows*len(bins))
	for i := 0; i < rows; i++ {
		for c, nb := range bins {
			targets[i*len(bins)+c] = rng.Intn(nb)
		}
	}

	fusedIn := NewParam(rows, width)
	copy(fusedIn.V, vals)
	fused := MadeCrossEntropy(fusedIn, offsets, bins, targets)
	fused.Backward()

	plainIn := NewParam(rows, width)
	copy(plainIn.V, vals)
	var losses []*Tensor
	for c, nb := range bins {
		block := SliceCols(plainIn, offsets[c], offsets[c]+nb)
		soft := make([][]float64, rows)
		for i := 0; i < rows; i++ {
			soft[i] = make([]float64, nb)
			soft[i][targets[i*len(bins)+c]] = 1
		}
		losses = append(losses, SoftmaxCrossEntropy(block, soft))
	}
	plain := SumScalars(losses...)
	plain.Backward()

	if diff := math.Abs(fused.Scalar() - plain.Scalar()); diff > 1e-9 {
		t.Fatalf("fused loss %g vs unfused %g", fused.Scalar(), plain.Scalar())
	}
	for i := range fusedIn.G {
		if diff := math.Abs(fusedIn.G[i] - plainIn.G[i]); diff > 1e-9 {
			t.Fatalf("gradient %d: fused %g vs unfused %g", i, fusedIn.G[i], plainIn.G[i])
		}
	}
}
