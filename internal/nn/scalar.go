package nn

import "fmt"

// ScaleByScalar returns a scaled elementwise by the single value of s
// (a 1×1 tensor), with gradients flowing into both a and s. GIN uses it
// for the learnable (1+ε) self-loop weight of Eq. 5.
func ScaleByScalar(a, s *Tensor) *Tensor {
	if s.R != 1 || s.C != 1 {
		panic(fmt.Sprintf("nn: ScaleByScalar with %dx%d scalar", s.R, s.C))
	}
	out := Zeros(a.R, a.C)
	out.fwd = func() {
		sv := s.V[0]
		for i := range out.V {
			out.V[i] = a.V[i] * sv
		}
	}
	out.fwd()
	out.prev = []*Tensor{a, s}
	out.back = func() {
		sv := s.V[0]
		if a.needsGrad() {
			a.ensureGrad()
			for i := range out.G {
				a.G[i] += out.G[i] * sv
			}
		}
		if s.needsGrad() {
			s.ensureGrad()
			var acc float64
			for i := range out.G {
				acc += out.G[i] * a.V[i]
			}
			s.G[0] += acc
		}
	}
	return out
}
