// Package metrics implements the evaluation metrics of the paper's Section
// II and IV-B: Q-error, inference latency aggregation, score normalization
// across cardinality-estimation models (Eq. 2-4), and the D-error used to
// measure recommendation quality (Definition 1).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// QError returns the Q-error of an estimate against the true cardinality:
// max(est,true)/min(est,true). Both inputs are clamped to a floor of 1 so
// the metric is defined for empty results and degenerate estimates, the
// standard convention in the CE literature.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// MeanQError returns the mean Q-error over paired estimates and truths.
// It panics when the slices have different lengths and returns 1 for empty
// input (the Q-error of a vacuous workload).
func MeanQError(ests, truths []float64) float64 {
	if len(ests) != len(truths) {
		panic(fmt.Sprintf("metrics: MeanQError length mismatch %d vs %d", len(ests), len(truths)))
	}
	if len(ests) == 0 {
		return 1
	}
	var s float64
	for i := range ests {
		s += QError(ests[i], truths[i])
	}
	return s / float64(len(ests))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Perf holds the raw measured performance of one CE model on one dataset:
// the mean Q-error over the testing queries and the mean inference latency
// in seconds.
type Perf struct {
	QErrorMean  float64
	LatencyMean float64
}

// NormalizeScores implements the paper's Eq. 3 and Eq. 4. Given the raw
// performance of m models on a single dataset, it returns per-model
// normalized accuracy scores Sa and efficiency scores Se, each in [0,1],
// where the best model per metric receives 1 and the worst receives 0.
// When all models tie on a metric, every model receives 1 for it.
func NormalizeScores(perfs []Perf) (sa, se []float64) {
	m := len(perfs)
	sa = make([]float64, m)
	se = make([]float64, m)
	if m == 0 {
		return sa, se
	}
	minQ, maxQ := perfs[0].QErrorMean, perfs[0].QErrorMean
	minT, maxT := perfs[0].LatencyMean, perfs[0].LatencyMean
	for _, p := range perfs[1:] {
		minQ = math.Min(minQ, p.QErrorMean)
		maxQ = math.Max(maxQ, p.QErrorMean)
		minT = math.Min(minT, p.LatencyMean)
		maxT = math.Max(maxT, p.LatencyMean)
	}
	for i, p := range perfs {
		if maxQ > minQ {
			sa[i] = (maxQ - p.QErrorMean) / (maxQ - minQ)
		} else {
			sa[i] = 1
		}
		if maxT > minT {
			se[i] = (maxT - p.LatencyMean) / (maxT - minT)
		} else {
			se[i] = 1
		}
	}
	return sa, se
}

// CombineScores implements Eq. 2: S = wa*Sa + we*Se with we = 1-wa.
// wa is clamped into [0,1].
func CombineScores(sa, se []float64, wa float64) []float64 {
	if wa < 0 {
		wa = 0
	}
	if wa > 1 {
		wa = 1
	}
	out := make([]float64, len(sa))
	for i := range sa {
		out[i] = wa*sa[i] + (1-wa)*se[i]
	}
	return out
}

// DError implements Definition 1: how far the performance score of the
// chosen model is from the optimal model's score on the same dataset,
// (S_opt - S_chosen) / S_chosen. scores is the dataset's combined score
// vector; chosen is the index of the recommended model. A perfect
// recommendation yields 0. The chosen score is floored at a small epsilon
// so a zero-score recommendation yields a large-but-finite error.
func DError(scores []float64, chosen int) float64 {
	if len(scores) == 0 || chosen < 0 || chosen >= len(scores) {
		return math.Inf(1)
	}
	opt := scores[0]
	for _, s := range scores[1:] {
		if s > opt {
			opt = s
		}
	}
	sc := scores[chosen]
	const eps = 1e-3
	if sc < eps {
		sc = eps
	}
	d := (opt - sc) / sc
	if d < 0 {
		d = 0
	}
	return d
}

// ArgMax returns the index of the largest element of xs (first winner on
// ties), or -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// CosineSimilarity implements Eq. 6, the performance similarity between two
// score vectors. It returns 0 when either vector has zero norm.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: CosineSimilarity length mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// EuclideanDistance implements Eq. 8 on raw float vectors.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: EuclideanDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
