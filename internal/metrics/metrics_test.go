package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	if got := QError(10, 100); got != 10 {
		t.Fatalf("QError(10,100) = %g", got)
	}
	if got := QError(100, 10); got != 10 {
		t.Fatalf("QError(100,10) = %g", got)
	}
	if got := QError(50, 50); got != 1 {
		t.Fatalf("exact estimate QError = %g", got)
	}
	// Clamping: zero estimates and truths behave as 1.
	if got := QError(0, 5); got != 5 {
		t.Fatalf("QError(0,5) = %g", got)
	}
	if got := QError(5, 0); got != 5 {
		t.Fatalf("QError(5,0) = %g", got)
	}
}

func TestQErrorAlwaysAtLeastOne(t *testing.T) {
	f := func(a, b float64) bool {
		return QError(math.Abs(a), math.Abs(b)) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQErrorSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+1, math.Abs(b)+1
		return math.Abs(QError(a, b)-QError(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanQError(t *testing.T) {
	got := MeanQError([]float64{10, 100}, []float64{100, 10})
	if got != 10 {
		t.Fatalf("MeanQError = %g, want 10", got)
	}
	if MeanQError(nil, nil) != 1 {
		t.Fatal("empty MeanQError should be 1")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %g", got)
	}
	if got := Percentile(xs, 90); math.Abs(got-4.6) > 1e-9 {
		t.Fatalf("P90 = %g, want 4.6", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestNormalizeScores(t *testing.T) {
	perfs := []Perf{
		{QErrorMean: 1, LatencyMean: 0.010},  // most accurate, slowest
		{QErrorMean: 11, LatencyMean: 0.001}, // least accurate, fastest
		{QErrorMean: 6, LatencyMean: 0.0055},
	}
	sa, se := NormalizeScores(perfs)
	if sa[0] != 1 || sa[1] != 0 {
		t.Fatalf("accuracy scores %v", sa)
	}
	if se[1] != 1 || se[0] != 0 {
		t.Fatalf("efficiency scores %v", se)
	}
	if math.Abs(sa[2]-0.5) > 1e-9 || math.Abs(se[2]-0.5) > 1e-9 {
		t.Fatalf("midpoint scores sa=%g se=%g", sa[2], se[2])
	}
}

func TestNormalizeScoresAllTied(t *testing.T) {
	perfs := []Perf{{QErrorMean: 2, LatencyMean: 1}, {QErrorMean: 2, LatencyMean: 1}}
	sa, se := NormalizeScores(perfs)
	for i := range perfs {
		if sa[i] != 1 || se[i] != 1 {
			t.Fatalf("tied scores should be 1: sa=%v se=%v", sa, se)
		}
	}
}

func TestNormalizeScoresInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		perfs := make([]Perf, n)
		for i := range perfs {
			perfs[i] = Perf{QErrorMean: 1 + rng.Float64()*100, LatencyMean: rng.Float64()}
		}
		sa, se := NormalizeScores(perfs)
		for i := range perfs {
			if sa[i] < 0 || sa[i] > 1 || se[i] < 0 || se[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineScores(t *testing.T) {
	sa := []float64{1, 0}
	se := []float64{0, 1}
	s := CombineScores(sa, se, 0.7)
	if math.Abs(s[0]-0.7) > 1e-12 || math.Abs(s[1]-0.3) > 1e-12 {
		t.Fatalf("combined = %v", s)
	}
	// Weight clamping.
	s2 := CombineScores(sa, se, 1.5)
	if s2[0] != 1 {
		t.Fatalf("clamped combine = %v", s2)
	}
}

func TestDError(t *testing.T) {
	scores := []float64{0.9, 0.6, 0.3}
	if got := DError(scores, 0); got != 0 {
		t.Fatalf("optimal choice D-error = %g", got)
	}
	if got := DError(scores, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("D-error = %g, want 0.5", got)
	}
	if got := DError(scores, 2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("D-error = %g, want 2", got)
	}
	if !math.IsInf(DError(scores, -1), 1) {
		t.Fatal("invalid index should give +Inf")
	}
	// Zero-score choice is floored, not infinite.
	if got := DError([]float64{1, 0}, 1); math.IsInf(got, 1) {
		t.Fatal("zero-score choice should be finite")
	}
}

func TestDErrorNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		return DError(scores, rng.Intn(n)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := ArgMax([]float64{5, 5, 3}); got != 0 {
		t.Fatalf("tie ArgMax = %d, want first", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("empty ArgMax = %d", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self similarity = %g", got)
	}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Fatalf("orthogonal similarity = %g", got)
	}
	if got := CosineSimilarity(a, []float64{0, 0}); got != 0 {
		t.Fatalf("zero-vector similarity = %g", got)
	}
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("distance = %g, want 5", got)
	}
}

func TestEuclideanTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		return EuclideanDistance(a, c) <= EuclideanDistance(a, b)+EuclideanDistance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean should be 0")
	}
}
