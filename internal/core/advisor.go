// Package core implements the AutoCE model advisor itself: deep-metric
// learning of the similarity-aware GIN encoder with the weighted
// contrastive loss (Section V, Algorithm 1), the KNN-based predictor over
// the recommendation candidate set (Section V-D, Eq. 13), incremental
// learning with Mixup data augmentation (Section VI, Algorithm 2), and the
// online adapting mechanism for unexpected data distributions (Section
// V-E).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/feature"
	"repro/internal/gnn"
	"repro/internal/metrics"
)

// Sample is one labeled training instance: a dataset's feature graph plus
// its normalized per-model accuracy and efficiency scores from the testbed.
type Sample struct {
	Name   string
	Graph  *feature.Graph
	Sa, Se []float64
}

// Score returns the combined score vector for accuracy weight wa (Eq. 2).
func (s *Sample) Score(wa float64) []float64 {
	return metrics.CombineScores(s.Sa, s.Se, wa)
}

// LossKind selects the metric-learning loss.
type LossKind int

const (
	// LossWeighted is the paper's weighted contrastive loss (Eq. 9).
	LossWeighted LossKind = iota
	// LossBasic is the plain contrastive loss (Eq. 10), kept for the
	// Figure 7 ablation.
	LossBasic
)

// Config controls advisor training and prediction.
type Config struct {
	// GNN is the encoder architecture; InDim must match the feature
	// configuration's VertexDim.
	GNN gnn.Config
	// Tau is the cosine-similarity threshold τ of Eq. 7 when
	// TauQuantile is 0.
	Tau float64
	// TauQuantile, when positive, replaces the fixed τ with a per-batch
	// adaptive threshold: the given quantile of the batch's pairwise
	// similarities. Score-vector cosines concentrate near 1 (all entries
	// are positive), so a fixed τ that separates pairs at one metric
	// weight lumps everything together at another; the quantile keeps the
	// positive/negative split meaningful across the whole weight grid.
	TauQuantile float64
	// Gamma is the margin γ of Eq. 9.
	Gamma float64
	// Epochs and Batch control the DML loop (Algorithm 1).
	Epochs int
	Batch  int
	// LR is the Adam learning rate η.
	LR float64
	// K is the number of KNN neighbors (paper's Table IV finds k=2 best).
	K int
	// WeightGrid lists the accuracy weights the encoder learns from; each
	// batch samples one combination, covering the users' requirement
	// space (Section IV-B2).
	WeightGrid []float64
	// Loss selects the contrastive loss variant.
	Loss LossKind
	Seed int64
}

// DefaultConfig returns the training configuration used throughout the
// experiments.
func DefaultConfig(inDim int) Config {
	return Config{
		GNN:         gnn.DefaultConfig(inDim),
		Tau:         0.97,
		TauQuantile: 0.7,
		Gamma:       2.0,
		Epochs:      30,
		Batch:       24,
		LR:          2e-3,
		K:           2,
		WeightGrid: []float64{
			0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
		},
		Loss: LossWeighted,
		Seed: 17,
	}
}

// Advisor is a trained AutoCE instance: the encoder plus the recommendation
// candidate set (Definition 5) with cached embeddings.
type Advisor struct {
	cfg Config
	enc *gnn.Encoder

	rcs []*Sample
	emb [][]float64

	// driftThreshold is the 90th-percentile leave-one-out nearest
	// distance over the RCS (Section V-E); computed lazily.
	driftThreshold float64
	driftValid     bool
}

// Encoder exposes the trained GIN (for ablation baselines that reuse it).
func (a *Advisor) Encoder() *gnn.Encoder { return a.enc }

// RCS returns the current recommendation candidate set.
func (a *Advisor) RCS() []*Sample { return a.rcs }

// Embeddings returns the cached RCS embeddings.
func (a *Advisor) Embeddings() [][]float64 { return a.emb }

// refreshEmbeddings re-encodes the RCS after any encoder update.
func (a *Advisor) refreshEmbeddings() {
	a.emb = make([][]float64, len(a.rcs))
	for i, s := range a.rcs {
		a.emb[i] = a.enc.Embed(s.Graph)
	}
	a.driftValid = false
}

// Embed encodes an arbitrary feature graph with the trained encoder.
func (a *Advisor) Embed(g *feature.Graph) []float64 { return a.enc.Embed(g) }

// neighborIndexes returns the indexes of the k nearest RCS embeddings to x,
// excluding any index in skip (used by cross-validation).
func (a *Advisor) neighborIndexes(x []float64, k int, skip map[int]bool) []int {
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, 0, len(a.emb))
	for i, e := range a.emb {
		if skip != nil && skip[i] {
			continue
		}
		cands = append(cands, cand{i, metrics.EuclideanDistance(x, e)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// Recommendation is the advisor's output for one dataset.
type Recommendation struct {
	// Model is the selected model's registry index.
	Model int
	// Scores is the averaged neighbor score vector y' (Eq. 13).
	Scores []float64
	// Neighbors lists the RCS indexes consulted.
	Neighbors []int
}

// Recommend runs Stage 4 for a target feature graph and accuracy weight:
// encode, find the k nearest labeled embeddings, average their score
// vectors under the weights, and return the top ranker.
func (a *Advisor) Recommend(g *feature.Graph, wa float64) Recommendation {
	return a.recommendEmbedded(a.enc.Embed(g), wa, nil)
}

// RecommendK is Recommend with an explicit neighbor count (Table IV).
func (a *Advisor) RecommendK(g *feature.Graph, wa float64, k int) Recommendation {
	saved := a.cfg.K
	a.cfg.K = k
	defer func() { a.cfg.K = saved }()
	return a.recommendEmbedded(a.enc.Embed(g), wa, nil)
}

func (a *Advisor) recommendEmbedded(x []float64, wa float64, skip map[int]bool) Recommendation {
	nbrs := a.neighborIndexes(x, a.cfg.K, skip)
	if len(nbrs) == 0 {
		return Recommendation{Model: -1}
	}
	dim := len(a.rcs[nbrs[0]].Sa)
	avg := make([]float64, dim)
	for _, ni := range nbrs {
		sv := a.rcs[ni].Score(wa)
		for j := range avg {
			avg[j] += sv[j]
		}
	}
	for j := range avg {
		avg[j] /= float64(len(nbrs))
	}
	return Recommendation{Model: metrics.ArgMax(avg), Scores: avg, Neighbors: nbrs}
}

// DError evaluates a recommendation against the target's own true label.
func DError(target *Sample, wa float64, model int) float64 {
	return metrics.DError(target.Score(wa), model)
}

// validateSamples checks label consistency before training.
func validateSamples(samples []*Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: no training samples")
	}
	dim := len(samples[0].Sa)
	for _, s := range samples {
		if len(s.Sa) != dim || len(s.Se) != dim {
			return fmt.Errorf("core: sample %s has inconsistent label length", s.Name)
		}
		if s.Graph == nil || s.Graph.NumVertices() == 0 {
			return fmt.Errorf("core: sample %s has an empty feature graph", s.Name)
		}
	}
	return nil
}

// DriftThreshold returns the online-adapting distance threshold: the 90th
// percentile of each RCS member's leave-one-out nearest-neighbor distance.
func (a *Advisor) DriftThreshold() float64 {
	if a.driftValid {
		return a.driftThreshold
	}
	dists := make([]float64, 0, len(a.emb))
	for i, e := range a.emb {
		best := math.Inf(1)
		for j, o := range a.emb {
			if i == j {
				continue
			}
			if d := metrics.EuclideanDistance(e, o); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			dists = append(dists, best)
		}
	}
	a.driftThreshold = metrics.Percentile(dists, 90)
	a.driftValid = true
	return a.driftThreshold
}

// DetectDrift reports whether g's embedding lies farther from the RCS than
// the drift threshold — an unexpected data distribution (Section V-E).
func (a *Advisor) DetectDrift(g *feature.Graph) bool {
	x := a.enc.Embed(g)
	best := math.Inf(1)
	for _, e := range a.emb {
		if d := metrics.EuclideanDistance(x, e); d < best {
			best = d
		}
	}
	return best > a.DriftThreshold()
}

// OnlineAdapt handles one unexpected dataset: the freshly labeled sample
// (obtained by online learning, i.e. a testbed run) joins the RCS and the
// encoder is updated with a short, damped DML pass over the extended set.
func (a *Advisor) OnlineAdapt(s *Sample, epochs int) {
	a.rcs = append(a.rcs, s)
	cfg := a.cfg
	cfg.Epochs = epochs
	cfg.LR = a.cfg.LR / 5
	a.trainDML(a.rcs, cfg)
	a.refreshEmbeddings()
}
