// Package core implements the AutoCE model advisor itself: deep-metric
// learning of the similarity-aware GIN encoder with the weighted
// contrastive loss (Section V, Algorithm 1), the KNN-based predictor over
// the recommendation candidate set (Section V-D, Eq. 13), incremental
// learning with Mixup data augmentation (Section VI, Algorithm 2), and the
// online adapting mechanism for unexpected data distributions (Section
// V-E).
//
// # Serving snapshots
//
// A trained advisor separates its mutable training state from an immutable
// serving view. Every mutation — Train, IncrementalLearn, OnlineAdapt —
// ends by building a Snapshot (a frozen copy of the encoder parameters,
// the RCS, its embeddings, and the precomputed drift threshold) and
// publishing it with one atomic pointer swap. The read-side API
// (Recommend, RecommendK, RecommendBatch, DetectDrift, DriftThreshold,
// Embed, RCS, Embeddings) only ever dereferences the published snapshot,
// so any number of goroutines can serve recommendations lock-free and
// wait-free while a mutator retrains in the background; readers mid-flight
// keep the snapshot they started with and never observe a half-updated
// candidate set. Callers that need several reads against one consistent
// view (say, resolving a Recommendation's Neighbors against the RCS that
// produced them) should take Serving() once and use the Snapshot directly.
//
// Mutators themselves are serialized by an internal lock; the training
// encoder is never shared with readers.
//
// # ANN index lifecycle
//
// Snapshots whose candidate set reaches Config.ANN.MinIndexSize carry
// an approximate-nearest-neighbor index (internal/ann: an IVF-style
// clustered index over the RCS embeddings) and serve Recommend*,
// DetectDrift, and NearestDistance through it; smaller sets keep the
// exact bounded-heap scan, bit-for-bit identical to the unindexed
// advisor. The index moves through four phases:
//
//   - Build: newSnapshot constructs it over the frozen embeddings (the
//     bisecting k-means quantizer builds in parallel and is
//     deterministic for equal inputs). The drift threshold of an
//     indexed snapshot is estimated through the index over a bounded
//     member sample instead of the O(n²) leave-one-out pair scan.
//   - Append: when a mutation only extends the candidate set
//     (OnlineAdapt, IncrementalLearn), the next publish clones the
//     previous snapshot's index and appends the new embeddings to their
//     nearest cells — no rebuild, no effect on readers of the old
//     snapshot.
//   - Rebuild: appended vectors slowly stale the quantizer (they were
//     never clustered, and fine-tuning drifts old embeddings); once the
//     appended share exceeds Config.ANN.RebuildFraction the publish
//     rebuilds from scratch.
//   - Persist: Save embeds the index (CRC-enveloped) in the advisor
//     artifact and Load re-attaches it to the recomputed embeddings, so
//     a served fleet never pays the build twice; corrupt index bytes
//     fail the load loudly.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ann"
	"repro/internal/feature"
	"repro/internal/gnn"
	"repro/internal/metrics"
)

// Sample is one labeled training instance: a dataset's feature graph plus
// its normalized per-model accuracy and efficiency scores from the testbed.
type Sample struct {
	Name   string
	Graph  *feature.Graph
	Sa, Se []float64
}

// Score returns the combined score vector for accuracy weight wa (Eq. 2).
func (s *Sample) Score(wa float64) []float64 {
	return metrics.CombineScores(s.Sa, s.Se, wa)
}

// LossKind selects the metric-learning loss.
type LossKind int

const (
	// LossWeighted is the paper's weighted contrastive loss (Eq. 9).
	LossWeighted LossKind = iota
	// LossBasic is the plain contrastive loss (Eq. 10), kept for the
	// Figure 7 ablation.
	LossBasic
)

// Config controls advisor training and prediction.
type Config struct {
	// GNN is the encoder architecture; InDim must match the feature
	// configuration's VertexDim.
	GNN gnn.Config
	// Tau is the cosine-similarity threshold τ of Eq. 7 when
	// TauQuantile is 0.
	Tau float64
	// TauQuantile, when positive, replaces the fixed τ with a per-batch
	// adaptive threshold: the given quantile of the batch's pairwise
	// similarities. Score-vector cosines concentrate near 1 (all entries
	// are positive), so a fixed τ that separates pairs at one metric
	// weight lumps everything together at another; the quantile keeps the
	// positive/negative split meaningful across the whole weight grid.
	TauQuantile float64
	// Gamma is the margin γ of Eq. 9.
	Gamma float64
	// Epochs and Batch control the DML loop (Algorithm 1).
	Epochs int
	Batch  int
	// LR is the Adam learning rate η.
	LR float64
	// K is the number of KNN neighbors (paper's Table IV finds k=2 best).
	K int
	// ANN is the approximate-nearest-neighbor index policy for Stage 4:
	// candidate sets of at least ANN.MinIndexSize entries are served
	// through an IVF index built at snapshot time; smaller sets keep the
	// exact heap scan bit-for-bit. The zero value resolves to the
	// documented defaults (so older persisted configs gain the index
	// transparently); set MinIndexSize negative to disable indexing.
	ANN ann.Params
	// WeightGrid lists the accuracy weights the encoder learns from; each
	// batch samples one combination, covering the users' requirement
	// space (Section IV-B2).
	WeightGrid []float64
	// Loss selects the contrastive loss variant.
	Loss LossKind
	Seed int64
}

// DefaultConfig returns the training configuration used throughout the
// experiments.
func DefaultConfig(inDim int) Config {
	return Config{
		GNN:         gnn.DefaultConfig(inDim),
		Tau:         0.97,
		TauQuantile: 0.7,
		Gamma:       2.0,
		Epochs:      30,
		Batch:       24,
		LR:          2e-3,
		K:           2,
		WeightGrid: []float64{
			0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
		},
		Loss: LossWeighted,
		Seed: 17,
	}
}

// Advisor is a trained AutoCE instance: the encoder plus the recommendation
// candidate set (Definition 5). See the package documentation for the
// snapshot model separating its training state from the serving path.
type Advisor struct {
	cfg Config

	// mu serializes mutators; enc, rcs, and emb are the training-side
	// state and are only touched with mu held (or before the advisor is
	// shared, during Train/Load).
	mu  sync.Mutex
	enc *gnn.Encoder
	rcs []*Sample
	emb [][]float64 // training-side embedding cache (cross-validation)

	// snap is the published serving snapshot; read methods Load it
	// lock-free. Never nil once Train or Load returns.
	snap atomic.Pointer[Snapshot]

	// loadIndex is an ANN index decoded from a persisted artifact,
	// consumed by the next publishLocked so a loaded advisor serves the
	// saved index instead of paying a rebuild. Set only inside Load,
	// before the advisor is shared.
	loadIndex *ann.Index
}

// Serving returns the current serving snapshot: a consistent, immutable
// view of the RCS, embeddings, encoder, and drift threshold. Successive
// calls may return different snapshots as mutators publish; take it once
// when several reads must agree.
func (a *Advisor) Serving() *Snapshot { return a.snap.Load() }

// publishLocked freezes the training state into a fresh snapshot and
// swaps it in. Callers hold mu (or exclusive ownership during
// construction) and have refreshed the embedding cache.
//
// The previous snapshot's ANN index is carried forward whenever the new
// candidate set extends the old one (the OnlineAdapt/IncrementalLearn
// shape: same samples, possibly a few appended) — newSnapshot then
// appends the tail to the posting lists instead of rebuilding, until
// the appended share crosses the rebuild threshold. A Load-decoded
// index takes precedence, once.
func (a *Advisor) publishLocked() {
	var prevIndex *ann.Index
	if a.loadIndex != nil {
		prevIndex, a.loadIndex = a.loadIndex, nil
	} else if prev := a.snap.Load(); prev != nil && prev.index != nil && rcsExtends(a.rcs, prev.rcs) {
		prevIndex = prev.index
	}
	a.snap.Store(newSnapshot(a.cfg, a.enc, a.rcs, a.emb, prevIndex))
}

// rcsExtends reports whether cur is old with zero or more samples
// appended — the only mutation shape under which a previous snapshot's
// index ids remain valid for the new one.
func rcsExtends(cur, old []*Sample) bool {
	if len(old) > len(cur) {
		return false
	}
	for i := range old {
		if cur[i] != old[i] {
			return false
		}
	}
	return true
}

// Encoder exposes the training-side GIN (for ablation baselines that reuse
// it). Unlike the serving methods it is NOT safe to use concurrently with
// mutators; serving paths should embed through a Snapshot instead.
func (a *Advisor) Encoder() *gnn.Encoder { return a.enc }

// NumSamples returns the size of the currently served candidate set.
func (a *Advisor) NumSamples() int { return a.Serving().NumSamples() }

// RCS returns a copy of the currently served recommendation candidate
// set slice (O(n); see Snapshot.RCS).
func (a *Advisor) RCS() []*Sample { return a.Serving().RCS() }

// Embeddings returns a deep copy of the currently served RCS embeddings
// (O(n·dim); see Snapshot.Embeddings).
func (a *Advisor) Embeddings() [][]float64 { return a.Serving().Embeddings() }

// refreshEmbeddings re-encodes the RCS into the training-side cache after
// any encoder update. Mutator-only; mu held.
func (a *Advisor) refreshEmbeddings() {
	a.emb = make([][]float64, len(a.rcs))
	for i, s := range a.rcs {
		a.emb[i] = a.enc.Embed(s.Graph)
	}
}

// Embed encodes an arbitrary feature graph with the served encoder.
func (a *Advisor) Embed(g *feature.Graph) []float64 { return a.Serving().Embed(g) }

// Recommendation is the advisor's output for one dataset.
type Recommendation struct {
	// Model is the selected model's registry index.
	Model int
	// Scores is the averaged neighbor score vector y' (Eq. 13).
	Scores []float64
	// Neighbors lists the RCS indexes consulted, nearest first. The
	// indexes refer to the snapshot that produced the recommendation;
	// resolve them via Serving() taken before recommending.
	Neighbors []int
}

// Recommend runs Stage 4 for a target feature graph and accuracy weight:
// encode, find the k nearest labeled embeddings, average their score
// vectors under the weights, and return the top ranker. Safe for any
// number of concurrent callers.
func (a *Advisor) Recommend(g *feature.Graph, wa float64) Recommendation {
	return a.Serving().Recommend(g, wa)
}

// RecommendK is Recommend with an explicit neighbor count (Table IV). The
// count is threaded through the call — the advisor's configuration is
// never touched — so it is safe concurrently with Recommend.
func (a *Advisor) RecommendK(g *feature.Graph, wa float64, k int) Recommendation {
	return a.Serving().RecommendK(g, wa, k)
}

// RecommendBatch recommends a model for every graph over one consistent
// snapshot using a worker pool; results are in input order.
func (a *Advisor) RecommendBatch(gs []*feature.Graph, wa float64) []Recommendation {
	return a.Serving().RecommendBatch(gs, wa)
}

// recommendTraining is the cross-validation predictor over the
// training-side embedding cache (mutator-only; mu held).
func (a *Advisor) recommendTraining(x []float64, wa float64, skip map[int]bool) Recommendation {
	return scoreNeighbors(a.rcs, nearestIndexes(a.emb, x, a.cfg.K, skip), wa)
}

// DError evaluates a recommendation against the target's own true label.
func DError(target *Sample, wa float64, model int) float64 {
	return metrics.DError(target.Score(wa), model)
}

// validateSamples checks label consistency before training.
func validateSamples(samples []*Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: no training samples")
	}
	dim := len(samples[0].Sa)
	for _, s := range samples {
		if len(s.Sa) != dim || len(s.Se) != dim {
			return fmt.Errorf("core: sample %s has inconsistent label length", s.Name)
		}
		if s.Graph == nil || s.Graph.NumVertices() == 0 {
			return fmt.Errorf("core: sample %s has an empty feature graph", s.Name)
		}
	}
	return nil
}

// DriftThreshold returns the online-adapting distance threshold: the 90th
// percentile of each RCS member's leave-one-out nearest-neighbor distance,
// precomputed when the serving snapshot was built.
func (a *Advisor) DriftThreshold() float64 { return a.Serving().DriftThreshold() }

// DetectDrift reports whether g's embedding lies farther from the RCS than
// the drift threshold — an unexpected data distribution (Section V-E).
func (a *Advisor) DetectDrift(g *feature.Graph) bool { return a.Serving().DetectDrift(g) }

// OnlineAdapt handles one unexpected dataset: the freshly labeled sample
// (obtained by online learning, i.e. a testbed run) joins the RCS and the
// encoder is updated with a short, damped DML pass over the extended set.
// Readers keep serving the previous snapshot until the adapted one is
// published.
func (a *Advisor) OnlineAdapt(s *Sample, epochs int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rcs = append(a.rcs, s)
	cfg := a.cfg
	cfg.Epochs = epochs
	cfg.LR = a.cfg.LR / 5
	a.trainDML(a.rcs, cfg)
	a.refreshEmbeddings()
	a.publishLocked()
}
