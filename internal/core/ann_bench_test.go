package core

// Scaling benchmarks for the indexed serving path. Each measures the
// embedded recommendation hot path (kNN selection + neighbor scoring)
// against synthetic RCS corpora from 10^3 to 10^6 entries, reporting
// p50/p99 per-request latency ("p50-ns"/"p99-ns" via b.ReportMetric)
// and a "HIST <name> <sparse>" histogram line — the same envelope
// cmd/benchcheck parses and gates against ci/bench_baseline.json. The
// exact-scan twins at 10^5 and 10^6 pin the headline claim: indexed
// latency grows sublinearly while the exact scan grows linearly, so the
// gap at 10^6 must stay an order of magnitude.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/datagen"
	"repro/internal/latency"
)

const annBenchDim = 32

// Fixture caches: generating and indexing 10^6 embeddings costs seconds,
// so corpora and snapshots are built once per process and shared across
// benchmarks and -count repetitions.
var (
	annBenchEmb   = map[int][][]float64{}
	annBenchSnaps = map[string]*Snapshot{}
)

func annBenchEmbeddings(n int) [][]float64 {
	if e, ok := annBenchEmb[n]; ok {
		return e
	}
	e := datagen.SyntheticEmbeddings(n, annBenchDim, 64, 97)
	annBenchEmb[n] = e
	return e
}

// annBenchSnapshot fabricates a serving snapshot over n synthetic
// embeddings. All entries share one labeled sample: recommendEmbedded
// only reads Sa/Se, and sharing keeps the 10^6 fixture cheap.
func annBenchSnapshot(b *testing.B, n int, indexed bool) *Snapshot {
	b.Helper()
	key := fmt.Sprintf("%d-%v", n, indexed)
	if s, ok := annBenchSnaps[key]; ok {
		return s
	}
	emb := annBenchEmbeddings(n)
	shared := &Sample{
		Name: "bench",
		Sa:   []float64{0.9, 0.6, 0.3, 0.8, 0.5, 0.2, 0.7},
		Se:   []float64{0.2, 0.7, 0.9, 0.3, 0.6, 0.8, 0.4},
	}
	s := &Snapshot{k: 10, rcs: make([]*Sample, n), emb: emb, driftThreshold: 1}
	for i := range s.rcs {
		s.rcs[i] = shared
	}
	if indexed {
		s.index = ann.Build(emb, ann.Params{MinIndexSize: 1})
		if s.index == nil {
			b.Fatal("index build failed")
		}
	}
	annBenchSnaps[key] = s
	return s
}

// annBenchQueries derives query vectors from corpus points plus noise,
// cycling 256 of them so repeated iterations do not serve one cache-hot
// query.
func annBenchQueries(emb [][]float64) [][]float64 {
	rng := rand.New(rand.NewSource(131))
	stride := len(emb) / 256
	if stride < 1 {
		stride = 1
	}
	var qs [][]float64
	for i := 0; i < len(emb) && len(qs) < 256; i += stride {
		q := make([]float64, len(emb[i]))
		for f := range q {
			q[f] = emb[i][f] + rng.NormFloat64()*0.3
		}
		qs = append(qs, q)
	}
	return qs
}

func benchRecommendEmbedded(b *testing.B, n int, indexed bool) {
	s := annBenchSnapshot(b, n, indexed)
	qs := annBenchQueries(s.emb)
	var h latency.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		t0 := time.Now()
		if s.recommendEmbedded(q, 0.9, 10, nil).Model < 0 {
			b.Fatal("no recommendation")
		}
		h.Record(time.Since(t0))
	}
	b.StopTimer()
	if h.Count() > 0 {
		quant := h.Quantiles(0.50, 0.99)
		b.ReportMetric(float64(quant[0]), "p50-ns")
		b.ReportMetric(float64(quant[1]), "p99-ns")
		fmt.Printf("HIST %s %s\n", b.Name(), h.Sparse())
	}
}

func BenchmarkRecommendIndexed1k(b *testing.B)   { benchRecommendEmbedded(b, 1_000, true) }
func BenchmarkRecommendIndexed100k(b *testing.B) { benchRecommendEmbedded(b, 100_000, true) }
func BenchmarkRecommendIndexed1M(b *testing.B)   { benchRecommendEmbedded(b, 1_000_000, true) }
func BenchmarkRecommendExact100k(b *testing.B)   { benchRecommendEmbedded(b, 100_000, false) }
func BenchmarkRecommendExact1M(b *testing.B)     { benchRecommendEmbedded(b, 1_000_000, false) }

// BenchmarkSnapshotIndexBuild measures the bisecting-quantizer build
// over a 10^5 corpus — the cost every snapshot publish pays when the
// carried index is too stale to extend.
func BenchmarkSnapshotIndexBuild(b *testing.B) {
	emb := annBenchEmbeddings(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ann.Build(emb, ann.Params{MinIndexSize: 1}) == nil {
			b.Fatal("build failed")
		}
	}
}
