package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/feature"
	"repro/internal/gnn"
)

// benchSnapshot fabricates a serving snapshot with an n-sample RCS:
// random unit-scale embeddings and 7-model score labels over a real (but
// tiny) encoder, so Recommend exercises the full serve path — pooled
// GIN inference plus heap k-selection — without labeling n datasets.
func benchSnapshot(n int) (*Snapshot, *feature.Graph) {
	rng := rand.New(rand.NewSource(77))
	gcfg := gnn.Config{InDim: 6, Hidden: 16, OutDim: 32, Layers: 2, Seed: 3}
	enc := gnn.New(gcfg)
	g := &feature.Graph{Name: "target"}
	for i := 0; i < 3; i++ {
		row := make([]float64, gcfg.InDim)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		g.V = append(g.V, row)
		g.E = append(g.E, make([]float64, 3))
	}
	g.E[0][1], g.E[1][0] = 0.5, 0.5
	s := &Snapshot{k: 2, enc: enc, rcs: make([]*Sample, n), emb: make([][]float64, n)}
	for i := 0; i < n; i++ {
		emb := make([]float64, gcfg.OutDim)
		for f := range emb {
			emb[f] = rng.NormFloat64()
		}
		sa := make([]float64, 7)
		se := make([]float64, 7)
		for m := range sa {
			sa[m], se[m] = rng.Float64(), rng.Float64()
		}
		s.rcs[i] = &Sample{Name: fmt.Sprintf("s%d", i), Graph: g, Sa: sa, Se: se}
		s.emb[i] = emb
	}
	s.driftThreshold = 1
	return s, g
}

// BenchmarkRecommend measures one full serving-path recommendation (GIN
// embed + heap kNN + scoring) against a 1000-sample RCS.
func BenchmarkRecommend(b *testing.B) {
	s, g := benchSnapshot(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Recommend(g, 0.9).Model < 0 {
			b.Fatal("no recommendation")
		}
	}
}

// BenchmarkRecommendBatch measures a 64-graph batch through the worker
// pool against a 1000-sample RCS.
func BenchmarkRecommendBatch(b *testing.B) {
	s, g := benchSnapshot(1000)
	gs := make([]*feature.Graph, 64)
	for i := range gs {
		gs[i] = g
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if recs := s.RecommendBatch(gs, 0.9); recs[0].Model < 0 {
			b.Fatal("no recommendation")
		}
	}
}

// BenchmarkRecommendSelectHeap and BenchmarkRecommendSelectSort isolate
// the k-selection over 1000 embeddings: the bounded max-heap versus the
// pre-snapshot full sort.
func BenchmarkRecommendSelectHeap(b *testing.B) {
	s, _ := benchSnapshot(1000)
	x := s.emb[500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(nearestIndexes(s.emb, x, 2, nil)) != 2 {
			b.Fatal("bad selection")
		}
	}
}

func BenchmarkRecommendSelectSort(b *testing.B) {
	s, _ := benchSnapshot(1000)
	x := s.emb[500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(nearestIndexesSort(s.emb, x, 2, nil)) != 2 {
			b.Fatal("bad selection")
		}
	}
}
