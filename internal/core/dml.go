package core

import (
	"math"
	"math/rand"

	"repro/internal/gnn"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// Train runs Algorithm 1: deep-metric learning of the GIN encoder over the
// labeled feature graphs, then builds the advisor with the samples as its
// recommendation candidate set.
func Train(samples []*Sample, cfg Config) (*Advisor, error) {
	if err := validateSamples(samples); err != nil {
		return nil, err
	}
	a := &Advisor{cfg: cfg, enc: gnn.New(cfg.GNN)}
	a.trainDML(samples, cfg)
	a.rcs = append([]*Sample(nil), samples...)
	a.refreshEmbeddings()
	a.publishLocked()
	return a, nil
}

// trainDML runs the batched metric-learning loop on the existing encoder.
// It is reused by incremental learning and online adapting, which continue
// training rather than reinitialize.
func (a *Advisor) trainDML(samples []*Sample, cfg Config) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(a.enc.Params(), cfg.LR)
	order := rng.Perm(len(samples))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(order) {
				end = len(order)
			}
			batch := make([]*Sample, 0, end-start)
			for _, si := range order[start:end] {
				batch = append(batch, samples[si])
			}
			if len(batch) < 2 {
				continue
			}
			// Each batch learns one randomly drawn metric combination, so
			// the encoder covers the whole requirement space (Eq. 2).
			wa := cfg.WeightGrid[rng.Intn(len(cfg.WeightGrid))]
			a.dmlStep(batch, wa, opt)
		}
	}
}

// dmlStep performs one forward/backward/update over a batch. Each sample's
// forward/backward runs on its cached encoder tape (graphs are immutable
// across epochs), so steady-state steps rebuild no autodiff graph.
func (a *Advisor) dmlStep(batch []*Sample, wa float64, opt nn.Optimizer) float64 {
	m := len(batch)
	tapes := make([]*gnn.Tape, m)
	embs := make([][]float64, m)
	for i, s := range batch {
		tapes[i] = a.enc.TapeFor(s.Graph)
		embs[i] = tapes[i].Forward().Row(0)
	}
	scores := make([][]float64, m)
	for i, s := range batch {
		scores[i] = s.Score(wa)
	}
	tau := a.effectiveTau(scores)
	var loss float64
	var grads [][]float64
	if a.cfg.Loss == LossBasic {
		loss, grads = basicContrastive(embs, scores, tau)
	} else {
		loss, grads = weightedContrastive(embs, scores, tau, a.cfg.Gamma)
	}
	for i := range tapes {
		tapes[i].Backward(grads[i])
	}
	opt.Step()
	return loss
}

// effectiveTau resolves the similarity threshold for one batch: the fixed
// Tau, or the TauQuantile quantile of the batch's pairwise similarities.
func (a *Advisor) effectiveTau(scores [][]float64) float64 {
	if a.cfg.TauQuantile <= 0 {
		return a.cfg.Tau
	}
	var sims []float64
	for i := range scores {
		for j := i + 1; j < len(scores); j++ {
			sims = append(sims, metrics.CosineSimilarity(scores[i], scores[j]))
		}
	}
	if len(sims) == 0 {
		return a.cfg.Tau
	}
	return metrics.Percentile(sims, a.cfg.TauQuantile*100)
}

// pairSets partitions batch indexes into positive and negative sets per
// anchor using the performance similarity of Eq. 6 and the threshold τ
// (Eq. 7). Self-pairs are excluded.
func pairSets(scores [][]float64, tau float64) (pos, neg [][]int, sims [][]float64) {
	m := len(scores)
	sims = make([][]float64, m)
	pos = make([][]int, m)
	neg = make([][]int, m)
	for i := 0; i < m; i++ {
		sims[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			s := metrics.CosineSimilarity(scores[i], scores[j])
			sims[i][j], sims[j][i] = s, s
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			if sims[i][j] >= tau {
				pos[i] = append(pos[i], j)
			} else {
				neg[i] = append(neg[i], j)
			}
		}
	}
	return pos, neg, sims
}

// pairDistances returns the Euclidean distance matrix of the embeddings.
func pairDistances(embs [][]float64) [][]float64 {
	m := len(embs)
	u := make([][]float64, m)
	for i := range u {
		u[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := metrics.EuclideanDistance(embs[i], embs[j])
			u[i][j], u[j][i] = d, d
		}
	}
	return u
}

// weightedContrastive implements Eq. 9 and its analytic gradient with
// respect to each embedding. For every anchor i:
//
//	L_i = log Σ_{k∈P_i} e^{U_ik + Sim_ik} + log Σ_{k∈N_i} e^{γ - U_ik - Sim_ik}
//
// and L = (1/m) Σ_i L_i. The gradients follow the paper's pair-weighting
// analysis (Eq. 11-12): ∂L/∂U_ik is the softmax weight of the pair within
// its positive (or, negated, negative) set.
func weightedContrastive(embs, scores [][]float64, tau, gamma float64) (float64, [][]float64) {
	m := len(embs)
	dim := len(embs[0])
	pos, neg, sims := pairSets(scores, tau)
	u := pairDistances(embs)

	grads := make([][]float64, m)
	for i := range grads {
		grads[i] = make([]float64, dim)
	}
	// dU[i][k] accumulates ∂L/∂U_ik over anchors.
	dU := make([][]float64, m)
	for i := range dU {
		dU[i] = make([]float64, m)
	}
	var loss float64
	inv := 1 / float64(m)
	for i := 0; i < m; i++ {
		if len(pos[i]) > 0 {
			// log-sum-exp with max shift for stability.
			maxe := math.Inf(-1)
			for _, k := range pos[i] {
				if e := u[i][k] + sims[i][k]; e > maxe {
					maxe = e
				}
			}
			var sum float64
			for _, k := range pos[i] {
				sum += math.Exp(u[i][k] + sims[i][k] - maxe)
			}
			loss += inv * (maxe + math.Log(sum))
			for _, k := range pos[i] {
				w := math.Exp(u[i][k]+sims[i][k]-maxe) / sum
				dU[i][k] += inv * w
			}
		}
		if len(neg[i]) > 0 {
			maxe := math.Inf(-1)
			for _, k := range neg[i] {
				if e := gamma - u[i][k] - sims[i][k]; e > maxe {
					maxe = e
				}
			}
			var sum float64
			for _, k := range neg[i] {
				sum += math.Exp(gamma - u[i][k] - sims[i][k] - maxe)
			}
			loss += inv * (maxe + math.Log(sum))
			for _, k := range neg[i] {
				w := math.Exp(gamma-u[i][k]-sims[i][k]-maxe) / sum
				dU[i][k] -= inv * w
			}
		}
	}
	applyDistanceGrads(embs, u, dU, grads)
	return loss, grads
}

// basicContrastive implements Eq. 10: L = (1/m) Σ_i (Σ_{k∈P_i} U_ik −
// Σ_{k∈N_i} U_ik), the loss AutoCE is compared against in Figure 7.
func basicContrastive(embs, scores [][]float64, tau float64) (float64, [][]float64) {
	m := len(embs)
	dim := len(embs[0])
	pos, neg, _ := pairSets(scores, tau)
	u := pairDistances(embs)
	grads := make([][]float64, m)
	for i := range grads {
		grads[i] = make([]float64, dim)
	}
	dU := make([][]float64, m)
	for i := range dU {
		dU[i] = make([]float64, m)
	}
	var loss float64
	inv := 1 / float64(m)
	for i := 0; i < m; i++ {
		for _, k := range pos[i] {
			loss += inv * u[i][k]
			dU[i][k] += inv
		}
		for _, k := range neg[i] {
			loss -= inv * u[i][k]
			dU[i][k] -= inv
		}
	}
	applyDistanceGrads(embs, u, dU, grads)
	return loss, grads
}

// applyDistanceGrads converts ∂L/∂U_ik into embedding gradients through
// the Euclidean distance: ∂U_ik/∂x_i = (x_i - x_k)/U_ik.
func applyDistanceGrads(embs, u, dU [][]float64, grads [][]float64) {
	m := len(embs)
	const eps = 1e-8
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			g := dU[i][k]
			if g == 0 || i == k {
				continue
			}
			d := u[i][k]
			if d < eps {
				d = eps
			}
			for f := range grads[i] {
				diff := (embs[i][f] - embs[k][f]) / d
				grads[i][f] += g * diff
				grads[k][f] -= g * diff
			}
		}
	}
}

// BatchLoss computes the current loss of the advisor's encoder on a set of
// samples at a given weight, without updating parameters. Used by the
// Figure 7 ablation and tests. It reads the training encoder, so it takes
// the mutator lock.
func (a *Advisor) BatchLoss(samples []*Sample, wa float64) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	embs := make([][]float64, len(samples))
	for i, s := range samples {
		embs[i] = a.enc.Embed(s.Graph)
	}
	scores := make([][]float64, len(samples))
	for i, s := range samples {
		scores[i] = s.Score(wa)
	}
	tau := a.effectiveTau(scores)
	var loss float64
	if a.cfg.Loss == LossBasic {
		loss, _ = basicContrastive(embs, scores, tau)
	} else {
		loss, _ = weightedContrastive(embs, scores, tau, a.cfg.Gamma)
	}
	return loss
}
