package core

import "testing"

// BenchmarkDMLTrain measures the full Algorithm-1 deep-metric-learning
// loop (the default architecture over a 24-sample corpus) — the advisor
// half of the training-throughput budget. Forward/backward passes run on
// cached per-graph tapes after the first epoch.
func BenchmarkDMLTrain(b *testing.B) {
	samples := corpus(b, 24, 7)
	cfg := DefaultConfig(len(samples[0].Graph.V[0]))
	cfg.Epochs = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(samples, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
