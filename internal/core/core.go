package core
