package core

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/feature"
)

// randomEmbeddings builds n dim-dimensional embeddings, with every fourth
// one duplicated from its predecessor so tie-breaking is exercised.
func randomEmbeddings(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	emb := make([][]float64, n)
	for i := range emb {
		if i > 0 && i%4 == 0 {
			emb[i] = append([]float64(nil), emb[i-1]...)
			continue
		}
		emb[i] = make([]float64, dim)
		for f := range emb[i] {
			emb[i][f] = rng.NormFloat64()
		}
	}
	return emb
}

func TestNearestIndexesMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		dim := 1 + rng.Intn(6)
		emb := randomEmbeddings(n, dim, int64(trial))
		x := make([]float64, dim)
		for f := range x {
			x[f] = rng.NormFloat64()
		}
		var skip map[int]bool
		if trial%3 == 0 {
			skip = map[int]bool{rng.Intn(n): true}
		}
		for _, k := range []int{0, 1, 2, 5, n, n + 3} {
			heap := nearestIndexes(emb, x, k, skip)
			ref := nearestIndexesSort(emb, x, k, skip)
			if !reflect.DeepEqual(heap, ref) {
				t.Fatalf("trial %d n=%d k=%d: heap %v != sort %v", trial, n, k, heap, ref)
			}
		}
	}
}

func TestNearestIndexesDeterministicTies(t *testing.T) {
	// Five identical embeddings: every distance ties, so selection must
	// fall back to RCS-index order, identically on every call.
	emb := make([][]float64, 5)
	for i := range emb {
		emb[i] = []float64{1, 2, 3}
	}
	x := []float64{0, 0, 0}
	for trial := 0; trial < 10; trial++ {
		got := nearestIndexes(emb, x, 3, nil)
		if !reflect.DeepEqual(got, []int{0, 1, 2}) {
			t.Fatalf("tied selection returned %v, want [0 1 2]", got)
		}
	}
	// Skipping the first tied candidates shifts the selection, still in
	// index order.
	got := nearestIndexes(emb, x, 3, map[int]bool{0: true, 2: true})
	if !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Fatalf("tied selection with skip returned %v, want [1 3 4]", got)
	}
}

func TestRecommendDeterministicWithDuplicatedEmbeddings(t *testing.T) {
	// An advisor whose RCS contains the same graph twice produces two
	// identical embeddings; repeated recommendations must consult the
	// same neighbors every time.
	samples := corpus(t, 12, 41)
	dup := *samples[3]
	dup.Name = samples[3].Name + "-dup"
	samples = append(samples, &dup)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := adv.RecommendK(samples[3].Graph, 0.9, 4)
	for trial := 0; trial < 20; trial++ {
		rec := adv.RecommendK(samples[3].Graph, 0.9, 4)
		if !reflect.DeepEqual(rec.Neighbors, first.Neighbors) {
			t.Fatalf("trial %d: neighbors %v, want %v", trial, rec.Neighbors, first.Neighbors)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	samples := corpus(t, 16, 42)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := adv.Serving()
	n0 := len(before.RCS())
	thr0 := before.DriftThreshold()
	rec0 := before.Recommend(samples[0].Graph, 0.9)

	extra := corpus(t, 1, 43)[0]
	adv.OnlineAdapt(extra, 1)

	// The captured snapshot is frozen: same RCS, threshold, and
	// recommendation as before the mutation.
	if len(before.RCS()) != n0 || before.DriftThreshold() != thr0 {
		t.Fatal("captured snapshot changed under OnlineAdapt")
	}
	rec1 := before.Recommend(samples[0].Graph, 0.9)
	if !reflect.DeepEqual(rec0, rec1) {
		t.Fatalf("captured snapshot recommendation changed: %v -> %v", rec0, rec1)
	}
	// The advisor serves a new snapshot with the adapted RCS.
	after := adv.Serving()
	if after == before {
		t.Fatal("OnlineAdapt did not publish a new snapshot")
	}
	if len(after.RCS()) != n0+1 {
		t.Fatalf("new snapshot RCS has %d samples, want %d", len(after.RCS()), n0+1)
	}
}

// TestConcurrentServingUnderMutation hammers the read API from many
// goroutines while OnlineAdapt and IncrementalLearn retrain the advisor.
// Run with -race this is the core regression test for the serving path:
// readers must never observe a half-updated RCS — every recommendation's
// neighbor indexes resolve against the snapshot that produced it.
func TestConcurrentServingUnderMutation(t *testing.T) {
	samples := corpus(t, 16, 44)
	cfg := testConfig()
	cfg.Epochs = 4
	adv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	labelDim := len(samples[0].Sa)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := samples[w].Graph
			for i := 0; !stop.Load(); i++ {
				s := adv.Serving()
				rec := s.Recommend(g, 0.9)
				if rec.Model < 0 || rec.Model >= labelDim {
					errs <- "model index out of range"
					return
				}
				if len(rec.Scores) != labelDim {
					errs <- "score vector has wrong length"
					return
				}
				for _, ni := range rec.Neighbors {
					if ni < 0 || ni >= len(s.RCS()) {
						errs <- "neighbor index beyond snapshot RCS"
						return
					}
				}
				if i%7 == 0 {
					if k := len(s.RecommendK(g, 0.9, 5).Neighbors); k != 5 {
						errs <- "RecommendK returned wrong neighbor count"
						return
					}
					adv.DetectDrift(g)
				}
				if i%13 == 0 {
					batch := adv.RecommendBatch([]*feature.Graph{g, samples[0].Graph}, 0.5)
					if len(batch) != 2 || batch[0].Model < 0 {
						errs <- "RecommendBatch returned bad result"
						return
					}
				}
			}
		}(w)
	}

	// Mutators: two online adaptations and one incremental pass.
	for i := 0; i < 2; i++ {
		extra := corpus(t, 1, int64(50+i))[0]
		adv.OnlineAdapt(extra, 1)
	}
	il := DefaultILConfig()
	il.Epochs = 1
	adv.IncrementalLearn(il)

	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if len(adv.RCS()) != len(samples)+2 {
		t.Fatalf("final RCS size %d, want %d", len(adv.RCS()), len(samples)+2)
	}
}

func TestRecommendKConcurrentWithRecommend(t *testing.T) {
	// RecommendK must not leak its neighbor count into concurrent
	// Recommend calls (the pre-snapshot advisor mutated cfg.K).
	samples := corpus(t, 14, 45)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantK := testConfig().K
	var wg sync.WaitGroup
	bad := make(chan int, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					if got := len(adv.RecommendK(samples[0].Graph, 0.9, 5).Neighbors); got != 5 {
						bad <- got
						return
					}
				} else {
					if got := len(adv.Recommend(samples[1].Graph, 0.9).Neighbors); got != wantK {
						bad <- got
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(bad)
	for got := range bad {
		t.Fatalf("observed %d neighbors (default k %d)", got, wantK)
	}
}

func TestRecommendBatchMatchesSerial(t *testing.T) {
	samples := corpus(t, 18, 46)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	gs := make([]*feature.Graph, len(samples))
	for i, s := range samples {
		gs[i] = s.Graph
	}
	batch := adv.RecommendBatch(gs, 0.8)
	for i, g := range gs {
		serial := adv.Recommend(g, 0.8)
		if !reflect.DeepEqual(batch[i], serial) {
			t.Fatalf("graph %d: batch %v != serial %v", i, batch[i], serial)
		}
	}
	if got := adv.RecommendBatch(nil, 0.8); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}
