package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/ann"
	"repro/internal/feature"
	"repro/internal/gnn"
)

// advisorState is the gob-serializable form of a trained Advisor: the
// configuration, the encoder weights, and the recommendation candidate set
// with labels. Embeddings are recomputed on load (they are derived state);
// the ANN index is persisted as its own self-checking envelope so a large
// RCS does not pay the index rebuild on startup.
type advisorState struct {
	Cfg      Config
	Encoder  gnn.State
	Samples  []sampleState
	ANNIndex []byte
}

type sampleState struct {
	Name   string
	Graph  *feature.Graph
	Sa, Se []float64
}

// Save writes the trained advisor to w in gob format. A saved advisor can
// be reloaded with Load and used for recommendation, drift detection,
// online adapting and incremental learning — the full Stage 3/4 surface.
// Save reads the current serving snapshot, so it is safe concurrently with
// both readers and mutators and always writes a consistent state.
func (a *Advisor) Save(w io.Writer) error {
	snap := a.Serving()
	st := advisorState{Cfg: a.cfg, Encoder: snap.enc.State()}
	for _, s := range snap.rcs {
		st.Samples = append(st.Samples, sampleState{
			Name: s.Name, Graph: s.Graph, Sa: s.Sa, Se: s.Se,
		})
	}
	if snap.index != nil {
		blob, err := snap.index.MarshalBinary()
		if err != nil {
			return fmt.Errorf("core: encoding ann index: %w", err)
		}
		st.ANNIndex = blob
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: encoding advisor: %w", err)
	}
	return nil
}

// SaveFile writes the advisor to a file path.
func (a *Advisor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := a.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trained advisor written by Save and recomputes the RCS
// embeddings with the restored encoder.
func Load(r io.Reader) (*Advisor, error) {
	var st advisorState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding advisor: %w", err)
	}
	enc, err := gnn.FromState(st.Encoder)
	if err != nil {
		return nil, fmt.Errorf("core: restoring encoder: %w", err)
	}
	a := &Advisor{cfg: st.Cfg, enc: enc}
	for _, s := range st.Samples {
		a.rcs = append(a.rcs, &Sample{Name: s.Name, Graph: s.Graph, Sa: s.Sa, Se: s.Se})
	}
	if len(a.rcs) == 0 {
		return nil, fmt.Errorf("core: loaded advisor has an empty candidate set")
	}
	a.refreshEmbeddings()
	if len(st.ANNIndex) > 0 {
		ix, err := ann.Unmarshal(st.ANNIndex)
		if err != nil {
			return nil, fmt.Errorf("core: decoding ann index: %w", err)
		}
		// Strict re-bind against the recomputed embeddings: a count or
		// dimensionality mismatch means the artifact is internally
		// inconsistent, and a silently rebuilt index would mask it.
		if err := ix.Attach(a.emb); err != nil {
			return nil, fmt.Errorf("core: binding ann index: %w", err)
		}
		a.loadIndex = ix
	}
	a.publishLocked()
	return a, nil
}

// LoadFile reads an advisor from a file path.
func LoadFile(path string) (*Advisor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return Load(f)
}
