package core

import (
	"testing"
)

func TestEffectiveTauQuantile(t *testing.T) {
	a := &Advisor{cfg: Config{Tau: 0.5, TauQuantile: 0.5}}
	scores := [][]float64{
		{1, 0}, {1, 0}, {0, 1}, {0, 1},
	}
	// Pairwise similarities: within-group 1 (twice... pairs: (0,1)=1,
	// (0,2)=0, (0,3)=0, (1,2)=0, (1,3)=0, (2,3)=1 → {1,0,0,0,0,1}.
	// Median = 0.
	tau := a.effectiveTau(scores)
	if tau > 0.5 {
		t.Fatalf("median tau %g, want <= 0.5 for bimodal sims", tau)
	}
	// With the quantile disabled the fixed Tau is used.
	a.cfg.TauQuantile = 0
	if got := a.effectiveTau(scores); got != 0.5 {
		t.Fatalf("fixed tau %g, want 0.5", got)
	}
	// Degenerate batch falls back to the fixed Tau.
	a.cfg.TauQuantile = 0.5
	if got := a.effectiveTau([][]float64{{1, 0}}); got != 0.5 {
		t.Fatalf("single-sample tau %g, want fallback 0.5", got)
	}
}

func TestAdaptiveTauSeparatesBimodalLabels(t *testing.T) {
	// With adaptive tau, a bimodal label population must produce both
	// positive and negative pairs in every batch.
	scores := [][]float64{
		{1, 0.1, 0}, {0.95, 0.12, 0}, {0, 0.1, 1}, {0.02, 0.08, 0.97},
	}
	a := &Advisor{cfg: Config{TauQuantile: 0.5}}
	tau := a.effectiveTau(scores)
	pos, neg, _ := pairSets(scores, tau)
	var nPos, nNeg int
	for i := range pos {
		nPos += len(pos[i])
		nNeg += len(neg[i])
	}
	if nPos == 0 || nNeg == 0 {
		t.Fatalf("adaptive tau %g produced %d positive and %d negative pairs", tau, nPos, nNeg)
	}
}
