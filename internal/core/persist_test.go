package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	samples := corpus(t, 20, 21)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := adv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded advisor must reproduce embeddings and recommendations
	// exactly.
	for i, s := range samples {
		a := adv.Embed(s.Graph)
		b := loaded.Embed(s.Graph)
		for f := range a {
			if math.Abs(a[f]-b[f]) > 1e-12 {
				t.Fatalf("sample %d: embedding differs after reload", i)
			}
		}
		for _, wa := range []float64{1.0, 0.5} {
			if adv.Recommend(s.Graph, wa).Model != loaded.Recommend(s.Graph, wa).Model {
				t.Fatalf("sample %d: recommendation differs after reload", i)
			}
		}
	}
	// Drift threshold (derived state) matches too.
	if math.Abs(adv.DriftThreshold()-loaded.DriftThreshold()) > 1e-12 {
		t.Fatal("drift threshold differs after reload")
	}
}

func TestSaveLoadFile(t *testing.T) {
	samples := corpus(t, 10, 22)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "advisor.gob")
	if err := adv.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.RCS()) != len(samples) {
		t.Fatalf("loaded RCS has %d samples", len(loaded.RCS()))
	}
}

func TestLoadedAdvisorRemainsTrainable(t *testing.T) {
	// Incremental learning and online adapting must work on a reloaded
	// advisor (the encoder parameters stay trainable).
	samples := corpus(t, 16, 23)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := adv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	il := DefaultILConfig()
	il.Epochs = 2
	report := loaded.IncrementalLearn(il)
	if report.FeedbackCount+report.ReferenceCount != len(samples) {
		t.Fatal("incremental learning failed on a reloaded advisor")
	}
	extra := corpus(t, 1, 24)[0]
	loaded.OnlineAdapt(extra, 1)
	if len(loaded.RCS()) != len(samples)+1 {
		t.Fatal("online adapting failed on a reloaded advisor")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadFile("/nonexistent/advisor.gob"); err == nil {
		t.Fatal("missing file accepted")
	}
}
