package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ann"
	"repro/internal/feature"
	"repro/internal/gnn"
	"repro/internal/metrics"
)

// Snapshot is an immutable serving view of a trained advisor: a frozen
// copy of the encoder parameters, the recommendation candidate set, its
// embeddings, the ANN index over them (when the set is large enough to
// deserve one), and the precomputed drift threshold. Every field is
// fixed at construction, so any number of goroutines can call the read
// methods without synchronization while the owning advisor keeps
// training.
type Snapshot struct {
	k   int
	enc *gnn.Encoder
	rcs []*Sample
	emb [][]float64

	// index accelerates kNN over emb for candidate sets of at least
	// cfg.ANN.MinIndexSize entries; nil below that, where the exact heap
	// scan is both faster and bit-stable. See the package documentation
	// for the build/extend/rebuild/persist lifecycle.
	index *ann.Index

	// driftThreshold is the 90th-percentile leave-one-out nearest
	// distance over the RCS (Section V-E), precomputed so drift reads
	// are pure. Indexed snapshots estimate it over a bounded sample.
	driftThreshold float64
}

// newSnapshot freezes the current training state into a serving view. The
// encoder is deep-copied through its serialized state so subsequent
// training never mutates parameters a reader is using. emb is the
// caller's freshly refreshed embedding cache (the frozen copy is an exact
// parameter roundtrip, so re-embedding would reproduce it bit-for-bit);
// the rows are deep-copied into the snapshot, and recomputed with the
// frozen encoder only if the cache does not cover the RCS.
//
// prevIndex, when non-nil, is an index whose ids refer to a prefix of
// rcs (the previous snapshot's, or one decoded from an artifact): the
// new snapshot extends it with the appended tail instead of rebuilding,
// unless the appended share has crossed cfg.ANN.RebuildFraction — then
// the quantizer is rebuilt from scratch over the full set.
func newSnapshot(cfg Config, enc *gnn.Encoder, rcs []*Sample, emb [][]float64, prevIndex *ann.Index) *Snapshot {
	frozen, err := gnn.FromState(enc.State())
	if err != nil {
		// State() of a live encoder always matches its own architecture.
		panic("core: snapshotting encoder: " + err.Error())
	}
	s := &Snapshot{
		k:   cfg.K,
		enc: frozen,
		rcs: append([]*Sample(nil), rcs...),
		emb: make([][]float64, len(rcs)),
	}
	for i, smp := range s.rcs {
		if i < len(emb) && emb[i] != nil {
			s.emb[i] = append([]float64(nil), emb[i]...)
		} else {
			s.emb[i] = frozen.Embed(smp.Graph)
		}
	}
	if cfg.ANN.Indexable(len(s.emb)) {
		if prevIndex != nil {
			// Extend refuses (nil) on shape mismatch or staleness past
			// RebuildFraction; either way the build below recovers.
			s.index = prevIndex.Extend(s.emb)
		}
		if s.index == nil {
			s.index = ann.Build(s.emb, cfg.ANN)
		}
	}
	if s.index != nil {
		s.driftThreshold = driftThresholdIndexed(s.index, s.emb)
	} else {
		s.driftThreshold = driftThresholdOf(s.emb)
	}
	return s
}

// K returns the snapshot's default neighbor count.
func (s *Snapshot) K() int { return s.k }

// InDim returns the per-vertex feature length the encoder expects; graphs
// with a different dimension cannot be embedded.
func (s *Snapshot) InDim() int { return s.enc.InDim() }

// NumSamples returns the size of the recommendation candidate set.
func (s *Snapshot) NumSamples() int { return len(s.rcs) }

// SampleAt returns the i-th RCS member. Hot paths use it instead of
// RCS() to avoid the defensive copy.
func (s *Snapshot) SampleAt(i int) *Sample { return s.rcs[i] }

// EmbeddingAt returns a copy of the i-th RCS embedding.
func (s *Snapshot) EmbeddingAt(i int) []float64 {
	return append([]float64(nil), s.emb[i]...)
}

// RCS returns a copy of the snapshot's recommendation candidate set
// slice — reordering or truncating it cannot corrupt the snapshot or
// its index. The copy is O(n); prefer NumSamples/SampleAt on hot paths.
func (s *Snapshot) RCS() []*Sample { return append([]*Sample(nil), s.rcs...) }

// Embeddings returns a deep copy of the snapshot's RCS embeddings: the
// index searches the snapshot's own rows, which must stay immutable, so
// callers get rows they may scribble on. The copy is O(n·dim); prefer
// EmbeddingAt for single rows.
func (s *Snapshot) Embeddings() [][]float64 {
	out := make([][]float64, len(s.emb))
	for i, e := range s.emb {
		out[i] = append([]float64(nil), e...)
	}
	return out
}

// Indexed reports whether this snapshot serves kNN through an ANN
// index rather than the exact heap scan.
func (s *Snapshot) Indexed() bool { return s.index != nil }

// DriftThreshold returns the precomputed online-adapting distance
// threshold.
func (s *Snapshot) DriftThreshold() float64 { return s.driftThreshold }

// Embed encodes a feature graph with the snapshot's frozen encoder.
func (s *Snapshot) Embed(g *feature.Graph) []float64 { return s.enc.Embed(g) }

// Recommend runs Stage 4 for a target feature graph and accuracy weight:
// encode, find the k nearest labeled embeddings, average their score
// vectors under the weights, and return the top ranker (Eq. 13).
func (s *Snapshot) Recommend(g *feature.Graph, wa float64) Recommendation {
	return s.RecommendK(g, wa, s.k)
}

// RecommendK is Recommend with an explicit neighbor count (Table IV).
func (s *Snapshot) RecommendK(g *feature.Graph, wa float64, k int) Recommendation {
	return s.recommendEmbedded(s.enc.Embed(g), wa, k, nil)
}

func (s *Snapshot) recommendEmbedded(x []float64, wa float64, k int, skip map[int]bool) Recommendation {
	return scoreNeighbors(s.rcs, s.nearest(x, k, skip), wa)
}

// nearest routes k-selection through the ANN index when one exists,
// falling back to the exact bounded-heap scan below MinIndexSize, when
// a skip set is in play (cross-validation wants exact leave-fold-out
// semantics), or in the rare case the probed cells hold fewer than k
// candidates. Both paths order results by (distance, RCS index), so the
// exact path is bit-identical to the unindexed advisor.
func (s *Snapshot) nearest(x []float64, k int, skip map[int]bool) []int {
	if s.index != nil && skip == nil {
		want := k
		if want > len(s.emb) {
			want = len(s.emb)
		}
		if nbrs := s.index.Search(x, k); len(nbrs) >= want {
			out := make([]int, len(nbrs))
			for i, nb := range nbrs {
				out[i] = nb.Idx
			}
			return out
		}
	}
	return nearestIndexes(s.emb, x, k, skip)
}

// RecommendBatch recommends a model for every graph against this one
// snapshot — the whole batch sees a single consistent RCS even while
// mutators publish new snapshots. Graphs are distributed over
// runtime.NumCPU() workers, mirroring engine.CardinalityBatch; results are
// returned in input order.
func (s *Snapshot) RecommendBatch(gs []*feature.Graph, wa float64) []Recommendation {
	out := make([]Recommendation, len(gs))
	if len(gs) == 0 {
		return out
	}
	workers := runtime.NumCPU()
	if workers > len(gs) {
		workers = len(gs)
	}
	if workers <= 1 {
		for i, g := range gs {
			out[i] = s.Recommend(g, wa)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gs) {
					return
				}
				out[i] = s.Recommend(gs[i], wa)
			}
		}()
	}
	wg.Wait()
	return out
}

// NearestDistance returns the distance from g's embedding to its nearest
// RCS member.
func (s *Snapshot) NearestDistance(g *feature.Graph) float64 {
	x := s.enc.Embed(g)
	if s.index != nil {
		if nbrs := s.index.Search(x, 1); len(nbrs) == 1 {
			return nbrs[0].Dist
		}
	}
	best := math.Inf(1)
	for _, e := range s.emb {
		if d := metrics.EuclideanDistance(x, e); d < best {
			best = d
		}
	}
	return best
}

// DetectDrift reports whether g's embedding lies farther from the RCS than
// the drift threshold — an unexpected data distribution (Section V-E).
func (s *Snapshot) DetectDrift(g *feature.Graph) bool {
	return s.NearestDistance(g) > s.driftThreshold
}

// neighbor is one kNN candidate during selection.
type neighbor struct {
	idx  int
	dist float64
}

// ranksBefore reports whether a precedes b in nearest-first order. The
// order is total — equal distances break toward the smaller RCS index —
// so selection over duplicated embeddings is deterministic.
func ranksBefore(a, b neighbor) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.idx < b.idx
}

// siftUp and siftDown maintain a max-heap under ranksBefore: the root is
// the worst candidate currently kept, the one a closer candidate evicts.
func siftUp(h []neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !ranksBefore(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []neighbor, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && ranksBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && ranksBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// nearestIndexes returns the indexes of the k nearest embeddings to x in
// nearest-first order, excluding any index in skip (used by
// cross-validation). Selection runs over a bounded max-heap of size k —
// O(n log k) with a k-element footprint instead of sorting all n
// candidates — and ties break by RCS index (see ranksBefore).
func nearestIndexes(emb [][]float64, x []float64, k int, skip map[int]bool) []int {
	if k <= 0 {
		return nil
	}
	if k > len(emb) {
		k = len(emb)
	}
	h := make([]neighbor, 0, k)
	for i, e := range emb {
		if skip != nil && skip[i] {
			continue
		}
		c := neighbor{i, metrics.EuclideanDistance(x, e)}
		if len(h) < k {
			h = append(h, c)
			siftUp(h, len(h)-1)
			continue
		}
		if ranksBefore(c, h[0]) {
			h[0] = c
			siftDown(h, 0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return ranksBefore(h[a], h[b]) })
	out := make([]int, len(h))
	for i, c := range h {
		out[i] = c.idx
	}
	return out
}

// nearestIndexesSort is the full-sort reference selection, kept for the
// differential test and the heap-vs-sort benchmark comparison. It applies
// the same deterministic tie-break as nearestIndexes.
func nearestIndexesSort(emb [][]float64, x []float64, k int, skip map[int]bool) []int {
	if k <= 0 {
		return nil
	}
	cands := make([]neighbor, 0, len(emb))
	for i, e := range emb {
		if skip != nil && skip[i] {
			continue
		}
		cands = append(cands, neighbor{i, metrics.EuclideanDistance(x, e)})
	}
	sort.Slice(cands, func(a, b int) bool { return ranksBefore(cands[a], cands[b]) })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// scoreNeighbors averages the selected neighbors' score vectors under the
// accuracy weight and picks the top ranker (Eq. 13).
func scoreNeighbors(rcs []*Sample, nbrs []int, wa float64) Recommendation {
	if len(nbrs) == 0 {
		return Recommendation{Model: -1}
	}
	dim := len(rcs[nbrs[0]].Sa)
	avg := make([]float64, dim)
	for _, ni := range nbrs {
		sv := rcs[ni].Score(wa)
		for j := range avg {
			avg[j] += sv[j]
		}
	}
	for j := range avg {
		avg[j] /= float64(len(nbrs))
	}
	return Recommendation{Model: metrics.ArgMax(avg), Scores: avg, Neighbors: nbrs}
}

// driftSampleCap bounds how many RCS members an indexed snapshot probes
// for its drift threshold: the threshold is a 90th-percentile estimate,
// and a strided sample of a few thousand leave-one-out distances pins it
// tightly without the O(n²) pair scan the exact path pays.
const driftSampleCap = 2048

// driftThresholdIndexed estimates the drift threshold through the ANN
// index: a deterministic strided sample of members, each asking the
// index for its nearest other member, fanned over the worker pool
// (every sample position writes only its own slot, so the result is
// schedule-independent). A member whose probed cells are empty after
// filtering itself out — possible only under pathological filtering —
// falls back to its exact leave-one-out scan.
func driftThresholdIndexed(ix *ann.Index, emb [][]float64) float64 {
	n := len(emb)
	step := 1
	if n > driftSampleCap {
		step = n / driftSampleCap
	}
	var sample []int
	for i := 0; i < n; i += step {
		sample = append(sample, i)
	}
	dists := make([]float64, len(sample))
	workers := runtime.NumCPU()
	if workers > len(sample) {
		workers = len(sample)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(next.Add(1)) - 1
				if pos >= len(sample) {
					return
				}
				i := sample[pos]
				if nbrs := ix.SearchFiltered(emb[i], 1, func(j int) bool { return j != i }); len(nbrs) == 1 {
					dists[pos] = nbrs[0].Dist
				} else {
					dists[pos] = looNearest(emb, i)
				}
			}
		}()
	}
	wg.Wait()
	return metrics.Percentile(dists, 90)
}

// looNearest is one member's exact leave-one-out nearest distance.
func looNearest(emb [][]float64, i int) float64 {
	best := math.Inf(1)
	for j, o := range emb {
		if i == j {
			continue
		}
		if d := metrics.EuclideanDistance(emb[i], o); d < best {
			best = d
		}
	}
	return best
}

// driftThresholdOf computes the 90th percentile of each embedding's
// leave-one-out nearest-neighbor distance.
func driftThresholdOf(emb [][]float64) float64 {
	dists := make([]float64, 0, len(emb))
	for i, e := range emb {
		best := math.Inf(1)
		for j, o := range emb {
			if i == j {
				continue
			}
			if d := metrics.EuclideanDistance(e, o); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			dists = append(dists, best)
		}
	}
	return metrics.Percentile(dists, 90)
}
