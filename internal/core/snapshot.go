package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/feature"
	"repro/internal/gnn"
	"repro/internal/metrics"
)

// Snapshot is an immutable serving view of a trained advisor: a frozen
// copy of the encoder parameters, the recommendation candidate set, its
// embeddings, and the precomputed drift threshold. Every field is fixed at
// construction, so any number of goroutines can call the read methods
// without synchronization while the owning advisor keeps training. The
// slices returned by accessors are the snapshot's own — callers must not
// mutate them.
type Snapshot struct {
	k   int
	enc *gnn.Encoder
	rcs []*Sample
	emb [][]float64

	// driftThreshold is the 90th-percentile leave-one-out nearest
	// distance over the RCS (Section V-E), precomputed so drift reads
	// are pure.
	driftThreshold float64
}

// newSnapshot freezes the current training state into a serving view. The
// encoder is deep-copied through its serialized state so subsequent
// training never mutates parameters a reader is using. emb is the
// caller's freshly refreshed embedding cache (the frozen copy is an exact
// parameter roundtrip, so re-embedding would reproduce it bit-for-bit);
// the rows are deep-copied into the snapshot, and recomputed with the
// frozen encoder only if the cache does not cover the RCS.
func newSnapshot(cfg Config, enc *gnn.Encoder, rcs []*Sample, emb [][]float64) *Snapshot {
	frozen, err := gnn.FromState(enc.State())
	if err != nil {
		// State() of a live encoder always matches its own architecture.
		panic("core: snapshotting encoder: " + err.Error())
	}
	s := &Snapshot{
		k:   cfg.K,
		enc: frozen,
		rcs: append([]*Sample(nil), rcs...),
		emb: make([][]float64, len(rcs)),
	}
	for i, smp := range s.rcs {
		if i < len(emb) && emb[i] != nil {
			s.emb[i] = append([]float64(nil), emb[i]...)
		} else {
			s.emb[i] = frozen.Embed(smp.Graph)
		}
	}
	s.driftThreshold = driftThresholdOf(s.emb)
	return s
}

// K returns the snapshot's default neighbor count.
func (s *Snapshot) K() int { return s.k }

// InDim returns the per-vertex feature length the encoder expects; graphs
// with a different dimension cannot be embedded.
func (s *Snapshot) InDim() int { return s.enc.InDim() }

// RCS returns the snapshot's recommendation candidate set.
func (s *Snapshot) RCS() []*Sample { return s.rcs }

// Embeddings returns the snapshot's RCS embeddings.
func (s *Snapshot) Embeddings() [][]float64 { return s.emb }

// DriftThreshold returns the precomputed online-adapting distance
// threshold.
func (s *Snapshot) DriftThreshold() float64 { return s.driftThreshold }

// Embed encodes a feature graph with the snapshot's frozen encoder.
func (s *Snapshot) Embed(g *feature.Graph) []float64 { return s.enc.Embed(g) }

// Recommend runs Stage 4 for a target feature graph and accuracy weight:
// encode, find the k nearest labeled embeddings, average their score
// vectors under the weights, and return the top ranker (Eq. 13).
func (s *Snapshot) Recommend(g *feature.Graph, wa float64) Recommendation {
	return s.RecommendK(g, wa, s.k)
}

// RecommendK is Recommend with an explicit neighbor count (Table IV).
func (s *Snapshot) RecommendK(g *feature.Graph, wa float64, k int) Recommendation {
	return s.recommendEmbedded(s.enc.Embed(g), wa, k, nil)
}

func (s *Snapshot) recommendEmbedded(x []float64, wa float64, k int, skip map[int]bool) Recommendation {
	return scoreNeighbors(s.rcs, nearestIndexes(s.emb, x, k, skip), wa)
}

// RecommendBatch recommends a model for every graph against this one
// snapshot — the whole batch sees a single consistent RCS even while
// mutators publish new snapshots. Graphs are distributed over
// runtime.NumCPU() workers, mirroring engine.CardinalityBatch; results are
// returned in input order.
func (s *Snapshot) RecommendBatch(gs []*feature.Graph, wa float64) []Recommendation {
	out := make([]Recommendation, len(gs))
	if len(gs) == 0 {
		return out
	}
	workers := runtime.NumCPU()
	if workers > len(gs) {
		workers = len(gs)
	}
	if workers <= 1 {
		for i, g := range gs {
			out[i] = s.Recommend(g, wa)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(gs) {
					return
				}
				out[i] = s.Recommend(gs[i], wa)
			}
		}()
	}
	wg.Wait()
	return out
}

// NearestDistance returns the distance from g's embedding to its nearest
// RCS member.
func (s *Snapshot) NearestDistance(g *feature.Graph) float64 {
	x := s.enc.Embed(g)
	best := math.Inf(1)
	for _, e := range s.emb {
		if d := metrics.EuclideanDistance(x, e); d < best {
			best = d
		}
	}
	return best
}

// DetectDrift reports whether g's embedding lies farther from the RCS than
// the drift threshold — an unexpected data distribution (Section V-E).
func (s *Snapshot) DetectDrift(g *feature.Graph) bool {
	return s.NearestDistance(g) > s.driftThreshold
}

// neighbor is one kNN candidate during selection.
type neighbor struct {
	idx  int
	dist float64
}

// ranksBefore reports whether a precedes b in nearest-first order. The
// order is total — equal distances break toward the smaller RCS index —
// so selection over duplicated embeddings is deterministic.
func ranksBefore(a, b neighbor) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.idx < b.idx
}

// siftUp and siftDown maintain a max-heap under ranksBefore: the root is
// the worst candidate currently kept, the one a closer candidate evicts.
func siftUp(h []neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !ranksBefore(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []neighbor, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && ranksBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && ranksBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// nearestIndexes returns the indexes of the k nearest embeddings to x in
// nearest-first order, excluding any index in skip (used by
// cross-validation). Selection runs over a bounded max-heap of size k —
// O(n log k) with a k-element footprint instead of sorting all n
// candidates — and ties break by RCS index (see ranksBefore).
func nearestIndexes(emb [][]float64, x []float64, k int, skip map[int]bool) []int {
	if k <= 0 {
		return nil
	}
	if k > len(emb) {
		k = len(emb)
	}
	h := make([]neighbor, 0, k)
	for i, e := range emb {
		if skip != nil && skip[i] {
			continue
		}
		c := neighbor{i, metrics.EuclideanDistance(x, e)}
		if len(h) < k {
			h = append(h, c)
			siftUp(h, len(h)-1)
			continue
		}
		if ranksBefore(c, h[0]) {
			h[0] = c
			siftDown(h, 0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return ranksBefore(h[a], h[b]) })
	out := make([]int, len(h))
	for i, c := range h {
		out[i] = c.idx
	}
	return out
}

// nearestIndexesSort is the full-sort reference selection, kept for the
// differential test and the heap-vs-sort benchmark comparison. It applies
// the same deterministic tie-break as nearestIndexes.
func nearestIndexesSort(emb [][]float64, x []float64, k int, skip map[int]bool) []int {
	if k <= 0 {
		return nil
	}
	cands := make([]neighbor, 0, len(emb))
	for i, e := range emb {
		if skip != nil && skip[i] {
			continue
		}
		cands = append(cands, neighbor{i, metrics.EuclideanDistance(x, e)})
	}
	sort.Slice(cands, func(a, b int) bool { return ranksBefore(cands[a], cands[b]) })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// scoreNeighbors averages the selected neighbors' score vectors under the
// accuracy weight and picks the top ranker (Eq. 13).
func scoreNeighbors(rcs []*Sample, nbrs []int, wa float64) Recommendation {
	if len(nbrs) == 0 {
		return Recommendation{Model: -1}
	}
	dim := len(rcs[nbrs[0]].Sa)
	avg := make([]float64, dim)
	for _, ni := range nbrs {
		sv := rcs[ni].Score(wa)
		for j := range avg {
			avg[j] += sv[j]
		}
	}
	for j := range avg {
		avg[j] /= float64(len(nbrs))
	}
	return Recommendation{Model: metrics.ArgMax(avg), Scores: avg, Neighbors: nbrs}
}

// driftThresholdOf computes the 90th percentile of each embedding's
// leave-one-out nearest-neighbor distance.
func driftThresholdOf(emb [][]float64) float64 {
	dists := make([]float64, 0, len(emb))
	for i, e := range emb {
		best := math.Inf(1)
		for j, o := range emb {
			if i == j {
				continue
			}
			if d := metrics.EuclideanDistance(e, o); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			dists = append(dists, best)
		}
	}
	return metrics.Percentile(dists, 90)
}
