package core

import (
	"math"
	"math/rand"

	"repro/internal/feature"
)

// ILConfig controls incremental learning (Algorithm 2).
type ILConfig struct {
	// Folds is ξ, the cross-validation fold count.
	Folds int
	// Threshold is b: samples recommended with D-error above it join the
	// feedback set.
	Threshold float64
	// Weight is the accuracy weight the discriminator evaluates D-error
	// at (the paper validates with the metric in use).
	Weight float64
	// Alpha and Beta parameterize the Mixup λ ~ Beta(α, β) draw.
	Alpha, Beta float64
	// Epochs is the incremental training budget after augmentation.
	Epochs int
	// Augment disables Mixup when false (the paper's "No Augmentation"
	// ablation: feedback samples are re-trained without synthesis).
	Augment bool
	Seed    int64
}

// DefaultILConfig returns the incremental-learning configuration used by
// the experiments (b = 0.1 as in Section VII-F).
func DefaultILConfig() ILConfig {
	return ILConfig{
		Folds: 5, Threshold: 0.1, Weight: 0.9,
		Alpha: 2, Beta: 2, Epochs: 8, Augment: true, Seed: 23,
	}
}

// ILReport summarizes one incremental-learning pass.
type ILReport struct {
	FeedbackCount  int
	ReferenceCount int
	Synthesized    int
}

// IncrementalLearn runs Algorithm 2 on the advisor: cross-validate the
// current encoder over its own training data, collect poorly predicted
// samples (D-error > b) into the feedback set, synthesize new samples by
// Mixup with their nearest reference neighbors, and continue training on
// the augmented data. Readers keep serving the previous snapshot until
// the refined one is published.
func (a *Advisor) IncrementalLearn(cfg ILConfig) ILReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(a.rcs)
	if cfg.Folds < 2 || n < cfg.Folds {
		return ILReport{}
	}
	a.refreshEmbeddings()

	// Step 1: cross-validation discriminator.
	perm := rng.Perm(n)
	var feedback, reference []int
	for v := 0; v < cfg.Folds; v++ {
		skip := map[int]bool{}
		var fold []int
		for pos, si := range perm {
			if pos%cfg.Folds == v {
				skip[si] = true
				fold = append(fold, si)
			}
		}
		for _, si := range fold {
			rec := a.recommendTraining(a.emb[si], cfg.Weight, skip)
			if rec.Model < 0 {
				continue
			}
			if DError(a.rcs[si], cfg.Weight, rec.Model) > cfg.Threshold {
				feedback = append(feedback, si)
			} else {
				reference = append(reference, si)
			}
		}
	}
	report := ILReport{FeedbackCount: len(feedback), ReferenceCount: len(reference)}
	if len(feedback) == 0 {
		return report
	}

	// Step 2: Mixup augmentation against nearest reference neighbors.
	// Neighbors with the same vertex (table) count are preferred: a convex
	// combination of graphs with different table counts zero-pads the
	// missing vertices, which lands off the feature manifold and degrades
	// rather than augments the training pool.
	var synthesized []*Sample
	if cfg.Augment && len(reference) > 0 {
		for _, fi := range feedback {
			best, bestD := -1, math.Inf(1)
			n := a.rcs[fi].Graph.NumVertices()
			for _, ri := range reference {
				if a.rcs[ri].Graph.NumVertices() != n {
					continue
				}
				d := euclid(a.emb[fi], a.emb[ri])
				if d < bestD {
					best, bestD = ri, d
				}
			}
			if best == -1 { // no same-shape reference: fall back to any
				for _, ri := range reference {
					d := euclid(a.emb[fi], a.emb[ri])
					if d < bestD {
						best, bestD = ri, d
					}
				}
			}
			lambda := betaSample(rng, cfg.Alpha, cfg.Beta)
			g := feature.Mixup(a.rcs[fi].Graph, a.rcs[best].Graph, lambda)
			synthesized = append(synthesized, &Sample{
				Name:  a.rcs[fi].Name + "+aug",
				Graph: g,
				Sa:    feature.MixupLabels(a.rcs[fi].Sa, a.rcs[best].Sa, lambda),
				Se:    feature.MixupLabels(a.rcs[fi].Se, a.rcs[best].Se, lambda),
			})
		}
	}
	report.Synthesized = len(synthesized)

	// Step 3: incremental training on original + synthesized data. The
	// synthesized samples extend the training pool but not the RCS (their
	// labels are interpolations, not measurements). The pass fine-tunes:
	// a fresh optimizer at the full learning rate would overwrite the
	// converged encoder rather than refine it, so the rate is damped.
	trainingPool := append(append([]*Sample(nil), a.rcs...), synthesized...)
	ilCfg := a.cfg
	ilCfg.Epochs = cfg.Epochs
	ilCfg.Seed = cfg.Seed + 1
	ilCfg.LR = a.cfg.LR / 5
	a.trainDML(trainingPool, ilCfg)
	a.refreshEmbeddings()
	a.publishLocked()
	return report
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// betaSample draws from Beta(α, β) via two Gamma draws
// (Marsaglia-Tsang for shape >= 1, boosted for shape < 1).
func betaSample(rng *rand.Rand, alpha, beta float64) float64 {
	x := gammaSample(rng, alpha)
	y := gammaSample(rng, beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
