package core

import (
	"math"
	"math/rand"

	"repro/internal/ann"
	"repro/internal/feature"
)

// ILConfig controls incremental learning (Algorithm 2).
type ILConfig struct {
	// Folds is ξ, the cross-validation fold count.
	Folds int
	// Threshold is b: samples recommended with D-error above it join the
	// feedback set.
	Threshold float64
	// Weight is the accuracy weight the discriminator evaluates D-error
	// at (the paper validates with the metric in use).
	Weight float64
	// Alpha and Beta parameterize the Mixup λ ~ Beta(α, β) draw.
	Alpha, Beta float64
	// Epochs is the incremental training budget after augmentation.
	Epochs int
	// Augment disables Mixup when false (the paper's "No Augmentation"
	// ablation: feedback samples are re-trained without synthesis).
	Augment bool
	Seed    int64
}

// DefaultILConfig returns the incremental-learning configuration used by
// the experiments (b = 0.1 as in Section VII-F).
func DefaultILConfig() ILConfig {
	return ILConfig{
		Folds: 5, Threshold: 0.1, Weight: 0.9,
		Alpha: 2, Beta: 2, Epochs: 8, Augment: true, Seed: 23,
	}
}

// ILReport summarizes one incremental-learning pass.
type ILReport struct {
	FeedbackCount  int
	ReferenceCount int
	Synthesized    int
}

// IncrementalLearn runs Algorithm 2 on the advisor: cross-validate the
// current encoder over its own training data, collect poorly predicted
// samples (D-error > b) into the feedback set, synthesize new samples by
// Mixup with their nearest reference neighbors, and continue training on
// the augmented data. Readers keep serving the previous snapshot until
// the refined one is published.
func (a *Advisor) IncrementalLearn(cfg ILConfig) ILReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(a.rcs)
	if cfg.Folds < 2 || n < cfg.Folds {
		return ILReport{}
	}
	a.refreshEmbeddings()

	// Step 1: cross-validation discriminator.
	perm := rng.Perm(n)
	var feedback, reference []int
	for v := 0; v < cfg.Folds; v++ {
		skip := map[int]bool{}
		var fold []int
		for pos, si := range perm {
			if pos%cfg.Folds == v {
				skip[si] = true
				fold = append(fold, si)
			}
		}
		for _, si := range fold {
			rec := a.recommendTraining(a.emb[si], cfg.Weight, skip)
			if rec.Model < 0 {
				continue
			}
			if DError(a.rcs[si], cfg.Weight, rec.Model) > cfg.Threshold {
				feedback = append(feedback, si)
			} else {
				reference = append(reference, si)
			}
		}
	}
	report := ILReport{FeedbackCount: len(feedback), ReferenceCount: len(reference)}
	if len(feedback) == 0 {
		return report
	}

	// Step 2: Mixup augmentation against nearest reference neighbors.
	// Neighbors with the same vertex (table) count are preferred: a convex
	// combination of graphs with different table counts zero-pads the
	// missing vertices, which lands off the feature manifold and degrades
	// rather than augments the training pool. The lookup routes through
	// the serving snapshot's ANN index when one exists (the exact scan is
	// O(feedback × reference), quadratic over a large corpus); below
	// MinIndexSize the exact single-pass scan keeps today's results
	// bit-for-bit.
	var synthesized []*Sample
	if cfg.Augment && len(reference) > 0 {
		ix := a.trainingIndex()
		refSet := make(map[int]bool, len(reference))
		for _, ri := range reference {
			refSet[ri] = true
		}
		for _, fi := range feedback {
			best := a.nearestReference(ix, refSet, fi, reference)
			lambda := betaSample(rng, cfg.Alpha, cfg.Beta)
			g := feature.Mixup(a.rcs[fi].Graph, a.rcs[best].Graph, lambda)
			synthesized = append(synthesized, &Sample{
				Name:  a.rcs[fi].Name + "+aug",
				Graph: g,
				Sa:    feature.MixupLabels(a.rcs[fi].Sa, a.rcs[best].Sa, lambda),
				Se:    feature.MixupLabels(a.rcs[fi].Se, a.rcs[best].Se, lambda),
			})
		}
	}
	report.Synthesized = len(synthesized)

	// Step 3: incremental training on original + synthesized data. The
	// synthesized samples extend the training pool but not the RCS (their
	// labels are interpolations, not measurements). The pass fine-tunes:
	// a fresh optimizer at the full learning rate would overwrite the
	// converged encoder rather than refine it, so the rate is damped.
	trainingPool := append(append([]*Sample(nil), a.rcs...), synthesized...)
	ilCfg := a.cfg
	ilCfg.Epochs = cfg.Epochs
	ilCfg.Seed = cfg.Seed + 1
	ilCfg.LR = a.cfg.LR / 5
	a.trainDML(trainingPool, ilCfg)
	a.refreshEmbeddings()
	a.publishLocked()
	return report
}

// trainingIndex returns the published snapshot's ANN index when it
// covers the advisor's current training embeddings, nil otherwise. Every
// mutator ends by publishing, so at mutator entry the snapshot mirrors
// training state; the length guard keeps a stale index from serving ids
// that do not exist in a.rcs.
func (a *Advisor) trainingIndex() *ann.Index {
	snap := a.snap.Load()
	if snap == nil || snap.index == nil || len(snap.emb) != len(a.emb) {
		return nil
	}
	return snap.index
}

// nearestReference finds the reference sample nearest to feedback sample
// fi, preferring references with the same vertex (table) count. The
// indexed path asks the ANN index first and falls back to the exact scan
// when the probed cells hold no eligible reference; the exact path
// collapses the historical two-pass scan into one (identical results:
// the old fallback pass started from the same +Inf bound the first pass
// left untouched).
func (a *Advisor) nearestReference(ix *ann.Index, refSet map[int]bool, fi int, reference []int) int {
	nv := a.rcs[fi].Graph.NumVertices()
	if ix != nil {
		if nbrs := ix.SearchFiltered(a.emb[fi], 1, func(j int) bool {
			return refSet[j] && a.rcs[j].Graph.NumVertices() == nv
		}); len(nbrs) > 0 {
			return nbrs[0].Idx
		}
		if nbrs := ix.SearchFiltered(a.emb[fi], 1, func(j int) bool {
			return refSet[j]
		}); len(nbrs) > 0 {
			return nbrs[0].Idx
		}
	}
	bestSame, bestSameD := -1, math.Inf(1)
	bestAny, bestAnyD := -1, math.Inf(1)
	for _, ri := range reference {
		d := euclid(a.emb[fi], a.emb[ri])
		if d < bestAnyD {
			bestAny, bestAnyD = ri, d
		}
		if d < bestSameD && a.rcs[ri].Graph.NumVertices() == nv {
			bestSame, bestSameD = ri, d
		}
	}
	if bestSame >= 0 {
		return bestSame
	}
	return bestAny
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// betaSample draws from Beta(α, β) via two Gamma draws
// (Marsaglia-Tsang for shape >= 1, boosted for shape < 1).
func betaSample(rng *rand.Rand, alpha, beta float64) float64 {
	x := gammaSample(rng, alpha)
	y := gammaSample(rng, beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
