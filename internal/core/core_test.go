package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/feature"
	"repro/internal/gnn"
)

// corpus builds a labeled corpus with a learnable structure: single-table
// datasets favor model 0 on accuracy, multi-table datasets favor model 1,
// and model 2 is always the efficiency winner. This gives the metric
// learner a clean signal without running the (slow) real testbed.
func corpus(t testing.TB, n int, seed int64) []*Sample {
	t.Helper()
	cfg := feature.DefaultConfig()
	rng := rand.New(rand.NewSource(seed))
	var out []*Sample
	for i := 0; i < n; i++ {
		p := datagen.DefaultParams(rng.Int63())
		p.MinRows, p.MaxRows = 60, 120
		p.Tables = 1 + rng.Intn(3)
		d, err := datagen.Generate("c", p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := feature.Extract(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		noise := func() float64 { return rng.Float64() * 0.05 }
		var sa []float64
		if d.NumTables() == 1 {
			sa = []float64{1 - noise(), 0.3 + noise(), 0.1 + noise()}
		} else {
			sa = []float64{0.3 + noise(), 1 - noise(), 0.1 + noise()}
		}
		se := []float64{0.2 + noise(), 0.1 + noise(), 1 - noise()}
		out = append(out, &Sample{Name: d.Name, Graph: g, Sa: sa, Se: se})
	}
	return out
}

func testConfig() Config {
	cfg := DefaultConfig(feature.DefaultConfig().VertexDim())
	cfg.GNN = gnn.Config{InDim: feature.DefaultConfig().VertexDim(), Hidden: 16, OutDim: 8, Layers: 2, Seed: 5}
	cfg.Epochs = 10
	cfg.Batch = 12
	return cfg
}

func TestTrainAndSelfRecommend(t *testing.T) {
	samples := corpus(t, 30, 1)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Recommending a training sample's own graph at wa=1.0 should pick
	// its accuracy winner for the vast majority of samples: with k=2 the
	// sample itself (distance 0) plus its nearest neighbor vote.
	correct := 0
	for _, s := range samples {
		rec := adv.Recommend(s.Graph, 1.0)
		if rec.Model == argmax(s.Sa) {
			correct++
		}
	}
	if correct < len(samples)*7/10 {
		t.Fatalf("self-recommendation accuracy %d/%d too low", correct, len(samples))
	}
}

func TestEfficiencyWeightFlipsRecommendation(t *testing.T) {
	samples := corpus(t, 30, 2)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At wa=0 every dataset's winner is model 2 (the efficiency king).
	correct := 0
	for _, s := range samples {
		if adv.Recommend(s.Graph, 0).Model == 2 {
			correct++
		}
	}
	if correct < len(samples)*8/10 {
		t.Fatalf("efficiency recommendation accuracy %d/%d", correct, len(samples))
	}
}

func TestDMLTrainingReducesLoss(t *testing.T) {
	samples := corpus(t, 24, 3)
	cfg := testConfig()
	cfg.Epochs = 0 // untrained
	unadv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := unadv.BatchLoss(samples, 0.9)
	cfg.Epochs = 12
	adv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := adv.BatchLoss(samples, 0.9)
	if after >= before {
		t.Fatalf("weighted contrastive loss did not decrease: %g -> %g", before, after)
	}
}

func TestBasicLossVariantTrains(t *testing.T) {
	samples := corpus(t, 20, 4)
	cfg := testConfig()
	cfg.Loss = LossBasic
	adv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := adv.Recommend(samples[0].Graph, 1.0)
	if rec.Model < 0 || rec.Model >= len(samples[0].Sa) {
		t.Fatalf("basic-loss advisor returned model %d", rec.Model)
	}
}

func TestPairSets(t *testing.T) {
	scores := [][]float64{
		{1, 0, 0},
		{0.99, 0.01, 0},
		{0, 1, 0},
	}
	pos, neg, sims := pairSets(scores, 0.95)
	if len(pos[0]) != 1 || pos[0][0] != 1 {
		t.Fatalf("pos[0] = %v", pos[0])
	}
	if len(neg[0]) != 1 || neg[0][0] != 2 {
		t.Fatalf("neg[0] = %v", neg[0])
	}
	if sims[0][1] < 0.95 || sims[0][2] > 0.5 {
		t.Fatalf("sims[0] = %v", sims[0])
	}
}

func TestWeightedContrastiveGradientSigns(t *testing.T) {
	// Positive pairs: gradient moves embeddings together; negative pairs:
	// apart. Verify via a single gradient step direction.
	embs := [][]float64{{0, 0}, {1, 0}, {0, 3}}
	scores := [][]float64{{1, 0}, {1, 0.01}, {0, 1}}
	_, grads := weightedContrastive(embs, scores, 0.9, 2)
	// Anchor 0 and 1 are positive: grad on emb[0] along (emb0-emb1) must
	// be positive coefficient (descent moves them together).
	// grad[0] ≈ w*(x0-x1)/d + (negative-pair term toward x2).
	// Descending x0 -= lr*grad[0]: the x-component should push x0 toward
	// x1 (grad[0].x > 0 is wrong; x0.x - x1.x = -1, so grad includes
	// w*(-1) < 0, meaning x0.x increases on descent — toward x1.x = 1).
	if grads[0][0] >= 0 {
		t.Fatalf("positive-pair gradient should pull x0 toward x1: %v", grads[0])
	}
	// The negative pair (0,2): y-component of grad on x0 should push x0
	// away from x2 (x0.y - x2.y = -3; negative pair contributes
	// -w*(-3)/d > 0, so descent decreases x0.y — away from x2).
	if grads[0][1] <= 0 {
		t.Fatalf("negative-pair gradient should push x0 away from x2: %v", grads[0])
	}
}

func TestWeightedContrastiveGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, dim := 5, 3
	embs := make([][]float64, m)
	scores := make([][]float64, m)
	for i := range embs {
		embs[i] = make([]float64, dim)
		scores[i] = make([]float64, 3)
		for f := range embs[i] {
			embs[i][f] = rng.NormFloat64()
		}
		for f := range scores[i] {
			scores[i][f] = rng.Float64()
		}
	}
	lossAt := func() float64 {
		l, _ := weightedContrastive(embs, scores, 0.9, 2)
		return l
	}
	_, grads := weightedContrastive(embs, scores, 0.9, 2)
	const h = 1e-6
	for i := 0; i < m; i++ {
		for f := 0; f < dim; f++ {
			old := embs[i][f]
			embs[i][f] = old + h
			up := lossAt()
			embs[i][f] = old - h
			down := lossAt()
			embs[i][f] = old
			want := (up - down) / (2 * h)
			if math.Abs(grads[i][f]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("emb %d dim %d: grad %g numeric %g", i, f, grads[i][f], want)
			}
		}
	}
}

func TestBasicContrastiveGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, dim := 4, 2
	embs := make([][]float64, m)
	scores := make([][]float64, m)
	for i := range embs {
		embs[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		scores[i] = []float64{rng.Float64(), rng.Float64()}
	}
	lossAt := func() float64 {
		l, _ := basicContrastive(embs, scores, 0.9)
		return l
	}
	_, grads := basicContrastive(embs, scores, 0.9)
	const h = 1e-6
	for i := 0; i < m; i++ {
		for f := 0; f < dim; f++ {
			old := embs[i][f]
			embs[i][f] = old + h
			up := lossAt()
			embs[i][f] = old - h
			down := lossAt()
			embs[i][f] = old
			want := (up - down) / (2 * h)
			if math.Abs(grads[i][f]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("emb %d dim %d: grad %g numeric %g", i, f, grads[i][f], want)
			}
		}
	}
}

func TestRecommendKVariants(t *testing.T) {
	samples := corpus(t, 20, 8)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		rec := adv.RecommendK(samples[0].Graph, 0.9, k)
		if len(rec.Neighbors) != k {
			t.Fatalf("k=%d returned %d neighbors", k, len(rec.Neighbors))
		}
	}
	// RecommendK must not permanently change the advisor's k.
	rec := adv.Recommend(samples[0].Graph, 0.9)
	if len(rec.Neighbors) != testConfig().K {
		t.Fatalf("RecommendK leaked k: %d neighbors", len(rec.Neighbors))
	}
}

func TestIncrementalLearning(t *testing.T) {
	samples := corpus(t, 30, 9)
	cfg := testConfig()
	cfg.Epochs = 6
	adv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	il := DefaultILConfig()
	il.Epochs = 4
	report := adv.IncrementalLearn(il)
	if report.FeedbackCount+report.ReferenceCount != len(samples) {
		t.Fatalf("discriminator covered %d samples, want %d",
			report.FeedbackCount+report.ReferenceCount, len(samples))
	}
	if report.Synthesized != report.FeedbackCount && report.ReferenceCount > 0 {
		t.Fatalf("synthesized %d for %d feedback samples", report.Synthesized, report.FeedbackCount)
	}
	// The RCS must not contain synthetic samples.
	if len(adv.RCS()) != len(samples) {
		t.Fatalf("RCS grew to %d", len(adv.RCS()))
	}
}

func TestIncrementalLearningNoAugmentation(t *testing.T) {
	samples := corpus(t, 24, 10)
	cfg := testConfig()
	cfg.Epochs = 6
	adv, _ := Train(samples, cfg)
	il := DefaultILConfig()
	il.Augment = false
	il.Epochs = 2
	report := adv.IncrementalLearn(il)
	if report.Synthesized != 0 {
		t.Fatalf("augmentation disabled but synthesized %d", report.Synthesized)
	}
}

func TestDriftDetection(t *testing.T) {
	samples := corpus(t, 25, 11)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	thr := adv.DriftThreshold()
	if thr <= 0 {
		t.Fatalf("drift threshold %g", thr)
	}
	// A training graph is never drift.
	if adv.DetectDrift(samples[0].Graph) {
		t.Fatal("training sample flagged as drift")
	}
	// A wildly out-of-range graph is drift.
	far := samples[0].Graph.Clone()
	for i := range far.V {
		for f := range far.V[i] {
			far.V[i][f] = 50
		}
	}
	if !adv.DetectDrift(far) {
		t.Fatal("far-away graph not flagged as drift")
	}
}

func TestOnlineAdaptAddsToRCS(t *testing.T) {
	samples := corpus(t, 20, 12)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	extra := corpus(t, 1, 13)[0]
	adv.OnlineAdapt(extra, 2)
	if len(adv.RCS()) != 21 {
		t.Fatalf("RCS size %d after online adapt", len(adv.RCS()))
	}
	// The adapted sample is now its own nearest neighbor.
	rec := adv.RecommendK(extra.Graph, 1.0, 1)
	if adv.RCS()[rec.Neighbors[0]].Name != extra.Name {
		t.Fatal("adapted sample not retrievable as nearest neighbor")
	}
}

func TestBetaSampleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var sum float64
	for i := 0; i < 2000; i++ {
		l := betaSample(rng, 2, 2)
		if l < 0 || l > 1 {
			t.Fatalf("beta sample %g outside [0,1]", l)
		}
		sum += l
	}
	if mean := sum / 2000; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("Beta(2,2) mean %g, want ~0.5", mean)
	}
	// Asymmetric shapes shift the mean.
	var sumA float64
	for i := 0; i < 2000; i++ {
		sumA += betaSample(rng, 4, 1)
	}
	if mean := sumA / 2000; mean < 0.7 {
		t.Fatalf("Beta(4,1) mean %g, want ~0.8", mean)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, testConfig()); err == nil {
		t.Fatal("empty corpus accepted")
	}
	samples := corpus(t, 3, 15)
	samples[1].Sa = samples[1].Sa[:1]
	if _, err := Train(samples, testConfig()); err == nil {
		t.Fatal("inconsistent labels accepted")
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
