package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ann"
	"repro/internal/feature"
)

// annConfig is testConfig with the index forced on regardless of corpus
// size, so the indexed serving path is exercised on test-sized corpora.
func annConfig() Config {
	cfg := testConfig()
	cfg.ANN.MinIndexSize = 1
	return cfg
}

// TestExactPathUnchangedBelowMinIndexSize pins the MinIndexSize policy:
// a corpus below the threshold never builds an index, and its
// recommendations are bit-identical to an advisor with indexing disabled
// outright — the pre-index serving behavior.
func TestExactPathUnchangedBelowMinIndexSize(t *testing.T) {
	samples := corpus(t, 20, 61)
	defCfg := testConfig() // ANN zero value: MinIndexSize resolves to 4096
	adv, err := Train(samples, defCfg)
	if err != nil {
		t.Fatal(err)
	}
	offCfg := testConfig()
	offCfg.ANN.MinIndexSize = -1 // indexing disabled entirely
	off, err := Train(samples, offCfg)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Serving().Indexed() {
		t.Fatal("corpus below MinIndexSize built an index")
	}
	for i, s := range samples {
		for _, wa := range []float64{0, 0.5, 0.9, 1} {
			a := adv.RecommendK(s.Graph, wa, 4)
			b := off.RecommendK(s.Graph, wa, 4)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("sample %d wa=%v: default %+v != disabled %+v", i, wa, a, b)
			}
		}
	}
}

// TestIndexedServingRecall forces the index on a trained advisor and
// requires the indexed neighbor lookup to agree with the exact scan on
// the vast majority of self-queries. Everything is seeded, so the result
// is deterministic.
func TestIndexedServingRecall(t *testing.T) {
	samples := corpus(t, 40, 62)
	adv, err := Train(samples, annConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := adv.Serving()
	if !snap.Indexed() {
		t.Fatal("forced index was not built")
	}
	const k = 4
	hits, total := 0, 0
	for i := range samples {
		x := snap.Embed(samples[i].Graph)
		got := snap.nearest(x, k, nil)
		want := nearestIndexes(snap.emb, x, k, nil)
		inWant := map[int]bool{}
		for _, w := range want {
			inWant[w] = true
		}
		for _, g := range got {
			if g < 0 || g >= snap.NumSamples() {
				t.Fatalf("sample %d: neighbor %d out of range", i, g)
			}
			if inWant[g] {
				hits++
			}
		}
		total += len(want)
	}
	if recall := float64(hits) / float64(total); recall < 0.8 {
		t.Fatalf("indexed recall %.3f over %d self-queries, want >= 0.8", recall, len(samples))
	}
}

// TestSnapshotAccessorsReturnCopies is the mutation regression test for
// the read accessors: scribbling on what RCS and Embeddings return must
// not perturb the serving snapshot.
func TestSnapshotAccessorsReturnCopies(t *testing.T) {
	samples := corpus(t, 14, 63)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := adv.Serving()
	before := snap.Recommend(samples[2].Graph, 0.9)

	rcs := snap.RCS()
	for i := range rcs {
		rcs[i] = nil
	}
	emb := snap.Embeddings()
	for i := range emb {
		for f := range emb[i] {
			emb[i][f] = math.Inf(1)
		}
	}
	ea := snap.EmbeddingAt(0)
	for f := range ea {
		ea[f] = math.NaN()
	}

	if snap.SampleAt(2) == nil || snap.SampleAt(2).Name != samples[2].Name {
		t.Fatal("scribbling on RCS() result reached the snapshot")
	}
	after := snap.Recommend(samples[2].Graph, 0.9)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recommendation changed after scribbling: %+v -> %+v", before, after)
	}
}

// TestIndexLifecycleAcrossOnlineAdapt pins the append/rebuild policy:
// online adaptation extends the carried index (appended counter grows)
// until the appended share exceeds RebuildFraction, at which point the
// next publish rebuilds from scratch and the counter resets.
func TestIndexLifecycleAcrossOnlineAdapt(t *testing.T) {
	samples := corpus(t, 32, 64)
	adv, err := Train(samples, annConfig())
	if err != nil {
		t.Fatal(err)
	}
	s0 := adv.Serving()
	if !s0.Indexed() || s0.index.Appended() != 0 {
		t.Fatalf("fresh index: indexed=%v appended=%d", s0.Indexed(), s0.index.Appended())
	}

	extra := corpus(t, 1, 65)[0]
	adv.OnlineAdapt(extra, 1)
	s1 := adv.Serving()
	if !s1.Indexed() {
		t.Fatal("index dropped after OnlineAdapt")
	}
	if s1.index.Appended() != 1 {
		t.Fatalf("after one adapt: appended=%d, want 1 (carried + extended)", s1.index.Appended())
	}
	if s0.index.Appended() != 0 || s0.index.Size() != len(samples) {
		t.Fatal("Extend mutated the previous snapshot's index")
	}

	// Keep adapting; the appended share must cross RebuildFraction (0.25)
	// and trigger a rebuild within the next dozen publishes.
	rebuilt := false
	for i := 0; i < 14; i++ {
		adv.OnlineAdapt(corpus(t, 1, int64(70+i))[0], 1)
		s := adv.Serving()
		if !s.Indexed() {
			t.Fatalf("adapt %d: index dropped", i)
		}
		if s.index.Appended() == 0 {
			rebuilt = true
			break
		}
		if s.index.StaleFraction() > 0.25 {
			t.Fatalf("adapt %d: staleness %.3f exceeds RebuildFraction without rebuild",
				i, s.index.StaleFraction())
		}
	}
	if !rebuilt {
		t.Fatal("index never rebuilt despite appended share crossing RebuildFraction")
	}
	if got, want := adv.Serving().index.Size(), adv.Serving().NumSamples(); got != want {
		t.Fatalf("final index covers %d of %d samples", got, want)
	}
}

// TestSaveLoadReusesPersistedIndex pins artifact persistence: the loaded
// advisor must serve the persisted index (detectable by its surviving
// appended counter — a rebuild would reset it) and recommend identically
// to the advisor that was saved.
func TestSaveLoadReusesPersistedIndex(t *testing.T) {
	samples := corpus(t, 32, 66)
	adv, err := Train(samples, annConfig())
	if err != nil {
		t.Fatal(err)
	}
	adv.OnlineAdapt(corpus(t, 1, 67)[0], 1)
	if got := adv.Serving().index.Appended(); got != 1 {
		t.Fatalf("pre-save appended=%d, want 1", got)
	}

	var buf bytes.Buffer
	if err := adv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ls := loaded.Serving()
	if !ls.Indexed() {
		t.Fatal("loaded advisor is not indexed")
	}
	if got := ls.index.Appended(); got != 1 {
		t.Fatalf("loaded appended=%d, want 1 (persisted index was rebuilt, not reused)", got)
	}
	for i, s := range samples {
		a := adv.RecommendK(s.Graph, 0.9, 4)
		b := loaded.RecommendK(s.Graph, 0.9, 4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sample %d: saved %+v != loaded %+v", i, a, b)
		}
	}

	// A corrupted index blob must fail the load loudly, not fall back to
	// a silent rebuild.
	var buf2 bytes.Buffer
	if err := adv.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	raw := buf2.Bytes()
	// Flip a byte inside the embedded ANN envelope (locate it by magic).
	at := bytes.Index(raw, []byte("autoce-ann-v1\n"))
	if at < 0 {
		t.Fatal("ANN envelope not found in artifact")
	}
	raw[at+len("autoce-ann-v1\n")+6] ^= 0x20
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted ANN index loaded silently")
	}
}

// TestNearestReferenceMatchesLegacyScan pins the collapsed Step-2 loop
// of IncrementalLearn against a direct transcription of the historical
// two-pass scan, over randomized feedback/reference splits.
func TestNearestReferenceMatchesLegacyScan(t *testing.T) {
	samples := corpus(t, 30, 68)
	adv, err := Train(samples, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	legacy := func(fi int, reference []int) int {
		best, bestD := -1, math.Inf(1)
		n := adv.rcs[fi].Graph.NumVertices()
		for _, ri := range reference {
			if adv.rcs[ri].Graph.NumVertices() != n {
				continue
			}
			if d := euclid(adv.emb[fi], adv.emb[ri]); d < bestD {
				best, bestD = ri, d
			}
		}
		if best == -1 {
			for _, ri := range reference {
				if d := euclid(adv.emb[fi], adv.emb[ri]); d < bestD {
					best, bestD = ri, d
				}
			}
		}
		return best
	}
	rng := rand.New(rand.NewSource(69))
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(len(samples))
		cut := 1 + rng.Intn(len(samples)-1)
		reference := perm[:cut]
		fi := perm[cut:][rng.Intn(len(samples)-cut)]
		refSet := make(map[int]bool, len(reference))
		for _, ri := range reference {
			refSet[ri] = true
		}
		got := adv.nearestReference(nil, refSet, fi, reference)
		want := legacy(fi, reference)
		if got != want {
			t.Fatalf("trial %d fi=%d: collapsed %d != legacy %d", trial, fi, got, want)
		}
	}
}

// TestIncrementalLearnIndexed runs the full incremental pass on an
// indexed advisor: the augmented pool must be well formed and the
// republished snapshot must still be indexed and cover the RCS.
func TestIncrementalLearnIndexed(t *testing.T) {
	samples := corpus(t, 25, 71)
	adv, err := Train(samples, annConfig())
	if err != nil {
		t.Fatal(err)
	}
	il := DefaultILConfig()
	il.Epochs = 1
	report := adv.IncrementalLearn(il)
	if report.FeedbackCount+report.ReferenceCount == 0 {
		t.Fatal("discriminator classified nothing")
	}
	s := adv.Serving()
	if !s.Indexed() {
		t.Fatal("snapshot lost its index across IncrementalLearn")
	}
	if s.index.Size() != s.NumSamples() {
		t.Fatalf("index covers %d of %d samples", s.index.Size(), s.NumSamples())
	}
}

// TestConcurrentIndexedServing is the -race hammer for the indexed
// serving path: RecommendBatch and drift detection from several
// goroutines race against IncrementalLearn and OnlineAdapt republishing
// extended or rebuilt indexes underneath them.
func TestConcurrentIndexedServing(t *testing.T) {
	samples := corpus(t, 24, 72)
	cfg := annConfig()
	cfg.Epochs = 4
	adv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Serving().Indexed() {
		t.Fatal("advisor is not indexed")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gs := []*feature.Graph{samples[w].Graph, samples[w+4].Graph}
			for i := 0; !stop.Load(); i++ {
				s := adv.Serving()
				for _, rec := range s.RecommendBatch(gs, 0.9) {
					if rec.Model < 0 {
						errs <- "batch recommendation without a model"
						return
					}
					for _, ni := range rec.Neighbors {
						if ni < 0 || ni >= s.NumSamples() {
							errs <- "neighbor index beyond snapshot RCS"
							return
						}
					}
				}
				if i%5 == 0 {
					s.DetectDrift(gs[0])
				}
			}
		}(w)
	}

	il := DefaultILConfig()
	il.Epochs = 1
	adv.IncrementalLearn(il)
	for i := 0; i < 3; i++ {
		adv.OnlineAdapt(corpus(t, 1, int64(80+i))[0], 1)
	}

	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if !adv.Serving().Indexed() {
		t.Fatal("advisor lost its index under concurrent mutation")
	}
}

// TestConfigANNParamsRespected pins that explicit ANN parameters reach
// the built index. The bisecting quantizer treats Nlist as a lower-bound
// target (it splits until every leaf is at most n/Nlist), so the cell
// count may exceed it but never fall below.
func TestConfigANNParamsRespected(t *testing.T) {
	samples := corpus(t, 30, 73)
	cfg := testConfig()
	cfg.ANN = ann.Params{MinIndexSize: 1, Nlist: 5, Nprobe: 2}
	adv, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := adv.Serving()
	if !s.Indexed() {
		t.Fatal("index not built")
	}
	if s.index.Nlist() < 5 || s.index.Nprobe() != 2 {
		t.Fatalf("index has nlist=%d nprobe=%d, want >=5 and 2", s.index.Nlist(), s.index.Nprobe())
	}
}
