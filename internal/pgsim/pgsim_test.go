package pgsim

import (
	"math"
	"repro/internal/ce"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

func fixture(t *testing.T, tables int, seed int64) (*dataset.Dataset, []*workload.Query) {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 100, MaxRows: 200,
		Domain: 25,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 0.6,
		JoinLo: 0.4, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("pg", p)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.Generate(d, workload.DefaultConfig(20, seed+1))
	return d, qs
}

// badEstimator inverts reality: tiny results look huge and vice versa.
type badEstimator struct{ d *dataset.Dataset }

func (b *badEstimator) Name() string { return "Bad" }

func (b *badEstimator) EstimateBatch(qs []*workload.Query) []float64 {
	return ce.SerialEstimates(b, qs)
}
func (b *badEstimator) Estimate(q *workload.Query) float64 {
	oracle := Oracle{D: b.d}
	truth := oracle.Estimate(q)
	return math.Max(1, 1e6/truth)
}

func TestPlanCoversAllTables(t *testing.T) {
	d, qs := fixture(t, 4, 1)
	opt := New(d, &Oracle{D: d})
	for _, q := range qs {
		plan, _ := opt.Plan(q)
		if len(plan.Order) != len(q.Tables) {
			t.Fatalf("plan covers %d of %d tables", len(plan.Order), len(q.Tables))
		}
		seen := map[int]bool{}
		for _, ti := range plan.Order {
			if seen[ti] {
				t.Fatal("table appears twice in the plan")
			}
			seen[ti] = true
		}
		if len(plan.Order) > 1 && len(plan.Joins) != len(plan.Order)-1 {
			t.Fatalf("plan has %d joins for %d tables", len(plan.Joins), len(plan.Order))
		}
	}
}

func TestOracleBeatsAdversarialEstimates(t *testing.T) {
	d, qs := fixture(t, 4, 2)
	good := New(d, &Oracle{D: d})
	bad := New(d, &badEstimator{d: d})
	var goodCost, badCost float64
	for _, q := range qs {
		gp, _ := good.Plan(q)
		bp, _ := bad.Plan(q)
		goodCost += good.TrueCost(q, gp)
		badCost += bad.TrueCost(q, bp)
	}
	if goodCost > badCost {
		t.Fatalf("oracle plans cost %g, adversarial plans cost %g", goodCost, badCost)
	}
}

func TestSingleTablePlan(t *testing.T) {
	d, _ := fixture(t, 1, 3)
	opt := New(d, &Oracle{D: d})
	// A highly selective predicate should pick an index scan; an
	// unfiltered query must seq-scan.
	lo, hi := d.Tables[0].Col(0).MinMax()
	narrow := &workload.Query{}
	narrow.Tables = []int{0}
	narrow.Preds = append(narrow.Preds, engine.Predicate{Table: 0, Col: 0, Lo: lo, Hi: lo})
	plan, _ := opt.Plan(narrow)
	if plan.Scans[0] != IndexScan {
		// Only assert when the true result is tiny relative to the table.
		oracle := Oracle{D: d}
		if oracle.Estimate(narrow)*10 < float64(d.Tables[0].Rows()) {
			t.Fatalf("selective predicate did not pick an index scan (card %g of %d rows)",
				oracle.Estimate(narrow), d.Tables[0].Rows())
		}
	}
	wide := &workload.Query{}
	wide.Tables = []int{0}
	wide.Preds = append(wide.Preds, engine.Predicate{Table: 0, Col: 0, Lo: lo, Hi: hi})
	plan2, _ := opt.Plan(wide)
	if plan2.Scans[0] != SeqScan {
		t.Fatal("full-range predicate should seq-scan")
	}
}

func TestRunProducesPositiveTimes(t *testing.T) {
	d, qs := fixture(t, 3, 4)
	opt := New(d, &Oracle{D: d})
	for _, q := range qs[:5] {
		res := opt.Run(q)
		if res.ExecTime <= 0 {
			t.Fatalf("non-positive exec time %v", res.ExecTime)
		}
		if res.InferTime < 0 {
			t.Fatal("negative infer time")
		}
	}
}

func TestOracleEstimateExact(t *testing.T) {
	d, qs := fixture(t, 2, 5)
	o := &Oracle{D: d}
	for _, q := range qs {
		est := o.Estimate(q)
		want := float64(q.TrueCard)
		if want < 1 {
			want = 1
		}
		if est != want {
			t.Fatalf("oracle estimate %g, true %d", est, q.TrueCard)
		}
	}
}

func TestSubQueryRestriction(t *testing.T) {
	_, qs := fixture(t, 4, 6)
	for _, q := range qs {
		if len(q.Tables) < 2 {
			continue
		}
		sub := subQuery(q, q.Tables[:1])
		if len(sub.Tables) != 1 {
			t.Fatal("subquery table count")
		}
		for _, j := range sub.Joins {
			t.Fatalf("single-table subquery retains join %+v", j)
		}
		for _, p := range sub.Preds {
			if p.Table != q.Tables[0] {
				t.Fatal("subquery retains foreign predicate")
			}
		}
	}
}
