// Package pgsim simulates a PostgreSQL-style cost-based query optimizer so
// the paper's end-to-end experiment (Table V) can run without a live
// database. Estimated cardinalities from a CE model are *injected* into
// planning — exactly the protocol of the paper, which patches PostgreSQL
// to read cardinalities of all sub-plan queries from the model — and the
// chosen plan is then "executed" by costing it with true cardinalities
// from the execution engine.
//
// The simulator reproduces the two effects Table V hinges on:
//
//   - single-table workloads: estimates mainly pick the scan operator, so
//     a model's inference latency dominates its end-to-end impact;
//   - multi-table workloads: estimates drive join ordering and operator
//     choice, so accuracy dominates and bad estimates cause bad orders.
package pgsim

import (
	"math"
	"sort"
	"time"

	"repro/internal/ce"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Cost-model constants, in abstract cost units (roughly: one unit = one
// sequential tuple access).
const (
	seqTupleCost    = 1.0
	idxTupleCost    = 4.0  // random-access penalty
	idxLookupCost   = 12.0 // B-tree descent
	hashBuildCost   = 1.5
	hashProbeCost   = 1.0
	nljInnerCost    = 2.0
	outputTupleCost = 0.1
)

// CostUnitTime converts abstract cost units into simulated wall-clock time.
const CostUnitTime = 2 * time.Microsecond

// ScanKind names the access path of a base table.
type ScanKind int

// Scan kinds.
const (
	SeqScan ScanKind = iota
	IndexScan
)

// JoinKind names the physical join operator.
type JoinKind int

// Join kinds.
const (
	HashJoin JoinKind = iota
	NestedLoopJoin
)

// Plan is a left-deep join plan over the query's tables.
type Plan struct {
	// Order is the join order (table indexes); Order[0] is the driving
	// table.
	Order []int
	// Scans[t] is the access path of table t.
	Scans map[int]ScanKind
	// Joins[i] is the operator joining Order[i] into the prefix
	// (len = len(Order)-1).
	Joins []JoinKind
	// EstimatedCost is the optimizer's estimate for the whole plan.
	EstimatedCost float64
}

// Optimizer plans queries over one dataset using an injected estimator.
type Optimizer struct {
	d   *dataset.Dataset
	est ce.Estimator
}

// New returns an optimizer that plans with est's cardinalities.
func New(d *dataset.Dataset, est ce.Estimator) *Optimizer {
	return &Optimizer{d: d, est: est}
}

// subQuery builds the sub-plan query over a table subset: the joins and
// predicates of q restricted to those tables.
func subQuery(q *workload.Query, tables []int) *workload.Query {
	in := map[int]bool{}
	for _, t := range tables {
		in[t] = true
	}
	sq := &workload.Query{Query: engine.Query{Tables: append([]int(nil), tables...)}}
	for _, j := range q.Joins {
		if in[j.LeftTable] && in[j.RightTable] {
			sq.Joins = append(sq.Joins, j)
		}
	}
	for _, p := range q.Preds {
		if in[p.Table] {
			sq.Preds = append(sq.Preds, p)
		}
	}
	return sq
}

// Plan chooses the cheapest left-deep plan under the estimator's
// cardinalities. It returns the plan and the wall-clock time spent calling
// the estimator (the model's inference latency for this query, covering
// all sub-plan estimates, as in the paper's protocol).
func (o *Optimizer) Plan(q *workload.Query) (*Plan, time.Duration) {
	var inferTime time.Duration
	cardCache := map[string]float64{}
	estimate := func(tables []int) float64 {
		key := ce.SubsetKey(tables)
		if v, ok := cardCache[key]; ok {
			return v
		}
		t0 := time.Now()
		v := o.est.Estimate(subQuery(q, tables))
		inferTime += time.Since(t0)
		cardCache[key] = v
		return v
	}

	// Base-table scan choice: an index scan wins when the estimated
	// selectivity is low and the predicate column is "indexed" (we treat
	// every predicated column as indexable, like a freshly tuned system).
	scans := map[int]ScanKind{}
	scanCost := map[int]float64{}
	outRows := map[int]float64{}
	for _, ti := range q.Tables {
		rows := float64(o.d.Tables[ti].Rows())
		estOut := estimate([]int{ti})
		seq := rows * seqTupleCost
		idx := idxLookupCost + estOut*idxTupleCost
		hasPred := false
		for _, p := range q.Preds {
			if p.Table == ti {
				hasPred = true
				break
			}
		}
		if hasPred && idx < seq {
			scans[ti] = IndexScan
			scanCost[ti] = idx
		} else {
			scans[ti] = SeqScan
			scanCost[ti] = seq
		}
		outRows[ti] = estOut
	}
	if len(q.Tables) == 1 {
		ti := q.Tables[0]
		return &Plan{
			Order:         []int{ti},
			Scans:         scans,
			EstimatedCost: scanCost[ti] + outRows[ti]*outputTupleCost,
		}, inferTime
	}

	// Greedy-exhaustive left-deep DP: state = joined subset.
	type state struct {
		order []int
		joins []JoinKind
		cost  float64
		rows  float64
	}
	best := map[string]*state{}
	for _, ti := range q.Tables {
		best[ce.SubsetKey([]int{ti})] = &state{
			order: []int{ti},
			cost:  scanCost[ti],
			rows:  outRows[ti],
		}
	}
	adjacent := func(sub []int, t int) bool {
		for _, j := range q.Joins {
			if j.LeftTable == t && inInts(sub, j.RightTable) {
				return true
			}
			if j.RightTable == t && inInts(sub, j.LeftTable) {
				return true
			}
		}
		return false
	}
	for size := 2; size <= len(q.Tables); size++ {
		next := map[string]*state{}
		for _, st := range best {
			if len(st.order) != size-1 {
				continue
			}
			for _, t := range q.Tables {
				if inInts(st.order, t) || !adjacent(st.order, t) {
					continue
				}
				newSet := append(append([]int(nil), st.order...), t)
				outEst := estimate(newSet)
				inner := outRows[t]
				// Operator choice by estimated cost.
				hash := inner*hashBuildCost + st.rows*hashProbeCost + scanCost[t]
				nlj := st.rows * (idxLookupCost + nljInnerCost)
				kind := HashJoin
				joinCost := hash
				if nlj < hash {
					kind = NestedLoopJoin
					joinCost = nlj
				}
				total := st.cost + joinCost + outEst*outputTupleCost
				key := ce.SubsetKey(newSet)
				if prev, ok := next[key]; !ok || total < prev.cost {
					next[key] = &state{
						order: newSet,
						joins: append(append([]JoinKind(nil), st.joins...), kind),
						cost:  total,
						rows:  outEst,
					}
				}
			}
		}
		for k, v := range next {
			if prev, ok := best[k]; !ok || v.cost < prev.cost {
				best[k] = v
			}
		}
	}
	final := best[ce.SubsetKey(q.Tables)]
	if final == nil {
		// Disconnected query; fall back to table order as given.
		order := append([]int(nil), q.Tables...)
		sort.Ints(order)
		joins := make([]JoinKind, len(order)-1)
		return &Plan{Order: order, Scans: scans, Joins: joins, EstimatedCost: math.Inf(1)}, inferTime
	}
	return &Plan{
		Order:         final.order,
		Scans:         scans,
		Joins:         final.joins,
		EstimatedCost: final.cost,
	}, inferTime
}

// TrueCost costs a plan with true cardinalities from the engine — the
// simulated execution time driver. Bad join orders surface here as large
// true intermediate results that the optimizer did not anticipate.
func (o *Optimizer) TrueCost(q *workload.Query, p *Plan) float64 {
	trueCard := func(tables []int) float64 {
		return float64(engine.Cardinality(o.d, &subQuery(q, tables).Query))
	}
	ti := p.Order[0]
	rows := float64(o.d.Tables[ti].Rows())
	outPrev := trueCard([]int{ti})
	var cost float64
	if p.Scans[ti] == IndexScan {
		cost = idxLookupCost + outPrev*idxTupleCost
	} else {
		cost = rows * seqTupleCost
	}
	for i := 1; i < len(p.Order); i++ {
		t := p.Order[i]
		innerRows := trueCard([]int{t})
		var scan float64
		if p.Scans[t] == IndexScan {
			scan = idxLookupCost + innerRows*idxTupleCost
		} else {
			scan = float64(o.d.Tables[t].Rows()) * seqTupleCost
		}
		out := trueCard(p.Order[:i+1])
		switch p.Joins[i-1] {
		case HashJoin:
			cost += innerRows*hashBuildCost + outPrev*hashProbeCost + scan
		case NestedLoopJoin:
			cost += outPrev * (idxLookupCost + nljInnerCost)
		}
		cost += out * outputTupleCost
		outPrev = out
	}
	return cost
}

// Result is the simulated end-to-end outcome for one query.
type Result struct {
	Plan      *Plan
	ExecTime  time.Duration // simulated execution (true-cost) time
	InferTime time.Duration // measured estimator time over sub-plans
}

// Run plans and "executes" one query.
func (o *Optimizer) Run(q *workload.Query) Result {
	plan, infer := o.Plan(q)
	cost := o.TrueCost(q, plan)
	return Result{
		Plan:      plan,
		ExecTime:  time.Duration(cost * float64(CostUnitTime)),
		InferTime: infer,
	}
}

// Oracle is a true-cardinality estimator (the paper's TrueCard row in
// Table V): it answers every sub-plan query exactly via the engine.
type Oracle struct {
	D *dataset.Dataset
}

// Name implements ce.Estimator.
func (o *Oracle) Name() string { return "TrueCard" }

// Estimate implements ce.Estimator exactly.
func (o *Oracle) Estimate(q *workload.Query) float64 {
	c := engine.Cardinality(o.D, &q.Query)
	if c < 1 {
		return 1
	}
	return float64(c)
}

// EstimateBatch implements ce.Estimator through the engine's batched
// oracle (shared join index, one evaluator per worker).
func (o *Oracle) EstimateBatch(qs []*workload.Query) []float64 {
	eqs := make([]*engine.Query, len(qs))
	for i, q := range qs {
		eqs[i] = &q.Query
	}
	cards := engine.CardinalityBatch(o.D, eqs)
	out := make([]float64, len(qs))
	for i, c := range cards {
		if c < 1 {
			c = 1
		}
		out[i] = float64(c)
	}
	return out
}

func inInts(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
