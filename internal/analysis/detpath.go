package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detpath: determinism-critical packages must stay replayable. Corpus
// labels are pinned byte-identical across serial and parallel runs, gob
// round trips are pinned bit-exact, and the nn/gnn tapes replay training
// step for step — all of which dies the moment wall-clock time, the
// global math/rand stream, or map iteration order leaks into a computed
// value. The rule forbids, inside the scoped packages:
//
//   - time.Now (wall-clock reads). Latency measurement that feeds a
//     reported metric by design is the suppression case — say so.
//   - package-level math/rand and math/rand/v2 draws (rand.Int,
//     rand.Float64, rand.Shuffle, ...): the global stream is shared
//     mutable state seeded per process. Constructing seeded generators
//     (rand.New, rand.NewSource, rand.NewPCG, ...) is fine.
//   - ranging over a map where the iteration feeds computation or output
//     order: the body appends to a slice (unless that slice is sorted
//     afterwards in the same function — the collect-and-sort idiom),
//     accumulates floats, or passes the iteration variables to calls.
//     Counting, set construction, and other order-insensitive bodies are
//     not flagged.
var detpathScope = []string{
	"internal/nn",
	"internal/gnn",
	"internal/ce",
	"internal/experiments",
	"internal/testbed",
	"internal/ann",
	"internal/core",
}

func init() {
	register(&Rule{
		Name: "detpath",
		Doc:  "determinism-critical packages must not read wall-clock time, global rand, or map order",
		Run:  runDetPath,
	})
}

// inDetScope reports whether the pass's package is determinism-critical:
// its module-relative path equals a scope entry or lives beneath one.
func inDetScope(pass *Pass) bool {
	rel := pass.Module.relPath(pass.Pkg.Path)
	for _, s := range detpathScope {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

func runDetPath(pass *Pass) []Finding {
	if !inDetScope(pass) {
		return nil
	}
	var out []Finding
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleePkgFunc(info, call); fn != nil {
				pkgPath := fn.Pkg().Path()
				switch {
				case pkgPath == "time" && fn.Name() == "Now":
					out = append(out, pass.finding(n.Pos(), "detpath",
						"time.Now in a determinism-critical package; labels and tapes must be byte-identical across runs"))
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") &&
					!strings.HasPrefix(fn.Name(), "New"):
					out = append(out, pass.finding(n.Pos(), "detpath",
						"global %s.%s draws from the shared process-wide stream; use a seeded *rand.Rand",
						pathBase(pkgPath), fn.Name()))
				}
			}
			return true
		})
		// Map-range order checks run per function scope (closures
		// included — corpus pipelines fan work through func literals).
		for _, body := range funcScopes(f) {
			out = append(out, checkMapRanges(pass, body)...)
		}
	}
	return out
}

// calleePkgFunc resolves a call to a package-level function object
// (pkg.F form), or nil.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Only package-qualified calls: the X must be a package name.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	return fn
}

// checkMapRanges flags map iterations whose order feeds computation.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) []Finding {
	info := pass.Pkg.Info
	var out []Finding
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if reason := mapOrderSensitivity(pass, body, rng); reason != "" {
			out = append(out, pass.finding(rng.Pos(), "detpath",
				"map iteration order feeds %s; collect the keys, sort them, and iterate the sorted slice", reason))
		}
		return true
	})
	return out
}

// mapOrderSensitivity classifies a map-range body: the returned string
// names what the iteration order leaks into ("" = order-insensitive).
func mapOrderSensitivity(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) string {
	info := pass.Pkg.Info
	iterObjs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				iterObjs[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				iterObjs[obj] = true
			}
		}
	}
	reason := ""
	inspectShallow(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Compound float accumulation: x += f(...) reorders float
			// rounding; integer accumulation commutes exactly and passes.
			if n.Tok.String() == "+=" || n.Tok.String() == "-=" || n.Tok.String() == "*=" || n.Tok.String() == "/=" {
				if tv, ok := info.Types[n.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						reason = "float accumulation (rounding is order-dependent)"
						return false
					}
				}
			}
			// append into a slice that is not sorted later in the function.
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") {
					if target, ok := n.Lhs[0].(*ast.Ident); ok {
						obj := objectOf(info, target)
						if obj != nil && !sortedLater(pass, fnBody, rng, obj) {
							reason = "slice order via append"
							return false
						}
					}
				}
			}
		case *ast.CallExpr:
			// Passing the iteration key/value into a call does work in
			// iteration order (inference, accumulation behind an API).
			if isBuiltinCall(info, n, "append") || isBuiltinCall(info, n, "len") ||
				isBuiltinCall(info, n, "cap") || isBuiltinCall(info, n, "delete") {
				return true
			}
			for _, arg := range n.Args {
				used := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && iterObjs[objectOf(info, id)] {
						used = true
					}
					return !used
				})
				if used {
					reason = "calls made in iteration order"
					return false
				}
			}
		}
		return true
	})
	return reason
}

// sortedLater reports whether obj (a slice) is passed to a sort call
// after the range statement — the collect-and-sort idiom.
func sortedLater(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.Pkg.Info
	sorted := false
	inspectShallow(fnBody, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleePkgFunc(info, call)
		if fn == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && objectOf(info, id) == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
