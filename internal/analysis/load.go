package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	Path  string // import path ("repro/internal/ce")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the fully loaded and type-checked module under analysis.
type Module struct {
	Path string // module path from go.mod
	Root string // directory containing go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	accessors   map[accessorKey]string // lazy snapshot-accessor cache
	fpFacts     *failpointFacts        // lazy failpoint-registry cache
	fpFactsDone bool
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(importPath string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == importPath {
			return p
		}
	}
	return nil
}

// Load parses and type-checks every non-test package of the module rooted
// at (or above) dir, resolving stdlib imports from GOROOT source — no
// toolchain shellout, no external dependencies. Test files are excluded:
// the rules pin production invariants, and go vet already covers tests.
func Load(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}

	// Discover package directories (skip hidden, _-prefixed, testdata, and
	// vendor trees — the same set the go tool ignores).
	dirs := map[string]string{} // import path -> dir
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		pkgDir := filepath.Dir(p)
		rel, rerr := filepath.Rel(root, pkgDir)
		if rerr != nil {
			return rerr
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs[ip] = pkgDir
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Parse every package.
	parsed := map[string]*Package{}
	for ip, pkgDir := range dirs {
		ents, err := os.ReadDir(pkgDir)
		if err != nil {
			return nil, err
		}
		pkg := &Package{Path: ip, Dir: pkgDir}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(m.Fset, filepath.Join(pkgDir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", filepath.Join(pkgDir, name), err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Files) > 0 {
			parsed[ip] = pkg
		}
	}

	// Type-check in dependency order. Module-internal imports resolve to
	// our own checked packages; everything else comes from the GOROOT
	// source importer (cached across imports).
	std := importer.ForCompiler(m.Fset, "source", nil)
	checked := map[string]*types.Package{}
	checking := map[string]bool{}
	var check func(ip string) (*types.Package, error)
	check = func(ip string) (*types.Package, error) {
		if p, ok := checked[ip]; ok {
			return p, nil
		}
		if checking[ip] {
			return nil, fmt.Errorf("import cycle through %s", ip)
		}
		checking[ip] = true
		defer func() { checking[ip] = false }()
		pkg := parsed[ip]
		imp := importerFunc(func(path string) (*types.Package, error) {
			if _, ok := parsed[path]; ok {
				return check(path)
			}
			return std.Import(path)
		})
		conf := types.Config{Importer: imp}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		tp, err := conf.Check(ip, m.Fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", ip, err)
		}
		pkg.Types = tp
		checked[ip] = tp
		return tp, nil
	}

	var ips []string
	for ip := range parsed {
		ips = append(ips, ip)
	}
	sort.Strings(ips)
	for _, ip := range ips {
		if _, err := check(ip); err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, parsed[ip])
	}
	return m, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			mp := modulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}
