package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical "file:line: [rule] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Rule is one project-invariant analyzer. Run is called once per package
// and returns its findings (suppression filtering happens in the driver).
type Rule struct {
	Name string
	Doc  string
	Run  func(*Pass) []Finding
}

// Pass hands a rule one type-checked package plus the module-wide view
// for cross-package facts (snapshot accessors, the failpoint registry).
type Pass struct {
	Module *Module
	Pkg    *Package
}

// Position resolves a token.Pos against the module's FileSet.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Module.Fset.Position(pos)
}

// Findingf appends a finding at pos.
func (p *Pass) finding(pos token.Pos, rule, format string, args ...any) Finding {
	return Finding{Pos: p.Position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)}
}

var rules []*Rule

// register adds a rule to the suite; rule files call it from init.
func register(r *Rule) { rules = append(rules, r) }

// Rules returns the registered rule set sorted by name.
func Rules() []*Rule {
	out := make([]*Rule, len(rules))
	copy(out, rules)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RuleByName returns the named rule, or nil.
func RuleByName(name string) *Rule {
	for _, r := range rules {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// RunRules runs the given rules (nil = all registered) over every package
// in the module, drops suppressed findings, appends malformed-suppression
// findings, and returns the remainder sorted by position.
func RunRules(m *Module, rs []*Rule) []Finding {
	if rs == nil {
		rs = Rules()
	}
	var out []Finding
	for _, pkg := range m.Pkgs {
		pass := &Pass{Module: m, Pkg: pkg}
		sup := collectSuppressions(m.Fset, pkg)
		for _, r := range rs {
			for _, f := range r.Run(pass) {
				if !sup.covers(f) {
					out = append(out, f)
				}
			}
		}
		out = append(out, sup.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// ---------------------------------------------------------------- helpers

// funcScopes yields every function body in the file as an independent
// analysis scope: each FuncDecl, and each FuncLit (closures capture state
// but take snapshots on their own schedule, so they are scoped apart).
func funcScopes(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// inspectShallow walks n but does not descend into nested function
// literals — for per-function-scope analyses.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}

// exprKey renders a stable identity for a chain of selectors rooted at an
// identifier ("s.adv", "h.snap"). Expressions with calls, indexes, or
// other computation get no key (ok=false): two such loads may legitimately
// resolve different objects.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		base, ok := exprKey(e.X)
		return "*" + base, ok
	}
	return "", false
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isPkgType reports whether t (possibly behind pointers) is the named type
// pkgPath.name — e.g. ("sync/atomic", "Pointer").
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// relPath strips the module path prefix from an import path ("repro/internal/nn"
// -> "internal/nn"); the module root package maps to ".".
func (m *Module) relPath(importPath string) string {
	if importPath == m.Path {
		return "."
	}
	return strings.TrimPrefix(importPath, m.Path+"/")
}
