// Package use exercises the failpointlit call-site checks: constant and
// documented (clean), undocumented, non-constant, and duplicated names.
package use

import "vetsample/resilience"

func Good() error { return resilience.Failpoint("good.site") }

func Undocumented() error {
	return resilience.Failpoint("rogue.site") // want "not in resilience.FailpointSites"
}

func NonConstant(name string) error {
	return resilience.Failpoint(name) // want "must be a constant string literal"
}

func DupFirst() error { return resilience.Failpoint("dup.site") }

func DupSecond() error {
	return resilience.Failpoint("dup.site") // want "already compiled in"
}

func Suppressed(name string) error {
	//autoce:ignore failpointlit -- fixture: dynamic name validated upstream
	return resilience.Failpoint(name)
}
