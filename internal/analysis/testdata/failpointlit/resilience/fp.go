// Package resilience mirrors the real failpoint surface: a Failpoint hook
// plus the documented FailpointSites registry the rule cross-checks.
package resilience

// FailpointSites is the documented site list.
var FailpointSites = []string{
	"dup.site",
	"good.site",
	"stale.site", // want "no call site"
}

// Failpoint is the injection hook.
func Failpoint(name string) error {
	_ = name
	return nil
}
