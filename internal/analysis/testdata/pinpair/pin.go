// Package pin seeds the pinpair golden cases around the model-cache
// convention: a method named acquire pins, a method named release unpins,
// and `if err != nil { return }` directly after the acquire is the exempt
// unpinned failure branch.
package pin

import "errors"

type handle struct{}

type cache struct{}

func (c *cache) acquire(name string) (*handle, error) { return &handle{}, nil }
func (c *cache) release(h *handle)                    {}

var errBoom = errors.New("boom")

// deferIdiom is the shape every real call site uses: always clean.
func deferIdiom(c *cache) error {
	h, err := c.acquire("m")
	if err != nil {
		return err
	}
	defer c.release(h)
	return nil
}

// leakReturn skips release on an unrelated early return.
func leakReturn(c *cache, bad bool) error {
	h, err := c.acquire("m")
	if err != nil {
		return err
	}
	if bad {
		return errBoom // want "return path leaks the acquired handle"
	}
	c.release(h)
	return nil
}

// leakFallthrough never releases at all.
func leakFallthrough(c *cache) {
	c.acquire("m") // want "never released on the fall-through path"
}

// halfReleased releases in only one arm of a branch, so the fall-through
// path after the if may still hold the pin. Reported at the acquire.
func halfReleased(c *cache, b bool) {
	h, err := c.acquire("m") // want "never released on the fall-through path"
	if err != nil {
		return
	}
	if b {
		c.release(h)
	}
}

// doubleAcquire stacks a second pin on an unreleased first one.
func doubleAcquire(c *cache) {
	h1, _ := c.acquire("a")
	h2, _ := c.acquire("b") // want "second acquire"
	c.release(h1)
	c.release(h2)
}

// bothArmsRelease is clean: every non-terminating branch released.
func bothArmsRelease(c *cache, k int) {
	h, err := c.acquire("m")
	if err != nil {
		return
	}
	switch k {
	case 0:
		c.release(h)
	default:
		c.release(h)
	}
}

// deferredClosure releases inside a deferred literal: clean.
func deferredClosure(c *cache) {
	h, err := c.acquire("m")
	if err != nil {
		return
	}
	defer func() { c.release(h) }()
}

func suppressedLeak(c *cache) {
	//autoce:ignore pinpair -- fixture: the leak is this case's point
	c.acquire("m")
}
