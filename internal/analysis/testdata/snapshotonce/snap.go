// Package snap seeds the snapshotonce golden cases: double direct loads,
// double accessor calls, a mixed direct+accessor pair, the suppression
// syntax (well-formed and malformed), and clean shapes that must not fire.
package snap

import "sync/atomic"

type state struct{ n int }

// Holder publishes immutable state through an atomic.Pointer, like the
// advisor and the per-tenant handles.
type Holder struct {
	p atomic.Pointer[state]
}

// Serving is the accessor idiom — its body is exactly one Load of an
// atomic.Pointer field, so calls to it count as loads of that field.
func (h *Holder) Serving() *state { return h.p.Load() }

func doubleDirect(h *Holder) int {
	a := h.p.Load()
	b := h.p.Load() // want "loaded more than once"
	return a.n + b.n
}

func doubleAccessor(h *Holder) int {
	a := h.Serving()
	b := h.Serving() // want "loaded more than once"
	return a.n + b.n
}

// mixed proves the accessor resolves to the same snapshot identity as the
// direct load of the field it wraps.
func mixed(h *Holder) int {
	a := h.p.Load()
	b := h.Serving() // want "loaded more than once"
	return a.n + b.n
}

func suppressed(h *Holder) int {
	a := h.p.Load()
	//autoce:ignore snapshotonce -- fixture: deliberate re-load after a republish
	b := h.p.Load()
	return a.n + b.n
}

// distinctHolders loads two different snapshots once each: clean.
func distinctHolders(h, g *Holder) int {
	a := h.p.Load()
	b := g.p.Load()
	return a.n + b.n
}

// closureScope takes one snapshot per function scope: the literal is its
// own scope, so the pair is clean.
func closureScope(h *Holder) (int, func() int) {
	a := h.p.Load()
	f := func() int { return h.p.Load().n }
	return a.n, f
}

func missingReason(h *Holder) *state {
	//autoce:ignore snapshotonce // want "malformed suppression"
	return h.p.Load() // a single load: the rule itself stays quiet here
}

func unknownRule(h *Holder) *state {
	//autoce:ignore nosuchrule -- reason text // want "unknown rule"
	return h.p.Load()
}
