// Package nn sits inside the detpath scope (module-relative internal/nn):
// wall-clock reads, global rand draws, and order-sensitive map ranges must
// all fire here.
package nn

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func globalRand() float64 {
	return rand.Float64() // want "shared process-wide stream"
}

// seededRand constructs its own generator: clean.
func seededRand() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "slice order via append"
		out = append(out, k)
	}
	return out
}

// mapAppendSorted is the collect-and-sort idiom: clean.
func mapAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mapFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "float accumulation"
		sum += v
	}
	return sum
}

// mapIntCount commutes exactly: clean.
func mapIntCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func mapCalls(m map[string]int, sink func(string)) {
	for k := range m { // want "calls made in iteration order"
		sink(k)
	}
}

// closureRange proves map-range checks see function literals too.
func closureRange(m map[string]int) func() []string {
	return func() []string {
		var out []string
		for k := range m { // want "slice order via append"
			out = append(out, k)
		}
		return out
	}
}

func suppressedNow() int64 {
	//autoce:ignore detpath -- fixture: measured latency is the reported metric
	return time.Now().UnixNano()
}
