// Package other sits outside the determinism scope: the same wall-clock
// read that fires in internal/nn stays quiet here.
package other

import "time"

func WallClock() int64 { return time.Now().UnixNano() }
