// Package loop seeds the ctxloop golden cases: while-shaped loops in
// context-taking functions must consult the context.
package loop

import "context"

func leak(ctx context.Context, ch chan int) {
	for { // want "never checks the context"
		<-ch
	}
}

// selectChecked reads ctx.Done in a select: clean.
func selectChecked(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

// condChecked consults the context in the loop condition: clean.
func condChecked(ctx context.Context, ch chan int) {
	for ctx.Err() == nil {
		<-ch
	}
}

// bounded three-clause loops finish on their own: clean.
func bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// noCtx takes no context, so the contract does not apply.
func noCtx(ch chan int) {
	for {
		if <-ch == 0 {
			return
		}
	}
}

type worker struct{}

func (w *worker) Canceled() bool { return false }

// helperChecked uses the Canceled() helper convention: clean.
func helperChecked(ctx context.Context, w *worker, ch chan int) {
	for {
		if w.Canceled() {
			return
		}
		<-ch
	}
}

func suppressedLoop(ctx context.Context, ch chan int) {
	//autoce:ignore ctxloop -- fixture: lifetime bounded by channel close upstream
	for {
		if _, ok := <-ch; !ok {
			return
		}
	}
}

// closureLeak proves literals with their own context parameter are scoped.
var closureLeak = func(ctx context.Context, ch chan int) {
	for { // want "never checks the context"
		<-ch
	}
}
