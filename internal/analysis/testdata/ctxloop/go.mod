module vetsample

go 1.24
