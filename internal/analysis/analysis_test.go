package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestGolden runs each rule over its testdata mini-module and matches the
// findings against `// want "substring"` comments: every want must be hit
// by a finding on its line, and every finding must land on a want. The
// modules also carry suppressed and clean shapes, which assert by the
// absence of a want comment.
func TestGolden(t *testing.T) {
	for _, r := range Rules() {
		t.Run(r.Name, func(t *testing.T) { golden(t, r) })
	}
}

func golden(t *testing.T, r *Rule) {
	mod, err := Load(filepath.Join("testdata", r.Name))
	if err != nil {
		t.Fatalf("loading testdata module: %v", err)
	}
	wants := collectWants(t, mod)
	for _, f := range RunRules(mod, []*Rule{r}) {
		key := lineKey(f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && strings.Contains(f.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected a finding containing %q, got none", key, w.substr)
			}
		}
	}
}

type want struct {
	substr string
	hit    bool
}

// collectWants scans every comment of the loaded module for
// `want "substring"` markers, keyed by the file:line they sit on.
func collectWants(t *testing.T, mod *Module) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, `want "`)
					if idx < 0 {
						continue
					}
					substr, _, ok := strings.Cut(c.Text[idx+len(`want "`):], `"`)
					if !ok {
						t.Fatalf("%s: unterminated want comment %q", mod.Fset.Position(c.Pos()), c.Text)
					}
					pos := mod.Fset.Position(c.Pos())
					key := lineKey(pos.Filename, pos.Line)
					out[key] = append(out[key], &want{substr: substr})
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("testdata module has no want comments")
	}
	return out
}

// TestRepoIsVetClean is the regression gate for every violation this PR
// fixed (the handleDatasets double snapshot load, flat's map-order group
// assembly and histogram accumulation, the experiments map-range) and for
// the suppressions' reasons staying well-formed: reintroducing any of them
// makes the full rule suite fire on the repo again.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against GOROOT source")
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repo module: %v", err)
	}
	if mod.Path != "repro" {
		t.Fatalf("loaded module %q, want repro", mod.Path)
	}
	for _, f := range RunRules(mod, nil) {
		t.Errorf("repo must be vet-clean, got: %s", f)
	}
}

// TestAccessorDetection pins the interprocedural half of snapshotonce: the
// real module's Advisor.Serving accessor must be recognized as a load of
// its atomic.Pointer field.
func TestAccessorDetection(t *testing.T) {
	mod, err := Load(filepath.Join("testdata", "snapshotonce"))
	if err != nil {
		t.Fatal(err)
	}
	accessors := mod.snapshotAccessors()
	found := false
	for key, field := range accessors {
		if key.method == "Serving" && field == "p" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Serving accessor not detected; got %d accessors", len(accessors))
	}
}

// TestFindingString pins the report format the satellite tooling parses.
func TestFindingString(t *testing.T) {
	f := Finding{Rule: "detpath", Message: "m"}
	f.Pos.Filename, f.Pos.Line = "a/b.go", 7
	if got, wantStr := f.String(), "a/b.go:7: [detpath] m"; got != wantStr {
		t.Fatalf("String() = %q, want %q", got, wantStr)
	}
}

// TestRuleRegistry pins the suite: exactly the five documented rules, each
// with a doc line, resolvable by name.
func TestRuleRegistry(t *testing.T) {
	names := []string{}
	for _, r := range Rules() {
		names = append(names, r.Name)
		if r.Doc == "" || r.Run == nil {
			t.Errorf("rule %s lacks doc or run", r.Name)
		}
		if RuleByName(r.Name) != r {
			t.Errorf("RuleByName(%s) does not round-trip", r.Name)
		}
	}
	wantNames := []string{"ctxloop", "detpath", "failpointlit", "pinpair", "snapshotonce"}
	if fmt.Sprint(names) != fmt.Sprint(wantNames) {
		t.Fatalf("registered rules %v, want %v", names, wantNames)
	}
}
