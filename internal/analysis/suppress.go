package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//autoce:ignore rule[,rule...] -- reason
//
// placed on the flagged line (trailing) or the line directly above it.
// The reason is mandatory — a suppression that cannot say why it exists
// is reported as a finding itself.
const ignorePrefix = "autoce:ignore"

type suppressionSet struct {
	// byLine maps file:line (the line a suppression covers) to the rule
	// names it suppresses ("*" entries never occur: rules are explicit).
	byLine    map[string]map[string]bool
	malformed []Finding
}

func collectSuppressions(fset *token.FileSet, pkg *Package) *suppressionSet {
	s := &suppressionSet{byLine: map[string]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				spec, reason, hasReason := strings.Cut(rest, "--")
				spec = strings.TrimSpace(spec)
				if !hasReason || strings.TrimSpace(reason) == "" || spec == "" {
					s.malformed = append(s.malformed, Finding{
						Pos:  pos,
						Rule: "suppression",
						Message: "malformed suppression: want " +
							"//autoce:ignore rule[,rule...] -- reason (the reason is mandatory)",
					})
					continue
				}
				names := map[string]bool{}
				bad := false
				for _, r := range strings.Split(spec, ",") {
					r = strings.TrimSpace(r)
					if RuleByName(r) == nil {
						s.malformed = append(s.malformed, Finding{
							Pos:     pos,
							Rule:    "suppression",
							Message: fmt.Sprintf("suppression names unknown rule %q", r),
						})
						bad = true
						continue
					}
					names[r] = true
				}
				if bad && len(names) == 0 {
					continue
				}
				// A suppression covers its own line (trailing comment) and
				// the line below (standalone comment above the code).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey(pos.Filename, line)
					if s.byLine[key] == nil {
						s.byLine[key] = map[string]bool{}
					}
					for r := range names {
						s.byLine[key][r] = true
					}
				}
			}
		}
	}
	return s
}

func (s *suppressionSet) covers(f Finding) bool {
	return s.byLine[lineKey(f.Pos.Filename, f.Pos.Line)][f.Rule]
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
