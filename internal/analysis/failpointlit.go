package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// failpointlit: failpoint names are an operator interface. The
// AUTOCE_FAILPOINTS env var arms sites by exact string, so a site whose
// name is computed at runtime, duplicated, or absent from the documented
// registry silently breaks fault-injection runs — the soak harness arms
// a name and nothing fires. The rule checks, module-wide:
//
//   - every resilience.Failpoint(...) call passes a constant string;
//   - that constant appears in resilience.FailpointSites (the documented
//     site list);
//   - no two call sites share a name (a probability spec must target one
//     site, not several);
//   - every documented site has a call site (no stale registry entries).
//
// Test files are outside the loader's view, so tests may arm and hit any
// name freely.
func init() {
	register(&Rule{
		Name: "failpointlit",
		Doc:  "resilience.Failpoint sites must be unique literals from FailpointSites",
		Run:  runFailpointLit,
	})
}

// failpointFacts is the module-wide view the per-package passes share.
type failpointFacts struct {
	sites    map[string]bool // documented names from FailpointSites
	sitesPos map[string]ast.Node
	declPkg  string // package path declaring FailpointSites
	// used maps names to their first call site, for duplicate detection
	// in a deterministic single sweep (packages visit in sorted order).
	used map[string]string // name -> "pkgpath:file:line" of first use
}

func runFailpointLit(pass *Pass) []Finding {
	facts := pass.Module.failpointFacts()
	if facts == nil {
		return nil // no resilience package in this module: nothing to check
	}
	var out []Finding
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isFailpointCall(info, call) {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				out = append(out, pass.finding(call.Pos(), "failpointlit",
					"failpoint name must be a constant string literal so AUTOCE_FAILPOINTS specs can target it"))
				return true
			}
			name := constant.StringVal(tv.Value)
			if !facts.sites[name] {
				out = append(out, pass.finding(call.Pos(), "failpointlit",
					"failpoint %q is not in resilience.FailpointSites; add it to the documented site list", name))
			}
			key := pass.Pkg.Path + ":" + pass.Position(call.Pos()).String()
			if first, dup := facts.used[name]; dup && first != key {
				out = append(out, pass.finding(call.Pos(), "failpointlit",
					"failpoint %q is already compiled in at %s; site names must be unique", name, first))
			} else {
				facts.used[name] = key
			}
			return true
		})
	}
	// The package declaring FailpointSites also checks for stale entries —
	// after every package has contributed its uses. RunRules visits
	// packages in sorted order; defer the staleness sweep to the driver by
	// doing it when this pass IS the declaring package and it sorts last…
	// simpler and robust: recompute uses module-wide right here when this
	// is the declaring package.
	if pass.Pkg.Path == facts.declPkg {
		out = append(out, staleSites(pass, facts)...)
	}
	return out
}

// staleSites reports documented names with no call site anywhere in the
// module (independent of package visit order: it sweeps all packages).
func staleSites(pass *Pass, facts *failpointFacts) []Finding {
	usedAnywhere := map[string]bool{}
	for _, pkg := range pass.Module.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isFailpointCall(pkg.Info, call) || len(call.Args) != 1 {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					usedAnywhere[constant.StringVal(tv.Value)] = true
				}
				return true
			})
		}
	}
	var out []Finding
	for _, name := range sortedKeys(facts.sites) {
		if !usedAnywhere[name] {
			out = append(out, pass.finding(facts.sitesPos[name].Pos(), "failpointlit",
				"documented failpoint %q has no call site; remove it from FailpointSites or restore the site", name))
		}
	}
	return out
}

// isFailpointCall matches resilience.Failpoint(...) — a call to a
// function named Failpoint declared in a package named "resilience".
func isFailpointCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Failpoint" {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "resilience"
}

// failpointFacts locates the FailpointSites declaration module-wide and
// extracts the documented names. Cached per module.
func (m *Module) failpointFacts() *failpointFacts {
	if m.fpFacts != nil || m.fpFactsDone {
		return m.fpFacts
	}
	m.fpFactsDone = true
	for _, pkg := range m.Pkgs {
		if pkg.Types.Name() != "resilience" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "FailpointSites" || len(vs.Values) != 1 {
						continue
					}
					lit, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						continue
					}
					facts := &failpointFacts{
						sites:    map[string]bool{},
						sitesPos: map[string]ast.Node{},
						declPkg:  pkg.Path,
						used:     map[string]string{},
					}
					for _, elt := range lit.Elts {
						if tv, ok := pkg.Info.Types[elt]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
							facts.sites[constant.StringVal(tv.Value)] = true
							facts.sitesPos[constant.StringVal(tv.Value)] = elt
						}
					}
					m.fpFacts = facts
					return facts
				}
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
