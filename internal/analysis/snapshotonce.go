package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// snapshotonce: a function must take an atomically published snapshot at
// most once. The serving stack's consistency model is "resolve one
// snapshot, answer from it": core.Advisor.Serving() and the per-tenant
// handles publish immutable state through atomic.Pointer, and two Loads
// of the same pointer in one function can straddle a concurrent
// republish — the exact torn-state class the snapshots exist to prevent
// (a request validating against one advisor generation and answering
// from another).
//
// Detected loads are (a) direct `x.Load()` where x is an atomic.Pointer
// field chain, and (b) calls to snapshot accessors: methods whose body is
// exactly `return recv.field.Load()` (core.Advisor.Serving is one), which
// count as a load of that field. Loads keyed to the same selector chain
// within one function scope are flagged from the second occurrence on.
// A deliberate re-load after a mutation publishes a successor snapshot is
// the suppression case: say so in the reason.
func init() {
	register(&Rule{
		Name: "snapshotonce",
		Doc:  "a function must Load an atomic.Pointer snapshot at most once",
		Run:  runSnapshotOnce,
	})
}

func runSnapshotOnce(pass *Pass) []Finding {
	accessors := pass.Module.snapshotAccessors()
	var out []Finding
	for _, f := range pass.Pkg.Files {
		for _, body := range funcScopes(f) {
			loads := map[string][]ast.Node{} // key -> load sites in order
			inspectShallow(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if key, ok := pass.snapshotLoadKey(sel, accessors); ok {
					loads[key] = append(loads[key], call)
				}
				return true
			})
			keys := make([]string, 0, len(loads))
			for key := range loads {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				for _, site := range loads[key][1:] {
					out = append(out, pass.finding(site.Pos(), "snapshotonce",
						"snapshot %s is loaded more than once in this function; "+
							"take it once and answer from that one snapshot (concurrent republishes make repeated loads observe torn state)",
						key))
				}
			}
		}
	}
	return out
}

// snapshotLoadKey classifies sel (the callee of a call) as a snapshot
// load and returns its identity key.
func (p *Pass) snapshotLoadKey(sel *ast.SelectorExpr, accessors map[accessorKey]string) (string, bool) {
	info := p.Pkg.Info
	// Direct x.Load() on an atomic.Pointer.
	if sel.Sel.Name == "Load" {
		if tv, ok := info.Types[sel.X]; ok && isPkgType(tv.Type, "sync/atomic", "Pointer") {
			if key, ok := exprKey(sel.X); ok {
				return key, true
			}
		}
	}
	// Accessor call recv.M() where M is a registered snapshot accessor.
	if selInfo, ok := info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
		named := namedOf(selInfo.Recv())
		if named != nil {
			if field, ok := accessors[accessorKey{named.Obj(), sel.Sel.Name}]; ok {
				if key, ok := exprKey(sel.X); ok {
					return key + "." + field, true
				}
			}
		}
	}
	return "", false
}

// accessorKey identifies a method by its receiver's type object and name.
type accessorKey struct {
	recv   *types.TypeName
	method string
}

// snapshotAccessors finds, module-wide, every method whose body is exactly
// `return recv.field.Load()` with field an atomic.Pointer — the accessor
// idiom that wraps snapshot resolution (Advisor.Serving). Cached on the
// module because every package's pass consults the same set.
func (m *Module) snapshotAccessors() map[accessorKey]string {
	if m.accessors != nil {
		return m.accessors
	}
	m.accessors = map[accessorKey]string{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Body.List) != 1 {
					continue
				}
				ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					continue
				}
				call, ok := ret.Results[0].(*ast.CallExpr)
				if !ok || len(call.Args) != 0 {
					continue
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Load" {
					continue
				}
				tv, ok := pkg.Info.Types[sel.X]
				if !ok || !isPkgType(tv.Type, "sync/atomic", "Pointer") {
					continue
				}
				// The loaded expression must be a field of the receiver:
				// recv.field (or recv.a.b — keep the chain minus the root).
				fieldSel, ok := sel.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := recvTypeName(pkg.Info, fd)
				if obj == nil {
					continue
				}
				key, ok := exprKey(fieldSel)
				if !ok {
					continue
				}
				// Strip the receiver identifier: "a.snap" -> "snap".
				if i := strings.IndexByte(key, '.'); i >= 0 {
					key = key[i+1:]
				}
				m.accessors[accessorKey{obj, fd.Name.Name}] = key
			}
		}
	}
	return m.accessors
}

// recvTypeName resolves a method declaration's receiver type object.
func recvTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	if n := namedOf(tv.Type); n != nil {
		return n.Obj()
	}
	return nil
}
