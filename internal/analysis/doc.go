// Package analysis is the project-invariant analyzer suite behind
// cmd/autoce-vet: a stdlib-only (go/parser, go/types, go/importer) driver
// that loads every package in the module and machine-checks the
// concurrency, determinism, and lifecycle rules the serving stack is
// built on. The rules exist because the invariants they pin are enforced
// nowhere at compile time — they live in package docs and -race tests,
// and a violation otherwise surfaces as a 1-in-1000 soak flake instead
// of a red lint job.
//
// # Rules
//
//	snapshotonce  A function must take an atomically published snapshot
//	              (an atomic.Pointer field, or an accessor method that
//	              returns one Load of it) at most once: two Loads of the
//	              same pointer in one function observe torn state across
//	              a concurrent republish.
//	pinpair       A model-cache acquire pins its handle against eviction;
//	              the pin must reach a release on every return path
//	              (deferred, or called before each return), or eviction
//	              wedges permanently.
//	detpath       Determinism-critical packages (internal/nn,
//	              internal/gnn, the internal/ce trainers, the corpus
//	              labeling paths in internal/experiments and
//	              internal/testbed, and the serving core with its ANN
//	              index — internal/core and internal/ann) must not call
//	              time.Now, draw from the global math/rand state, or let
//	              map iteration order feed computation or output order —
//	              byte-identical labels, replayable tapes, and
//	              bit-reproducible index builds are load-bearing.
//	ctxloop       A while-shaped loop (`for {` or `for cond {`) in a
//	              function that takes a context.Context must reference
//	              the context (ctx.Err, ctx.Done, a Canceled check, or
//	              passing it on) somewhere in its body — the cooperative
//	              cancellation contract of the serving deadlines.
//	failpointlit  Every resilience.Failpoint call site must pass a unique
//	              constant string that appears in the documented
//	              resilience.FailpointSites registry, and every
//	              registered site must exist in the tree — so
//	              AUTOCE_FAILPOINTS specs can never silently name
//	              nothing.
//
// # Suppression
//
// A finding is suppressed by a comment on the flagged line or the line
// directly above it:
//
//	//autoce:ignore <rule>[,<rule>...] -- <reason>
//
// The reason is mandatory; an ignore comment without one is itself
// reported. Suppressions are for violations that are intentional and
// understood (a snapshot deliberately re-taken after a mutation, a
// wall-clock read that feeds a latency label by design) — not for
// silencing bugs.
//
// # Adding an analyzer
//
// Implement a Rule (Name, Doc, Run func(*Pass) []Finding) in a new file
// and register it from init. Run receives one type-checked package at a
// time plus the whole-module view (Pass.Module) for cross-package rules.
// Give the rule a golden-file test: a mini-module under
// testdata/<rule>/ (own go.mod, seeded positive, suppressed, and clean
// shapes) whose source marks expected findings with want "substring"
// comments on the flagged lines — TestGolden discovers the module by the
// rule's name (see analysis_test.go).
package analysis
