package analysis

import (
	"go/ast"
	"go/types"
)

// ctxloop: the cooperative-cancellation contract. Every endpoint runs
// under a deadline, and an abandoned request's work must actually stop —
// the train single-flight slot, for one, is held until the trainer
// reaches a checkpoint. A function that accepts a context.Context and
// then spins a while-shaped loop (`for {` or `for cond {`) without ever
// consulting the context inside the loop can outlive its deadline
// unboundedly. Bounded three-clause and range loops are not flagged (they
// finish on their own); the checkpoint can be any use of the context in
// the loop body — ctx.Err(), a select on ctx.Done(), passing ctx to a
// callee, or a Canceled() helper.
func init() {
	register(&Rule{
		Name: "ctxloop",
		Doc:  "while-shaped loops in context-taking functions must check the context",
		Run:  runCtxLoop,
	})
}

func runCtxLoop(pass *Pass) []Finding {
	info := pass.Pkg.Info
	var out []Finding
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var typ *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				typ, body = fn.Type, fn.Body
			case *ast.FuncLit:
				typ, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ctxObjs := contextParams(info, typ)
			if len(ctxObjs) == 0 {
				return true
			}
			inspectShallow(body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				// While-shaped only: `for {` and `for cond {`. Three-clause
				// loops advance toward a bound.
				if loop.Init != nil || loop.Post != nil {
					return true
				}
				if loopChecksContext(info, loop, ctxObjs) {
					return true
				}
				out = append(out, pass.finding(loop.Pos(), "ctxloop",
					"unbounded loop in a context-taking function never checks the context; add a ctx.Err()/Canceled() checkpoint so an abandoned request can stop"))
				return true
			})
			return true
		})
	}
	return out
}

// contextParams returns the objects of every context.Context parameter.
func contextParams(info *types.Info, typ *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if typ.Params == nil {
		return out
	}
	for _, field := range typ.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isPkgType(tv.Type, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// loopChecksContext reports whether the loop (condition or body, nested
// closures included — a select on ctx.Done reads the context wherever it
// syntactically sits) references a context parameter or calls something
// named Canceled.
func loopChecksContext(info *types.Info, loop *ast.ForStmt, ctxObjs map[types.Object]bool) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if ctxObjs[objectOf(info, n)] {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Canceled" {
				found = true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "Canceled" {
				found = true
			}
		}
		return !found
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	ast.Inspect(loop.Body, check)
	return found
}
