package analysis

import (
	"go/ast"
	"go/types"
)

// pinpair: every model-cache acquire must reach a release on every path.
// An acquire pins its servedModel against eviction; a return path that
// skips release leaks the pin, and a leaked pin wedges eviction for the
// process lifetime — the cache can never page that model out, and once
// enough pins leak the budget is a fiction. The analyzer recognizes the
// project convention: a call to a method named "acquire" whose results
// include an error, paired with calls (or defers) of a method named
// "release". The error-check branch directly guarding the acquire
// (`if err != nil { return ... }`) is the unpinned failure path and is
// exempt.
//
// The path walk is syntactic and conservative: a release inside one arm
// of a branch does not count for the code after the branch unless every
// non-terminating arm released. `defer release` right after the error
// check is the idiom that always passes.
func init() {
	register(&Rule{
		Name: "pinpair",
		Doc:  "an acquire'd cache handle must reach release on every return path",
		Run:  runPinPair,
	})
}

func runPinPair(pass *Pass) []Finding {
	var out []Finding
	for _, f := range pass.Pkg.Files {
		for _, body := range funcScopes(f) {
			out = append(out, checkPinPairs(pass, body)...)
		}
	}
	return out
}

// pinState tracks one function scope's walk.
type pinState struct {
	pinned   bool
	released bool
	errObj   types.Object // the acquire's error result, if assigned
	acquire  ast.Node     // the acquire call site (for fall-through reports)
}

func checkPinPairs(pass *Pass, body *ast.BlockStmt) []Finding {
	var out []Finding
	st := &pinState{}
	terminated := walkPinStmts(pass, body.List, st, &out)
	if st.pinned && !st.released && !terminated {
		out = append(out, pass.finding(st.acquire.Pos(), "pinpair",
			"acquired handle is never released on the fall-through path; defer release after the error check"))
	}
	return out
}

// walkPinStmts walks a statement list updating st, reporting returns that
// leak the pin. It reports whether the list definitely terminates
// (ends in return/panic on this path).
func walkPinStmts(pass *Pass, stmts []ast.Stmt, st *pinState, out *[]Finding) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if call := acquireCall(pass, s.Rhs); call != nil {
				if st.pinned && !st.released {
					*out = append(*out, pass.finding(call.Pos(), "pinpair",
						"second acquire while an earlier acquire is still unreleased in this function"))
				}
				st.pinned = true
				st.released = false
				st.acquire = call
				st.errObj = errResultObj(pass, s)
				continue
			}
			// An acquire whose results are dropped or reassigned oddly still
			// pins; catch bare `x.acquire(...)` as expressions below.
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if isMethodCallNamed(call, "acquire") {
					if st.pinned && !st.released {
						*out = append(*out, pass.finding(call.Pos(), "pinpair",
							"second acquire while an earlier acquire is still unreleased in this function"))
					}
					st.pinned = true
					st.released = false
					st.acquire = call
					st.errObj = nil
					continue
				}
				if isMethodCallNamed(call, "release") {
					st.released = true
					continue
				}
			}
		case *ast.DeferStmt:
			if isMethodCallNamed(s.Call, "release") {
				st.released = true
				continue
			}
			// defer func() { ... release ... }() also releases.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && containsRelease(lit.Body) {
				st.released = true
				continue
			}
		case *ast.ReturnStmt:
			if st.pinned && !st.released {
				*out = append(*out, pass.finding(s.Pos(), "pinpair",
					"return path leaks the acquired handle's pin; call or defer release before returning"))
			}
			return true
		case *ast.BranchStmt:
			// break/continue/goto: end of this straight-line path; be
			// conservative and treat as non-terminating for the caller.
			return false
		case *ast.IfStmt:
			if st.pinned && !st.released && isErrNilCheck(pass, s.Cond, st.errObj) {
				// The acquire's own failure branch: unpinned inside.
				sub := &pinState{}
				walkPinStmts(pass, s.Body.List, sub, out)
				// The success path continues after the if (or in else).
				if s.Else != nil {
					walkPinStmts(pass, elseStmts(s.Else), st, out)
				}
				continue
			}
			thenSt := *st
			thenTerm := walkPinStmts(pass, s.Body.List, &thenSt, out)
			elseSt := *st
			elseTerm := false
			if s.Else != nil {
				elseTerm = walkPinStmts(pass, elseStmts(s.Else), &elseSt, out)
			}
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				*st = elseSt
			case elseTerm:
				*st = thenSt
			default:
				// Both arms fall through: released only if both released.
				st.released = thenSt.released && elseSt.released
				st.pinned = thenSt.pinned || elseSt.pinned
				if st.acquire == nil {
					st.acquire = firstNonNil(thenSt.acquire, elseSt.acquire)
				}
			}
		case *ast.ForStmt:
			loopSt := *st
			walkPinStmts(pass, s.Body.List, &loopSt, out)
			mergeLoop(st, &loopSt)
		case *ast.RangeStmt:
			loopSt := *st
			walkPinStmts(pass, s.Body.List, &loopSt, out)
			mergeLoop(st, &loopSt)
		case *ast.SwitchStmt:
			walkPinBranches(pass, caseBodies(s.Body), st, out)
		case *ast.TypeSwitchStmt:
			walkPinBranches(pass, caseBodies(s.Body), st, out)
		case *ast.SelectStmt:
			walkPinBranches(pass, commBodies(s.Body), st, out)
		case *ast.BlockStmt:
			if walkPinStmts(pass, s.List, st, out) {
				return true
			}
		case *ast.LabeledStmt:
			if walkPinStmts(pass, []ast.Stmt{s.Stmt}, st, out) {
				return true
			}
		}
	}
	return false
}

// walkPinBranches analyzes mutually exclusive branch bodies (switch/select
// cases) against a shared pre-state.
func walkPinBranches(pass *Pass, bodies [][]ast.Stmt, st *pinState, out *[]Finding) {
	allReleased := len(bodies) > 0
	for _, b := range bodies {
		sub := *st
		if !walkPinStmts(pass, b, &sub, out) && !sub.released {
			allReleased = false
		}
	}
	if allReleased && st.pinned {
		st.released = true
	}
}

// mergeLoop folds a loop body's effect into the surrounding state: a
// release inside a loop body is not guaranteed to run (zero iterations),
// so it does not clear the obligation; an acquire inside a loop body
// leaves the state pinned after the loop.
func mergeLoop(st, loopSt *pinState) {
	if loopSt.pinned && !loopSt.released {
		st.pinned = true
		st.released = false
		if st.acquire == nil {
			st.acquire = loopSt.acquire
		}
	}
}

// acquireCall returns the call if rhs is a single call to a method named
// "acquire".
func acquireCall(pass *Pass, rhs []ast.Expr) *ast.CallExpr {
	if len(rhs) != 1 {
		return nil
	}
	call, ok := rhs[0].(*ast.CallExpr)
	if !ok || !isMethodCallNamed(call, "acquire") {
		return nil
	}
	return call
}

// errResultObj finds the error-typed object assigned from the acquire.
func errResultObj(pass *Pass, s *ast.AssignStmt) types.Object {
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var obj types.Object
		if o := pass.Pkg.Info.Defs[id]; o != nil {
			obj = o
		} else if o := pass.Pkg.Info.Uses[id]; o != nil {
			obj = o
		}
		if obj != nil && obj.Type() != nil && isErrorType(obj.Type()) {
			return obj
		}
	}
	return nil
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrNilCheck reports whether cond is `errObj != nil`.
func isErrNilCheck(pass *Pass, cond ast.Expr, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	id, nilSide := bin.X, bin.Y
	ident, ok := id.(*ast.Ident)
	if !ok {
		ident, ok = nilSide.(*ast.Ident)
		nilSide = id
		if !ok {
			return false
		}
	}
	if nid, isIdent := nilSide.(*ast.Ident); !isIdent || nid.Name != "nil" {
		return false
	}
	return pass.Pkg.Info.Uses[ident] == errObj
}

// isMethodCallNamed reports whether call invokes a selector method with
// the given name (x.name(...)).
func isMethodCallNamed(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// containsRelease reports whether a block transitively calls release.
func containsRelease(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMethodCallNamed(call, "release") {
			found = true
		}
		return !found
	})
	return found
}

func elseStmts(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return s.List
	default:
		return []ast.Stmt{s}
	}
}

func caseBodies(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range b.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func commBodies(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range b.List {
		if cc, ok := s.(*ast.CommClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func firstNonNil(nodes ...ast.Node) ast.Node {
	for _, n := range nodes {
		if n != nil {
			return n
		}
	}
	return nil
}
