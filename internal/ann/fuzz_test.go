package ann

import (
	"math/rand"
	"testing"
)

// FuzzANNIndexRoundTrip pins two properties of the persistence envelope
// over fuzzed index shapes: (1) a clean marshal/unmarshal/attach round
// trip returns bit-identical search results, and (2) any single-byte
// corruption of the envelope fails loudly in Unmarshal — never an index
// that would silently return wrong neighbors (CRC-32C is linear, so a
// non-zero xor at any position must change the checksum).
func FuzzANNIndexRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(8), uint16(7), byte(0x01))
	f.Add(int64(42), uint16(64), uint8(3), uint16(900), byte(0x80))
	f.Add(int64(7), uint16(500), uint8(16), uint16(0), byte(0x00))
	f.Fuzz(func(t *testing.T, seed int64, rawN uint16, rawDim uint8, pos uint16, xor byte) {
		n := int(rawN)%500 + 20
		dim := int(rawDim)%16 + 2
		rng := rand.New(rand.NewSource(seed))
		vecs := clusteredVecs(rng, n, dim, rng.Intn(8)+2, rng.Intn(n/4), 0.3)
		ix := Build(vecs, Params{MinIndexSize: 1, Nlist: rng.Intn(24) + 4})
		if ix == nil {
			t.Fatalf("Build(n=%d) returned nil at MinIndexSize 1", n)
		}
		blob, err := ix.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		rx, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("clean round trip failed: %v", err)
		}
		if err := rx.Attach(vecs); err != nil {
			t.Fatalf("clean attach failed: %v", err)
		}
		for qi := 0; qi < 5; qi++ {
			q := vecs[rng.Intn(n)]
			a, b := ix.Search(q, 3), rx.Search(q, 3)
			if len(a) != len(b) {
				t.Fatalf("round trip changed result count: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed result %d: %+v != %+v", i, a[i], b[i])
				}
			}
		}

		if xor != 0 {
			bad := append([]byte(nil), blob...)
			bad[int(pos)%len(bad)] ^= xor
			if _, err := Unmarshal(bad); err == nil {
				t.Fatalf("corrupt byte at %d (xor %02x) decoded silently", int(pos)%len(blob), xor)
			}
		}
	})
}
