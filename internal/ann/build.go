package ann

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// splitSampleCap bounds the number of vectors a 2-means split trains on;
// larger nodes are strided down to it, keeping every split O(sample·dim)
// while the full node is still partitioned exactly once per level.
const splitSampleCap = 1024

// maxSplitDepth is a hard recursion bound; at the default Nlist ≤ 4096
// the tree needs at most 12 levels, so hitting it means pathological
// duplicate-heavy data and the node just becomes an oversized cell.
const maxSplitDepth = 48

// Build constructs an index over vecs, or returns nil when the set is
// smaller than Params.MinIndexSize (or indexing is disabled by a
// negative one) — the caller keeps its exact scan. The quantizer is
// recursive bisecting k-means: nodes split with a deterministic seeded
// 2-means until cells reach ~n/Nlist vectors, subtrees building in
// parallel over a bounded worker pool. Equal (vecs, p) always produce
// an identical index regardless of scheduling: every node's split
// depends only on its own members, and all reductions run in fixed
// order.
func Build(vecs [][]float64, p Params) *Index {
	n := len(vecs)
	rp := p.resolve(n)
	if rp.MinIndexSize < 0 || n < rp.MinIndexSize || n == 0 {
		return nil
	}
	dim := len(vecs[0])
	b := &builder{
		vecs:    vecs,
		dim:     dim,
		p:       rp,
		maxLeaf: (n + rp.Nlist - 1) / rp.Nlist,
		tokens:  make(chan struct{}, max(runtime.GOMAXPROCS(0)-1, 0)),
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	lists := b.split(ids, 0)
	centroids := make([][]float64, len(lists))
	parallelFor(len(lists), func(c int) {
		centroids[c] = meanOf(vecs, lists[c], dim)
	})
	ix := &Index{
		params:    rp,
		dim:       dim,
		n:         n,
		built:     n,
		centroids: centroids,
		lists:     lists,
		vecs:      vecs,
	}
	ix.fillData()
	return ix
}

type builder struct {
	vecs    [][]float64
	dim     int
	p       Params
	maxLeaf int
	tokens  chan struct{} // parallel-subtree budget (PR 2-style pool)
}

// split recursively bisects ids until nodes fit maxLeaf, returning the
// cells in deterministic left-to-right tree order. When a worker token
// is free the left subtree builds on its own goroutine.
func (b *builder) split(ids []int32, depth int) [][]int32 {
	if len(ids) <= b.maxLeaf || depth >= maxSplitDepth {
		return [][]int32{ids}
	}
	c1, c2, ok := b.splitCentroids(ids)
	if !ok {
		// Degenerate node (all vectors identical): one oversized cell.
		return [][]int32{ids}
	}
	left := make([]int32, 0, len(ids)/2)
	right := make([]int32, 0, len(ids)/2)
	for _, id := range ids {
		if sqDist(b.vecs[id], c1) <= sqDist(b.vecs[id], c2) {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return [][]int32{ids}
	}
	var ll, rr [][]int32
	select {
	case b.tokens <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer close(done)
			ll = b.split(left, depth+1)
			<-b.tokens
		}()
		rr = b.split(right, depth+1)
		<-done
	default:
		ll = b.split(left, depth+1)
		rr = b.split(right, depth+1)
	}
	return append(ll, rr...)
}

// splitCentroids runs the node's 2-means on a strided sample:
// farthest-point initialization (the sample point farthest from the
// sample mean, then the point farthest from it) followed by at most
// SplitIters Lloyd iterations. ok is false when the node cannot split —
// every sampled vector is identical.
func (b *builder) splitCentroids(ids []int32) (c1, c2 []float64, ok bool) {
	step := 1
	if len(ids) > splitSampleCap {
		step = len(ids) / splitSampleCap
	}
	start := 0
	if step > 1 {
		start = int(b.p.Seed % int64(step))
		if start < 0 {
			start += step
		}
	}
	var sample []int32
	for i := start; i < len(ids); i += step {
		sample = append(sample, ids[i])
	}

	mean := meanOf(b.vecs, sample, b.dim)
	c1 = append([]float64(nil), b.vecs[farthestFrom(b.vecs, sample, mean)]...)
	f2 := farthestFrom(b.vecs, sample, c1)
	if sqDist(b.vecs[f2], c1) == 0 {
		return nil, nil, false
	}
	c2 = append([]float64(nil), b.vecs[f2]...)

	side := make([]bool, len(sample)) // true → c2
	sum1 := make([]float64, b.dim)
	sum2 := make([]float64, b.dim)
	for it := 0; it < b.p.SplitIters; it++ {
		for i := range sum1 {
			sum1[i], sum2[i] = 0, 0
		}
		var n1, n2 int
		changed := false
		for si, id := range sample {
			v := b.vecs[id]
			s2 := sqDist(v, c1) > sqDist(v, c2)
			if s2 != side[si] {
				side[si], changed = s2, true
			}
			if s2 {
				addInto(sum2, v)
				n2++
			} else {
				addInto(sum1, v)
				n1++
			}
		}
		if n1 == 0 || n2 == 0 {
			break // keep the previous centroids; the full partition decides
		}
		scaleInto(c1, sum1, 1/float64(n1))
		scaleInto(c2, sum2, 1/float64(n2))
		if !changed && it > 0 {
			break
		}
	}
	return c1, c2, true
}

// farthestFrom returns the id (from ids) of the vector farthest from x,
// ties breaking toward the earliest position — deterministic.
func farthestFrom(vecs [][]float64, ids []int32, x []float64) int32 {
	best, bestD := ids[0], -1.0
	for _, id := range ids {
		if d := sqDist(vecs[id], x); d > bestD {
			best, bestD = id, d
		}
	}
	return best
}

func meanOf(vecs [][]float64, ids []int32, dim int) []float64 {
	m := make([]float64, dim)
	if len(ids) == 0 {
		return m
	}
	for _, id := range ids {
		addInto(m, vecs[id])
	}
	inv := 1 / float64(len(ids))
	for i := range m {
		m[i] *= inv
	}
	return m
}

func addInto(dst, v []float64) {
	for i := range dst {
		dst[i] += v[i]
	}
}

func scaleInto(dst, sum []float64, s float64) {
	for i := range dst {
		dst[i] = sum[i] * s
	}
}

// parallelFor runs f(0..n) over a GOMAXPROCS worker pool with an atomic
// work counter (the RecommendBatch/CardinalityBatch idiom). Each i is
// processed exactly once and writes only its own slot, so results are
// deterministic regardless of scheduling.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
