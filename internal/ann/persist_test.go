package ann

import (
	"math/rand"
	"testing"
)

// TestMarshalRoundTrip pins that a persisted index, re-attached to the
// same vectors, is bit-identical in structure and search results.
func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vecs := clusteredVecs(rng, 5000, 16, 30, 50, 0.25)
	ix := Build(vecs, Params{MinIndexSize: 1})

	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rx.vecs != nil {
		t.Fatal("decoded index is attached")
	}
	if err := rx.Attach(vecs); err != nil {
		t.Fatal(err)
	}
	if rx.Size() != ix.Size() || rx.Nlist() != ix.Nlist() || rx.Appended() != ix.Appended() {
		t.Fatalf("decoded shape %d/%d/%d != %d/%d/%d",
			rx.Size(), rx.Nlist(), rx.Appended(), ix.Size(), ix.Nlist(), ix.Appended())
	}
	for qi := 0; qi < 30; qi++ {
		q := vecs[rng.Intn(len(vecs))]
		a, b := ix.Search(q, 5), rx.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %+v != %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestAttachValidates pins the strict re-binding: wrong count or
// dimensionality is an error, not a silent rebuild.
func TestAttachValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vecs := clusteredVecs(rng, 1000, 8, 10, 0, 0.25)
	ix := Build(vecs, Params{MinIndexSize: 1})
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.Attach(vecs[:999]); err == nil {
		t.Fatal("Attach accepted a short vector set")
	}
	if err := rx.Attach(clusteredVecs(rng, 1000, 4, 10, 0, 0.25)); err == nil {
		t.Fatal("Attach accepted a dim mismatch")
	}
	if err := rx.Attach(vecs); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalRejectsCorruption walks corruption through every region
// of the envelope — magic, checksum, gob payload, truncation — and
// requires a loud error each time.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	vecs := clusteredVecs(rng, 1000, 8, 10, 0, 0.25)
	ix := Build(vecs, Params{MinIndexSize: 1})
	blob, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	for _, cut := range []int{1, len(indexMagic), len(indexMagic) + 4, len(blob) / 2, len(blob) - 1} {
		if _, err := Unmarshal(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	for _, pos := range []int{0, 5, len(indexMagic), len(indexMagic) + 2, len(indexMagic) + 7, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0x40
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("bit flip at %d decoded silently", pos)
		}
	}
}

// TestValidateRejectsInvariantBreaks corrupts the decoded state (with a
// recomputed checksum, so only the structural validation can catch it)
// and requires each break to fail.
func TestValidateRejectsInvariantBreaks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vecs := clusteredVecs(rng, 500, 8, 5, 0, 0.25)
	ix := Build(vecs, Params{MinIndexSize: 1})

	breakers := []struct {
		name  string
		mutil func(st *indexState)
	}{
		{"dup id", func(st *indexState) { st.Lists[0] = append(st.Lists[0], st.Lists[len(st.Lists)-1][0]) }},
		{"out of range", func(st *indexState) { st.Lists[0][0] = int32(st.N) }},
		{"missing id", func(st *indexState) { st.Lists[0] = st.Lists[0][1:] }},
		{"count drift", func(st *indexState) { st.Appended = 7 }},
		{"nan centroid", func(st *indexState) { st.Centroids[0][0] = nan() }},
		{"list/centroid mismatch", func(st *indexState) { st.Centroids = st.Centroids[1:] }},
		{"zero params", func(st *indexState) { st.Params = Params{} }},
	}
	for _, b := range breakers {
		st := indexState{
			Params: ix.params, Dim: ix.dim, N: ix.n, Built: ix.built,
			Appended:  ix.appended,
			Centroids: deepCopyF64(ix.centroids),
			Lists:     deepCopyI32(ix.lists),
		}
		b.mutil(&st)
		if err := st.validate(); err == nil {
			t.Errorf("%s: validate passed", b.name)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }

func deepCopyF64(in [][]float64) [][]float64 {
	out := make([][]float64, len(in))
	for i := range in {
		out[i] = append([]float64(nil), in[i]...)
	}
	return out
}

func deepCopyI32(in [][]int32) [][]int32 {
	out := make([][]int32, len(in))
	for i := range in {
		out[i] = append([]int32(nil), in[i]...)
	}
	return out
}
