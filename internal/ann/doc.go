// Package ann is a snapshot-built approximate-nearest-neighbor index
// over float64 embedding vectors: the indexed Stage-4 serving path that
// lets the advisor's recommendation candidate set grow to millions of
// entries without per-recommend latency growing with it.
//
// # Structure
//
// The index is IVF-shaped: a k-means coarse quantizer partitions the
// vector set into Nlist cells, each cell holding an inverted posting
// list of vector ids; a query scans only the Nprobe cells whose
// centroids are nearest to it. The quantizer is built by recursive
// bisecting k-means — each node runs a deterministic seeded 2-means
// (farthest-point init over a strided sample, a fixed Lloyd iteration
// budget) and splits until cells reach their target size — so a full
// build costs O(n·d·log Nlist) instead of the O(n·d·Nlist) of flat
// Lloyd assignment, and subtrees build in parallel over a bounded
// worker pool. Nothing in the build reads wall-clock time, the global
// rand stream, or map order: the same vectors and Params always produce
// the same index (the package is in the autoce-vet detpath scope).
//
// # Lifecycle
//
// Build constructs an index for a frozen vector set (a core serving
// snapshot); below Params.MinIndexSize it returns nil and callers keep
// their exact scan, bit-for-bit. Extend clones an index onto a grown
// vector set, appending the new ids to their nearest cells — the cheap
// path incremental learning and online adapting take — and refuses
// (returns nil, signaling "rebuild") once appended vectors exceed
// Params.RebuildFraction of the total. MarshalBinary/Unmarshal move the
// quantizer and posting lists through a CRC-32C-enveloped gob so a
// persisted advisor never pays the build twice; Attach re-binds a
// decoded index to its (recomputed) vector set, validating shape
// strictly. Corrupt bytes fail loudly: any bit flip in the envelope is
// caught by the checksum, and structural invariants (every id exactly
// once, in range, finite centroids) are re-validated on decode.
//
// # Search
//
// Search and SearchFiltered return (index, distance) pairs in
// nearest-first order under a total order — distance, then vector id —
// so results over duplicated embeddings are deterministic, matching the
// exact heap scan's tie-break. Results are approximate: cells not
// probed may hide a true neighbor. Recall at the default Params is
// pinned ≥ 0.95 by a differential test against the exact scan.
//
// Each cell's vectors are additionally stored as one contiguous
// row-major block (rebuilt from the attached set on Attach/Extend, never
// persisted), so a posting-list scan streams memory sequentially instead
// of pointer-chasing a [][]float64 — at 10^6 entries this cache behavior
// is most of the margin over the exact scan. The blocks double the
// index's share of embedding memory; that trade is deliberate.
package ann
