package ann

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
)

// Persistence: the quantizer and posting lists travel as a CRC-32C
// enveloped gob, embedded in the advisor artifact, so a served fleet
// never pays the build twice. Vectors are NOT serialized — they are
// derived state (the advisor re-embeds its candidate set on load) and
// the decoded index is re-bound to them with Attach, which re-validates
// shape strictly. Corruption fails loudly on two independent layers:
// any bit flip in the envelope breaks the checksum (CRC-32C is linear,
// so a single corrupted byte can never cancel out), and a decoded state
// must still satisfy the structural invariants — every id exactly once
// and in range, centroid/list counts equal, finite centroid
// coordinates — before an Index is returned.

// indexMagic versions the envelope; bump on incompatible state changes.
const indexMagic = "autoce-ann-v1\n"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// indexState is the gob-serializable mirror of an Index.
type indexState struct {
	Params    Params
	Dim       int
	N         int
	Built     int
	Appended  int
	Centroids [][]float64
	Lists     [][]int32
}

// MarshalBinary encodes the index (without its attached vectors) as
// magic || crc32c(payload) || payload.
func (ix *Index) MarshalBinary() ([]byte, error) {
	st := indexState{
		Params:    ix.params,
		Dim:       ix.dim,
		N:         ix.n,
		Built:     ix.built,
		Appended:  ix.appended,
		Centroids: ix.centroids,
		Lists:     ix.lists,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&st); err != nil {
		return nil, fmt.Errorf("ann: encoding index: %w", err)
	}
	out := make([]byte, 0, len(indexMagic)+4+payload.Len())
	out = append(out, indexMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), crcTable))
	return append(out, payload.Bytes()...), nil
}

// Unmarshal decodes an index previously written by MarshalBinary. The
// result is detached: bind it to its vector set with Attach before
// searching. Corrupt input — bad magic, checksum mismatch, or a decoded
// state violating the index invariants — returns an error rather than
// an index that would silently return wrong neighbors.
func Unmarshal(b []byte) (*Index, error) {
	if len(b) < len(indexMagic)+4 || string(b[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("ann: not an index envelope")
	}
	want := binary.LittleEndian.Uint32(b[len(indexMagic):])
	payload := b[len(indexMagic)+4:]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("ann: index checksum mismatch (%08x != %08x)", got, want)
	}
	var st indexState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("ann: decoding index: %w", err)
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	return &Index{
		params:    st.Params,
		dim:       st.Dim,
		n:         st.N,
		built:     st.Built,
		appended:  st.Appended,
		centroids: st.Centroids,
		lists:     st.Lists,
	}, nil
}

// validate re-checks the structural invariants a well-formed index
// upholds by construction.
func (st *indexState) validate() error {
	if st.Dim <= 0 || st.N <= 0 {
		return fmt.Errorf("ann: decoded index has dim %d, n %d", st.Dim, st.N)
	}
	if len(st.Centroids) == 0 || len(st.Centroids) != len(st.Lists) {
		return fmt.Errorf("ann: decoded index has %d centroids for %d lists",
			len(st.Centroids), len(st.Lists))
	}
	if st.Appended < 0 || st.Built < 0 || st.Built+st.Appended != st.N {
		return fmt.Errorf("ann: decoded index counts built %d + appended %d != n %d",
			st.Built, st.Appended, st.N)
	}
	if st.Params.Nprobe <= 0 || st.Params.Nlist <= 0 ||
		st.Params.RebuildFraction <= 0 || st.Params.SplitIters <= 0 {
		return fmt.Errorf("ann: decoded index has unresolved params %+v", st.Params)
	}
	for c, cen := range st.Centroids {
		if len(cen) != st.Dim {
			return fmt.Errorf("ann: centroid %d has dim %d, want %d", c, len(cen), st.Dim)
		}
		for _, v := range cen {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ann: centroid %d has a non-finite coordinate", c)
			}
		}
	}
	seen := make([]bool, st.N)
	total := 0
	for c, l := range st.Lists {
		for _, id := range l {
			if id < 0 || int(id) >= st.N {
				return fmt.Errorf("ann: list %d holds out-of-range id %d (n %d)", c, id, st.N)
			}
			if seen[id] {
				return fmt.Errorf("ann: id %d appears in more than one list", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != st.N {
		return fmt.Errorf("ann: lists cover %d of %d ids", total, st.N)
	}
	return nil
}
