package ann

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// clusteredVecs fabricates n dim-dimensional embeddings from a mixture
// of Gaussian clusters — the shape GIN embeddings of real datasets take
// (datasets with similar schemas embed near each other). dup duplicates
// the first dup vectors verbatim at the tail, exercising tie-breaking.
func clusteredVecs(rng *rand.Rand, n, dim, clusters, dup int, noise float64) [][]float64 {
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for f := range centers[c] {
			centers[c][f] = rng.NormFloat64()
		}
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		c := centers[rng.Intn(clusters)]
		v := make([]float64, dim)
		for f := range v {
			v[f] = c[f] + noise*rng.NormFloat64()
		}
		vecs[i] = v
	}
	for i := 0; i < dup && i < n/2; i++ {
		vecs[n-1-i] = append([]float64(nil), vecs[i]...)
	}
	return vecs
}

// exactNearest is the brute-force oracle: every vector, sorted by
// (distance, id) — the same total order the index promises.
func exactNearest(vecs [][]float64, q []float64, k int) []Neighbor {
	all := make([]Neighbor, len(vecs))
	for i, v := range vecs {
		all[i] = Neighbor{Idx: i, Dist: math.Sqrt(sqDist(q, v))}
	}
	sort.Slice(all, func(a, b int) bool { return ranksBefore(all[a], all[b]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// recallAt measures recall@k of the index against the oracle over nq
// held-out queries drawn near the data distribution.
func recallAt(t *testing.T, ix *Index, vecs [][]float64, rng *rand.Rand, nq, k int) float64 {
	t.Helper()
	hits, want := 0, 0
	for qi := 0; qi < nq; qi++ {
		q := append([]float64(nil), vecs[rng.Intn(len(vecs))]...)
		for f := range q {
			q[f] += 0.05 * rng.NormFloat64()
		}
		truth := exactNearest(vecs, q, k)
		got := ix.Search(q, k)
		in := make(map[int]bool, len(got))
		for _, nb := range got {
			in[nb.Idx] = true
		}
		for _, nb := range truth {
			want++
			if in[nb.Idx] {
				hits++
			}
		}
	}
	return float64(hits) / float64(want)
}

// TestRecallDifferential is the pinning property test: over randomized
// sizes, dimensionalities, cluster structures, and duplicated
// embeddings, the default-parameter index must reach recall@k ≥ 0.95
// against the exact scan.
func TestRecallDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		n, dim, clusters, dup int
		noise                 float64
	}{
		{5000, 16, 40, 0, 0.25},
		{8000, 32, 64, 50, 0.2},
		{12000, 32, 25, 0, 0.3},
		{6000, 8, 30, 200, 0.25},
		{9000, 48, 80, 0, 0.15},
	}
	for _, tc := range cases {
		vecs := clusteredVecs(rng, tc.n, tc.dim, tc.clusters, tc.dup, tc.noise)
		ix := Build(vecs, Params{MinIndexSize: 1})
		if ix == nil {
			t.Fatalf("n=%d: Build returned nil", tc.n)
		}
		for _, k := range []int{2, 10} {
			r := recallAt(t, ix, vecs, rng, 60, k)
			if r < 0.95 {
				t.Errorf("n=%d dim=%d clusters=%d dup=%d: recall@%d = %.3f, want >= 0.95",
					tc.n, tc.dim, tc.clusters, tc.dup, k, r)
			}
		}
	}
}

// TestSearchDeterministicTieBreak pins the total order: duplicated
// vectors surface in id order, and two searches of the same query are
// identical.
func TestSearchDeterministicTieBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vecs := clusteredVecs(rng, 6000, 16, 30, 300, 0.2)
	ix := Build(vecs, Params{MinIndexSize: 1})
	for qi := 0; qi < 40; qi++ {
		// Query exactly on a duplicated vector: its two copies tie at
		// distance zero and must come back smaller-id first.
		qid := rng.Intn(200)
		q := vecs[qid]
		got := ix.Search(q, 4)
		for i := 1; i < len(got); i++ {
			if !ranksBefore(got[i-1], got[i]) {
				t.Fatalf("query %d: results out of total order at %d: %+v", qid, i, got)
			}
		}
		again := ix.Search(q, 4)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("query %d: search not deterministic: %+v vs %+v", qid, got, again)
			}
		}
	}
}

// TestBuildDeterministic pins that equal inputs produce identical
// indexes regardless of the parallel subtree scheduling.
func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vecs := clusteredVecs(rng, 7000, 24, 40, 20, 0.25)
	a := Build(vecs, Params{MinIndexSize: 1})
	b := Build(vecs, Params{MinIndexSize: 1})
	if a.Nlist() != b.Nlist() {
		t.Fatalf("nlist %d vs %d", a.Nlist(), b.Nlist())
	}
	for c := range a.lists {
		if len(a.lists[c]) != len(b.lists[c]) {
			t.Fatalf("list %d: %d vs %d ids", c, len(a.lists[c]), len(b.lists[c]))
		}
		for i := range a.lists[c] {
			if a.lists[c][i] != b.lists[c][i] {
				t.Fatalf("list %d differs at %d", c, i)
			}
		}
		for f := range a.centroids[c] {
			if a.centroids[c][f] != b.centroids[c][f] {
				t.Fatalf("centroid %d differs at %d", c, f)
			}
		}
	}
}

// TestMinIndexSizePolicy pins the exact-path policy boundary.
func TestMinIndexSizePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := clusteredVecs(rng, 100, 8, 4, 0, 0.2)
	if ix := Build(vecs, Params{}); ix != nil {
		t.Fatalf("default params indexed %d vectors (< DefaultMinIndexSize)", len(vecs))
	}
	if ix := Build(vecs, Params{MinIndexSize: -1}); ix != nil {
		t.Fatal("negative MinIndexSize still indexed")
	}
	if ix := Build(vecs, Params{MinIndexSize: 50}); ix == nil {
		t.Fatal("explicit MinIndexSize 50 did not index 100 vectors")
	}
	if !(Params{}).Indexable(DefaultMinIndexSize) {
		t.Fatal("DefaultMinIndexSize vectors should be indexable")
	}
	if (Params{}).Indexable(DefaultMinIndexSize - 1) {
		t.Fatal("below DefaultMinIndexSize should not be indexable")
	}
}

// TestExtendAppends pins the append path: ids keep their positions, new
// vectors are findable, staleness accounts, and the RebuildFraction
// threshold trips.
func TestExtendAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	base := clusteredVecs(rng, 5000, 16, 30, 0, 0.25)
	ix := Build(base, Params{MinIndexSize: 1})

	grown := append(append([][]float64(nil), base...), clusteredVecs(rng, 500, 16, 30, 0, 0.25)...)
	ext := ix.Extend(grown)
	if ext == nil {
		t.Fatal("Extend refused a 10% append")
	}
	if ext.Size() != 5500 || ext.Appended() != 500 {
		t.Fatalf("extended size %d appended %d", ext.Size(), ext.Appended())
	}
	if ix.Size() != 5000 || ix.Appended() != 0 {
		t.Fatalf("Extend mutated the receiver: size %d appended %d", ix.Size(), ix.Appended())
	}
	// Every appended vector must be findable at distance zero.
	for id := 5000; id < 5500; id += 25 {
		got := ext.Search(grown[id], 1)
		if len(got) != 1 || got[0].Dist != 0 {
			t.Fatalf("appended id %d not found: %+v", id, got)
		}
		if grown[got[0].Idx][0] != grown[id][0] {
			t.Fatalf("appended id %d found wrong vector %d", id, got[0].Idx)
		}
	}
	// Past RebuildFraction the extend must refuse.
	huge := append(append([][]float64(nil), base...), clusteredVecs(rng, 2500, 16, 30, 0, 0.25)...)
	if ix.Extend(huge) != nil {
		t.Fatal("Extend accepted a 33% append (RebuildFraction 0.25)")
	}
	// Shape mismatches refuse too.
	if ix.Extend(base[:4999]) != nil {
		t.Fatal("Extend accepted a shrunk set")
	}
	if ix.Extend(clusteredVecs(rng, 5100, 8, 4, 0, 0.2)) != nil {
		t.Fatal("Extend accepted a dim change")
	}
}

// TestSearchFiltered pins the filtered search used by incremental
// learning's nearest-reference lookup.
func TestSearchFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vecs := clusteredVecs(rng, 5000, 16, 30, 0, 0.25)
	ix := Build(vecs, Params{MinIndexSize: 1})
	allow := func(i int) bool { return i%3 == 0 }
	for qi := 0; qi < 30; qi++ {
		q := vecs[rng.Intn(len(vecs))]
		got := ix.SearchFiltered(q, 5, allow)
		for _, nb := range got {
			if nb.Idx%3 != 0 {
				t.Fatalf("filtered search returned disallowed id %d", nb.Idx)
			}
		}
		if len(got) == 0 {
			t.Fatalf("filtered search found nothing for query %d", qi)
		}
	}
	if got := ix.SearchFiltered(vecs[0], 3, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("all-false filter returned %d results", len(got))
	}
}

// TestSearchShortResults: k larger than the probed candidate pool
// returns what exists, nearest-first.
func TestSearchShortResults(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	vecs := clusteredVecs(rng, 64, 8, 4, 0, 0.3)
	ix := Build(vecs, Params{MinIndexSize: 1, Nlist: 16, Nprobe: 2})
	got := ix.Search(vecs[0], 64)
	if len(got) == 0 || len(got) >= 64 {
		t.Fatalf("nprobe-2 search of 16 cells returned %d of 64", len(got))
	}
}
