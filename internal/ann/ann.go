package ann

import (
	"fmt"
	"math"
	"sort"
)

// DefaultMinIndexSize is the vector count below which indexing is not
// worth its build and memory cost: the exact heap scan over a few
// thousand embeddings is already tens of microseconds, and keeping small
// candidate sets on the exact path keeps their recommendations
// bit-identical to the unindexed advisor.
const DefaultMinIndexSize = 4096

// Params is the index policy. The zero value resolves to defaults at
// build time, so an older persisted Config gains the index transparently.
type Params struct {
	// Nlist is the number of coarse-quantizer cells (posting lists).
	// 0 resolves to ~sqrt(n), clamped to [16, 4096].
	Nlist int
	// Nprobe is the number of nearest cells scanned per query. 0
	// resolves to max(8, round(sqrt(Nlist))) — probing grows with the
	// cell count but sublinearly, so the scanned fraction shrinks as the
	// corpus grows. Clamped to Nlist.
	Nprobe int
	// MinIndexSize is the smallest vector count worth indexing: below it
	// Build returns nil and callers keep the exact scan. 0 resolves to
	// DefaultMinIndexSize; negative disables indexing entirely.
	MinIndexSize int
	// RebuildFraction bounds staleness: once the vectors appended since
	// the last full build exceed this fraction of the total, Extend
	// returns nil and the caller rebuilds. 0 resolves to 0.25.
	RebuildFraction float64
	// SplitIters is the Lloyd iteration budget of each bisecting 2-means
	// split. 0 resolves to 6.
	SplitIters int
	// Seed offsets the deterministic strided sampling of the split
	// initialization. Any value works; equal seeds reproduce equal
	// indexes bit-for-bit.
	Seed int64
}

// DefaultParams returns the zero policy; every field resolves to its
// documented default when the index is built.
func DefaultParams() Params { return Params{} }

// resolve fills zero fields with their defaults for an n-vector set.
func (p Params) resolve(n int) Params {
	if p.Nlist <= 0 {
		p.Nlist = int(math.Sqrt(float64(n)))
		if p.Nlist < 16 {
			p.Nlist = 16
		}
		if p.Nlist > 4096 {
			p.Nlist = 4096
		}
	}
	if p.Nlist > n && n > 0 {
		p.Nlist = n
	}
	if p.Nprobe <= 0 {
		p.Nprobe = int(math.Round(math.Sqrt(float64(p.Nlist))))
		if p.Nprobe < 8 {
			p.Nprobe = 8
		}
	}
	if p.Nprobe > p.Nlist {
		p.Nprobe = p.Nlist
	}
	if p.MinIndexSize == 0 {
		p.MinIndexSize = DefaultMinIndexSize
	}
	if p.RebuildFraction <= 0 {
		p.RebuildFraction = 0.25
	}
	if p.SplitIters <= 0 {
		p.SplitIters = 6
	}
	return p
}

// Indexable reports whether an n-vector set is large enough to index
// under this policy.
func (p Params) Indexable(n int) bool {
	r := p.resolve(n)
	return r.MinIndexSize >= 0 && n >= r.MinIndexSize
}

// Neighbor is one search result: a vector id and its Euclidean distance
// to the query.
type Neighbor struct {
	Idx  int
	Dist float64
}

// Index is a built IVF index. It references — never owns — the vector
// set it was built over; the attached vectors must stay immutable for
// the index's lifetime (core serving snapshots guarantee this). All
// methods are safe for concurrent use once the index is built and
// attached: search mutates nothing, and Extend returns a fresh copy.
type Index struct {
	params    Params // resolved
	dim       int
	n         int // vectors covered; == len(vecs) when attached
	built     int // vectors present at the last full build
	appended  int // vectors appended by Extend since
	centroids [][]float64
	lists     [][]int32
	vecs      [][]float64 // attached vector set; nil after Unmarshal
	// data holds each cell's vectors as one contiguous row-major block
	// (data[c][j*dim:(j+1)*dim] is the vector lists[c][j]). Posting-list
	// scans stream it sequentially instead of pointer-chasing vecs —
	// at 10^6 entries that cache behavior is the difference between a
	// ~7x and a >10x win over the exact scan. Derived from vecs, so it
	// is rebuilt on Attach/Extend and never persisted.
	data [][]float64
}

// Size returns the number of vectors the index covers.
func (ix *Index) Size() int { return ix.n }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Nlist returns the number of coarse cells.
func (ix *Index) Nlist() int { return len(ix.lists) }

// Nprobe returns the number of cells scanned per query.
func (ix *Index) Nprobe() int { return ix.params.Nprobe }

// Appended returns the number of vectors appended since the last full
// build.
func (ix *Index) Appended() int { return ix.appended }

// StaleFraction returns appended/size — the share of the index assigned
// by cheap appends rather than the quantizer build.
func (ix *Index) StaleFraction() float64 {
	if ix.n == 0 {
		return 0
	}
	return float64(ix.appended) / float64(ix.n)
}

// Attach binds the index to its vector set after Unmarshal. The set
// must match the index exactly: same count, same dimensionality. It is
// the strict re-binding used when a persisted index meets recomputed
// embeddings; any mismatch is a corruption-grade error, not a rebuild
// hint.
func (ix *Index) Attach(vecs [][]float64) error {
	if len(vecs) != ix.n {
		return fmt.Errorf("ann: attaching %d vectors to an index of %d", len(vecs), ix.n)
	}
	for i, v := range vecs {
		if len(v) != ix.dim {
			return fmt.Errorf("ann: vector %d has dim %d, index has %d", i, len(v), ix.dim)
		}
	}
	ix.vecs = vecs
	ix.fillData()
	return nil
}

// fillData (re)derives the per-cell contiguous blocks from the attached
// vector set.
func (ix *Index) fillData() {
	ix.data = make([][]float64, len(ix.lists))
	for c, l := range ix.lists {
		block := make([]float64, len(l)*ix.dim)
		for j, id := range l {
			copy(block[j*ix.dim:(j+1)*ix.dim], ix.vecs[id])
		}
		ix.data[c] = block
	}
}

// Extend returns a copy of the index covering vecs, which must extend
// the index's current set: the first Size() vectors keep their ids and
// the new tail is appended to its nearest cells. It returns nil — the
// caller should Build fresh — when the shape does not match or when the
// appended share would exceed Params.RebuildFraction. The receiver is
// never mutated, so snapshots already serving it are unaffected.
func (ix *Index) Extend(vecs [][]float64) *Index {
	if len(vecs) < ix.n || ix.dim == 0 {
		return nil
	}
	for _, v := range vecs {
		if len(v) != ix.dim {
			return nil
		}
	}
	add := len(vecs) - ix.n
	if float64(ix.appended+add)/float64(len(vecs)) > ix.params.RebuildFraction {
		return nil
	}
	nx := &Index{
		params:    ix.params,
		dim:       ix.dim,
		n:         len(vecs),
		built:     ix.built,
		appended:  ix.appended + add,
		centroids: ix.centroids, // immutable after build: shared
		lists:     make([][]int32, len(ix.lists)),
		vecs:      vecs,
	}
	for c, l := range ix.lists {
		nx.lists[c] = append([]int32(nil), l...)
	}
	for id := ix.n; id < len(vecs); id++ {
		c := nx.nearestCell(vecs[id])
		nx.lists[c] = append(nx.lists[c], int32(id))
	}
	// Refill the scan blocks from the new vector set rather than carrying
	// the receiver's: after a fine-tuning publish the prefix embeddings
	// have drifted, and searches must measure distances against what the
	// snapshot actually serves.
	nx.fillData()
	return nx
}

// nearestCell returns the cell whose centroid is nearest to v, ties
// breaking toward the smaller cell id.
func (ix *Index) nearestCell(v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cen := range ix.centroids {
		if d := sqDist(v, cen); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Search returns the k approximately-nearest vectors to q in
// nearest-first order (distance, then id — the exact scan's total
// order). It may return fewer than k results when the probed cells hold
// fewer candidates; callers needing exactly k fall back to their exact
// scan.
func (ix *Index) Search(q []float64, k int) []Neighbor {
	return ix.SearchFiltered(q, k, nil)
}

// SearchFiltered is Search restricted to ids where allow returns true.
// A heavily restrictive filter can empty every probed cell; callers
// handle a short result with an exact fallback over the allowed set.
func (ix *Index) SearchFiltered(q []float64, k int, allow func(int) bool) []Neighbor {
	if ix.data == nil {
		panic("ann: searching a detached index (Attach after Unmarshal)")
	}
	if len(q) != ix.dim {
		panic(fmt.Sprintf("ann: query dim %d, index dim %d", len(q), ix.dim))
	}
	if k <= 0 {
		return nil
	}
	probes := ix.probeCells(q)
	h := make([]Neighbor, 0, k)
	for _, c := range probes {
		block := ix.data[c]
		for j, id32 := range ix.lists[c] {
			id := int(id32)
			if allow != nil && !allow(id) {
				continue
			}
			cand := Neighbor{Idx: id, Dist: sqDist(q, block[j*ix.dim:(j+1)*ix.dim])}
			if len(h) < k {
				h = append(h, cand)
				siftUp(h, len(h)-1)
				continue
			}
			if ranksBefore(cand, h[0]) {
				h[0] = cand
				siftDown(h, 0)
			}
		}
	}
	sort.Slice(h, func(a, b int) bool { return ranksBefore(h[a], h[b]) })
	for i := range h {
		h[i].Dist = math.Sqrt(h[i].Dist)
	}
	return h
}

// probeCells returns the Nprobe cells nearest to q, sorted by
// (distance, cell id). The same bounded max-heap selection as the
// posting-list scan keeps probing O(Nlist log Nprobe) and deterministic.
func (ix *Index) probeCells(q []float64) []int {
	np := ix.params.Nprobe
	if np > len(ix.centroids) {
		np = len(ix.centroids)
	}
	h := make([]Neighbor, 0, np)
	for c, cen := range ix.centroids {
		cand := Neighbor{Idx: c, Dist: sqDist(q, cen)}
		if len(h) < np {
			h = append(h, cand)
			siftUp(h, len(h)-1)
			continue
		}
		if ranksBefore(cand, h[0]) {
			h[0] = cand
			siftDown(h, 0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return ranksBefore(h[a], h[b]) })
	out := make([]int, len(h))
	for i, nb := range h {
		out[i] = nb.Idx
	}
	return out
}

// ranksBefore reports whether a precedes b in nearest-first order; the
// order is total (ties break toward the smaller id) so selection over
// duplicated vectors is deterministic.
func ranksBefore(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Idx < b.Idx
}

// siftUp and siftDown maintain a bounded max-heap under ranksBefore: the
// root is the worst candidate kept, the one a closer candidate evicts.
func siftUp(h []Neighbor, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !ranksBefore(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []Neighbor, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && ranksBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && ranksBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// sqDist is the squared Euclidean distance — the square root is
// monotonic, so selection on squared distances matches selection on
// metrics.EuclideanDistance, and it is applied once per returned result
// instead of once per candidate.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
