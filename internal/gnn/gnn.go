// Package gnn implements the Graph Isomorphism Network encoder of the
// paper's Section V-B: L GINConv layers (Eq. 5) followed by sum pooling.
// Each layer computes
//
//	h_i^{l+1} = f_θ( (1+ε)·h_i^l + Σ_{j∈N(i)} e'_{ji}·h_j^l )
//
// with f_θ a two-layer MLP, ε a learnable scalar per layer, and e'_{ji}
// the join correlation on the edge. The encoder maps a feature graph to a
// fixed-size dataset embedding; the deep-metric-learning loop in
// internal/core seeds embedding gradients and backpropagates through it.
package gnn

import (
	"math/rand"
	"sync"

	"repro/internal/feature"
	"repro/internal/nn"
)

// Config controls the encoder architecture.
type Config struct {
	// InDim is the vertex feature length (feature.Config.VertexDim()).
	InDim int
	// Hidden is the per-layer MLP hidden width and message size.
	Hidden int
	// OutDim is the embedding length.
	OutDim int
	// Layers is the number of GINConv layers (L).
	Layers int
	Seed   int64
}

// DefaultConfig returns the architecture used by AutoCE.
func DefaultConfig(inDim int) Config {
	return Config{InDim: inDim, Hidden: 64, OutDim: 32, Layers: 2, Seed: 7}
}

// ginLayer is one GINConv: aggregation then a two-layer MLP.
type ginLayer struct {
	onePlusEps *nn.Tensor // 1×1 learnable (1+ε)
	mlp        *nn.MLP
}

// Encoder is the trained (or trainable) GIN network G.
type Encoder struct {
	cfg    Config
	layers []*ginLayer

	// tapes caches one recorded autodiff tape per training graph: every
	// DML epoch revisits the same graphs, so after the first visit a
	// forward/backward pass is a zero-allocation replay. The input leaves
	// are refreshed from the graph before each replay, so callers that
	// mutate a graph in place still see current values. Only the training
	// loop (TapeFor) populates the cache — its lifetime is bounded by the
	// RCS the advisor pins anyway; inference (Embed) never touches it, so
	// arbitrary one-shot graphs are never retained.
	mu    sync.Mutex
	tapes map[*feature.Graph]*Tape

	// inferPools maps vertex count -> *sync.Pool of inference tapes for
	// Embed. A tape's replay buffers are private to whichever goroutine
	// checked it out, so any number of goroutines can embed concurrently
	// as long as the parameters themselves are not being trained at the
	// same time (the advisor's serving snapshots guarantee that by
	// freezing a parameter copy). Vertex count is the only shape degree
	// of freedom — the feature dimension is fixed by the architecture —
	// and a sync.Map keeps the warm path free of shared locks: lookups
	// hit the map's read-only fast path, and sync.Pool.Get itself works
	// from per-P caches.
	inferPools sync.Map
}

// Tape couples a recorded tape with the input leaves it reads from.
type Tape struct {
	g      *feature.Graph
	x, adj *nn.Tensor
	tape   *nn.Tape
}

// Forward refreshes the input leaves from the graph and replays the tape,
// returning the 1×OutDim embedding tensor.
func (gt *Tape) Forward() *nn.Tensor {
	n := gt.x.C
	for i, row := range gt.g.V {
		copy(gt.x.V[i*n:(i+1)*n], row)
	}
	m := gt.adj.C
	for i, row := range gt.g.E {
		copy(gt.adj.V[i*m:(i+1)*m], row)
	}
	return gt.tape.Forward()
}

// Backward seeds the embedding gradient and replays the tape backward.
func (gt *Tape) Backward(grad []float64) { gt.tape.Backward(grad) }

// New builds a GIN encoder with Xavier-initialized weights and ε = 0.
func New(cfg Config) *Encoder {
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Encoder{cfg: cfg, tapes: map[*feature.Graph]*Tape{}}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.OutDim
		}
		eps := nn.NewParam(1, 1)
		eps.V[0] = 1 // (1+ε) with ε=0
		e.layers = append(e.layers, &ginLayer{
			onePlusEps: eps,
			mlp:        nn.NewMLP(rng, []int{in, cfg.Hidden, out}, nn.ActReLU, nn.ActReLU),
		})
		in = out
	}
	return e
}

// Params returns all trainable tensors.
func (e *Encoder) Params() []*nn.Tensor {
	var out []*nn.Tensor
	for _, l := range e.layers {
		out = append(out, l.onePlusEps)
		out = append(out, l.mlp.Params()...)
	}
	return out
}

// InDim returns the expected per-vertex feature length.
func (e *Encoder) InDim() int { return e.cfg.InDim }

// OutDim returns the embedding length.
func (e *Encoder) OutDim() int { return e.cfg.OutDim }

// Forward encodes a feature graph into a 1×OutDim embedding tensor that is
// connected to the autodiff graph (call BackwardWithGrad on it to train).
func (e *Encoder) Forward(g *feature.Graph) *nn.Tensor {
	h := nn.FromRows(g.V)
	adj := nn.FromRows(g.E) // constant n×n aggregation matrix
	for _, l := range e.layers {
		agg := nn.Add(nn.ScaleByScalar(h, l.onePlusEps), nn.MatMul(adj, h))
		h = l.mlp.Forward(agg)
	}
	return nn.SumRows(h)
}

// buildTape records a fresh tape for g with dedicated input leaves.
func (e *Encoder) buildTape(g *feature.Graph) *Tape {
	n := g.NumVertices()
	dim := 0
	if n > 0 {
		dim = len(g.V[0])
	}
	x := nn.Zeros(n, dim)
	adj := nn.Zeros(n, n)
	h := x
	for _, l := range e.layers {
		agg := nn.Add(nn.ScaleByScalar(h, l.onePlusEps), nn.MatMul(adj, h))
		h = l.mlp.Forward(agg)
	}
	gt := &Tape{g: g, x: x, adj: adj, tape: nn.NewTape(nn.SumRows(h))}
	return gt
}

// TapeFor returns the recorded forward/backward tape of g, building it on
// first use. Replaying the tape (Forward, then Backward with the loss
// gradient of the 1×OutDim embedding) is equivalent to Forward +
// BackwardWithGrad but allocation-free in steady state; parameter
// gradients accumulate across tapes exactly as in the dynamic path.
//
// Only the map lookup is synchronized: replaying a tape mutates its
// recorded buffers, so concurrent replays of the same graph must be
// serialized by the caller (the DML loop is single-goroutine; Embed uses
// its own pooled tapes and never touches this cache).
func (e *Encoder) TapeFor(g *feature.Graph) *Tape {
	e.mu.Lock()
	gt, ok := e.tapes[g]
	if !ok {
		gt = e.buildTape(g)
		e.tapes[g] = gt
	}
	e.mu.Unlock()
	return gt
}

// inferTape is a pooled inference replay: blank input leaves plus a tape
// recorded over them. Unlike the training tapes it is not bound to a
// graph; Embed copies any same-shape graph into the leaves before replay.
type inferTape struct {
	x, adj *nn.Tensor
	tape   *nn.Tape
}

// inferPool returns (building on first use) the pool of inference tapes
// for graphs with n vertices.
func (e *Encoder) inferPool(n int) *sync.Pool {
	if p, ok := e.inferPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := e.inferPools.LoadOrStore(n, &sync.Pool{New: func() any {
		x := nn.Zeros(n, e.cfg.InDim)
		adj := nn.Zeros(n, n)
		h := x
		for _, l := range e.layers {
			agg := nn.Add(nn.ScaleByScalar(h, l.onePlusEps), nn.MatMul(adj, h))
			h = l.mlp.Forward(agg)
		}
		return &inferTape{x: x, adj: adj, tape: nn.NewTape(nn.SumRows(h))}
	}})
	return p.(*sync.Pool)
}

// Embed encodes a feature graph and returns the embedding as a plain
// vector (no gradient bookkeeping needed by callers). It replays a pooled
// per-shape inference tape — each call owns its tape's buffers for the
// duration, so concurrent Embed calls never share mutable state and
// steady-state inference rebuilds no autodiff graph. Graphs whose feature
// dimension does not match the architecture (only constructed by tests)
// fall back to the transient dynamic path.
func (e *Encoder) Embed(g *feature.Graph) []float64 {
	n := g.NumVertices()
	if n == 0 || len(g.V[0]) != e.cfg.InDim {
		return e.Forward(g).Row(0)
	}
	pool := e.inferPool(n)
	it := pool.Get().(*inferTape)
	for i, row := range g.V {
		copy(it.x.V[i*it.x.C:(i+1)*it.x.C], row)
	}
	for i, row := range g.E {
		copy(it.adj.V[i*it.adj.C:(i+1)*it.adj.C], row)
	}
	out := it.tape.Forward().Row(0) // Row copies, so the tape can be reused
	pool.Put(it)
	return out
}

// EmbedAll encodes a slice of graphs.
func (e *Encoder) EmbedAll(gs []*feature.Graph) [][]float64 {
	out := make([][]float64, len(gs))
	for i, g := range gs {
		out[i] = e.Embed(g)
	}
	return out
}
