// Package gnn implements the Graph Isomorphism Network encoder of the
// paper's Section V-B: L GINConv layers (Eq. 5) followed by sum pooling.
// Each layer computes
//
//	h_i^{l+1} = f_θ( (1+ε)·h_i^l + Σ_{j∈N(i)} e'_{ji}·h_j^l )
//
// with f_θ a two-layer MLP, ε a learnable scalar per layer, and e'_{ji}
// the join correlation on the edge. The encoder maps a feature graph to a
// fixed-size dataset embedding; the deep-metric-learning loop in
// internal/core seeds embedding gradients and backpropagates through it.
package gnn

import (
	"math/rand"

	"repro/internal/feature"
	"repro/internal/nn"
)

// Config controls the encoder architecture.
type Config struct {
	// InDim is the vertex feature length (feature.Config.VertexDim()).
	InDim int
	// Hidden is the per-layer MLP hidden width and message size.
	Hidden int
	// OutDim is the embedding length.
	OutDim int
	// Layers is the number of GINConv layers (L).
	Layers int
	Seed   int64
}

// DefaultConfig returns the architecture used by AutoCE.
func DefaultConfig(inDim int) Config {
	return Config{InDim: inDim, Hidden: 64, OutDim: 32, Layers: 2, Seed: 7}
}

// ginLayer is one GINConv: aggregation then a two-layer MLP.
type ginLayer struct {
	onePlusEps *nn.Tensor // 1×1 learnable (1+ε)
	mlp        *nn.MLP
}

// Encoder is the trained (or trainable) GIN network G.
type Encoder struct {
	cfg    Config
	layers []*ginLayer
}

// New builds a GIN encoder with Xavier-initialized weights and ε = 0.
func New(cfg Config) *Encoder {
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Encoder{cfg: cfg}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.OutDim
		}
		eps := nn.NewParam(1, 1)
		eps.V[0] = 1 // (1+ε) with ε=0
		e.layers = append(e.layers, &ginLayer{
			onePlusEps: eps,
			mlp:        nn.NewMLP(rng, []int{in, cfg.Hidden, out}, nn.ActReLU, nn.ActReLU),
		})
		in = out
	}
	return e
}

// Params returns all trainable tensors.
func (e *Encoder) Params() []*nn.Tensor {
	var out []*nn.Tensor
	for _, l := range e.layers {
		out = append(out, l.onePlusEps)
		out = append(out, l.mlp.Params()...)
	}
	return out
}

// OutDim returns the embedding length.
func (e *Encoder) OutDim() int { return e.cfg.OutDim }

// Forward encodes a feature graph into a 1×OutDim embedding tensor that is
// connected to the autodiff graph (call BackwardWithGrad on it to train).
func (e *Encoder) Forward(g *feature.Graph) *nn.Tensor {
	n := g.NumVertices()
	h := nn.FromRows(g.V)
	adj := nn.FromRows(g.E) // constant n×n aggregation matrix
	_ = n
	for _, l := range e.layers {
		agg := nn.Add(nn.ScaleByScalar(h, l.onePlusEps), nn.MatMul(adj, h))
		h = l.mlp.Forward(agg)
	}
	return nn.SumRows(h)
}

// Embed encodes a feature graph and returns the embedding as a plain
// vector (no gradient bookkeeping needed by callers).
func (e *Encoder) Embed(g *feature.Graph) []float64 {
	return e.Forward(g).Row(0)
}

// EmbedAll encodes a slice of graphs.
func (e *Encoder) EmbedAll(gs []*feature.Graph) [][]float64 {
	out := make([][]float64, len(gs))
	for i, g := range gs {
		out[i] = e.Embed(g)
	}
	return out
}
