package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestTapeMatchesDynamic verifies the cached per-graph tape reproduces the
// dynamic Forward/BackwardWithGrad path exactly: same embeddings before
// and after a parameter update, same parameter gradients.
func TestTapeMatchesDynamic(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Hidden = 8
	cfg.OutDim = 4
	encTape := New(cfg)
	encDyn := New(cfg) // same seed: identical initialization
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 4, 6)

	seed := make([]float64, cfg.OutDim)
	for i := range seed {
		seed[i] = 0.1 * float64(i+1)
	}
	optTape := nn.NewAdam(encTape.Params(), 1e-2)
	optDyn := nn.NewAdam(encDyn.Params(), 1e-2)

	for step := 0; step < 5; step++ {
		tp := encTape.TapeFor(g)
		embTape := tp.Forward().Row(0)
		tp.Backward(seed)
		optTape.Step()

		out := encDyn.Forward(g)
		embDyn := out.Row(0)
		out.BackwardWithGrad(seed)
		optDyn.Step()

		for i := range embTape {
			if math.Abs(embTape[i]-embDyn[i]) > 1e-12 {
				t.Fatalf("step %d: embedding %d diverged: %g vs %g", step, i, embTape[i], embDyn[i])
			}
		}
	}
	pt, pd := encTape.Params(), encDyn.Params()
	for pi := range pt {
		for i := range pt[pi].V {
			if math.Abs(pt[pi].V[i]-pd[pi].V[i]) > 1e-12 {
				t.Fatalf("param %d element %d diverged: %g vs %g", pi, i, pt[pi].V[i], pd[pi].V[i])
			}
		}
	}
}

// TestTapeStepZeroAlloc asserts a steady-state DML-style train step over a
// cached graph tape performs zero heap allocations.
func TestTapeStepZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(16)
	enc := New(cfg)
	rng := rand.New(rand.NewSource(22))
	g := randomGraph(rng, 6, 16)
	opt := nn.NewAdam(enc.Params(), 1e-3)
	seed := make([]float64, cfg.OutDim)
	for i := range seed {
		seed[i] = 0.01
	}
	tp := enc.TapeFor(g)
	tp.Forward()
	tp.Backward(seed)
	opt.Step()
	allocs := testing.AllocsPerRun(20, func() {
		tp.Forward()
		tp.Backward(seed)
		opt.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state encoder tape step allocates %.1f times per op, want 0", allocs)
	}
}
