package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/feature"
	"repro/internal/nn"
)

func randomGraph(rng *rand.Rand, n, dim int) *feature.Graph {
	g := &feature.Graph{Name: "g"}
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		g.V = append(g.V, row)
	}
	g.E = make([][]float64, n)
	for i := range g.E {
		g.E[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				w := rng.Float64()
				g.E[i][j], g.E[j][i] = w, w
			}
		}
	}
	return g
}

func TestForwardShape(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.Seed = 1
	enc := New(cfg)
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 7} {
		g := randomGraph(rng, n, 12)
		emb := enc.Embed(g)
		if len(emb) != cfg.OutDim {
			t.Fatalf("n=%d: embedding length %d, want %d", n, len(emb), cfg.OutDim)
		}
		for _, v := range emb {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("embedding contains %g", v)
			}
		}
	}
}

func TestPermutationInvariance(t *testing.T) {
	// Sum pooling over GIN layers must be invariant to vertex reordering
	// (with the adjacency permuted consistently).
	cfg := DefaultConfig(8)
	cfg.Seed = 3
	enc := New(cfg)
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 5, 8)

	perm := []int{3, 1, 4, 0, 2}
	pg := &feature.Graph{Name: "p"}
	pg.V = make([][]float64, 5)
	pg.E = make([][]float64, 5)
	for i := range perm {
		pg.V[i] = g.V[perm[i]]
		pg.E[i] = make([]float64, 5)
	}
	for i := range perm {
		for j := range perm {
			pg.E[i][j] = g.E[perm[i]][perm[j]]
		}
	}
	a := enc.Embed(g)
	b := enc.Embed(pg)
	for f := range a {
		if math.Abs(a[f]-b[f]) > 1e-9 {
			t.Fatalf("embedding not permutation invariant at %d: %g vs %g", f, a[f], b[f])
		}
	}
}

func TestEdgeWeightsMatter(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Seed = 5
	enc := New(cfg)
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 4, 6)
	a := enc.Embed(g)
	// Zeroing the edges must change the embedding (unless there were no
	// edges to begin with, which randomGraph makes unlikely at n=4).
	hadEdge := false
	for i := range g.E {
		for j := range g.E[i] {
			if g.E[i][j] != 0 {
				hadEdge = true
				g.E[i][j] = 0
			}
		}
	}
	if !hadEdge {
		t.Skip("random graph had no edges")
	}
	b := enc.Embed(g)
	diff := 0.0
	for f := range a {
		diff += math.Abs(a[f] - b[f])
	}
	if diff < 1e-9 {
		t.Fatal("removing all edges did not change the embedding")
	}
}

func TestGradientsFlowToAllParams(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Hidden = 8
	cfg.OutDim = 4
	cfg.Seed = 7
	enc := New(cfg)
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 3, 6)

	out := enc.Forward(g)
	seed := make([]float64, cfg.OutDim)
	for i := range seed {
		seed[i] = 1
	}
	out.BackwardWithGrad(seed)

	for pi, p := range enc.Params() {
		var norm float64
		for _, gv := range p.G {
			norm += math.Abs(gv)
		}
		if norm == 0 {
			t.Errorf("param %d received zero gradient", pi)
		}
	}
}

func TestEncoderGradientMatchesNumeric(t *testing.T) {
	// End-to-end finite-difference check through aggregation, ε, and the
	// layer MLPs, using a simple scalar objective (sum of embedding).
	cfg := Config{InDim: 4, Hidden: 5, OutDim: 3, Layers: 2, Seed: 9}
	enc := New(cfg)
	rng := rand.New(rand.NewSource(10))
	g := randomGraph(rng, 3, 4)

	objective := func() float64 {
		emb := enc.Embed(g)
		var s float64
		for _, v := range emb {
			s += v * v
		}
		return s
	}
	params := enc.Params()
	for _, p := range params {
		p.ZeroGrad()
	}
	out := enc.Forward(g)
	emb := out.Row(0)
	grad := make([]float64, len(emb))
	for i := range grad {
		grad[i] = 2 * emb[i]
	}
	out.BackwardWithGrad(grad)

	const h = 1e-5
	for pi, p := range params {
		for i := 0; i < len(p.V); i += 7 { // spot-check every 7th element
			old := p.V[i]
			p.V[i] = old + h
			up := objective()
			p.V[i] = old - h
			down := objective()
			p.V[i] = old
			want := (up - down) / (2 * h)
			got := p.G[i]
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: grad %g, numeric %g", pi, i, got, want)
			}
		}
	}
}

func TestTrainingSeparatesTwoClasses(t *testing.T) {
	// Minimal metric-learning sanity: pull two same-class graphs together
	// and push a different-class graph away, by hand-rolled gradient
	// descent on pairwise distances.
	cfg := Config{InDim: 5, Hidden: 8, OutDim: 4, Layers: 2, Seed: 11}
	enc := New(cfg)
	rng := rand.New(rand.NewSource(12))
	a1 := randomGraph(rng, 3, 5)
	a2 := a1.Clone()
	for i := range a2.V {
		for f := range a2.V[i] {
			a2.V[i][f] += rng.NormFloat64() * 0.05
		}
	}
	b := randomGraph(rng, 3, 5)

	dist := func(x, y []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	opt := nn.NewAdam(enc.Params(), 1e-3)
	for iter := 0; iter < 60; iter++ {
		oa1 := enc.Forward(a1)
		oa2 := enc.Forward(a2)
		ob := enc.Forward(b)
		e1, e2, e3 := oa1.Row(0), oa2.Row(0), ob.Row(0)
		dPos := dist(e1, e2) + 1e-8
		dNeg := dist(e1, e3) + 1e-8
		// d(dPos - dNeg)/d(e1) etc.
		g1 := make([]float64, len(e1))
		g2 := make([]float64, len(e1))
		g3 := make([]float64, len(e1))
		for f := range e1 {
			g1[f] = (e1[f]-e2[f])/dPos - (e1[f]-e3[f])/dNeg
			g2[f] = -(e1[f] - e2[f]) / dPos
			g3[f] = (e1[f] - e3[f]) / dNeg
		}
		oa1.BackwardWithGrad(g1)
		oa2.BackwardWithGrad(g2)
		ob.BackwardWithGrad(g3)
		opt.Step()
	}
	dPos := dist(enc.Embed(a1), enc.Embed(a2))
	dNeg := dist(enc.Embed(a1), enc.Embed(b))
	if dPos >= dNeg {
		t.Fatalf("metric training failed: positive dist %g >= negative dist %g", dPos, dNeg)
	}
}
