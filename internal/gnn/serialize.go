package gnn

import "fmt"

// State is the serializable form of an Encoder: the architecture plus the
// flattened parameter values, in Params() order.
type State struct {
	Config Config
	Params [][]float64
}

// State captures the encoder for persistence.
func (e *Encoder) State() State {
	st := State{Config: e.cfg}
	for _, p := range e.Params() {
		st.Params = append(st.Params, append([]float64(nil), p.V...))
	}
	return st
}

// FromState reconstructs an encoder from a captured state.
func FromState(st State) (*Encoder, error) {
	e := New(st.Config)
	params := e.Params()
	if len(params) != len(st.Params) {
		return nil, fmt.Errorf("gnn: state has %d parameter tensors, architecture needs %d",
			len(st.Params), len(params))
	}
	for i, p := range params {
		if len(p.V) != len(st.Params[i]) {
			return nil, fmt.Errorf("gnn: parameter %d has %d values, want %d",
				i, len(st.Params[i]), len(p.V))
		}
		copy(p.V, st.Params[i])
	}
	return e, nil
}
