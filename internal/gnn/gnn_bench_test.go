package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func BenchmarkEncoderForward(b *testing.B) {
	cfg := DefaultConfig(162) // feature.DefaultConfig().VertexDim()
	enc := New(cfg)
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5, 162)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Embed(g)
	}
}

func BenchmarkEncoderTrainStep(b *testing.B) {
	cfg := DefaultConfig(162)
	enc := New(cfg)
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 5, 162)
	opt := nn.NewAdam(enc.Params(), 1e-3)
	seed := make([]float64, cfg.OutDim)
	for i := range seed {
		seed[i] = 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := enc.Forward(g)
		out.BackwardWithGrad(seed)
		opt.Step()
	}
}
