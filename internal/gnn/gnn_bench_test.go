package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// BenchmarkGINEncoderForward measures inference on the pooled per-shape
// tape path Embed runs on (the advisor's serving hot path).
func BenchmarkGINEncoderForward(b *testing.B) {
	cfg := DefaultConfig(162) // feature.DefaultConfig().VertexDim()
	enc := New(cfg)
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5, 162)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Embed(g)
	}
}

// BenchmarkGINEncoderForwardDynamic is the same encode on the transient
// dynamic-graph path, for comparison with the pooled replay above.
func BenchmarkGINEncoderForwardDynamic(b *testing.B) {
	cfg := DefaultConfig(162)
	enc := New(cfg)
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5, 162)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Forward(g).Row(0)
	}
}

// BenchmarkGINTrainStep is the dynamic-graph path: one forward +
// backward + Adam step rebuilding the autodiff graph every iteration.
func BenchmarkGINTrainStep(b *testing.B) {
	cfg := DefaultConfig(162)
	enc := New(cfg)
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 5, 162)
	opt := nn.NewAdam(enc.Params(), 1e-3)
	seed := make([]float64, cfg.OutDim)
	for i := range seed {
		seed[i] = 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := enc.Forward(g)
		out.BackwardWithGrad(seed)
		opt.Step()
	}
}

// BenchmarkGINTapeTrainStep is the same train step on the cached
// per-graph tape — the path the DML loop takes after its first epoch.
func BenchmarkGINTapeTrainStep(b *testing.B) {
	cfg := DefaultConfig(162)
	enc := New(cfg)
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 5, 162)
	opt := nn.NewAdam(enc.Params(), 1e-3)
	seed := make([]float64, cfg.OutDim)
	for i := range seed {
		seed[i] = 0.01
	}
	tp := enc.TapeFor(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Forward()
		tp.Backward(seed)
		opt.Step()
	}
}
