package gnn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/feature"
)

// TestEmbedMatchesDynamicForward pins the pooled inference tape to the
// dynamic autodiff path across shapes, including repeated replays of the
// same pooled tape.
func TestEmbedMatchesDynamicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{InDim: 5, Hidden: 8, OutDim: 4, Layers: 2, Seed: 9}
	e := New(cfg)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 1+rng.Intn(6), cfg.InDim)
		want := e.Forward(g).Row(0)
		for rep := 0; rep < 3; rep++ {
			got := e.Embed(g)
			for f := range want {
				if math.Abs(got[f]-want[f]) > 1e-12 {
					t.Fatalf("trial %d rep %d: pooled embed differs at %d: %g vs %g",
						trial, rep, f, got[f], want[f])
				}
			}
		}
	}
}

// TestEmbedConcurrent runs many goroutines embedding overlapping graph
// sets through one encoder; with -race this verifies the pooled inference
// path shares no mutable state between calls.
func TestEmbedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := Config{InDim: 6, Hidden: 8, OutDim: 4, Layers: 2, Seed: 11}
	e := New(cfg)
	graphs := make([]*feature.Graph, 8)
	want := make([][]float64, len(graphs))
	for i := range graphs {
		graphs[i] = randomGraph(rng, 1+i%4, cfg.InDim)
		want[i] = e.Forward(graphs[i]).Row(0)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				gi := (w + i) % len(graphs)
				got := e.Embed(graphs[gi])
				for f := range got {
					if math.Abs(got[f]-want[gi][f]) > 1e-12 {
						errs <- "concurrent embed produced a wrong value"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
