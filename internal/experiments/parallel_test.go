package experiments

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/testbed"
)

// TestParallelCorpusTrainingDeterministic proves the (dataset, model)
// worker pool produces byte-identical training outcomes to the serial
// path: every model trains from its own deterministically seeded RNG over
// read-only shared inputs, so scheduling order cannot leak into the
// results. Accuracy labels (Sa) and the underlying mean Q-errors must
// match bit for bit; efficiency labels (Se) are measured wall-clock
// latency and are inherently nondeterministic on both paths, so they are
// excluded.
func TestParallelCorpusTrainingDeterministic(t *testing.T) {
	p := datagen.DefaultParams(0)
	p.MinRows, p.MaxRows = 120, 250
	ds, err := datagen.GenerateCorpus(3, 3, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfgFor := func(i int) testbed.Config {
		return testbed.Config{NumQueries: 40, TrainFrac: 0.55, SampleRows: 200, Fast: true, Seed: 7 + int64(i)*97}
	}

	// Serial reference path.
	serial := make([]*testbed.Label, len(ds))
	for i, d := range ds {
		res, err := testbed.Run(d, cfgFor(i))
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res.Label
		engine.InvalidateIndex(d)
	}

	// Parallel path over the same datasets: prepare, fan the (dataset,
	// model) jobs over a pool wider than the job diversity, finish.
	preps := make([]*testbed.Prepared, len(ds))
	for i, d := range ds {
		if preps[i], err = testbed.Prepare(d, cfgFor(i)); err != nil {
			t.Fatal(err)
		}
		engine.InvalidateIndex(d)
	}
	if err := testbed.TrainAll(preps, 8, nil); err != nil {
		t.Fatal(err)
	}
	for i := range preps {
		res, err := preps[i].Finish()
		if err != nil {
			t.Fatal(err)
		}
		par := res.Label
		if len(par.Sa) != len(serial[i].Sa) {
			t.Fatalf("dataset %d: Sa length %d vs %d", i, len(par.Sa), len(serial[i].Sa))
		}
		for j := range par.Sa {
			if par.Sa[j] != serial[i].Sa[j] {
				t.Fatalf("dataset %d model %d: parallel Sa %v differs from serial %v",
					i, j, par.Sa[j], serial[i].Sa[j])
			}
		}
		for j := range par.Perfs {
			if par.Perfs[j].QErrorMean != serial[i].Perfs[j].QErrorMean {
				t.Fatalf("dataset %d model %d: parallel QErrorMean %v differs from serial %v",
					i, j, par.Perfs[j].QErrorMean, serial[i].Perfs[j].QErrorMean)
			}
		}
	}
}
