package experiments

import (
	"strings"
	"testing"
)

// quickCorpus is shared across tests in this package (building it labels
// 32 datasets, the dominant cost).
var quickCorpusCache *Corpus

func quickCorpus(t *testing.T) *Corpus {
	t.Helper()
	if quickCorpusCache != nil {
		return quickCorpusCache
	}
	c, err := BuildCorpus(QuickScale())
	if err != nil {
		t.Fatalf("BuildCorpus: %v", err)
	}
	quickCorpusCache = c
	return c
}

func TestBuildCorpus(t *testing.T) {
	c := quickCorpus(t)
	sc := QuickScale()
	if len(c.Train) != sc.TrainDatasets || len(c.Test) != sc.TestDatasets {
		t.Fatalf("corpus sizes %d/%d", len(c.Train), len(c.Test))
	}
	for _, ld := range append(append([]*LabeledDataset(nil), c.Train...), c.Test...) {
		if ld.Label == nil || ld.Graph == nil {
			t.Fatal("unlabeled corpus entry")
		}
		if len(ld.Label.Sa) == 0 {
			t.Fatal("empty label")
		}
	}
}

func TestFig1(t *testing.T) {
	sc := QuickScale()
	res, err := Fig1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 3 {
		t.Fatalf("Fig1 has %d models", len(res.Models))
	}
	out := res.Render()
	if !strings.Contains(out, "DeepDB") || !strings.Contains(out, "Figure 1") {
		t.Fatalf("render missing content:\n%s", out)
	}
	for i := range res.Models {
		if res.QErrIMDB[i] < 1 || res.QErrPower[i] < 1 {
			t.Fatal("Q-error below 1")
		}
		if res.LatencyPower[i] <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestFig7LossComparison(t *testing.T) {
	c := quickCorpus(t)
	res, err := Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WeightedMean) != 3 || len(res.BasicMean) != 3 {
		t.Fatal("Fig7 incomplete")
	}
	for i := range res.WeightedMean {
		if res.WeightedMean[i] < 0 || res.BasicMean[i] < 0 {
			t.Fatal("negative D-error")
		}
	}
	_ = res.Render()
}

func TestFig8SelectionStrategies(t *testing.T) {
	c := quickCorpus(t)
	res, err := Fig8(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DErrorMean) != len(res.Weights) {
		t.Fatal("Fig8 rows incomplete")
	}
	out := res.Render()
	for _, s := range res.Selectors {
		if !strings.Contains(out, s) {
			t.Fatalf("render missing selector %s", s)
		}
	}
	// AutoCE should not be the worst selector on average at wa=0.9.
	wi := 1 // wa = 0.9
	autoce := res.DErrorMean[wi][0]
	worst := autoce
	for _, d := range res.DErrorMean[wi] {
		if d > worst {
			worst = d
		}
	}
	if autoce == worst && worst > 0 {
		t.Fatalf("AutoCE is the worst selector at wa=0.9: %v", res.DErrorMean[wi])
	}
}

func TestFig9FixedModels(t *testing.T) {
	c := quickCorpus(t)
	res, err := Fig9(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 1+9 {
		t.Fatalf("Fig9 has %d columns", len(res.Names))
	}
	_ = res.Render()
}

func TestFig11aDMLAblation(t *testing.T) {
	c := quickCorpus(t)
	res, err := Fig11a(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AutoCE) != 3 || len(res.WithoutDML) != 3 {
		t.Fatal("Fig11a incomplete")
	}
	_ = res.Render()
}

func TestFig13OnlineAdapting(t *testing.T) {
	c := quickCorpus(t)
	res, err := Fig13(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drifted == 0 {
		t.Fatal("no drifted datasets found")
	}
	_ = res.Render()
}

func TestTableI(t *testing.T) {
	res, err := TableI(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("Table I has %d rows", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "IMDB-light") || !strings.Contains(out, "Synthetic") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestTableIII(t *testing.T) {
	c := quickCorpus(t)
	res, err := TableIII(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 4 {
		t.Fatalf("Table III has %d columns", len(res.Names))
	}
	for wi := range res.Weights {
		// At least one fixed model must have D-error 0 (the optimum).
		hasZero := false
		for i := 1; i < len(res.Names); i++ {
			if res.DError[wi][i] == 0 {
				hasZero = true
			}
		}
		if !hasZero {
			t.Fatalf("no optimal fixed model at wa=%.1f: %v", res.Weights[wi], res.DError[wi])
		}
	}
	_ = res.Render()
}

func TestTableIV(t *testing.T) {
	c := quickCorpus(t)
	res, err := TableIV(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ks) != 5 {
		t.Fatal("Table IV incomplete")
	}
	_ = res.Render()
}

func TestStatsHelper(t *testing.T) {
	s := Stats([]float64{0, 0.1, 0.2, 0.3, 0.4})
	if s.Mean != 0.2 || s.Max != 0.4 {
		t.Fatalf("stats %+v", s)
	}
	if z := Stats(nil); z.Mean != 0 {
		t.Fatal("empty stats")
	}
}

func TestEvalSelectorFailures(t *testing.T) {
	c := quickCorpus(t)
	derrs := EvalSelector(c.Test, 0.9, func(*LabeledDataset) int { return -1 })
	for _, d := range derrs {
		if d <= 0 {
			t.Fatal("failed selection should be penalized")
		}
	}
}
