package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// ---------------------------------------------------------------- Figure 1

// Fig1Result reproduces the motivation experiment: per-model Q-error on an
// IMDB-like multi-table dataset and a Power-like single-table dataset, and
// inference latency on the Power-like dataset.
type Fig1Result struct {
	Models       []string
	QErrIMDB     []float64
	QErrPower    []float64
	LatencyPower []float64 // seconds
}

// Fig1 runs the motivation experiment with the three models the paper
// plots (DeepDB, NeuroCard, MSCN).
func Fig1(sc Scale) (*Fig1Result, error) {
	imdb := datagen.IMDBLike(sc.Seed)
	power := datagen.PowerLike(sc.Seed)
	li, err := testbed.LabelOnly(imdb, sc.TestbedConfig(sc.Seed+1))
	engine.InvalidateIndex(imdb)
	dataset.InvalidateStats(imdb)
	if err != nil {
		return nil, err
	}
	lp, err := testbed.LabelOnly(power, sc.TestbedConfig(sc.Seed+2))
	engine.InvalidateIndex(power)
	dataset.InvalidateStats(power)
	if err != nil {
		return nil, err
	}
	idx := []int{testbed.ModelIndex("DeepDB"), testbed.ModelIndex("NeuroCard"), testbed.ModelIndex("MSCN")}
	res := &Fig1Result{}
	for _, i := range idx {
		res.Models = append(res.Models, testbed.ModelNames[i])
		res.QErrIMDB = append(res.QErrIMDB, li.Perfs[i].QErrorMean)
		res.QErrPower = append(res.QErrPower, lp.Perfs[i].QErrorMean)
		res.LatencyPower = append(res.LatencyPower, lp.Perfs[i].LatencyMean)
	}
	return res, nil
}

// Render prints the figure's three panels as rows.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1 — CE models over different datasets\n")
	b.WriteString(row("model", "Q-err(IMDB)", "Q-err(Power)", "Latency(Power)"))
	b.WriteString("\n")
	for i, m := range r.Models {
		b.WriteString(row(m,
			fmt.Sprintf("%11.2f", r.QErrIMDB[i]),
			fmt.Sprintf("%12.2f", r.QErrPower[i]),
			fmt.Sprintf("%11.6fs", r.LatencyPower[i])))
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Result compares the weighted contrastive loss against the basic
// contrastive loss by the resulting advisor's D-error.
type Fig7Result struct {
	Weights       []float64
	WeightedMean  []float64
	BasicMean     []float64
	WeightedStats []DErrorStats
	BasicStats    []DErrorStats
}

// Fig7 trains two advisors, identical except for the loss function.
func Fig7(c *Corpus) (*Fig7Result, error) {
	cfgW := c.AdvisorConfig()
	advW, err := core.Train(c.TrainSamples(), cfgW)
	if err != nil {
		return nil, err
	}
	cfgB := c.AdvisorConfig()
	cfgB.Loss = core.LossBasic
	advB, err := core.Train(c.TrainSamples(), cfgB)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Weights: []float64{0.9, 0.7, 0.5}}
	for _, wa := range res.Weights {
		dw := EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
			return advW.Recommend(ld.Graph, wa).Model
		})
		db := EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
			return advB.Recommend(ld.Graph, wa).Model
		})
		res.WeightedMean = append(res.WeightedMean, metrics.Mean(dw))
		res.BasicMean = append(res.BasicMean, metrics.Mean(db))
		res.WeightedStats = append(res.WeightedStats, Stats(dw))
		res.BasicStats = append(res.BasicStats, Stats(db))
	}
	return res, nil
}

// Render prints the comparison.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — weighted vs basic contrastive loss (mean D-error)\n")
	b.WriteString(row("wq", "weighted", "basic"))
	b.WriteString("\n")
	for i, w := range r.Weights {
		b.WriteString(row(fmt.Sprintf("%.1f", w),
			fmt.Sprintf("%8.4f", r.WeightedMean[i]),
			fmt.Sprintf("%8.4f", r.BasicMean[i])))
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 8

// Fig8Result compares AutoCE with the four selection baselines across
// accuracy weights: D-error, plus the Q-error and latency breakdowns of
// the chosen models.
type Fig8Result struct {
	Weights   []float64
	Selectors []string
	// DErrorMean[w][s], QErr[w][s], Latency[w][s].
	DErrorMean [][]float64
	QErr       [][]float64
	Latency    [][]float64
}

// Fig8 runs the comparison over wa = 1.0 … 0.1.
func Fig8(c *Corpus) (*Fig8Result, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	mlp, err := advisor.TrainGINHead(c.BaselineSamples(), mlpConfig(c))
	if err != nil {
		return nil, err
	}
	rule := advisor.NewRule(c.Scale.Seed + 41)
	rawknn := advisor.NewRawKNN(c.BaselineSamples(), 2)
	sampLabels, err := c.SamplingLabels(c.Test)
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{
		Weights:   []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1},
		Selectors: []string{"AutoCE", "MLP", "Rule", "Sampling", "Knn"},
	}
	for _, wa := range res.Weights {
		choosers := []func(ld *LabeledDataset) int{
			func(ld *LabeledDataset) int { return autoce.Recommend(ld.Graph, wa).Model },
			func(ld *LabeledDataset) int { return mlp.Select(ld.Target(), wa) },
			func(ld *LabeledDataset) int { return rule.Select(ld.Target(), wa) },
			nil, // sampling handled below
			func(ld *LabeledDataset) int { return rawknn.Select(ld.Target(), wa) },
		}
		idxOf := map[*LabeledDataset]int{}
		for i, ld := range c.Test {
			idxOf[ld] = i
		}
		choosers[3] = func(ld *LabeledDataset) int {
			return sampLabels[idxOf[ld]].BestModel(wa)
		}
		var dRow, qRow, lRow []float64
		for _, choose := range choosers {
			d := EvalSelector(c.Test, wa, choose)
			q, l := ChosenPerf(c.Test, choose)
			dRow = append(dRow, metrics.Mean(d))
			qRow = append(qRow, q)
			lRow = append(lRow, l)
		}
		res.DErrorMean = append(res.DErrorMean, dRow)
		res.QErr = append(res.QErr, qRow)
		res.Latency = append(res.Latency, lRow)
	}
	return res, nil
}

func mlpConfig(c *Corpus) advisor.GINHeadConfig {
	cfg := advisor.DefaultGINHeadConfig(c.FeatCfg.VertexDim())
	cfg.Epochs = c.Scale.AdvisorEpochs
	if c.Scale.Fast {
		cfg.Epochs = maxInt(6, c.Scale.AdvisorEpochs/2)
	}
	cfg.Seed = c.Scale.Seed + 53
	return cfg
}

// Render prints the three panels.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8 — AutoCE vs selection strategies\n")
	for pi, panel := range []struct {
		name string
		data [][]float64
		fmtS string
	}{
		{"mean D-error", r.DErrorMean, "%8.4f"},
		{"mean Q-error of chosen model", r.QErr, "%8.2f"},
		{"mean latency of chosen model (s)", r.Latency, "%8.6f"},
	} {
		b.WriteString(fmt.Sprintf("(%c) %s\n", 'a'+pi, panel.name))
		header := make([]string, len(r.Selectors))
		for i, s := range r.Selectors {
			header[i] = fmt.Sprintf("%8s", s)
		}
		b.WriteString(row("wa", header...))
		b.WriteString("\n")
		for wi, wa := range r.Weights {
			cells := make([]string, len(r.Selectors))
			for si := range r.Selectors {
				cells[si] = fmt.Sprintf(panel.fmtS, panel.data[wi][si])
			}
			b.WriteString(row(fmt.Sprintf("%.1f", wa), cells...))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Result compares AutoCE against always picking one fixed CE model.
type Fig9Result struct {
	Weights []float64
	Names   []string // "AutoCE" + fixed models
	// DError[w][m] is the mean D-error.
	DError [][]float64
}

// Fig9 evaluates at the paper's five accuracy weights.
func Fig9(c *Corpus) (*Fig9Result, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Weights: []float64{1.0, 0.9, 0.7, 0.5, 0.3},
		Names:   append([]string{"AutoCE"}, testbed.ModelNames...),
	}
	// All rows — AutoCE and the fixed models, including the non-candidate
	// Postgres and Ensemble baselines — are scored on the full-registry
	// normalization so the comparison shares one scale.
	fullDErr := func(wa float64, choose func(*LabeledDataset) int) float64 {
		var ds []float64
		for _, ld := range c.Test {
			ds = append(ds, metrics.DError(ld.Label.FullScoreVector(wa), choose(ld)))
		}
		return metrics.Mean(ds)
	}
	for _, wa := range res.Weights {
		rowD := []float64{fullDErr(wa, func(ld *LabeledDataset) int {
			// Recommend returns a candidate-set position; the full score
			// vector is registry-indexed, so translate.
			pick := autoce.Recommend(ld.Graph, wa).Model
			cands := testbed.Candidates()
			if pick < 0 || pick >= len(cands) {
				return -1
			}
			return cands[pick]
		})}
		for m := 0; m < testbed.NumModels; m++ {
			m := m
			rowD = append(rowD, fullDErr(wa, func(*LabeledDataset) int { return m }))
		}
		res.DError = append(res.DError, rowD)
	}
	return res, nil
}

// Render prints mean D-error rows per weight.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — AutoCE vs fixed CE models (mean D-error)\n")
	header := make([]string, len(r.Names))
	for i, n := range r.Names {
		header[i] = fmt.Sprintf("%9s", n)
	}
	b.WriteString(row("wa", header...))
	b.WriteString("\n")
	for wi, wa := range r.Weights {
		cells := make([]string, len(r.Names))
		for i := range r.Names {
			cells[i] = fmt.Sprintf("%9.4f", r.DError[wi][i])
		}
		b.WriteString(row(fmt.Sprintf("%.1f", wa), cells...))
		b.WriteString("\n")
	}
	return b.String()
}

// --------------------------------------------------------------- Figure 10

// Fig10Result evaluates selectors on the real-world-like splits.
type Fig10Result struct {
	Datasets  []string // "IMDB-20", "STATS-20"
	Selectors []string
	// DErrorMean[d][s].
	DErrorMean [][]float64
	Weight     float64
}

// Fig10 trains on the synthetic corpus and tests on IMDB-20/STATS-20.
func Fig10(c *Corpus) (*Fig10Result, error) {
	imdb20, err := realWorldSplits(c, datagen.IMDBLike(c.Scale.Seed+7), "imdb20")
	if err != nil {
		return nil, err
	}
	stats20, err := realWorldSplits(c, datagen.STATSLike(c.Scale.Seed+8), "stats20")
	if err != nil {
		return nil, err
	}
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	mlp, err := advisor.TrainGINHead(c.BaselineSamples(), mlpConfig(c))
	if err != nil {
		return nil, err
	}
	rule := advisor.NewRule(c.Scale.Seed + 42)
	rawknn := advisor.NewRawKNN(c.BaselineSamples(), 2)

	const wa = 0.9
	res := &Fig10Result{
		Datasets:  []string{"IMDB-20", "STATS-20"},
		Selectors: []string{"AutoCE", "MLP", "Rule", "Sampling", "Knn"},
		Weight:    wa,
	}
	for _, split := range [][]*LabeledDataset{imdb20, stats20} {
		sampLabels, err := c.SamplingLabels(split)
		if err != nil {
			return nil, err
		}
		idxOf := map[*LabeledDataset]int{}
		for i, ld := range split {
			idxOf[ld] = i
		}
		choosers := []func(ld *LabeledDataset) int{
			func(ld *LabeledDataset) int { return autoce.Recommend(ld.Graph, wa).Model },
			func(ld *LabeledDataset) int { return mlp.Select(ld.Target(), wa) },
			func(ld *LabeledDataset) int { return rule.Select(ld.Target(), wa) },
			func(ld *LabeledDataset) int { return sampLabels[idxOf[ld]].BestModel(wa) },
			func(ld *LabeledDataset) int { return rawknn.Select(ld.Target(), wa) },
		}
		var rowD []float64
		for _, choose := range choosers {
			rowD = append(rowD, metrics.Mean(EvalSelector(split, wa, choose)))
		}
		res.DErrorMean = append(res.DErrorMean, rowD)
	}
	return res, nil
}

// realWorldSplits derives and labels n test splits per the IMDB-20/STATS-20
// protocol; quick scale uses fewer splits.
func realWorldSplits(c *Corpus, src *dataset.Dataset, name string) ([]*LabeledDataset, error) {
	n := 20
	if c.Scale.Fast {
		n = 6
	}
	subs := datagen.Split(src, n, 5, c.Scale.Seed+19)
	return LabelDatasets(subs, c.Scale, c.FeatCfg, c.Scale.Seed+200000)
}

// Render prints mean D-error per dataset family and selector.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — efficacy on real-world datasets (mean D-error, wa=%.1f)\n", r.Weight)
	header := make([]string, len(r.Selectors))
	for i, s := range r.Selectors {
		header[i] = fmt.Sprintf("%9s", s)
	}
	b.WriteString(row("dataset", header...))
	b.WriteString("\n")
	for di, d := range r.Datasets {
		cells := make([]string, len(r.Selectors))
		for i := range r.Selectors {
			cells[i] = fmt.Sprintf("%9.4f", r.DErrorMean[di][i])
		}
		b.WriteString(row(d, cells...))
		b.WriteString("\n")
	}
	return b.String()
}

// -------------------------------------------------------------- Figure 11a

// Fig11aResult is the DML ablation: AutoCE vs the GIN+MLP regression head.
type Fig11aResult struct {
	Weights    []float64
	AutoCE     []float64
	WithoutDML []float64
}

// Fig11a runs the ablation at the paper's three weights.
func Fig11a(c *Corpus) (*Fig11aResult, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	cfg := mlpConfig(c)
	cfg.Loss = advisor.HeadMSE
	noDML, err := advisor.TrainGINHead(c.BaselineSamples(), cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig11aResult{Weights: []float64{0.9, 0.7, 0.5}}
	for _, wa := range res.Weights {
		res.AutoCE = append(res.AutoCE, metrics.Mean(EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
			return autoce.Recommend(ld.Graph, wa).Model
		})))
		res.WithoutDML = append(res.WithoutDML, metrics.Mean(EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
			return noDML.Select(ld.Target(), wa)
		})))
	}
	return res, nil
}

// Render prints the ablation rows.
func (r *Fig11aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11(a) — ablation of deep metric learning (mean D-error)\n")
	b.WriteString(row("wa", "  AutoCE", "WithoutDML"))
	b.WriteString("\n")
	for i, wa := range r.Weights {
		b.WriteString(row(fmt.Sprintf("%.1f", wa),
			fmt.Sprintf("%8.4f", r.AutoCE[i]),
			fmt.Sprintf("%10.4f", r.WithoutDML[i])))
		b.WriteString("\n")
	}
	return b.String()
}

// -------------------------------------------------------------- Figure 11b

// Fig11bResult is the incremental-learning ablation over training-data
// fractions.
type Fig11bResult struct {
	Fractions []float64
	AutoCE    []float64 // with IL + augmentation
	NoAugment []float64 // IL without Mixup
	WithoutIL []float64
	Weight    float64
}

// Fig11b trains three advisor variants per training fraction.
func Fig11b(c *Corpus) (*Fig11bResult, error) {
	const wa = 0.9
	res := &Fig11bResult{Fractions: []float64{1.0, 0.9, 0.8, 0.7}, Weight: wa}
	all := c.TrainSamples()
	for _, frac := range res.Fractions {
		n := int(frac * float64(len(all)))
		if n < 2 {
			n = 2
		}
		subset := all[:n]

		evalWith := func(adv *core.Advisor) float64 {
			return metrics.Mean(EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
				return adv.Recommend(ld.Graph, wa).Model
			}))
		}
		// Without IL.
		advNoIL, err := core.Train(subset, c.AdvisorConfig())
		if err != nil {
			return nil, err
		}
		res.WithoutIL = append(res.WithoutIL, evalWith(advNoIL))
		// IL without augmentation.
		advNoAug, err := core.Train(subset, c.AdvisorConfig())
		if err != nil {
			return nil, err
		}
		ilNoAug := ilConfig(c)
		ilNoAug.Augment = false
		advNoAug.IncrementalLearn(ilNoAug)
		res.NoAugment = append(res.NoAugment, evalWith(advNoAug))
		// Full AutoCE.
		advFull, err := core.Train(subset, c.AdvisorConfig())
		if err != nil {
			return nil, err
		}
		advFull.IncrementalLearn(ilConfig(c))
		res.AutoCE = append(res.AutoCE, evalWith(advFull))
	}
	return res, nil
}

func ilConfig(c *Corpus) core.ILConfig {
	il := core.DefaultILConfig()
	if c.Scale.Fast {
		il.Epochs = 4
	}
	return il
}

// Render prints the fraction rows.
func (r *Fig11bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11(b) — ablation of incremental learning (mean D-error, wa=%.1f)\n", r.Weight)
	b.WriteString(row("train-frac", "  AutoCE", "NoAugment", "WithoutIL"))
	b.WriteString("\n")
	for i, f := range r.Fractions {
		b.WriteString(row(fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%8.4f", r.AutoCE[i]),
			fmt.Sprintf("%9.4f", r.NoAugment[i]),
			fmt.Sprintf("%9.4f", r.WithoutIL[i])))
		b.WriteString("\n")
	}
	return b.String()
}

// --------------------------------------------------------------- Figure 12

// Fig12Result compares AutoCE with the online learning methods on
// selection cost and quality.
type Fig12Result struct {
	Counts []int
	// Minutes[i][m] for m = Sampling, Learning-All, AutoCE.
	Minutes  [][]float64
	QErr     []float64 // mean Q-error of chosen model per method
	DErr     []float64 // mean D-error per method
	Methods  []string
	TestSize int
}

// Fig12 measures wall-clock selection cost at increasing dataset counts
// and quality over the full test set.
func Fig12(c *Corpus) (*Fig12Result, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		Methods:  []string{"Sampling", "Learning-All", "AutoCE"},
		TestSize: len(c.Test),
	}
	n := len(c.Test)
	counts := []int{maxInt(1, n/4), maxInt(2, n/2), n}
	res.Counts = counts

	// Wall-clock per method over the first k test datasets.
	sampling := advisor.NewSampling(0.25, c.Scale.TestbedConfig(c.Scale.Seed+61))
	la := advisor.NewLearningAll(c.Scale.TestbedConfig(c.Scale.Seed + 62))
	const wa = 0.9
	for _, k := range counts {
		var mins []float64
		for _, sel := range []advisor.Selector{sampling, la} {
			//autoce:ignore detpath -- Figure 9 reports measured advisor wall time; the duration is the figure's metric, it never feeds labels
			t0 := time.Now()
			for i := 0; i < k; i++ {
				sel.Select(c.Test[i].Target(), wa)
			}
			mins = append(mins, time.Since(t0).Minutes())
		}
		//autoce:ignore detpath -- Figure 9 reports measured advisor wall time; the duration is the figure's metric, it never feeds labels
		t0 := time.Now()
		for i := 0; i < k; i++ {
			autoce.Recommend(c.Test[i].Graph, wa)
		}
		mins = append(mins, time.Since(t0).Minutes())
		res.Minutes = append(res.Minutes, mins)
	}

	// Quality over the full test set (sampling reuses its cached labels
	// to avoid double cost; Learning-All is by construction the label's
	// own best model, i.e. D-error 0).
	sampLabels, err := c.SamplingLabels(c.Test)
	if err != nil {
		return nil, err
	}
	idxOf := map[*LabeledDataset]int{}
	for i, ld := range c.Test {
		idxOf[ld] = i
	}
	chSamp := func(ld *LabeledDataset) int { return sampLabels[idxOf[ld]].BestModel(wa) }
	chLA := func(ld *LabeledDataset) int { return ld.Label.BestModel(wa) }
	chAuto := func(ld *LabeledDataset) int { return autoce.Recommend(ld.Graph, wa).Model }
	for _, ch := range []func(*LabeledDataset) int{chSamp, chLA, chAuto} {
		q, _ := ChosenPerf(c.Test, ch)
		res.QErr = append(res.QErr, q)
		res.DErr = append(res.DErr, metrics.Mean(EvalSelector(c.Test, wa, ch)))
	}
	return res, nil
}

// Render prints efficiency and quality panels.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12 — AutoCE vs online learning methods\n(a) selection time (minutes)\n")
	b.WriteString(row("#datasets", "Sampling", "Learn-All", "  AutoCE"))
	b.WriteString("\n")
	for i, k := range r.Counts {
		b.WriteString(row(fmt.Sprintf("%d", k),
			fmt.Sprintf("%8.3f", r.Minutes[i][0]),
			fmt.Sprintf("%9.3f", r.Minutes[i][1]),
			fmt.Sprintf("%8.4f", r.Minutes[i][2])))
		b.WriteString("\n")
	}
	b.WriteString("(b)(c) quality over the test set\n")
	b.WriteString(row("method", "mean Q-error", "mean D-error"))
	b.WriteString("\n")
	for i, m := range r.Methods {
		b.WriteString(row(m,
			fmt.Sprintf("%12.2f", r.QErr[i]),
			fmt.Sprintf("%12.4f", r.DErr[i])))
		b.WriteString("\n")
	}
	return b.String()
}

// --------------------------------------------------------------- Figure 13

// Fig13Result is the online-adapting ablation on drifted datasets.
type Fig13Result struct {
	Weights []float64
	Without []float64
	With    []float64
	Drifted int
}

// Fig13 builds out-of-distribution datasets (real-world-like generators,
// outside the Pareto training manifold), keeps the ones the advisor flags
// as drift, adapts on half, and evaluates D-error on the other half.
func Fig13(c *Corpus) (*Fig13Result, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	n := 24
	if c.Scale.Fast {
		n = 10
	}
	imdbSubs := datagen.Split(datagen.IMDBLike(c.Scale.Seed+77), n/2, 4, c.Scale.Seed+78)
	statsSubs := datagen.Split(datagen.STATSLike(c.Scale.Seed+79), n/2, 4, c.Scale.Seed+80)
	drifted, err := LabelDatasets(append(imdbSubs, statsSubs...), c.Scale, c.FeatCfg, c.Scale.Seed+300000)
	if err != nil {
		return nil, err
	}
	// Keep the datasets flagged as unexpected; the generators are far
	// enough off-manifold that most qualify.
	var ood []*LabeledDataset
	for _, ld := range drifted {
		if autoce.DetectDrift(ld.Graph) {
			ood = append(ood, ld)
		}
	}
	if len(ood) < 4 {
		ood = drifted // fall back: evaluate on all
	}
	adaptSet := ood[:len(ood)/2]
	evalSet := ood[len(ood)/2:]

	res := &Fig13Result{Weights: []float64{0.9, 0.7, 0.5}, Drifted: len(ood)}
	for _, wa := range res.Weights {
		res.Without = append(res.Without, metrics.Mean(EvalSelector(evalSet, wa, func(ld *LabeledDataset) int {
			return autoce.Recommend(ld.Graph, wa).Model
		})))
	}
	// Online adapting: label each adapt-set dataset (already done) and
	// update the advisor.
	epochs := 4
	if c.Scale.Fast {
		epochs = 2
	}
	for _, ld := range adaptSet {
		autoce.OnlineAdapt(ld.Sample(), epochs)
	}
	for _, wa := range res.Weights {
		res.With = append(res.With, metrics.Mean(EvalSelector(evalSet, wa, func(ld *LabeledDataset) int {
			return autoce.Recommend(ld.Graph, wa).Model
		})))
	}
	return res, nil
}

// Render prints the ablation rows.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 — ablation of online adapting (%d drifted datasets, mean D-error)\n", r.Drifted)
	b.WriteString(row("wa", "without", "with"))
	b.WriteString("\n")
	for i, wa := range r.Weights {
		b.WriteString(row(fmt.Sprintf("%.1f", wa),
			fmt.Sprintf("%7.4f", r.Without[i]),
			fmt.Sprintf("%7.4f", r.With[i])))
		b.WriteString("\n")
	}
	return b.String()
}
