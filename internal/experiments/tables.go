package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/advisor"
	"repro/internal/ce"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/pgsim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// ----------------------------------------------------------------- Table I

// TableIResult reports the dataset-statistics table.
type TableIResult struct {
	Rows []TableIRow
}

// TableIRow is one dataset family's statistics.
type TableIRow struct {
	Name        string
	Tables      string
	Rows        string
	Columns     string
	DomainTotal string
}

// TableI computes statistics for the dataset families in use.
func TableI(sc Scale) (*TableIResult, error) {
	imdb := datagen.IMDBLike(sc.Seed)
	stats := datagen.STATSLike(sc.Seed)
	syn, err := datagen.GenerateCorpus(12, 5, sc.genParams(), sc.Seed)
	if err != nil {
		return nil, err
	}
	res := &TableIResult{}
	describe := func(name string, ds []*dataset.Dataset) {
		minT, maxT := ds[0].NumTables(), ds[0].NumTables()
		minR, maxR := ds[0].Tables[0].Rows(), ds[0].Tables[0].Rows()
		cols, dom := 0, 0
		for _, d := range ds {
			if d.NumTables() < minT {
				minT = d.NumTables()
			}
			if d.NumTables() > maxT {
				maxT = d.NumTables()
			}
			for _, t := range d.Tables {
				if t.Rows() < minR {
					minR = t.Rows()
				}
				if t.Rows() > maxR {
					maxR = t.Rows()
				}
			}
			cols += d.TotalColumns()
			dom += d.TotalDomainSize()
			// The aggregate populated the shared stats cache; don't let
			// the reporting pass re-pin corpus datasets.
			dataset.InvalidateStats(d)
		}
		tables := fmt.Sprintf("%d", minT)
		if maxT != minT {
			tables = fmt.Sprintf("%d-%d", minT, maxT)
		}
		res.Rows = append(res.Rows, TableIRow{
			Name:        name,
			Tables:      tables,
			Rows:        fmt.Sprintf("%d-%d", minR, maxR),
			Columns:     fmt.Sprintf("%d", cols/len(ds)),
			DomainTotal: fmt.Sprintf("%.1e", float64(dom)/float64(len(ds))),
		})
	}
	describe("IMDB-light*", []*dataset.Dataset{imdb})
	describe("STATS-light*", []*dataset.Dataset{stats})
	describe("Synthetic", syn)
	return res, nil
}

// Render prints the statistics table.
func (r *TableIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table I — statistics of datasets (* = real-world-like substitute)\n")
	b.WriteString(row("dataset", "#Table", "     #Row", "#Col(avg)", "Domain(avg)"))
	b.WriteString("\n")
	for _, tr := range r.Rows {
		b.WriteString(row(tr.Name,
			fmt.Sprintf("%6s", tr.Tables),
			fmt.Sprintf("%9s", tr.Rows),
			fmt.Sprintf("%9s", tr.Columns),
			fmt.Sprintf("%11s", tr.DomainTotal)))
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Table II

// TableIIResult reports recommendation accuracy: the fraction of datasets
// whose recommendation has D-error below epsilon.
type TableIIResult struct {
	Weights   []float64
	Epsilons  []float64
	Families  []string
	Selectors []string
	// Accuracy[w][f][s][e] in [0,1].
	Accuracy [][][][]float64
}

// TableII evaluates the five selectors over synthetic and real-world-like
// test sets at the paper's weights and thresholds.
func TableII(c *Corpus) (*TableIIResult, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	mlp, err := advisor.TrainGINHead(c.BaselineSamples(), mlpConfig(c))
	if err != nil {
		return nil, err
	}
	rule := advisor.NewRule(c.Scale.Seed + 43)
	rawknn := advisor.NewRawKNN(c.BaselineSamples(), 2)

	imdb20, err := realWorldSplits(c, datagen.IMDBLike(c.Scale.Seed+7), "imdb20")
	if err != nil {
		return nil, err
	}
	stats20, err := realWorldSplits(c, datagen.STATSLike(c.Scale.Seed+8), "stats20")
	if err != nil {
		return nil, err
	}
	families := [][]*LabeledDataset{c.Test, imdb20, stats20}

	res := &TableIIResult{
		Weights:   []float64{1.0, 0.9, 0.7},
		Epsilons:  []float64{0.1, 0.15, 0.2},
		Families:  []string{"Synthetic", "IMDB-20", "STATS-20"},
		Selectors: []string{"AutoCE", "MLP", "Rule", "Sampling", "Knn"},
	}
	for _, wa := range res.Weights {
		var perFamily [][][]float64
		for _, fam := range families {
			sampLabels, err := c.SamplingLabels(fam)
			if err != nil {
				return nil, err
			}
			idxOf := map[*LabeledDataset]int{}
			for i, ld := range fam {
				idxOf[ld] = i
			}
			choosers := []func(ld *LabeledDataset) int{
				func(ld *LabeledDataset) int { return autoce.Recommend(ld.Graph, wa).Model },
				func(ld *LabeledDataset) int { return mlp.Select(ld.Target(), wa) },
				func(ld *LabeledDataset) int { return rule.Select(ld.Target(), wa) },
				func(ld *LabeledDataset) int { return sampLabels[idxOf[ld]].BestModel(wa) },
				func(ld *LabeledDataset) int { return rawknn.Select(ld.Target(), wa) },
			}
			var perSelector [][]float64
			for _, choose := range choosers {
				derrs := EvalSelector(fam, wa, choose)
				var perEps []float64
				for _, eps := range res.Epsilons {
					hit := 0
					for _, d := range derrs {
						if d <= eps {
							hit++
						}
					}
					perEps = append(perEps, float64(hit)/float64(len(derrs)))
				}
				perSelector = append(perSelector, perEps)
			}
			perFamily = append(perFamily, perSelector)
		}
		res.Accuracy = append(res.Accuracy, perFamily)
	}
	return res, nil
}

// Render prints one block per weight, as in the paper's layout.
func (r *TableIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table II — recommendation accuracy (fraction with D-error <= eps)\n")
	for wi, wa := range r.Weights {
		fmt.Fprintf(&b, "(wa = %.1f)\n", wa)
		header := make([]string, len(r.Epsilons))
		for i, e := range r.Epsilons {
			header[i] = fmt.Sprintf("eps=%.2f", e)
		}
		b.WriteString(row("family/advisor", header...))
		b.WriteString("\n")
		for fi, fam := range r.Families {
			for si, sel := range r.Selectors {
				cells := make([]string, len(r.Epsilons))
				for ei := range r.Epsilons {
					cells[ei] = fmt.Sprintf("%7.1f%%", 100*r.Accuracy[wi][fi][si][ei])
				}
				b.WriteString(row(fam+"/"+sel, cells...))
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// --------------------------------------------------------------- Table III

// TableIIIResult is the CEB-like benchmark over query-driven models.
type TableIIIResult struct {
	Weights []float64
	Names   []string // AutoCE + query-driven models
	// DError[w][m] in percent.
	DError [][]float64
}

// TableIII labels the CEB-like schema, then compares AutoCE (restricted to
// the query-driven candidates, as the paper does) against each fixed
// query-driven model.
func TableIII(c *Corpus) (*TableIIIResult, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	d := workload.CEBSchema(c.Scale.Seed + 5)
	cfg := c.Scale.TestbedConfig(c.Scale.Seed + 71)
	label, err := cebLabel(d, cfg)
	// The CEB schema is rebuilt per run; drop its cached join index.
	engine.InvalidateIndex(d)
	if err != nil {
		return nil, err
	}
	g, err := feature.Extract(d, c.FeatCfg)
	// Extraction caches the dataset's stats; d is transient, drop them.
	dataset.InvalidateStats(d)
	if err != nil {
		return nil, err
	}
	// Work in candidate-set positions throughout: rec.Scores and the
	// label's ScoreVector both live in the advisor's label space, so the
	// registry indexes of the query-driven set are translated up front.
	qd := make([]int, 0, len(testbed.QueryDrivenSet()))
	res := &TableIIIResult{
		Weights: []float64{1.0, 0.9, 0.7, 0.5},
		Names:   []string{"AutoCE"},
	}
	for _, m := range testbed.QueryDrivenSet() {
		res.Names = append(res.Names, testbed.ModelNames[m])
		qd = append(qd, ce.CandidatePos(m))
	}
	for _, wa := range res.Weights {
		sv := label.ScoreVector(wa)
		// AutoCE: averaged neighbor scores, argmax over the QD subset.
		rec := autoce.Recommend(g, wa)
		pick, best := qd[0], -1.0
		for _, m := range qd {
			if rec.Scores != nil && m < len(rec.Scores) && rec.Scores[m] > best {
				pick, best = m, rec.Scores[m]
			}
		}
		rowD := []float64{dErrRestricted(sv, qd, pick)}
		for _, m := range qd {
			rowD = append(rowD, dErrRestricted(sv, qd, m))
		}
		res.DError = append(res.DError, rowD)
	}
	return res, nil
}

// dErrRestricted computes D-error with the optimum taken over the allowed
// subset only (the paper's Table III normalizes within query-driven
// models).
func dErrRestricted(scores []float64, allowed []int, chosen int) float64 {
	sub := make([]float64, 0, len(allowed))
	chosenIdx := -1
	for i, m := range allowed {
		sub = append(sub, scores[m])
		if m == chosen {
			chosenIdx = i
		}
	}
	if chosenIdx == -1 {
		return 1
	}
	return metrics.DError(sub, chosenIdx)
}

// cebLabel runs a query-driven-only labeling pass over the CEB-like
// schema using the CEB template workload (the paper skips data-driven
// models there for cost, as do we).
func cebLabel(d *dataset.Dataset, cfg testbed.Config) (*testbed.Label, error) {
	perTemplate := cfg.NumQueries / len(workload.CEBTemplates())
	if perTemplate < 4 {
		perTemplate = 4
	}
	qs := workload.CEBWorkload(d, perTemplate, cfg.Seed)
	train, test := workload.Split(qs, cfg.TrainFrac, cfg.Seed+1)
	res, err := testbed.RunQueryDriven(d, train, test, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the D-error table in percent.
func (r *TableIIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table III — efficacy on the CEB-like benchmark (D-error)\n")
	header := make([]string, len(r.Names))
	for i, n := range r.Names {
		header[i] = fmt.Sprintf("%8s", n)
	}
	b.WriteString(row("wa", header...))
	b.WriteString("\n")
	for wi, wa := range r.Weights {
		cells := make([]string, len(r.Names))
		for i := range r.Names {
			cells[i] = fmt.Sprintf("%7.2f%%", 100*r.DError[wi][i])
		}
		b.WriteString(row(fmt.Sprintf("%.1f", wa), cells...))
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Table IV

// TableIVResult reports AutoCE's D-error under different KNN k.
type TableIVResult struct {
	Ks      []int
	Weights []float64
	// DError[w][k].
	DError [][]float64
}

// TableIV sweeps k = 1..5 at the paper's four weights.
func TableIV(c *Corpus) (*TableIVResult, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	res := &TableIVResult{
		Ks:      []int{1, 2, 3, 4, 5},
		Weights: []float64{1.0, 0.9, 0.7, 0.5},
	}
	for _, wa := range res.Weights {
		var rowD []float64
		for _, k := range res.Ks {
			k := k
			rowD = append(rowD, metrics.Mean(EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
				return autoce.RecommendK(ld.Graph, wa, k).Model
			})))
		}
		res.DError = append(res.DError, rowD)
	}
	return res, nil
}

// Render prints the sweep.
func (r *TableIVResult) Render() string {
	var b strings.Builder
	b.WriteString("Table IV — AutoCE's D-error under different k\n")
	header := make([]string, len(r.Ks))
	for i, k := range r.Ks {
		header[i] = fmt.Sprintf("   k=%d  ", k)
	}
	b.WriteString(row("wa", header...))
	b.WriteString("\n")
	for wi, wa := range r.Weights {
		cells := make([]string, len(r.Ks))
		for i := range r.Ks {
			cells[i] = fmt.Sprintf("%7.2f%%", 100*r.DError[wi][i])
		}
		b.WriteString(row(fmt.Sprintf("%.1f", wa), cells...))
		b.WriteString("\n")
	}
	return b.String()
}

// ----------------------------------------------------------------- Table V

// TableVRow is one method's end-to-end outcome.
type TableVRow struct {
	Method      string
	SingleExec  time.Duration
	SingleInfer time.Duration
	MultiExec   time.Duration
	MultiInfer  time.Duration
	// Improvements are relative to the PostgreSQL baseline's total.
	SingleImprove float64
	MultiImprove  float64
}

// TableVResult is the simulated end-to-end latency experiment.
type TableVResult struct {
	Rows           []TableVRow
	SingleDatasets int
	MultiDatasets  int
	QueriesPerDS   int
}

// TableV labels single- and multi-table dataset pools, runs every CE model
// (and the TrueCard oracle) through the simulated optimizer, and reports
// workload totals with AutoCE's selections at wa = 0.5 and wa = 1.0.
func TableV(c *Corpus) (*TableVResult, error) {
	autoce, err := c.TrainAutoCE()
	if err != nil {
		return nil, err
	}
	nDS := 15
	queries := 100
	if c.Scale.Fast {
		nDS = 3
		queries = 20
	}
	singleP := c.Scale.genParams()
	singleP.Tables = 1
	multiP := c.Scale.genParams()

	var singles, multis []*dataset.Dataset
	for i := 0; i < nDS; i++ {
		sp := singleP
		sp.Seed = c.Scale.Seed + 9000 + int64(i)
		d, err := datagen.Generate(fmt.Sprintf("e2e-s%02d", i), sp)
		if err != nil {
			return nil, err
		}
		singles = append(singles, d)
		mp := multiP
		mp.Tables = 2 + i%4
		mp.Seed = c.Scale.Seed + 9100 + int64(i)
		m, err := datagen.Generate(fmt.Sprintf("e2e-m%02d", i), mp)
		if err != nil {
			return nil, err
		}
		multis = append(multis, m)
	}

	type totals struct{ exec, infer time.Duration }
	methodNames := append([]string{"TrueCard"}, testbed.ModelNames...)
	single := make(map[string]*totals)
	multi := make(map[string]*totals)
	for _, n := range methodNames {
		single[n] = &totals{}
		multi[n] = &totals{}
	}
	// AutoCE selections per dataset (model index), per weight.
	autoPick := map[string]map[float64]int{}

	// execScale calibrates simulated execution time per pool. The
	// simulator's cost unit is arbitrary; what Table V's comparison needs
	// is the paper's exec-to-inference regime: single-table workloads run
	// ~1.6x a sampling model's inference (22s vs 13.7s), multi-table
	// workloads ~50x (1.73h vs 125s). Our tables are ~100x smaller than
	// the paper's, so multi-table joins execute proportionally too fast
	// relative to (real, wall-clock) model inference; scaling the multi
	// pool's simulated execution restores the paper's regime. Documented
	// in DESIGN.md §2 and EXPERIMENTS.md.
	runPool := func(pool []*dataset.Dataset, agg map[string]*totals, execScale float64) error {
		for di, d := range pool {
			cfg := c.Scale.TestbedConfig(c.Scale.Seed + 401 + int64(di)*7)
			res, err := testbed.Run(d, cfg)
			if err != nil {
				return err
			}
			qs := workload.Generate(d, workload.DefaultConfig(queries, cfg.Seed+999))
			ests := map[string]ce.Estimator{"TrueCard": &pgsim.Oracle{D: d}}
			for mi, m := range res.Models {
				ests[testbed.ModelNames[mi]] = m
			}
			names := make([]string, 0, len(ests))
			for name := range ests {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				opt := pgsim.New(d, ests[name])
				for _, q := range qs {
					r := opt.Run(q)
					agg[name].exec += time.Duration(float64(r.ExecTime) * execScale)
					if name != "TrueCard" {
						agg[name].infer += r.InferTime
					}
				}
			}
			// AutoCE recommendation for this dataset.
			g, err := feature.Extract(d, c.FeatCfg)
			if err != nil {
				return err
			}
			picks := map[float64]int{}
			for _, wa := range []float64{0.5, 1.0} {
				picks[wa] = autoce.Recommend(g, wa).Model
			}
			autoPick[d.Name] = picks
			// Accumulate AutoCE rows from the chosen model's numbers: we
			// replay the chosen model's optimizer run totals by key.
			for _, wa := range []float64{0.5, 1.0} {
				key := fmt.Sprintf("AutoCE(wa=%.1f)", wa)
				if agg[key] == nil {
					agg[key] = &totals{}
				}
				// picks holds candidate-set positions from Recommend.
				chosen := testbed.CandidateModelLabel(picks[wa])
				opt := pgsim.New(d, ests[chosen])
				for _, q := range qs {
					r := opt.Run(q)
					agg[key].exec += time.Duration(float64(r.ExecTime) * execScale)
					agg[key].infer += r.InferTime
				}
			}
			// The pool dataset is done being queried; drop its cached
			// join index and stats so it does not stay pinned for
			// process lifetime.
			engine.InvalidateIndex(d)
			dataset.InvalidateStats(d)
		}
		return nil
	}
	if err := runPool(singles, single, 1); err != nil {
		return nil, err
	}
	if err := runPool(multis, multi, 40); err != nil {
		return nil, err
	}

	res := &TableVResult{SingleDatasets: nDS, MultiDatasets: nDS, QueriesPerDS: queries}
	pgSingle := single["Postgres"].exec + single["Postgres"].infer
	pgMulti := multi["Postgres"].exec + multi["Postgres"].infer
	order := append([]string{"Postgres", "TrueCard"}, nonPG(testbed.ModelNames)...)
	order = append(order, "AutoCE(wa=0.5)", "AutoCE(wa=1.0)")
	for _, name := range order {
		s, okS := single[name]
		m, okM := multi[name]
		if !okS || !okM {
			continue
		}
		r := TableVRow{
			Method:      name,
			SingleExec:  s.exec,
			SingleInfer: s.infer,
			MultiExec:   m.exec,
			MultiInfer:  m.infer,
		}
		if name != "Postgres" {
			r.SingleImprove = 1 - float64(s.exec+s.infer)/float64(pgSingle)
			r.MultiImprove = 1 - float64(m.exec+m.infer)/float64(pgMulti)
		}
		res.Rows = append(res.Rows, r)
	}
	return res, nil
}

func nonPG(names []string) []string {
	var out []string
	for _, n := range names {
		if n != "Postgres" {
			out = append(out, n)
		}
	}
	return out
}

// Render prints the end-to-end table.
func (r *TableVResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V — simulated end-to-end latency (%d single + %d multi datasets, %d queries each)\n",
		r.SingleDatasets, r.MultiDatasets, r.QueriesPerDS)
	b.WriteString(row("method", "single(exec+infer)", "multi(exec+infer)", "impr.single", "impr.multi"))
	b.WriteString("\n")
	for _, tr := range r.Rows {
		b.WriteString(row(tr.Method,
			fmt.Sprintf("%8.3fs + %7.3fs", tr.SingleExec.Seconds(), tr.SingleInfer.Seconds()),
			fmt.Sprintf("%8.3fs + %6.3fs", tr.MultiExec.Seconds(), tr.MultiInfer.Seconds()),
			fmt.Sprintf("%10.2f%%", 100*tr.SingleImprove),
			fmt.Sprintf("%9.2f%%", 100*tr.MultiImprove)))
		b.WriteString("\n")
	}
	return b.String()
}
