// Package experiments implements one regenerator per table and figure of
// the paper's evaluation (Section VII). Every experiment consumes a shared
// labeled corpus — synthetic datasets labeled by the CE testbed — and
// prints the same rows or series the paper reports. The cmd/autoce-exp
// binary dispatches to these functions; bench_test.go wraps them as
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// Scale sets experiment sizes. The paper uses 1,000 training + 200 testing
// datasets with 10,000-query workloads; DefaultScale is the CPU-friendly
// regime recorded in EXPERIMENTS.md and QuickScale keeps unit tests and
// benchmarks fast.
type Scale struct {
	TrainDatasets int
	TestDatasets  int
	Queries       int
	SampleRows    int
	Fast          bool
	AdvisorEpochs int
	Workers       int
	Seed          int64
}

// DefaultScale is the full experiment regime.
func DefaultScale() Scale {
	return Scale{
		TrainDatasets: 160,
		TestDatasets:  40,
		Queries:       200,
		SampleRows:    1000,
		Fast:          false,
		AdvisorEpochs: 30,
		Workers:       runtime.NumCPU(),
		Seed:          1,
	}
}

// QuickScale is the smoke-test regime used by unit tests and benches.
func QuickScale() Scale {
	return Scale{
		TrainDatasets: 24,
		TestDatasets:  8,
		Queries:       60,
		SampleRows:    400,
		Fast:          true,
		AdvisorEpochs: 10,
		Workers:       runtime.NumCPU(),
		Seed:          1,
	}
}

func (s Scale) genParams() datagen.Params {
	p := datagen.DefaultParams(0)
	if s.Fast {
		p.MinRows, p.MaxRows = 150, 400
	}
	return p
}

// TestbedConfig returns the labeling configuration this scale implies;
// exported for the examples and the end-to-end experiment.
func (s Scale) TestbedConfig(seed int64) testbed.Config {
	cfg := testbed.DefaultConfig(seed)
	cfg.NumQueries = s.Queries
	cfg.SampleRows = s.SampleRows
	cfg.Fast = s.Fast
	return cfg
}

// LabeledDataset couples a dataset with its feature graph and testbed
// label.
type LabeledDataset struct {
	D     *dataset.Dataset
	Graph *feature.Graph
	Label *testbed.Label
}

// Sample converts to the advisor's training representation.
func (ld *LabeledDataset) Sample() *core.Sample {
	return &core.Sample{Name: ld.D.Name, Graph: ld.Graph, Sa: ld.Label.Sa, Se: ld.Label.Se}
}

// TrainSample converts to the baseline selectors' representation.
func (ld *LabeledDataset) TrainSample() *advisor.TrainSample {
	return &advisor.TrainSample{
		Graph: ld.Graph, Sa: ld.Label.Sa, Se: ld.Label.Se,
		Tables: ld.D.NumTables(),
	}
}

// Target returns the selector input for this dataset.
func (ld *LabeledDataset) Target() advisor.Target {
	return advisor.Target{Dataset: ld.D, Graph: ld.Graph}
}

// Corpus is the shared labeled corpus.
type Corpus struct {
	Train, Test []*LabeledDataset
	FeatCfg     feature.Config
	Scale       Scale
}

// forEach runs fn(i) for i in [0, n) over a pool of workers goroutines
// and returns the per-index errors.
func forEach(n, workers int, fn func(i int) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInt(1, workers))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errs
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LabelDatasets labels a slice of datasets and pairs them with feature
// graphs. It is the parallel Stage-1 corpus driver: labeling runs in three
// phases — workload generation + oracle labeling per dataset, then every
// (dataset, model) training job fanned over one global sc.Workers pool
// (testbed.TrainAll), then measurement + feature extraction per dataset —
// so training throughput scales with cores even when datasets outnumber or
// undercount the workers. Per-job RNG seeding is deterministic (each model
// derives its RNG from the run seed), so the labels are identical to the
// serial path; see TestParallelCorpusTrainingDeterministic.
func LabelDatasets(ds []*dataset.Dataset, sc Scale, featCfg feature.Config, seedBase int64) ([]*LabeledDataset, error) {
	workers := maxInt(1, sc.Workers)

	// Phase 0: feature graphs, with per-table summary builds fanned over
	// the worker pool. Extraction populates the shared stats cache; the
	// corpus datasets are transient at this scale, so each cache entry is
	// dropped as soon as its graph is in hand (mirroring the join-index
	// invalidation below).
	graphs, err := feature.ExtractBatch(ds, featCfg, workers)
	if err != nil {
		return nil, fmt.Errorf("extracting features: %w", err)
	}
	for i := range ds {
		dataset.InvalidateStats(ds[i])
	}

	// Phase 1: workload + oracle truths + join sample + untrained models.
	preps := make([]*testbed.Prepared, len(ds))
	errs := forEach(len(ds), workers, func(i int) error {
		// Preparation runs thousands of oracle queries against ds[i]
		// through its cached join index; drop the cache as soon as the
		// truths are acquired (training and measurement never consult the
		// engine again) so corpus-scale runs keep a bounded index
		// footprint.
		p, err := testbed.Prepare(ds[i], sc.TestbedConfig(seedBase+int64(i)*97))
		engine.InvalidateIndex(ds[i])
		if err != nil {
			return fmt.Errorf("preparing %s: %w", ds[i].Name, err)
		}
		preps[i] = p
		return nil
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	// Phase 2: the global (dataset, model) training pool. Each dataset is
	// measured, scored, and released (models, sample, workload) as soon
	// as its last training job drains, so peak memory tracks the
	// in-flight window rather than the corpus size.
	out := make([]*LabeledDataset, len(ds))
	finish := func(i int) error {
		res, err := preps[i].Finish()
		preps[i] = nil
		if err != nil {
			return fmt.Errorf("labeling %s: %w", ds[i].Name, err)
		}
		out[i] = &LabeledDataset{D: ds[i], Graph: graphs[i], Label: res.Label}
		return nil
	}
	if err := testbed.TrainAll(preps, workers, finish); err != nil {
		return nil, err
	}
	return out, nil
}

// BuildCorpus generates and labels the full synthetic corpus.
func BuildCorpus(sc Scale) (*Corpus, error) {
	featCfg := feature.DefaultConfig()
	trainDS, err := datagen.GenerateCorpus(sc.TrainDatasets, 5, sc.genParams(), sc.Seed)
	if err != nil {
		return nil, err
	}
	testDS, err := datagen.GenerateCorpus(sc.TestDatasets, 5, sc.genParams(), sc.Seed+100000)
	if err != nil {
		return nil, err
	}
	train, err := LabelDatasets(trainDS, sc, featCfg, sc.Seed*3+7)
	if err != nil {
		return nil, err
	}
	test, err := LabelDatasets(testDS, sc, featCfg, sc.Seed*5+11)
	if err != nil {
		return nil, err
	}
	return &Corpus{Train: train, Test: test, FeatCfg: featCfg, Scale: sc}, nil
}

// AdvisorConfig returns the core configuration matched to this corpus.
func (c *Corpus) AdvisorConfig() core.Config {
	cfg := core.DefaultConfig(c.FeatCfg.VertexDim())
	cfg.Epochs = c.Scale.AdvisorEpochs
	cfg.Seed = c.Scale.Seed + 17
	return cfg
}

// TrainSamples converts the training corpus for the advisor.
func (c *Corpus) TrainSamples() []*core.Sample {
	out := make([]*core.Sample, len(c.Train))
	for i, ld := range c.Train {
		out[i] = ld.Sample()
	}
	return out
}

// BaselineSamples converts the training corpus for the baselines.
func (c *Corpus) BaselineSamples() []*advisor.TrainSample {
	out := make([]*advisor.TrainSample, len(c.Train))
	for i, ld := range c.Train {
		out[i] = ld.TrainSample()
	}
	return out
}

// TrainAutoCE trains the full AutoCE advisor (DML plus one incremental-
// learning pass, the paper's complete training pipeline).
func (c *Corpus) TrainAutoCE() (*core.Advisor, error) {
	adv, err := core.Train(c.TrainSamples(), c.AdvisorConfig())
	if err != nil {
		return nil, err
	}
	il := core.DefaultILConfig()
	if c.Scale.Fast {
		il.Epochs = 4
	}
	adv.IncrementalLearn(il)
	return adv, nil
}

// SamplingLabels labels a row-sample of every test dataset once; the
// sampling baseline then answers any weight from these labels. This avoids
// re-running the sampled testbed per weight while keeping its cost honest
// (one full sampled run per dataset).
func (c *Corpus) SamplingLabels(test []*LabeledDataset) ([]*testbed.Label, error) {
	out := make([]*testbed.Label, len(test))
	errs := forEach(len(test), c.Scale.Workers, func(i int) error {
		sampled := advisor.SampleDataset(test[i].D, 0.25, c.Scale.Seed+int64(i))
		cfg := c.Scale.TestbedConfig(c.Scale.Seed + 31 + int64(i)*13)
		cfg.NumQueries = maxInt(30, c.Scale.Queries/3)
		label, err := testbed.LabelOnly(sampled, cfg)
		// The sampled dataset is transient; don't let its cached join
		// index or stats pin it in memory.
		engine.InvalidateIndex(sampled)
		dataset.InvalidateStats(sampled)
		if err != nil {
			return err
		}
		out[i] = label
		return nil
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// DErrorStats aggregates a D-error sample.
type DErrorStats struct {
	Mean, P50, P90, Max float64
}

// Stats computes aggregate statistics over D-error values.
func Stats(xs []float64) DErrorStats {
	if len(xs) == 0 {
		return DErrorStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return DErrorStats{
		Mean: metrics.Mean(s),
		P50:  metrics.Percentile(s, 50),
		P90:  metrics.Percentile(s, 90),
		Max:  s[len(s)-1],
	}
}

// EvalSelector computes the D-error of a choose function over the test
// datasets at weight wa; choices of -1 (selector failure) count as the
// worst model.
func EvalSelector(test []*LabeledDataset, wa float64, choose func(*LabeledDataset) int) []float64 {
	out := make([]float64, 0, len(test))
	for _, ld := range test {
		model := choose(ld)
		sv := ld.Label.ScoreVector(wa)
		if model < 0 || model >= len(sv) {
			// Failed selection: count as the worst model.
			model = argMin(sv)
		}
		out = append(out, metrics.DError(sv, model))
	}
	return out
}

// ChosenPerf returns the mean Q-error and mean latency of the chosen
// models over the test datasets (the Figure 8 breakdown panels).
func ChosenPerf(test []*LabeledDataset, choose func(*LabeledDataset) int) (qerr, lat float64) {
	var qs, ls []float64
	for _, ld := range test {
		model := choose(ld)
		if model < 0 || model >= len(ld.Label.Perfs) {
			model = argMin(ld.Label.ScoreVector(0.5))
		}
		qs = append(qs, ld.Label.Perfs[model].QErrorMean)
		ls = append(ls, ld.Label.Perfs[model].LatencyMean)
	}
	return metrics.Mean(qs), metrics.Mean(ls)
}

func argMin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// row formats a table row with a fixed label column.
func row(label string, cells ...string) string {
	return fmt.Sprintf("%-14s %s", label, strings.Join(cells, "  "))
}
